// Command dynamo-stats canonicalises a run's statistics into a
// deterministic snapshot, and diffs two snapshots under configurable
// tolerances. The diff exits non-zero when any metric drifts, which makes
// it a CI regression gate against committed baselines:
//
//	dynamo-stats snapshot -workload histogram -policy all-near -threads 4 \
//	    -scale 0.1 -small -o baseline.json
//	dynamo-stats diff baseline.json current.json -rtol 0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"dynamo"
	"dynamo/internal/cliflags"
	"dynamo/internal/regress"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "snapshot":
		snapshot(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dynamo-stats snapshot -workload W [-policy P] [-threads N] [-seed S] [-scale X] [-input I] [-small] [-o FILE]
  dynamo-stats diff BASELINE CURRENT [-rtol X] [-atol Y]`)
	os.Exit(2)
}

// smallConfig mirrors the test suite's shrunken system so snapshot runs
// stay fast enough for CI.
func smallConfig() dynamo.Config {
	cfg := dynamo.DefaultConfig()
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 32
	cfg.Chi.L2Sets = 128
	cfg.Chi.LLCSets = 512
	return cfg
}

func snapshot(args []string) {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	wl := cliflags.Workload(fs)
	policy := cliflags.Policy(fs)
	threads := cliflags.Threads(fs, 4)
	seed := cliflags.Seed(fs)
	scale := cliflags.Scale(fs, 1.0)
	input := cliflags.Input(fs)
	small := fs.Bool("small", false, "use the shrunken 4-core CI system")
	out := fs.String("o", "", "output file (default stdout)")
	cpuprofile := cliflags.CPUProfile(fs)
	memprofile := cliflags.MemProfile(fs)
	verbose, quiet := cliflags.Verbosity(fs)
	fs.Parse(args)
	log := cliflags.NewLogger(*verbose, *quiet)
	if *wl == "" {
		log.Errorf("dynamo-stats: -workload is required")
		os.Exit(2)
	}
	stopProfiles, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	cfg := dynamo.DefaultConfig()
	if *small {
		cfg = smallConfig()
	}
	s, err := dynamo.New(cfg,
		dynamo.WithPolicy(*policy),
		dynamo.WithThreads(*threads),
		dynamo.WithSeed(*seed),
		dynamo.WithScale(*scale),
		dynamo.WithInput(*input),
		dynamo.WithObs(dynamo.NewObs()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(*wl)
	if err != nil {
		log.Fatal(err)
	}
	snap := regress.FromResult(map[string]string{
		"workload": *wl,
		"policy":   *policy,
		"threads":  strconv.Itoa(*threads),
		"seed":     strconv.FormatInt(*seed, 10),
		"scale":    strconv.FormatFloat(*scale, 'g', -1, 64),
		"input":    *input,
		"small":    strconv.FormatBool(*small),
	}, res)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := snap.WriteJSON(w); err != nil {
		log.Fatal(err)
	}
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	rtol := fs.Float64("rtol", 0, "relative tolerance (0.02 = 2%)")
	atol := fs.Float64("atol", 0, "absolute slack for near-zero metrics")
	verbose, quiet := cliflags.Verbosity(fs)
	fs.Parse(args)
	log := cliflags.NewLogger(*verbose, *quiet)
	if fs.NArg() != 2 {
		usage()
	}
	baseline := readSnapshot(log, fs.Arg(0))
	current := readSnapshot(log, fs.Arg(1))

	drifts := regress.Diff(baseline, current, regress.Tolerance{Rel: *rtol, Abs: *atol})
	if len(drifts) == 0 {
		fmt.Printf("ok: %d metrics within tolerance (rtol=%g atol=%g)\n",
			len(baseline.Metrics), *rtol, *atol)
		return
	}
	fmt.Printf("REGRESSION: %d of %d metrics drifted (rtol=%g atol=%g)\n",
		len(drifts), len(baseline.Metrics), *rtol, *atol)
	for _, d := range drifts {
		fmt.Printf("  %s\n", d)
	}
	os.Exit(1)
}

func readSnapshot(log *cliflags.Logger, path string) *regress.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := regress.Read(f)
	if err != nil {
		log.Fatalf("dynamo-stats: %s: %v", path, err)
	}
	return s
}
