// Command dynamo-serve hosts the sweep control plane: a long-running
// HTTP/JSON service over the sweep runner that accepts whole sweeps,
// schedules concurrent sweeps fairly on one worker pool, and serves
// results out of the content-addressed cache.
//
// Usage:
//
//	dynamo-serve -cache-dir DIR [flags]
//
// Routes (see internal/service):
//
//	POST   /v1/sweeps               submit a sweep (JSON batch of requests)
//	GET    /v1/sweeps/{id}          sweep status, retries and ETA
//	DELETE /v1/sweeps/{id}          cancel a sweep
//	GET    /v1/jobs/{digest}        cached result document (raw bytes)
//	GET    /v1/jobs/{digest}/span   job trace span
//	GET    /metrics /progress /jobs telemetry
//
// With -workers, jobs are not executed in-process: dynamo-worker
// processes pull them through POST /v1/work/lease (TTL lease + fencing
// token), heartbeat via POST /v1/work/{digest}/heartbeat, and commit via
// POST /v1/work/{digest}/result. A worker that stops heartbeating is
// presumed dead after -lease-ttl: its job requeues, resuming from the
// last checkpoint it shipped, and any commit under the stale fence is
// rejected.
//
// The cache directory is the service's durable state: results, job
// checkpoints and accepted sweep documents all live there. SIGINT or
// SIGTERM drains gracefully — in-flight jobs checkpoint (with
// -ckpt-every) and stop, accepted sweeps stay persisted — and a restart
// with -resume re-admits the unfinished work, restoring interrupted jobs
// from their checkpoints, so clients polling across the restart see
// their sweeps complete with byte-identical results.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dynamo/internal/cliflags"
	"dynamo/internal/faultio"
	"dynamo/internal/service"
	"dynamo/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8322", "listen address (host:port; :0 picks a free port)")
	cacheDir := cliflags.CacheDir(flag.CommandLine, cliflags.DefaultCacheDir)
	jobs := cliflags.Jobs(flag.CommandLine)
	retries := cliflags.Retries(flag.CommandLine)
	ckptEvery := cliflags.CkptEvery(flag.CommandLine)
	resume := cliflags.Resume(flag.CommandLine)
	preempt := flag.Bool("preempt", false, "time-slice long jobs across sweeps at checkpoint boundaries (use with -ckpt-every)")
	maxQueued := flag.Int("max-queued", 0, "bound the admission queue: reject sweeps past this many pending jobs with HTTP 429 (0 = unbounded)")
	workers := flag.Bool("workers", false, "dispatch jobs to external dynamo-worker processes via /v1/work leases instead of executing in-process")
	leaseTTL := flag.Duration("lease-ttl", 0, "worker lease TTL before a silent worker is presumed dead and its job requeued (with -workers; 0 = 10s default)")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the deterministic fault injector (with -fault-level)")
	faultLevel := flag.Int("fault-level", 0, "inject storage and network faults at this intensity, 0 = off (testing only)")
	faultBudget := flag.Int("fault-budget", -1, "stop injecting after this many faults (-1 = unlimited)")
	verbose, quiet := cliflags.Verbosity(flag.CommandLine)
	flag.Parse()

	log := cliflags.NewLogger(*verbose, *quiet)
	if *cacheDir == "" {
		log.Fatal("dynamo-serve: -cache-dir is required (the cache is what the service serves)")
	}
	if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// The structured job journal lives next to the cache it describes; a
	// journal failure degrades observability, never the service.
	var topts telemetry.SweepOptions
	if j, err := telemetry.OpenJournal(filepath.Join(*cacheDir, "journal.jsonl")); err == nil {
		topts.Journal = j
	} else {
		log.Errorf("dynamo-serve: %v", err)
	}
	tel := telemetry.NewSweep(topts)
	defer tel.Close()

	// The deterministic fault injector (testing only): same seed, same
	// faults. It wraps the storage plane here and the HTTP transport at
	// Serve below, and exports its counts on /metrics.
	var inj *faultio.Injector
	var middleware []func(http.Handler) http.Handler
	opts := service.Options{
		CacheDir:  *cacheDir,
		Jobs:      *jobs,
		Retries:   *retries,
		CkptEvery: *ckptEvery,
		Resume:    *resume,
		Telemetry: tel,
		Log:       log.DebugWriter(),
		Preempt:   *preempt,
		MaxQueued: *maxQueued,
		Workers:   *workers,
		LeaseTTL:  *leaseTTL,
	}
	if *faultLevel > 0 {
		inj = faultio.New(faultio.Level(*faultSeed, *faultLevel, *faultBudget))
		inj.Register(tel.Registry())
		opts.FS = inj.WrapFS(faultio.OS{})
		middleware = append(middleware, inj.WrapHandler)
		log.Infof("dynamo-serve: fault injection on (seed %d, level %d, budget %d)", *faultSeed, *faultLevel, *faultBudget)
	}
	svc, err := service.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := service.Serve(*addr, svc, middleware...)
	if err != nil {
		svc.Close()
		log.Fatal(err)
	}
	// The bound address goes to stdout so scripts starting the server
	// with :0 can read where it landed.
	fmt.Printf("http://%s\n", srv.Addr())
	log.Infof("dynamo-serve: serving sweeps on http://%s (cache %s)", srv.Addr(), *cacheDir)
	if *workers {
		ttl := *leaseTTL
		if ttl <= 0 {
			ttl = 10 * time.Second
		}
		log.Infof("dynamo-serve: worker dispatch on (/v1/work, lease TTL %s)", ttl)
	}

	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	<-signals
	signal.Stop(signals)

	// Graceful drain: stop accepting, interrupt in-flight jobs so they
	// checkpoint, keep accepted sweeps persisted for -resume.
	log.Infof("dynamo-serve: draining (in-flight jobs checkpoint, queue persists; restart with -resume)")
	if err := srv.Close(); err != nil {
		log.Errorf("dynamo-serve: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Errorf("dynamo-serve: %v", err)
	}
}
