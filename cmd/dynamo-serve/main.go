// Command dynamo-serve hosts the sweep control plane: a long-running
// HTTP/JSON service over the sweep runner that accepts whole sweeps,
// schedules concurrent sweeps fairly on one worker pool, and serves
// results out of the content-addressed cache.
//
// Usage:
//
//	dynamo-serve -cache-dir DIR [flags]
//
// Routes (see internal/service):
//
//	POST   /v1/sweeps               submit a sweep (JSON batch of requests)
//	GET    /v1/sweeps/{id}          sweep status, retries and ETA
//	DELETE /v1/sweeps/{id}          cancel a sweep
//	GET    /v1/jobs/{digest}        cached result document (raw bytes)
//	GET    /v1/jobs/{digest}/span   job trace span
//	GET    /metrics /progress /jobs telemetry
//
// The cache directory is the service's durable state: results, job
// checkpoints and accepted sweep documents all live there. SIGINT or
// SIGTERM drains gracefully — in-flight jobs checkpoint (with
// -ckpt-every) and stop, accepted sweeps stay persisted — and a restart
// with -resume re-admits the unfinished work, restoring interrupted jobs
// from their checkpoints, so clients polling across the restart see
// their sweeps complete with byte-identical results.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"dynamo/internal/cliflags"
	"dynamo/internal/service"
	"dynamo/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8322", "listen address (host:port; :0 picks a free port)")
	cacheDir := cliflags.CacheDir(flag.CommandLine, cliflags.DefaultCacheDir)
	jobs := cliflags.Jobs(flag.CommandLine)
	retries := cliflags.Retries(flag.CommandLine)
	ckptEvery := cliflags.CkptEvery(flag.CommandLine)
	resume := cliflags.Resume(flag.CommandLine)
	verbose, quiet := cliflags.Verbosity(flag.CommandLine)
	flag.Parse()

	log := cliflags.NewLogger(*verbose, *quiet)
	if *cacheDir == "" {
		log.Fatal("dynamo-serve: -cache-dir is required (the cache is what the service serves)")
	}
	if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// The structured job journal lives next to the cache it describes; a
	// journal failure degrades observability, never the service.
	var topts telemetry.SweepOptions
	if j, err := telemetry.OpenJournal(filepath.Join(*cacheDir, "journal.jsonl")); err == nil {
		topts.Journal = j
	} else {
		log.Errorf("dynamo-serve: %v", err)
	}
	tel := telemetry.NewSweep(topts)
	defer tel.Close()

	svc, err := service.New(service.Options{
		CacheDir:  *cacheDir,
		Jobs:      *jobs,
		Retries:   *retries,
		CkptEvery: *ckptEvery,
		Resume:    *resume,
		Telemetry: tel,
		Log:       log.DebugWriter(),
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := service.Serve(*addr, svc)
	if err != nil {
		svc.Close()
		log.Fatal(err)
	}
	// The bound address goes to stdout so scripts starting the server
	// with :0 can read where it landed.
	fmt.Printf("http://%s\n", srv.Addr())
	log.Infof("dynamo-serve: serving sweeps on http://%s (cache %s)", srv.Addr(), *cacheDir)

	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	<-signals
	signal.Stop(signals)

	// Graceful drain: stop accepting, interrupt in-flight jobs so they
	// checkpoint, keep accepted sweeps persisted for -resume.
	log.Infof("dynamo-serve: draining (in-flight jobs checkpoint, queue persists; restart with -resume)")
	if err := srv.Close(); err != nil {
		log.Errorf("dynamo-serve: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Errorf("dynamo-serve: %v", err)
	}
}
