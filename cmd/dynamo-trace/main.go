// Command dynamo-trace records, inspects and replays memory-operation
// traces, and bisects sanitizer violations down to a minimal event window.
//
// Usage:
//
//	dynamo-trace record -workload histogram -o hist.trace
//	dynamo-trace info hist.trace
//	dynamo-trace replay -policy dynamo-reuse-pn hist.trace
//	dynamo-trace synth -threads 8 -ops 100 -o counter.trace
//	dynamo-trace bisect -workload tc -policy dynamo-metric -max-mshrs 1
//
// bisect reruns a violating sanitized run and binary-searches the
// deterministic event stream for the smallest prefix that already
// violates, printing the minimal event window and the protocol trail
// leading up to the failure. A checkpoint file (-ckpt) taken from the
// same run bounds the search from below, so the replays start near the
// failure instead of from event zero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"dynamo"
	"dynamo/internal/chaos"
	"dynamo/internal/check"
	"dynamo/internal/cliflags"
	"dynamo/internal/cpu"
	"dynamo/internal/machine"
	"dynamo/internal/trace"
	"dynamo/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "synth":
		err = synth(os.Args[2:])
	case "bisect":
		err = bisect(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		cliflags.NewLogger(false, false).Fatalf("dynamo-trace: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dynamo-trace {record|info|replay|synth|bisect} [flags]")
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := cliflags.Workload(fs)
	policy := cliflags.Policy(fs)
	threads := cliflags.Threads(fs, 8)
	scale := cliflags.Scale(fs, 0.25)
	out := fs.String("o", "out.trace", "output file")
	cpuprofile := cliflags.CPUProfile(fs)
	memprofile := cliflags.MemProfile(fs)
	fs.Parse(args)
	if *wl == "" {
		return fmt.Errorf("record: -workload is required")
	}
	stopProfiles, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	s, err := dynamo.New(dynamo.DefaultConfig(),
		dynamo.WithPolicy(*policy),
		dynamo.WithThreads(*threads),
		dynamo.WithScale(*scale),
		dynamo.WithTrace(w))
	if err != nil {
		return err
	}
	res, err := s.Run(*wl)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d operations (%d cycles) to %s\n", w.Count(), res.Cycles, *out)
	return nil
}

func openTrace(path string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.NewReader(f).ReadAll()
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: one trace file expected")
	}
	recs, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	perKind := map[trace.Kind]uint64{}
	threads := map[uint16]bool{}
	for _, r := range recs {
		perKind[r.Kind]++
		threads[r.Thread] = true
	}
	fmt.Printf("records  %d\n", len(recs))
	fmt.Printf("threads  %d\n", len(threads))
	for _, k := range []trace.Kind{trace.KindLoad, trace.KindStore, trace.KindAMO, trace.KindAMOStore, trace.KindCompute} {
		fmt.Printf("%-9s %d\n", k, perKind[k])
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	policy := fs.String("policy", "all-near", "placement policy for the replay")
	cpuprofile := cliflags.CPUProfile(fs)
	memprofile := cliflags.MemProfile(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: one trace file expected")
	}
	stopProfiles, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	recs, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	progs, err := trace.Replay(recs)
	if err != nil {
		return err
	}
	cfg := machine.DefaultConfig()
	cfg.Policy = *policy
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	res, err := m.Run(progs)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d records under %s: %d cycles, %d AMOs (%d near, %d far)\n",
		len(recs), *policy, res.Cycles, res.AMOs, res.NearLocal+res.NearTxn, res.Far)
	return nil
}

func synth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	threads := fs.Int("threads", 8, "threads")
	ops := fs.Int("ops", 100, "atomic updates per thread")
	counters := fs.Int("counters", 4, "shared counters")
	noReturn := fs.Bool("noreturn", true, "use AtomicStore semantics")
	out := fs.String("o", "synth.trace", "output file")
	fs.Parse(args)
	recs := trace.Synthesize(*threads, *ops, *counters, *noReturn)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", len(recs), *out)
	return nil
}

// bisect localises the first sanitizer violation of a deterministic run.
// It executes the full sanitized run (expecting a violation), then
// binary-searches the event index: each probe rebuilds the machine from
// scratch, replays the deterministic event stream to the candidate event,
// and asks whether the prefix already violated (the run aborted with a
// violation, or the paused state fails a coherence audit). The result is
// the smallest violating prefix — a one-event window around the failure —
// plus the violation's protocol trail.
func bisect(args []string) error {
	fs := flag.NewFlagSet("bisect", flag.ExitOnError)
	wl := cliflags.Workload(fs)
	policy := cliflags.Policy(fs)
	threads := cliflags.Threads(fs, 8)
	seed := cliflags.Seed(fs)
	scale := cliflags.Scale(fs, 0.25)
	input := cliflags.Input(fs)
	chaosSeed := cliflags.ChaosSeed(fs)
	chaosLevel := cliflags.ChaosLevel(fs)
	maxMSHRs := fs.Int("max-mshrs", 0, "tightened sanitizer MSHR bound (0 = default)")
	maxBusy := fs.Int("max-busy-lines", 0, "tightened sanitizer busy-line bound (0 = default)")
	ckptFile := fs.String("ckpt", "", "checkpoint from the same run bounding the search from below")
	cpuprofile := cliflags.CPUProfile(fs)
	memprofile := cliflags.MemProfile(fs)
	verbose, quiet := cliflags.Verbosity(fs)
	fs.Parse(args)
	log := cliflags.NewLogger(*verbose, *quiet)
	if *wl == "" {
		return fmt.Errorf("bisect: -workload is required")
	}
	stopProfiles, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	if *chaosSeed != 0 && *chaosLevel == 0 {
		*chaosLevel = 1
	}
	if *chaosLevel > 0 && *chaosSeed == 0 {
		*chaosSeed = 1
	}

	// Every probe rebuilds the run identically; determinism makes replay-
	// to-event-N a pure function of N.
	build := func() (*machine.Machine, []cpu.Program, error) {
		spec, err := workload.Get(*wl)
		if err != nil {
			return nil, nil, err
		}
		inst, err := spec.Build(workload.Params{
			Threads: *threads,
			Seed:    *seed,
			Scale:   *scale,
			Input:   *input,
		})
		if err != nil {
			return nil, nil, err
		}
		cfg := machine.DefaultConfig()
		cfg.Policy = *policy
		cfg.Check = &check.Config{MaxMSHRs: *maxMSHRs, MaxBusyLines: *maxBusy}
		m, err := machine.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if *chaosLevel > 0 {
			inj, err := chaos.New(*chaosSeed, *chaosLevel)
			if err != nil {
				return nil, nil, err
			}
			inj.Attach(m)
		}
		if inst.Setup != nil {
			inst.Setup(m.Sys.Data)
		}
		return m, inst.Programs, nil
	}

	// probe reports whether the prefix of the run up to event has already
	// violated: the replay aborts with a violation on the way there, or the
	// paused state fails a full coherence audit.
	probe := func(event uint64) (bool, *check.Violation, error) {
		m, progs, err := build()
		if err != nil {
			return false, nil, err
		}
		res, err := m.RunTo(progs, event)
		if err != nil {
			var v *check.Violation
			if errors.As(err, &v) {
				return true, v, nil
			}
			return false, nil, err
		}
		if res != nil {
			// Completed cleanly before the pause target: this prefix is the
			// whole run minus the drain, so the violation is later.
			return false, nil, nil
		}
		if v := m.Sys.AuditCoherence(); v != nil {
			return true, v, nil
		}
		return false, nil, nil
	}

	m, progs, err := build()
	if err != nil {
		return err
	}
	res, err := m.Run(progs)
	if err == nil {
		fmt.Printf("run completed clean (%d events) — nothing to bisect\n", res.SimEvents)
		return nil
	}
	var first *check.Violation
	if !errors.As(err, &first) {
		return fmt.Errorf("bisect: run failed without a violation: %w", err)
	}
	hi := m.Sys.Engine.Executed()
	fmt.Printf("full run violated after %d events: %s violation at cycle %d\n",
		hi, first.Kind, first.Time)

	lo := uint64(0)
	if *ckptFile != "" {
		f, err := os.Open(*ckptFile)
		if err != nil {
			return err
		}
		ck, err := dynamo.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return err
		}
		if ck.Event >= hi {
			return fmt.Errorf("bisect: checkpoint at event %d is not below the failure at %d", ck.Event, hi)
		}
		// The checkpoint must be a clean prefix for the search invariant to
		// hold; fall back to a full search when it is not.
		if bad, _, err := probe(ck.Event); err != nil {
			return err
		} else if bad {
			log.Infof("bisect: checkpoint at event %d already violates; searching from event 0", ck.Event)
		} else {
			lo = ck.Event
		}
	}

	span := hi - lo
	probes := 0
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		bad, v, err := probe(mid)
		if err != nil {
			return err
		}
		probes++
		if bad {
			hi, first = mid, v
		} else {
			lo = mid
		}
		log.Infof("bisect: events (%d, %d] after %d replays", lo, hi, probes)
	}

	fmt.Printf("first violating prefix: %d events (window (%d, %d], %d replays over a %d-event span)\n",
		hi, lo, hi, probes, span)
	fmt.Println(first.Error())
	return nil
}
