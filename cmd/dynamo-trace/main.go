// Command dynamo-trace records, inspects and replays memory-operation
// traces.
//
// Usage:
//
//	dynamo-trace record -workload histogram -o hist.trace
//	dynamo-trace info hist.trace
//	dynamo-trace replay -policy dynamo-reuse-pn hist.trace
//	dynamo-trace synth -threads 8 -ops 100 -o counter.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dynamo"
	"dynamo/internal/cliflags"
	"dynamo/internal/machine"
	"dynamo/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "synth":
		err = synth(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynamo-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dynamo-trace {record|info|replay|synth} [flags]")
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wl := cliflags.Workload(fs)
	policy := cliflags.Policy(fs)
	threads := cliflags.Threads(fs, 8)
	scale := cliflags.Scale(fs, 0.25)
	out := fs.String("o", "out.trace", "output file")
	fs.Parse(args)
	if *wl == "" {
		return fmt.Errorf("record: -workload is required")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	s, err := dynamo.New(dynamo.DefaultConfig(),
		dynamo.WithPolicy(*policy),
		dynamo.WithThreads(*threads),
		dynamo.WithScale(*scale),
		dynamo.WithTrace(w))
	if err != nil {
		return err
	}
	res, err := s.Run(*wl)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d operations (%d cycles) to %s\n", w.Count(), res.Cycles, *out)
	return nil
}

func openTrace(path string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.NewReader(f).ReadAll()
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: one trace file expected")
	}
	recs, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	perKind := map[trace.Kind]uint64{}
	threads := map[uint16]bool{}
	for _, r := range recs {
		perKind[r.Kind]++
		threads[r.Thread] = true
	}
	fmt.Printf("records  %d\n", len(recs))
	fmt.Printf("threads  %d\n", len(threads))
	for _, k := range []trace.Kind{trace.KindLoad, trace.KindStore, trace.KindAMO, trace.KindAMOStore, trace.KindCompute} {
		fmt.Printf("%-9s %d\n", k, perKind[k])
	}
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	policy := fs.String("policy", "all-near", "placement policy for the replay")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: one trace file expected")
	}
	recs, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	progs, err := trace.Replay(recs)
	if err != nil {
		return err
	}
	cfg := machine.DefaultConfig()
	cfg.Policy = *policy
	m, err := machine.New(cfg)
	if err != nil {
		return err
	}
	res, err := m.Run(progs)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d records under %s: %d cycles, %d AMOs (%d near, %d far)\n",
		len(recs), *policy, res.Cycles, res.AMOs, res.NearLocal+res.NearTxn, res.Far)
	return nil
}

func synth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	threads := fs.Int("threads", 8, "threads")
	ops := fs.Int("ops", 100, "atomic updates per thread")
	counters := fs.Int("counters", 4, "shared counters")
	noReturn := fs.Bool("noreturn", true, "use AtomicStore semantics")
	out := fs.String("o", "synth.trace", "output file")
	fs.Parse(args)
	recs := trace.Synthesize(*threads, *ops, *counters, *noReturn)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", len(recs), *out)
	return nil
}
