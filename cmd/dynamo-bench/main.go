// Command dynamo-bench measures the simulator's host performance on a
// pinned benchmark matrix and gates the per-PR perf trajectory.
//
// Usage:
//
//	dynamo-bench run [-o BENCH.json] [-pr N] [-trials N] [-warmup N] [-quick]
//	dynamo-bench compare OLD.json NEW.json [-tolerance 0.1]
//
// run executes the pinned matrix — three representative workloads
// (histogram, tc, spmv) under the dynamo-reuse-pn policy, each with the
// probe bus off/on and the protocol sanitizer off/on — with warmup plus
// repeated measured trials, and writes a schema-versioned JSON file of
// median events/sec, ns/event and allocs/event per cell, host
// fingerprint included. Committed as BENCH_<pr>.json at the repo root,
// these files form the repository's perf trajectory.
//
// compare matches two such files cell by cell and exits nonzero when any
// cell's median events/sec dropped by more than -tolerance, making it a
// CI gate against host-performance regressions. The gate is one-sided:
// improvements always pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dynamo"
	"dynamo/internal/bench"
	"dynamo/internal/cliflags"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		run(os.Args[2:])
	case "compare":
		compare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dynamo-bench run [-o FILE] [-pr N] [-trials N] [-warmup N] [-quick]
  dynamo-bench compare OLD.json NEW.json [-tolerance X]`)
	os.Exit(2)
}

// benchConfig is the shrunken 4-core system the matrix runs on — the same
// geometry as the dynamo-stats CI baselines, so bench cells stay seconds,
// not minutes, and the trajectory is comparable across PRs.
func benchConfig() dynamo.Config {
	cfg := dynamo.DefaultConfig()
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 32
	cfg.Chi.L2Sets = 128
	cfg.Chi.LLCSets = 512
	return cfg
}

// matrix returns the pinned cell keys. scale is part of every key, so a
// -quick file never falsely compares against a full one.
func matrix(scale float64) []bench.Key {
	var keys []bench.Key
	for _, wl := range []string{"histogram", "tc", "spmv"} {
		for _, obs := range []bool{false, true} {
			for _, check := range []bool{false, true} {
				keys = append(keys, bench.Key{
					Workload: wl, Policy: "dynamo-reuse-pn",
					Threads: 4, Scale: scale,
					Obs: obs, Check: check,
				})
			}
		}
	}
	return keys
}

// hostFingerprint records the environment the numbers were measured in.
func hostFingerprint() bench.Host {
	return bench.Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel extracts the processor model from /proc/cpuinfo, best-effort:
// non-Linux hosts (or locked-down ones) just leave the field empty.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// newSession builds a fresh session for one cell run. Each run gets its
// own session (and probe bus, when on): collectors accumulate across runs
// on a shared session, which would contaminate later trials.
func newSession(key bench.Key, hostPerf bool) (*dynamo.Session, error) {
	opts := []dynamo.Option{
		dynamo.WithPolicy(key.Policy),
		dynamo.WithThreads(key.Threads),
		dynamo.WithScale(key.Scale),
	}
	if key.Obs {
		opts = append(opts, dynamo.WithObs(dynamo.NewObs()))
	}
	if key.Check {
		opts = append(opts, dynamo.WithCheck())
	}
	if hostPerf {
		opts = append(opts, dynamo.WithHostPerf())
	}
	return dynamo.New(benchConfig(), opts...)
}

// runCell measures one matrix cell: warmup runs, then measured trials,
// then — for the base cell — one profiled run for subsystem attribution
// and the self-profiler overhead ratio.
func runCell(key bench.Key, warmup, trials int) (bench.Cell, error) {
	var zero bench.Cell
	for i := 0; i < warmup; i++ {
		s, err := newSession(key, false)
		if err != nil {
			return zero, err
		}
		if _, err := s.Run(key.Workload); err != nil {
			return zero, err
		}
	}
	var (
		raw            []bench.Trial
		events, cycles uint64
	)
	for i := 0; i < trials; i++ {
		s, err := newSession(key, false)
		if err != nil {
			return zero, err
		}
		// A forced GC before the measured window keeps one trial's garbage
		// from being collected on another trial's clock.
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res, err := s.Run(key.Workload)
		wall := time.Since(t0)
		if err != nil {
			return zero, err
		}
		runtime.ReadMemStats(&m1)
		raw = append(raw, bench.Trial{
			WallNS:       uint64(wall),
			Events:       res.SimEvents,
			AllocObjects: m1.Mallocs - m0.Mallocs,
		})
		events, cycles = res.SimEvents, uint64(res.Cycles)
	}
	cell := bench.Summarize(key, events, cycles, raw)
	if !key.Obs && !key.Check {
		s, err := newSession(key, true)
		if err != nil {
			return zero, err
		}
		res, err := s.Run(key.Workload)
		if err != nil {
			return zero, err
		}
		if hp := res.HostPerf; hp != nil {
			cell.Attribution = hp.Kinds
			if cell.NSPerEvent > 0 {
				cell.ProfilerOverhead = hp.NSPerEvent / cell.NSPerEvent
			}
		}
	}
	return cell, nil
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("o", "bench-scratch.json", "output file")
	pr := fs.Int("pr", 0, "PR number recorded in the file")
	trials := fs.Int("trials", 3, "measured trials per cell")
	warmup := fs.Int("warmup", 1, "unmeasured warmup runs per cell")
	quick := fs.Bool("quick", false, "half-scale matrix for smoke tests (cells never compare against full-scale files)")
	cpuprofile := cliflags.CPUProfile(fs)
	memprofile := cliflags.MemProfile(fs)
	verbose, quiet := cliflags.Verbosity(fs)
	fs.Parse(args)
	log := cliflags.NewLogger(*verbose, *quiet)
	if *trials < 1 {
		log.Errorf("dynamo-bench: -trials must be at least 1")
		os.Exit(2)
	}
	stopProfiles, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	scale := 0.1
	if *quick {
		scale = 0.05
	}
	file := &bench.File{PR: *pr, Host: hostFingerprint()}
	start := time.Now()
	for _, key := range matrix(scale) {
		cell, err := runCell(key, *warmup, *trials)
		if err != nil {
			log.Fatalf("dynamo-bench: %s: %v", key, err)
		}
		log.Infof("  %-40s %8.3f M events/s (±%4.1f%%), %6.0f ns/event, %5.1f allocs/event",
			key, cell.EventsPerSec/1e6, 100*cell.Spread, cell.NSPerEvent, cell.AllocsPerEvent)
		file.Cells = append(file.Cells, cell)
	}
	if err := file.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	log.Infof("dynamo-bench: %d cells x %d trials in %.1fs -> %s",
		len(file.Cells), *trials, time.Since(start).Seconds(), *out)
}

func compare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tolerance", 0.1, "relative events/sec drop that fails the gate (0.1 = 10%)")
	verbose, quiet := cliflags.Verbosity(fs)
	fs.Parse(args)
	// Accept flags after the positional files too
	// (compare OLD NEW -tolerance X), re-parsing the tail.
	pos := fs.Args()
	if len(pos) > 2 {
		fs.Parse(pos[2:])
		pos = pos[:2]
	}
	if len(pos) != 2 {
		usage()
	}
	log := cliflags.NewLogger(*verbose, *quiet)
	old, err := bench.ReadFile(pos[0])
	if err != nil {
		log.Errorf("%v", err)
		os.Exit(2)
	}
	new, err := bench.ReadFile(pos[1])
	if err != nil {
		log.Errorf("%v", err)
		os.Exit(2)
	}
	c := bench.Compare(old, new, *tol)
	for _, w := range c.Warnings {
		log.Errorf("warning: %s", w)
	}
	if c.Matched == 0 {
		log.Errorf("dynamo-bench: no matching cells between the two files")
		os.Exit(2)
	}
	if !c.Ok() {
		fmt.Printf("PERF REGRESSION: %d of %d cells beyond tolerance %g\n", len(c.Regressions), c.Matched, *tol)
		for _, r := range c.Regressions {
			fmt.Printf("  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("ok: %d cells within tolerance %g\n", c.Matched, *tol)
}
