// Command dynamo-worker is one fleet process of the distributed
// execution tier: it pulls simulation jobs from a dynamo-serve instance
// running with -workers, executes them locally, and commits results
// under fenced TTL leases.
//
// Usage:
//
//	dynamo-worker -addr HOST:PORT [flags]
//
// Protocol (see internal/service): each job is pulled via POST
// /v1/work/lease under a TTL lease with a fencing token. While the job
// runs, the worker heartbeats via POST /v1/work/{digest}/heartbeat —
// renewing the lease and shipping the job's latest checkpoint bytes — and
// finally commits via POST /v1/work/{digest}/result. If this process is
// SIGKILLed, the server revokes the lease after the TTL and re-grants the
// job to another worker, which resumes from the last shipped checkpoint;
// any late commit from this process is fenced. SIGINT/SIGTERM drain
// gracefully: in-flight jobs stop at their next checkpoint boundary, the
// final checkpoint ships, and the leases release.
//
// All calls retry with jittered exponential backoff, so the fleet rides
// out server restarts. The -fault-* flags wrap the worker's HTTP
// transport with the deterministic fault injector (testing only), so
// lease, heartbeat and commit loss are reproducible.
package main

import (
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynamo/internal/cliflags"
	"dynamo/internal/faultio"
	"dynamo/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8322", "sweep server address (host:port; dynamo-serve -workers)")
	id := flag.String("id", "", "worker identity in leases and telemetry (default host:pid)")
	slots := flag.Int("slots", 1, "jobs executing concurrently in this worker")
	ttl := flag.Duration("ttl", 0, "lease TTL to request (0 = server default)")
	heartbeat := flag.Duration("heartbeat", 0, "lease renewal cadence (0 = a third of the granted TTL)")
	poll := flag.Duration("poll", 250*time.Millisecond, "idle backoff between lease attempts when the queue is empty")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the deterministic fault injector (with -fault-level)")
	faultLevel := flag.Int("fault-level", 0, "inject transport faults at this intensity, 0 = off (testing only)")
	faultBudget := flag.Int("fault-budget", -1, "stop injecting after this many faults (-1 = unlimited)")
	verbose, quiet := cliflags.Verbosity(flag.CommandLine)
	flag.Parse()

	log := cliflags.NewLogger(*verbose, *quiet)
	opts := service.WorkerOptions{
		Addr:      *addr,
		ID:        *id,
		Slots:     *slots,
		TTL:       *ttl,
		Heartbeat: *heartbeat,
		Poll:      *poll,
		Log:       log.DebugWriter(),
	}
	if *faultLevel > 0 {
		inj := faultio.New(faultio.Level(*faultSeed, *faultLevel, *faultBudget))
		opts.Transport = inj.WrapTransport(nil)
		log.Infof("dynamo-worker: fault injection on (seed %d, level %d, budget %d)", *faultSeed, *faultLevel, *faultBudget)
	}
	w := service.NewWorker(opts)
	w.Start()
	log.Infof("dynamo-worker: %s pulling work from %s (%d slot(s))", w.ID(), *addr, *slots)

	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	<-signals
	signal.Stop(signals)

	// Graceful drain: finish-or-checkpoint, ship the final checkpoint,
	// release the leases. A SIGKILL instead of this path is survivable too
	// — the server's lease expiry reassigns the work.
	log.Infof("dynamo-worker: draining (in-flight jobs checkpoint and release)")
	w.Drain()
	st := w.Stats()
	log.Infof("dynamo-worker: done — %d leased, %d committed (%d dup), %d resumed, %d released, %d fenced, %d abandoned, %d failed",
		st.Leases, st.Committed, st.Duplicates, st.Resumed, st.Released, st.Fenced, st.Abandoned, st.Failed)
}
