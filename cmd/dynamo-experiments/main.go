// Command dynamo-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	dynamo-experiments [flags] [experiment ...]
//
// With no arguments (or the pseudo-id "all") it runs every experiment in
// paper order. Experiment ids: fig1, table1, table2, table3, fig6, fig7,
// fig8, fig9, energy, fig10, hwcost, fig11, table4, ablation, dse,
// latency, profile.
//
// All simulations run through the sweep runner: identical runs are
// deduplicated across experiments, executed on -jobs workers, and
// persisted under -cache-dir — a second invocation with the same flags
// simulates nothing. Tables go to stdout and are byte-identical for any
// -jobs value and any cache state; timing, progress and cache statistics
// go to stderr (-v adds per-run detail, -quiet drops the chatter).
//
// A sweep is observable while it runs: on a terminal a live progress line
// tracks done/total jobs, cache hits and the ETA, and -serve exposes
// /metrics (Prometheus text format), /progress (JSON snapshot) and /jobs
// (recent per-job trace spans) over HTTP, with a structured JSONL job
// journal written next to the cache (-serve-grace keeps the endpoints up
// after the sweep finishes, for a final scrape).
//
// A sweep can run remotely: -remote points at a dynamo-serve sweep
// service, and every cache-missing simulation executes on the server
// instead of locally. Results come back as the server's cache-entry
// bytes, so the printed tables are byte-identical to a local run.
//
// A sweep is crash-safe: with -ckpt-every, running jobs periodically
// checkpoint into the cache directory, and SIGINT/SIGTERM stop the sweep
// gracefully (in-flight jobs checkpoint, finished results stay cached).
// Re-invoking with -resume restores the unfinished jobs from their
// checkpoints and completes the sweep with byte-identical tables.
// Transiently failed jobs (a recovered panic, a watchdog stall) are
// retried up to -retries times before quarantine.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"dynamo"
	"dynamo/internal/cliflags"
	"dynamo/internal/experiments"
	"dynamo/internal/telemetry"
)

func main() {
	threads := cliflags.Threads(flag.CommandLine, 32)
	seed := cliflags.Seed(flag.CommandLine)
	scale := cliflags.Scale(flag.CommandLine, 1.0)
	jobs := cliflags.Jobs(flag.CommandLine)
	cacheDir := cliflags.CacheDir(flag.CommandLine, cliflags.DefaultCacheDir)
	quick := flag.Bool("quick", false, "scaled-down suite (8 threads, scale 0.05) unless -threads/-scale are given")
	verbose, quiet := cliflags.Verbosity(flag.CommandLine)
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	ckptEvery := cliflags.CkptEvery(flag.CommandLine)
	resume := cliflags.Resume(flag.CommandLine)
	retries := cliflags.Retries(flag.CommandLine)
	remote := flag.String("remote", "", "run simulations on a dynamo-serve sweep service at this address instead of locally")
	remoteDeadline := flag.Duration("remote-deadline", 0, "with -remote, bound each remote job's wait and stamp sweeps with this wire deadline (0 = none)")
	serve := cliflags.Serve(flag.CommandLine)
	serveGrace := flag.Duration("serve-grace", 0, "with -serve, keep the telemetry endpoints up this long after the sweep finishes")
	statsJSON := flag.String("stats-json", "", "write machine-readable sweep stats as JSON to this file")
	cpuprofile := cliflags.CPUProfile(flag.CommandLine)
	memprofile := cliflags.MemProfile(flag.CommandLine)
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	log := cliflags.NewLogger(*verbose, *quiet)

	stopProfiles, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *quick {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["threads"] {
			*threads = 8
		}
		if !set["scale"] {
			*scale = 0.05
		}
	}

	// SIGINT/SIGTERM cancel the sweep instead of killing the process:
	// queued jobs abort, running jobs checkpoint (with -ckpt-every) and
	// stop, completed results are already in the cache.
	interrupt := make(chan struct{})
	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-signals
		signal.Stop(signals)
		close(interrupt)
	}()

	opts := experiments.Options{
		Threads:        *threads,
		Seed:           *seed,
		Scale:          *scale,
		Workers:        *jobs,
		CacheDir:       *cacheDir,
		Retries:        *retries,
		CkptEvery:      *ckptEvery,
		Resume:         *resume,
		Interrupt:      interrupt,
		Log:            log.DebugWriter(),
		Remote:         *remote,
		RemoteDeadline: *remoteDeadline,
	}
	if *remote != "" {
		// The server owns the durable cache and the checkpoints; keeping a
		// local result cache on top is allowed (-cache-dir), but local
		// checkpointing of remote jobs is meaningless.
		opts.CkptEvery, opts.Resume = 0, false
		log.Infof("dynamo-experiments: running simulations on %s", *remote)
	}

	// Telemetry runs whenever something consumes it: the -serve endpoints
	// or the interactive progress line. It observes the sweep only —
	// tables on stdout are byte-identical with it on or off.
	liveProgress := !*quiet && !*verbose && stderrIsTTY()
	var tel *telemetry.Sweep
	if *serve != "" || liveProgress {
		var topts telemetry.SweepOptions
		if *serve != "" && *cacheDir != "" {
			// The structured job journal lives next to the cache it
			// describes; a journal failure degrades observability, never
			// the sweep.
			if err := os.MkdirAll(*cacheDir, 0o755); err == nil {
				if j, err := telemetry.OpenJournal(filepath.Join(*cacheDir, "journal.jsonl")); err == nil {
					topts.Journal = j
				} else {
					log.Errorf("dynamo-experiments: %v", err)
				}
			}
		}
		tel = telemetry.NewSweep(topts)
		defer tel.Close()
		opts.Telemetry = tel
	}
	var srv *telemetry.Server
	if *serve != "" {
		srv, err = telemetry.Serve(*serve, tel)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Infof("dynamo-experiments: serving telemetry on http://%s", srv.Addr())
	}

	stopProgress := func() {}
	if liveProgress {
		stopProgress = startProgressLine(tel)
	}

	suite := experiments.NewSuite(opts)

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
	}
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	suiteStart := time.Now()
	for _, id := range ids {
		e, err := experiments.Find(id)
		if err != nil {
			stopProgress()
			log.Fatal(err)
		}
		start := time.Now()
		table, err := e.Run(suite)
		if err != nil {
			stopProgress()
			if errors.Is(err, dynamo.ErrInterrupted) {
				st := suite.Runner().Stats()
				log.Errorf("dynamo-experiments: interrupted during %s (%d jobs cancelled, %d results cached)",
					e.ID, st.Interrupted, st.Misses+st.DiskHits)
				log.Errorf("dynamo-experiments: re-run with -resume (same flags) to continue from the checkpoints in %s",
					*cacheDir)
				os.Exit(130)
			}
			log.Fatalf("%s: %v", e.ID, err)
		}
		clearProgressLine(liveProgress)
		log.Infof("%s: %.1fs", e.ID, time.Since(start).Seconds())
		fmt.Printf("== %s — %s\n\n%s\n", e.ID, e.Title, table)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				stopProgress()
				log.Fatal(err)
			}
		}
	}
	stopProgress()

	st := suite.Runner().Stats()
	w := log.InfoWriter()
	fmt.Fprintf(w,
		"runner: %d requests -> %d jobs: %d simulated, %d memory hits, %d disk hits, %d evictions",
		st.Requests, st.Submitted, st.Simulated(), st.Hits, st.DiskHits, st.Evictions)
	if st.Retries > 0 {
		fmt.Fprintf(w, ", %d retries", st.Retries)
	}
	if st.Resumed > 0 {
		fmt.Fprintf(w, ", %d resumed", st.Resumed)
	}
	if st.Saved > 0 {
		fmt.Fprintf(w, ", saved %s", st.Saved.Round(time.Millisecond))
	}
	if st.SimEvents > 0 && st.SimTime > 0 {
		fmt.Fprintf(w, ", %d events @ %.2f M events/s",
			st.SimEvents, float64(st.SimEvents)/st.SimTime.Seconds()/1e6)
	}
	fmt.Fprintf(w, " (wall %.1fs, jobs=%d)\n",
		time.Since(suiteStart).Seconds(), suite.Runner().Jobs())
	if st.Simulated() == 0 && st.DiskHits > 0 {
		log.Infof("runner: warm cache — 100%% cache hits, zero simulations executed")
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, st, suite.Runner().Jobs(), time.Since(suiteStart)); err != nil {
			log.Fatal(err)
		}
	}

	if srv != nil && *serveGrace > 0 {
		// Leave the endpoints up for a final scrape (CI gates, a last
		// Prometheus pull); SIGINT ends the grace period early.
		log.Infof("dynamo-experiments: telemetry stays on http://%s for %s (ctrl-c to stop)",
			srv.Addr(), serveGrace)
		select {
		case <-time.After(*serveGrace):
		case <-interrupt:
		}
	}
}

// stderrIsTTY reports whether stderr is an interactive terminal — the
// live progress line stays off under redirection and in CI.
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// clearProgressLine erases the in-place progress line so a regular log
// line does not append to it.
func clearProgressLine(active bool) {
	if active {
		fmt.Fprint(os.Stderr, "\r\x1b[K")
	}
}

// startProgressLine refreshes a single in-place stderr line with the
// sweep's live state (done/total, cache hits, retries, ETA) until the
// returned stop function is called.
func startProgressLine(tel *telemetry.Sweep) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				clearProgressLine(true)
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr, "\r\x1b[K%s", progressLine(tel.Progress()))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// progressLine renders one human-readable sweep status line.
func progressLine(p telemetry.Progress) string {
	line := fmt.Sprintf("  sweep: %d/%d jobs", p.Finished(), p.TotalJobs)
	if hits := p.MemoryHits + p.DiskHits; hits > 0 {
		line += fmt.Sprintf(", %d cache hits", hits)
	}
	if p.Running > 0 {
		line += fmt.Sprintf(", %d running", p.Running)
	}
	if p.Retries > 0 {
		line += fmt.Sprintf(", %d retries", p.Retries)
	}
	if p.FailedJobs > 0 {
		line += fmt.Sprintf(", %d failed", p.FailedJobs)
	}
	if p.ETASeconds > 0 {
		line += ", ETA " + (time.Duration(p.ETASeconds * float64(time.Second))).Round(time.Second).String()
	}
	return line
}

// writeStatsJSON renders the sweep's runner counters plus derived host
// throughput as a machine-readable file, for perf-trajectory tooling that
// wants sweep-level numbers rather than the single-run BENCH matrix.
func writeStatsJSON(path string, st dynamo.RunnerStats, jobs int, wall time.Duration) error {
	out := struct {
		dynamo.RunnerStats
		Jobs         int     `json:"jobs"`
		WallSeconds  float64 `json:"wall_seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
	}{RunnerStats: st, Jobs: jobs, WallSeconds: wall.Seconds()}
	if st.SimEvents > 0 && st.SimTime > 0 {
		out.EventsPerSec = float64(st.SimEvents) / st.SimTime.Seconds()
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
