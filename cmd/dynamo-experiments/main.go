// Command dynamo-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	dynamo-experiments [flags] [experiment ...]
//
// With no arguments it runs every experiment in paper order. Experiment
// ids: fig1, table1, table2, table3, fig6, fig7, fig8, fig9, energy,
// fig10, hwcost, fig11, table4, ablation, dse.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dynamo/internal/experiments"
)

func main() {
	threads := flag.Int("threads", 32, "worker threads per simulation (paper: 32)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = host cores)")
	verbose := flag.Bool("v", false, "log every simulation run")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{
		Threads: *threads,
		Seed:    *seed,
		Scale:   *scale,
		Workers: *workers,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	suite := experiments.NewSuite(opts)

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, err := experiments.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		table, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s — %s (%.1fs)\n\n%s\n", e.ID, e.Title, time.Since(start).Seconds(), table)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
