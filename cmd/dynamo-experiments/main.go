// Command dynamo-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	dynamo-experiments [flags] [experiment ...]
//
// With no arguments (or the pseudo-id "all") it runs every experiment in
// paper order. Experiment ids: fig1, table1, table2, table3, fig6, fig7,
// fig8, fig9, energy, fig10, hwcost, fig11, table4, ablation, dse,
// latency, profile.
//
// All simulations run through the sweep runner: identical runs are
// deduplicated across experiments, executed on -jobs workers, and
// persisted under -cache-dir — a second invocation with the same flags
// simulates nothing. Tables go to stdout and are byte-identical for any
// -jobs value and any cache state; timing, progress and cache statistics
// go to stderr.
//
// A sweep is crash-safe: with -ckpt-every, running jobs periodically
// checkpoint into the cache directory, and SIGINT/SIGTERM stop the sweep
// gracefully (in-flight jobs checkpoint, finished results stay cached).
// Re-invoking with -resume restores the unfinished jobs from their
// checkpoints and completes the sweep with byte-identical tables.
// Transiently failed jobs (a recovered panic, a watchdog stall) are
// retried up to -retries times before quarantine.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dynamo"
	"dynamo/internal/cliflags"
	"dynamo/internal/experiments"
)

func main() {
	threads := cliflags.Threads(flag.CommandLine, 32)
	seed := cliflags.Seed(flag.CommandLine)
	scale := cliflags.Scale(flag.CommandLine, 1.0)
	jobs := cliflags.Jobs(flag.CommandLine)
	cacheDir := cliflags.CacheDir(flag.CommandLine, cliflags.DefaultCacheDir)
	quick := flag.Bool("quick", false, "scaled-down suite (8 threads, scale 0.05) unless -threads/-scale are given")
	verbose := flag.Bool("v", false, "log every simulation run")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	ckptEvery := cliflags.CkptEvery(flag.CommandLine)
	resume := cliflags.Resume(flag.CommandLine)
	retries := cliflags.Retries(flag.CommandLine)
	statsJSON := flag.String("stats-json", "", "write machine-readable sweep stats as JSON to this file")
	cpuprofile := cliflags.CPUProfile(flag.CommandLine)
	memprofile := cliflags.MemProfile(flag.CommandLine)
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	stopProfiles, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *quick {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["threads"] {
			*threads = 8
		}
		if !set["scale"] {
			*scale = 0.05
		}
	}

	// SIGINT/SIGTERM cancel the sweep instead of killing the process:
	// queued jobs abort, running jobs checkpoint (with -ckpt-every) and
	// stop, completed results are already in the cache.
	interrupt := make(chan struct{})
	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-signals
		signal.Stop(signals)
		close(interrupt)
	}()

	opts := experiments.Options{
		Threads:   *threads,
		Seed:      *seed,
		Scale:     *scale,
		Workers:   *jobs,
		CacheDir:  *cacheDir,
		Retries:   *retries,
		CkptEvery: *ckptEvery,
		Resume:    *resume,
		Interrupt: interrupt,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	suite := experiments.NewSuite(opts)

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
	}
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	suiteStart := time.Now()
	for _, id := range ids {
		e, err := experiments.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		table, err := e.Run(suite)
		if err != nil {
			if errors.Is(err, dynamo.ErrInterrupted) {
				st := suite.Runner().Stats()
				fmt.Fprintf(os.Stderr, "dynamo-experiments: interrupted during %s (%d jobs cancelled, %d results cached)\n",
					e.ID, st.Interrupted, st.Misses+st.DiskHits)
				fmt.Fprintf(os.Stderr, "dynamo-experiments: re-run with -resume (same flags) to continue from the checkpoints in %s\n",
					*cacheDir)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s: %.1fs\n", e.ID, time.Since(start).Seconds())
		fmt.Printf("== %s — %s\n\n%s\n", e.ID, e.Title, table)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	st := suite.Runner().Stats()
	fmt.Fprintf(os.Stderr,
		"runner: %d requests -> %d jobs: %d simulated, %d memory hits, %d disk hits, %d evictions",
		st.Requests, st.Submitted, st.Simulated(), st.Hits, st.DiskHits, st.Evictions)
	if st.Retries > 0 {
		fmt.Fprintf(os.Stderr, ", %d retries", st.Retries)
	}
	if st.Resumed > 0 {
		fmt.Fprintf(os.Stderr, ", %d resumed", st.Resumed)
	}
	if st.Saved > 0 {
		fmt.Fprintf(os.Stderr, ", saved %s", st.Saved.Round(time.Millisecond))
	}
	if st.SimEvents > 0 && st.SimTime > 0 {
		fmt.Fprintf(os.Stderr, ", %d events @ %.2f M events/s",
			st.SimEvents, float64(st.SimEvents)/st.SimTime.Seconds()/1e6)
	}
	fmt.Fprintf(os.Stderr, " (wall %.1fs, jobs=%d)\n",
		time.Since(suiteStart).Seconds(), suite.Runner().Jobs())
	if st.Simulated() == 0 && st.DiskHits > 0 {
		fmt.Fprintln(os.Stderr, "runner: warm cache — 100% cache hits, zero simulations executed")
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, st, suite.Runner().Jobs(), time.Since(suiteStart)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeStatsJSON renders the sweep's runner counters plus derived host
// throughput as a machine-readable file, for perf-trajectory tooling that
// wants sweep-level numbers rather than the single-run BENCH matrix.
func writeStatsJSON(path string, st dynamo.RunnerStats, jobs int, wall time.Duration) error {
	out := struct {
		dynamo.RunnerStats
		Jobs         int     `json:"jobs"`
		WallSeconds  float64 `json:"wall_seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
	}{RunnerStats: st, Jobs: jobs, WallSeconds: wall.Seconds()}
	if st.SimEvents > 0 && st.SimTime > 0 {
		out.EventsPerSec = float64(st.SimEvents) / st.SimTime.Seconds()
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
