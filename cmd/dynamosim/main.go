// Command dynamosim runs one workload under one AMO placement policy and
// prints the run's metrics.
//
// Usage:
//
//	dynamosim -workload histogram -policy dynamo-reuse-pn [-threads 32]
//	dynamosim -workload histogram -policy dynamo-reuse-pn -hist -timeline t.json
//	dynamosim -workload histogram -hotlines 16
//	dynamosim -workload histogram -interval 50000 -interval-csv intervals.csv
//	dynamosim -workload histogram -check
//	dynamosim -workload histogram -check -chaos-seed 7 -chaos-level 2
//	dynamosim -workload histogram -ckpt run.ckpt -ckpt-every 5000000
//	dynamosim -workload histogram -resume run.ckpt
//	dynamosim -workload histogram -json
//	dynamosim -list
//
// SIGINT/SIGTERM interrupt the run gracefully: with -ckpt set, a final
// checkpoint is written before exiting, and a later invocation with
// -resume continues the run to a byte-identical result.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"dynamo"
	"dynamo/internal/cliflags"
)

// writeCheckpoint atomically replaces path with ck (temp file + rename),
// so an interrupt mid-write never leaves a truncated checkpoint.
func writeCheckpoint(path string, ck *dynamo.Checkpoint) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(ck); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// exitRunError reports a failed or interrupted run and exits non-zero.
// An interrupted run with checkpointing enabled prints the resume hint.
func exitRunError(log *cliflags.Logger, err error, ckptFile string) {
	if errors.Is(err, dynamo.ErrInterrupted) {
		log.Errorf("dynamosim: interrupted")
		if ckptFile != "" {
			log.Errorf("dynamosim: resume with -resume %s", ckptFile)
		}
		os.Exit(130)
	}
	log.Fatal(err)
}

func main() {
	wl := cliflags.Workload(flag.CommandLine)
	policy := cliflags.Policy(flag.CommandLine)
	threads := cliflags.Threads(flag.CommandLine, 32)
	seed := cliflags.Seed(flag.CommandLine)
	scale := cliflags.Scale(flag.CommandLine, 1.0)
	input := cliflags.Input(flag.CommandLine)
	detail := flag.Bool("detail", false, "print every raw counter")
	prefetch := flag.Int("prefetch", 0, "L1D stride prefetch degree (0 = off)")
	hist := flag.Bool("hist", false, "print per-class latency histograms and counters")
	hotlines := flag.Int("hotlines", 0, "profile the N hottest AMO cache lines (0 = off)")
	profileJSON := flag.String("profile-json", "", "write the contention profile as JSON to this file (implies -hotlines)")
	interval := flag.Int64("interval", 0, "sample interval telemetry every N cycles (0 = off)")
	intervalJSON := flag.String("interval-json", "", "write the interval series as JSON to this file")
	intervalCSV := flag.String("interval-csv", "", "write the interval series as CSV to this file")
	timeline := flag.String("timeline", "", "write a Chrome trace-event timeline to this file")
	checkOn := cliflags.Check(flag.CommandLine)
	chaosSeed := cliflags.ChaosSeed(flag.CommandLine)
	chaosLevel := cliflags.ChaosLevel(flag.CommandLine)
	ckptFile := flag.String("ckpt", "", "write checkpoints to this file (periodic with -ckpt-every, final on SIGINT/SIGTERM)")
	ckptEvery := cliflags.CkptEvery(flag.CommandLine)
	resumeFile := flag.String("resume", "", "restore the run from this checkpoint file")
	perfOn := flag.Bool("perf", false, "self-profile host performance (events/sec, subsystem attribution)")
	cpuprofile := cliflags.CPUProfile(flag.CommandLine)
	memprofile := cliflags.MemProfile(flag.CommandLine)
	jsonOut := cliflags.JSON(flag.CommandLine)
	verbose, quiet := cliflags.Verbosity(flag.CommandLine)
	list := flag.Bool("list", false, "list workloads and policies")
	flag.Parse()

	log := cliflags.NewLogger(*verbose, *quiet)

	stopProfiles, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	if *list {
		fmt.Println("workloads:")
		for _, name := range dynamo.Workloads() {
			info, err := dynamo.DescribeWorkload(name)
			if err != nil {
				log.Fatal(err)
			}
			inputs := ""
			if len(info.Inputs) > 0 {
				inputs = " inputs: " + strings.Join(info.Inputs, ",")
			}
			fmt.Printf("  %-14s %-5s %-9s class=%s  %s%s\n", info.Name, info.Code, info.Suite, info.Class, info.Sync, inputs)
		}
		fmt.Println("policies:")
		for _, p := range dynamo.Policies() {
			fmt.Printf("  %s\n", p)
		}
		fmt.Printf("probe classes:\n  %s\n", strings.Join(dynamo.ProbeClasses(), " "))
		fmt.Printf("probe phases:\n  %s\n", strings.Join(dynamo.ProbePhases(), " "))
		fmt.Printf("probe counters:\n  %s\n", strings.Join(dynamo.ProbeCounters(), " "))
		fmt.Printf("probe spans:\n  %s\n", strings.Join(dynamo.ProbeSpans(), " "))
		return
	}
	if *wl == "" {
		log.Errorf("dynamosim: -workload is required (try -list)")
		os.Exit(2)
	}

	// Early, typed validation through the same wire request a sweep or the
	// sweep service would carry: an unknown workload, policy or input
	// fails here naming the bad field, before any machinery is built.
	wireReq := dynamo.SweepRequest{
		Workload:   *wl,
		Policy:     *policy,
		Input:      *input,
		Threads:    *threads,
		Seed:       *seed,
		Scale:      *scale,
		Check:      *checkOn,
		ChaosSeed:  *chaosSeed,
		ChaosLevel: *chaosLevel,
	}
	if err := wireReq.Validate(); err != nil {
		log.Fatalf("dynamosim: %v", err)
	}

	cfg := dynamo.DefaultConfig()
	cfg.Chi.PrefetchDegree = *prefetch
	if *profileJSON != "" && *hotlines == 0 {
		*hotlines = 32
	}
	opts := []dynamo.Option{
		dynamo.WithPolicy(*policy),
		dynamo.WithThreads(*threads),
		dynamo.WithSeed(*seed),
		dynamo.WithScale(*scale),
		dynamo.WithInput(*input),
	}
	if *checkOn {
		opts = append(opts, dynamo.WithCheck())
	}
	if *perfOn {
		opts = append(opts, dynamo.WithHostPerf())
	}
	if *chaosSeed != 0 || *chaosLevel != 0 {
		opts = append(opts, dynamo.WithChaos(*chaosSeed, *chaosLevel))
	}
	var bus *dynamo.ObsBus
	if *hist || *timeline != "" || *jsonOut || *hotlines > 0 || *interval > 0 {
		if *timeline != "" {
			bus = dynamo.NewObs(dynamo.WithTimeline())
		} else {
			bus = dynamo.NewObs()
		}
		opts = append(opts, dynamo.WithObs(bus))
	}
	var prof *dynamo.Profiler
	if *hotlines > 0 {
		prof = dynamo.NewProfiler(*hotlines)
		opts = append(opts, dynamo.WithProfile(prof))
	}
	var rec *dynamo.IntervalRecorder
	if *interval > 0 {
		rec = dynamo.NewIntervalRecorder(*interval, 0)
		opts = append(opts, dynamo.WithInterval(rec))
	}
	if *ckptFile != "" {
		opts = append(opts, dynamo.WithCheckpoint(*ckptEvery, func(ck *dynamo.Checkpoint) {
			if err := writeCheckpoint(*ckptFile, ck); err != nil {
				log.Errorf("dynamosim: checkpoint write failed: %v", err)
			}
		}))
	}
	// SIGINT/SIGTERM cancel the run instead of killing the process: the
	// machine captures a final checkpoint (with -ckpt) and unwinds.
	interrupt := make(chan struct{})
	signals := make(chan os.Signal, 1)
	signal.Notify(signals, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-signals
		signal.Stop(signals)
		close(interrupt)
	}()
	opts = append(opts, dynamo.WithInterrupt(interrupt))

	session, err := dynamo.New(cfg, opts...)
	if err != nil {
		log.Fatal(err)
	}
	var res *dynamo.Result
	if *resumeFile != "" {
		f, err := os.Open(*resumeFile)
		if err != nil {
			log.Fatal(err)
		}
		ck, err := dynamo.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Infof("dynamosim: resuming from %s (event %d)", *resumeFile, ck.Event)
		res, err = session.Resume(*wl, ck)
		if err != nil {
			exitRunError(log, err, *ckptFile)
		}
	} else {
		res, err = session.Run(*wl)
		if err != nil {
			exitRunError(log, err, *ckptFile)
		}
	}

	writeFile := func(name string, write func(f *os.File) error) {
		f, err := os.Create(name)
		if err == nil {
			if err = write(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if *profileJSON != "" {
		writeFile(*profileJSON, func(f *os.File) error {
			return dynamo.ContentionReport(prof, bus).WriteJSON(f)
		})
	}
	if *intervalJSON != "" && rec != nil {
		writeFile(*intervalJSON, func(f *os.File) error { return rec.WriteJSON(f) })
	}
	if *intervalCSV != "" && rec != nil {
		writeFile(*intervalCSV, func(f *os.File) error { return rec.WriteCSV(f) })
	}

	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			log.Fatal(err)
		}
		if err := bus.WriteTimeline(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("workload        %s\n", *wl)
	fmt.Printf("policy          %s\n", res.Policy)
	fmt.Printf("cycles          %d\n", res.Cycles)
	fmt.Printf("instructions    %d\n", res.Instructions)
	fmt.Printf("AMOs            %d (APKI %.2f; %d AtomicLoads, %d AtomicStores)\n",
		res.AMOs, res.APKI, res.AMOLoads, res.AMOStores)
	fmt.Printf("placement       %d near-local, %d near-fetch, %d far\n",
		res.NearLocal, res.NearTxn, res.Far)
	fmt.Printf("avg AMO latency %.1f cycles\n", res.AvgAMOLatency)
	fmt.Printf("NoC             %d messages, %d flits, %d flit-hops\n",
		res.NoC.Messages, res.NoC.Flits, res.NoC.FlitHops)
	fmt.Printf("memory          %d reads, %d writes\n", res.Mem.Reads, res.Mem.Writes)
	fmt.Printf("dynamic energy  %.2f uJ (caches %.1f%%, NoC %.1f%%, memory %.1f%%)\n",
		res.Energy.Total()/1e6,
		100*res.Energy.Caches/res.Energy.Total(),
		100*res.Energy.NoC/res.Energy.Total(),
		100*res.Energy.Memory/res.Energy.Total())
	if res.Check != nil {
		fmt.Printf("sanitizer       clean (%d periodic audits, %d release audits, max %d MSHRs, max %d blocked lines)\n",
			res.Check.Audits, res.Check.ReleaseAudits, res.Check.MaxMSHRs, res.Check.MaxBusyLines)
	}
	if res.HostPerf != nil {
		fmt.Print(res.HostPerf.Summary())
	}
	if prof != nil {
		fmt.Println("\ncontention profile (hottest AMO lines):")
		fmt.Print(dynamo.ContentionReport(prof, bus).Table())
	}
	if rec != nil {
		fmt.Printf("\ninterval telemetry: %d records of %d cycles", rec.Len(), *interval)
		if d := rec.Dropped(); d > 0 {
			fmt.Printf(" (%d oldest dropped)", d)
		}
		fmt.Println()
	}
	if *hist {
		fmt.Println("\nlatency histograms (cycles):")
		fmt.Print(res.Obs.Table())
		if len(res.Obs.Spans) > 0 {
			fmt.Println("\noccupancy and stall spans (cycles):")
			fmt.Print(res.Obs.SpanTable())
		}
		if len(res.Obs.Counters) > 0 {
			fmt.Println("\nobservability counters:")
			fmt.Print(res.Obs.CounterTable())
		}
	}
	if *detail {
		fmt.Println("\nraw counters:")
		fmt.Print(res.Detail)
	}
}
