package dynamo

import (
	"fmt"
	"io"

	"dynamo/internal/check"
	"dynamo/internal/checkpoint"
	"dynamo/internal/core"
	"dynamo/internal/machine"
	"dynamo/internal/memory"
	"dynamo/internal/perf"
	"dynamo/internal/runner"
	"dynamo/internal/trace"
	"dynamo/internal/workload"
)

// Sentinel errors for the public surface; match with errors.Is. Every
// constructor and run entry point wraps these instead of bare strings.
var (
	// ErrUnknownPolicy reports a placement-policy name that is not
	// registered (see Policies).
	ErrUnknownPolicy = core.ErrUnknownPolicy
	// ErrUnknownWorkload reports a workload name that is not registered
	// (see Workloads).
	ErrUnknownWorkload = workload.ErrUnknown
	// ErrTimeout reports a run that exceeded its simulated event budget
	// (Config.MaxEvents).
	ErrTimeout = machine.ErrTimeout
	// ErrStalled reports a run the forward-progress watchdog abandoned: no
	// core committed an instruction for Config.WatchdogEvents events. The
	// returned error carries a machine diagnostic (event-queue, MSHR and
	// hot-line state at the stall).
	ErrStalled = machine.ErrStalled
	// ErrViolation reports a run the protocol invariant sanitizer aborted
	// (WithCheck); the returned error is a *check.Violation carrying the
	// violated invariant and a recent protocol-event trail.
	ErrViolation = check.ErrViolation
	// ErrJobPanicked reports a sweep job whose simulation panicked; the
	// Runner recovered and the rest of the sweep completed.
	ErrJobPanicked = runner.ErrJobPanicked
	// ErrInterrupted reports a run cancelled through WithInterrupt (or a
	// sweep cancelled through WithRunnerInterrupt). When checkpointing was
	// enabled, a final checkpoint was captured before the abort, so the
	// run is resumable, not lost.
	ErrInterrupted = machine.ErrInterrupted
	// ErrCheckpointIncompatible reports a checkpoint from a different
	// schema version or run identity.
	ErrCheckpointIncompatible = checkpoint.ErrIncompatible
	// ErrCheckpointCorrupt reports an unreadable, truncated or
	// digest-failing checkpoint.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	// ErrCheckpointDiverged reports a checkpoint whose deterministic
	// replay did not reproduce the stored state — the configuration or
	// simulator build no longer matches the run that captured it.
	ErrCheckpointDiverged = checkpoint.ErrDiverged
)

// Checkpoint is one serialized machine state at a specific event index,
// captured through WithCheckpoint and restored through Session.Resume.
// Restores are verified: the machine replays its deterministic event
// stream to the checkpoint's event index and cross-validates the
// reconstructed state against the stored digest bit-exactly, so a
// resumed run is byte-identical to one that was never interrupted.
type Checkpoint = checkpoint.Checkpoint

// ReadCheckpoint parses and structurally validates a serialized
// checkpoint: parse failures and digest mismatches return
// ErrCheckpointCorrupt, schema drift returns ErrCheckpointIncompatible.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	return machine.Restore(r)
}

// Session is a configured simulation context: one system configuration
// plus run parameters, built once with New and reused across runs. Runs
// on the same Session are independent — each builds its own machine — so
// a Session is safe for concurrent Run calls as long as the attached
// collectors (Obs, Profile, Interval, Trace) are not shared.
type Session struct {
	cfg  Config
	opts Options
}

// Option configures a Session.
type Option func(*Session)

// WithPolicy selects the AMO placement policy (default "all-near", the
// paper's baseline; see Policies).
func WithPolicy(name string) Option {
	return func(s *Session) { s.opts.Policy = name }
}

// WithThreads sets the worker-thread count (default: the core count).
func WithThreads(n int) Option {
	return func(s *Session) { s.opts.Threads = n }
}

// WithSeed sets the seed driving all pseudo-random choices (default 1).
func WithSeed(seed int64) Option {
	return func(s *Session) { s.opts.Seed = seed }
}

// WithScale multiplies the default problem size (default 1.0).
func WithScale(scale float64) Option {
	return func(s *Session) { s.opts.Scale = scale }
}

// WithInput selects a workload input variant (default: the workload's
// first registered input).
func WithInput(input string) Option {
	return func(s *Session) { s.opts.Input = input }
}

// WithTrace records every executed thread operation to w.
func WithTrace(w *trace.Writer) Option {
	return func(s *Session) { s.opts.Trace = w }
}

// WithObs attaches an observability bus; the run's digest lands in
// Result.Obs.
func WithObs(bus *ObsBus) Option {
	return func(s *Session) { s.opts.Obs = bus }
}

// WithProfile attaches the per-cacheline contention profiler (requires
// WithObs).
func WithProfile(p *Profiler) Option {
	return func(s *Session) { s.opts.Profile = p }
}

// WithInterval attaches the interval-telemetry recorder.
func WithInterval(rec *IntervalRecorder) Option {
	return func(s *Session) { s.opts.Interval = rec }
}

// WithoutValidation disables the post-run functional check (benchmarks).
func WithoutValidation() Option {
	return func(s *Session) { s.opts.SkipValidation = true }
}

// WithCheck attaches the runtime protocol invariant sanitizer: SWMR and
// directory audits on every transaction release and at a periodic
// interval, MSHR and transaction-table occupancy bounds, and end-of-run
// quiescence and leak audits. A violated invariant aborts the run with a
// *check.Violation (match with ErrViolation); a clean run reports its
// audit counters in Result.Check.
func WithCheck() Option {
	return func(s *Session) { s.opts.Check = true }
}

// WithHostPerf attaches the host-performance self-profiler: every kernel
// event is counted per scheduling subsystem, wall-clock cost is sampled
// (one timed event per perf.DefaultSampleStride), and heap/GC deltas are
// read via runtime/metrics. The report lands in Result.HostPerf.
// Profiling is purely observational: simulated results are bit-identical
// with it on or off.
func WithHostPerf() Option {
	return func(s *Session) { s.opts.HostPerf = true }
}

// WithChaos attaches the deterministic fault injector: protocol-legal
// timing perturbations (NoC link jitter, HBM channel skew, snoop-response
// reordering, forced predictor-table eviction pressure) drawn from seed
// at intensity level 1..3. Functional results are unaffected by
// construction — only schedules move — and a given seed replays exactly.
// A zero level with a non-zero seed selects level 1, and vice versa.
func WithChaos(seed int64, level int) Option {
	return func(s *Session) {
		s.opts.ChaosSeed = seed
		s.opts.ChaosLevel = level
	}
}

// WithCheckpoint captures a checkpoint to sink every `every` simulation
// events, plus a final checkpoint when the run is interrupted
// (WithInterrupt). Restore one with Session.Resume.
func WithCheckpoint(every uint64, sink func(*Checkpoint)) Option {
	return func(s *Session) {
		s.opts.CkptEvery = every
		s.opts.CkptSink = sink
	}
}

// WithInterrupt cancels a run once ch is signaled or closed: the machine
// captures a final checkpoint to the WithCheckpoint sink (when one is
// configured) and aborts with ErrInterrupted.
func WithInterrupt(ch <-chan struct{}) Option {
	return func(s *Session) { s.opts.Interrupt = ch }
}

// New builds a Session on cfg. The policy name and thread count are
// validated eagerly: an unregistered policy returns ErrUnknownPolicy
// here, not at the first Run.
func New(cfg Config, options ...Option) (*Session, error) {
	s := &Session{cfg: cfg}
	for _, o := range options {
		o(s)
	}
	s.opts.Config = &s.cfg
	filled, conf, err := s.opts.fill()
	if err != nil {
		return nil, err
	}
	if _, err := core.New(conf.Policy, conf.Chi.Cores, conf.AMT); err != nil {
		return nil, err
	}
	s.opts = filled
	s.cfg = conf
	s.opts.Config = &s.cfg
	return s, nil
}

// Run executes the named workload and returns its metrics. The workload's
// functional result is validated unless the Session was built with
// WithoutValidation.
func (s *Session) Run(workloadName string) (*Result, error) {
	spec, err := workload.Get(workloadName)
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build(workload.Params{
		Threads: s.opts.Threads,
		Seed:    s.opts.Seed,
		Scale:   s.opts.Scale,
		Input:   s.opts.Input,
	})
	if err != nil {
		return nil, err
	}
	return runInstance(s.cfg, inst, s.opts)
}

// Resume restores a run of the named workload from a checkpoint and
// carries it to completion, returning metrics byte-identical to an
// uninterrupted run. The Session must be configured identically to the
// one that captured the checkpoint (same config, policy, parameters and
// chaos wiring): an unreproducible checkpoint fails with
// ErrCheckpointDiverged, a mismatched identity with
// ErrCheckpointIncompatible.
func (s *Session) Resume(workloadName string, ck *Checkpoint) (*Result, error) {
	spec, err := workload.Get(workloadName)
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build(workload.Params{
		Threads: s.opts.Threads,
		Seed:    s.opts.Seed,
		Scale:   s.opts.Scale,
		Input:   s.opts.Input,
	})
	if err != nil {
		return nil, err
	}
	opts := s.opts
	opts.resume = ck
	return runInstance(s.cfg, inst, opts)
}

// RunCounter executes the Fig. 1 shared-counter microbenchmark: the
// Session's threads each performing ops atomic increments, with
// AtomicStore (noReturn) or AtomicLoad semantics.
func (s *Session) RunCounter(ops int, noReturn bool) (*Result, error) {
	inst, err := workload.Counter(s.opts.Threads, ops, noReturn, 8)
	if err != nil {
		return nil, err
	}
	return runInstance(s.cfg, inst, s.opts)
}

// RunPrograms executes custom programs (at most one per core) built
// against the Thread API, honouring the Session's trace and
// observability attachments, and returns the metrics plus a read
// function for inspecting final memory contents. Custom programs carry
// no validator, so no functional check runs.
func (s *Session) RunPrograms(programs []Program) (*Result, func(addr uint64) uint64, error) {
	cfg := s.cfg
	opts := s.opts
	if opts.Trace != nil {
		observe, flush := trace.Recorder(opts.Trace)
		cfg.CPU.Observe = observe
		defer flush()
	}
	cfg.Obs = opts.Obs
	cfg.Interval = opts.Interval
	if opts.Check {
		cfg.Check = &check.Config{}
	}
	if opts.HostPerf {
		cfg.Perf = perf.New(0)
	}
	if opts.Profile != nil {
		if opts.Obs == nil {
			return nil, nil, fmt.Errorf("dynamo: WithProfile requires WithObs")
		}
		opts.Obs.AttachContention(opts.Profile)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := attachChaos(m, opts); err != nil {
		return nil, nil, err
	}
	res, err := m.Run(programs)
	if err != nil {
		return nil, nil, err
	}
	read := func(addr uint64) uint64 { return m.Sys.Data.Load(memory.Addr(addr)) }
	return res, read, nil
}
