package dynamo

import (
	"errors"
	"testing"
)

func TestSessionWithCheck(t *testing.T) {
	s, err := New(smallConfig(),
		WithPolicy("dynamo-reuse-pn"),
		WithThreads(4),
		WithScale(0.1),
		WithCheck())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if res.Check == nil || !res.Check.Clean {
		t.Fatalf("sanitized run has no clean report: %+v", res.Check)
	}
	if res.Check.Audits == 0 && res.Check.ReleaseAudits == 0 {
		t.Fatalf("sanitizer audited nothing: %+v", res.Check)
	}
}

func TestSessionWithChaosIsDeterministic(t *testing.T) {
	run := func() *Result {
		s, err := New(smallConfig(),
			WithThreads(4),
			WithScale(0.1),
			WithCheck(),
			WithChaos(7, 2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run("histogram")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.NoC != b.NoC {
		t.Fatalf("chaos seed 7 does not replay: %d/%d cycles", a.Cycles, b.Cycles)
	}
	if a.Check == nil || !a.Check.Clean {
		t.Fatalf("perturbed run not clean: %+v", a.Check)
	}
}

func TestChaosLevelValidatedEagerly(t *testing.T) {
	if _, err := New(smallConfig(), WithChaos(1, 99)); err == nil {
		t.Fatal("New accepted an out-of-range chaos level")
	}
}

func TestWatchdogSurfacesStall(t *testing.T) {
	cfg := smallConfig()
	cfg.WatchdogEvents = 70_000
	s, err := New(cfg, WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.RunPrograms([]Program{func(th *Thread) {
		for { // spins without committing an instruction
			th.Pause(10)
		}
	}})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestSweepWithCheckAndChaos(t *testing.T) {
	r := NewRunner(WithJobs(2))
	res, err := r.Run(SweepRequest{
		Workload: "tc", Threads: 2, Scale: 0.05,
		Check: true, ChaosSeed: 3, ChaosLevel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Check == nil || !res.Check.Clean {
		t.Fatalf("sweep run has no clean report: %+v", res.Check)
	}
	if failed := r.Failed(); len(failed) != 0 {
		t.Fatalf("Failed() = %v", failed)
	}
}
