package dynamo

import (
	"errors"
	"testing"
)

func TestSessionWithCheck(t *testing.T) {
	s, err := New(smallConfig(),
		WithPolicy("dynamo-reuse-pn"),
		WithThreads(4),
		WithScale(0.1),
		WithCheck())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if res.Check == nil || !res.Check.Clean {
		t.Fatalf("sanitized run has no clean report: %+v", res.Check)
	}
	if res.Check.Audits == 0 && res.Check.ReleaseAudits == 0 {
		t.Fatalf("sanitizer audited nothing: %+v", res.Check)
	}
}

func TestSessionWithChaosIsDeterministic(t *testing.T) {
	run := func() *Result {
		s, err := New(smallConfig(),
			WithThreads(4),
			WithScale(0.1),
			WithCheck(),
			WithChaos(7, 2))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run("histogram")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.NoC != b.NoC {
		t.Fatalf("chaos seed 7 does not replay: %d/%d cycles", a.Cycles, b.Cycles)
	}
	if a.Check == nil || !a.Check.Clean {
		t.Fatalf("perturbed run not clean: %+v", a.Check)
	}
}

func TestChaosLevelValidatedEagerly(t *testing.T) {
	if _, err := New(smallConfig(), WithChaos(1, 99)); err == nil {
		t.Fatal("New accepted an out-of-range chaos level")
	}
}

func TestWatchdogSurfacesStall(t *testing.T) {
	cfg := smallConfig()
	cfg.WatchdogEvents = 70_000
	s, err := New(cfg, WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.RunPrograms([]Program{func(th *Thread) {
		for { // spins without committing an instruction
			th.Pause(10)
		}
	}})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestSessionCheckpointResume exercises the public crash-recovery path:
// checkpoints stream out of a run via WithCheckpoint, and Session.Resume
// restores the last one to a byte-identical completion.
func TestSessionCheckpointResume(t *testing.T) {
	build := func(opts ...Option) *Session {
		s, err := New(smallConfig(), append([]Option{
			WithPolicy("dynamo-reuse-pn"),
			WithThreads(4),
			WithScale(0.1),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	base, err := build().Run("histogram")
	if err != nil {
		t.Fatal(err)
	}

	var last *Checkpoint
	res, err := build(WithCheckpoint(base.SimEvents/3, func(ck *Checkpoint) {
		last = ck
	})).Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != base.Cycles {
		t.Fatalf("checkpointed run diverged: %d vs %d cycles", res.Cycles, base.Cycles)
	}
	if last == nil {
		t.Fatal("no checkpoint reached the sink")
	}
	if last.Event == 0 || last.Event >= base.SimEvents {
		t.Fatalf("checkpoint at event %d of %d", last.Event, base.SimEvents)
	}

	resumed, err := build().Resume("histogram", last)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Cycles != base.Cycles || resumed.Instructions != base.Instructions ||
		resumed.SimEvents != base.SimEvents {
		t.Fatalf("resumed run diverged: %d vs %d cycles", resumed.Cycles, base.Cycles)
	}

	// A Session configured differently cannot reproduce the checkpoint.
	if _, err := build(WithPolicy("shared-far"), WithChaos(5, 2)).Resume("histogram", last); !errors.Is(err, ErrCheckpointDiverged) {
		t.Fatalf("Resume under a different configuration = %v, want ErrCheckpointDiverged", err)
	}
}

func TestSweepWithCheckAndChaos(t *testing.T) {
	r := NewRunner(WithJobs(2))
	res, err := r.Run(SweepRequest{
		Workload: "tc", Threads: 2, Scale: 0.05,
		Check: true, ChaosSeed: 3, ChaosLevel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Check == nil || !res.Check.Clean {
		t.Fatalf("sweep run has no clean report: %+v", res.Check)
	}
	if failed := r.Failed(); len(failed) != 0 {
		t.Fatalf("Failed() = %v", failed)
	}
}
