package dynamo

import (
	"bytes"
	"strings"
	"testing"

	"dynamo/internal/regress"
)

// TestNoProbeLeaksAcrossWorkloads runs every registered workload with the
// probe bus attached and asserts every transaction begun on the bus was
// ended: a leak means some path in the machine loses a TxnID, which skews
// class histograms and interval deltas.
func TestNoProbeLeaksAcrossWorkloads(t *testing.T) {
	for _, wl := range Workloads() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			bus := NewObs()
			s := newSession(t, smallConfig(),
				WithThreads(4), WithScale(0.05), WithObs(bus))
			if _, err := s.Run(wl); err != nil {
				t.Fatal(err)
			}
			if leaks := bus.Leaks(); len(leaks) != 0 {
				t.Fatalf("%d leaked transactions, first: %+v", len(leaks), leaks[0])
			}
		})
	}
}

// profiledHistogramRun is one fully-instrumented run: contention profile
// JSON, interval telemetry CSV+JSON, and the regression snapshot.
func profiledHistogramRun(t *testing.T) (profJSON, csv, seriesJSON, snapJSON []byte) {
	t.Helper()
	bus := NewObs()
	prof := NewProfiler(16)
	rec := NewIntervalRecorder(5000, 0)
	s := newSession(t, smallConfig(),
		WithPolicy("dynamo-reuse-pn"), WithThreads(4), WithScale(0.1),
		WithObs(bus), WithProfile(prof), WithInterval(rec))
	res, err := s.Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no interval records collected")
	}
	var pb, cb, jb, sb bytes.Buffer
	if err := ContentionReport(prof, bus).WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	meta := map[string]string{"workload": "histogram", "policy": "dynamo-reuse-pn"}
	if err := regress.FromResult(meta, res).WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	return pb.Bytes(), cb.Bytes(), jb.Bytes(), sb.Bytes()
}

// TestProfileExportsDeterministic asserts every profiling artefact is
// byte-identical across identical-seed runs, and that hot lines resolve to
// the workload's tagged sites.
func TestProfileExportsDeterministic(t *testing.T) {
	p1, c1, j1, s1 := profiledHistogramRun(t)
	p2, c2, j2, s2 := profiledHistogramRun(t)
	if !bytes.Equal(p1, p2) {
		t.Error("contention profile JSON differs across identical runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("interval CSV differs across identical runs")
	}
	if !bytes.Equal(j1, j2) {
		t.Error("interval JSON differs across identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("regression snapshot differs across identical runs")
	}
	// The histogram kernel hammers its bucket array; the profiler must
	// attribute the hot lines to the tagged "buckets" site.
	if !strings.Contains(string(p1), `"site": "buckets"`) {
		t.Errorf("profile lacks buckets attribution:\n%s", p1)
	}
	// A snapshot diffed against itself reports no drift.
	a, err := regress.Read(bytes.NewReader(s1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := regress.Read(bytes.NewReader(s2))
	if err != nil {
		t.Fatal(err)
	}
	if d := regress.Diff(a, b, regress.Tolerance{}); len(d) != 0 {
		t.Fatalf("self-diff drift: %+v", d)
	}
}

// TestProbeVocabulary locks the discovery lists the dynamosim -list flag
// prints.
func TestProbeVocabulary(t *testing.T) {
	if got := len(ProbeClasses()); got != 7 {
		t.Fatalf("ProbeClasses() = %d entries", got)
	}
	if got := len(ProbePhases()); got != 9 {
		t.Fatalf("ProbePhases() = %d entries", got)
	}
	if got := ProbeCounters(); len(got) == 0 || got[0] != "cpu.stall-cycles" {
		t.Fatalf("ProbeCounters() = %v", got)
	}
	if got := ProbeSpans(); len(got) == 0 || got[0] != "burst" {
		t.Fatalf("ProbeSpans() = %v", got)
	}
}

// TestProfileRequiresObs guards the facade invariant: a profiler without a
// bus would silently record nothing.
func TestProfileRequiresObs(t *testing.T) {
	s := newSession(t, smallConfig(),
		WithThreads(4), WithScale(0.1), WithProfile(NewProfiler(8)))
	_, err := s.Run("histogram")
	if err == nil || !strings.Contains(err.Error(), "requires Options.Obs") {
		t.Fatalf("err = %v", err)
	}
}
