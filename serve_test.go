package dynamo

import (
	"errors"
	"testing"
	"time"
)

// TestServeFacadeHardening drives the fault-hardening surface end to end
// through the public facade: a preemption-enabled, admission-bounded
// service, a remote runner with a wire deadline, and the typed
// backpressure and timeout sentinels.
func TestServeFacadeHardening(t *testing.T) {
	svc, err := Serve("127.0.0.1:0",
		ServiceCacheDir(t.TempDir()),
		ServiceJobs(2),
		ServiceCheckpoints(20000),
		ServicePreemption(),
		ServiceMaxQueued(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A remote runner executes on the server; the generous deadline rides
	// along on the wire without expiring anything.
	r := NewRunner(WithJobs(2), WithRemote(svc.Addr(), RemoteDeadline(time.Minute), RemoteRetries(8)))
	defer r.Close()
	q := SweepRequest{Workload: "histogram", Policy: "all-near", Threads: 2, Scale: 0.05}
	out, err := r.Run(q)
	if err != nil || out == nil || out.SimEvents == 0 {
		t.Fatalf("remote run through facade: %v", err)
	}

	// The admission bound pushes back with the typed sentinel: three
	// distinct jobs in one batch cannot fit a queue of two.
	c := Dial(svc.Addr())
	c.Retries = 0
	_, err = c.Submit(
		SweepRequest{Workload: "tc", Policy: "all-near", Threads: 2, Scale: 0.05},
		SweepRequest{Workload: "tc", Policy: "shared-far", Threads: 2, Scale: 0.05},
		SweepRequest{Workload: "spmv", Policy: "all-near", Threads: 2, Scale: 0.05},
	)
	if !errors.Is(err, ErrServiceOverloaded) {
		t.Fatalf("oversized batch err = %v, want ErrServiceOverloaded", err)
	}

	// A deadline-bounded wait on a sweep that outlives it reports the
	// typed timeout.
	st, err := c.Submit(SweepRequest{Workload: "tc", Policy: "all-near", Threads: 2, Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	w := Dial(svc.Addr())
	w.Deadline = 30 * time.Millisecond
	if _, err := w.Wait(st.ID); !errors.Is(err, ErrSweepWaitTimeout) {
		t.Fatalf("bounded wait err = %v, want ErrSweepWaitTimeout", err)
	}
}
