package dynamo

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepTelemetryFacade drives the public observability surface end to
// end: WithService carrying a telemetry surface, a journal on disk, live
// endpoints, and the metrics renderer.
func TestSweepTelemetryFacade(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.jsonl")
	tel, err := NewSweepTelemetry(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()

	r := NewRunner(WithJobs(2), WithService("127.0.0.1:0", ServiceTelemetry(tel)))
	defer r.Close()
	addr, err := r.TelemetryAddr()
	if err != nil {
		t.Fatal(err)
	}
	if r.Telemetry() != tel {
		t.Fatal("Runner.Telemetry did not return the supplied surface")
	}

	req := SweepRequest{Workload: "tc", Threads: 2, Scale: 0.05}
	if _, err := r.Run(req); err != nil {
		t.Fatal(err)
	}
	r.Submit(req) // memory hit
	if err := r.Wait(); err != nil {
		t.Fatal(err)
	}

	var p SweepProgress
	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.TotalJobs != 1 || p.DoneJobs != 1 || p.MemoryHits != 1 || p.Workers != 2 {
		t.Errorf("/progress = %+v", p)
	}
	if p != tel.Progress() && p.DoneJobs != tel.Progress().DoneJobs {
		t.Errorf("endpoint and surface disagree: %+v vs %+v", p, tel.Progress())
	}

	var metrics bytes.Buffer
	if err := tel.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics.String(), `dynamo_sweep_jobs_total{state="done"} 1`) {
		t.Errorf("metrics missing done count:\n%s", metrics.String())
	}

	// The journal flushed one span for the executed job, readable and
	// convertible through the facade.
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	spans := tel.Tracer().Tail(0)
	if len(spans) != 1 || spans[0].Outcome != "ok" || spans[0].SimEvents == 0 {
		t.Errorf("job spans = %+v", spans)
	}
	parsed, err := ReadJobJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].Digest != spans[0].Digest {
		t.Errorf("ReadJobJournal = %+v, want tail %+v", parsed, spans)
	}
	var trace bytes.Buffer
	if err := ExportJobTrace(journal, &trace); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(trace.Bytes()) || !strings.Contains(trace.String(), `"traceEvents"`) {
		t.Errorf("ExportJobTrace output malformed:\n%s", trace.String())
	}
}
