#!/bin/sh
# Tier-1 check: formatting, vet, build, full test suite.
# Everything must pass clean before a change lands.
set -eu
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
echo "ci: OK"
