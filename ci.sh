#!/bin/sh
# Tier-1 check: formatting, vet, build, full test suite, then the
# stats-regression gate: fresh snapshots of a smoke set of runs are diffed
# against the committed baselines in testdata/baselines/ and any metric
# drift fails the build. Regenerate baselines after an intentional
# behaviour change with: ./ci.sh -update-baselines
# Finally the crash-recovery gate SIGKILLs a sweep mid-run and asserts a
# -resume rerun reproduces the uninterrupted tables byte-for-byte, and the
# soak gate repeatedly SIGKILLs and -resume-restarts the sweep *server*
# under deterministic storage/network fault injection, asserting the
# remote tables still come out byte-identical with no quarantine leaks.
# The worker-fleet soak gate runs the same sweep through a fleet of
# dynamo-worker processes under repeated worker SIGKILLs: lease expiry
# must reassign the dead workers' jobs (resuming from shipped
# checkpoints) and the tables must still match byte-for-byte.
#
# ./ci.sh bench [N] measures the pinned host-performance matrix into
# BENCH_N.json (N defaults to one past the highest committed file) and
# gates it against the previous trajectory point with dynamo-bench
# compare. Commit the new file to extend the perf trajectory.
set -eu
cd "$(dirname "$0")"

if [ "${1:-}" = "bench" ]; then
	pr="${2:-}"
	if [ -z "$pr" ]; then
		last=$(ls BENCH_*.json 2>/dev/null | sed 's/BENCH_\([0-9]*\)\.json/\1/' | sort -n | tail -1)
		if [ -n "$last" ]; then
			pr=$((last + 1))
		else
			pr=6
		fi
	fi
	bench=$(mktemp -d)
	trap 'rm -rf "$bench"' EXIT
	go build -o "$bench/dynamo-bench" ./cmd/dynamo-bench
	echo "ci: measuring host-performance matrix -> BENCH_$pr.json"
	"$bench/dynamo-bench" run -pr "$pr" -o "BENCH_$pr.json"
	prev=$(ls BENCH_*.json 2>/dev/null | sed 's/BENCH_\([0-9]*\)\.json/\1/' | sort -n \
		| awk -v pr="$pr" '$1 < pr' | tail -1)
	if [ -n "$prev" ]; then
		echo "ci: gating BENCH_$pr.json against BENCH_$prev.json"
		"$bench/dynamo-bench" compare "BENCH_$prev.json" "BENCH_$pr.json" -tolerance 0.25
	else
		echo "ci: no earlier BENCH file; trajectory starts at BENCH_$pr.json"
	fi
	echo "ci: bench OK"
	exit 0
fi

update=0
if [ "${1:-}" = "-update-baselines" ]; then
	update=1
fi

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...

# Sweep-runner smoke under the race detector: serial, parallel and
# warm-cache runs must render byte-identical tables, and a warm cache
# must simulate nothing.
go test -race -run TestParallelSerialDeterminism ./internal/experiments

# Robustness gate: invariant-checked runs through the CLI (sanitizer on,
# deterministic chaos on) must finish clean, and the committed chaos
# fuzz corpus must hold the metamorphic property.
for wl in histogram tc spmv; do
	echo "ci: invariant-checked run: $wl"
	go run ./cmd/dynamosim -workload "$wl" -threads 4 -scale 0.1 \
		-check -chaos-seed 1 -chaos-level 2 >/dev/null
done
go test -run Fuzz ./internal/chaos

# Bench-harness smoke: one quick trial per cell must produce a
# well-formed, schema-versioned file that self-compares clean, so the
# perf harness cannot rot between the PRs that actually run it.
benchsmoke=$(mktemp -d)
go build -o "$benchsmoke/dynamo-bench" ./cmd/dynamo-bench
echo "ci: bench harness smoke"
"$benchsmoke/dynamo-bench" run -quick -trials 1 -warmup 0 \
	-o "$benchsmoke/smoke.json" 2>/dev/null
"$benchsmoke/dynamo-bench" compare "$benchsmoke/smoke.json" "$benchsmoke/smoke.json"
rm -rf "$benchsmoke"

# Baseline gate: workload x policy smoke set on the small 4-core system.
# One snapshot per pair; zero tolerance — the simulator is deterministic,
# so any drift is a real behaviour change.
baselines=testdata/baselines
mkdir -p "$baselines"
stats=$(mktemp -d)
trap 'rm -rf "$stats"' EXIT
go build -o "$stats/dynamo-stats" ./cmd/dynamo-stats

for run in \
	"histogram all-near" \
	"histogram dynamo-reuse-pn" \
	"tc unique-near"; do
	set -- $run
	wl=$1
	policy=$2
	name="$wl-$policy.json"
	"$stats/dynamo-stats" snapshot -workload "$wl" -policy "$policy" \
		-threads 4 -scale 0.1 -small -o "$stats/$name"
	if [ "$update" = 1 ] || [ ! -f "$baselines/$name" ]; then
		cp "$stats/$name" "$baselines/$name"
		echo "ci: baseline updated: $baselines/$name"
	else
		echo "ci: diffing $name against baseline"
		"$stats/dynamo-stats" diff "$baselines/$name" "$stats/$name"
	fi
done

# Crash-recovery gate: a sweep SIGKILLed mid-run must complete under
# -resume with tables byte-identical to an uninterrupted sweep. If the
# sweep wins the race and finishes before the kill, the rerun is a pure
# warm-cache pass and the byte-identity assertion still holds.
go build -o "$stats/dynamo-experiments" ./cmd/dynamo-experiments
rcache="$stats/recovery-cache"
"$stats/dynamo-experiments" -quick -jobs 4 -cache-dir "$rcache" \
	fig7 >"$stats/fig7-want.txt" 2>/dev/null
rm -rf "$rcache"
"$stats/dynamo-experiments" -quick -jobs 4 -cache-dir "$rcache" \
	-ckpt-every 20000 fig7 >/dev/null 2>&1 &
sweep=$!
sleep 1
kill -9 "$sweep" 2>/dev/null || echo "ci: recovery sweep finished before the kill"
wait "$sweep" 2>/dev/null || true
echo "ci: resuming killed sweep"
"$stats/dynamo-experiments" -quick -jobs 4 -cache-dir "$rcache" \
	-ckpt-every 20000 -resume fig7 >"$stats/fig7-got.txt" 2>"$stats/fig7-resume.err"
grep -o '[0-9]* resumed' "$stats/fig7-resume.err" || true
cmp "$stats/fig7-want.txt" "$stats/fig7-got.txt"
echo "ci: killed sweep resumed to byte-identical tables"

# Telemetry gate: a served sweep must expose live /metrics, /progress and
# /jobs endpoints whose counts agree with the sweep's own summary, and
# serving must not perturb stdout — the tables stay byte-identical to the
# unserved fig7 run above. The instruments are pure atomics; re-check the
# package under the race detector.
go test -race ./internal/telemetry
echo "ci: telemetry gate"
tcache="$stats/telemetry-cache"
"$stats/dynamo-experiments" -quick -jobs 4 -cache-dir "$tcache" \
	-serve 127.0.0.1:0 -serve-grace 60s fig7 \
	>"$stats/fig7-served.txt" 2>"$stats/fig7-serve.err" &
served=$!
addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's!.*serving telemetry on http://!!p' "$stats/fig7-serve.err" | head -1)
	[ -n "$addr" ] && break
	sleep 0.2
done
[ -n "$addr" ] || { echo "ci: telemetry server never announced an address" >&2; exit 1; }
done_jobs=0
total_jobs=-1
for _ in $(seq 1 120); do
	progress=$(curl -fsS "http://$addr/progress") || { sleep 0.5; continue; }
	done_jobs=$(echo "$progress" | sed -n 's/.*"done_jobs": \([0-9]*\).*/\1/p')
	total_jobs=$(echo "$progress" | sed -n 's/.*"total_jobs": \([0-9]*\).*/\1/p')
	[ -n "$done_jobs" ] && [ "$done_jobs" -gt 0 ] && [ "$done_jobs" = "$total_jobs" ] && break
	sleep 0.5
done
[ "$done_jobs" -gt 0 ] && [ "$done_jobs" = "$total_jobs" ] || {
	echo "ci: sweep never converged on /progress (done=$done_jobs total=$total_jobs)" >&2
	exit 1
}
curl -fsS "http://$addr/metrics" >"$stats/metrics.txt"
for family in \
	dynamo_sweep_requests_total dynamo_sweep_jobs_total \
	dynamo_sweep_cache_total dynamo_sweep_job_duration_seconds_bucket; do
	grep -q "^$family" "$stats/metrics.txt" || {
		echo "ci: /metrics missing family $family" >&2
		exit 1
	}
done
metric_done=$(sed -n 's/^dynamo_sweep_jobs_total{state="done"} \([0-9]*\)$/\1/p' "$stats/metrics.txt")
[ "$metric_done" = "$done_jobs" ] || {
	echo "ci: /metrics done count $metric_done != /progress $done_jobs" >&2
	exit 1
}
curl -fsS "http://$addr/jobs?n=4" | grep -q '"digest"' || {
	echo "ci: /jobs returned no trace spans" >&2
	exit 1
}
kill -INT "$served" 2>/dev/null || true
wait "$served" 2>/dev/null || true
cmp "$stats/fig7-want.txt" "$stats/fig7-served.txt"
echo "ci: served sweep scraped clean with byte-identical tables ($done_jobs jobs)"

# Sweep-service gate: the HTTP control plane must run a remote quick
# suite with stdout tables byte-identical to the local run, survive a
# SIGTERM mid-sweep (in-flight jobs checkpoint, accepted sweeps persist,
# the client rides out the refused connections), complete the same work
# after a -resume restart on the same cache, and answer a rerun entirely
# from that cache. The scheduler and wire layers are concurrent;
# re-check the package under the race detector (the fault injector too —
# it sits on the hot path of both planes).
go test -race ./internal/service ./internal/faultio
echo "ci: sweep service gate"
go build -o "$stats/dynamo-serve" ./cmd/dynamo-serve
scache="$stats/service-cache"
"$stats/dynamo-serve" -addr 127.0.0.1:0 -cache-dir "$scache" \
	-ckpt-every 20000 -quiet >"$stats/serve-addr.txt" 2>/dev/null &
serve=$!
saddr=""
for _ in $(seq 1 50); do
	saddr=$(sed -n 's!^http://!!p' "$stats/serve-addr.txt" | head -1)
	[ -n "$saddr" ] && break
	sleep 0.2
done
[ -n "$saddr" ] || { echo "ci: dynamo-serve never announced an address" >&2; exit 1; }
"$stats/dynamo-experiments" -quick -jobs 4 -cache-dir "" -remote "$saddr" \
	fig7 >"$stats/fig7-remote.txt" 2>/dev/null &
rsweep=$!
sleep 1
echo "ci: SIGTERM mid-sweep, restarting dynamo-serve with -resume"
kill -TERM "$serve" 2>/dev/null || echo "ci: remote sweep finished before the kill"
wait "$serve" 2>/dev/null || true
"$stats/dynamo-serve" -addr "$saddr" -cache-dir "$scache" \
	-ckpt-every 20000 -resume -quiet >/dev/null 2>&1 &
serve=$!
wait "$rsweep"
cmp "$stats/fig7-want.txt" "$stats/fig7-remote.txt"
# Rerun: the server's cache answers everything; tables stay identical.
"$stats/dynamo-experiments" -quick -jobs 4 -cache-dir "" -remote "$saddr" \
	fig7 >"$stats/fig7-remote2.txt" 2>/dev/null
cmp "$stats/fig7-want.txt" "$stats/fig7-remote2.txt"
kill -TERM "$serve" 2>/dev/null || true
wait "$serve" 2>/dev/null || true
echo "ci: remote sweep survived a server restart with byte-identical tables"

# Crash-restart soak gate: a remote quick sweep against a server running
# with preemption AND deterministic storage/network fault injection, while
# the server is repeatedly SIGKILLed (no graceful drain) and restarted
# with -resume on the same cache. The client rides out the dead windows,
# the checkpoints carry the in-flight work across each crash, and at the
# end: tables byte-identical to the clean local baseline, zero quarantine
# markers, and the queued/running gauges drained to zero.
echo "ci: crash-restart soak gate (3 SIGKILL cycles under injected faults)"
kcache="$stats/soak-cache"
soak_server() {
	# $1: listen address; $2: extra flag (-resume) or empty.
	"$stats/dynamo-serve" -addr "$1" -cache-dir "$kcache" \
		-ckpt-every 20000 -preempt \
		-fault-seed 9 -fault-level 2 -fault-budget 40 \
		$2 -quiet >"$stats/soak-addr.txt" 2>/dev/null &
	soak=$!
}
soak_server 127.0.0.1:0 ""
kaddr=""
for _ in $(seq 1 50); do
	kaddr=$(sed -n 's!^http://!!p' "$stats/soak-addr.txt" | head -1)
	[ -n "$kaddr" ] && break
	sleep 0.2
done
[ -n "$kaddr" ] || { echo "ci: soak server never announced an address" >&2; exit 1; }
"$stats/dynamo-experiments" -quick -jobs 4 -cache-dir "" \
	-remote "$kaddr" -remote-deadline 120s \
	fig7 >"$stats/fig7-soak.txt" 2>/dev/null &
ksweep=$!
cycles=0
while [ "$cycles" -lt 3 ]; do
	sleep 1
	if ! kill -0 "$ksweep" 2>/dev/null; then
		echo "ci: soak sweep finished after $cycles kill cycle(s)"
		break
	fi
	kill -9 "$soak" 2>/dev/null || true
	wait "$soak" 2>/dev/null || true
	cycles=$((cycles + 1))
	echo "ci: soak kill cycle $cycles, restarting dynamo-serve with -resume"
	soak_server "$kaddr" -resume
done
wait "$ksweep" || { echo "ci: soak sweep failed" >&2; exit 1; }
cmp "$stats/fig7-want.txt" "$stats/fig7-soak.txt"
leaked=$(find "$kcache" -name '*.failed.json' 2>/dev/null)
[ -z "$leaked" ] || { echo "ci: soak leaked quarantine markers:" >&2; echo "$leaked" >&2; exit 1; }
queued=-1
running=-1
for _ in $(seq 1 60); do
	metrics=$(curl -fsS "http://$kaddr/metrics") || { sleep 0.5; continue; }
	queued=$(echo "$metrics" | sed -n 's/^dynamo_sweep_jobs_queued \([0-9]*\)$/\1/p')
	running=$(echo "$metrics" | sed -n 's/^dynamo_sweep_jobs_running \([0-9]*\)$/\1/p')
	[ "$queued" = 0 ] && [ "$running" = 0 ] && break
	sleep 0.5
done
[ "$queued" = 0 ] && [ "$running" = 0 ] || {
	echo "ci: soak gauges never drained (queued=$queued running=$running)" >&2
	exit 1
}
echo "$metrics" | grep -q '^dynamo_faultio_injected_total' || {
	echo "ci: soak server exported no fault-injection counters" >&2
	exit 1
}
kill -TERM "$soak" 2>/dev/null || true
wait "$soak" 2>/dev/null || true
echo "ci: soak survived $cycles SIGKILL cycle(s) under faults with byte-identical tables"

# Worker-fleet soak gate: the same quick suite served by dynamo-serve
# -workers, executed by a fleet of three dynamo-worker processes while the
# gate repeatedly SIGKILLs one of them (no drain, no release) and starts a
# replacement. Lease expiry must detect each death, requeue the job to
# resume from its last shipped checkpoint, and fence any late commit; at
# the end the tables are byte-identical to the clean local baseline, no
# quarantine markers leaked, and the lease/worker gauges drained to zero.
echo "ci: worker-fleet soak gate (3 workers, repeated SIGKILL)"
go build -o "$stats/dynamo-worker" ./cmd/dynamo-worker
wcache="$stats/fleet-cache"
"$stats/dynamo-serve" -addr 127.0.0.1:0 -cache-dir "$wcache" \
	-workers -lease-ttl 2s -ckpt-every 20000 \
	-quiet >"$stats/fleet-addr.txt" 2>/dev/null &
fleet=$!
waddr=""
for _ in $(seq 1 50); do
	waddr=$(sed -n 's!^http://!!p' "$stats/fleet-addr.txt" | head -1)
	[ -n "$waddr" ] && break
	sleep 0.2
done
[ -n "$waddr" ] || { echo "ci: fleet server never announced an address" >&2; exit 1; }
fleet_worker() {
	# $1: worker slot variable (w1..w3); $2: worker id.
	"$stats/dynamo-worker" -addr "$waddr" -id "$2" -slots 2 \
		-heartbeat 250ms -poll 100ms -quiet >/dev/null 2>&1 &
	eval "$1=$!"
}
fleet_worker w1 fleet-a
fleet_worker w2 fleet-b
fleet_worker w3 fleet-c
"$stats/dynamo-experiments" -quick -jobs 4 -cache-dir "" \
	-remote "$waddr" -remote-deadline 180s \
	fig7 >"$stats/fig7-fleet.txt" 2>/dev/null &
fsweep=$!
kills=0
gen=0
while :; do
	sleep 1.5
	if ! kill -0 "$fsweep" 2>/dev/null; then
		break
	fi
	# SIGKILL one worker, rotating through the fleet, and start a fresh
	# replacement so capacity holds while the dead lease times out.
	victim=$(eval "echo \$w$((kills % 3 + 1))")
	kill -9 "$victim" 2>/dev/null || true
	wait "$victim" 2>/dev/null || true
	kills=$((kills + 1))
	gen=$((gen + 1))
	echo "ci: fleet kill $kills (worker pid $victim), starting replacement"
	fleet_worker "w$(((kills - 1) % 3 + 1))" "fleet-r$gen"
	if [ "$kills" -ge 6 ]; then
		echo "ci: fleet kill budget reached; letting the sweep finish"
		wait "$fsweep" || { echo "ci: fleet sweep failed" >&2; exit 1; }
		break
	fi
done
wait "$fsweep" 2>/dev/null || true
cmp "$stats/fig7-want.txt" "$stats/fig7-fleet.txt"
echo "ci: fleet sweep finished after $kills worker kill(s)"
leaked=$(find "$wcache" -name '*.failed.json' 2>/dev/null)
[ -z "$leaked" ] || { echo "ci: fleet soak leaked quarantine markers:" >&2; echo "$leaked" >&2; exit 1; }
wleases=-1
wworkers=-1
for _ in $(seq 1 60); do
	wmetrics=$(curl -fsS "http://$waddr/metrics") || { sleep 0.5; continue; }
	wleases=$(echo "$wmetrics" | sed -n 's/^dynamo_work_leases \([0-9-]*\)$/\1/p')
	wworkers=$(echo "$wmetrics" | sed -n 's/^dynamo_work_workers \([0-9-]*\)$/\1/p')
	wqueued=$(echo "$wmetrics" | sed -n 's/^dynamo_sweep_jobs_queued \([0-9]*\)$/\1/p')
	wrunning=$(echo "$wmetrics" | sed -n 's/^dynamo_sweep_jobs_running \([0-9]*\)$/\1/p')
	[ "$wleases" = 0 ] && [ "$wworkers" = 0 ] && [ "$wqueued" = 0 ] && [ "$wrunning" = 0 ] && break
	sleep 0.5
done
[ "$wleases" = 0 ] && [ "$wworkers" = 0 ] && [ "$wqueued" = 0 ] && [ "$wrunning" = 0 ] || {
	echo "ci: fleet gauges never drained (leases=$wleases workers=$wworkers queued=$wqueued running=$wrunning)" >&2
	exit 1
}
committed=$(echo "$wmetrics" | sed -n 's/^dynamo_work_commits_total{outcome="ok"} \([0-9]*\)$/\1/p')
[ -n "$committed" ] && [ "$committed" -gt 0 ] || {
	echo "ci: fleet server accepted no worker commits (got '$committed')" >&2
	exit 1
}
for wpid in "$w1" "$w2" "$w3"; do
	kill -TERM "$wpid" 2>/dev/null || true
done
for wpid in "$w1" "$w2" "$w3"; do
	wait "$wpid" 2>/dev/null || true
done
kill -TERM "$fleet" 2>/dev/null || true
wait "$fleet" 2>/dev/null || true
echo "ci: fleet soak survived $kills worker SIGKILL(s) with byte-identical tables ($committed commits)"

echo "ci: OK"
