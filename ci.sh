#!/bin/sh
# Tier-1 check: formatting, vet, build, full test suite, then the
# stats-regression gate: fresh snapshots of a smoke set of runs are diffed
# against the committed baselines in testdata/baselines/ and any metric
# drift fails the build. Regenerate baselines after an intentional
# behaviour change with: ./ci.sh -update-baselines
set -eu
cd "$(dirname "$0")"

update=0
if [ "${1:-}" = "-update-baselines" ]; then
	update=1
fi

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...

# Sweep-runner smoke under the race detector: serial, parallel and
# warm-cache runs must render byte-identical tables, and a warm cache
# must simulate nothing.
go test -race -run TestParallelSerialDeterminism ./internal/experiments

# Robustness gate: invariant-checked runs through the CLI (sanitizer on,
# deterministic chaos on) must finish clean, and the committed chaos
# fuzz corpus must hold the metamorphic property.
for wl in histogram tc spmv; do
	echo "ci: invariant-checked run: $wl"
	go run ./cmd/dynamosim -workload "$wl" -threads 4 -scale 0.1 \
		-check -chaos-seed 1 -chaos-level 2 >/dev/null
done
go test -run Fuzz ./internal/chaos

# Baseline gate: workload x policy smoke set on the small 4-core system.
# One snapshot per pair; zero tolerance — the simulator is deterministic,
# so any drift is a real behaviour change.
baselines=testdata/baselines
mkdir -p "$baselines"
stats=$(mktemp -d)
trap 'rm -rf "$stats"' EXIT
go build -o "$stats/dynamo-stats" ./cmd/dynamo-stats

for run in \
	"histogram all-near" \
	"histogram dynamo-reuse-pn" \
	"tc unique-near"; do
	set -- $run
	wl=$1
	policy=$2
	name="$wl-$policy.json"
	"$stats/dynamo-stats" snapshot -workload "$wl" -policy "$policy" \
		-threads 4 -scale 0.1 -small -o "$stats/$name"
	if [ "$update" = 1 ] || [ ! -f "$baselines/$name" ]; then
		cp "$stats/$name" "$baselines/$name"
		echo "ci: baseline updated: $baselines/$name"
	else
		echo "ci: diffing $name against baseline"
		"$stats/dynamo-stats" diff "$baselines/$name" "$stats/$name"
	fi
done

echo "ci: OK"
