package dynamo

import (
	"encoding/json"
	"strings"
	"testing"
)

// hostperfRun executes the reference workload with or without the
// self-profiler and returns the result.
func hostperfRun(t *testing.T, perfOn bool) *Result {
	t.Helper()
	cfg := smallConfig()
	opts := []Option{
		WithPolicy("dynamo-reuse-pn"),
		WithThreads(4),
		WithScale(0.05),
	}
	if perfOn {
		opts = append(opts, WithHostPerf())
	}
	s, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHostPerfReportPopulated asserts WithHostPerf attaches a report with
// self-consistent numbers: every simulated event accounted for, per-kind
// counts summing to the total, and positive derived rates.
func TestHostPerfReportPopulated(t *testing.T) {
	res := hostperfRun(t, true)
	hp := res.HostPerf
	if hp == nil {
		t.Fatal("Result.HostPerf is nil with WithHostPerf")
	}
	if hp.Events != res.SimEvents {
		t.Fatalf("profiler saw %d events, engine executed %d", hp.Events, res.SimEvents)
	}
	var kindSum uint64
	for _, k := range hp.Kinds {
		kindSum += k.Events
	}
	if kindSum != hp.Events {
		t.Fatalf("per-kind counts sum to %d, want %d", kindSum, hp.Events)
	}
	if hp.EventsPerSec <= 0 || hp.NSPerEvent <= 0 || hp.WallNS == 0 {
		t.Fatalf("derived rates not positive: %+v", hp)
	}
	if hp.QueueDepthMax <= 0 {
		t.Fatalf("queue depth never observed: %+v", hp)
	}
	// The simulator schedules CPU, RN, HN and NoC events on any real run:
	// attribution must see more than the untagged bucket.
	kinds := map[string]bool{}
	for _, k := range hp.Kinds {
		kinds[k.Kind] = true
	}
	for _, want := range []string{"cpu", "rn", "hn", "noc"} {
		if !kinds[want] {
			t.Fatalf("attribution missing kind %q: %+v", want, hp.Kinds)
		}
	}
	if hp.Summary() == "" {
		t.Fatal("Summary() empty for a populated report")
	}
}

// TestHostPerfDeterminism asserts the profiler is purely observational:
// the serialized simulated result is byte-identical with profiling on or
// off, which also proves HostPerf never leaks into the JSON that backs
// result caches and digests.
func TestHostPerfDeterminism(t *testing.T) {
	off := hostperfRun(t, false)
	on := hostperfRun(t, true)
	offJSON, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	onJSON, err := json.Marshal(on)
	if err != nil {
		t.Fatal(err)
	}
	if string(offJSON) != string(onJSON) {
		t.Fatalf("results differ with profiling on:\noff: %s\non:  %s", offJSON, onJSON)
	}
	if strings.Contains(string(onJSON), "events_per_sec") {
		t.Fatal("HostPerf leaked into the serialized result")
	}
	if off.Cycles != on.Cycles || off.SimEvents != on.SimEvents {
		t.Fatalf("simulated quantities drifted: %d/%d cycles, %d/%d events",
			off.Cycles, on.Cycles, off.SimEvents, on.SimEvents)
	}
}

// TestHostPerfRepeatable asserts two profiled runs still simulate
// identically — sampling keys off the deterministic event counter, never
// the host clock.
func TestHostPerfRepeatable(t *testing.T) {
	a := hostperfRun(t, true)
	b := hostperfRun(t, true)
	if a.Cycles != b.Cycles || a.SimEvents != b.SimEvents {
		t.Fatalf("profiled runs diverged: %d/%d cycles, %d/%d events",
			a.Cycles, b.Cycles, a.SimEvents, b.SimEvents)
	}
	if a.HostPerf.Events != b.HostPerf.Events {
		t.Fatalf("profiled event counts diverged: %d vs %d", a.HostPerf.Events, b.HostPerf.Events)
	}
}
