package dynamo

import (
	"io"
	"os"
	"time"

	"dynamo/internal/runner"
	"dynamo/internal/telemetry"
)

// Runner is the public sweep engine: submit many (workload, policy,
// parameter) runs, and the runner deduplicates identical requests,
// executes distinct ones concurrently on a bounded worker pool (each run
// builds its own simulator, so results are deterministic regardless of
// scheduling), and — with a cache directory — persists results so
// repeated sweeps simulate nothing.
//
//	r := dynamo.NewRunner(dynamo.WithCacheDir("results/cache"))
//	for _, p := range dynamo.Policies() {
//		r.Submit(dynamo.SweepRequest{Workload: "histogram", Policy: p})
//	}
//	if err := r.Wait(); err != nil { ... }
//	fmt.Println(r.Stats())
type Runner struct {
	r *runner.Runner
}

// RunnerOption configures a Runner.
type RunnerOption func(*runner.Options)

// WithJobs bounds concurrently executing simulations (default GOMAXPROCS).
func WithJobs(n int) RunnerOption {
	return func(o *runner.Options) { o.Jobs = n }
}

// WithCacheDir backs the runner's in-memory cache with a persistent JSON
// store under dir (one file per request digest, written atomically).
// Corrupt or outdated entries are evicted and re-simulated.
func WithCacheDir(dir string) RunnerOption {
	return func(o *runner.Options) { o.CacheDir = dir }
}

// WithRunnerLog sends one progress line per completed run to w.
func WithRunnerLog(w io.Writer) RunnerOption {
	return func(o *runner.Options) { o.Log = w }
}

// WithRetries re-executes transiently failed runs (a recovered panic or
// a watchdog-abandoned stall) up to n times, with a deterministic
// doubling backoff, before quarantining them. Retries are recorded in
// RunnerStats.Retries and in the run's quarantine marker.
func WithRetries(n int) RunnerOption {
	return func(o *runner.Options) { o.Retries = n }
}

// WithRunnerCheckpoints checkpoints every running job roughly every
// `every` simulation events into the cache directory (requires
// WithCacheDir), so a killed sweep resumes instead of restarting.
func WithRunnerCheckpoints(every uint64) RunnerOption {
	return func(o *runner.Options) { o.CkptEvery = every }
}

// WithResume restores unfinished runs from their persisted checkpoints
// (requires WithCacheDir). Checkpoints that fail verification are
// evicted and the run restarts from event zero.
func WithResume() RunnerOption {
	return func(o *runner.Options) { o.Resume = true }
}

// WithRunnerInterrupt cancels the sweep once ch is signaled or closed:
// queued runs abort immediately, running jobs capture a final checkpoint
// (when checkpointing is enabled) and stop with ErrInterrupted.
func WithRunnerInterrupt(ch <-chan struct{}) RunnerOption {
	return func(o *runner.Options) { o.Interrupt = ch }
}

// SweepTelemetry is the sweep observability surface: a lock-cheap metrics
// registry plus a structured per-job tracer, updated by every submit,
// cache, run, retry, quarantine and interrupt path. A nil *SweepTelemetry
// is valid and costs nothing. See NewSweepTelemetry and WithTelemetry.
type SweepTelemetry = telemetry.Sweep

// SweepProgress is a point-in-time sweep snapshot: jobs done/total, queue
// and worker occupancy, cache traffic, retries and an ETA.
type SweepProgress = telemetry.Progress

// NewSweepTelemetry builds an enabled telemetry surface. journalPath, when
// non-empty, appends one JSON line per completed job (the structured span:
// queue time, attempts, outcome, cache hit, sim events) to that file.
// Close the surface when the sweep ends to flush the journal.
func NewSweepTelemetry(journalPath string) (*SweepTelemetry, error) {
	var o telemetry.SweepOptions
	if journalPath != "" {
		j, err := telemetry.OpenJournal(journalPath)
		if err != nil {
			return nil, err
		}
		o.Journal = j
	}
	return telemetry.NewSweep(o), nil
}

// SweepJobSpan is one job's structured trace span from a telemetry
// journal: queue time, per-attempt sub-spans, outcome and sim events.
type SweepJobSpan = telemetry.JobSpan

// ReadJobJournal parses a JSONL job journal written by a telemetry
// surface (see NewSweepTelemetry) back into spans, oldest first.
func ReadJobJournal(path string) ([]SweepJobSpan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return telemetry.ReadJournal(f)
}

// ExportJobTrace converts a JSONL job journal into a Chrome trace-event
// file (open at https://ui.perfetto.dev): one lane per concurrent job
// slot, with queue and attempt sub-slices.
func ExportJobTrace(journalPath string, w io.Writer) error {
	f, err := os.Open(journalPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return telemetry.ExportTraceEvents(f, w)
}

// serviceConfig collects the service-facing knobs shared by WithService
// (telemetry on a Runner) and Serve (the standalone sweep control plane).
type serviceConfig struct {
	telemetry *SweepTelemetry
	journal   string
	cacheDir  string
	jobs      int
	retries   int
	ckptEvery uint64
	resume    bool
	log       io.Writer
	maxQueued int
	preempt   bool
	workers   bool
	leaseTTL  time.Duration
}

// ServiceOption configures the observability and service surface shared
// by WithService (on a Runner) and Serve (the sweep control plane).
type ServiceOption func(*serviceConfig)

// ServiceTelemetry supplies a telemetry surface. Its lifetime belongs to
// the caller; neither the runner nor the service closes it.
func ServiceTelemetry(t *SweepTelemetry) ServiceOption {
	return func(c *serviceConfig) { c.telemetry = t }
}

// ServiceJournal journals one JSON span per completed job to path (only
// when no ServiceTelemetry surface was supplied — a supplied surface
// already owns its journal).
func ServiceJournal(path string) ServiceOption {
	return func(c *serviceConfig) { c.journal = path }
}

// ServiceCacheDir sets the persistent result store (see WithCacheDir).
// Serve requires one: a service without a cache has nothing durable to
// serve.
func ServiceCacheDir(dir string) ServiceOption {
	return func(c *serviceConfig) { c.cacheDir = dir }
}

// ServiceJobs bounds concurrently executing simulations (see WithJobs).
func ServiceJobs(n int) ServiceOption {
	return func(c *serviceConfig) { c.jobs = n }
}

// ServiceRetries re-executes transiently failed runs (see WithRetries).
func ServiceRetries(n int) ServiceOption {
	return func(c *serviceConfig) { c.retries = n }
}

// ServiceCheckpoints checkpoints running jobs every `every` simulation
// events (see WithRunnerCheckpoints).
func ServiceCheckpoints(every uint64) ServiceOption {
	return func(c *serviceConfig) { c.ckptEvery = every }
}

// ServiceResume restores persisted sweeps and job checkpoints on start
// (see WithResume; for Serve it additionally reloads the sweep queue).
func ServiceResume() ServiceOption {
	return func(c *serviceConfig) { c.resume = true }
}

// ServiceLog sends progress lines to w.
func ServiceLog(w io.Writer) ServiceOption {
	return func(c *serviceConfig) { c.log = w }
}

// ServiceMaxQueued bounds the admission queue: a sweep whose jobs would
// push the admitted-but-unfinished count past n is rejected whole with
// ErrServiceOverloaded (HTTP 429), and the client's jittered backoff
// retries it. Zero means unbounded. Only Serve honors it — a local
// runner has no admission queue.
func ServiceMaxQueued(n int) ServiceOption {
	return func(c *serviceConfig) { c.maxQueued = n }
}

// ServicePreemption enables checkpoint-based time-slicing on Serve: when
// the pool is full and a newly arrived sweep is starved, one long-running
// job is asked to yield at its next checkpoint boundary, re-queues, and
// later resumes from its persisted checkpoint — so short sweeps are not
// stuck behind long ones. Combine with ServiceCheckpoints so a preempted
// job keeps its progress.
func ServicePreemption() ServiceOption {
	return func(c *serviceConfig) { c.preempt = true }
}

// ServiceWorkers switches Serve's execution from in-process to the
// worker fleet: jobs park in a lease table and external dynamo-worker
// processes pull them through the /v1/work routes under TTL leases with
// fencing tokens. A worker that stops heartbeating is presumed dead
// after ttl (zero selects the 10s default): its job requeues — resuming
// from the last checkpoint the worker shipped — and any commit under the
// stale fence is rejected (ErrLeaseExpired / ErrStaleCommit on the
// wire). Scheduling, dedupe, retries, cancellation and preemption are
// unchanged. Only Serve honors it — a local runner executes in-process.
func ServiceWorkers(ttl time.Duration) ServiceOption {
	return func(c *serviceConfig) {
		c.workers = true
		c.leaseTTL = ttl
	}
}

// fill resolves the options, opening a journal-backed telemetry surface
// when a journal path was given without a surface. A journal that fails
// to open degrades observability, never the sweep.
func (c *serviceConfig) fill(opts []ServiceOption) {
	for _, opt := range opts {
		opt(c)
	}
	if c.telemetry == nil && c.journal != "" {
		if t, err := NewSweepTelemetry(c.journal); err == nil {
			c.telemetry = t
		}
	}
}

// WithService exposes the runner over HTTP on addr (host:port; ":0"
// picks a free port): /metrics in Prometheus text format, /progress as a
// JSON snapshot, /jobs as the recent job-span tail. The options cover
// the whole service-shaped surface — telemetry, journal, cache, pool
// size, retries, checkpointing — so one call configures a runner the way
// Serve configures the standalone control plane. When no telemetry
// surface is supplied (directly or via ServiceJournal), a journal-less
// one is created. The bound address (or bind error) is reported by
// Runner.TelemetryAddr; Runner.Close stops the server. An empty addr
// applies the options without serving.
func WithService(addr string, opts ...ServiceOption) RunnerOption {
	return func(o *runner.Options) {
		var c serviceConfig
		c.fill(opts)
		if addr != "" {
			o.ServeAddr = addr
		}
		if c.telemetry != nil {
			o.Telemetry = c.telemetry
		}
		if c.cacheDir != "" {
			o.CacheDir = c.cacheDir
		}
		if c.jobs > 0 {
			o.Jobs = c.jobs
		}
		if c.retries > 0 {
			o.Retries = c.retries
		}
		if c.ckptEvery > 0 {
			o.CkptEvery = c.ckptEvery
		}
		if c.resume {
			o.Resume = true
		}
		if c.log != nil {
			o.Log = c.log
		}
	}
}

// WithTelemetry attaches a telemetry surface to the runner.
//
// Deprecated: Use WithService with ServiceTelemetry; WithTelemetry
// remains as a one-line alias.
func WithTelemetry(t *SweepTelemetry) RunnerOption {
	return WithService("", ServiceTelemetry(t))
}

// WithServe exposes the runner's telemetry over HTTP on addr.
//
// Deprecated: Use WithService; WithServe remains as a one-line alias.
func WithServe(addr string) RunnerOption {
	return WithService(addr)
}

// NewRunner builds a sweep runner over the default Table II system.
func NewRunner(opts ...RunnerOption) *Runner {
	var o runner.Options
	for _, opt := range opts {
		opt(&o)
	}
	return &Runner{r: runner.New(o)}
}

// SweepRequest identifies one run in a sweep. The zero value of each
// field selects the usual default (policy "all-near", 32 threads, seed 1,
// scale 1.0, default input, base system). Requests with equal effective
// parameters are the same job and simulate at most once.
//
// SweepRequest is also the wire type: the same struct, with the same
// stable lowercase JSON field names its canonical digest is computed
// over, is what Runner.Submit takes, what the CLI flags populate, and
// what the sweep service accepts as its HTTP body (see Serve and Dial) —
// there is no parallel DTO, so a served sweep, a CLI sweep and a warm
// cache are byte-identical and dedupe globally. The JSON document is
// versioned by SweepRequestSchema (the optional "schema" field; zero
// means current). Validate checks a request against this build's
// registries and limits without running anything, returning typed
// *FieldError values.
type SweepRequest = runner.Request

// CounterSpec selects the Fig. 1 shared-counter microbenchmark inside a
// SweepRequest, instead of a named workload.
type CounterSpec = runner.CounterSpec

// SweepRequestSchema is the current SweepRequest wire-format version.
const SweepRequestSchema = runner.WireSchema

// FieldError is one invalid SweepRequest field, as returned by
// SweepRequest.Validate: which field (its wire name), the offending
// value, and a cause matchable with errors.Is — ErrUnknownWorkload,
// ErrUnknownPolicy, ErrRequestSchema or ErrBadRequestField.
type FieldError = runner.FieldError

var (
	// ErrRequestSchema reports a SweepRequest document written under a
	// wire-format version this build does not speak.
	ErrRequestSchema = runner.ErrWireSchema
	// ErrBadRequestField reports a SweepRequest field whose value is out
	// of range or inconsistent with the rest of the request.
	ErrBadRequestField = runner.ErrBadField
)

// RunnerStats counts what a Runner did: in-memory and persistent cache
// hits, misses (simulations executed), evictions of unusable persisted
// entries, and the wall-clock that cache hits saved.
type RunnerStats = runner.Stats

// RunHandle is a submitted run's handle.
type RunHandle struct {
	t *runner.Task
}

// Result blocks until the run completes and returns its metrics.
func (h *RunHandle) Result() (*Result, error) {
	out, err := h.t.Wait()
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Submit enqueues a run and returns immediately; duplicate requests
// coalesce into one job.
func (r *Runner) Submit(req SweepRequest) *RunHandle {
	return &RunHandle{t: r.r.Submit(req)}
}

// Run submits a request and waits for its result.
func (r *Runner) Run(req SweepRequest) (*Result, error) {
	return (&RunHandle{t: r.r.Submit(req)}).Result()
}

// Wait blocks until every submitted run has completed and returns the
// error of the earliest-submitted failed run, if any.
func (r *Runner) Wait() error { return r.r.Wait() }

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() RunnerStats { return r.r.Stats() }

// Telemetry returns the runner's telemetry surface (nil unless enabled
// with WithTelemetry or WithServe).
func (r *Runner) Telemetry() *SweepTelemetry { return r.r.Telemetry() }

// TelemetryAddr returns the telemetry server's bound address, or the bind
// error when the WithServe address could not be served. Both are empty
// when WithServe was not used.
func (r *Runner) TelemetryAddr() (string, error) { return r.r.TelemetryAddr() }

// Close releases the runner's observability resources: the telemetry
// HTTP server, and any telemetry surface the runner created itself. A
// surface supplied via WithTelemetry stays open. Close does not wait for
// running jobs — call Wait first.
func (r *Runner) Close() error { return r.r.Close() }

// Failed returns every failed run so far, in completion order. One bad
// configuration — even one that panics the simulator — never sinks the
// sweep: healthy runs complete, failures are quarantined here, and each
// error matches its cause through errors.Is (ErrTimeout, ErrStalled,
// ErrViolation, ErrJobPanicked).
func (r *Runner) Failed() []error {
	jobs := r.r.Failed()
	out := make([]error, len(jobs))
	for i, j := range jobs {
		out[i] = j
	}
	return out
}
