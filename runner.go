package dynamo

import (
	"io"

	"dynamo/internal/runner"
)

// Runner is the public sweep engine: submit many (workload, policy,
// parameter) runs, and the runner deduplicates identical requests,
// executes distinct ones concurrently on a bounded worker pool (each run
// builds its own simulator, so results are deterministic regardless of
// scheduling), and — with a cache directory — persists results so
// repeated sweeps simulate nothing.
//
//	r := dynamo.NewRunner(dynamo.WithCacheDir("results/cache"))
//	for _, p := range dynamo.Policies() {
//		r.Submit(dynamo.SweepRequest{Workload: "histogram", Policy: p})
//	}
//	if err := r.Wait(); err != nil { ... }
//	fmt.Println(r.Stats())
type Runner struct {
	r *runner.Runner
}

// RunnerOption configures a Runner.
type RunnerOption func(*runner.Options)

// WithJobs bounds concurrently executing simulations (default GOMAXPROCS).
func WithJobs(n int) RunnerOption {
	return func(o *runner.Options) { o.Jobs = n }
}

// WithCacheDir backs the runner's in-memory cache with a persistent JSON
// store under dir (one file per request digest, written atomically).
// Corrupt or outdated entries are evicted and re-simulated.
func WithCacheDir(dir string) RunnerOption {
	return func(o *runner.Options) { o.CacheDir = dir }
}

// WithRunnerLog sends one progress line per completed run to w.
func WithRunnerLog(w io.Writer) RunnerOption {
	return func(o *runner.Options) { o.Log = w }
}

// WithRetries re-executes transiently failed runs (a recovered panic or
// a watchdog-abandoned stall) up to n times, with a deterministic
// doubling backoff, before quarantining them. Retries are recorded in
// RunnerStats.Retries and in the run's quarantine marker.
func WithRetries(n int) RunnerOption {
	return func(o *runner.Options) { o.Retries = n }
}

// WithRunnerCheckpoints checkpoints every running job roughly every
// `every` simulation events into the cache directory (requires
// WithCacheDir), so a killed sweep resumes instead of restarting.
func WithRunnerCheckpoints(every uint64) RunnerOption {
	return func(o *runner.Options) { o.CkptEvery = every }
}

// WithResume restores unfinished runs from their persisted checkpoints
// (requires WithCacheDir). Checkpoints that fail verification are
// evicted and the run restarts from event zero.
func WithResume() RunnerOption {
	return func(o *runner.Options) { o.Resume = true }
}

// WithRunnerInterrupt cancels the sweep once ch is signaled or closed:
// queued runs abort immediately, running jobs capture a final checkpoint
// (when checkpointing is enabled) and stop with ErrInterrupted.
func WithRunnerInterrupt(ch <-chan struct{}) RunnerOption {
	return func(o *runner.Options) { o.Interrupt = ch }
}

// NewRunner builds a sweep runner over the default Table II system.
func NewRunner(opts ...RunnerOption) *Runner {
	var o runner.Options
	for _, opt := range opts {
		opt(&o)
	}
	return &Runner{r: runner.New(o)}
}

// SweepRequest identifies one run in a sweep. The zero value of each
// field selects the usual default (policy "all-near", 32 threads, seed 1,
// scale 1.0, default input, base system). Requests with equal effective
// parameters are the same job and simulate at most once.
type SweepRequest struct {
	// Workload is a Table III workload name (see Workloads).
	Workload string
	// Policy is a placement policy name (see Policies).
	Policy string
	// Input selects a workload input variant.
	Input   string
	Threads int
	Seed    int64
	Scale   float64
	// Variant names a non-default system configuration — the Fig. 10/11
	// study points such as "noc-1c", "double-lat" or "amt-e64-w4-c32".
	Variant string
	// Check attaches the protocol invariant sanitizer; a clean run
	// reports its audit counters in the result's Check.
	Check bool
	// ChaosSeed and ChaosLevel attach the deterministic fault injector
	// (see WithChaos). Setting one defaults the other to 1.
	ChaosSeed  int64
	ChaosLevel int
}

func (q SweepRequest) request() runner.Request {
	return runner.Request{
		Workload:   q.Workload,
		Policy:     q.Policy,
		Input:      q.Input,
		Threads:    q.Threads,
		Seed:       q.Seed,
		Scale:      q.Scale,
		SysVariant: q.Variant,
		Check:      q.Check,
		ChaosSeed:  q.ChaosSeed,
		ChaosLevel: q.ChaosLevel,
	}
}

// RunnerStats counts what a Runner did: in-memory and persistent cache
// hits, misses (simulations executed), evictions of unusable persisted
// entries, and the wall-clock that cache hits saved.
type RunnerStats = runner.Stats

// RunHandle is a submitted run's handle.
type RunHandle struct {
	t *runner.Task
}

// Result blocks until the run completes and returns its metrics.
func (h *RunHandle) Result() (*Result, error) {
	out, err := h.t.Wait()
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Submit enqueues a run and returns immediately; duplicate requests
// coalesce into one job.
func (r *Runner) Submit(req SweepRequest) *RunHandle {
	return &RunHandle{t: r.r.Submit(req.request())}
}

// Run submits a request and waits for its result.
func (r *Runner) Run(req SweepRequest) (*Result, error) {
	return (&RunHandle{t: r.r.Submit(req.request())}).Result()
}

// Wait blocks until every submitted run has completed and returns the
// error of the earliest-submitted failed run, if any.
func (r *Runner) Wait() error { return r.r.Wait() }

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() RunnerStats { return r.r.Stats() }

// Failed returns every failed run so far, in completion order. One bad
// configuration — even one that panics the simulator — never sinks the
// sweep: healthy runs complete, failures are quarantined here, and each
// error matches its cause through errors.Is (ErrTimeout, ErrStalled,
// ErrViolation, ErrJobPanicked).
func (r *Runner) Failed() []error {
	jobs := r.r.Failed()
	out := make([]error, len(jobs))
	for i, j := range jobs {
		out[i] = j
	}
	return out
}
