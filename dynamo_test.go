package dynamo

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dynamo/internal/memory"
	"dynamo/internal/trace"
)

// smallConfig shrinks the system so facade tests stay fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 32
	cfg.Chi.L2Sets = 128
	cfg.Chi.LLCSets = 512
	return cfg
}

func TestPoliciesAndWorkloadsListed(t *testing.T) {
	if len(Policies()) != 8 {
		t.Fatalf("Policies() = %v", Policies())
	}
	if len(StaticPolicies()) != 5 || len(DynamicPolicies()) != 3 {
		t.Fatal("policy groups wrong")
	}
	if len(Workloads()) != 21 {
		t.Fatalf("Workloads() has %d entries", len(Workloads()))
	}
}

func TestDescribeWorkload(t *testing.T) {
	info, err := DescribeWorkload("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if info.Code != "HIST" || info.Class != "H" || len(info.Inputs) != 3 {
		t.Fatalf("info = %+v", info)
	}
	if _, err := DescribeWorkload("nope"); err == nil {
		t.Fatal("unknown workload described")
	}
}

func TestRunQuickstart(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(Options{
		Workload: "histogram",
		Policy:   "dynamo-reuse-pn",
		Threads:  4,
		Scale:    0.1,
		Config:   &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.AMOs == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestRunDefaultsPolicyAndSeed(t *testing.T) {
	cfg := smallConfig()
	res, err := Run(Options{Workload: "tc", Threads: 2, Scale: 0.1, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "all-near" {
		t.Fatalf("default policy = %q", res.Policy)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := smallConfig()
	if _, err := Run(Options{Workload: "nope", Config: &cfg}); err == nil {
		t.Error("unknown workload ran")
	}
	if _, err := Run(Options{Workload: "tc", Policy: "nope", Config: &cfg}); err == nil {
		t.Error("unknown policy ran")
	}
	if _, err := Run(Options{Workload: "tc", Threads: 99, Config: &cfg}); err == nil {
		t.Error("too many threads ran")
	}
	if _, err := Run(Options{Workload: "spmv", Input: "nope", Threads: 2, Config: &cfg}); err == nil {
		t.Error("unknown input ran")
	}
}

func TestRunCounterBothSemantics(t *testing.T) {
	cfg := smallConfig()
	for _, noReturn := range []bool{false, true} {
		res, err := RunCounter("unique-near", 4, 30, noReturn, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.AMOs != 120 {
			t.Fatalf("AMOs = %d, want 120", res.AMOs)
		}
		if noReturn && res.AMOStores != 120 {
			t.Fatalf("AMOStores = %d", res.AMOStores)
		}
		if !noReturn && res.AMOLoads != 120 {
			t.Fatalf("AMOLoads = %d", res.AMOLoads)
		}
	}
}

func TestRunWithTrace(t *testing.T) {
	cfg := smallConfig()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if _, err := Run(Options{
		Workload: "tc", Threads: 2, Scale: 0.1, Config: &cfg, Trace: w,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("trace empty")
	}
	// The trace must replay into the same number of threads.
	progs, err := trace.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("replay has %d threads, want 2", len(progs))
	}
}

func TestRunProgramsCustomWorkload(t *testing.T) {
	cfg := smallConfig()
	const counter = 0x4000
	prog := func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.AMOStore(memory.AMOAdd, counter, 1)
		}
		th.Fence()
	}
	res, read, err := RunPrograms(cfg, []Program{prog, prog})
	if err != nil {
		t.Fatal(err)
	}
	if got := read(counter); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	if res.AMOs != 100 {
		t.Fatalf("AMOs = %d", res.AMOs)
	}
}

func TestValidationFailureSurfaces(t *testing.T) {
	// SkipValidation must be the only way to bypass the functional check;
	// with it set, runs still succeed.
	cfg := smallConfig()
	if _, err := Run(Options{
		Workload: "radixsort", Threads: 4, Scale: 0.1, Config: &cfg, SkipValidation: true,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyDirectionsEndToEnd asserts the paper's headline directions on
// the full-size machine at reduced workload scale: far placement wins the
// contended microbenchmark, near placement wins the single-thread case,
// and DynAMO-Reuse-PN never does materially worse than the baseline.
func TestPolicyDirectionsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine comparison")
	}
	// Contended counter at 32 threads: far beats near.
	near, err := RunCounter("all-near", 32, 150, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	far, err := RunCounter("unique-near", 32, 150, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if far.Cycles >= near.Cycles {
		t.Errorf("contended: far %d cycles >= near %d", far.Cycles, near.Cycles)
	}
	// Single thread: near beats far.
	near1, err := RunCounter("all-near", 1, 150, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	far1, err := RunCounter("unique-near", 1, 150, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if near1.Cycles >= far1.Cycles {
		t.Errorf("single thread: near %d cycles >= far %d", near1.Cycles, far1.Cycles)
	}
	// DynAMO on a far-friendly workload: at least 85%% of the best and
	// better than the baseline.
	base, err := Run(Options{Workload: "histogram", Threads: 16, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(Options{Workload: "histogram", Policy: "dynamo-reuse-pn", Threads: 16, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Cycles > base.Cycles*105/100 {
		t.Errorf("dynamo %d cycles much worse than baseline %d", dyn.Cycles, base.Cycles)
	}
}

// observedHistogramRun executes one observed histogram run and returns the
// timeline bytes and the rendered report tables.
func observedHistogramRun(t *testing.T) ([]byte, string) {
	t.Helper()
	cfg := smallConfig()
	bus := NewObs(WithTimeline())
	res, err := Run(Options{
		Workload: "histogram", Policy: "dynamo-reuse-pn",
		Threads: 4, Scale: 0.1, Config: &cfg, Obs: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil || len(res.Obs.Classes) == 0 {
		t.Fatal("observed run returned no histogram report")
	}
	var buf bytes.Buffer
	if err := bus.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	tables := res.Obs.Table().String() + res.Obs.SpanTable().String() + res.Obs.CounterTable().String()
	return buf.Bytes(), tables
}

func TestObservedRunIsDeterministic(t *testing.T) {
	tl1, tables1 := observedHistogramRun(t)
	tl2, tables2 := observedHistogramRun(t)
	if !bytes.Equal(tl1, tl2) {
		t.Fatal("identical-seed runs produced different timeline exports")
	}
	if tables1 != tables2 {
		t.Fatalf("identical-seed runs produced different histogram tables:\n--- run 1:\n%s\n--- run 2:\n%s", tables1, tables2)
	}
	// The timeline must be parseable Chrome trace-event JSON with the
	// expected track metadata.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tl1, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}
	for _, want := range []string{`"cores"`, `"far-amo"`, `"ph":"X"`} {
		if !bytes.Contains(tl1, []byte(want)) {
			t.Fatalf("timeline missing %s", want)
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	cfg := smallConfig()
	bus := NewObs()
	res, err := Run(Options{
		Workload: "histogram", Policy: "all-near",
		Threads: 4, Scale: 0.1, Config: &cfg, Obs: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Cycles"`, `"classes"`, `"rn.loads"`} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("result JSON missing %s:\n%.500s", want, out)
		}
	}
}

func TestWorkloadNamesAreStable(t *testing.T) {
	want := "barnes fmm ocean radiosity raytrace volrend water bfs cc cluster gmetis kcore pagerank spt sssp bc tc fluidanimate histogram radixsort spmv"
	if got := strings.Join(Workloads(), " "); got != want {
		t.Fatalf("workload order changed:\n got %s\nwant %s", got, want)
	}
}
