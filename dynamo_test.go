package dynamo

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dynamo/internal/memory"
	"dynamo/internal/trace"
)

// smallConfig shrinks the system so facade tests stay fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 32
	cfg.Chi.L2Sets = 128
	cfg.Chi.LLCSets = 512
	return cfg
}

// newSession builds a Session or fails the test.
func newSession(t *testing.T, cfg Config, opts ...Option) *Session {
	t.Helper()
	s, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPoliciesAndWorkloadsListed(t *testing.T) {
	if len(Policies()) != 8 {
		t.Fatalf("Policies() = %v", Policies())
	}
	if len(StaticPolicies()) != 5 || len(DynamicPolicies()) != 3 {
		t.Fatal("policy groups wrong")
	}
	if len(Workloads()) != 21 {
		t.Fatalf("Workloads() has %d entries", len(Workloads()))
	}
}

func TestDescribeWorkload(t *testing.T) {
	info, err := DescribeWorkload("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if info.Code != "HIST" || info.Class != "H" || len(info.Inputs) != 3 {
		t.Fatalf("info = %+v", info)
	}
	if _, err := DescribeWorkload("nope"); err == nil {
		t.Fatal("unknown workload described")
	}
}

func TestRunQuickstart(t *testing.T) {
	s := newSession(t, smallConfig(),
		WithPolicy("dynamo-reuse-pn"), WithThreads(4), WithScale(0.1))
	res, err := s.Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.AMOs == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestRunDefaultsPolicyAndSeed(t *testing.T) {
	s := newSession(t, smallConfig(), WithThreads(2), WithScale(0.1))
	res, err := s.Run("tc")
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "all-near" {
		t.Fatalf("default policy = %q", res.Policy)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := smallConfig()
	if _, err := newSession(t, cfg).Run("nope"); err == nil {
		t.Error("unknown workload ran")
	}
	// Bad policy and thread counts fail eagerly, at Session construction.
	if _, err := New(cfg, WithPolicy("nope")); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(cfg, WithThreads(99)); err == nil {
		t.Error("too many threads accepted")
	}
	if _, err := newSession(t, cfg, WithThreads(2), WithInput("nope")).Run("spmv"); err == nil {
		t.Error("unknown input ran")
	}
}

func TestRunCounterBothSemantics(t *testing.T) {
	s := newSession(t, smallConfig(), WithPolicy("unique-near"), WithThreads(4))
	for _, noReturn := range []bool{false, true} {
		res, err := s.RunCounter(30, noReturn)
		if err != nil {
			t.Fatal(err)
		}
		if res.AMOs != 120 {
			t.Fatalf("AMOs = %d, want 120", res.AMOs)
		}
		if noReturn && res.AMOStores != 120 {
			t.Fatalf("AMOStores = %d", res.AMOStores)
		}
		if !noReturn && res.AMOLoads != 120 {
			t.Fatalf("AMOLoads = %d", res.AMOLoads)
		}
	}
}

func TestRunWithTrace(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	s := newSession(t, smallConfig(), WithThreads(2), WithScale(0.1), WithTrace(w))
	if _, err := s.Run("tc"); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("trace empty")
	}
	// The trace must replay into the same number of threads.
	progs, err := trace.Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("replay has %d threads, want 2", len(progs))
	}
}

func TestRunProgramsCustomWorkload(t *testing.T) {
	const counter = 0x4000
	prog := func(th *Thread) {
		for i := 0; i < 50; i++ {
			th.AMOStore(memory.AMOAdd, counter, 1)
		}
		th.Fence()
	}
	s := newSession(t, smallConfig())
	res, read, err := s.RunPrograms([]Program{prog, prog})
	if err != nil {
		t.Fatal(err)
	}
	if got := read(counter); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	if res.AMOs != 100 {
		t.Fatalf("AMOs = %d", res.AMOs)
	}
}

func TestValidationFailureSurfaces(t *testing.T) {
	// WithoutValidation must be the only way to bypass the functional
	// check; with it set, runs still succeed.
	s := newSession(t, smallConfig(),
		WithThreads(4), WithScale(0.1), WithoutValidation())
	if _, err := s.Run("radixsort"); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyDirectionsEndToEnd asserts the paper's headline directions on
// the full-size machine at reduced workload scale: far placement wins the
// contended microbenchmark, near placement wins the single-thread case,
// and DynAMO-Reuse-PN never does materially worse than the baseline.
func TestPolicyDirectionsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine comparison")
	}
	counter := func(policy string, threads int) *Result {
		t.Helper()
		res, err := newSession(t, DefaultConfig(),
			WithPolicy(policy), WithThreads(threads)).RunCounter(150, true)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Contended counter at 32 threads: far beats near.
	near := counter("all-near", 32)
	far := counter("unique-near", 32)
	if far.Cycles >= near.Cycles {
		t.Errorf("contended: far %d cycles >= near %d", far.Cycles, near.Cycles)
	}
	// Single thread: near beats far.
	near1 := counter("all-near", 1)
	far1 := counter("unique-near", 1)
	if near1.Cycles >= far1.Cycles {
		t.Errorf("single thread: near %d cycles >= far %d", near1.Cycles, far1.Cycles)
	}
	// DynAMO on a far-friendly workload: at least 85%% of the best and
	// better than the baseline.
	base, err := newSession(t, DefaultConfig(),
		WithThreads(16), WithScale(0.25)).Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := newSession(t, DefaultConfig(),
		WithPolicy("dynamo-reuse-pn"), WithThreads(16), WithScale(0.25)).Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Cycles > base.Cycles*105/100 {
		t.Errorf("dynamo %d cycles much worse than baseline %d", dyn.Cycles, base.Cycles)
	}
}

// observedHistogramRun executes one observed histogram run and returns the
// timeline bytes and the rendered report tables.
func observedHistogramRun(t *testing.T) ([]byte, string) {
	t.Helper()
	bus := NewObs(WithTimeline())
	s := newSession(t, smallConfig(),
		WithPolicy("dynamo-reuse-pn"), WithThreads(4), WithScale(0.1), WithObs(bus))
	res, err := s.Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil || len(res.Obs.Classes) == 0 {
		t.Fatal("observed run returned no histogram report")
	}
	var buf bytes.Buffer
	if err := bus.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	tables := res.Obs.Table().String() + res.Obs.SpanTable().String() + res.Obs.CounterTable().String()
	return buf.Bytes(), tables
}

func TestObservedRunIsDeterministic(t *testing.T) {
	tl1, tables1 := observedHistogramRun(t)
	tl2, tables2 := observedHistogramRun(t)
	if !bytes.Equal(tl1, tl2) {
		t.Fatal("identical-seed runs produced different timeline exports")
	}
	if tables1 != tables2 {
		t.Fatalf("identical-seed runs produced different histogram tables:\n--- run 1:\n%s\n--- run 2:\n%s", tables1, tables2)
	}
	// The timeline must be parseable Chrome trace-event JSON with the
	// expected track metadata.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tl1, &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}
	for _, want := range []string{`"cores"`, `"far-amo"`, `"ph":"X"`} {
		if !bytes.Contains(tl1, []byte(want)) {
			t.Fatalf("timeline missing %s", want)
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	bus := NewObs()
	s := newSession(t, smallConfig(),
		WithPolicy("all-near"), WithThreads(4), WithScale(0.1), WithObs(bus))
	res, err := s.Run("histogram")
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Cycles"`, `"classes"`, `"rn.loads"`} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("result JSON missing %s:\n%.500s", want, out)
		}
	}
}

func TestWorkloadNamesAreStable(t *testing.T) {
	want := "barnes fmm ocean radiosity raytrace volrend water bfs cc cluster gmetis kcore pagerank spt sssp bc tc fluidanimate histogram radixsort spmv"
	if got := strings.Join(Workloads(), " "); got != want {
		t.Fatalf("workload order changed:\n got %s\nwant %s", got, want)
	}
}
