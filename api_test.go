package dynamo

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update", false, "rewrite testdata/api.txt from the current surface")

// TestPublicAPISurface locks the package's exported surface: every
// exported function, method, type, const and var, with signatures, must
// match testdata/api.txt. An intentional API change regenerates the
// golden file with `go test -run TestPublicAPISurface -update .` and the
// diff then documents the change in review.
func TestPublicAPISurface(t *testing.T) {
	got := strings.Join(apiSurface(t), "\n") + "\n"
	const golden = "testdata/api.txt"
	if *updateAPI {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("exported API surface changed (run with -update if intentional):\n%s",
			surfaceDiff(string(want), got))
	}
}

// apiSurface parses the package's non-test files and renders one line per
// exported declaration, sorted.
func apiSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["dynamo"]
	if !ok {
		t.Fatalf("package dynamo not found (have %v)", pkgs)
	}

	render := func(node any) string {
		var b bytes.Buffer
		if err := printer.Fprint(&b, fset, node); err != nil {
			t.Fatal(err)
		}
		return strings.Join(strings.Fields(b.String()), " ")
	}

	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				recv := ""
				if d.Recv != nil {
					rt := render(d.Recv.List[0].Type)
					if !ast.IsExported(strings.TrimPrefix(rt, "*")) {
						continue
					}
					recv = "(" + rt + ") "
				}
				sig := strings.TrimPrefix(render(d.Type), "func")
				lines = append(lines, "func "+recv+d.Name.Name+sig)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						if sp.Assign != token.NoPos {
							lines = append(lines, "type "+sp.Name.Name+" = "+render(sp.Type))
							continue
						}
						switch st := sp.Type.(type) {
						case *ast.StructType:
							lines = append(lines, "type "+sp.Name.Name+" struct")
							for _, fld := range st.Fields.List {
								for _, n := range fld.Names {
									if n.IsExported() {
										lines = append(lines, fmt.Sprintf("  %s.%s %s",
											sp.Name.Name, n.Name, render(fld.Type)))
									}
								}
							}
						case *ast.InterfaceType:
							lines = append(lines, "type "+sp.Name.Name+" interface")
						default:
							lines = append(lines, "type "+sp.Name.Name+" "+render(sp.Type))
						}
					case *ast.ValueSpec:
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						for _, n := range sp.Names {
							if n.IsExported() {
								lines = append(lines, kw+" "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// TestNoNewDeprecatedSymbols freezes the deprecation set: the legacy
// entry points below may stay deprecated, but no release may deprecate
// anything else without updating this list (and writing the migration
// note that justifies it).
func TestNoNewDeprecatedSymbols(t *testing.T) {
	allowed := map[string]bool{
		"Options":       true,
		"Run":           true,
		"RunCounter":    true,
		"RunPrograms":   true,
		"WithServe":     true,
		"WithTelemetry": true,
	}
	got := deprecatedSymbols(t)
	for _, name := range got {
		if !allowed[name] {
			t.Errorf("new deprecated symbol %q: either undeprecate it or extend the freeze list deliberately", name)
		}
	}
	seen := map[string]bool{}
	for _, name := range got {
		seen[name] = true
	}
	for name := range allowed {
		if !seen[name] {
			t.Errorf("symbol %q no longer deprecated (or gone): shrink the freeze list", name)
		}
	}
}

// deprecatedSymbols lists every exported package-level symbol whose doc
// comment carries a "Deprecated:" marker.
func deprecatedSymbols(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["dynamo"]
	if !ok {
		t.Fatal("package dynamo not found")
	}
	deprecated := func(cg *ast.CommentGroup) bool {
		return cg != nil && strings.Contains(cg.Text(), "Deprecated:")
	}
	var names []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() && deprecated(d.Doc) {
					names = append(names, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					doc := d.Doc
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Doc != nil {
							doc = sp.Doc
						}
						if sp.Name.IsExported() && deprecated(doc) {
							names = append(names, sp.Name.Name)
						}
					case *ast.ValueSpec:
						if sp.Doc != nil {
							doc = sp.Doc
						}
						for _, n := range sp.Names {
							if n.IsExported() && deprecated(doc) {
								names = append(names, n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names
}

// surfaceDiff renders the line-level difference between two surfaces.
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			b.WriteString("- " + l + "\n")
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			b.WriteString("+ " + l + "\n")
		}
	}
	return b.String()
}
