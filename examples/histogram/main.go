// Histogram input sensitivity: the Fig. 9 experiment as a standalone
// program. The same histogram kernel behaves oppositely under a fixed
// static policy depending on the input image, while DynAMO adapts.
package main

import (
	"fmt"
	"log"

	"dynamo"
)

func main() {
	inputs := []string{"NASA", "BMP24"}
	policies := []string{"all-near", "unique-near", "dynamo-reuse-pn"}

	fmt.Println("histogram: speed-up vs all-near, per input image")
	fmt.Printf("%-8s", "input")
	for _, p := range policies[1:] {
		fmt.Printf("  %-16s", p)
	}
	fmt.Println()

	for _, input := range inputs {
		cycles := map[string]uint64{}
		for _, p := range policies {
			s, err := dynamo.New(dynamo.DefaultConfig(),
				dynamo.WithPolicy(p),
				dynamo.WithInput(input))
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Run("histogram")
			if err != nil {
				log.Fatal(err)
			}
			cycles[p] = uint64(res.Cycles)
		}
		fmt.Printf("%-8s", input)
		for _, p := range policies[1:] {
			fmt.Printf("  %-16.3f", float64(cycles["all-near"])/float64(cycles[p]))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("NASA spreads pixels over a histogram far larger than the L1, so")
	fmt.Println("executing the stadd updates far avoids thrashing; BMP24's few")
	fmt.Println("buckets fit in the L1 and favour near execution. A static choice")
	fmt.Println("is right for one input and wrong for the other; the predictor")
	fmt.Println("tracks the actual reuse and adapts (Section VI-D of the paper).")
}
