// Graph analytics under DynAMO: runs the Galois-style workloads (direct
// atomic updates over CSR graphs) under every placement policy and prints
// a league table, showing that no static policy wins everywhere while the
// predictor stays at or near the per-workload best.
package main

import (
	"fmt"
	"log"
	"sort"

	"dynamo"
)

func main() {
	graphWorkloads := []string{"bfs", "cc", "gmetis", "kcore", "sssp"}
	policies := append(dynamo.StaticPolicies(), "dynamo-reuse-pn")

	fmt.Println("graph analytics speed-up vs all-near (32 threads, full scale)")
	fmt.Printf("%-10s", "workload")
	for _, p := range policies[1:] {
		fmt.Printf("  %-15s", p)
	}
	fmt.Println()

	wins := map[string]int{}
	for _, wl := range graphWorkloads {
		cycles := map[string]uint64{}
		for _, p := range policies {
			res, err := dynamo.Run(dynamo.Options{
				Workload: wl,
				Policy:   p,
				Threads:  32,
			})
			if err != nil {
				log.Fatal(err)
			}
			cycles[p] = uint64(res.Cycles)
		}
		fmt.Printf("%-10s", wl)
		best, bestPolicy := 0.0, "all-near"
		for _, p := range policies[1:] {
			s := float64(cycles["all-near"]) / float64(cycles[p])
			fmt.Printf("  %-15.3f", s)
			if s > best {
				best, bestPolicy = s, p
			}
		}
		if best <= 1.0 {
			bestPolicy = "all-near"
		}
		wins[bestPolicy]++
		fmt.Println()
	}

	fmt.Println()
	var names []string
	for p := range wins {
		names = append(names, p)
	}
	sort.Strings(names)
	fmt.Println("per-workload winners:")
	for _, p := range names {
		fmt.Printf("  %-16s %d\n", p, wins[p])
	}
	fmt.Println()
	fmt.Println("Every run validated its result (BFS levels, shortest paths,")
	fmt.Println("component labels, core membership) against a serial reference.")
}
