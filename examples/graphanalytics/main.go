// Graph analytics under DynAMO: sweeps the Galois-style workloads (direct
// atomic updates over CSR graphs) across every placement policy with the
// public Runner — all 30 simulations submitted up front, deduplicated,
// executed concurrently and persisted, so a re-run recalls everything from
// the cache — and prints a league table showing that no static policy wins
// everywhere while the predictor stays at or near the per-workload best.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"dynamo"
)

func main() {
	graphWorkloads := []string{"bfs", "cc", "gmetis", "kcore", "sssp"}
	policies := append(dynamo.StaticPolicies(), "dynamo-reuse-pn")

	runner := dynamo.NewRunner(
		dynamo.WithCacheDir("results/cache"),
		dynamo.WithRunnerLog(os.Stderr))
	handles := map[string]map[string]*dynamo.RunHandle{}
	for _, wl := range graphWorkloads {
		handles[wl] = map[string]*dynamo.RunHandle{}
		for _, p := range policies {
			handles[wl][p] = runner.Submit(dynamo.SweepRequest{
				Workload: wl,
				Policy:   p,
				Threads:  32,
			})
		}
	}

	fmt.Println("graph analytics speed-up vs all-near (32 threads, full scale)")
	fmt.Printf("%-10s", "workload")
	for _, p := range policies[1:] {
		fmt.Printf("  %-15s", p)
	}
	fmt.Println()

	wins := map[string]int{}
	for _, wl := range graphWorkloads {
		cycles := map[string]uint64{}
		for _, p := range policies {
			res, err := handles[wl][p].Result()
			if err != nil {
				log.Fatal(err)
			}
			cycles[p] = uint64(res.Cycles)
		}
		fmt.Printf("%-10s", wl)
		best, bestPolicy := 0.0, "all-near"
		for _, p := range policies[1:] {
			s := float64(cycles["all-near"]) / float64(cycles[p])
			fmt.Printf("  %-15.3f", s)
			if s > best {
				best, bestPolicy = s, p
			}
		}
		if best <= 1.0 {
			bestPolicy = "all-near"
		}
		wins[bestPolicy]++
		fmt.Println()
	}

	fmt.Println()
	var names []string
	for p := range wins {
		names = append(names, p)
	}
	sort.Strings(names)
	fmt.Println("per-workload winners:")
	for _, p := range names {
		fmt.Printf("  %-16s %d\n", p, wins[p])
	}
	fmt.Println()
	fmt.Println("Every run validated its result (BFS levels, shortest paths,")
	fmt.Println("component labels, core membership) against a serial reference.")

	st := runner.Stats()
	fmt.Fprintf(os.Stderr, "runner: %d simulated, %d disk hits\n",
		st.Simulated(), st.DiskHits)
}
