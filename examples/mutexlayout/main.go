// Mutex layout study: Section III-B3 shows the POSIX mutex layout (Fig. 4:
// Kind, Lock, Owner and NUsers on one cache block) makes far AMO execution
// lose — the far CAS/SWAP invalidate the very line the surrounding
// accesses need — and calls for a far-friendly layout as future work. This
// example measures both layouts under near and far lock placement, using
// this repository's implementation of that future-work layout.
package main

import (
	"fmt"
	"log"

	"dynamo"
	"dynamo/internal/memory"
)

const (
	threads = 4
	iters   = 120
)

// run executes a lock/unlock loop with light critical sections and
// returns the cycle count. layoutFar selects the split (far-friendly)
// layout; policy selects where the lock AMOs execute.
func run(layoutFar bool, policy string) uint64 {
	s, err := dynamo.New(dynamo.DefaultConfig(), dynamo.WithPolicy(policy))
	if err != nil {
		log.Fatal(err)
	}

	// The two layouts, built inline against the public Thread API with
	// the exact access sequences of Fig. 4.
	const lockLine = 0x200000
	const metaLine = 0x200040 // same line as the lock in the POSIX layout
	lockAddr := uint64(lockLine)
	metaBase := uint64(lockLine + 8) // Owner at +8, Kind at +16, NUsers at +24
	if layoutFar {
		metaBase = uint64(metaLine)
	}
	counter := uint64(0x201000)

	prog := func(th *dynamo.Thread) {
		for i := 0; i < iters; i++ {
			// Acquire: read Kind, CAS Lock, write Owner and NUsers.
			th.Load(memory.Addr(metaBase + 8))
			for th.CAS(memory.Addr(lockAddr), 0, uint64(th.ID())+1) != 0 {
				for th.Load(memory.Addr(lockAddr)) != 0 {
					th.Pause(12)
				}
			}
			th.Store(memory.Addr(metaBase), uint64(th.ID())+1)
			th.Store(memory.Addr(metaBase+16), 1)
			// Critical section.
			v := th.Load(memory.Addr(counter))
			th.Compute(10)
			th.Store(memory.Addr(counter), v+1)
			// Release: read Kind, clear NUsers and Owner, SWAP Lock.
			th.Load(memory.Addr(metaBase + 8))
			th.Store(memory.Addr(metaBase+16), 0)
			th.Store(memory.Addr(metaBase), 0)
			th.Fence()
			th.AMOStore(memory.AMOSwap, memory.Addr(lockAddr), 0)
			th.Compute(900)
		}
	}
	progs := make([]dynamo.Program, threads)
	for i := range progs {
		progs[i] = prog
	}
	res, read, err := s.RunPrograms(progs)
	if err != nil {
		log.Fatal(err)
	}
	if got := read(counter); got != uint64(threads*iters) {
		log.Fatalf("mutual exclusion broken: %d != %d", got, threads*iters)
	}
	return uint64(res.Cycles)
}

func main() {
	fmt.Printf("POSIX mutex layouts, %d threads x %d lock/unlock pairs\n\n", threads, iters)
	fmt.Printf("%-28s %-12s %-12s\n", "layout", "near locks", "far locks")
	for _, layout := range []struct {
		name string
		far  bool
	}{
		{"Fig. 4 (one cache block)", false},
		{"split (far-friendly)", true},
	} {
		near := run(layout.far, "all-near")
		far := run(layout.far, "unique-near")
		fmt.Printf("%-28s %-12d %-12d\n", layout.name, near, far)
	}
	fmt.Println()
	fmt.Println("With the Fig. 4 layout, sending the lock AMOs far invalidates the")
	fmt.Println("block the Kind/Owner/NUsers accesses need, so far execution loses —")
	fmt.Println("the paper's argument for why Pthread mutexes favor near AMOs. The")
	fmt.Println("split layout (the paper's suggested future work, implemented in")
	fmt.Println("internal/workload as FarMutex) removes that coupling.")
}
