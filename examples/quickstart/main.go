// Quickstart: run one workload under the baseline and under DynAMO, and
// compare cycles, AMO placement and energy.
package main

import (
	"fmt"
	"log"

	"dynamo"
)

func main() {
	const workload = "histogram"
	fmt.Printf("running %q on the 32-core Table II system...\n\n", workload)

	// every AMO executes in the L1D
	near, err := dynamo.New(dynamo.DefaultConfig(), dynamo.WithPolicy("all-near"))
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := near.Run(workload)
	if err != nil {
		log.Fatal(err)
	}

	// the paper's best predictor
	pred, err := dynamo.New(dynamo.DefaultConfig(), dynamo.WithPolicy("dynamo-reuse-pn"))
	if err != nil {
		log.Fatal(err)
	}
	dyn, err := pred.Run(workload)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, r *dynamo.Result) {
		fmt.Printf("%-16s %8d cycles  APKI %5.1f  placement: %d near / %d far  energy %.1f uJ\n",
			name, r.Cycles, r.APKI, r.NearLocal+r.NearTxn, r.Far, r.Energy.Total()/1e6)
	}
	show("all-near", baseline)
	show("dynamo-reuse-pn", dyn)

	speedup := float64(baseline.Cycles) / float64(dyn.Cycles)
	fmt.Printf("\nDynAMO speed-up over All Near: %.2fx\n", speedup)
	fmt.Println("\nBoth runs validated their histogram functionally: every atomic")
	fmt.Println("increment is accounted for regardless of where it executed.")
}
