// Lock contention study: builds the two access patterns of Fig. 3 as
// custom programs against the public Thread API — (a) threads taking turns
// on a shared counter (ping-pong, far-friendly) and (b) each thread
// performing batches of updates (reuse, near-friendly) — and shows how the
// static policies and DynAMO behave on each.
package main

import (
	"fmt"
	"log"

	"dynamo"
	"dynamo/internal/memory"
)

const (
	counterAddr = 0x100000
	threads     = 16
	updates     = 320
)

// pingPong is access pattern (a): every update is likely to find the line
// owned by another core.
func pingPong(th *dynamo.Thread) {
	for i := 0; i < updates; i++ {
		th.AMO(memory.AMOAdd, counterAddr, 1)
		th.Compute(40) // turn-taking interval
	}
}

// batched is access pattern (b): each thread performs long runs of
// updates back to back between compute phases, so a fetched line is reused
// many times before it is stolen.
func batched(th *dynamo.Thread) {
	for i := 0; i < updates/16; i++ {
		for j := 0; j < 16; j++ {
			th.AMO(memory.AMOAdd, counterAddr, 1)
		}
		th.Compute(900)
	}
}

func run(pattern string, prog dynamo.Program, policy string) uint64 {
	s, err := dynamo.New(dynamo.DefaultConfig(), dynamo.WithPolicy(policy))
	if err != nil {
		log.Fatalf("%s/%s: %v", pattern, policy, err)
	}
	progs := make([]dynamo.Program, threads)
	for i := range progs {
		progs[i] = prog
	}
	res, read, err := s.RunPrograms(progs)
	if err != nil {
		log.Fatalf("%s/%s: %v", pattern, policy, err)
	}
	if got := read(counterAddr); got != uint64(threads*updates) {
		log.Fatalf("%s/%s: lost updates: %d != %d", pattern, policy, got, threads*updates)
	}
	return uint64(res.Cycles)
}

func main() {
	fmt.Printf("Fig. 3 access patterns on %d threads, %d updates each\n\n", threads, updates)
	policies := []string{"all-near", "unique-near", "dynamo-reuse-pn"}
	patterns := []struct {
		name string
		prog dynamo.Program
	}{
		{"ping-pong (a)", pingPong},
		{"batched (b)", batched},
	}
	for _, p := range patterns {
		fmt.Printf("%s:\n", p.name)
		base := run(p.name, p.prog, "all-near")
		for _, policy := range policies {
			cycles := run(p.name, p.prog, policy)
			fmt.Printf("  %-16s %8d cycles  (%.2fx vs all-near)\n",
				policy, cycles, float64(base)/float64(cycles))
		}
		fmt.Println()
	}
	fmt.Println("Far execution wins the turn-taking pattern; near execution wins")
	fmt.Println("the batched pattern; the DynAMO predictor adapts to both.")
}
