package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	c := NewSetAssoc[int](4, 2)
	c.Insert(0, 100)
	c.Insert(4, 104) // same set (4 sets), different tag
	if v, ok := c.Lookup(0); !ok || *v != 100 {
		t.Fatalf("Lookup(0) = %v,%v", v, ok)
	}
	if v, ok := c.Lookup(4); !ok || *v != 104 {
		t.Fatalf("Lookup(4) = %v,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewSetAssoc[int](1, 2)
	c.Insert(1, 1)
	c.Insert(2, 2)
	c.Lookup(1) // 1 becomes MRU, 2 is LRU
	vk, vv, ev := c.Insert(3, 3)
	if !ev || vk != 2 || vv != 2 {
		t.Fatalf("evicted (%d,%d,%v), want (2,2,true)", vk, vv, ev)
	}
	if c.Contains(2) {
		t.Fatal("evicted key still present")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("survivors missing")
	}
}

func TestVictimPrediction(t *testing.T) {
	c := NewSetAssoc[int](1, 2)
	if _, would := c.Victim(1); would {
		t.Fatal("empty set predicted eviction")
	}
	c.Insert(1, 1)
	c.Insert(2, 2)
	if _, would := c.Victim(1); would {
		t.Fatal("hit predicted eviction")
	}
	vk, would := c.Victim(3)
	if !would || vk != 1 {
		t.Fatalf("Victim(3) = (%d,%v), want (1,true)", vk, would)
	}
	// Victim must not perturb state.
	gotK, _, ev := c.Insert(3, 3)
	if !ev || gotK != vk {
		t.Fatalf("actual eviction %d != predicted %d", gotK, vk)
	}
}

func TestInsertExistingReplaces(t *testing.T) {
	c := NewSetAssoc[int](2, 2)
	c.Insert(6, 1)
	_, _, ev := c.Insert(6, 2)
	if ev {
		t.Fatal("re-insert evicted")
	}
	if v, _ := c.Peek(6); *v != 2 {
		t.Fatalf("value = %d, want 2", *v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestRemove(t *testing.T) {
	c := NewSetAssoc[string](2, 2)
	c.Insert(10, "a")
	if v, ok := c.Remove(10); !ok || v != "a" {
		t.Fatalf("Remove = (%q,%v)", v, ok)
	}
	if _, ok := c.Remove(10); ok {
		t.Fatal("double remove succeeded")
	}
	if c.Len() != 0 {
		t.Fatal("Len != 0 after remove")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := NewSetAssoc[int](1, 2)
	c.Insert(1, 1)
	c.Insert(2, 2) // LRU order: 2, 1
	c.Peek(1)      // must NOT promote 1
	vk, _, ev := c.Insert(3, 3)
	if !ev || vk != 1 {
		t.Fatalf("Peek promoted: evicted %d, want 1", vk)
	}
}

func TestMutationThroughPointer(t *testing.T) {
	c := NewSetAssoc[int](2, 2)
	c.Insert(5, 7)
	p, _ := c.Lookup(5)
	*p = 99
	if v, _ := c.Peek(5); *v != 99 {
		t.Fatalf("mutation lost: %d", *v)
	}
}

func TestStatsCounting(t *testing.T) {
	c := NewSetAssoc[int](1, 1)
	c.Lookup(1) // miss
	c.Insert(1, 1)
	c.Lookup(1)    // hit
	c.Insert(2, 2) // evicts 1
	h, m, e := c.Stats()
	if h != 1 || m != 1 || e != 1 {
		t.Fatalf("stats = (%d,%d,%d), want (1,1,1)", h, m, e)
	}
}

func TestRange(t *testing.T) {
	c := NewSetAssoc[int](4, 4)
	keys := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	for _, k := range keys {
		c.Insert(k, int(k)*10)
	}
	seen := map[uint64]int{}
	c.Range(func(k uint64, v *int) bool {
		seen[k] = *v
		return true
	})
	if len(seen) != len(keys) {
		t.Fatalf("Range visited %d entries, want %d", len(seen), len(keys))
	}
	for _, k := range keys {
		if seen[k] != int(k)*10 {
			t.Fatalf("seen[%d] = %d", k, seen[k])
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {1, 0}, {3, 2}, {-4, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v did not panic", g)
				}
			}()
			NewSetAssoc[int](g[0], g[1])
		}()
	}
}

// Property: occupancy never exceeds capacity and per-set occupancy never
// exceeds associativity, under arbitrary insert/remove/lookup streams.
func TestBoundedOccupancyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewSetAssoc[int](8, 4)
		for i := 0; i < 2000; i++ {
			k := uint64(rng.Intn(256))
			switch rng.Intn(3) {
			case 0:
				c.Insert(k, i)
			case 1:
				c.Lookup(k)
			case 2:
				c.Remove(k)
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		// Verify per-set occupancy via Range.
		perSet := map[uint64]int{}
		c.Range(func(k uint64, _ *int) bool {
			perSet[k&7]++
			return true
		})
		for _, n := range perSet {
			if n > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache agrees with a reference model (map + per-set LRU list)
// on hit/miss for random access streams.
func TestLRUReferenceModelProperty(t *testing.T) {
	const sets, ways = 4, 3
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewSetAssoc[int](sets, ways)
		ref := make([][]uint64, sets) // MRU-first key lists
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(64))
			set := int(k % sets)
			// Reference lookup.
			refHit := false
			for j, rk := range ref[set] {
				if rk == k {
					refHit = true
					ref[set] = append(ref[set][:j], ref[set][j+1:]...)
					ref[set] = append([]uint64{k}, ref[set]...)
					break
				}
			}
			_, hit := c.Lookup(k)
			if hit != refHit {
				return false
			}
			if !hit {
				c.Insert(k, i)
				if len(ref[set]) == ways {
					ref[set] = ref[set][:ways-1]
				}
				ref[set] = append([]uint64{k}, ref[set]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := NewSetAssoc[uint64](256, 4)
	for i := uint64(0); i < 1024; i++ {
		c.Insert(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i) & 1023)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := NewSetAssoc[uint64](256, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i), uint64(i))
	}
}
