// Package cache implements generic set-associative lookup structures with
// true-LRU replacement. The same structure backs the L1D/L2 tag arrays, the
// LLC slices, the home-node AMO buffer and the DynAMO AMO Metadata Table.
package cache

import (
	"fmt"
	"math/bits"
)

// Set holds the ways of one set in LRU order (index 0 = most recently used).
type way[V any] struct {
	valid bool
	tag   uint64
	value V
}

// SetAssoc is a set-associative array mapping a uint64 key (typically a
// cache-line number) to a value of type V. Keys are split into set index
// (low bits) and tag (high bits). Replacement is true LRU within a set.
type SetAssoc[V any] struct {
	sets      int
	ways      int
	setShift  uint
	data      [][]way[V] // data[set] = ways in LRU order
	evictions uint64
	hits      uint64
	misses    uint64
}

// NewSetAssoc builds an array with the given number of sets (a power of two)
// and associativity.
func NewSetAssoc[V any](sets, ways int) *SetAssoc[V] {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry %dx%d", sets, ways))
	}
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets %d is not a power of two", sets))
	}
	c := &SetAssoc[V]{
		sets:     sets,
		ways:     ways,
		setShift: uint(bits.TrailingZeros(uint(sets))),
		data:     make([][]way[V], sets),
	}
	for i := range c.data {
		c.data[i] = make([]way[V], 0, ways)
	}
	return c
}

// Sets returns the number of sets.
func (c *SetAssoc[V]) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc[V]) Ways() int { return c.ways }

// Capacity returns sets*ways.
func (c *SetAssoc[V]) Capacity() int { return c.sets * c.ways }

// Stats returns cumulative hits, misses and evictions.
func (c *SetAssoc[V]) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

func (c *SetAssoc[V]) index(key uint64) (set int, tag uint64) {
	return int(key & uint64(c.sets-1)), key >> c.setShift
}

// Lookup returns the value for key and promotes it to MRU. The returned
// pointer stays valid until the entry is evicted or removed; callers mutate
// entries through it.
func (c *SetAssoc[V]) Lookup(key uint64) (*V, bool) {
	set, tag := c.index(key)
	s := c.data[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			c.hits++
			c.touch(set, i)
			return &c.data[set][0].value, true
		}
	}
	c.misses++
	return nil, false
}

// Peek returns the value for key without updating LRU order or hit/miss
// statistics.
func (c *SetAssoc[V]) Peek(key uint64) (*V, bool) {
	set, tag := c.index(key)
	s := c.data[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			return &s[i].value, true
		}
	}
	return nil, false
}

// Contains reports presence without perturbing any state.
func (c *SetAssoc[V]) Contains(key uint64) bool {
	_, ok := c.Peek(key)
	return ok
}

// touch moves way i of set to MRU position.
func (c *SetAssoc[V]) touch(set, i int) {
	s := c.data[set]
	if i == 0 {
		return
	}
	w := s[i]
	copy(s[1:i+1], s[0:i])
	s[0] = w
}

// Insert adds key with value v as MRU. If the set is full, the LRU way is
// evicted and returned with evicted=true. Inserting an existing key replaces
// its value and promotes it.
func (c *SetAssoc[V]) Insert(key uint64, v V) (victimKey uint64, victim V, evicted bool) {
	set, tag := c.index(key)
	s := c.data[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].value = v
			c.touch(set, i)
			return 0, victim, false
		}
	}
	if len(s) < c.ways {
		c.data[set] = append(s, way[V]{})
		s = c.data[set]
		copy(s[1:], s[0:len(s)-1])
		s[0] = way[V]{valid: true, tag: tag, value: v}
		return 0, victim, false
	}
	// Evict LRU (last position).
	last := len(s) - 1
	victimKey = s[last].tag<<c.setShift | uint64(set)
	victim = s[last].value
	c.evictions++
	copy(s[1:], s[0:last])
	s[0] = way[V]{valid: true, tag: tag, value: v}
	return victimKey, victim, true
}

// Remove deletes key if present and returns its value.
func (c *SetAssoc[V]) Remove(key uint64) (V, bool) {
	set, tag := c.index(key)
	s := c.data[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			v := s[i].value
			c.data[set] = append(s[:i], s[i+1:]...)
			return v, true
		}
	}
	var zero V
	return zero, false
}

// Victim returns the key that Insert(key, ...) would evict, if any, without
// modifying the array.
func (c *SetAssoc[V]) Victim(key uint64) (victimKey uint64, wouldEvict bool) {
	set, tag := c.index(key)
	s := c.data[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			return 0, false
		}
	}
	if len(s) < c.ways {
		return 0, false
	}
	last := len(s) - 1
	return s[last].tag<<c.setShift | uint64(set), true
}

// Len returns the number of valid entries across all sets.
func (c *SetAssoc[V]) Len() int {
	n := 0
	for _, s := range c.data {
		n += len(s)
	}
	return n
}

// Range calls fn for every (key, value) pair until fn returns false.
// Iteration order is set-major then LRU order; it does not modify LRU state.
func (c *SetAssoc[V]) Range(fn func(key uint64, v *V) bool) {
	for set := range c.data {
		s := c.data[set]
		for i := range s {
			key := s[i].tag<<c.setShift | uint64(set)
			if !fn(key, &s[i].value) {
				return
			}
		}
	}
}
