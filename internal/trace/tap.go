package trace

import (
	"fmt"
	"sort"

	"dynamo/internal/cpu"
	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

// Recorder returns a cpu.Config observer that writes every executed
// operation to w. Install it via cpu.Config.Observe; write errors are
// reported through the returned error function after the run.
func Recorder(w *Writer) (observe func(cpu.ObservedOp), flush func() error) {
	var firstErr error
	observe = func(o cpu.ObservedOp) {
		r := Record{Thread: uint16(o.Core), Op: o.Op, Addr: o.Addr, Operand: o.Operand}
		switch {
		case o.Compute:
			r.Kind = KindCompute
			r.Cycles = o.Cycles
		case o.Load:
			r.Kind = KindLoad
		case o.Store:
			r.Kind = KindStore
		case o.AMO && o.NoReturn:
			r.Kind = KindAMOStore
		case o.AMO:
			r.Kind = KindAMO
		}
		if err := w.Write(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	flush = func() error {
		if err := w.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	return observe, flush
}

// Replay converts a trace into per-thread programs that re-issue the
// recorded operations. The returned slice is indexed by thread id.
func Replay(records []Record) ([]cpu.Program, error) {
	byThread := map[uint16][]Record{}
	for _, r := range records {
		byThread[r.Thread] = append(byThread[r.Thread], r)
	}
	ids := make([]int, 0, len(byThread))
	for id := range byThread {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	if ids[len(ids)-1] != len(ids)-1 {
		return nil, fmt.Errorf("trace: thread ids not dense: %v", ids)
	}
	progs := make([]cpu.Program, len(ids))
	for i := range progs {
		recs := byThread[uint16(i)]
		progs[i] = func(t *cpu.Thread) {
			for _, r := range recs {
				switch r.Kind {
				case KindLoad:
					t.Load(r.Addr)
				case KindStore:
					t.Store(r.Addr, r.Operand)
				case KindAMO:
					t.AMO(r.Op, r.Addr, r.Operand)
				case KindAMOStore:
					t.AMOStore(r.Op, r.Addr, r.Operand)
				case KindCompute:
					t.Compute(int(r.Cycles))
				}
			}
			t.Fence()
		}
	}
	return progs, nil
}

// Synthesize builds a simple synthetic trace: threads hammering a set of
// shared counters with a mix of loads and atomic adds — useful for the
// dynamo-trace tool's demo mode and for tests.
func Synthesize(threads, opsPerThread, counters int, noReturn bool) []Record {
	var recs []Record
	for t := 0; t < threads; t++ {
		for i := 0; i < opsPerThread; i++ {
			addr := memory.Addr(0x10000 + (i%counters)*memory.LineSize)
			kind := KindAMO
			if noReturn {
				kind = KindAMOStore
			}
			recs = append(recs, Record{
				Thread: uint16(t), Kind: kind, Op: memory.AMOAdd,
				Addr: addr, Operand: 1,
			})
			recs = append(recs, Record{Thread: uint16(t), Kind: KindCompute, Cycles: sim.Tick(5)})
		}
	}
	return recs
}
