// Package trace records and replays memory-operation traces in a compact
// binary format. Traces let experiments be re-driven without re-executing
// the workload logic, and give users a way to inspect exactly what a
// workload did (the dynamo-trace tool).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

// Kind classifies trace records.
type Kind uint8

const (
	// KindLoad is a 64-bit load.
	KindLoad Kind = iota
	// KindStore is a 64-bit store.
	KindStore
	// KindAMO is a value-returning atomic.
	KindAMO
	// KindAMOStore is a no-return atomic.
	KindAMOStore
	// KindCompute is local work (Cycles field holds the amount).
	KindCompute
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindAMO:
		return "amo"
	case KindAMOStore:
		return "amostore"
	case KindCompute:
		return "compute"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one traced operation.
type Record struct {
	Thread  uint16
	Kind    Kind
	Op      memory.AMOOp
	Addr    memory.Addr
	Operand uint64
	Cycles  sim.Tick // compute records only
}

// magic identifies the file format; version bumps on layout changes.
const magic = "DAMO"
const version = 1

// Writer streams records to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	started bool
	count   uint64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (tw *Writer) header() error {
	if tw.started {
		return nil
	}
	tw.started = true
	if _, err := tw.w.WriteString(magic); err != nil {
		return err
	}
	return tw.w.WriteByte(version)
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if err := tw.header(); err != nil {
		return err
	}
	var buf [28]byte
	binary.LittleEndian.PutUint16(buf[0:], r.Thread)
	buf[2] = byte(r.Kind)
	buf[3] = byte(r.Op)
	binary.LittleEndian.PutUint64(buf[4:], uint64(r.Addr))
	binary.LittleEndian.PutUint64(buf[12:], r.Operand)
	binary.LittleEndian.PutUint64(buf[20:], uint64(r.Cycles))
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.count++
	return nil
}

// Count returns records written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush writes buffered data (also writes the header for empty traces).
func (tw *Writer) Flush() error {
	if err := tw.header(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader streams records from an io.Reader.
type Reader struct {
	r       *bufio.Reader
	started bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (tr *Reader) checkHeader() error {
	if tr.started {
		return nil
	}
	tr.started = true
	var hdr [5]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		return fmt.Errorf("trace: short header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return fmt.Errorf("trace: bad magic %q", hdr[:4])
	}
	if hdr[4] != version {
		return fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return nil
}

// Read returns the next record, or io.EOF at the end.
func (tr *Reader) Read() (Record, error) {
	if err := tr.checkHeader(); err != nil {
		return Record{}, err
	}
	var buf [28]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	r := Record{
		Thread:  binary.LittleEndian.Uint16(buf[0:]),
		Kind:    Kind(buf[2]),
		Op:      memory.AMOOp(buf[3]),
		Addr:    memory.Addr(binary.LittleEndian.Uint64(buf[4:])),
		Operand: binary.LittleEndian.Uint64(buf[12:]),
		Cycles:  sim.Tick(binary.LittleEndian.Uint64(buf[20:])),
	}
	if r.Kind > KindCompute {
		return Record{}, fmt.Errorf("trace: invalid kind %d", r.Kind)
	}
	if r.Op > memory.AMOUMax {
		return Record{}, fmt.Errorf("trace: invalid AMO op %d", r.Op)
	}
	return r, nil
}

// ReadAll drains the reader.
func (tr *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		r, err := tr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, r)
	}
}
