package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Thread: 0, Kind: KindLoad, Addr: 0x1000},
		{Thread: 1, Kind: KindStore, Addr: 0x2000, Operand: 42},
		{Thread: 2, Kind: KindAMO, Op: memory.AMOAdd, Addr: 0x3000, Operand: 1},
		{Thread: 3, Kind: KindAMOStore, Op: memory.AMOSwap, Addr: 0x4000, Operand: 7},
		{Thread: 0, Kind: KindCompute, Cycles: 99},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace read = %v, %v", got, err)
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewBufferString("NOPE\x01"))
	if _, err := r.Read(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBadVersion(t *testing.T) {
	r := NewReader(bytes.NewBufferString(magic + "\x63"))
	if _, err := r.Read(); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Record{Kind: KindLoad, Addr: 1})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-4]
	r := NewReader(bytes.NewReader(data))
	_, err := r.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated record read: err = %v", err)
	}
}

func TestCorruptOpRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Record{Kind: KindAMO, Op: memory.AMOAdd, Addr: 8})
	w.Flush()
	// Corrupt the op byte (offset 3 of the first record, after the 5-byte
	// header) to a value past the last defined opcode.
	data := buf.Bytes()
	data[5+3] = byte(memory.AMOUMax) + 1
	_, err := NewReader(bytes.NewReader(data)).Read()
	if err == nil || err == io.EOF {
		t.Fatalf("out-of-range AMO op read: err = %v", err)
	}
	// The largest defined opcode stays readable.
	buf.Reset()
	w = NewWriter(&buf)
	w.Write(Record{Kind: KindAMOStore, Op: memory.AMOUMax, Addr: 8})
	w.Flush()
	if _, err := NewReader(&buf).Read(); err != nil {
		t.Fatalf("max valid AMO op rejected: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindLoad, KindStore, KindAMO, KindAMOStore, KindCompute} {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestSynthesize(t *testing.T) {
	recs := Synthesize(4, 10, 2, true)
	if len(recs) != 4*10*2 {
		t.Fatalf("synthesized %d records", len(recs))
	}
	for _, r := range recs {
		if r.Kind == KindAMO {
			t.Fatal("noReturn trace contains AtomicLoads")
		}
	}
}

func TestReplayBuildsPrograms(t *testing.T) {
	recs := Synthesize(3, 5, 2, false)
	progs, err := Replay(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 3 {
		t.Fatalf("%d programs, want 3", len(progs))
	}
	if _, err := Replay(nil); err == nil {
		t.Fatal("empty trace replayed")
	}
	if _, err := Replay([]Record{{Thread: 5}}); err == nil {
		t.Fatal("sparse thread ids accepted")
	}
}

// Property: arbitrary records survive a round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(thread uint16, kindSel, opSel uint8, addr, operand uint64, cycles uint32) bool {
		rec := Record{
			Thread:  thread,
			Kind:    Kind(kindSel % 5),
			Op:      memory.AMOOp(opSel % 10),
			Addr:    memory.Addr(addr),
			Operand: operand,
			Cycles:  sim.Tick(cycles),
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(rec) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
