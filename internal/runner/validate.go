package runner

import (
	"errors"
	"fmt"
	"math"

	"dynamo/internal/chaos"
	"dynamo/internal/core"
	"dynamo/internal/machine"
	"dynamo/internal/workload"
)

// ErrWireSchema reports a request document written under a wire-format
// version this build does not speak (see WireSchema).
var ErrWireSchema = errors.New("runner: unsupported request schema")

// ErrBadField reports a request field whose value is out of range or
// inconsistent with the rest of the request. Typed registry misses keep
// their own sentinels (workload.ErrUnknown, core.ErrUnknownPolicy); this
// one covers everything that is not a name lookup.
var ErrBadField = errors.New("runner: invalid request field")

// FieldError is one invalid request field: which field, the offending
// value, and the cause. The cause is matchable with errors.Is — an
// unregistered workload unwraps to workload.ErrUnknown, an unregistered
// policy to core.ErrUnknownPolicy, a schema mismatch to ErrWireSchema,
// and plain range errors to ErrBadField — so the sweep service can map a
// validation failure to a structured 400 without string matching.
type FieldError struct {
	// Field is the wire (JSON) name of the invalid field.
	Field string
	// Value is the offending value, rendered.
	Value string
	// Err is the cause.
	Err error
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("field %q = %q: %v", e.Field, e.Value, e.Err)
}

// Unwrap exposes the cause for errors.Is and errors.As.
func (e *FieldError) Unwrap() error { return e.Err }

// fieldErr builds a FieldError around a sentinel with a rendered detail.
func fieldErr(field string, value any, cause error, detail string) *FieldError {
	err := cause
	if detail != "" {
		err = fmt.Errorf("%w: %s", cause, detail)
	}
	return &FieldError{Field: field, Value: fmt.Sprint(value), Err: err}
}

// Validate checks the request against this build's registries and limits
// without running anything: the wire schema version, workload, policy,
// input variant, DSE decision string, system variant, thread count,
// scale, counter spec, profiler and chaos parameters. It returns nil or
// the first *FieldError, evaluated on the normalized request — the same
// canonical form the digest is computed over — so a request that
// validates here is a request the runner will accept.
func (q Request) Validate() error {
	if q.Schema != 0 && q.Schema != WireSchema {
		return fieldErr("schema", q.Schema, ErrWireSchema,
			fmt.Sprintf("this build speaks schema %d", WireSchema))
	}
	q = q.normalize()
	cfg := machine.DefaultConfig()
	if q.Counter != nil {
		if q.Workload != "" {
			return fieldErr("workload", q.Workload, ErrBadField,
				"a counter request names no workload")
		}
		if q.Counter.Ops <= 0 {
			return fieldErr("counter.ops", q.Counter.Ops, ErrBadField, "must be positive")
		}
		if q.Counter.Cells <= 0 {
			return fieldErr("counter.cells", q.Counter.Cells, ErrBadField, "must be positive")
		}
	} else {
		spec, err := workload.Get(q.Workload)
		if err != nil {
			return &FieldError{Field: "workload", Value: q.Workload, Err: err}
		}
		if q.Input != "" && !hasInput(spec, q.Input) {
			return fieldErr("input", q.Input, ErrBadField,
				fmt.Sprintf("workload %s has inputs %v", spec.Name, spec.Inputs))
		}
	}
	if q.DSE != "" {
		if _, err := dsePolicy(q.DSE); err != nil {
			return &FieldError{Field: "dse", Value: q.DSE, Err: err}
		}
	} else if _, err := core.New(q.Policy, cfg.Chi.Cores, cfg.AMT); err != nil {
		return &FieldError{Field: "policy", Value: q.Policy, Err: err}
	}
	if q.Threads < 1 || q.Threads > cfg.Chi.Cores {
		return fieldErr("threads", q.Threads, ErrBadField,
			fmt.Sprintf("must be 1..%d", cfg.Chi.Cores))
	}
	if q.Scale < 0 || math.IsNaN(q.Scale) || math.IsInf(q.Scale, 0) {
		return fieldErr("scale", q.Scale, ErrBadField, "must be a finite non-negative number")
	}
	if err := ApplyVariant(q.Variant, &cfg); err != nil {
		return &FieldError{Field: "variant", Value: q.Variant, Err: err}
	}
	if q.ProfileTopK < 0 {
		return fieldErr("profile-topk", q.ProfileTopK, ErrBadField, "must be non-negative")
	}
	if q.ChaosLevel < 0 || q.ChaosLevel > chaos.MaxLevel {
		return fieldErr("chaos-level", q.ChaosLevel, ErrBadField,
			fmt.Sprintf("must be 0..%d", chaos.MaxLevel))
	}
	return nil
}

func hasInput(spec *workload.Spec, input string) bool {
	for _, in := range spec.Inputs {
		if in == input {
			return true
		}
	}
	return false
}
