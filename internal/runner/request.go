// Package runner is the sweep engine behind the experiment harness and
// the public dynamo.Runner: it canonicalises every simulation request
// into a deterministic content digest, dedupes identical requests into a
// single job, executes jobs on a bounded worker pool (each job builds its
// own machine, so determinism is per-run, not per-schedule), and backs
// the in-memory result cache with a persistent on-disk store so repeated
// sweeps simulate nothing.
package runner

import (
	"fmt"
	"strconv"

	"dynamo/internal/chaos"
	"dynamo/internal/check"
	"dynamo/internal/checkpoint"
	"dynamo/internal/core"
	"dynamo/internal/machine"
	"dynamo/internal/obs"
	"dynamo/internal/obs/profile"
	"dynamo/internal/regress"
	"dynamo/internal/sim"
	"dynamo/internal/workload"
)

// ConfigSchema versions the meaning of a request digest. Bump it whenever
// the simulated system's semantics change (machine configuration defaults,
// workload generation, policy behaviour): every persisted cache entry is
// then invalidated at once, because digests stop matching.
const ConfigSchema = 1

// WireSchema versions the Request JSON wire format served and accepted by
// the sweep service. It is distinct from ConfigSchema: the wire schema
// names the shape of the request document, the config schema names what a
// digest means. Bump it when a field is renamed or its meaning changes.
const WireSchema = 1

// CounterSpec selects the Fig. 1 shared-counter microbenchmark instead of
// a registry workload: Threads threads each performing Ops atomic
// increments over Cells counters, with AtomicStore (NoReturn) or
// AtomicLoad semantics.
type CounterSpec struct {
	Ops      int  `json:"ops"`
	NoReturn bool `json:"no_return,omitempty"`
	// Cells is the number of shared counters (the Fig. 1 gap).
	Cells int `json:"cells"`
}

// Request identifies one simulation: a workload (or counter
// microbenchmark, or design-space candidate), a policy, the run
// parameters, and which reports to collect. Requests with equal
// canonical digests are the same job and share one result.
//
// Request is the single request type everywhere a run is named: the
// public dynamo.SweepRequest is an alias of it, CLI flags populate it,
// and the sweep service accepts it verbatim as the HTTP body — there is
// no parallel wire DTO. Its JSON field names are the stable lowercase
// keys of the canonical digest metadata (see meta), versioned by the
// schema field; Validate rejects a malformed document with typed field
// errors before anything is enqueued.
//
// All requests execute on the default Table II system, optionally mutated
// by Variant — the configuration is part of the digest via the variant
// name and ConfigSchema, never an arbitrary struct.
type Request struct {
	// Schema is the wire-format version (see WireSchema). Zero means "the
	// current schema" so hand-written requests stay terse; any other value
	// that is not WireSchema fails Validate. Schema is transport metadata,
	// not run identity: it never enters the digest.
	Schema int `json:"schema,omitempty"`
	// Workload is a registry workload name (empty when Counter is set).
	Workload string `json:"workload,omitempty"`
	// Policy is a registered policy name ("" selects "all-near").
	Policy string `json:"policy,omitempty"`
	// Input selects a workload input variant ("" = default).
	Input   string  `json:"input,omitempty"`
	Threads int     `json:"threads,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	// Variant names a non-default system configuration (see
	// ApplyVariant); "" and "base" are the default system.
	Variant string `json:"variant,omitempty"`
	// DSE selects an unregistered Section IV design-space candidate by
	// its decision string (see core.DecisionString); overrides Policy.
	DSE string `json:"dse,omitempty"`
	// Counter selects the Fig. 1 microbenchmark instead of Workload.
	Counter *CounterSpec `json:"counter,omitempty"`
	// Observe collects the observability report into the result's Obs.
	Observe bool `json:"observe,omitempty"`
	// ProfileTopK, when positive, attaches the contention profiler and
	// collects the top-K hot-line report (implies an observability bus).
	ProfileTopK int `json:"profile-topk,omitempty"`
	// Check attaches the protocol invariant sanitizer (default bounds);
	// a clean run reports its audit counters in the result's Check.
	Check bool `json:"check,omitempty"`
	// ChaosSeed / ChaosLevel attach the deterministic fault injector.
	// A non-zero seed with a zero level runs at level 1; a non-zero level
	// with a zero seed runs seed 1. Both zero leave the run unperturbed.
	ChaosSeed  int64 `json:"chaos-seed,omitempty"`
	ChaosLevel int   `json:"chaos-level,omitempty"`
}

// normalize fills defaults so equal effective requests share a digest.
func (q Request) normalize() Request {
	if q.Policy == "" && q.DSE == "" {
		q.Policy = "all-near"
	}
	if q.Threads == 0 {
		q.Threads = machine.DefaultConfig().Chi.Cores
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	if q.Scale == 0 {
		q.Scale = 1
	}
	if q.Variant == "base" {
		q.Variant = ""
	}
	if q.ChaosSeed != 0 && q.ChaosLevel == 0 {
		q.ChaosLevel = 1
	}
	if q.ChaosLevel > 0 && q.ChaosSeed == 0 {
		q.ChaosSeed = 1
	}
	return q
}

// meta canonicalises the request into the flat metadata map the digest is
// computed over (and that persisted cache entries are verified against).
func (q Request) meta() map[string]string {
	m := map[string]string{
		"schema":   strconv.Itoa(ConfigSchema),
		"workload": q.Workload,
		"policy":   q.Policy,
		"input":    q.Input,
		"threads":  strconv.Itoa(q.Threads),
		"seed":     strconv.FormatInt(q.Seed, 10),
		"scale":    strconv.FormatFloat(q.Scale, 'g', -1, 64),
		"variant":  q.Variant,
	}
	if q.DSE != "" {
		m["dse"] = q.DSE
	}
	if q.Counter != nil {
		m["counter-ops"] = strconv.Itoa(q.Counter.Ops)
		m["counter-noreturn"] = strconv.FormatBool(q.Counter.NoReturn)
		m["counter-cells"] = strconv.Itoa(q.Counter.Cells)
	}
	if q.Observe {
		m["observe"] = "true"
	}
	if q.ProfileTopK > 0 {
		m["profile-topk"] = strconv.Itoa(q.ProfileTopK)
	}
	// Sanitizer and chaos keys are emitted only when set, so plain
	// requests keep the digests their cache entries were saved under.
	if q.Check {
		m["check"] = "true"
	}
	if q.ChaosLevel > 0 {
		m["chaos-seed"] = strconv.FormatInt(q.ChaosSeed, 10)
		m["chaos-level"] = strconv.Itoa(q.ChaosLevel)
	}
	return m
}

// Digest returns the request's canonical content digest.
func (q Request) Digest() string { return regress.Digest(q.normalize().meta()) }

// String renders the request for logs and error wrapping.
func (q Request) String() string {
	name := q.Workload
	if q.Counter != nil {
		name = fmt.Sprintf("counter[%dx%d]", q.Threads, q.Counter.Ops)
	}
	policy := q.Policy
	if q.DSE != "" {
		policy = "dse[" + q.DSE + "]"
	}
	s := name + "/" + policy
	if q.Input != "" {
		s += "(" + q.Input + ")"
	}
	if q.Variant != "" && q.Variant != "base" {
		s += "@" + q.Variant
	}
	if q.Check {
		s += "+check"
	}
	if q.ChaosLevel > 0 {
		s += fmt.Sprintf("+chaos(%d/%d)", q.ChaosSeed, q.ChaosLevel)
	}
	return s
}

// ApplyVariant mutates cfg according to a named system variant: the
// Fig. 10/11 NoC and memory-latency points, single-parameter ablations
// (amobuf-N, maxatomics-N, occupancy-N, prefetch-N, maxevents-N) and AMT
// sizings (amt-e<entries>-w<ways>-c<counter>). "" and "base" leave the
// default.
func ApplyVariant(name string, cfg *machine.Config) error {
	switch name {
	case "", "base":
	case "noc-1c":
		cfg.Chi.Mesh.RouteLatency = 0
		cfg.Chi.Mesh.LinkLatency = 1
	case "noc-3c":
		cfg.Chi.Mesh.RouteLatency = 2
		cfg.Chi.Mesh.LinkLatency = 1
	case "half-lat":
		cfg.Chi.Mem.Latency /= 2
	case "double-lat":
		cfg.Chi.Mem.Latency *= 2
	default:
		var n int
		switch {
		case scanInt(name, "amobuf-%d", &n):
			cfg.Chi.AMOBufEntries = n
		case scanInt(name, "maxatomics-%d", &n):
			cfg.CPU.MaxAtomics = n
		case scanInt(name, "occupancy-%d", &n):
			cfg.Chi.FarAMOOccupancy = sim.Tick(n)
		case scanInt(name, "prefetch-%d", &n):
			cfg.Chi.PrefetchDegree = n
		case scanInt(name, "maxevents-%d", &n):
			cfg.MaxEvents = uint64(n)
		default:
			// AMT variants: amt-e<entries>-w<ways>-c<counter>.
			var e, w, c int
			if _, err := fmt.Sscanf(name, "amt-e%d-w%d-c%d", &e, &w, &c); err != nil {
				return fmt.Errorf("runner: unknown system variant %q", name)
			}
			cfg.AMT = core.AMTConfig{Entries: e, Ways: w, CounterMax: c}
		}
	}
	return nil
}

// scanInt parses a single-integer variant name.
func scanInt(name, format string, out *int) bool {
	_, err := fmt.Sscanf(name, format, out)
	return err == nil
}

// dsePolicy resolves a Section IV decision string to its candidate.
func dsePolicy(decisions string) (*core.Static, error) {
	for _, p := range core.PracticalDesignSpace() {
		if core.DecisionString(p) == decisions {
			return p, nil
		}
	}
	return nil, fmt.Errorf("runner: unknown design-space policy %q", decisions)
}

// execCtx carries per-job robustness wiring into execute: checkpoint
// capture, checkpoint restore, and sweep cancellation. The zero value
// runs the job plainly.
type execCtx struct {
	// ckptEvery / identity / sink configure periodic checkpoint capture.
	ckptEvery uint64
	identity  string
	sink      func(*checkpoint.Checkpoint)
	// resume, when non-nil, restores the run from this checkpoint via the
	// machine's verified deterministic replay.
	resume *checkpoint.Checkpoint
	// interrupt cancels the run mid-flight (machine.ErrInterrupted).
	interrupt <-chan struct{}
}

// ExecOptions carries the robustness wiring for ExecuteLocal: periodic
// checkpoint capture, resume from a shipped checkpoint, and cooperative
// interruption. The zero value runs the request plainly.
type ExecOptions struct {
	// CkptEvery, when nonzero, captures a checkpoint into Sink roughly
	// every CkptEvery simulation events.
	CkptEvery uint64
	// Sink receives captured checkpoints (required when CkptEvery > 0).
	Sink func(*checkpoint.Checkpoint)
	// Resume, when non-nil, restores the run from this checkpoint via the
	// machine's verified deterministic replay. Its identity must be the
	// request's digest.
	Resume *checkpoint.Checkpoint
	// Interrupt stops the run at its next checkpoint boundary with
	// machine.ErrInterrupted (after a final Sink capture when
	// checkpointing is on).
	Interrupt <-chan struct{}
}

// ExecuteLocal simulates one request in this process with the given
// robustness wiring — the same per-job execution path the runner's worker
// pool uses, exported as the seam a fleet worker executes leased jobs
// through. Checkpoints are stamped with the request's canonical digest as
// their identity, so a checkpoint captured on one host resumes the same
// request on any other.
func ExecuteLocal(q Request, o ExecOptions) (*Outcome, error) {
	q = q.normalize()
	return execute(q, execCtx{
		ckptEvery: o.CkptEvery,
		identity:  q.Digest(),
		sink:      o.Sink,
		resume:    o.Resume,
		interrupt: o.Interrupt,
	})
}

// execute simulates one normalized request from scratch: its own machine,
// its own workload instance, fully deterministic regardless of what other
// jobs run concurrently.
func execute(q Request, x execCtx) (*Outcome, error) {
	cfg := machine.DefaultConfig()
	if err := ApplyVariant(q.Variant, &cfg); err != nil {
		return nil, err
	}
	if q.Check {
		cfg.Check = &check.Config{}
	}
	cfg.CkptEvery = x.ckptEvery
	cfg.CkptIdentity = x.identity
	cfg.CkptSink = x.sink
	cfg.Interrupt = x.interrupt
	var bus *obs.Bus
	var prof *profile.Profiler
	if q.Observe || q.ProfileTopK > 0 {
		bus = obs.New(obs.Options{})
		cfg.Obs = bus
	}
	if q.ProfileTopK > 0 {
		prof = profile.NewProfiler(q.ProfileTopK)
		bus.AttachContention(prof)
	}

	var inst *workload.Instance
	var err error
	if q.Counter != nil {
		inst, err = workload.Counter(q.Threads, q.Counter.Ops, q.Counter.NoReturn, q.Counter.Cells)
	} else {
		var spec *workload.Spec
		spec, err = workload.Get(q.Workload)
		if err == nil {
			inst, err = spec.Build(workload.Params{
				Threads: q.Threads,
				Seed:    q.Seed,
				Scale:   q.Scale,
				Input:   q.Input,
			})
		}
	}
	if err != nil {
		return nil, err
	}
	if prof != nil {
		for _, site := range inst.Sites {
			bus.RegisterSite(site)
		}
	}

	var m *machine.Machine
	if q.DSE != "" {
		p, err := dsePolicy(q.DSE)
		if err != nil {
			return nil, err
		}
		m, err = machine.NewWithPolicy(cfg, p)
		if err != nil {
			return nil, err
		}
	} else {
		cfg.Policy = q.Policy
		m, err = machine.New(cfg)
		if err != nil {
			return nil, err
		}
	}
	if q.ChaosLevel > 0 {
		inj, err := chaos.New(q.ChaosSeed, q.ChaosLevel)
		if err != nil {
			return nil, err
		}
		inj.Attach(m)
	}
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	var res *machine.Result
	if x.resume != nil {
		res, err = m.RunFrom(inst.Programs, x.resume)
	} else {
		res, err = m.Run(inst.Programs)
	}
	if err != nil {
		return nil, err
	}
	if err := inst.Validate(m.Sys.Data); err != nil {
		return nil, fmt.Errorf("validation: %w", err)
	}
	out := &Outcome{Result: res}
	if prof != nil {
		out.Hot = prof.Report(bus.SiteOf)
	}
	return out, nil
}
