package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quick is a request small enough for unit tests.
func quick() Request {
	return Request{Workload: "tc", Policy: "all-near", Threads: 2, Scale: 0.05}
}

func TestDigestNormalization(t *testing.T) {
	zero := Request{Workload: "tc", Threads: 2, Scale: 0.05}
	full := Request{Workload: "tc", Policy: "all-near", Threads: 2, Seed: 1, Scale: 0.05}
	if zero.Digest() != full.Digest() {
		t.Error("defaulted request and explicit request have different digests")
	}
	base := full
	base.Variant = "base"
	if base.Digest() != full.Digest() {
		t.Error(`variant "base" not aliased to the default system`)
	}
	other := full
	other.Policy = "all-far"
	if other.Digest() == full.Digest() {
		t.Error("different policies share a digest")
	}
	counter := full
	counter.Counter = &CounterSpec{Ops: 10, Cells: 8}
	if counter.Digest() == full.Digest() {
		t.Error("counter microbenchmark shares the workload's digest")
	}
}

func TestSubmitDedupes(t *testing.T) {
	r := New(Options{Jobs: 2})
	t1 := r.Submit(quick())
	t2 := r.Submit(quick())
	if t1 != t2 {
		t.Fatal("identical requests did not coalesce into one task")
	}
	o1, err := t1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := t2.Wait()
	if o1 != o2 || o1.Result == nil {
		t.Fatal("coalesced tasks returned different outcomes")
	}
	st := r.Stats()
	if st.Requests != 2 || st.Submitted != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()

	cold := New(Options{Jobs: 1, CacheDir: dir})
	o1, err := cold.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if o1.Cached {
		t.Fatal("cold run reported Cached")
	}
	if st := cold.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}

	warm := New(Options{Jobs: 1, CacheDir: dir})
	o2, err := warm.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !o2.Cached {
		t.Fatal("warm run did not hit the persistent store")
	}
	st := warm.Stats()
	if st.Simulated() != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v", st)
	}
	if st.Saved <= 0 {
		t.Fatalf("warm hit saved %v", st.Saved)
	}

	// The persisted result must round-trip exactly.
	j1, _ := json.Marshal(o1.Result)
	j2, _ := json.Marshal(o2.Result)
	if !bytes.Equal(j1, j2) {
		t.Fatal("cached result differs from the simulated one")
	}
}

func TestCorruptEntryEvicted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, quick().Digest()+".json")
	if err := os.WriteFile(path, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := New(Options{Jobs: 1, CacheDir: dir})
	out, err := r.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("corrupt entry served as a hit")
	}
	if st := r.Stats(); st.Evictions != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The re-simulated result replaces the corrupt file.
	if data, err := os.ReadFile(path); err != nil || !json.Valid(data) {
		t.Fatalf("cache entry not rewritten: err=%v", err)
	}
}

func TestSchemaInvalidation(t *testing.T) {
	dir := t.TempDir()
	r := New(Options{Jobs: 1, CacheDir: dir})
	if _, err := r.Run(quick()); err != nil {
		t.Fatal(err)
	}

	// Rewrite the entry under a future schema: it must be evicted, not
	// misread.
	path := filepath.Join(dir, quick().Digest()+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Schema = entrySchema + 1
	data, _ = json.Marshal(&e)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := New(Options{Jobs: 1, CacheDir: dir})
	out, err := r2.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("old-schema entry served as a hit")
	}
	if st := r2.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMetaMismatchEvicted(t *testing.T) {
	dir := t.TempDir()
	r := New(Options{Jobs: 1, CacheDir: dir})
	if _, err := r.Run(quick()); err != nil {
		t.Fatal(err)
	}

	// Simulate a digest collision: the file exists under this digest but
	// describes a different request.
	path := filepath.Join(dir, quick().Digest()+".json")
	data, _ := os.ReadFile(path)
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Meta["policy"] = "all-far"
	data, _ = json.Marshal(&e)
	os.WriteFile(path, data, 0o644)

	r2 := New(Options{Jobs: 1, CacheDir: dir})
	out, err := r2.Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("mismatched entry served as a hit")
	}
	if st := r2.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsReported(t *testing.T) {
	r := New(Options{Jobs: 1})
	if _, err := r.Run(Request{Workload: "missing", Threads: 2}); err == nil {
		t.Fatal("unknown workload ran")
	}
	if _, err := r.Run(Request{Workload: "tc", Policy: "missing", Threads: 2, Scale: 0.05}); err == nil {
		t.Fatal("unknown policy ran")
	}
	if err := r.Wait(); err == nil {
		t.Fatal("Wait did not surface the failure")
	} else if !strings.Contains(err.Error(), "runner:") {
		t.Fatalf("error not wrapped: %v", err)
	}
	if st := r.Stats(); st.Errors != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCounterAndProfileRequests(t *testing.T) {
	r := New(Options{Jobs: 2})
	out, err := r.Run(Request{Policy: "all-near", Threads: 2,
		Counter: &CounterSpec{Ops: 16, Cells: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.AMOs == 0 {
		t.Fatal("counter run performed no AMOs")
	}

	out, err = r.Run(Request{Workload: "tc", Threads: 2, Scale: 0.05, ProfileTopK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Hot == nil || len(out.Hot.Lines) == 0 {
		t.Fatal("profiled run returned no hot lines")
	}

	out, err = r.Run(Request{Workload: "tc", Threads: 2, Scale: 0.05, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Obs == nil {
		t.Fatal("observed run returned no observability report")
	}
}
