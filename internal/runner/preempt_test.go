package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dynamo/internal/machine"
	"dynamo/internal/telemetry"
)

// long returns a request big enough (~277k events) to cross several
// interrupt-poll strides, so a live preemption lands mid-run.
func long() Request {
	return Request{Workload: "tc", Policy: "all-near", Threads: 2, Scale: 1.0}
}

// TestPreemptResumesByteIdentical is the acceptance test for
// checkpoint-based preemption: a job preempted mid-run yields with
// ErrPreempted and a persisted checkpoint, and resubmitting the same
// request resumes it — without Options.Resume — to a result
// byte-identical to an uninterrupted run.
func TestPreemptResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	q := long().normalize()
	digest := q.Digest()

	fresh, err := execute(q, execCtx{})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := json.Marshal(fresh.Result)

	tel := telemetry.NewSweep(telemetry.SweepOptions{})
	r := New(Options{Jobs: 1, CacheDir: dir, CkptEvery: 50000, Telemetry: tel})
	task := r.Submit(q)
	// Preempt before the first stride poll: the job starts anyway (preempt
	// never aborts a queued job) and yields at its first poll point.
	task.Preempt()
	if _, err := task.Wait(); !errors.Is(err, ErrPreempted) {
		t.Fatalf("preempted task err = %v, want ErrPreempted", err)
	}
	st := r.Stats()
	if st.Preempted != 1 || st.Errors != 0 || st.Interrupted != 0 {
		t.Fatalf("stats after preempt = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, digest+".ckpt.json")); err != nil {
		t.Fatalf("preempted job left no checkpoint: %v", err)
	}
	// Preemption is not a failure: no quarantine marker, no Failed entry.
	if failures := r.Failed(); len(failures) != 0 {
		t.Fatalf("preempted job listed as failed: %v", failures)
	}

	out, err := r.Run(q)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	st = r.Stats()
	if st.Resumed != 1 || st.Misses != 1 {
		t.Fatalf("stats after resume = %+v", st)
	}
	if got, _ := json.Marshal(out.Result); !bytes.Equal(got, base) {
		t.Fatal("preempted-and-resumed result differs from the uninterrupted run")
	}
	// Completed job: checkpoint cleaned up, gauges balanced, counter up.
	if _, err := os.Stat(filepath.Join(dir, digest+".ckpt.json")); !os.IsNotExist(err) {
		t.Fatal("completed job left its checkpoint behind")
	}
	p := tel.Progress()
	if p.Queued != 0 || p.Running != 0 {
		t.Fatalf("gauges not drained after preempt+resume: %d queued, %d running", p.Queued, p.Running)
	}
	if p.Preempted != 1 || p.Resumed != 1 {
		t.Fatalf("telemetry preempted/resumed = %d/%d, want 1/1", p.Preempted, p.Resumed)
	}
}

// TestPreemptQueuedJobYieldsWithoutCancelling pins the queue semantics: a
// preempt issued while the job is still waiting for a worker does not
// abort it — the job runs, observes the pending preempt at its first
// poll, and yields as preempted (resumable), not cancelled.
func TestPreemptQueuedJobYieldsWithoutCancelling(t *testing.T) {
	block := make(chan struct{})
	swapExecuteCtx(t, func(q Request, x execCtx) (*Outcome, error) {
		if q.Workload == "tc" {
			<-block
			return execute(q, execCtx{})
		}
		// The preempted job: honor the merged interrupt like the machine.
		<-x.interrupt
		return nil, machine.ErrInterrupted
	})
	tel := telemetry.NewSweep(telemetry.SweepOptions{})
	r := New(Options{Jobs: 1, Telemetry: tel})
	first := r.Submit(quick()) // occupies the single worker
	second := r.Submit(Request{Workload: "histogram", Policy: "all-near", Threads: 2, Scale: 0.05})
	second.Preempt() // lands while second is queued
	close(block)

	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Wait(); !errors.Is(err, ErrPreempted) {
		t.Fatalf("queued-then-preempted task err = %v, want ErrPreempted", err)
	}
	st := r.Stats()
	if st.Preempted != 1 || st.Interrupted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	p := tel.Progress()
	if p.Queued != 0 || p.Running != 0 {
		t.Fatalf("gauges not drained: %d queued, %d running", p.Queued, p.Running)
	}
}

// TestCancelOutranksPreempt: when both the cancel tier and the preempt
// tier have fired by the time the job stops, the job is cancelled —
// preemption must not mask an interrupt into a silently-resumable state
// the sweep no longer wants.
func TestCancelOutranksPreempt(t *testing.T) {
	interrupt := make(chan struct{})
	started := make(chan struct{})
	swapExecuteCtx(t, func(q Request, x execCtx) (*Outcome, error) {
		close(started)
		<-x.interrupt
		return nil, machine.ErrInterrupted
	})
	r := New(Options{Jobs: 1, Interrupt: interrupt})
	task := r.Submit(quick())
	<-started
	task.Preempt()
	close(interrupt)
	if _, err := task.Wait(); !errors.Is(err, machine.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	st := r.Stats()
	if st.Interrupted != 1 || st.Preempted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEntryBytesHealsLostCacheFile: after a successful run, EntryBytes
// re-materializes the canonical cache document from memory even when the
// on-disk copy was deleted (crash, injected fault), and re-persists it.
func TestEntryBytesHealsLostCacheFile(t *testing.T) {
	dir := t.TempDir()
	q := quick().normalize()
	digest := q.Digest()
	r := New(Options{Jobs: 1, CacheDir: dir})
	if _, err := r.Run(q); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, digest+".json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	got, err := r.EntryBytes(digest)
	if err != nil {
		t.Fatalf("EntryBytes after cache loss: %v", err)
	}
	var wd, gd struct {
		Result    json.RawMessage `json:"result"`
		Request   json.RawMessage `json:"request"`
		Schema    int             `json:"schema"`
		ElapsedNS int64           `json:"elapsed_ns"`
	}
	if err := json.Unmarshal(want, &wd); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got, &gd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wd.Result, gd.Result) || !bytes.Equal(wd.Request, gd.Request) || wd.Schema != gd.Schema {
		t.Fatal("healed document differs from the original cache entry")
	}
	// And the heal re-persisted the document.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("heal did not re-persist the cache entry: %v", err)
	}

	if _, err := r.EntryBytes("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unknown digest err = %v, want os.ErrNotExist", err)
	}
}

// The preempt handle is idempotent and safe after completion.
func TestPreemptIdempotent(t *testing.T) {
	r := New(Options{Jobs: 1})
	task := r.Submit(quick())
	if _, err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	task.Preempt()
	task.Preempt() // second call must not panic on the closed channel
}
