package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dynamo/internal/checkpoint"
	"dynamo/internal/faultio"
	"dynamo/internal/machine"
	"dynamo/internal/obs/profile"
)

// entrySchema versions the on-disk cache file format (distinct from
// ConfigSchema, which versions what a digest means). Entries written under
// an older schema are evicted on read.
const entrySchema = 1

// entry is one persisted cache file: results/cache/<digest>.json.
type entry struct {
	Schema int `json:"schema"`
	// Meta is the request's canonical metadata, stored so a hit can be
	// verified against the request instead of trusting the filename.
	Meta map[string]string `json:"meta"`
	// ElapsedNS is the wall-clock the original simulation took; cache
	// hits credit it to Stats.Saved.
	ElapsedNS int64              `json:"elapsed_ns"`
	Result    *machine.Result    `json:"result"`
	Hot       *profile.HotReport `json:"hot,omitempty"`
}

// DecodeEntry decodes one persisted cache document — the exact bytes of
// <cacheDir>/<digest>.json, which is also what the sweep service's
// /v1/jobs/{digest} endpoint serves — back into an outcome plus the
// wall-clock the original simulation took. The remote client rebuilds
// local outcomes through it, so a served result and a locally cached one
// are the same bytes decoded the same way.
func DecodeEntry(data []byte) (*Outcome, time.Duration, error) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, 0, fmt.Errorf("runner: decoding cache entry: %w", err)
	}
	if e.Schema != entrySchema || e.Result == nil {
		return nil, 0, fmt.Errorf("runner: cache entry schema %d unusable (want %d)", e.Schema, entrySchema)
	}
	return &Outcome{Result: e.Result, Hot: e.Hot, Cached: true}, time.Duration(e.ElapsedNS), nil
}

// EncodeEntry renders the canonical persisted-cache document for a
// finished job — the same bytes save writes and DecodeEntry reads. A fleet
// worker commits its result as these bytes so the server can persist them
// verbatim: one encoding, producer-side, keeps remote and local results
// byte-identical.
func EncodeEntry(q Request, out *Outcome, elapsed time.Duration) ([]byte, error) {
	return encodeEntry(q.normalize(), out, elapsed)
}

// store is the persistent result cache. A nil store (no cache directory)
// never hits and never writes. All disk traffic funnels through fs — the
// seam the deterministic fault injector wraps; the default is the real,
// fsync-hardened filesystem (faultio.OS).
type store struct {
	dir string
	fs  faultio.FS
}

func newStore(dir string, fs faultio.FS) *store {
	if dir == "" {
		return nil
	}
	if fs == nil {
		fs = faultio.OS{}
	}
	return &store{dir: dir, fs: fs}
}

func (s *store) path(digest string) string {
	return filepath.Join(s.dir, digest+".json")
}

func (s *store) failedPath(digest string) string {
	return filepath.Join(s.dir, digest+".failed.json")
}

func (s *store) ckptPath(digest string) string {
	return filepath.Join(s.dir, digest+".ckpt.json")
}

// errEvicted marks a cache file that existed but was unusable (corrupt,
// old schema, or digest collision); the caller counts an eviction and
// re-simulates.
var errEvicted = errors.New("runner: cache entry evicted")

// load returns the cached outcome for a request, os.ErrNotExist on a
// clean miss, or errEvicted after removing an unusable entry.
func (s *store) load(q Request) (*Outcome, time.Duration, error) {
	if s == nil {
		return nil, 0, os.ErrNotExist
	}
	path := s.path(q.Digest())
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, 0, os.ErrNotExist
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, 0, s.evict(path)
	}
	if e.Schema != entrySchema || e.Result == nil || !metaEqual(e.Meta, q.meta()) {
		return nil, 0, s.evict(path)
	}
	return &Outcome{Result: e.Result, Hot: e.Hot, Cached: true},
		time.Duration(e.ElapsedNS), nil
}

func (s *store) evict(path string) error {
	s.fs.Remove(path)
	return errEvicted
}

// writeAtomic writes data to path through the store's file plane: a temp
// file in the cache directory, fsync, then rename (see
// faultio.OS.WriteFileAtomic for the durability discipline), so a
// concurrent reader — or a post-crash restart — sees either the old file
// or the complete new one, never a partial write.
func (s *store) writeAtomic(path string, data []byte) error {
	if err := s.fs.WriteFileAtomic(s.dir, path, data); err != nil {
		return fmt.Errorf("runner: writing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// encodeEntry renders the canonical persisted-cache document for a
// finished job: the exact bytes save writes and /v1/jobs/{digest} serves.
func encodeEntry(q Request, out *Outcome, elapsed time.Duration) ([]byte, error) {
	e := entry{
		Schema:    entrySchema,
		Meta:      q.meta(),
		ElapsedNS: elapsed.Nanoseconds(),
		Result:    out.Result,
		Hot:       out.Hot,
	}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runner: encoding cache entry: %w", err)
	}
	return append(data, '\n'), nil
}

// save persists an outcome atomically.
func (s *store) save(q Request, out *Outcome, elapsed time.Duration) error {
	if s == nil {
		return nil
	}
	data, err := encodeEntry(q, out, elapsed)
	if err != nil {
		return err
	}
	digest := q.Digest()
	if err := s.writeAtomic(s.path(digest), data); err != nil {
		return err
	}
	// A successful run supersedes any quarantine marker from an earlier
	// failed attempt (e.g. after a simulator fix).
	s.fs.Remove(s.failedPath(digest))
	return nil
}

// failedEntry is one quarantine marker: results/cache/<digest>.failed.json.
// Markers record why a request failed without ever being served as a
// result — a failed run is re-simulated, not replayed.
type failedEntry struct {
	Schema int               `json:"schema"`
	Meta   map[string]string `json:"meta"`
	Error  string            `json:"error"`
	// Attempts counts how many times the request has executed and failed,
	// across retries and across claimed earlier markers.
	Attempts int `json:"attempts,omitempty"`
}

// quarantine records a failed run beside the result cache for post-mortem
// inspection. The write is atomic, so a concurrent worker reading the
// marker never sees a torn file. A nil store drops the record.
func (s *store) quarantine(q Request, cause error, attempts int) error {
	if s == nil {
		return nil
	}
	e := failedEntry{Schema: entrySchema, Meta: q.meta(), Error: cause.Error(), Attempts: attempts}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding quarantine marker: %w", err)
	}
	return s.writeAtomic(s.failedPath(q.Digest()), append(data, '\n'))
}

// claimFailed atomically claims a request's quarantine marker before a
// re-run. When two workers sharing one cache directory both observe a
// stale marker, the rename guarantees exactly one of them wins the claim
// (and inherits the recorded attempt count); the loser sees a clean
// slate. This replaces the racy read-then-remove sequence in which both
// workers could fold the same stale attempt count into their accounting.
func (s *store) claimFailed(digest string) (*failedEntry, bool) {
	if s == nil {
		return nil, false
	}
	tmp, err := os.CreateTemp(s.dir, ".claim-*")
	if err != nil {
		return nil, false
	}
	claim := tmp.Name()
	tmp.Close()
	os.Remove(claim)
	// Rename is atomic: of N concurrent claimers each renaming the marker
	// to its own unique name, exactly one succeeds.
	if err := s.fs.Rename(s.failedPath(digest), claim); err != nil {
		return nil, false
	}
	defer os.Remove(claim)
	data, err := s.fs.ReadFile(claim)
	if err != nil {
		return nil, true
	}
	var e failedEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, true
	}
	return &e, true
}

// saveCkpt atomically persists a job's latest checkpoint as
// <digest>.ckpt.json: a crash mid-write leaves the previous checkpoint
// intact, never a truncated file.
func (s *store) saveCkpt(digest string, ck *checkpoint.Checkpoint) error {
	if s == nil {
		return nil
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("runner: encoding checkpoint: %w", err)
	}
	return s.writeAtomic(s.ckptPath(digest), append(data, '\n'))
}

// loadCkpt returns a request's persisted checkpoint, os.ErrNotExist on a
// clean miss. An unreadable, corrupt, incompatible or misattributed file
// is removed and its typed cause returned, so the caller counts an
// eviction and restarts from event zero.
func (s *store) loadCkpt(q Request) (*checkpoint.Checkpoint, error) {
	if s == nil {
		return nil, os.ErrNotExist
	}
	digest := q.Digest()
	path := s.ckptPath(digest)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, os.ErrNotExist
	}
	ck, err := checkpoint.Read(bytes.NewReader(data))
	if err != nil {
		s.fs.Remove(path)
		return nil, err
	}
	if err := ck.Compatible(digest); err != nil {
		s.fs.Remove(path)
		return nil, err
	}
	return ck, nil
}

// removeCkpt drops a job's persisted checkpoint (the job completed, or
// its checkpoint proved unusable).
func (s *store) removeCkpt(digest string) {
	if s == nil {
		return
	}
	s.fs.Remove(s.ckptPath(digest))
}

func metaEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
