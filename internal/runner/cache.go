package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dynamo/internal/machine"
	"dynamo/internal/obs/profile"
)

// entrySchema versions the on-disk cache file format (distinct from
// ConfigSchema, which versions what a digest means). Entries written under
// an older schema are evicted on read.
const entrySchema = 1

// entry is one persisted cache file: results/cache/<digest>.json.
type entry struct {
	Schema int `json:"schema"`
	// Meta is the request's canonical metadata, stored so a hit can be
	// verified against the request instead of trusting the filename.
	Meta map[string]string `json:"meta"`
	// ElapsedNS is the wall-clock the original simulation took; cache
	// hits credit it to Stats.Saved.
	ElapsedNS int64              `json:"elapsed_ns"`
	Result    *machine.Result    `json:"result"`
	Hot       *profile.HotReport `json:"hot,omitempty"`
}

// store is the persistent result cache. A nil store (no cache directory)
// never hits and never writes.
type store struct {
	dir string
}

func newStore(dir string) *store {
	if dir == "" {
		return nil
	}
	return &store{dir: dir}
}

func (s *store) path(digest string) string {
	return filepath.Join(s.dir, digest+".json")
}

func (s *store) failedPath(digest string) string {
	return filepath.Join(s.dir, digest+".failed.json")
}

// errEvicted marks a cache file that existed but was unusable (corrupt,
// old schema, or digest collision); the caller counts an eviction and
// re-simulates.
var errEvicted = errors.New("runner: cache entry evicted")

// load returns the cached outcome for a request, os.ErrNotExist on a
// clean miss, or errEvicted after removing an unusable entry.
func (s *store) load(q Request) (*Outcome, time.Duration, error) {
	if s == nil {
		return nil, 0, os.ErrNotExist
	}
	path := s.path(q.Digest())
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, os.ErrNotExist
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, 0, s.evict(path)
	}
	if e.Schema != entrySchema || e.Result == nil || !metaEqual(e.Meta, q.meta()) {
		return nil, 0, s.evict(path)
	}
	return &Outcome{Result: e.Result, Hot: e.Hot, Cached: true},
		time.Duration(e.ElapsedNS), nil
}

func (s *store) evict(path string) error {
	os.Remove(path)
	return errEvicted
}

// save persists an outcome atomically: the entry is written to a
// temporary file in the cache directory and renamed into place, so a
// concurrent reader sees either the old entry or the complete new one.
func (s *store) save(q Request, out *Outcome, elapsed time.Duration) error {
	if s == nil {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("runner: creating cache dir: %w", err)
	}
	e := entry{
		Schema:    entrySchema,
		Meta:      q.meta(),
		ElapsedNS: elapsed.Nanoseconds(),
		Result:    out.Result,
		Hot:       out.Hot,
	}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runner: writing cache entry: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: writing cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: writing cache entry: %w", err)
	}
	digest := q.Digest()
	if err := os.Rename(tmp.Name(), s.path(digest)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: writing cache entry: %w", err)
	}
	// A successful run supersedes any quarantine marker from an earlier
	// failed attempt (e.g. after a simulator fix).
	os.Remove(s.failedPath(digest))
	return nil
}

// failedEntry is one quarantine marker: results/cache/<digest>.failed.json.
// Markers record why a request failed without ever being served as a
// result — a failed run is re-simulated, not replayed.
type failedEntry struct {
	Schema int               `json:"schema"`
	Meta   map[string]string `json:"meta"`
	Error  string            `json:"error"`
}

// quarantine records a failed run beside the result cache for post-mortem
// inspection. A nil store drops the record.
func (s *store) quarantine(q Request, cause error) error {
	if s == nil {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("runner: creating cache dir: %w", err)
	}
	e := failedEntry{Schema: entrySchema, Meta: q.meta(), Error: cause.Error()}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding quarantine marker: %w", err)
	}
	if err := os.WriteFile(s.failedPath(q.Digest()), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("runner: writing quarantine marker: %w", err)
	}
	return nil
}

func metaEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
