package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"dynamo/internal/telemetry"
)

// TestTelemetryMirrorsStats runs a mixed sweep — a memory hit, a disk
// hit, simulated successes and a retried-then-quarantined panic — and
// checks the telemetry surface agrees with the runner's own Stats and
// that every job left a structured span.
func TestTelemetryMirrorsStats(t *testing.T) {
	dir := t.TempDir()

	// Warm the persistent store so the second runner sees a disk hit.
	warm := New(Options{Jobs: 1, CacheDir: dir})
	if _, err := warm.Run(quick()); err != nil {
		t.Fatal(err)
	}

	calls := 0
	swapExecute(t, func(q Request) (*Outcome, error) {
		if q.Policy == "all-far" {
			calls++
			panic("injected")
		}
		return execute(q, execCtx{})
	})

	var journal bytes.Buffer
	tel := telemetry.NewSweep(telemetry.SweepOptions{Journal: nopCloser{&journal}})
	r := New(Options{Jobs: 2, CacheDir: dir, Retries: 1, RetryBackoff: time.Millisecond, Telemetry: tel})

	r.Submit(quick()) // disk hit
	r.Submit(quick()) // memory hit
	bad := Request{Workload: "tc", Policy: "all-far", Threads: 2, Scale: 0.05}
	r.Submit(bad) // panics, one retry, quarantined
	miss := Request{Workload: "histogram", Policy: "all-near", Threads: 2, Scale: 0.05}
	r.Submit(miss) // simulates
	if err := r.Wait(); err == nil {
		t.Fatal("sweep with an injected panic reported no error")
	}
	if calls != 2 {
		t.Fatalf("failing job executed %d times, want 2 (one retry)", calls)
	}

	st := r.Stats()
	p := tel.Progress()
	if p.TotalJobs != st.Submitted || p.TotalJobs != 3 {
		t.Errorf("telemetry total = %d, stats submitted = %d", p.TotalJobs, st.Submitted)
	}
	if p.MemoryHits != st.Hits || p.DiskHits != st.DiskHits || p.Misses != st.Misses {
		t.Errorf("telemetry cache %d/%d/%d, stats %d/%d/%d",
			p.MemoryHits, p.DiskHits, p.Misses, st.Hits, st.DiskHits, st.Misses)
	}
	if p.DoneJobs != st.DiskHits+st.Misses || p.FailedJobs != st.Errors {
		t.Errorf("telemetry done/failed = %d/%d, stats = %d/%d",
			p.DoneJobs, p.FailedJobs, st.DiskHits+st.Misses, st.Errors)
	}
	if p.Retries != st.Retries || p.Panics != st.Panics || p.SimEvents != st.SimEvents {
		t.Errorf("telemetry retries/panics/events = %d/%d/%d, stats = %d/%d/%d",
			p.Retries, p.Panics, p.SimEvents, st.Retries, st.Panics, st.SimEvents)
	}
	if p.Queued != 0 || p.Running != 0 {
		t.Errorf("gauges not drained: %d queued, %d running", p.Queued, p.Running)
	}

	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ReadJournal(bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(spans) != 3 {
		t.Fatalf("journal has %d spans, want 3", len(spans))
	}
	byOutcome := map[telemetry.Outcome]telemetry.JobSpan{}
	for _, s := range spans {
		byOutcome[s.Outcome] = s
	}
	if s, ok := byOutcome[telemetry.OutcomeCached]; !ok || !s.CacheHit {
		t.Errorf("no cached span in journal: %+v", spans)
	}
	if s, ok := byOutcome[telemetry.OutcomeOK]; !ok || s.SimEvents == 0 || len(s.Attempts) != 1 {
		t.Errorf("ok span = %+v", s)
	}
	s, ok := byOutcome[telemetry.OutcomeFailed]
	if !ok || len(s.Attempts) != 2 {
		t.Fatalf("failed span = %+v (want 2 attempts)", s)
	}
	if !strings.Contains(s.Error, "injected") || !strings.Contains(s.Attempts[0].Error, "injected") {
		t.Errorf("failed span lost its error: %+v", s)
	}
	if s.Request != bad.String() {
		t.Errorf("failed span request = %q, want %q", s.Request, bad.String())
	}

	// The journal round-trips through the Perfetto exporter.
	var trace bytes.Buffer
	if err := telemetry.ExportTraceEvents(bytes.NewReader(journal.Bytes()), &trace); err != nil {
		t.Fatalf("ExportTraceEvents: %v", err)
	}
	if !json.Valid(trace.Bytes()) {
		t.Fatalf("trace export is not valid JSON:\n%s", trace.String())
	}
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

// TestRunnerServe covers the ServeAddr convenience path: the runner
// creates its own surface, serves it, and Close tears both down.
func TestRunnerServe(t *testing.T) {
	r := New(Options{Jobs: 1, ServeAddr: "127.0.0.1:0"})
	defer r.Close()
	addr, err := r.TelemetryAddr()
	if err != nil || addr == "" {
		t.Fatalf("TelemetryAddr = %q, %v", addr, err)
	}
	if !r.Telemetry().Enabled() {
		t.Fatal("ServeAddr did not enable telemetry")
	}
	if _, err := r.Run(quick()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatalf("GET /progress: %v", err)
	}
	defer resp.Body.Close()
	var p telemetry.Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatalf("decoding /progress: %v", err)
	}
	if p.TotalJobs != 1 || p.DoneJobs != 1 || p.Workers != 1 {
		t.Errorf("/progress = %+v", p)
	}

	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/progress"); err == nil {
		t.Error("server still answering after Close")
	}
}

// TestRunnerServeBindError verifies a bad address degrades to an error on
// TelemetryAddr without sinking the sweep.
func TestRunnerServeBindError(t *testing.T) {
	r := New(Options{Jobs: 1, ServeAddr: "256.0.0.1:bad"})
	defer r.Close()
	if _, err := r.TelemetryAddr(); err == nil {
		t.Fatal("unservable address reported no error")
	}
	if _, err := r.Run(quick()); err != nil {
		t.Fatalf("sweep failed under a telemetry bind error: %v", err)
	}
}

// TestInterruptTelemetryDrainsQueue checks queue-cancelled jobs release
// their queued-gauge slot through the fromQueue path.
func TestInterruptTelemetryDrainsQueue(t *testing.T) {
	block := make(chan struct{})
	interrupt := make(chan struct{})
	swapExecute(t, func(q Request) (*Outcome, error) {
		<-block
		return nil, errors.New("unreachable")
	})
	tel := telemetry.NewSweep(telemetry.SweepOptions{})
	r := New(Options{Jobs: 1, Interrupt: interrupt, Telemetry: tel})
	r.Submit(quick())                                                                     // occupies the single worker
	r.Submit(Request{Workload: "histogram", Policy: "all-near", Threads: 2, Scale: 0.05}) // queued

	for tel.Progress().Running != 1 {
		time.Sleep(time.Millisecond)
	}
	close(interrupt)
	close(block)
	r.Wait()

	p := tel.Progress()
	if p.Queued != 0 || p.Running != 0 {
		t.Errorf("gauges not drained after interrupt: %d queued, %d running", p.Queued, p.Running)
	}
	if p.InterruptedJobs == 0 {
		t.Errorf("no interrupted jobs counted: %+v", p)
	}
}
