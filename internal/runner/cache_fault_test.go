package runner

import (
	"errors"
	"syscall"
	"testing"

	"dynamo/internal/faultio"
)

// TestStoreEvictsTornWrite is the crash-durability regression test for
// the persistent cache: a torn write (a crash between the data landing
// and the rename completing, here injected deterministically) must not
// poison the store — the truncated document is detected on load, evicted,
// and the job re-simulates.
func TestStoreEvictsTornWrite(t *testing.T) {
	dir := t.TempDir()
	q := quick().normalize()
	out, err := execute(q, execCtx{})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultio.New(faultio.Options{Seed: 7, TornPermille: 1000, Budget: 1})
	torn := newStore(dir, inj.WrapFS(faultio.OS{}))
	if err := torn.save(q, out, 0); err != nil {
		t.Fatalf("torn save reported an error (the tear is silent by design): %v", err)
	}
	if inj.Injected() != 1 {
		t.Fatalf("injector fired %d faults, want 1", inj.Injected())
	}

	// A clean store over the same directory must detect and evict it.
	s := newStore(dir, nil)
	if _, _, err := s.load(q); !errors.Is(err, errEvicted) {
		t.Fatalf("load of torn entry = %v, want errEvicted", err)
	}

	// And the runner recovers end to end: eviction counted, job re-run.
	r := New(Options{Jobs: 1, CacheDir: dir})
	got, err := r.Run(q)
	if err != nil || got == nil || got.Cached {
		t.Fatalf("run over torn cache: out=%+v err=%v", got, err)
	}
	st := r.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats = %+v, want a fresh miss", st)
	}
}

// TestRunnerSurvivesENOSPC: an injected out-of-space failure on the cache
// write degrades the cache, never the sweep — the job still returns its
// result, and the error is the typed syscall.ENOSPC for callers that
// probe it.
func TestRunnerSurvivesENOSPC(t *testing.T) {
	dir := t.TempDir()
	q := quick().normalize()
	out, err := execute(q, execCtx{})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultio.New(faultio.Options{Seed: 11, ENOSPCPermille: 1000, Budget: 1})
	fs := inj.WrapFS(faultio.OS{})
	s := newStore(dir, fs)
	if err := s.save(q, out, 0); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save under ENOSPC = %v, want a typed syscall.ENOSPC", err)
	}

	// Fresh injector with budget 1: the one fault hits the result write,
	// and the run itself still succeeds.
	inj = faultio.New(faultio.Options{Seed: 11, ENOSPCPermille: 1000, Budget: 1})
	r := New(Options{Jobs: 1, CacheDir: dir, FS: inj.WrapFS(faultio.OS{})})
	got, err := r.Run(q)
	if err != nil || got == nil || got.Result == nil {
		t.Fatalf("run under ENOSPC failed: %v", err)
	}
}

// TestStoreEvictsCorruptRead: a read that returns mangled bytes (bit rot,
// injected here) evicts the entry instead of serving garbage.
func TestStoreEvictsCorruptRead(t *testing.T) {
	dir := t.TempDir()
	q := quick().normalize()
	out, err := execute(q, execCtx{})
	if err != nil {
		t.Fatal(err)
	}
	if err := newStore(dir, nil).save(q, out, 0); err != nil {
		t.Fatal(err)
	}

	inj := faultio.New(faultio.Options{Seed: 3, CorruptPermille: 1000, Budget: 1})
	s := newStore(dir, inj.WrapFS(faultio.OS{}))
	if _, _, err := s.load(q); !errors.Is(err, errEvicted) {
		t.Fatalf("load of corrupt-read entry = %v, want errEvicted", err)
	}
}
