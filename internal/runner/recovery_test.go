package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynamo/internal/checkpoint"
	"dynamo/internal/machine"
	"dynamo/internal/workload"
)

// fastRetry keeps retry tests quick without weakening the schedule.
const fastRetry = time.Millisecond

// swapExecuteCtx is swapExecute for stubs that inspect the execCtx.
func swapExecuteCtx(t *testing.T, fn func(Request, execCtx) (*Outcome, error)) {
	t.Helper()
	orig := executeFn
	executeFn = fn
	t.Cleanup(func() { executeFn = orig })
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	swapExecute(t, func(q Request) (*Outcome, error) {
		if calls.Add(1) <= 2 {
			panic("transient corruption")
		}
		return execute(q, execCtx{})
	})

	r := New(Options{Jobs: 1, CacheDir: dir, Retries: 3, RetryBackoff: fastRetry})
	out, err := r.Run(quick())
	if err != nil || out == nil || out.Result == nil {
		t.Fatalf("retried job failed: %v", err)
	}
	st := r.Stats()
	if st.Retries != 2 || st.Errors != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A recovered job leaves no quarantine marker.
	if _, err := os.Stat(filepath.Join(dir, quick().Digest()+".failed.json")); !os.IsNotExist(err) {
		t.Fatal("recovered job left a quarantine marker")
	}
}

func TestRetryExhaustionQuarantinesWithAttempts(t *testing.T) {
	dir := t.TempDir()
	swapExecute(t, func(q Request) (*Outcome, error) {
		panic("persistent corruption")
	})

	r := New(Options{Jobs: 1, CacheDir: dir, Retries: 2, RetryBackoff: fastRetry})
	if _, err := r.Run(quick()); !errors.Is(err, ErrJobPanicked) {
		t.Fatalf("err = %v, want ErrJobPanicked", err)
	}
	st := r.Stats()
	if st.Retries != 2 || st.Errors != 1 || st.Panics != 1 {
		t.Fatalf("stats = %+v", st)
	}
	data, err := os.ReadFile(filepath.Join(dir, quick().Digest()+".failed.json"))
	if err != nil {
		t.Fatalf("no quarantine marker: %v", err)
	}
	var e failedEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Attempts != 3 {
		t.Fatalf("marker records %d attempts, want 3 (1 run + 2 retries)", e.Attempts)
	}
}

func TestDeterministicFailureNotRetried(t *testing.T) {
	var calls atomic.Int64
	swapExecute(t, func(q Request) (*Outcome, error) {
		calls.Add(1)
		return nil, machine.ErrTimeout
	})
	r := New(Options{Jobs: 1, Retries: 5, RetryBackoff: fastRetry})
	if _, err := r.Run(quick()); !errors.Is(err, machine.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("deterministic failure executed %d times, want 1", n)
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQuarantineClaimIsExclusive is the regression test for the stale
// quarantine-marker race: when many workers observe the same stale
// <digest>.failed.json, exactly one may claim it (and inherit its attempt
// count); the others must see a clean slate, not a double-counted or torn
// marker.
func TestQuarantineClaimIsExclusive(t *testing.T) {
	dir := t.TempDir()
	s := newStore(dir, nil)
	q := quick()
	if err := s.quarantine(q, errors.New("old failure"), 5); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	claims := make([]*failedEntry, workers)
	wins := make([]bool, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			claims[i], wins[i] = s.claimFailed(q.Digest())
		}(i)
	}
	wg.Wait()

	won := 0
	for i := range wins {
		if !wins[i] {
			continue
		}
		won++
		if claims[i] == nil || claims[i].Attempts != 5 {
			t.Errorf("winner %d inherited %+v, want the 5-attempt marker", i, claims[i])
		}
	}
	if won != 1 {
		t.Fatalf("%d workers claimed the marker, want exactly 1", won)
	}
	if _, err := os.Stat(s.failedPath(q.Digest())); !os.IsNotExist(err) {
		t.Fatal("claimed marker still on disk")
	}
}

// TestResumeFromCheckpoint checkpoints a half-finished job the way a
// crashed sweep would have, then asserts a Resume runner restores it and
// produces a byte-identical result to an uninterrupted run.
func TestResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	q := quick().normalize()
	digest := q.Digest()

	fresh, err := execute(q, execCtx{})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := json.Marshal(fresh.Result)

	// Reproduce the job's machine exactly as execute builds it, pause at
	// the halfway event, and persist the checkpoint under the job digest.
	cfg := machine.DefaultConfig()
	cfg.Policy = q.Policy
	cfg.CkptIdentity = digest
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.Get(q.Workload)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := spec.Build(workload.Params{Threads: q.Threads, Seed: q.Seed, Scale: q.Scale})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	k := fresh.Result.SimEvents / 2
	res, err := m.RunTo(inst.Programs, k)
	if err != nil || res != nil {
		t.Fatalf("RunTo = %v, %v; want a paused run", res, err)
	}
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	ck, err := checkpoint.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := newStore(dir, nil)
	if err := s.saveCkpt(digest, ck); err != nil {
		t.Fatal(err)
	}

	r := New(Options{Jobs: 1, CacheDir: dir, Resume: true})
	out, err := r.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Resumed != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got, _ := json.Marshal(out.Result); !bytes.Equal(got, base) {
		t.Fatal("resumed result differs from the uninterrupted run")
	}
	// A completed job's checkpoint is cleaned up.
	if _, err := os.Stat(s.ckptPath(digest)); !os.IsNotExist(err) {
		t.Fatal("completed job left its checkpoint behind")
	}
}

func TestResumeEvictsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	q := quick()
	path := filepath.Join(dir, q.Digest()+".ckpt.json")
	if err := os.WriteFile(path, []byte("{ not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(Options{Jobs: 1, CacheDir: dir, Resume: true})
	out, err := r.Run(q)
	if err != nil || out == nil {
		t.Fatalf("run after corrupt checkpoint: %v", err)
	}
	st := r.Stats()
	if st.Resumed != 0 || st.Evictions != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint not evicted")
	}
}

// TestResumeFallsBackWhenReplayDiverges simulates a checkpoint the
// current build can no longer reproduce: the job must discard it and
// restart from event zero, once, without counting a retry.
func TestResumeFallsBackWhenReplayDiverges(t *testing.T) {
	dir := t.TempDir()
	q := quick().normalize()
	digest := q.Digest()
	ck, err := checkpoint.New(digest, 100, checkpoint.State{})
	if err != nil {
		t.Fatal(err)
	}
	s := newStore(dir, nil)
	if err := s.saveCkpt(digest, ck); err != nil {
		t.Fatal(err)
	}

	var fresh atomic.Int64
	swapExecuteCtx(t, func(q Request, x execCtx) (*Outcome, error) {
		if x.resume != nil {
			return nil, fmt.Errorf("replay: %w", checkpoint.ErrDiverged)
		}
		fresh.Add(1)
		return execute(q, execCtx{})
	})

	r := New(Options{Jobs: 1, CacheDir: dir, Resume: true})
	out, err := r.Run(q)
	if err != nil || out == nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if n := fresh.Load(); n != 1 {
		t.Fatalf("fresh fallback ran %d times, want 1", n)
	}
	st := r.Stats()
	if st.Resumed != 1 || st.Retries != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := os.Stat(s.ckptPath(digest)); !os.IsNotExist(err) {
		t.Fatal("diverged checkpoint not discarded")
	}
}

// TestInterruptCancelsSweep asserts cancellation semantics: running jobs
// stop with machine.ErrInterrupted, queued jobs never start, and none of
// them are quarantined — they are resumable, not failed.
func TestInterruptCancelsSweep(t *testing.T) {
	dir := t.TempDir()
	interrupt := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	swapExecuteCtx(t, func(q Request, x execCtx) (*Outcome, error) {
		once.Do(func() { close(started) })
		<-x.interrupt
		return nil, machine.ErrInterrupted
	})

	r := New(Options{Jobs: 1, CacheDir: dir, Interrupt: interrupt})
	reqs := []Request{
		quick(),
		{Workload: "histogram", Policy: "all-near", Threads: 2, Scale: 0.05},
		{Workload: "spmv", Policy: "all-near", Threads: 2, Scale: 0.05},
	}
	var tasks []*Task
	for _, q := range reqs {
		tasks = append(tasks, r.Submit(q))
	}
	<-started
	close(interrupt)

	for _, task := range tasks {
		if _, err := task.Wait(); !errors.Is(err, machine.ErrInterrupted) {
			t.Fatalf("task err = %v, want ErrInterrupted", err)
		}
	}
	st := r.Stats()
	if st.Interrupted != 3 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if failures := r.Failed(); len(failures) != 0 {
		t.Fatalf("interrupted jobs listed as failed: %v", failures)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.failed.json"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("interrupted jobs quarantined: %v %v", entries, err)
	}
}
