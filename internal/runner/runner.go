package runner

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"dynamo/internal/machine"
	"dynamo/internal/obs/profile"
)

// Options configures a Runner.
type Options struct {
	// Jobs bounds concurrently executing simulations (default GOMAXPROCS).
	Jobs int
	// CacheDir, when non-empty, backs the in-memory cache with a
	// persistent JSON store (one file per request digest). Unusable
	// entries are evicted and re-simulated; entries from older schema
	// versions never match.
	CacheDir string
	// Log, when non-nil, receives one progress line per completed job.
	Log io.Writer
}

// Outcome is a completed job's reports.
type Outcome struct {
	Result *machine.Result
	// Hot is the contention profile, set when the request asked for one.
	Hot *profile.HotReport
	// Cached reports that the outcome was loaded from the persistent
	// store rather than simulated in this process.
	Cached bool
}

// Stats counts what the runner did. Saved is the wall-clock the original
// simulations took for every run served from the persistent store — the
// time a cold run would have spent simulating.
type Stats struct {
	// Submitted counts distinct jobs (post-dedupe); Requests counts every
	// Submit call.
	Requests  uint64
	Submitted uint64
	// Hits counts submissions answered by the in-memory cache (dedupe);
	// DiskHits counts jobs answered by the persistent store.
	Hits     uint64
	DiskHits uint64
	// Misses counts jobs that had to simulate; Errors counts failed jobs,
	// of which Panics recovered from a panicking simulation.
	Misses uint64
	Errors uint64
	Panics uint64
	// Evictions counts persisted entries dropped as corrupt or outdated.
	Evictions uint64
	// Saved is the recorded simulation time of every disk hit.
	Saved time.Duration
}

// Simulated returns how many simulations actually executed.
func (s Stats) Simulated() uint64 { return s.Misses }

// ErrJobPanicked marks a job whose simulation panicked; the runner
// recovered, quarantined the job, and kept the rest of the sweep alive.
var ErrJobPanicked = errors.New("runner: job panicked")

// JobError is a failed job: the request that failed and why. Sweep code
// matches causes through it with errors.Is/As (machine.ErrTimeout,
// machine.ErrStalled, *check.Violation, ErrJobPanicked).
type JobError struct {
	Request Request
	Err     error
}

func (e *JobError) Error() string { return fmt.Sprintf("runner: %s: %v", e.Request, e.Err) }

// Unwrap exposes the cause for errors.Is and errors.As.
func (e *JobError) Unwrap() error { return e.Err }

// executeFn is swapped by tests to inject failing or panicking jobs.
var executeFn = execute

// safeExecute runs one job, converting a panic anywhere in the simulator
// into an ErrJobPanicked with the recovered value and stack: one corrupt
// job must not take down a thousand-job sweep.
func safeExecute(q Request) (out *Outcome, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			out = nil
			err = fmt.Errorf("%w: %v\n%s", ErrJobPanicked, rec, debug.Stack())
		}
	}()
	return executeFn(q)
}

// Task is a submitted job's handle.
type Task struct {
	req  Request
	done chan struct{}
	out  *Outcome
	err  error
}

// Wait blocks until the job completes and returns its outcome.
func (t *Task) Wait() (*Outcome, error) {
	<-t.done
	return t.out, t.err
}

// Runner is the sweep engine. Submissions with equal request digests
// coalesce into one job; completed jobs stay in memory for the Runner's
// lifetime and, with a cache directory, persist across processes.
type Runner struct {
	opts  Options
	store *store
	sem   chan struct{}

	mu     sync.Mutex
	tasks  map[string]*Task
	order  []*Task
	failed []*JobError
	stats  Stats
}

// New builds a runner.
func New(opts Options) *Runner {
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opts:  opts,
		store: newStore(opts.CacheDir),
		sem:   make(chan struct{}, opts.Jobs),
		tasks: make(map[string]*Task),
	}
}

// Jobs returns the worker-pool size.
func (r *Runner) Jobs() int { return r.opts.Jobs }

// Submit enqueues a request and returns its task, coalescing duplicates:
// submitting a request whose digest is already known returns the existing
// task (a memory hit) without spawning work.
func (r *Runner) Submit(req Request) *Task {
	req = req.normalize()
	digest := req.Digest()
	r.mu.Lock()
	r.stats.Requests++
	if t, ok := r.tasks[digest]; ok {
		r.stats.Hits++
		r.mu.Unlock()
		return t
	}
	t := &Task{req: req, done: make(chan struct{})}
	r.tasks[digest] = t
	r.order = append(r.order, t)
	r.stats.Submitted++
	r.mu.Unlock()
	go r.run(t)
	return t
}

// Run submits a request and waits for its outcome.
func (r *Runner) Run(req Request) (*Outcome, error) {
	return r.Submit(req).Wait()
}

// Wait blocks until every job submitted so far has completed and returns
// the error of the earliest-submitted failed job, if any.
func (r *Runner) Wait() error {
	r.mu.Lock()
	order := make([]*Task, len(r.order))
	copy(order, r.order)
	r.mu.Unlock()
	var first error
	for _, t := range order {
		if _, err := t.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Failed returns every failed job so far, in completion order. A sweep
// that mixes good and bad configurations harvests its partial results
// with Wait-per-task and reads the casualties here.
func (r *Runner) Failed() []*JobError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*JobError, len(r.failed))
	copy(out, r.failed)
	return out
}

func (r *Runner) run(t *Task) {
	defer close(t.done)

	// The persistent store is probed outside the worker pool: hits are
	// cheap JSON reads and must not queue behind running simulations.
	out, elapsed, err := r.store.load(t.req)
	switch {
	case err == nil:
		r.mu.Lock()
		r.stats.DiskHits++
		r.stats.Saved += elapsed
		r.mu.Unlock()
		t.out = out
		r.logf(t, "cached %s (saved %s)", t.req, elapsed.Round(time.Millisecond))
		return
	case errors.Is(err, errEvicted):
		r.mu.Lock()
		r.stats.Evictions++
		r.mu.Unlock()
	}

	r.sem <- struct{}{}
	start := time.Now()
	out, runErr := safeExecute(t.req)
	elapsed = time.Since(start)
	<-r.sem

	if runErr != nil {
		je := &JobError{Request: t.req, Err: runErr}
		r.mu.Lock()
		r.stats.Errors++
		if errors.Is(runErr, ErrJobPanicked) {
			r.stats.Panics++
		}
		r.failed = append(r.failed, je)
		r.mu.Unlock()
		t.err = je
		// Failed runs never enter the result cache; they leave a
		// quarantine marker beside it for post-mortem instead.
		if qerr := r.store.quarantine(t.req, runErr); qerr != nil {
			r.logf(t, "quarantine write failed: %v", qerr)
		}
		r.logf(t, "failed %s: %v", t.req, runErr)
		return
	}
	r.mu.Lock()
	r.stats.Misses++
	r.mu.Unlock()
	t.out = out
	if err := r.store.save(t.req, out, elapsed); err != nil {
		// A write failure degrades the cache, not the run.
		r.logf(t, "cache write failed: %v", err)
	}
	r.logf(t, "ran %s: %d cycles (%s)", t.req, out.Result.Cycles, elapsed.Round(time.Millisecond))
}

func (r *Runner) logf(t *Task, format string, args ...any) {
	if r.opts.Log == nil {
		return
	}
	r.mu.Lock()
	done := r.stats.DiskHits + r.stats.Misses + r.stats.Errors
	total := r.stats.Submitted
	r.mu.Unlock()
	fmt.Fprintf(r.opts.Log, "  [%d/%d] "+format+"\n", append([]any{done, total}, args...)...)
}
