package runner

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"dynamo/internal/checkpoint"
	"dynamo/internal/faultio"
	"dynamo/internal/machine"
	"dynamo/internal/obs/profile"
	"dynamo/internal/telemetry"
)

// Options configures a Runner.
type Options struct {
	// Jobs bounds concurrently executing simulations (default GOMAXPROCS).
	Jobs int
	// CacheDir, when non-empty, backs the in-memory cache with a
	// persistent JSON store (one file per request digest). Unusable
	// entries are evicted and re-simulated; entries from older schema
	// versions never match.
	CacheDir string
	// Log, when non-nil, receives one progress line per completed job.
	Log io.Writer
	// Retries bounds how many times a transiently failed job
	// (ErrJobPanicked, machine.ErrStalled) re-executes before it is
	// quarantined. Zero disables retries.
	Retries int
	// RetryBackoff is the delay before the first retry; each further
	// retry doubles it. The schedule is deterministic — no jitter — so a
	// failing sweep replays identically. Zero selects 100ms.
	RetryBackoff time.Duration
	// CkptEvery, when nonzero with a cache directory, checkpoints every
	// running job roughly every CkptEvery simulation events to
	// <digest>.ckpt.json, so a killed sweep resumes instead of restarting.
	CkptEvery uint64
	// Resume makes jobs restore from their persisted checkpoint when one
	// exists and verifies; unusable checkpoints are evicted and the job
	// restarts from event zero.
	Resume bool
	// Interrupt, when non-nil, cancels the sweep once signaled or closed:
	// queued jobs abort immediately, running jobs checkpoint and stop,
	// and every cancelled job reports machine.ErrInterrupted.
	Interrupt <-chan struct{}
	// Telemetry, when non-nil, receives metrics and a structured job span
	// from every submit, cache, run, retry, quarantine and interrupt path.
	// Nil costs nothing: the hot path does not allocate.
	Telemetry *telemetry.Sweep
	// ServeAddr, when non-empty, serves telemetry over HTTP (/metrics,
	// /progress, /jobs) on the given host:port (":0" picks a free port) for
	// the runner's lifetime; a journal-less Telemetry surface is created
	// automatically when none was supplied. See Runner.TelemetryAddr.
	ServeAddr string
	// Execute, when non-nil, replaces local simulation: a cache-missing
	// job calls it instead of building a machine in this process. The
	// remote client mode routes jobs to a sweep server through it while
	// keeping the pool, dedupe, retry, telemetry and stats semantics.
	// Checkpoint capture and resume are skipped — whoever executes owns
	// them.
	Execute func(Request) (*Outcome, error)
	// ExecuteInterruptible is Execute's interrupt-aware form and takes
	// precedence over it: the channel closes when the job is cancelled or
	// preempted, so a remote executor can stop waiting (and withdraw or
	// cancel the remote work) instead of polling until the job's natural
	// end. Return an error wrapping machine.ErrInterrupted to report the
	// interruption. The sweep service's lease dispatcher and the remote
	// client both plug in here.
	ExecuteInterruptible func(Request, <-chan struct{}) (*Outcome, error)
	// FS, when non-nil, replaces the file plane beneath the persistent
	// cache (results, checkpoints, quarantine markers) — the seam the
	// deterministic faultio injector wraps. Nil selects the real,
	// fsync-hardened filesystem.
	FS faultio.FS
}

// Outcome is a completed job's reports.
type Outcome struct {
	Result *machine.Result
	// Hot is the contention profile, set when the request asked for one.
	Hot *profile.HotReport
	// Cached reports that the outcome was loaded from the persistent
	// store rather than simulated in this process.
	Cached bool
}

// Stats counts what the runner did. Saved is the wall-clock the original
// simulations took for every run served from the persistent store — the
// time a cold run would have spent simulating.
type Stats struct {
	// Submitted counts distinct jobs (post-dedupe); Requests counts every
	// Submit call.
	Requests  uint64
	Submitted uint64
	// Hits counts submissions answered by the in-memory cache (dedupe);
	// DiskHits counts jobs answered by the persistent store.
	Hits     uint64
	DiskHits uint64
	// Misses counts jobs that had to simulate; Errors counts failed jobs,
	// of which Panics recovered from a panicking simulation.
	Misses uint64
	Errors uint64
	Panics uint64
	// Evictions counts persisted entries dropped as corrupt or outdated.
	Evictions uint64
	// Retries counts re-executions of transiently failed jobs; Resumed
	// counts jobs restored from a persisted checkpoint; Interrupted
	// counts jobs cancelled by Options.Interrupt; Preempted counts jobs
	// that cooperatively yielded at a checkpoint boundary (Task.Preempt)
	// and will resume on their next submission.
	Retries     uint64
	Resumed     uint64
	Interrupted uint64
	Preempted   uint64
	// Saved is the recorded simulation time of every disk hit.
	Saved time.Duration
	// SimEvents totals the kernel events executed by jobs this process
	// simulated (misses only — cached outcomes replayed nothing), and
	// SimTime their wall-clock; SimEvents/SimTime is the sweep's aggregate
	// host throughput in events/sec.
	SimEvents uint64
	SimTime   time.Duration
}

// Simulated returns how many simulations actually executed.
func (s Stats) Simulated() uint64 { return s.Misses }

// ErrJobPanicked marks a job whose simulation panicked; the runner
// recovered, quarantined the job, and kept the rest of the sweep alive.
var ErrJobPanicked = errors.New("runner: job panicked")

// ErrPreempted marks a job that cooperatively yielded at a checkpoint
// boundary after Task.Preempt: not failed, not cancelled — its persisted
// checkpoint resumes it on the next submission of the same request, even
// without Options.Resume. The sweep service's dispatcher uses this to
// time-slice long jobs across competing sweeps.
var ErrPreempted = errors.New("runner: job preempted")

// JobError is a failed job: the request that failed and why. Sweep code
// matches causes through it with errors.Is/As (machine.ErrTimeout,
// machine.ErrStalled, *check.Violation, ErrJobPanicked).
type JobError struct {
	Request Request
	Err     error
}

func (e *JobError) Error() string { return fmt.Sprintf("runner: %s: %v", e.Request, e.Err) }

// Unwrap exposes the cause for errors.Is and errors.As.
func (e *JobError) Unwrap() error { return e.Err }

// executeFn is swapped by tests to inject failing or panicking jobs.
var executeFn = execute

// safeExecute runs one job, converting a panic anywhere in the simulator
// into an ErrJobPanicked with the recovered value and stack: one corrupt
// job must not take down a thousand-job sweep.
func (r *Runner) safeExecute(q Request, x execCtx) (out *Outcome, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			out = nil
			err = fmt.Errorf("%w: %v\n%s", ErrJobPanicked, rec, debug.Stack())
		}
	}()
	if r.opts.ExecuteInterruptible != nil {
		return r.opts.ExecuteInterruptible(q, x.interrupt)
	}
	if r.opts.Execute != nil {
		return r.opts.Execute(q)
	}
	return executeFn(q, x)
}

// remoteExec reports whether job execution is delegated to an external
// executor, which then owns checkpoint capture and resume.
func (r *Runner) remoteExec() bool {
	return r.opts.Execute != nil || r.opts.ExecuteInterruptible != nil
}

// Task is a submitted job's handle.
type Task struct {
	req     Request
	done    chan struct{}
	out     *Outcome
	err     error
	elapsed time.Duration  // wall-clock of the run (or of the original, for disk hits)
	jt      *telemetry.Job // nil unless telemetry is enabled
	// interrupt, when non-nil, cancels just this task (see
	// SubmitInterruptible); the runner-wide Options.Interrupt still
	// applies on top.
	interrupt <-chan struct{}
	// preempt asks a running task to yield at its next checkpoint
	// boundary; unlike interrupt it marks the job resumable-by-default.
	preempt     chan struct{}
	preemptOnce sync.Once
}

// Wait blocks until the job completes and returns its outcome.
func (t *Task) Wait() (*Outcome, error) {
	<-t.done
	return t.out, t.err
}

// Preempt asks a running task to cooperatively yield: the machine stops
// at its next interrupt poll, persists a final checkpoint (when
// checkpointing is on), and the task completes with ErrPreempted. The
// next submission of the same request resumes from that checkpoint.
// Idempotent; a no-op on a task that already finished.
func (t *Task) Preempt() {
	t.preemptOnce.Do(func() { close(t.preempt) })
}

// Runner is the sweep engine. Submissions with equal request digests
// coalesce into one job; completed jobs stay in memory for the Runner's
// lifetime and, with a cache directory, persist across processes.
type Runner struct {
	opts   Options
	store  *store
	sem    chan struct{}
	tel    *telemetry.Sweep  // nil: telemetry disabled
	srv    *telemetry.Server // nil: not serving
	srvErr error
	ownTel bool // the runner created tel and closes it

	mu     sync.Mutex
	tasks  map[string]*Task
	order  []*Task
	failed []*JobError
	stats  Stats
	// resumeNext marks digests whose last task was preempted: their next
	// submission loads the persisted checkpoint even without
	// Options.Resume, so a time-sliced job continues instead of restarting.
	resumeNext map[string]struct{}
}

// New builds a runner.
func New(opts Options) *Runner {
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		opts:       opts,
		store:      newStore(opts.CacheDir, opts.FS),
		sem:        make(chan struct{}, opts.Jobs),
		tel:        opts.Telemetry,
		tasks:      make(map[string]*Task),
		resumeNext: make(map[string]struct{}),
	}
	if opts.ServeAddr != "" && r.tel == nil {
		r.tel = telemetry.NewSweep(telemetry.SweepOptions{})
		r.ownTel = true
	}
	r.tel.SetWorkers(opts.Jobs)
	if opts.ServeAddr != "" {
		// A bind failure degrades observability, never the sweep; it is
		// reported through TelemetryAddr's error.
		r.srv, r.srvErr = telemetry.Serve(opts.ServeAddr, r.tel)
	}
	return r
}

// Jobs returns the worker-pool size.
func (r *Runner) Jobs() int { return r.opts.Jobs }

// Telemetry returns the runner's telemetry surface (nil when disabled).
func (r *Runner) Telemetry() *telemetry.Sweep { return r.tel }

// TelemetryAddr returns the telemetry server's bound address, or the bind
// error when Options.ServeAddr could not be served ("" when not serving).
func (r *Runner) TelemetryAddr() (string, error) {
	if r.srvErr != nil {
		return "", r.srvErr
	}
	if r.srv == nil {
		return "", nil
	}
	return r.srv.Addr(), nil
}

// Close releases the runner's observability resources: it stops the
// telemetry server, if one is running, and closes the telemetry surface
// the runner created itself (a caller-supplied Options.Telemetry stays
// open — its journal belongs to the caller).
func (r *Runner) Close() error {
	var first error
	if r.srv != nil {
		first = r.srv.Close()
		r.srv = nil
	}
	if r.ownTel {
		if err := r.tel.Close(); err != nil && first == nil {
			first = err
		}
		r.ownTel = false
	}
	return first
}

// Submit enqueues a request and returns its task, coalescing duplicates:
// submitting a request whose digest is already known returns the existing
// task (a memory hit) without spawning work.
func (r *Runner) Submit(req Request) *Task { return r.submit(req, nil) }

// SubmitInterruptible enqueues a request with its own interrupt channel:
// closing it cancels just this job — aborted in queue, or stopped
// mid-run with machine.ErrInterrupted (after a final checkpoint, when
// checkpointing is on) — without touching the rest of the pool. The
// runner-wide Options.Interrupt still applies on top. The sweep service
// uses this for per-sweep cancellation. Dedupe is unchanged: a duplicate
// submission returns the existing task with its original wiring.
func (r *Runner) SubmitInterruptible(req Request, interrupt <-chan struct{}) *Task {
	return r.submit(req, interrupt)
}

func (r *Runner) submit(req Request, interrupt <-chan struct{}) *Task {
	req = req.normalize()
	digest := req.Digest()
	r.tel.Submitted()
	r.mu.Lock()
	r.stats.Requests++
	if t, ok := r.tasks[digest]; ok && !replayable(t) {
		r.stats.Hits++
		r.mu.Unlock()
		r.tel.JobDeduped()
		return t
	}
	t := &Task{req: req, done: make(chan struct{}), interrupt: interrupt, preempt: make(chan struct{})}
	if r.tel.Enabled() {
		// Guarded so the request never renders when telemetry is off.
		t.jt = r.tel.StartJob(digest, req.String())
	}
	r.tasks[digest] = t
	r.order = append(r.order, t)
	r.stats.Submitted++
	r.mu.Unlock()
	r.tel.JobQueued()
	go r.run(t)
	return t
}

// replayable reports whether a memoized task's answer is no answer at
// all: a job that terminated with machine.ErrInterrupted was cancelled,
// not computed — and a preempted job merely yielded its slice — so a
// later submission of the same request replaces it with a fresh task
// instead of replaying the cancellation. A long-running sweep service
// depends on this — cancelling one sweep must not poison the same
// request for every future sweep, and a preempted job must be
// re-submittable to continue.
func replayable(t *Task) bool {
	select {
	case <-t.done:
		return errors.Is(t.err, machine.ErrInterrupted) || errors.Is(t.err, ErrPreempted)
	default:
		return false
	}
}

// Run submits a request and waits for its outcome.
func (r *Runner) Run(req Request) (*Outcome, error) {
	return r.Submit(req).Wait()
}

// Wait blocks until every job submitted so far has completed and returns
// the error of the earliest-submitted failed job, if any.
func (r *Runner) Wait() error {
	r.mu.Lock()
	order := make([]*Task, len(r.order))
	copy(order, r.order)
	r.mu.Unlock()
	var first error
	for _, t := range order {
		if _, err := t.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Failed returns every failed job so far, in completion order. A sweep
// that mixes good and bad configurations harvests its partial results
// with Wait-per-task and reads the casualties here.
func (r *Runner) Failed() []*JobError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*JobError, len(r.failed))
	copy(out, r.failed)
	return out
}

// transient reports whether a failure is worth retrying: a recovered
// panic or a watchdog-abandoned stall may be an artifact of a corrupted
// process state rather than a deterministic property of the request.
func transient(err error) bool {
	return errors.Is(err, ErrJobPanicked) || errors.Is(err, machine.ErrStalled)
}

// badCkpt reports whether a failure means the persisted checkpoint is
// unusable (the current build or configuration no longer reproduces it).
func badCkpt(err error) bool {
	return errors.Is(err, checkpoint.ErrDiverged) ||
		errors.Is(err, checkpoint.ErrIncompatible) ||
		errors.Is(err, checkpoint.ErrCorrupt)
}

// backoff returns the deterministic delay before retry number attempt
// (1-based): RetryBackoff doubled per retry, no jitter.
func (r *Runner) backoff(attempt int) time.Duration {
	base := r.opts.RetryBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	return base << (attempt - 1)
}

// sleep pauses for d, returning false early if intr fires.
func sleep(d time.Duration, intr <-chan struct{}) bool {
	if intr == nil {
		time.Sleep(d)
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-intr:
		return false
	}
}

// interruptedNow polls an interrupt channel without blocking.
func interruptedNow(intr <-chan struct{}) bool {
	if intr == nil {
		return false
	}
	select {
	case <-intr:
		return true
	default:
		return false
	}
}

// mergeInterrupt combines the runner-wide and per-task interrupt
// channels into the single channel the machine polls. With one (or no)
// source there is nothing to merge; with both, a goroutine closes the
// merged channel as soon as either fires and exits when done closes (the
// task finished first).
func mergeInterrupt(a, b, done <-chan struct{}) <-chan struct{} {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	m := make(chan struct{})
	go func() {
		select {
		case <-a:
		case <-b:
		case <-done:
			return
		}
		close(m)
	}()
	return m
}

func (r *Runner) run(t *Task) {
	defer close(t.done)

	// The persistent store is probed outside the worker pool: hits are
	// cheap JSON reads and must not queue behind running simulations.
	out, elapsed, err := r.store.load(t.req)
	switch {
	case err == nil:
		r.mu.Lock()
		r.stats.DiskHits++
		r.stats.Saved += elapsed
		r.mu.Unlock()
		t.out = out
		t.elapsed = elapsed
		r.tel.JobCached(elapsed)
		t.jt.Done(telemetry.OutcomeCached, 0, nil)
		r.logf(t, "cached %s (saved %s)", t.req, elapsed.Round(time.Millisecond))
		return
	case errors.Is(err, errEvicted):
		r.mu.Lock()
		r.stats.Evictions++
		r.mu.Unlock()
		r.tel.Eviction()
	}

	digest := t.req.Digest()
	// Two interrupt tiers: cancel (sweep-wide or per-task) abandons the
	// job; preempt merely asks it to yield its slice. The machine watches
	// their merge — both stop it at a checkpoint boundary — and the
	// classification below tells them apart by polling the cancel sources.
	cancel := mergeInterrupt(r.opts.Interrupt, t.interrupt, t.done)
	intr := mergeInterrupt(cancel, t.preempt, t.done)
	x := execCtx{interrupt: intr}
	r.mu.Lock()
	_, resumeOnce := r.resumeNext[digest]
	delete(r.resumeNext, digest)
	r.mu.Unlock()
	if r.store != nil && !r.remoteExec() {
		x.identity = digest
		if r.opts.CkptEvery > 0 {
			x.ckptEvery = r.opts.CkptEvery
			x.sink = func(ck *checkpoint.Checkpoint) {
				if err := r.store.saveCkpt(digest, ck); err != nil {
					r.logf(t, "checkpoint write failed: %v", err)
				}
			}
		}
		if r.opts.Resume || resumeOnce {
			switch ck, err := r.store.loadCkpt(t.req); {
			case err == nil:
				x.resume = ck
				r.mu.Lock()
				r.stats.Resumed++
				r.mu.Unlock()
				r.tel.JobResumed()
				t.jt.MarkResumed()
				r.logf(t, "resuming %s from event %d", t.req, ck.Event)
			case !errors.Is(err, os.ErrNotExist):
				r.mu.Lock()
				r.stats.Evictions++
				r.mu.Unlock()
				r.tel.Eviction()
				r.logf(t, "checkpoint evicted: %v", err)
			}
		}
	}
	// Claim any stale quarantine marker before re-running: the rename
	// inside claimFailed guarantees that of all workers sharing this cache
	// directory, exactly one inherits the marker's attempt count.
	var prior int
	if prev, ok := r.store.claimFailed(digest); ok && prev != nil {
		prior = prev.Attempts
	}

	r.sem <- struct{}{}
	if r.cancelledNow(t) {
		// The sweep (or this job's own sweep) was cancelled while it sat
		// in the queue; its persisted checkpoint (if any) stays put for
		// the next resume. A pending preempt alone does not abort a queued
		// job — it runs and yields at its first checkpoint poll.
		<-r.sem
		r.finishInterrupted(t, true)
		return
	}
	r.tel.JobRunning()
	t.jt.Begin()
	start := time.Now()
	var runErr error
	attempts := 0
	for {
		attempts++
		t.jt.AttemptStart()
		out, runErr = r.safeExecute(t.req, x)
		t.jt.AttemptEnd(runErr)
		if runErr == nil {
			break
		}
		if x.resume != nil && badCkpt(runErr) {
			// The checkpoint no longer replays under this build: discard it
			// and restart the job from event zero. Not counted as a retry —
			// the job itself has not failed yet.
			r.store.removeCkpt(digest)
			x.resume = nil
			r.logf(t, "checkpoint unusable for %s, restarting from scratch: %v", t.req, runErr)
			continue
		}
		if errors.Is(runErr, machine.ErrInterrupted) {
			break
		}
		if !transient(runErr) || attempts > r.opts.Retries {
			break
		}
		delay := r.backoff(attempts)
		r.mu.Lock()
		r.stats.Retries++
		r.mu.Unlock()
		r.tel.Retry()
		r.logf(t, "retrying %s in %s (attempt %d of %d): %v",
			t.req, delay, attempts+1, r.opts.Retries+1, runErr)
		if !sleep(delay, intr) {
			runErr = fmt.Errorf("%w (retry abandoned after: %v)", machine.ErrInterrupted, runErr)
			break
		}
	}
	elapsed = time.Since(start)
	<-r.sem
	r.tel.JobRunDone()

	if errors.Is(runErr, machine.ErrInterrupted) {
		if r.cancelledNow(t) {
			r.finishInterrupted(t, false)
		} else {
			r.finishPreempted(t)
		}
		return
	}
	if runErr != nil {
		je := &JobError{Request: t.req, Err: runErr}
		panicked := errors.Is(runErr, ErrJobPanicked)
		r.mu.Lock()
		r.stats.Errors++
		if panicked {
			r.stats.Panics++
		}
		r.failed = append(r.failed, je)
		r.mu.Unlock()
		t.err = je
		r.tel.JobFailed(panicked, elapsed)
		t.jt.Done(telemetry.OutcomeFailed, 0, runErr)
		// Failed runs never enter the result cache; they leave a
		// quarantine marker beside it for post-mortem instead. Any
		// persisted checkpoint stays for bisection.
		if qerr := r.store.quarantine(t.req, runErr, prior+attempts); qerr != nil {
			r.logf(t, "quarantine write failed: %v", qerr)
		}
		r.logf(t, "failed %s after %d attempt(s): %v", t.req, attempts, runErr)
		return
	}
	r.mu.Lock()
	r.stats.Misses++
	r.stats.SimEvents += out.Result.SimEvents
	r.stats.SimTime += elapsed
	r.mu.Unlock()
	t.out = out
	t.elapsed = elapsed
	r.tel.JobSucceeded(elapsed, out.Result.SimEvents)
	t.jt.Done(telemetry.OutcomeOK, out.Result.SimEvents, nil)
	r.store.removeCkpt(digest)
	if err := r.store.save(t.req, out, elapsed); err != nil {
		// A write failure degrades the cache, not the run.
		r.logf(t, "cache write failed: %v", err)
	}
	r.logf(t, "ran %s: %d cycles (%s)", t.req, out.Result.Cycles, elapsed.Round(time.Millisecond))
}

// finishInterrupted records a cancelled job: it reports
// machine.ErrInterrupted through its task but is neither quarantined nor
// counted as an error — its checkpoint (when one was captured) makes it
// resumable, not failed. fromQueue marks a job cancelled before it ever
// reached the worker pool.
func (r *Runner) finishInterrupted(t *Task, fromQueue bool) {
	je := &JobError{Request: t.req, Err: machine.ErrInterrupted}
	r.mu.Lock()
	r.stats.Interrupted++
	r.mu.Unlock()
	t.err = je
	r.tel.JobInterrupted(fromQueue)
	t.jt.Done(telemetry.OutcomeInterrupted, 0, machine.ErrInterrupted)
	r.logf(t, "interrupted %s", t.req)
}

// cancelledNow polls the job's cancellation sources directly — not the
// merged channel the machine watches, whose closing goroutine may lag
// the source by a scheduling quantum.
func (r *Runner) cancelledNow(t *Task) bool {
	return interruptedNow(r.opts.Interrupt) || interruptedNow(t.interrupt)
}

// finishPreempted records a job that cooperatively yielded: it reports
// ErrPreempted through its task and marks its digest to resume from the
// persisted checkpoint on the next submission. Like a cancelled job it is
// neither quarantined nor an error — but unlike one, yielding was the
// runner's own scheduling decision, so the resume is automatic.
func (r *Runner) finishPreempted(t *Task) {
	je := &JobError{Request: t.req, Err: ErrPreempted}
	r.mu.Lock()
	r.stats.Preempted++
	r.resumeNext[t.req.Digest()] = struct{}{}
	r.mu.Unlock()
	t.err = je
	r.tel.JobPreempted()
	t.jt.Done(telemetry.OutcomePreempted, 0, ErrPreempted)
	r.logf(t, "preempted %s (resumes on next submit)", t.req)
}

// EntryBytes returns the canonical persisted-cache document for a job
// this runner completed successfully — the same bytes save wrote. When
// the on-disk copy was lost or corrupted (a crash, a full disk, an
// injected fault), the document is re-materialized from the in-memory
// outcome and best-effort re-persisted, healing the cache. Returns
// os.ErrNotExist when the digest names no finished successful job.
func (r *Runner) EntryBytes(digest string) ([]byte, error) {
	r.mu.Lock()
	t := r.tasks[digest]
	r.mu.Unlock()
	if t == nil {
		return nil, os.ErrNotExist
	}
	select {
	case <-t.done:
	default:
		return nil, os.ErrNotExist
	}
	if t.err != nil || t.out == nil {
		return nil, os.ErrNotExist
	}
	data, err := encodeEntry(t.req, t.out, t.elapsed)
	if err != nil {
		return nil, err
	}
	if r.store != nil {
		if werr := r.store.writeAtomic(r.store.path(digest), data); werr != nil {
			r.logf(t, "cache heal failed: %v", werr)
		}
	}
	return data, nil
}

func (r *Runner) logf(t *Task, format string, args ...any) {
	if r.opts.Log == nil {
		return
	}
	r.mu.Lock()
	done := r.stats.DiskHits + r.stats.Misses + r.stats.Errors
	total := r.stats.Submitted
	r.mu.Unlock()
	fmt.Fprintf(r.opts.Log, "  [%d/%d] "+format+"\n", append([]any{done, total}, args...)...)
}
