package runner

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynamo/internal/machine"
)

// swapExecute replaces the job executor for one test and restores it.
func swapExecute(t *testing.T, fn func(Request) (*Outcome, error)) {
	t.Helper()
	orig := executeFn
	executeFn = func(q Request, _ execCtx) (*Outcome, error) { return fn(q) }
	t.Cleanup(func() { executeFn = orig })
}

func TestPanickingJobDoesNotSinkTheSweep(t *testing.T) {
	dir := t.TempDir()
	bad := Request{Workload: "tc", Policy: "all-far", Threads: 2, Scale: 0.05}
	swapExecute(t, func(q Request) (*Outcome, error) {
		if q.Policy == "all-far" {
			panic("corrupt simulator state")
		}
		return execute(q, execCtx{})
	})

	r := New(Options{Jobs: 2, CacheDir: dir})
	good1 := r.Submit(quick())
	failed := r.Submit(bad)
	good2 := r.Submit(Request{Workload: "histogram", Policy: "all-near", Threads: 2, Scale: 0.05})

	// The healthy jobs complete with results despite the casualty.
	for _, task := range []*Task{good1, good2} {
		out, err := task.Wait()
		if err != nil || out == nil || out.Result == nil {
			t.Fatalf("healthy job failed: %v", err)
		}
	}
	_, err := failed.Wait()
	if err == nil {
		t.Fatal("panicking job reported success")
	}
	if !errors.Is(err, ErrJobPanicked) {
		t.Fatalf("err = %v, want ErrJobPanicked", err)
	}
	var je *JobError
	if !errors.As(err, &je) || je.Request.Policy != "all-far" {
		t.Fatalf("err = %v, want a JobError carrying the request", err)
	}
	if !strings.Contains(err.Error(), "corrupt simulator state") {
		t.Fatalf("panic value lost: %v", err)
	}

	st := r.Stats()
	if st.Errors != 1 || st.Panics != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if failures := r.Failed(); len(failures) != 1 || failures[0].Request.Policy != "all-far" {
		t.Fatalf("Failed() = %v", failures)
	}

	// The failed run is quarantined, never cached.
	digest := bad.Digest()
	if _, err := os.Stat(filepath.Join(dir, digest+".json")); !os.IsNotExist(err) {
		t.Fatal("failed run entered the result cache")
	}
	marker, err := os.ReadFile(filepath.Join(dir, digest+".failed.json"))
	if err != nil {
		t.Fatalf("no quarantine marker: %v", err)
	}
	if !strings.Contains(string(marker), "corrupt simulator state") {
		t.Fatal("quarantine marker does not record the cause")
	}
}

func TestJobErrorExposesCause(t *testing.T) {
	swapExecute(t, func(q Request) (*Outcome, error) {
		return nil, machine.ErrTimeout
	})
	r := New(Options{Jobs: 1})
	_, err := r.Run(quick())
	if !errors.Is(err, machine.ErrTimeout) {
		t.Fatalf("errors.Is(ErrTimeout) = false: %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) || je.Request.Workload != "tc" {
		t.Fatalf("err = %v, want a JobError for the tc request", err)
	}
	if err := r.Wait(); !errors.Is(err, machine.ErrTimeout) {
		t.Fatalf("Wait() = %v, want the timeout surfaced", err)
	}
}

func TestQuarantineMarkerClearedOnSuccess(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("transient simulator bug")
	swapExecute(t, func(q Request) (*Outcome, error) { return nil, boom })
	if _, err := New(Options{Jobs: 1, CacheDir: dir}).Run(quick()); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	marker := filepath.Join(dir, quick().Digest()+".failed.json")
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("no quarantine marker: %v", err)
	}

	// After the bug is fixed, a successful run replaces the marker with a
	// real cache entry.
	executeFn = execute
	out, err := New(Options{Jobs: 1, CacheDir: dir}).Run(quick())
	if err != nil || out.Cached {
		t.Fatalf("re-run: out=%+v err=%v", out, err)
	}
	if _, err := os.Stat(marker); !os.IsNotExist(err) {
		t.Fatal("stale quarantine marker survived a successful run")
	}
	if _, err := os.Stat(filepath.Join(dir, quick().Digest()+".json")); err != nil {
		t.Fatalf("no cache entry after successful re-run: %v", err)
	}
}

func TestCheckAndChaosDigests(t *testing.T) {
	plain := quick()
	checked := quick()
	checked.Check = true
	if plain.Digest() == checked.Digest() {
		t.Error("sanitized request shares the plain request's digest")
	}
	// Chaos normalization: a bare seed runs at level 1, a bare level runs
	// seed 1, and both spellings share a digest.
	bareSeed := quick()
	bareSeed.ChaosSeed = 1
	bareLevel := quick()
	bareLevel.ChaosLevel = 1
	if bareSeed.Digest() != bareLevel.Digest() {
		t.Error("equivalent chaos spellings have different digests")
	}
	if bareSeed.Digest() == plain.Digest() {
		t.Error("chaos request shares the plain request's digest")
	}
}

func TestCheckedAndChaosRequestsExecute(t *testing.T) {
	r := New(Options{Jobs: 2})
	req := quick()
	req.Check = true
	out, err := r.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Check == nil || !out.Result.Check.Clean {
		t.Fatalf("sanitized run has no clean report: %+v", out.Result.Check)
	}

	chaotic := quick()
	chaotic.Check = true
	chaotic.ChaosSeed = 7
	chaotic.ChaosLevel = 2
	out, err = r.Run(chaotic)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Check == nil || !out.Result.Check.Clean {
		t.Fatalf("chaotic run has no clean report: %+v", out.Result.Check)
	}
}
