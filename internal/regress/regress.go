// Package regress canonicalises a run's metrics into a deterministic
// snapshot and diffs two snapshots under configurable tolerances. It is
// the engine behind cmd/dynamo-stats and the CI baseline gate: a snapshot
// committed from a known-good run is compared against a fresh run of the
// same configuration, and any metric drifting past tolerance is a
// regression.
package regress

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"dynamo/internal/machine"
)

// Digest canonicalises a metadata map into a content digest: the map is
// JSON-encoded (Go sorts map keys, so encoding is deterministic) and
// hashed. Two runs with the same identifying metadata share a digest;
// internal/runner keys its persistent result cache on it.
func Digest(meta map[string]string) string {
	canon, err := json.Marshal(meta)
	if err != nil {
		// A map[string]string always marshals.
		panic(fmt.Sprintf("regress: canonicalising meta: %v", err))
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])
}

// Snapshot is the canonical form of one run: identifying metadata plus a
// flat metric map. JSON encoding is deterministic (Go sorts map keys), so
// identical runs produce byte-identical snapshots.
type Snapshot struct {
	Meta    map[string]string  `json:"meta"`
	Metrics map[string]float64 `json:"metrics"`
}

// FromResult canonicalises a run result. meta identifies the run
// configuration (workload, policy, threads, seed, ...) and is compared
// verbatim by Diff; every counter and summary metric lands in Metrics
// under a stable dotted name.
func FromResult(meta map[string]string, res *machine.Result) *Snapshot {
	s := &Snapshot{Meta: meta, Metrics: map[string]float64{}}
	put := func(name string, v float64) { s.Metrics[name] = v }
	putU := func(name string, v uint64) { put(name, float64(v)) }

	putU("cycles", uint64(res.Cycles))
	putU("instructions", res.Instructions)
	putU("amos", res.AMOs)
	putU("amo-loads", res.AMOLoads)
	putU("amo-stores", res.AMOStores)
	putU("near-local", res.NearLocal)
	putU("near-txn", res.NearTxn)
	putU("far", res.Far)
	put("apki", res.APKI)
	put("avg-amo-latency", res.AvgAMOLatency)

	putU("noc.messages", res.NoC.Messages)
	putU("noc.flits", res.NoC.Flits)
	putU("noc.flit-hops", res.NoC.FlitHops)
	putU("noc.hops", res.NoC.Hops)
	putU("noc.queue-wait", res.NoC.QueueWait)
	putU("mem.reads", res.Mem.Reads)
	putU("mem.writes", res.Mem.Writes)
	putU("mem.queue-wait", res.Mem.QueueWait)
	put("energy.caches", res.Energy.Caches)
	put("energy.noc", res.Energy.NoC)
	put("energy.memory", res.Energy.Memory)

	if res.Detail != nil {
		for _, name := range res.Detail.Names() {
			put("detail."+name, float64(res.Detail.Get(name)))
		}
	}
	if res.Obs != nil {
		for _, c := range res.Obs.Counters {
			put("obs."+c.Name, float64(c.Value))
		}
		for _, h := range res.Obs.Classes {
			put("obs.class."+h.Name+".count", float64(h.Count))
			put("obs.class."+h.Name+".mean", h.Mean)
		}
	}
	return s
}

// WriteJSON writes the snapshot with stable formatting.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Read parses a snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("regress: parsing snapshot: %w", err)
	}
	return &s, nil
}

// Tolerance bounds acceptable drift per metric: a metric passes when
// |b-a| <= Abs or the relative error |b-a|/max(|a|,|b|) <= Rel.
type Tolerance struct {
	// Rel is the relative tolerance (0.02 = 2%).
	Rel float64
	// Abs is the absolute slack, useful for near-zero metrics.
	Abs float64
	// PerMetric overrides Rel for specific metric names.
	PerMetric map[string]float64
}

// Drift is one metric (or meta key) outside tolerance.
type Drift struct {
	Key      string  `json:"key"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// RelErr is |current-baseline| / max(|baseline|, |current|).
	RelErr float64 `json:"rel_err"`
	// Meta marks a metadata mismatch (values are meaningless then).
	Meta string `json:"meta,omitempty"`
}

func (d Drift) String() string {
	if d.Meta != "" {
		return fmt.Sprintf("meta %-24s %s", d.Key, d.Meta)
	}
	return fmt.Sprintf("%-32s %12g -> %12g (%+.2f%%)", d.Key, d.Baseline, d.Current, 100*d.RelErr)
}

// Diff compares current against baseline and returns every drift, sorted
// by key. Metrics present in only one snapshot always drift: a metric
// disappearing (or appearing) is a behavioural change the tolerance
// cannot excuse.
func Diff(baseline, current *Snapshot, tol Tolerance) []Drift {
	var out []Drift
	for _, k := range unionKeys(baseline.Meta, current.Meta) {
		a, aok := baseline.Meta[k]
		b, bok := current.Meta[k]
		if a != b {
			out = append(out, Drift{Key: k, Meta: metaMismatch(a, aok, b, bok)})
		}
	}
	for _, k := range unionMetricKeys(baseline.Metrics, current.Metrics) {
		a, aok := baseline.Metrics[k]
		b, bok := current.Metrics[k]
		if !aok || !bok {
			out = append(out, Drift{Key: k, Baseline: a, Current: b, RelErr: 1,
				Meta: metaMismatch(fmt.Sprint(a), aok, fmt.Sprint(b), bok)})
			continue
		}
		if rel, ok := drifted(a, b, tol.metricTol(k), tol.Abs); ok {
			out = append(out, Drift{Key: k, Baseline: a, Current: b, RelErr: rel})
		}
	}
	return out
}

func (t Tolerance) metricTol(name string) float64 {
	if r, ok := t.PerMetric[name]; ok {
		return r
	}
	return t.Rel
}

// drifted reports whether a->b exceeds tolerance, and the relative error.
func drifted(a, b, rel, abs float64) (float64, bool) {
	diff := math.Abs(b - a)
	if diff == 0 || diff <= abs {
		return 0, false
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	r := diff / denom
	return r, r > rel
}

func metaMismatch(a string, aok bool, b string, bok bool) string {
	switch {
	case !aok:
		return fmt.Sprintf("only in current (%q)", b)
	case !bok:
		return fmt.Sprintf("only in baseline (%q)", a)
	default:
		return fmt.Sprintf("%q -> %q", a, b)
	}
}

func unionKeys(a, b map[string]string) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unionMetricKeys(a, b map[string]float64) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
