package regress

import (
	"bytes"
	"reflect"
	"testing"
)

func snap(metrics map[string]float64) *Snapshot {
	return &Snapshot{Meta: map[string]string{"workload": "x", "policy": "p"}, Metrics: metrics}
}

func TestDiffSelfIsEmpty(t *testing.T) {
	a := snap(map[string]float64{"cycles": 100, "amos": 10, "zero": 0})
	if d := Diff(a, a, Tolerance{}); len(d) != 0 {
		t.Fatalf("self diff = %+v", d)
	}
}

func TestDiffTolerances(t *testing.T) {
	a := snap(map[string]float64{"cycles": 100, "amos": 10})
	b := snap(map[string]float64{"cycles": 103, "amos": 10})

	// 3% drift passes a 5% tolerance, fails a 1% tolerance.
	if d := Diff(a, b, Tolerance{Rel: 0.05}); len(d) != 0 {
		t.Fatalf("within tolerance yet drifted: %+v", d)
	}
	d := Diff(a, b, Tolerance{Rel: 0.01})
	if len(d) != 1 || d[0].Key != "cycles" || d[0].Baseline != 100 || d[0].Current != 103 {
		t.Fatalf("drift = %+v", d)
	}
	if d[0].RelErr < 0.029 || d[0].RelErr > 0.03 {
		t.Fatalf("rel err = %g", d[0].RelErr)
	}

	// Absolute slack excuses near-zero metrics that relative error cannot.
	za := snap(map[string]float64{"q": 0})
	zb := snap(map[string]float64{"q": 1})
	if d := Diff(za, zb, Tolerance{Rel: 0.5, Abs: 2}); len(d) != 0 {
		t.Fatalf("abs slack not applied: %+v", d)
	}
	if d := Diff(za, zb, Tolerance{Rel: 0.5, Abs: 0.5}); len(d) != 1 {
		t.Fatalf("0 -> 1 must drift: %+v", d)
	}

	// Per-metric override wins over the global relative tolerance.
	over := Tolerance{Rel: 0.01, PerMetric: map[string]float64{"cycles": 0.1}}
	if d := Diff(a, b, over); len(d) != 0 {
		t.Fatalf("per-metric override ignored: %+v", d)
	}
}

func TestDiffMissingKeysAndMeta(t *testing.T) {
	a := snap(map[string]float64{"cycles": 100, "amos": 10})
	b := snap(map[string]float64{"cycles": 100})
	d := Diff(a, b, Tolerance{Rel: 10}) // huge tolerance cannot excuse a vanished metric
	if len(d) != 1 || d[0].Key != "amos" || d[0].RelErr != 1 || d[0].Meta == "" {
		t.Fatalf("missing metric drift = %+v", d)
	}

	c := snap(map[string]float64{"cycles": 100, "amos": 10})
	c.Meta["workload"] = "y"
	c.Meta["extra"] = "1"
	d = Diff(a, c, Tolerance{})
	if len(d) != 2 {
		t.Fatalf("meta drifts = %+v", d)
	}
	// Sorted by key: "extra" (only in current) then "workload" (mismatch).
	if d[0].Key != "extra" || d[1].Key != "workload" || d[1].Meta == "" {
		t.Fatalf("meta drifts = %+v", d)
	}
}

func TestSnapshotRoundTripDeterministic(t *testing.T) {
	s := snap(map[string]float64{"b": 2, "a": 1, "c.x": 3.5})
	var w1, w2 bytes.Buffer
	if err := s.WriteJSON(&w1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("snapshot JSON not byte-identical across writes")
	}
	got, err := Read(&w1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
	if d := Diff(s, got, Tolerance{}); len(d) != 0 {
		t.Fatalf("round-trip diff = %+v", d)
	}
}
