// Package graph provides the compressed-sparse-row graphs, synthetic
// generators and serial reference algorithms behind the Galois- and
// GAP-style workloads. The generators stand in for the paper's inputs: Grid
// produces road-network-like graphs (the DIMACS USA/FLA/NY family), and
// Kronecker produces the power-law graphs GAP uses.
package graph

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an unweighted or weighted directed graph in CSR form. For the
// undirected generators every edge appears in both directions.
type Graph struct {
	N       int
	Offsets []int32 // len N+1
	Edges   []int32
	Weights []int32 // len(Edges) or nil for unweighted graphs
}

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.Edges) }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency slice of v (and the parallel weights,
// nil for unweighted graphs).
func (g *Graph) Neighbors(v int) ([]int32, []int32) {
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	if g.Weights == nil {
		return g.Edges[lo:hi], nil
	}
	return g.Edges[lo:hi], g.Weights[lo:hi]
}

// Validate checks structural consistency.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: %d offsets for %d nodes", len(g.Offsets), g.N)
	}
	if g.Offsets[0] != 0 || int(g.Offsets[g.N]) != len(g.Edges) {
		return fmt.Errorf("graph: offset bounds [%d,%d] vs %d edges", g.Offsets[0], g.Offsets[g.N], len(g.Edges))
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: decreasing offsets at %d", v)
		}
	}
	for _, e := range g.Edges {
		if e < 0 || int(e) >= g.N {
			return fmt.Errorf("graph: edge target %d out of range", e)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph: %d weights for %d edges", len(g.Weights), len(g.Edges))
	}
	return nil
}

// fromAdjacency builds CSR from per-node edge lists.
func fromAdjacency(adj [][]int32, wadj [][]int32) *Graph {
	g := &Graph{N: len(adj), Offsets: make([]int32, len(adj)+1)}
	for v, es := range adj {
		g.Offsets[v+1] = g.Offsets[v] + int32(len(es))
		g.Edges = append(g.Edges, es...)
		if wadj != nil {
			g.Weights = append(g.Weights, wadj[v]...)
		}
	}
	return g
}

// Grid generates a road-network-like graph: a w x h lattice with 4-neighbor
// connectivity, random positive weights, and a few random long-range
// shortcuts, mimicking the diameter and degree profile of the DIMACS road
// inputs.
func Grid(w, h int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	adj := make([][]int32, n)
	wadj := make([][]int32, n)
	id := func(x, y int) int32 { return int32(y*w + x) }
	addBoth := func(a, b int32, wt int32) {
		adj[a] = append(adj[a], b)
		wadj[a] = append(wadj[a], wt)
		adj[b] = append(adj[b], a)
		wadj[b] = append(wadj[b], wt)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				addBoth(id(x, y), id(x+1, y), int32(1+rng.Intn(9)))
			}
			if y+1 < h {
				addBoth(id(x, y), id(x, y+1), int32(1+rng.Intn(9)))
			}
		}
	}
	// Shortcuts: ~1% of nodes get a long-range edge (highways).
	for i := 0; i < n/100; i++ {
		a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
		if a != b {
			addBoth(a, b, int32(10+rng.Intn(20)))
		}
	}
	return fromAdjacency(adj, wadj)
}

// Kronecker generates an R-MAT power-law graph with 2^scale nodes and
// roughly edgeFactor*2^scale undirected edges, the construction the GAP
// benchmark suite specifies. Self-loops and duplicate edges are removed.
func Kronecker(scale, edgeFactor int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	type edge struct{ a, b int32 }
	seen := make(map[edge]bool)
	adj := make([][]int32, n)
	const pa, pb, pc = 0.57, 0.19, 0.19 // standard Graph500 parameters
	target := edgeFactor * n
	for len(seen) < target {
		a, b := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < pa:
			case r < pa+pb:
				b |= 1 << bit
			case r < pa+pb+pc:
				a |= 1 << bit
			default:
				a |= 1 << bit
				b |= 1 << bit
			}
		}
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := edge{int32(a), int32(b)}
		if seen[e] {
			continue
		}
		seen[e] = true
		adj[a] = append(adj[a], int32(b))
		adj[b] = append(adj[b], int32(a))
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
	}
	return fromAdjacency(adj, nil)
}

// BFS returns the hop distance from src to every node (-1 if unreachable):
// the serial reference for the BFS workload.
func BFS(g *Graph, src int) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		es, _ := g.Neighbors(int(u))
		for _, v := range es {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// distHeap is a min-heap for Dijkstra.
type distItem struct {
	node int32
	d    int64
}
type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// SSSP returns shortest-path distances from src (weighted graphs;
// math.MaxInt64 sentinel is avoided by using -1 for unreachable): the
// serial reference for SSSP/SPT workloads.
func SSSP(g *Graph, src int) []int64 {
	const inf = int64(1) << 62
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	h := &distHeap{{int32(src), 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		es, ws := g.Neighbors(int(it.node))
		for i, v := range es {
			w := int64(1)
			if ws != nil {
				w = int64(ws[i])
			}
			if nd := it.d + w; nd < dist[v] {
				dist[v] = nd
				heap.Push(h, distItem{v, nd})
			}
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return dist
}

// Components returns the connected-component label of every node (the
// minimum node id in the component): the serial reference for CC.
func Components(g *Graph) []int32 {
	label := make([]int32, g.N)
	for i := range label {
		label[i] = -1
	}
	for s := 0; s < g.N; s++ {
		if label[s] != -1 {
			continue
		}
		stack := []int32{int32(s)}
		label[s] = int32(s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			es, _ := g.Neighbors(int(u))
			for _, v := range es {
				if label[v] == -1 {
					label[v] = int32(s)
					stack = append(stack, v)
				}
			}
		}
	}
	return label
}

// Triangles counts triangles: the serial reference for TC. Edges must be
// sorted per node (the generators guarantee this for Kronecker).
func Triangles(g *Graph) uint64 {
	var count uint64
	for u := 0; u < g.N; u++ {
		eu, _ := g.Neighbors(u)
		for _, v := range eu {
			if int(v) <= u {
				continue
			}
			ev, _ := g.Neighbors(int(v))
			// Intersect neighbors of u and v greater than v.
			i, j := 0, 0
			for i < len(eu) && j < len(ev) {
				a, b := eu[i], ev[j]
				switch {
				case a == b:
					if a > v {
						count++
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	return count
}

// KCore returns which nodes survive iterative k-core peeling: the serial
// reference for KCORE.
func KCore(g *Graph, k int) []bool {
	deg := make([]int, g.N)
	alive := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		deg[v] = g.Degree(v)
		alive[v] = true
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.N; v++ {
			if alive[v] && deg[v] < k {
				alive[v] = false
				changed = true
				es, _ := g.Neighbors(v)
				for _, u := range es {
					deg[u]--
				}
			}
		}
	}
	return alive
}

// PageRank runs fixed-point integer PageRank for iters iterations with
// damping 0.85 in fixed-point (x1024): the serial reference for PR. It
// matches the parallel workload's arithmetic exactly so results compare
// bit-for-bit.
func PageRank(g *Graph, iters int) []int64 {
	rank := make([]int64, g.N)
	next := make([]int64, g.N)
	const unit = int64(1 << 20)
	for i := range rank {
		rank[i] = unit
	}
	for it := 0; it < iters; it++ {
		base := unit * 15 / 100
		for i := range next {
			next[i] = base
		}
		for u := 0; u < g.N; u++ {
			d := g.Degree(u)
			if d == 0 {
				continue
			}
			share := rank[u] * 85 / 100 / int64(d)
			es, _ := g.Neighbors(u)
			for _, v := range es {
				next[v] += share
			}
		}
		rank, next = next, rank
	}
	return rank
}
