package graph

import (
	"testing"
	"testing/quick"
)

func TestGridStructure(t *testing.T) {
	g := Grid(8, 8, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 64 {
		t.Fatalf("N = %d, want 64", g.N)
	}
	// Lattice edges: 2*(w-1)*h + 2*w*(h-1) directed = 224, plus shortcuts.
	if g.M() < 224 {
		t.Fatalf("M = %d, want >= 224", g.M())
	}
	if g.Weights == nil {
		t.Fatal("grid graphs must be weighted")
	}
	for _, w := range g.Weights {
		if w <= 0 {
			t.Fatalf("non-positive weight %d", w)
		}
	}
}

func TestGridDeterministic(t *testing.T) {
	a, b := Grid(10, 10, 7), Grid(10, 10, 7)
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed produced different edges")
		}
	}
	c := Grid(10, 10, 8)
	same := c.M() == a.M()
	if same {
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestKroneckerStructure(t *testing.T) {
	g := Kronecker(8, 8, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 256 {
		t.Fatalf("N = %d, want 256", g.N)
	}
	// edgeFactor*N undirected edges => 2x directed.
	if g.M() != 2*8*256 {
		t.Fatalf("M = %d, want %d", g.M(), 2*8*256)
	}
	// Power-law: the max degree should far exceed the average.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if avg := g.M() / g.N; maxDeg < 3*avg {
		t.Fatalf("max degree %d vs avg %d: no skew", maxDeg, g.M()/g.N)
	}
}

func TestBFSOnGrid(t *testing.T) {
	// On a pure lattice without shortcuts, BFS distance from corner (0,0)
	// to (x,y) is x+y. Build a small grid with seed chosen so shortcuts
	// exist but verify only general invariants; then check a hand-built
	// path graph exactly.
	path := fromAdjacency([][]int32{{1}, {0, 2}, {1, 3}, {2}}, nil)
	d := BFS(path, 0)
	for i, want := range []int32{0, 1, 2, 3} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	// Unreachable nodes stay -1.
	island := fromAdjacency([][]int32{{1}, {0}, {}}, nil)
	d = BFS(island, 0)
	if d[2] != -1 {
		t.Fatalf("unreachable dist = %d, want -1", d[2])
	}
}

func TestSSSPMatchesBFSOnUnitWeights(t *testing.T) {
	g := Kronecker(7, 4, 9)
	bfs := BFS(g, 0)
	sssp := SSSP(g, 0)
	for v := 0; v < g.N; v++ {
		if int64(bfs[v]) != sssp[v] {
			t.Fatalf("node %d: bfs %d vs sssp %d", v, bfs[v], sssp[v])
		}
	}
}

func TestSSSPTriangleInequality(t *testing.T) {
	g := Grid(12, 12, 5)
	d := SSSP(g, 0)
	for u := 0; u < g.N; u++ {
		if d[u] < 0 {
			continue
		}
		es, ws := g.Neighbors(u)
		for i, v := range es {
			if d[v] < 0 || d[v] > d[u]+int64(ws[i]) {
				t.Fatalf("triangle inequality violated at edge %d->%d", u, v)
			}
		}
	}
}

func TestComponents(t *testing.T) {
	g := fromAdjacency([][]int32{{1}, {0}, {3}, {2}, {}}, nil)
	l := Components(g)
	if l[0] != l[1] || l[2] != l[3] || l[0] == l[2] || l[4] == l[0] || l[4] == l[2] {
		t.Fatalf("labels = %v", l)
	}
	// Grid is connected (lattice backbone).
	g2 := Grid(6, 6, 2)
	l2 := Components(g2)
	for _, lab := range l2 {
		if lab != 0 {
			t.Fatal("grid not a single component")
		}
	}
}

func TestTriangles(t *testing.T) {
	// Complete graph K4 has 4 triangles.
	k4 := fromAdjacency([][]int32{
		{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2},
	}, nil)
	if got := Triangles(k4); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	// A path has none.
	path := fromAdjacency([][]int32{{1}, {0, 2}, {1}}, nil)
	if got := Triangles(path); got != 0 {
		t.Fatalf("path triangles = %d, want 0", got)
	}
}

func TestKCore(t *testing.T) {
	// Triangle plus a pendant node: 2-core keeps the triangle only.
	g := fromAdjacency([][]int32{
		{1, 2}, {0, 2}, {0, 1, 3}, {2},
	}, nil)
	alive := KCore(g, 2)
	want := []bool{true, true, true, false}
	for i := range want {
		if alive[i] != want[i] {
			t.Fatalf("alive = %v, want %v", alive, want)
		}
	}
}

func TestPageRankMassConservation(t *testing.T) {
	g := Kronecker(7, 6, 11)
	rank := PageRank(g, 5)
	var total int64
	for _, r := range rank {
		total += r
	}
	// Fixed-point PageRank loses mass to truncation and to dangling
	// (degree-0) nodes, whose share is not redistributed; allow 15%.
	exact := int64(g.N) * (1 << 20)
	diff := total - exact
	if diff < 0 {
		diff = -diff
	}
	if diff > exact*15/100 {
		t.Fatalf("rank mass %d vs %d", total, exact)
	}
}

// Property: every generated graph validates and is symmetric (undirected).
func TestGeneratorSymmetryProperty(t *testing.T) {
	f := func(seed int64, pick bool) bool {
		var g *Graph
		if pick {
			g = Grid(9, 7, seed)
		} else {
			g = Kronecker(6, 5, seed)
		}
		if g.Validate() != nil {
			return false
		}
		type edge struct{ a, b int32 }
		fwd := make(map[edge]int)
		for v := 0; v < g.N; v++ {
			es, _ := g.Neighbors(v)
			for _, u := range es {
				fwd[edge{int32(v), u}]++
			}
		}
		for e, c := range fwd {
			if fwd[edge{e.b, e.a}] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
