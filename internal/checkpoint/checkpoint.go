// Package checkpoint serializes complete machine state for crash
// recovery and violation bisection.
//
// The simulation kernel schedules closures and programs run as blocked
// goroutines, so machine state cannot be re-injected directly. A
// checkpoint instead records (schema version, run identity, executed
// event count k, full state image, state digest); restoring rebuilds the
// machine from its configuration and programs, replays the deterministic
// event stream to event k, and cross-validates the reconstructed state
// against the stored digest bit-exactly. The state image is therefore
// both the verification oracle and a complete, inspectable serialization
// of the machine: engine clock and queue, per-core CPU state, L1/L2/LLC
// arrays with replacement order, directory and MSHR state, NoC link
// reservations, HBM channel queues, predictor tables, the functional
// memory image, sanitizer and observability counters, and any extra
// registered component state (e.g. chaos stream positions).
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dynamo/internal/check"
	"dynamo/internal/chi"
	"dynamo/internal/cpu"
	"dynamo/internal/hbm"
	"dynamo/internal/memory"
	"dynamo/internal/noc"
	"dynamo/internal/obs"
	"dynamo/internal/sim"
)

// SchemaVersion identifies the checkpoint layout. Bump it whenever the
// State shape or any component snapshot changes incompatibly; restores
// across versions fail with ErrIncompatible instead of verifying against
// a digest whose meaning drifted.
const SchemaVersion = 1

// Typed restore failures. Callers branch on these: an incompatible or
// corrupt checkpoint is discarded and the run restarts from event zero; a
// diverged checkpoint indicates the configuration no longer reproduces
// the recorded run (e.g. a code change) and is likewise discarded.
var (
	// ErrIncompatible marks a schema-version or run-identity mismatch.
	ErrIncompatible = errors.New("checkpoint: incompatible")
	// ErrCorrupt marks an unreadable, truncated or digest-failing file.
	ErrCorrupt = errors.New("checkpoint: corrupt")
	// ErrDiverged marks a replay that did not reproduce the stored state.
	ErrDiverged = errors.New("checkpoint: replay diverged from stored state")
)

// State is the complete serializable machine image. Every slice is in a
// canonical order (see the component Snapshot methods), so its JSON
// encoding — and therefore its digest — is deterministic.
type State struct {
	Engine sim.Snapshot    `json:"engine"`
	Cores  []cpu.Snapshot  `json:"cores"`
	RNs    []chi.RNState   `json:"rns"`
	HNs    []chi.HNState   `json:"hns"`
	NoC    noc.Snapshot    `json:"noc"`
	Mem    hbm.Snapshot    `json:"mem"`
	Data   []memory.Word   `json:"data"`
	Check  *check.Report   `json:"check,omitempty"`
	Obs    *obs.Report     `json:"obs,omitempty"`
	Policy json.RawMessage `json:"policy,omitempty"`
	// Extra holds registered component state (machine.RegisterCkptState),
	// e.g. chaos injector stream positions, keyed by component name.
	Extra map[string]json.RawMessage `json:"extra,omitempty"`
}

// Checkpoint is one serialized machine state at a specific event index.
type Checkpoint struct {
	Schema int `json:"schema"`
	// Identity names the run this checkpoint belongs to (the runner uses
	// the request digest); restoring under a different identity fails.
	Identity string `json:"identity,omitempty"`
	// Event is the number of executed events at capture time.
	Event uint64 `json:"event"`
	// StateDigest is the hex sha256 of the canonical State encoding.
	StateDigest string `json:"state_digest"`
	State       State  `json:"state"`
}

// DigestState returns the hex sha256 of the canonical JSON encoding of s.
// Go's encoding/json is deterministic here: struct fields encode in
// declaration order and every map key is sorted.
func DigestState(s *State) (string, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("checkpoint: encode state: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// New builds a checkpoint around a captured state, stamping the schema
// version and state digest.
func New(identity string, event uint64, st State) (*Checkpoint, error) {
	digest, err := DigestState(&st)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		Schema:      SchemaVersion,
		Identity:    identity,
		Event:       event,
		StateDigest: digest,
		State:       st,
	}, nil
}

// Write serializes the checkpoint.
func Write(w io.Writer, ck *Checkpoint) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(ck); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	return nil
}

// Read parses and structurally validates a checkpoint: parse failures and
// digest mismatches return ErrCorrupt, schema drift returns
// ErrIncompatible. Run-identity compatibility is checked separately (see
// Compatible) because the reader does not know which run it serves.
func Read(r io.Reader) (*Checkpoint, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if ck.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: schema %d, want %d", ErrIncompatible, ck.Schema, SchemaVersion)
	}
	digest, err := DigestState(&ck.State)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if digest != ck.StateDigest {
		return nil, fmt.Errorf("%w: state digest mismatch", ErrCorrupt)
	}
	return &ck, nil
}

// Compatible reports whether the checkpoint belongs to the run named by
// identity, returning ErrIncompatible otherwise.
func (ck *Checkpoint) Compatible(identity string) error {
	if ck.Identity != identity {
		return fmt.Errorf("%w: checkpoint identity %q does not match run %q",
			ErrIncompatible, ck.Identity, identity)
	}
	return nil
}
