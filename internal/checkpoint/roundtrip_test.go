package checkpoint_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"dynamo/internal/chaos"
	"dynamo/internal/check"
	"dynamo/internal/checkpoint"
	"dynamo/internal/machine"
	"dynamo/internal/workload"
)

// smallCfg shrinks the default system so checkpoint tests stay fast.
func smallCfg(policy string) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Policy = policy
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 16
	cfg.Chi.L2Sets = 64
	cfg.Chi.LLCSets = 256
	return cfg
}

// newMachine builds a small sanitized machine, optionally chaotic, with
// the instance's memory image staged.
func newMachine(t testing.TB, policy string, inst *workload.Instance, chaosSeed int64, level int) *machine.Machine {
	t.Helper()
	cfg := smallCfg(policy)
	cfg.Check = &check.Config{}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.New(chaosSeed, level)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(m)
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	return m
}

// resultJSON canonically serializes a run result for byte comparison.
func resultJSON(t testing.TB, res *machine.Result) []byte {
	t.Helper()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// roundTrip asserts the checkpoint property for one workload under one
// policy/chaos configuration: run(0→T) and run(0→k) + checkpoint +
// restore + run(k→T) produce byte-identical Result JSON for three split
// points k, both for an in-process pause/resume and for a full
// serialize/restore cycle through a fresh machine.
func roundTrip(t *testing.T, name, policy string, chaosSeed int64, level int) {
	t.Helper()
	spec, err := workload.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *workload.Instance {
		inst, err := spec.Build(workload.Params{Threads: 4, Seed: 1, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}

	inst0 := build()
	m0 := newMachine(t, policy, inst0, chaosSeed, level)
	res0, err := m0.Run(inst0.Programs)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	base := resultJSON(t, res0)
	if res0.SimEvents == 0 {
		t.Fatal("run executed zero events")
	}

	for i := uint64(1); i <= 3; i++ {
		k := res0.SimEvents * i / 4
		if k == 0 {
			continue
		}
		inst1 := build()
		m1 := newMachine(t, policy, inst1, chaosSeed, level)
		res, err := m1.RunTo(inst1.Programs, k)
		if err != nil {
			t.Fatalf("split %d: RunTo: %v", k, err)
		}
		if res != nil {
			// The programs completed before k (the tail of SimEvents is
			// drain work, which cannot be paused in). The completed run
			// must still match the uninterrupted one.
			if !bytes.Equal(resultJSON(t, res), base) {
				t.Errorf("split %d: early-completed run diverged from uninterrupted run", k)
			}
			continue
		}
		if !m1.Paused() {
			t.Fatalf("split %d: RunTo returned no result but the run is not paused", k)
		}
		var buf bytes.Buffer
		if err := m1.Checkpoint(&buf); err != nil {
			t.Fatalf("split %d: checkpoint: %v", k, err)
		}
		res1, err := m1.Resume()
		if err != nil {
			t.Fatalf("split %d: resume: %v", k, err)
		}
		if got := resultJSON(t, res1); !bytes.Equal(got, base) {
			t.Errorf("split %d: paused-and-resumed run diverged from uninterrupted run", k)
		}

		ck, err := machine.Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("split %d: restore: %v", k, err)
		}
		if ck.Event != k {
			t.Errorf("split %d: checkpoint recorded event %d", k, ck.Event)
		}
		inst2 := build()
		m2 := newMachine(t, policy, inst2, chaosSeed, level)
		res2, err := m2.RunFrom(inst2.Programs, ck)
		if err != nil {
			t.Fatalf("split %d: RunFrom: %v", k, err)
		}
		if got := resultJSON(t, res2); !bytes.Equal(got, base) {
			t.Errorf("split %d: restored run diverged from uninterrupted run", k)
		}
		if inst2.Validate != nil {
			if err := inst2.Validate(m2.Sys.Data); err != nil {
				t.Errorf("split %d: restored run functionally invalid: %v", k, err)
			}
		}
	}
}

// TestRoundTripSuite is the acceptance property: every Table III workload
// round-trips through checkpoint/restore at three split points with
// byte-identical results and stats.
func TestRoundTripSuite(t *testing.T) {
	for _, name := range workload.TableIIIOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			roundTrip(t, name, "dynamo-reuse-pn", 0, 0)
		})
	}
}

// TestRoundTripChaos extends the property to chaotic runs: the injector's
// stream positions are part of the checkpointed state, so a restored
// chaotic run must replay the same perturbation schedule bit-exactly.
func TestRoundTripChaos(t *testing.T) {
	for _, tc := range []struct {
		name  string
		seed  int64
		level int
	}{
		{"histogram", 7, 2},
		{"spmv", 42, 3},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			roundTrip(t, tc.name, "dynamo-reuse-pn", tc.seed, tc.level)
		})
	}
}

// TestRoundTripMetricPolicy covers the metric predictor's AMT tables in
// the policy image (the suite test exercises the reuse predictor).
func TestRoundTripMetricPolicy(t *testing.T) {
	roundTrip(t, "histogram", "dynamo-metric", 0, 0)
}

// TestRunFromWrongIdentity asserts a checkpoint captured under one run
// identity cannot restore a different run.
func TestRunFromWrongIdentity(t *testing.T) {
	spec, err := workload.Get("histogram")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := spec.Build(workload.Params{Threads: 4, Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	m := newMachine(t, "all-near", inst, 0, 0)
	m.Cfg.CkptIdentity = "run-a"
	res, err := m.RunTo(inst.Programs, 5000)
	if err != nil || res != nil {
		t.Fatalf("RunTo = %v, %v; want a paused run", res, err)
	}
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(); err != nil {
		t.Fatal(err)
	}
	ck, err := machine.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := spec.Build(workload.Params{Threads: 4, Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMachine(t, "all-near", inst2, 0, 0)
	m2.Cfg.CkptIdentity = "run-b"
	if _, err := m2.RunFrom(inst2.Programs, ck); !isIncompatible(err) {
		t.Fatalf("RunFrom under a different identity = %v, want ErrIncompatible", err)
	}
}

func isIncompatible(err error) bool {
	return errors.Is(err, checkpoint.ErrIncompatible)
}
