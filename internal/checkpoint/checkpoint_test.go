package checkpoint_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"dynamo/internal/checkpoint"
	"dynamo/internal/machine"
	"dynamo/internal/workload"
)

// capture runs histogram to a pause point and returns the serialized
// checkpoint plus a builder for fresh instances of the same workload.
func capture(t *testing.T) ([]byte, func() *workload.Instance) {
	t.Helper()
	spec, err := workload.Get("histogram")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *workload.Instance {
		inst, err := spec.Build(workload.Params{Threads: 4, Seed: 1, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	inst := build()
	m := newMachine(t, "all-near", inst, 0, 0)
	res, err := m.RunTo(inst.Programs, 5000)
	if err != nil || res != nil {
		t.Fatalf("RunTo = %v, %v; want a paused run", res, err)
	}
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resume(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), build
}

func TestReadValid(t *testing.T) {
	raw, _ := capture(t)
	ck, err := checkpoint.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Schema != checkpoint.SchemaVersion || ck.Event != 5000 || ck.StateDigest == "" {
		t.Errorf("checkpoint = schema %d event %d digest %q", ck.Schema, ck.Event, ck.StateDigest)
	}
}

// TestReadSchemaMismatch asserts schema drift wins over the (now stale)
// digest: the reader must not interpret a future layout's state image.
func TestReadSchemaMismatch(t *testing.T) {
	raw, _ := capture(t)
	var ck checkpoint.Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		t.Fatal(err)
	}
	ck.Schema = checkpoint.SchemaVersion + 1
	tampered, err := json.Marshal(&ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Read(bytes.NewReader(tampered)); !errors.Is(err, checkpoint.ErrIncompatible) {
		t.Fatalf("Read = %v, want ErrIncompatible", err)
	}
}

func TestReadTruncated(t *testing.T) {
	raw, _ := capture(t)
	for _, n := range []int{0, 1, len(raw) / 2, len(raw) - 2} {
		if _, err := checkpoint.Read(bytes.NewReader(raw[:n])); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("Read(%d of %d bytes) = %v, want ErrCorrupt", n, len(raw), err)
		}
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := checkpoint.Read(bytes.NewReader([]byte("not a checkpoint"))); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("Read = %v, want ErrCorrupt", err)
	}
}

// TestReadTamperedState flips state under an unchanged digest: the
// digest verification must reject it as corrupt.
func TestReadTamperedState(t *testing.T) {
	raw, _ := capture(t)
	var ck checkpoint.Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		t.Fatal(err)
	}
	ck.State.Engine.Now++
	tampered, err := json.Marshal(&ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Read(bytes.NewReader(tampered)); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("Read = %v, want ErrCorrupt", err)
	}
}

// TestRunFromDiverged re-digests a tampered state so the file reads as
// structurally valid, then asserts the replay cross-validation catches
// that the configuration does not reproduce it.
func TestRunFromDiverged(t *testing.T) {
	raw, build := capture(t)
	var ck checkpoint.Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		t.Fatal(err)
	}
	ck.State.Engine.Now += 17
	digest, err := checkpoint.DigestState(&ck.State)
	if err != nil {
		t.Fatal(err)
	}
	ck.StateDigest = digest
	tampered, err := json.Marshal(&ck)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := checkpoint.Read(bytes.NewReader(tampered))
	if err != nil {
		t.Fatalf("tampered-but-redigested checkpoint failed structural validation: %v", err)
	}
	inst := build()
	m := newMachine(t, "all-near", inst, 0, 0)
	if _, err := m.RunFrom(inst.Programs, parsed); !errors.Is(err, checkpoint.ErrDiverged) {
		t.Fatalf("RunFrom = %v, want ErrDiverged", err)
	}
}

// TestRunFromWrongConfig restores a checkpoint on a machine whose timing
// configuration differs: the deterministic replay lands in a different
// state and must report divergence, not garbage.
func TestRunFromWrongConfig(t *testing.T) {
	raw, build := capture(t)
	ck, err := checkpoint.Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	inst := build()
	cfg := smallCfg("all-near")
	cfg.Chi.L1Latency++
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	if _, err := m.RunFrom(inst.Programs, ck); !errors.Is(err, checkpoint.ErrDiverged) {
		t.Fatalf("RunFrom under a different configuration = %v, want ErrDiverged", err)
	}
}
