package workload

import (
	"fmt"
	"math/rand"

	"dynamo/internal/cpu"
	"dynamo/internal/memory"
)

// splashShape parameterizes the Splash-3-style scientific applications:
// compute phases over private data punctuated by Pthread-mutex-protected
// updates to shared cells. The shapes differ in lock count (the AMO
// footprint of Table III), contention skew, compute density (the APKI
// class) and private-data locality.
type splashShape struct {
	locks          int     // mutex count; each protects one data cell line
	iters          int     // iterations per thread
	compute        int     // local-work instructions per iteration
	privateWords   int     // per-thread private working set (reused)
	privateTouches int     // private accesses per iteration
	critWords      int     // shared words updated per critical section
	hotFrac        float64 // probability of picking lock 0 (contention)
	casAccums      int     // extra direct-CAS accumulators (Water)
}

// buildSplash creates an instance from a shape. Validation counts every
// mutex-protected increment and every CAS-retry increment: a lost update
// or broken mutual exclusion fails the run.
func buildSplash(shape splashShape, p Params) (*Instance, error) {
	alloc := NewAlloc()
	locks := NewNamedMutexes(alloc, "cell-locks", shape.locks)
	// One data line per lock; critical sections update words within it.
	dataBase := alloc.NamedLines("cells", shape.locks)
	cell := func(lock, w int) memory.Addr {
		return dataBase + memory.Addr(lock)*memory.LineSize + memory.Addr(w)*8
	}
	var accums memory.Addr
	if shape.casAccums > 0 {
		accums = alloc.NamedWords("cas-accums", shape.casAccums)
	}
	privBase := make([]memory.Addr, p.Threads)
	for i := range privBase {
		privBase[i] = alloc.Words(shape.privateWords)
	}
	inst := &Instance{
		AMOFootprintBytes: int64(shape.locks)*memory.LineSize + int64(shape.casAccums)*8,
		Sites:             alloc.Sites(),
	}
	iters := p.scaled(shape.iters)
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			rng := rand.New(rand.NewSource(p.Seed ^ int64(tid+1)*0x7f4a7c15))
			priv := privBase[tid]
			for it := 0; it < iters; it++ {
				t.Compute(shape.compute)
				// Private phase: strided walk with reuse of a hot window.
				for j := 0; j < shape.privateTouches; j++ {
					w := (it*shape.privateTouches + j) % shape.privateWords
					v := t.Load(word(priv, w))
					t.Store(word(priv, w), v+1)
				}
				// Synchronization phase: mutex-protected shared update.
				li := 0
				if rng.Float64() >= shape.hotFrac {
					li = rng.Intn(shape.locks)
				}
				locks[li].Lock(t)
				for w := 0; w < shape.critWords; w++ {
					v := t.Load(cell(li, w))
					t.Store(cell(li, w), v+1)
				}
				locks[li].Unlock(t)
				// Direct atomic updates (Water's cas accumulators).
				if shape.casAccums > 0 {
					a := word(accums, rng.Intn(shape.casAccums))
					for {
						old := t.Load(a)
						if t.CAS(a, old, old+1) == old {
							break
						}
						t.Compute(6)
					}
				}
			}
			t.Fence()
		})
	}
	wantCrit := uint64(p.Threads) * uint64(iters) * uint64(shape.critWords)
	wantCAS := uint64(0)
	if shape.casAccums > 0 {
		wantCAS = uint64(p.Threads) * uint64(iters)
	}
	inst.Validate = func(data *memory.Store) error {
		var crit uint64
		for l := 0; l < shape.locks; l++ {
			for w := 0; w < shape.critWords; w++ {
				crit += data.Load(cell(l, w))
			}
		}
		if crit != wantCrit {
			return fmt.Errorf("splash: %d critical-section updates, want %d (mutual exclusion broken)", crit, wantCrit)
		}
		var cas uint64
		for a := 0; a < shape.casAccums; a++ {
			cas += data.Load(word(accums, a))
		}
		if cas != wantCAS {
			return fmt.Errorf("splash: %d CAS updates, want %d", cas, wantCAS)
		}
		return nil
	}
	return inst, nil
}

// buildRadiosity models Radiosity's defining structure (Section VI-B): a
// shared task queue behind a single highly contended mutex, read before
// acquisition, with moderate per-task work — the ping-pong pattern where
// far AMOs win.
func buildRadiosity(p Params) (*Instance, error) {
	alloc := NewAlloc()
	queueLock := NewNamedMutex(alloc, "queue-lock")
	head := alloc.NamedLines("queue-head", 1)              // queue head index
	processed := alloc.NamedLines("processed", 1)          // completed-task count
	results := alloc.NamedLines("results", p.scaled(2600)) // per-task result cells (163 KB-class footprint)
	nResults := p.scaled(2600)
	totalTasks := p.Threads * p.scaled(40)
	inst := &Instance{
		AMOFootprintBytes: int64(nResults)*memory.LineSize + 2*memory.LineSize,
		Sites:             alloc.Sites(),
	}
	for i := 0; i < p.Threads; i++ {
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			for {
				// Dequeue under the hot lock.
				queueLock.Lock(t)
				task := t.Load(head)
				if task < uint64(totalTasks) {
					t.Store(head, task+1)
				}
				queueLock.Unlock(t)
				if task >= uint64(totalTasks) {
					break
				}
				// Process: local work plus a scatter into the result grid.
				t.Compute(1400)
				r := results + memory.Addr(int(task)%nResults)*memory.LineSize
				t.AMOStore(memory.AMOAdd, r, 1)
				t.AMOStore(memory.AMOAdd, processed, 1)
			}
			t.Fence()
		})
	}
	inst.Validate = func(data *memory.Store) error {
		if got := data.Load(processed); got != uint64(totalTasks) {
			return fmt.Errorf("radiosity: processed %d tasks, want %d", got, totalTasks)
		}
		var sum uint64
		for i := 0; i < nResults; i++ {
			sum += data.Load(results + memory.Addr(i)*memory.LineSize)
		}
		if sum != uint64(totalTasks) {
			return fmt.Errorf("radiosity: %d result updates, want %d", sum, totalTasks)
		}
		return nil
	}
	return inst, nil
}

func registerSplash(name, code string, class Class, sync string, shape splashShape) {
	spec := &Spec{
		Name:  name,
		Code:  code,
		Suite: "Splash-3",
		Sync:  sync,
		Class: class,
	}
	spec.Build = func(p Params) (*Instance, error) {
		return buildChecked(spec, p, func(p Params) (*Instance, error) {
			s := shape
			s.locks = p.scaled(shape.locks)
			return buildSplash(s, p)
		})
	}
	register(spec)
}

func init() {
	registerSplash("barnes", "BAR", Low, "POSIX mutex", splashShape{
		locks: 320, iters: 60, compute: 1100, privateWords: 512,
		privateTouches: 10, critWords: 2, hotFrac: 0.05,
	})
	registerSplash("fmm", "FMM", Low, "POSIX mutex", splashShape{
		locks: 384, iters: 60, compute: 1200, privateWords: 640,
		privateTouches: 10, critWords: 2, hotFrac: 0.04,
	})
	registerSplash("ocean", "OCE", Low, "POSIX mutex", splashShape{
		locks: 64, iters: 70, compute: 1800, privateWords: 2048,
		privateTouches: 14, critWords: 1, hotFrac: 0.10,
	})
	registerSplash("raytrace", "RAY", Low, "POSIX mutex", splashShape{
		locks: 128, iters: 65, compute: 2800, privateWords: 384,
		privateTouches: 12, critWords: 1, hotFrac: 0.05,
	})
	registerSplash("volrend", "VOL", Low, "POSIX mutex", splashShape{
		locks: 96, iters: 65, compute: 4200, privateWords: 448,
		privateTouches: 10, critWords: 1, hotFrac: 0.08,
	})
	registerSplash("water", "WAT", Low, "POSIX mutex, cas", splashShape{
		locks: 256, iters: 55, compute: 1700, privateWords: 512,
		privateTouches: 10, critWords: 1, hotFrac: 0.05, casAccums: 768,
	})
	radiosity := &Spec{
		Name:  "radiosity",
		Code:  "RAD",
		Suite: "Splash-3",
		Sync:  "POSIX mutex",
		Class: Medium,
	}
	radiosity.Build = func(p Params) (*Instance, error) {
		return buildChecked(radiosity, p, buildRadiosity)
	}
	register(radiosity)
}
