package workload

import (
	"fmt"

	"dynamo/internal/cpu"
	"dynamo/internal/graph"
	"dynamo/internal/memory"
)

// buildBC is the GAP betweenness-centrality analog: a forward BFS pass
// followed by a dependency-accumulation pass whose shared updates are
// OpenMP-style atomic adds. AMO density is low — most work is traversal.
func buildBC(p Params) (*Instance, error) {
	g := graph.Kronecker(10, p.scaled(4), p.Seed+8)
	alloc := NewAlloc()
	sg := layoutGraph(alloc, g)
	dist := alloc.NamedWords("dist", g.N)
	sigma := alloc.NamedWords("sigma", g.N) // shortest-path counts
	bufs := [2]memory.Addr{alloc.NamedWords("frontier-a", g.N), alloc.NamedWords("frontier-b", g.N)}
	sizes := [2]memory.Addr{alloc.NamedLines("frontier-size-a", 1), alloc.NamedLines("frontier-size-b", 1)}
	centrality := alloc.NamedWords("centrality", g.N)
	bar := NewBarrier(alloc, p.Threads)
	const src = 0
	inst := &Instance{AMOFootprintBytes: int64(g.N) * 16, Sites: alloc.Sites()}
	inst.Setup = func(data *memory.Store) {
		sg.setup(data)
		for v := 0; v < g.N; v++ {
			data.StoreWord(word(dist, v), inf)
		}
		data.StoreWord(word(dist, src), 0)
		data.StoreWord(word(sigma, src), 1)
		data.StoreWord(word(bufs[0], 0), src)
		data.StoreWord(sizes[0], 1)
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			sense := uint64(0)
			par := 0
			// Phase 1: BFS with sigma accumulation.
			for {
				n := int(t.Load(sizes[par]))
				if n == 0 {
					break
				}
				cur, next := bufs[par], bufs[par^1]
				nextSize := sizes[par^1]
				lo, hi := chunk(n, p.Threads, tid)
				for i := lo; i < hi; i++ {
					u := int(t.Load(word(cur, i)))
					du := t.Load(word(dist, u))
					su := t.Load(word(sigma, u))
					elo, ehi := sg.adjacency(t, u)
					for e := elo; e < ehi; e++ {
						v := sg.edgeAt(t, e)
						t.Compute(700)
						old := t.AMO(memory.AMOUMin, word(dist, v), du+1)
						if old == inf {
							idx := t.AMO(memory.AMOAdd, nextSize, 1)
							t.Store(word(next, int(idx)), uint64(v))
						}
						// Count shortest paths through this edge.
						if old == inf || old == du+1 {
							t.AMOStore(memory.AMOAdd, word(sigma, v), su)
						}
					}
				}
				t.Fence()
				bar.Wait(t, &sense)
				if tid == 0 {
					t.Store(sizes[par], 0)
					t.Fence()
				}
				bar.Wait(t, &sense)
				par ^= 1
			}
			// Phase 2: accumulate centrality (atomic adds over all nodes).
			lo, hi := chunk(g.N, p.Threads, tid)
			for v := lo; v < hi; v++ {
				t.Compute(800)
				s := t.Load(word(sigma, v))
				if s != 0 {
					t.AMOStore(memory.AMOAdd, word(centrality, v%64), s)
				}
			}
			t.Fence()
		})
	}
	// Reference: serial BFS-sigma with identical arithmetic.
	refDist := graph.BFS(g, src)
	refSigma := make([]uint64, g.N)
	refSigma[src] = 1
	// Process nodes in BFS level order for deterministic sigma.
	order := make([]int, 0, g.N)
	maxLevel := int32(0)
	for _, d := range refDist {
		if d > maxLevel {
			maxLevel = d
		}
	}
	for l := int32(0); l <= maxLevel; l++ {
		for v := 0; v < g.N; v++ {
			if refDist[v] == l {
				order = append(order, v)
			}
		}
	}
	for _, u := range order {
		es, _ := g.Neighbors(u)
		for _, v := range es {
			if refDist[v] == refDist[u]+1 {
				refSigma[v] += refSigma[u]
			}
		}
	}
	var refCentrality [64]uint64
	for v := 0; v < g.N; v++ {
		refCentrality[v%64] += refSigma[v]
	}
	inst.Validate = func(data *memory.Store) error {
		for v := 0; v < g.N; v++ {
			if got := data.Load(word(sigma, v)); got != refSigma[v] {
				return fmt.Errorf("bc: sigma[%d] = %d, want %d", v, got, refSigma[v])
			}
		}
		for i := 0; i < 64; i++ {
			if got := data.Load(word(centrality, i)); got != refCentrality[i] {
				return fmt.Errorf("bc: centrality[%d] = %d, want %d", i, got, refCentrality[i])
			}
		}
		return nil
	}
	return inst, nil
}

// buildTC is the GAP triangle-counting analog: sorted-adjacency
// intersection with per-thread counters flushed to a global total — the
// OpenMP-reduction pattern with almost no AMOs (Table III: 10 KB).
func buildTC(p Params) (*Instance, error) {
	g := graph.Kronecker(8, p.scaled(6), p.Seed+9)
	alloc := NewAlloc()
	sg := layoutGraph(alloc, g)
	total := alloc.NamedLines("total", 1)
	inst := &Instance{AMOFootprintBytes: memory.LineSize, Sites: alloc.Sites()}
	inst.Setup = func(data *memory.Store) { sg.setup(data) }
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			lo, hi := chunk(g.N, p.Threads, tid)
			local := uint64(0)
			for u := lo; u < hi; u++ {
				ulo, uhi := sg.adjacency(t, u)
				for e := ulo; e < uhi; e++ {
					v := sg.edgeAt(t, e)
					if v <= u {
						continue
					}
					vlo, vhi := sg.adjacency(t, v)
					// Merge-intersect sorted adjacency lists.
					i, j := ulo, vlo
					for i < uhi && j < vhi {
						a := sg.edgeAt(t, i)
						b := sg.edgeAt(t, j)
						t.Compute(2)
						switch {
						case a == b:
							if a > v {
								local++
							}
							i++
							j++
						case a < b:
							i++
						default:
							j++
						}
					}
				}
			}
			// OpenMP-style reduction: one atomic add per thread.
			t.AMOStore(memory.AMOAdd, total, local)
			t.Fence()
		})
	}
	want := graph.Triangles(g)
	inst.Validate = func(data *memory.Store) error {
		if got := data.Load(total); got != want {
			return fmt.Errorf("tc: %d triangles, want %d", got, want)
		}
		return nil
	}
	return inst, nil
}

func init() {
	bc := &Spec{Name: "bc", Code: "BC", Suite: "GAP", Sync: "OpenMP", Class: Low}
	bc.Build = func(p Params) (*Instance, error) { return buildChecked(bc, p, buildBC) }
	register(bc)
	tc := &Spec{Name: "tc", Code: "TC", Suite: "GAP", Sync: "OpenMP", Class: Low}
	tc.Build = func(p Params) (*Instance, error) { return buildChecked(tc, p, buildTC) }
	register(tc)
}
