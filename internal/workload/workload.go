// Package workload implements the 21 benchmark analogs of Table III plus
// the shared-counter microbenchmark of Fig. 1. Each workload is a set of
// thread programs that run real algorithms against simulated memory — the
// sorted arrays, histograms and BFS distances they produce are validated
// after every run — using the same synchronization primitives as the
// paper's benchmarks: an emulated POSIX mutex with the exact cache-block
// layout of Fig. 4, test-and-test-and-set spinlocks, sense-reversing
// barriers, and direct atomic updates (ldadd/stadd/ldmin/stmin/cas).
//
// The inputs are synthetic, scaled-down stand-ins for the paper's data sets
// (DIMACS road graphs, Kronecker graphs, images, sparse matrices) that
// preserve each benchmark's synchronization pattern, AMO footprint class
// and locality class.
package workload

import (
	"errors"
	"fmt"
	"sort"

	"dynamo/internal/cpu"
	"dynamo/internal/memory"
	"dynamo/internal/obs"
)

// Class is the APKI intensity set of Fig. 6.
type Class uint8

const (
	// Low is 0-2 AMOs per kilo-instruction.
	Low Class = iota
	// Medium is 2-8 APKI.
	Medium
	// High is >8 APKI.
	High
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Low:
		return "L"
	case Medium:
		return "M"
	case High:
		return "H"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Params selects the workload size and input.
type Params struct {
	// Threads is the number of worker threads (== cores used).
	Threads int
	// Seed drives every pseudo-random choice; runs are reproducible.
	Seed int64
	// Scale multiplies the default problem size; 0 means 1.0. Benchmarks
	// use small scales for quick turnaround.
	Scale float64
	// Input selects a named input variant; empty selects the default.
	Input string
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// scaled returns max(1, round(n*scale)).
func (p Params) scaled(n int) int {
	v := int(float64(n)*p.scale() + 0.5)
	if v < 1 {
		return 1
	}
	return v
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Threads <= 0 || p.Threads > 64 {
		return fmt.Errorf("workload: %d threads", p.Threads)
	}
	return nil
}

// Instance is a built workload: one program per thread plus the functional
// validator run against the simulated memory afterwards.
type Instance struct {
	Programs []cpu.Program
	// Setup pre-populates the functional memory image (graph structure,
	// initial distances, input data) before the run, standing in for the
	// initialization phases the paper excludes from its region of
	// interest. May be nil.
	Setup func(data *memory.Store)
	// Validate checks the computation's result; it must fail if any atomic
	// update was lost or any synchronization failed.
	Validate func(data *memory.Store) error
	// AMOFootprintBytes is the size of AMO-touched data (Table III).
	AMOFootprintBytes int64
	// Sites annotates the workload's memory regions (locks, shared arrays)
	// for contention-profile attribution; the facade registers them on the
	// run's observability bus. Populated from the instance allocator's
	// tagged reservations.
	Sites []obs.Site
}

// Spec describes one registered workload.
type Spec struct {
	// Name is the registry key ("barnes", "histogram", ...).
	Name string
	// Code is the Table III acronym (BAR, HIST, ...).
	Code string
	// Suite is the originating benchmark suite.
	Suite string
	// Sync lists the synchronization primitives employing AMOs (Table III).
	Sync string
	// Class is the expected APKI intensity set.
	Class Class
	// Inputs lists accepted Input values; the first is the default.
	Inputs []string
	// Build constructs the instance.
	Build func(Params) (*Instance, error)
}

// DefaultInput returns the first input name or "".
func (s *Spec) DefaultInput() string {
	if len(s.Inputs) == 0 {
		return ""
	}
	return s.Inputs[0]
}

var registry = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workload: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

// ErrUnknown reports a workload name absent from the registry. It is
// re-exported at the package dynamo surface as ErrUnknownWorkload; match
// with errors.Is.
var ErrUnknown = errors.New("unknown workload")

// Get returns the named workload.
func Get(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: %w %q", ErrUnknown, name)
	}
	return s, nil
}

// Names returns all registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableIIIOrder lists the 21 benchmarks in the paper's Table III order.
func TableIIIOrder() []string {
	return []string{
		"barnes", "fmm", "ocean", "radiosity", "raytrace", "volrend", "water",
		"bfs", "cc", "cluster", "gmetis", "kcore", "pagerank", "spt", "sssp",
		"bc", "tc",
		"fluidanimate", "histogram", "radixsort", "spmv",
	}
}

// All returns the Table III workloads in paper order.
func All() []*Spec {
	specs := make([]*Spec, 0, len(registry))
	for _, n := range TableIIIOrder() {
		s, err := Get(n)
		if err != nil {
			panic(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// build validates params and input, then calls fn.
func buildChecked(s *Spec, p Params, fn func(Params) (*Instance, error)) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Input != "" {
		ok := false
		for _, in := range s.Inputs {
			if in == p.Input {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("workload: %s has no input %q (have %v)", s.Name, p.Input, s.Inputs)
		}
	}
	return fn(p)
}

// Alloc is a bump allocator for the simulated address space. Each instance
// gets its own; addresses start above 1 MiB to stay clear of the zero page.
// Named reservations double as obs.Site annotations so contention profiles
// can attribute hot cache lines back to workload structures.
type Alloc struct {
	next  memory.Addr
	sites []obs.Site
}

// NewAlloc returns a fresh allocator.
func NewAlloc() *Alloc { return &Alloc{next: 1 << 20} }

// Words reserves n consecutive 64-bit words and returns the base address.
func (a *Alloc) Words(n int) memory.Addr {
	base := a.next
	a.next += memory.Addr(n) * 8
	return base
}

// Lines reserves n cache lines, line-aligned, and returns the base.
func (a *Alloc) Lines(n int) memory.Addr {
	a.next = (a.next + memory.LineSize - 1) &^ (memory.LineSize - 1)
	base := a.next
	a.next += memory.Addr(n) * memory.LineSize
	return base
}

// Tag records [base, base+bytes) as the named site for profile attribution.
func (a *Alloc) Tag(name string, base memory.Addr, bytes int64) {
	if bytes > 0 {
		a.sites = append(a.sites, obs.Site{Name: name, Base: base, Bytes: bytes})
	}
}

// NamedWords reserves n words and tags the region.
func (a *Alloc) NamedWords(name string, n int) memory.Addr {
	base := a.Words(n)
	a.Tag(name, base, int64(n)*8)
	return base
}

// NamedLines reserves n lines and tags the region.
func (a *Alloc) NamedLines(name string, n int) memory.Addr {
	base := a.Lines(n)
	a.Tag(name, base, int64(n)*memory.LineSize)
	return base
}

// Sites returns the tagged reservations, in allocation order.
func (a *Alloc) Sites() []obs.Site { return a.sites }

// Used returns the total bytes reserved.
func (a *Alloc) Used() int64 { return int64(a.next - (1 << 20)) }

// word indexes a words array.
func word(base memory.Addr, i int) memory.Addr { return base + memory.Addr(i)*8 }

// chunk computes thread t's half-open [lo,hi) share of n items split over
// p threads.
func chunk(n, p, t int) (lo, hi int) {
	per := (n + p - 1) / p
	lo = t * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
