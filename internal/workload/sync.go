package workload

import (
	"dynamo/internal/cpu"
	"dynamo/internal/memory"
)

// Mutex emulates the Pthread mutex of Fig. 4: all four data members share
// one cache block, and the acquire/release sequences follow the figure
// step by step (read Kind, CAS Lock, write Owner and NUsers; read Kind,
// write NUsers and Owner, SWAP Lock). This layout is what makes mutexes
// favor near AMOs (Section III-B3).
type Mutex struct {
	base memory.Addr
}

// Field offsets within the mutex cache block.
const (
	mtxLock   = 0
	mtxOwner  = 8
	mtxKind   = 16
	mtxNUsers = 24
)

// NewMutex allocates a mutex on its own cache line.
func NewMutex(a *Alloc) Mutex { return NewNamedMutex(a, "mutex") }

// NewNamedMutex allocates a mutex tagged with a site name for contention
// profiles.
func NewNamedMutex(a *Alloc, name string) Mutex {
	return Mutex{base: a.NamedLines(name, 1)}
}

// NewMutexes allocates n mutexes on consecutive lines.
func NewMutexes(a *Alloc, n int) []Mutex { return NewNamedMutexes(a, "mutexes", n) }

// NewNamedMutexes allocates n mutexes on consecutive lines, tagging the
// whole array as one named site.
func NewNamedMutexes(a *Alloc, name string, n int) []Mutex {
	base := a.NamedLines(name, n)
	ms := make([]Mutex, n)
	for i := range ms {
		ms[i] = Mutex{base: base + memory.Addr(i)*memory.LineSize}
	}
	return ms
}

// Lock acquires the mutex, spinning with reads between CAS attempts (the
// read-before-AMO pattern the paper observes in Radiosity).
func (m Mutex) Lock(t *cpu.Thread) {
	t.Load(m.base + mtxKind)
	for t.CAS(m.base+mtxLock, 0, uint64(t.ID())+1) != 0 {
		for t.Load(m.base+mtxLock) != 0 {
			t.Pause(12)
		}
	}
	t.Load(m.base + mtxOwner)
	t.Store(m.base+mtxOwner, uint64(t.ID())+1)
	t.Store(m.base+mtxNUsers, 1)
}

// Unlock releases the mutex with a SWAP AtomicStore, after the bookkeeping
// writes of Fig. 4 and a release fence.
func (m Mutex) Unlock(t *cpu.Thread) {
	t.Load(m.base + mtxKind)
	t.Store(m.base+mtxNUsers, 0)
	t.Store(m.base+mtxOwner, 0)
	t.Fence()
	t.AMOStore(memory.AMOSwap, m.base+mtxLock, 0)
}

// SpinLock is the Galois-style test-and-test-and-set lock: a single lock
// word alone on its cache line, acquired with CAS and released with a SWAP
// AtomicStore.
type SpinLock struct {
	addr memory.Addr
}

// NewSpinLock allocates a spinlock on its own line.
func NewSpinLock(a *Alloc) SpinLock { return NewNamedSpinLock(a, "spinlock") }

// NewNamedSpinLock allocates a spinlock tagged with a site name.
func NewNamedSpinLock(a *Alloc, name string) SpinLock {
	return SpinLock{addr: a.NamedLines(name, 1)}
}

// NewSpinLocks allocates n spinlocks on consecutive lines.
func NewSpinLocks(a *Alloc, n int) []SpinLock {
	return NewNamedSpinLocks(a, "spinlocks", n)
}

// NewNamedSpinLocks allocates n spinlocks, tagging the array as one site.
func NewNamedSpinLocks(a *Alloc, name string, n int) []SpinLock {
	base := a.NamedLines(name, n)
	ls := make([]SpinLock, n)
	for i := range ls {
		ls[i] = SpinLock{addr: base + memory.Addr(i)*memory.LineSize}
	}
	return ls
}

// Lock acquires the spinlock.
func (l SpinLock) Lock(t *cpu.Thread) {
	for t.CAS(l.addr, 0, 1) != 0 {
		for t.Load(l.addr) != 0 {
			t.Pause(8)
		}
	}
}

// Unlock releases the spinlock.
func (l SpinLock) Unlock(t *cpu.Thread) {
	t.Fence()
	t.AMOStore(memory.AMOSwap, l.addr, 0)
}

// Barrier is a sense-reversing centralized barrier built on a fetch-add
// counter and a sense flag, the construction behind POSIX barriers
// (Table III lists "POSIX barrier, stadd" for Radix Sort).
type Barrier struct {
	count memory.Addr
	sense memory.Addr
	n     uint64
}

// NewBarrier allocates a barrier for n threads; the counter and the sense
// word live on separate lines to avoid false sharing between the adder and
// the spinners.
func NewBarrier(a *Alloc, n int) *Barrier {
	return &Barrier{
		count: a.NamedLines("barrier.count", 1),
		sense: a.NamedLines("barrier.sense", 1),
		n:     uint64(n),
	}
}

// Wait blocks thread t until all n threads arrive. sense is the thread's
// local sense word and must start at 0.
func (b *Barrier) Wait(t *cpu.Thread, sense *uint64) {
	*sense ^= 1
	if t.AMO(memory.AMOAdd, b.count, 1) == b.n-1 {
		t.Store(b.count, 0)
		t.StoreRelease(b.sense, *sense)
		return
	}
	for t.Load(b.sense) != *sense {
		t.Pause(40)
	}
}

// FarMutex is the far-AMO-friendly mutex layout Section III-B3 calls for
// as future work: the lock word lives alone on its own cache line, and the
// Owner/NUsers/Kind metadata lives on a second line. Far CAS/SWAP on the
// lock no longer invalidate the metadata the acquire and release paths
// read and write, so far execution of the lock operations becomes
// competitive with near execution even under the POSIX access sequence.
type FarMutex struct {
	lock memory.Addr
	meta memory.Addr // Kind at +0, Owner at +8, NUsers at +16
}

// NewFarMutex allocates a far-friendly mutex (two cache lines).
func NewFarMutex(a *Alloc) FarMutex {
	return FarMutex{
		lock: a.NamedLines("far-mutex.lock", 1),
		meta: a.NamedLines("far-mutex.meta", 1),
	}
}

// NewFarMutexes allocates n far-friendly mutexes.
func NewFarMutexes(a *Alloc, n int) []FarMutex {
	locks := a.NamedLines("far-mutex.locks", n)
	metas := a.NamedLines("far-mutex.metas", n)
	ms := make([]FarMutex, n)
	for i := range ms {
		ms[i] = FarMutex{
			lock: locks + memory.Addr(i)*memory.LineSize,
			meta: metas + memory.Addr(i)*memory.LineSize,
		}
	}
	return ms
}

// Lock acquires the mutex with the same logical sequence as Mutex.Lock,
// but the CAS target shares no line with the metadata.
func (m FarMutex) Lock(t *cpu.Thread) {
	t.Load(m.meta) // Kind
	for t.CAS(m.lock, 0, uint64(t.ID())+1) != 0 {
		for t.Load(m.lock) != 0 {
			t.Pause(12)
		}
	}
	t.Load(m.meta + 8)
	t.Store(m.meta+8, uint64(t.ID())+1) // Owner
	t.Store(m.meta+16, 1)               // NUsers
}

// Unlock releases the mutex.
func (m FarMutex) Unlock(t *cpu.Thread) {
	t.Load(m.meta) // Kind
	t.Store(m.meta+16, 0)
	t.Store(m.meta+8, 0)
	t.Fence()
	t.AMOStore(memory.AMOSwap, m.lock, 0)
}
