package workload

import (
	"testing"

	"dynamo/internal/cpu"
	"dynamo/internal/machine"
	"dynamo/internal/sim"
)

// lockedCounterRun exercises a mutex implementation: every thread performs
// non-atomic read-modify-writes on a shared cell under the lock. Mutual
// exclusion failures lose increments and fail the run.
func lockedCounterRun(t *testing.T, policy string, lockKind string, iters, gap int) sim.Tick {
	t.Helper()
	m := testMachine(t, policy)
	alloc := NewAlloc()
	var lock, unlock func(*cpu.Thread)
	switch lockKind {
	case "pthread":
		mu := NewMutex(alloc)
		lock, unlock = mu.Lock, mu.Unlock
	case "far":
		mu := NewFarMutex(alloc)
		lock, unlock = mu.Lock, mu.Unlock
	case "spin":
		mu := NewSpinLock(alloc)
		lock, unlock = mu.Lock, mu.Unlock
	default:
		t.Fatalf("unknown lock kind %q", lockKind)
	}
	cell := alloc.Lines(1)
	progs := make([]cpu.Program, 4)
	for i := range progs {
		progs[i] = func(th *cpu.Thread) {
			for k := 0; k < iters; k++ {
				lock(th)
				v := th.Load(cell)
				th.Compute(8)
				th.Store(cell, v+1)
				unlock(th)
				th.Compute(gap)
			}
			th.Fence()
		}
	}
	res, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Sys.Data.Load(cell); got != uint64(4*iters) {
		t.Fatalf("%s/%s: counter = %d, want %d (mutual exclusion broken)",
			lockKind, policy, got, 4*iters)
	}
	return res.Cycles
}

func TestMutexKindsExcludeUnderAllPolicies(t *testing.T) {
	for _, kind := range []string{"pthread", "far", "spin"} {
		for _, policy := range []string{"all-near", "unique-near", "dynamo-reuse-pn"} {
			kind, policy := kind, policy
			t.Run(kind+"/"+policy, func(t *testing.T) {
				t.Parallel()
				lockedCounterRun(t, policy, kind, 40, 30)
			})
		}
	}
}

// TestFarMutexHelpsFarPolicy reproduces the Section III-B3 prediction: the
// standard Pthread layout penalizes far AMO execution because the lock
// CAS/SWAP invalidate the metadata accesses on the same line; the split
// layout removes that penalty.
func TestFarMutexHelpsFarPolicy(t *testing.T) {
	// Low contention (long gaps) isolates the per-acquire line traffic
	// the split layout is designed to remove.
	pthreadFar := lockedCounterRun(t, "unique-near", "pthread", 60, 800)
	splitFar := lockedCounterRun(t, "unique-near", "far", 60, 800)
	if splitFar >= pthreadFar {
		t.Errorf("far-friendly layout (%d cycles) not faster than pthread layout (%d) under a far policy",
			splitFar, pthreadFar)
	}
}

func TestBarrierManyRounds(t *testing.T) {
	m := testMachine(t, "all-near")
	alloc := NewAlloc()
	bar := NewBarrier(alloc, 4)
	marks := alloc.Words(4)
	progs := make([]cpu.Program, 4)
	for i := range progs {
		tid := i
		progs[i] = func(th *cpu.Thread) {
			sense := uint64(0)
			for r := 0; r < 100; r++ {
				// Unbalanced work so arrival order varies every round.
				th.Compute((tid*13+r*7)%97 + 1)
				th.Store(word(marks, tid), uint64(r))
				th.Fence()
				bar.Wait(th, &sense)
				// After the barrier, every thread must observe every other
				// thread's mark for this round.
				for o := 0; o < 4; o++ {
					if got := th.Load(word(marks, o)); got != uint64(r) {
						panic("barrier did not synchronize")
					}
				}
				bar.Wait(th, &sense)
			}
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetcherAcceleratesStreams checks the optional stride prefetcher:
// a pure streaming read loop must get faster with prefetching enabled and
// slower again when disabled.
func TestPrefetcherAcceleratesStreams(t *testing.T) {
	run := func(degree int) sim.Tick {
		cfg := machine.DefaultConfig()
		cfg.Policy = "all-near"
		cfg.Chi.Cores = 4
		cfg.Chi.HNSlices = 4
		cfg.Chi.Mesh.Width = 4
		cfg.Chi.Mesh.Height = 4
		cfg.Chi.L1Sets = 32
		cfg.Chi.L2Sets = 128
		cfg.Chi.LLCSets = 512
		cfg.Chi.PrefetchDegree = degree
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		alloc := NewAlloc()
		data := alloc.Words(4096)
		res, err := m.Run([]cpu.Program{func(th *cpu.Thread) {
			var sum uint64
			for i := 0; i < 4096; i += 8 { // one load per line
				sum += th.Load(word(data, i))
			}
			_ = sum
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	off := run(0)
	on := run(8)
	if on >= off {
		t.Fatalf("prefetching did not help: %d cycles with vs %d without", on, off)
	}
	if float64(on) > 0.7*float64(off) {
		t.Errorf("prefetching gain too small: %d vs %d", on, off)
	}
}

// TestPrefetcherDoesNotBreakCorrectness runs a workload with prefetching
// on and validates the functional result.
func TestPrefetcherDoesNotBreakCorrectness(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Policy = "dynamo-reuse-pn"
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 32
	cfg.Chi.L2Sets = 128
	cfg.Chi.LLCSets = 512
	cfg.Chi.PrefetchDegree = 4
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Get("radixsort")
	inst, err := s.Build(Params{Threads: 4, Seed: 5, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	runInstance(t, m, inst)
	for _, rn := range m.Sys.RNs {
		if rn.Stats.Prefetches > 0 {
			return
		}
	}
	t.Fatal("no prefetches issued")
}
