package workload

import (
	"fmt"
	"math/rand"

	"dynamo/internal/cpu"
	"dynamo/internal/memory"
)

// buildFluidanimate is the PARSEC Fluidanimate analog: particles update
// their grid cell's accumulators under fine-grained per-cell mutexes, with
// occasional two-cell interactions taken in lock order. Cell locks are
// revisited by the same thread — the reuse pattern of Fig. 3(b).
func buildFluidanimate(p Params) (*Instance, error) {
	cells := p.scaled(192)
	particles := p.scaled(2600)
	const iters = 2
	alloc := NewAlloc()
	locks := NewNamedMutexes(alloc, "cell-locks", cells)
	cellMass := alloc.NamedLines("cell-mass", cells) // one accumulator line per cell
	bar := NewBarrier(alloc, p.Threads)
	inst := &Instance{AMOFootprintBytes: int64(cells) * 2 * memory.LineSize, Sites: alloc.Sites()}
	rng := rand.New(rand.NewSource(p.Seed + 10))
	// Particles are spatially sorted, so consecutive particles share cells.
	cellOf := make([]int, particles)
	for i := range cellOf {
		cellOf[i] = (i*cells/particles + rng.Intn(2)) % cells
	}
	mass := func(i int) uint64 { return uint64(i%7 + 1) }
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			sense := uint64(0)
			lo, hi := chunk(particles, p.Threads, tid)
			for it := 0; it < iters; it++ {
				for i := lo; i < hi; i++ {
					t.Compute(450)
					c := cellOf[i]
					locks[c].Lock(t)
					addr := cellMass + memory.Addr(c)*memory.LineSize
					v := t.Load(addr)
					t.Store(addr, v+mass(i))
					locks[c].Unlock(t)
					// Every 4th particle interacts with the next cell,
					// taking both locks in index order to avoid deadlock.
					if i%4 == 0 {
						n := (c + 1) % cells
						a, b := c, n
						if b < a {
							a, b = b, a
						}
						locks[a].Lock(t)
						locks[b].Lock(t)
						addrN := cellMass + memory.Addr(n)*memory.LineSize
						vn := t.Load(addrN)
						t.Store(addrN, vn+1)
						locks[b].Unlock(t)
						locks[a].Unlock(t)
					}
				}
				bar.Wait(t, &sense)
			}
			t.Fence()
		})
	}
	var want uint64
	for i := 0; i < particles; i++ {
		want += mass(i) * iters
		if i%4 == 0 {
			want += iters
		}
	}
	inst.Validate = func(data *memory.Store) error {
		var got uint64
		for c := 0; c < cells; c++ {
			got += data.Load(cellMass + memory.Addr(c)*memory.LineSize)
		}
		if got != want {
			return fmt.Errorf("fluidanimate: total mass %d, want %d", got, want)
		}
		return nil
	}
	return inst, nil
}

// histInputs mirrors Fig. 9's image sensitivity through the pixel-value
// distribution. IMG and NASA produce the paper's mixed pattern: a hot set
// of buckets reused constantly plus a long cold tail whose near-AMO fills
// thrash the L1 (far-friendly). BMP24 concentrates on few buckets that fit
// the L1 (near-friendly).
var histInputs = map[string]struct {
	buckets    int
	hotBuckets int
	hotPermil  int // fraction of pixels hitting the hot set, in 1/1000
	pixels     int
	// compute is the per-pixel local work: wide histograms pay an index
	// hash on top of the bucket update; the 256-bin path is a direct
	// index.
	compute int
}{
	"IMG":   {buckets: 1 << 18, hotBuckets: 64, hotPermil: 700, pixels: 64_000, compute: 35},
	"NASA":  {buckets: 1 << 18, hotBuckets: 64, hotPermil: 700, pixels: 64_000, compute: 35},
	"BMP24": {buckets: 256, hotBuckets: 256, hotPermil: 1000, pixels: 64_000, compute: 6},
}

// buildHistogram is the OpenCV color-histogram analog: threads stream
// pixel words and scatter stadd increments into the bucket array.
func buildHistogram(p Params) (*Instance, error) {
	input := p.Input
	if input == "" {
		input = "IMG"
	}
	shape := histInputs[input]
	pixels := p.scaled(shape.pixels)
	const pxPerWord = 4
	words := (pixels + pxPerWord - 1) / pxPerWord
	alloc := NewAlloc()
	image := alloc.NamedWords("image", words)
	buckets := alloc.NamedWords("buckets", shape.buckets)
	inst := &Instance{AMOFootprintBytes: int64(shape.buckets) * 8, Sites: alloc.Sites()}
	rng := rand.New(rand.NewSource(p.Seed + 11))
	// Pixel values. Wide-histogram inputs (IMG/NASA) mix a hot color set
	// with a uniform cold tail. BMP24 models scanline color runs: nearby
	// pixels — which land on the same thread — share a drifting palette
	// window, so each thread's buckets are mostly private (near-friendly).
	bucketOf := func(i int) int {
		if shape.buckets == 256 {
			// One aligned palette octet (one cache line) per image region,
			// so each thread's buckets stay private.
			region := i * 32 / words
			return (region*8 + rng.Intn(8)) % 256
		}
		if rng.Intn(1000) < shape.hotPermil {
			return rng.Intn(shape.hotBuckets)
		}
		return rng.Intn(shape.buckets)
	}
	px := make([]uint64, words)
	for i := range px {
		var w uint64
		for j := 0; j < pxPerWord; j++ {
			w = w<<16 | uint64(bucketOf(i)&0xffff)
		}
		px[i] = w
	}
	inst.Setup = func(data *memory.Store) {
		for i, w := range px {
			data.StoreWord(word(image, i), w)
		}
	}
	// The 16-bit pixel encodes the bucket directly for BMP24-sized
	// histograms; wide histograms spread pixels with a fixed hash so hot
	// pixels still map to the hot-bucket range.
	bucketIdx := func(v int) int {
		if shape.buckets <= 1<<16 {
			return v % shape.buckets
		}
		return (v * (shape.buckets >> 16)) % shape.buckets
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			lo, hi := chunk(words, p.Threads, tid)
			for i := lo; i < hi; i++ {
				w := t.Load(word(image, i))
				for j := 0; j < pxPerWord; j++ {
					t.Compute(shape.compute)
					b := bucketIdx(int(w>>(16*j)) & 0xffff)
					t.AMOStore(memory.AMOAdd, word(buckets, b), 1)
				}
			}
			t.Fence()
		})
	}
	want := uint64(words * pxPerWord)
	inst.Validate = func(data *memory.Store) error {
		var got uint64
		for b := 0; b < shape.buckets; b++ {
			got += data.Load(word(buckets, b))
		}
		if got != want {
			return fmt.Errorf("histogram(%s): %d counts, want %d", input, got, want)
		}
		return nil
	}
	return inst, nil
}

// buildRadixSort is the parallel radix sort analog: a count phase of stadd
// scatters into a packed shared count array, a prefix-sum phase, and a
// scatter phase that claims output slots with ldadd — separated by POSIX
// barriers (Table III: "POSIX barrier, stadd").
func buildRadixSort(p Params) (*Instance, error) {
	n := p.scaled(12_000)
	const radix = 256
	alloc := NewAlloc()
	src := alloc.NamedWords("src", n)
	dst := alloc.NamedWords("dst", n)
	counts := alloc.NamedWords("counts", radix)
	ptrs := alloc.NamedWords("ptrs", radix)
	bar := NewBarrier(alloc, p.Threads)
	inst := &Instance{AMOFootprintBytes: int64(radix)*16 + int64(n)*8, Sites: alloc.Sites()}
	rng := rand.New(rand.NewSource(p.Seed + 12))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(radix))
	}
	inst.Setup = func(data *memory.Store) {
		for i, k := range keys {
			data.StoreWord(word(src, i), k+1) // +1 so zero keys are visible
		}
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			sense := uint64(0)
			lo, hi := chunk(n, p.Threads, tid)
			// Count phase.
			for i := lo; i < hi; i++ {
				k := t.Load(word(src, i)) - 1
				t.Compute(35)
				t.AMOStore(memory.AMOAdd, word(counts, int(k)), 1)
			}
			t.Fence()
			bar.Wait(t, &sense)
			// Prefix-sum phase (thread 0).
			if tid == 0 {
				acc := uint64(0)
				for d := 0; d < radix; d++ {
					c := t.Load(word(counts, d))
					t.Store(word(ptrs, d), acc)
					acc += c
				}
				t.Fence()
			}
			bar.Wait(t, &sense)
			// Scatter phase: claim output slots with ldadd.
			for i := lo; i < hi; i++ {
				k := t.Load(word(src, i)) - 1
				t.Compute(35)
				idx := t.AMO(memory.AMOAdd, word(ptrs, int(k)), 1) // ldadd
				t.Store(word(dst, int(idx)), k+1)
			}
			t.Fence()
			bar.Wait(t, &sense)
		})
	}
	inst.Validate = func(data *memory.Store) error {
		var histo [radix]int
		for _, k := range keys {
			histo[k]++
		}
		pos := 0
		for d := 0; d < radix; d++ {
			for c := 0; c < histo[d]; c++ {
				if got := data.Load(word(dst, pos)); got != uint64(d)+1 {
					return fmt.Errorf("radixsort: dst[%d] = %d, want %d", pos, got, d+1)
				}
				pos++
			}
		}
		if pos != n {
			return fmt.Errorf("radixsort: %d elements placed, want %d", pos, n)
		}
		return nil
	}
	return inst, nil
}

// spmvInputs mirrors Fig. 9's two matrices. JP scatters into a result
// vector far larger than the L1 with a mixed row distribution (a reused
// hot band plus a cold uniform tail — far-friendly); rma10 is banded with
// a small result vector that fits the L1 (near-friendly).
var spmvInputs = map[string]struct {
	rows, cols, nnzPerCol int
	hotRows               int
	hotPermil             int
	banded                bool
}{
	"JP":    {rows: 1 << 19, cols: 3600, nnzPerCol: 11, hotRows: 96, hotPermil: 600},
	"rma10": {rows: 1 << 10, cols: 3600, nnzPerCol: 11, banded: true},
}

// buildSPMV is the sparse matrix-vector kernel in compressed sparse column
// format: y[row] += val * x[col] via stadd scatters.
func buildSPMV(p Params) (*Instance, error) {
	input := p.Input
	if input == "" {
		input = "JP"
	}
	shape := spmvInputs[input]
	cols := p.scaled(shape.cols)
	nnz := cols * shape.nnzPerCol
	alloc := NewAlloc()
	x := alloc.NamedWords("x", cols)
	// Each matrix entry packs (row << 8 | value) into one word.
	entries := alloc.NamedWords("entries", nnz)
	y := alloc.NamedWords("y", shape.rows)
	inst := &Instance{AMOFootprintBytes: int64(shape.rows) * 8, Sites: alloc.Sites()}
	rng := rand.New(rand.NewSource(p.Seed + 13))
	rowOf := make([]int, nnz)
	valOf := make([]uint64, nnz)
	xv := make([]uint64, cols)
	for j := range xv {
		xv[j] = uint64(rng.Intn(15) + 1)
	}
	for i := 0; i < nnz; i++ {
		switch {
		case shape.banded:
			col := i / shape.nnzPerCol
			band := shape.rows / 8
			base := col * shape.rows / cols
			rowOf[i] = (base + rng.Intn(band)) % shape.rows
		case rng.Intn(1000) < shape.hotPermil:
			rowOf[i] = rng.Intn(shape.hotRows)
		default:
			rowOf[i] = rng.Intn(shape.rows)
		}
		valOf[i] = uint64(rng.Intn(9) + 1)
	}
	inst.Setup = func(data *memory.Store) {
		for j, v := range xv {
			data.StoreWord(word(x, j), v)
		}
		for i := 0; i < nnz; i++ {
			data.StoreWord(word(entries, i), uint64(rowOf[i])<<8|valOf[i])
		}
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			loCol, hiCol := chunk(cols, p.Threads, tid)
			for j := loCol; j < hiCol; j++ {
				xj := t.Load(word(x, j))
				for i := j * shape.nnzPerCol; i < (j+1)*shape.nnzPerCol; i++ {
					e := t.Load(word(entries, i))
					row := int(e >> 8)
					val := e & 0xff
					t.Compute(30)
					t.AMOStore(memory.AMOAdd, word(y, row), val*xj)
				}
			}
			t.Fence()
		})
	}
	ref := make([]uint64, shape.rows)
	for i := 0; i < nnz; i++ {
		ref[rowOf[i]] += valOf[i] * xv[i/shape.nnzPerCol]
	}
	inst.Validate = func(data *memory.Store) error {
		for r := 0; r < shape.rows; r++ {
			if got := data.Load(word(y, r)); got != ref[r] {
				return fmt.Errorf("spmv(%s): y[%d] = %d, want %d", input, r, got, ref[r])
			}
		}
		return nil
	}
	return inst, nil
}

func init() {
	flu := &Spec{Name: "fluidanimate", Code: "FLU", Suite: "PARSEC", Sync: "POSIX mutex, cas", Class: Medium}
	flu.Build = func(p Params) (*Instance, error) { return buildChecked(flu, p, buildFluidanimate) }
	register(flu)

	hist := &Spec{Name: "histogram", Code: "HIST", Suite: "Kernel", Sync: "stadd", Class: High,
		Inputs: []string{"IMG", "NASA", "BMP24"}}
	hist.Build = func(p Params) (*Instance, error) { return buildChecked(hist, p, buildHistogram) }
	register(hist)

	rsor := &Spec{Name: "radixsort", Code: "RSOR", Suite: "Kernel", Sync: "POSIX barrier, stadd", Class: High}
	rsor.Build = func(p Params) (*Instance, error) { return buildChecked(rsor, p, buildRadixSort) }
	register(rsor)

	spmv := &Spec{Name: "spmv", Code: "SPMV", Suite: "Kernel", Sync: "stadd", Class: High,
		Inputs: []string{"JP", "rma10"}}
	spmv.Build = func(p Params) (*Instance, error) { return buildChecked(spmv, p, buildSPMV) }
	register(spmv)
}
