package workload

import (
	"fmt"
	"math/rand"

	"dynamo/internal/cpu"
	"dynamo/internal/graph"
	"dynamo/internal/memory"
)

// inf is the unreached-distance sentinel used by the graph workloads.
const inf = ^uint64(0)

// simGraph is a CSR graph laid out in simulated memory; programs traverse
// it with real loads so the graph structure competes for cache space with
// the AMO-updated arrays, which is what creates the paper's mixed access
// patterns.
type simGraph struct {
	g       *graph.Graph
	offsets memory.Addr
	edges   memory.Addr
	weights memory.Addr
}

func layoutGraph(a *Alloc, g *graph.Graph) *simGraph {
	sg := &simGraph{g: g}
	sg.offsets = a.NamedWords("csr-offsets", g.N+1)
	sg.edges = a.NamedWords("csr-edges", g.M())
	if g.Weights != nil {
		sg.weights = a.NamedWords("csr-weights", g.M())
	}
	return sg
}

func (sg *simGraph) setup(data *memory.Store) {
	for i, o := range sg.g.Offsets {
		data.StoreWord(word(sg.offsets, i), uint64(o))
	}
	for i, e := range sg.g.Edges {
		data.StoreWord(word(sg.edges, i), uint64(e))
	}
	for i, w := range sg.g.Weights {
		data.StoreWord(word(sg.weights, i), uint64(w))
	}
}

// adjacency loads the CSR edge range of u.
func (sg *simGraph) adjacency(t *cpu.Thread, u int) (lo, hi int) {
	return int(t.Load(word(sg.offsets, u))), int(t.Load(word(sg.offsets, u+1)))
}

func (sg *simGraph) edgeAt(t *cpu.Thread, i int) int {
	return int(t.Load(word(sg.edges, i)))
}

func (sg *simGraph) weightAt(t *cpu.Thread, i int) uint64 {
	return t.Load(word(sg.weights, i))
}

// buildBFS is the Galois BFS analog: level-synchronized traversal where
// distance relaxation uses ldmin (a value-returning atomic min) and
// frontier appends use ldadd, on a road-network-like graph.
func buildBFS(p Params) (*Instance, error) {
	g := graph.Grid(p.scaled(44), 30, p.Seed)
	alloc := NewAlloc()
	sg := layoutGraph(alloc, g)
	dist := alloc.NamedWords("dist", g.N)
	bufs := [2]memory.Addr{alloc.NamedWords("frontier-a", g.N), alloc.NamedWords("frontier-b", g.N)}
	sizes := [2]memory.Addr{alloc.NamedLines("frontier-size-a", 1), alloc.NamedLines("frontier-size-b", 1)}
	bar := NewBarrier(alloc, p.Threads)
	const src = 0
	inst := &Instance{AMOFootprintBytes: int64(g.N) * 8, Sites: alloc.Sites()}
	inst.Setup = func(data *memory.Store) {
		sg.setup(data)
		for v := 0; v < g.N; v++ {
			data.StoreWord(word(dist, v), inf)
		}
		data.StoreWord(word(dist, src), 0)
		data.StoreWord(word(bufs[0], 0), src)
		data.StoreWord(sizes[0], 1)
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			sense := uint64(0)
			par := 0
			for {
				n := int(t.Load(sizes[par]))
				if n == 0 {
					break
				}
				cur, next := bufs[par], bufs[par^1]
				nextSize := sizes[par^1]
				lo, hi := chunk(n, p.Threads, tid)
				for i := lo; i < hi; i++ {
					u := int(t.Load(word(cur, i)))
					du := t.Load(word(dist, u))
					elo, ehi := sg.adjacency(t, u)
					for e := elo; e < ehi; e++ {
						v := sg.edgeAt(t, e)
						t.Compute(250)
						// Read before updating: skip the AMO when the
						// distance cannot improve (the guard the paper
						// observes in BFS/CC/PR/KCORE).
						if t.Load(word(dist, v)) <= du+1 {
							continue
						}
						old := t.AMO(memory.AMOUMin, word(dist, v), du+1) // ldmin
						if old == inf {
							idx := t.AMO(memory.AMOAdd, nextSize, 1) // ldadd
							t.Store(word(next, int(idx)), uint64(v))
						}
					}
				}
				t.Fence()
				bar.Wait(t, &sense)
				if tid == 0 {
					t.Store(sizes[par], 0)
					t.Fence()
				}
				bar.Wait(t, &sense)
				par ^= 1
			}
			t.Fence()
		})
	}
	ref := graph.BFS(g, src)
	inst.Validate = func(data *memory.Store) error {
		for v := 0; v < g.N; v++ {
			got := data.Load(word(dist, v))
			want := uint64(ref[v])
			if ref[v] == -1 {
				want = inf
			}
			if got != want {
				return fmt.Errorf("bfs: dist[%d] = %d, want %d", v, got, want)
			}
		}
		return nil
	}
	return inst, nil
}

// roundFlag coordinates convergence rounds without reset races: writers
// stamp the flag with the round number via a UMax AtomicStore; readers
// compare after a barrier.
type roundFlag struct {
	addr memory.Addr
}

func (f roundFlag) mark(t *cpu.Thread, round int) {
	t.AMOStore(memory.AMOUMax, f.addr, uint64(round)+1)
}

func (f roundFlag) marked(t *cpu.Thread, round int) bool {
	return t.Load(f.addr) == uint64(round)+1
}

// buildSPFA builds a frontier-driven shortest-path workload (SPFA /
// Bellman-Ford-with-worklist, the structure of Galois' SSSP): active nodes
// relax their edges, improved targets are deduplicated through an in-queue
// word claimed with an atomic swap and appended to the next frontier with
// ldadd. useCAS selects CAS-retry relaxations (SPT) over guarded stmin
// AtomicStores (SSSP). perEdge is the per-relaxation local work.
func buildSPFA(p Params, g *graph.Graph, wt func(u, e int) uint64,
	useCAS bool, perEdge int, name string) (*Instance, error) {
	alloc := NewAlloc()
	sg := layoutGraph(alloc, g)
	dist := alloc.NamedWords("dist", g.N)
	inq := alloc.NamedWords("inq", g.N)
	bufs := [2]memory.Addr{alloc.NamedWords("frontier-a", g.N), alloc.NamedWords("frontier-b", g.N)}
	sizes := [2]memory.Addr{alloc.NamedLines("frontier-size-a", 1), alloc.NamedLines("frontier-size-b", 1)}
	bar := NewBarrier(alloc, p.Threads)
	const src = 0
	inst := &Instance{AMOFootprintBytes: int64(g.N) * 16, Sites: alloc.Sites()}
	inst.Setup = func(data *memory.Store) {
		sg.setup(data)
		for v := 0; v < g.N; v++ {
			data.StoreWord(word(dist, v), inf)
		}
		data.StoreWord(word(dist, src), 0)
		data.StoreWord(word(inq, src), 1)
		data.StoreWord(word(bufs[0], 0), src)
		data.StoreWord(sizes[0], 1)
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			sense := uint64(0)
			par := 0
			for {
				n := int(t.Load(sizes[par]))
				if n == 0 {
					break
				}
				cur, next := bufs[par], bufs[par^1]
				nextSize := sizes[par^1]
				lo, hi := chunk(n, p.Threads, tid)
				for i := lo; i < hi; i++ {
					u := int(t.Load(word(cur, i)))
					// Leave the queue before reading the distance; the
					// blocking swap orders the two, so any later
					// improvement re-queues u.
					t.AMO(memory.AMOSwap, word(inq, u), 0)
					du := t.Load(word(dist, u))
					elo, ehi := sg.adjacency(t, u)
					for e := elo; e < ehi; e++ {
						v := sg.edgeAt(t, e)
						nd := du + wt(u, e)
						t.Compute(perEdge)
						dv := t.Load(word(dist, v))
						improved := false
						if useCAS {
							for nd < dv {
								old := t.CAS(word(dist, v), dv, nd)
								if old == dv {
									improved = true
									break
								}
								dv = old
							}
						} else if nd < dv {
							t.AMOStore(memory.AMOUMin, word(dist, v), nd) // stmin
							// Order the update before the queue claim so a
							// concurrent processor of v cannot miss it.
							t.Fence()
							improved = true
						}
						if improved && t.AMO(memory.AMOSwap, word(inq, v), 1) == 0 {
							idx := t.AMO(memory.AMOAdd, nextSize, 1) // ldadd
							t.Store(word(next, int(idx)), uint64(v))
						}
					}
				}
				t.Fence()
				bar.Wait(t, &sense)
				if tid == 0 {
					t.Store(sizes[par], 0)
					t.Fence()
				}
				bar.Wait(t, &sense)
				par ^= 1
			}
			t.Fence()
		})
	}
	// Reference distances with the same weights.
	refG := &graph.Graph{N: g.N, Offsets: g.Offsets, Edges: g.Edges, Weights: make([]int32, g.M())}
	for u := 0; u < g.N; u++ {
		for e := int(g.Offsets[u]); e < int(g.Offsets[u+1]); e++ {
			refG.Weights[e] = int32(wt(u, e))
		}
	}
	ref := graph.SSSP(refG, src)
	inst.Validate = func(data *memory.Store) error {
		for v := 0; v < g.N; v++ {
			got := data.Load(word(dist, v))
			want := uint64(ref[v])
			if ref[v] == -1 {
				want = inf
			}
			if got != want {
				return fmt.Errorf("%s: dist[%d] = %d, want %d", name, v, got, want)
			}
		}
		return nil
	}
	return inst, nil
}

// buildSSSP is the Galois SSSP analog: worklist-driven shortest paths with
// stmin (no-return atomic min) relaxations guarded by a read of the target
// distance, on a weighted road-network graph.
func buildSSSP(p Params) (*Instance, error) {
	g := graph.Grid(p.scaled(40), 30, p.Seed+1)
	wt := func(u, e int) uint64 { return uint64(g.Weights[e]) }
	return buildSPFA(p, g, wt, false, 30, "sssp")
}

// buildSPT is the SPT analog: the same shortest-path computation but with
// CAS-retry relaxations (read the distance, CAS if improved — the
// read-reuse pattern of Fig. 3b), on a weighted power-law graph.
func buildSPT(p Params) (*Instance, error) {
	g := graph.Kronecker(10, p.scaled(5), p.Seed+2)
	// Deterministic per-edge weights derived from endpoints (the Kronecker
	// generator is unweighted).
	wt := func(u, e int) uint64 {
		return uint64((u*31+int(g.Edges[e])*17)%9 + 1)
	}
	return buildSPFA(p, g, wt, true, 20, "spt")
}

// buildCC is the Galois connected-components analog: frontier-driven
// min-label propagation with ldmin relaxations.
func buildCC(p Params) (*Instance, error) {
	g := graph.Kronecker(10, p.scaled(4), p.Seed+3)
	alloc := NewAlloc()
	sg := layoutGraph(alloc, g)
	label := alloc.NamedWords("label", g.N)
	bufs := [2]memory.Addr{alloc.NamedWords("frontier-a", g.M()+g.N), alloc.NamedWords("frontier-b", g.M()+g.N)}
	sizes := [2]memory.Addr{alloc.NamedLines("frontier-size-a", 1), alloc.NamedLines("frontier-size-b", 1)}
	bar := NewBarrier(alloc, p.Threads)
	inst := &Instance{AMOFootprintBytes: int64(g.N) * 8, Sites: alloc.Sites()}
	inst.Setup = func(data *memory.Store) {
		sg.setup(data)
		for v := 0; v < g.N; v++ {
			data.StoreWord(word(label, v), uint64(v))
			data.StoreWord(word(bufs[0], v), uint64(v))
		}
		data.StoreWord(sizes[0], uint64(g.N))
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			sense := uint64(0)
			par := 0
			for {
				n := int(t.Load(sizes[par]))
				if n == 0 {
					break
				}
				cur, next := bufs[par], bufs[par^1]
				nextSize := sizes[par^1]
				lo, hi := chunk(n, p.Threads, tid)
				for i := lo; i < hi; i++ {
					u := int(t.Load(word(cur, i)))
					lu := t.Load(word(label, u))
					elo, ehi := sg.adjacency(t, u)
					for e := elo; e < ehi; e++ {
						v := sg.edgeAt(t, e)
						t.Compute(25)
						if t.Load(word(label, v)) <= lu {
							continue
						}
						old := t.AMO(memory.AMOUMin, word(label, v), lu) // ldmin
						if old > lu {
							idx := t.AMO(memory.AMOAdd, nextSize, 1)
							t.Store(word(next, int(idx)), uint64(v))
						}
					}
				}
				t.Fence()
				bar.Wait(t, &sense)
				if tid == 0 {
					t.Store(sizes[par], 0)
					t.Fence()
				}
				bar.Wait(t, &sense)
				par ^= 1
			}
			t.Fence()
		})
	}
	ref := graph.Components(g)
	inst.Validate = func(data *memory.Store) error {
		for v := 0; v < g.N; v++ {
			if got := data.Load(word(label, v)); got != uint64(ref[v]) {
				return fmt.Errorf("cc: label[%d] = %d, want %d", v, got, ref[v])
			}
		}
		return nil
	}
	return inst, nil
}

// buildPageRank is the Galois PR analog: push-style fixed-point PageRank
// whose accumulations use CAS-retry loops (Galois uses cas for its
// floating-point accumulates).
func buildPageRank(p Params) (*Instance, error) {
	g := graph.Kronecker(9, p.scaled(6), p.Seed+4)
	const iters = 2
	const unit = uint64(1 << 20)
	alloc := NewAlloc()
	sg := layoutGraph(alloc, g)
	rank := alloc.NamedWords("rank", g.N)
	next := alloc.NamedWords("next", g.N)
	bar := NewBarrier(alloc, p.Threads)
	inst := &Instance{AMOFootprintBytes: int64(g.N) * 16, Sites: alloc.Sites()}
	inst.Setup = func(data *memory.Store) {
		sg.setup(data)
		for v := 0; v < g.N; v++ {
			data.StoreWord(word(rank, v), unit)
		}
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			sense := uint64(0)
			lo, hi := chunk(g.N, p.Threads, tid)
			for it := 0; it < iters; it++ {
				// Reset phase.
				for v := lo; v < hi; v++ {
					t.Store(word(next, v), unit*15/100)
				}
				t.Fence()
				bar.Wait(t, &sense)
				// Scatter phase: CAS-accumulate shares into next[].
				for u := lo; u < hi; u++ {
					elo, ehi := sg.adjacency(t, u)
					d := ehi - elo
					if d == 0 {
						continue
					}
					ru := t.Load(word(rank, u))
					share := ru * 85 / 100 / uint64(d)
					for e := elo; e < ehi; e++ {
						v := sg.edgeAt(t, e)
						t.Compute(130)
						for {
							old := t.Load(word(next, v))
							if t.CAS(word(next, v), old, old+share) == old {
								break
							}
							t.Compute(4)
						}
					}
				}
				t.Fence()
				bar.Wait(t, &sense)
				// Publish phase.
				for v := lo; v < hi; v++ {
					t.Store(word(rank, v), t.Load(word(next, v)))
				}
				t.Fence()
				bar.Wait(t, &sense)
			}
			t.Fence()
		})
	}
	ref := graph.PageRank(g, iters)
	inst.Validate = func(data *memory.Store) error {
		for v := 0; v < g.N; v++ {
			if got := data.Load(word(rank, v)); got != uint64(ref[v]) {
				return fmt.Errorf("pagerank: rank[%d] = %d, want %d", v, got, ref[v])
			}
		}
		return nil
	}
	return inst, nil
}

// buildKCore is the KCORE analog: iterative k-core peeling where dead
// nodes decrement neighbor degrees with ldadd. Degree and liveness share
// cache lines (an interleaved node-state array), so scan reads leave the
// decremented lines in shared state — the pattern where Present Near keeps
// performing but Unique Near falls behind.
func buildKCore(p Params) (*Instance, error) {
	g := graph.Kronecker(10, p.scaled(4), p.Seed+5)
	const k = 4
	alloc := NewAlloc()
	sg := layoutGraph(alloc, g)
	state := alloc.NamedWords("node-state", 2*g.N) // interleaved: [deg0, alive0, deg1, ...]
	deg := func(v int) memory.Addr { return word(state, 2*v) }
	alive := func(v int) memory.Addr { return word(state, 2*v+1) }
	flag := roundFlag{alloc.NamedLines("round-flag", 1)}
	bar := NewBarrier(alloc, p.Threads)
	inst := &Instance{AMOFootprintBytes: int64(g.N) * 16, Sites: alloc.Sites()}
	inst.Setup = func(data *memory.Store) {
		sg.setup(data)
		for v := 0; v < g.N; v++ {
			data.StoreWord(deg(v), uint64(g.Degree(v)))
			data.StoreWord(alive(v), 1)
		}
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			sense := uint64(0)
			lo, hi := chunk(g.N, p.Threads, tid)
			for round := 0; ; round++ {
				for u := lo; u < hi; u++ {
					t.Compute(100)
					if t.Load(alive(u)) != 1 {
						continue
					}
					if t.Load(deg(u)) >= k {
						continue
					}
					if t.CAS(alive(u), 1, 0) != 1 {
						continue
					}
					flag.mark(t, round)
					elo, ehi := sg.adjacency(t, u)
					for e := elo; e < ehi; e++ {
						v := sg.edgeAt(t, e)
						t.AMO(memory.AMOAdd, deg(v), ^uint64(0)) // ldadd -1
					}
				}
				t.Fence()
				bar.Wait(t, &sense)
				done := !flag.marked(t, round)
				bar.Wait(t, &sense)
				if done {
					break
				}
			}
			t.Fence()
		})
	}
	ref := graph.KCore(g, k)
	inst.Validate = func(data *memory.Store) error {
		for v := 0; v < g.N; v++ {
			got := data.Load(alive(v)) == 1
			if got != ref[v] {
				return fmt.Errorf("kcore: alive[%d] = %v, want %v", v, got, ref[v])
			}
		}
		return nil
	}
	return inst, nil
}

// buildGMetis is the GMETIS analog: the coarsening phase's randomized
// matching, where threads claim neighbor nodes with CAS on a match array
// they revisit rarely — the migratory, low-reuse pattern where far AMOs
// shine. Work is distributed through a contended fetch-add worklist index
// (the Galois do_all loop counter), with a spinlock protecting the phase
// statistics.
func buildGMetis(p Params) (*Instance, error) {
	g := graph.Grid(p.scaled(42), 42, p.Seed+6)
	const phases = 2
	const chunkSize = 16
	alloc := NewAlloc()
	sg := layoutGraph(alloc, g)
	match := [phases]memory.Addr{alloc.NamedLines("match-a", g.N), alloc.NamedLines("match-b", g.N)}
	// Real GMETIS runs over a renumbered multi-megabyte match array where
	// two nodes' match words essentially never share a cache line; one
	// padded slot per node plus a seeded permutation reproduces that
	// collision rate at this scale.
	perm := rand.New(rand.NewSource(p.Seed + 17)).Perm(g.N)
	slot := func(ph int, v int) memory.Addr {
		return match[ph] + memory.Addr(perm[v])*memory.LineSize
	}
	dispenser := alloc.NamedLines("dispenser", 1)
	statsLock := NewNamedSpinLock(alloc, "stats-lock")
	statsCell := alloc.NamedLines("stats-cell", 1)
	bar := NewBarrier(alloc, p.Threads)
	inst := &Instance{AMOFootprintBytes: int64(g.N) * memory.LineSize * phases, Sites: alloc.Sites()}
	inst.Setup = func(data *memory.Store) { sg.setup(data) }
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			rng := rand.New(rand.NewSource(p.Seed ^ int64(tid+1)*0x4f6cdd1d))
			sense := uint64(0)
			for ph := 0; ph < phases; ph++ {
				matched := uint64(0)
				for {
					// Grab a chunk of nodes with a fetch-add on the shared
					// worklist index (the Galois do_all loop counter).
					start := t.AMO(memory.AMOAdd, dispenser, chunkSize)
					if start >= uint64(g.N) {
						break
					}
					end := int(start) + chunkSize
					if end > g.N {
						end = g.N
					}
					for u := int(start); u < end; u++ {
						t.Compute(60)
						// Claim self; skip if someone matched us already.
						if t.CAS(slot(ph, u), 0, uint64(u)+1) != 0 {
							continue
						}
						elo, ehi := sg.adjacency(t, u)
						if ehi == elo {
							continue
						}
						// Randomized probe order over neighbors.
						off := rng.Intn(ehi - elo)
						for j := 0; j < ehi-elo; j++ {
							e := elo + (off+j)%(ehi-elo)
							v := sg.edgeAt(t, e)
							t.Compute(30)
							if v == u {
								continue
							}
							if t.CAS(slot(ph, v), 0, uint64(u)+1) == 0 {
								t.Store(slot(ph, u), uint64(v)+1)
								matched++
								break
							}
						}
					}
				}
				// Fold per-thread match counts into the phase statistics
				// under the coarsening lock.
				statsLock.Lock(t)
				v := t.Load(statsCell)
				t.Store(statsCell, v+matched)
				statsLock.Unlock(t)
				t.Fence()
				bar.Wait(t, &sense)
				if tid == 0 {
					t.Store(dispenser, 0)
					t.Fence()
				}
				bar.Wait(t, &sense)
			}
			t.Fence()
		})
	}
	inst.Validate = func(data *memory.Store) error {
		for ph := 0; ph < phases; ph++ {
			pairs := 0
			for u := 0; u < g.N; u++ {
				mu := data.Load(slot(ph, u))
				if mu == 0 || mu == uint64(u)+1 {
					continue // untouched or self-claimed (unmatched)
				}
				v := int(mu) - 1
				mv := data.Load(slot(ph, v))
				if mv != uint64(u)+1 && mv != uint64(v)+1 {
					// u points at v: either v points back (pair) or v kept
					// its self-claim while u was matched *to* v by v.
					return fmt.Errorf("gmetis: phase %d: match[%d]=%d but match[%d]=%d", ph, u, mu, v, mv)
				}
				if mv == uint64(u)+1 {
					pairs++
				}
			}
			if pairs == 0 {
				return fmt.Errorf("gmetis: phase %d produced no matches", ph)
			}
		}
		return nil
	}
	return inst, nil
}

// buildCluster is the Cluster analog: a streaming pass assigning elements
// to clusters and accumulating per-cluster statistics with stadd.
func buildCluster(p Params) (*Instance, error) {
	n := p.scaled(6000)
	const clusters = 256
	alloc := NewAlloc()
	features := alloc.NamedWords("features", n)
	sums := alloc.NamedLines("cluster-sums", clusters)     // padded: one accumulator line each
	counts := alloc.NamedLines("cluster-counts", clusters) // padded
	inst := &Instance{AMOFootprintBytes: int64(clusters) * 2 * memory.LineSize, Sites: alloc.Sites()}
	rng := rand.New(rand.NewSource(p.Seed + 7))
	feat := make([]uint64, n)
	for i := range feat {
		feat[i] = uint64(rng.Intn(1 << 16))
	}
	inst.Setup = func(data *memory.Store) {
		for i, f := range feat {
			data.StoreWord(word(features, i), f)
		}
	}
	for i := 0; i < p.Threads; i++ {
		tid := i
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			lo, hi := chunk(n, p.Threads, tid)
			for i := lo; i < hi; i++ {
				f := t.Load(word(features, i))
				t.Compute(300)
				c := memory.Addr(f % clusters)
				t.AMOStore(memory.AMOAdd, sums+c*memory.LineSize, f)
				t.AMOStore(memory.AMOAdd, counts+c*memory.LineSize, 1)
			}
			t.Fence()
		})
	}
	var wantSum, wantCount uint64
	for _, f := range feat {
		wantSum += f
		wantCount++
	}
	inst.Validate = func(data *memory.Store) error {
		var sum, count uint64
		for c := 0; c < clusters; c++ {
			sum += data.Load(sums + memory.Addr(c)*memory.LineSize)
			count += data.Load(counts + memory.Addr(c)*memory.LineSize)
		}
		if sum != wantSum || count != wantCount {
			return fmt.Errorf("cluster: sum/count = %d/%d, want %d/%d", sum, count, wantSum, wantCount)
		}
		return nil
	}
	return inst, nil
}

func registerGalois() {
	specs := []struct {
		name, code, sync string
		class            Class
		build            func(Params) (*Instance, error)
	}{
		{"bfs", "BFS", "Spinlock, ldmin", Medium, buildBFS},
		{"cc", "CC", "Spinlock, ldmin", Medium, buildCC},
		{"cluster", "CLU", "Spinlock, stadd", Medium, buildCluster},
		{"gmetis", "GME", "Spinlock, cas", High, buildGMetis},
		{"kcore", "KCOR", "Spinlock, ldadd", Medium, buildKCore},
		{"pagerank", "PR", "Spinlock, cas", Medium, buildPageRank},
		{"spt", "SPT", "Spinlock, cas", High, buildSPT},
		{"sssp", "SSSP", "Spinlock, stmin", High, buildSSSP},
	}
	for _, s := range specs {
		spec := &Spec{Name: s.name, Code: s.code, Suite: "Galois", Sync: s.sync, Class: s.class}
		build := s.build
		spec.Build = func(p Params) (*Instance, error) {
			return buildChecked(spec, p, build)
		}
		register(spec)
	}
}

func init() { registerGalois() }
