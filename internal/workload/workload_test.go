package workload

import (
	"testing"

	"dynamo/internal/machine"
	"dynamo/internal/memory"
)

// testMachine builds a small 4-core system for workload tests.
func testMachine(t *testing.T, policy string) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Policy = policy
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 32
	cfg.Chi.L2Sets = 128
	cfg.Chi.LLCSets = 512
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runInstance executes an instance and validates its functional result.
func runInstance(t *testing.T, m *machine.Machine, inst *Instance) *machine.Result {
	t.Helper()
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	res, err := m.Run(inst.Programs)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(m.Sys.Data); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	if got := len(Names()); got != 21 {
		t.Fatalf("registry has %d workloads, want 21: %v", got, Names())
	}
	order := TableIIIOrder()
	if len(order) != 21 {
		t.Fatalf("TableIIIOrder has %d entries", len(order))
	}
	wantCodes := map[string]string{
		"barnes": "BAR", "fmm": "FMM", "ocean": "OCE", "radiosity": "RAD",
		"raytrace": "RAY", "volrend": "VOL", "water": "WAT",
		"bfs": "BFS", "cc": "CC", "cluster": "CLU", "gmetis": "GME",
		"kcore": "KCOR", "pagerank": "PR", "spt": "SPT", "sssp": "SSSP",
		"bc": "BC", "tc": "TC",
		"fluidanimate": "FLU", "histogram": "HIST", "radixsort": "RSOR", "spmv": "SPMV",
	}
	for name, code := range wantCodes {
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Code != code {
			t.Errorf("%s code = %q, want %q", name, s.Code, code)
		}
		if s.Build == nil {
			t.Errorf("%s has no builder", name)
		}
	}
	if _, err := Get("bogus"); err == nil {
		t.Error("unknown workload accepted")
	}
	if len(All()) != 21 {
		t.Error("All() incomplete")
	}
}

func TestParamsValidation(t *testing.T) {
	if err := (Params{Threads: 0}).Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	if err := (Params{Threads: 65}).Validate(); err == nil {
		t.Error("65 threads accepted")
	}
	s, _ := Get("histogram")
	if _, err := s.Build(Params{Threads: 2, Input: "missing"}); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestScaledParams(t *testing.T) {
	p := Params{Threads: 1}
	if p.scaled(100) != 100 {
		t.Error("default scale not 1.0")
	}
	p.Scale = 0.25
	if p.scaled(100) != 25 {
		t.Error("scale 0.25 wrong")
	}
	p.Scale = 0.001
	if p.scaled(100) != 1 {
		t.Error("scaled below 1")
	}
}

func TestAlloc(t *testing.T) {
	a := NewAlloc()
	w := a.Words(10)
	if w%8 != 0 {
		t.Error("words not 8-aligned")
	}
	l := a.Lines(2)
	if l%memory.LineSize != 0 {
		t.Error("lines not line-aligned")
	}
	l2 := a.Lines(1)
	if l2 != l+2*memory.LineSize {
		t.Errorf("lines not consecutive: %#x then %#x", l, l2)
	}
	if a.Used() <= 0 {
		t.Error("Used not tracked")
	}
}

func TestChunk(t *testing.T) {
	covered := 0
	for tid := 0; tid < 4; tid++ {
		lo, hi := chunk(10, 4, tid)
		covered += hi - lo
		if lo > hi || hi > 10 {
			t.Fatalf("chunk(10,4,%d) = [%d,%d)", tid, lo, hi)
		}
	}
	if covered != 10 {
		t.Fatalf("chunks cover %d of 10", covered)
	}
	// n < threads: some chunks empty.
	lo, hi := chunk(2, 4, 3)
	if lo != hi {
		t.Fatalf("chunk(2,4,3) = [%d,%d), want empty", lo, hi)
	}
}

func TestCounterMicrobench(t *testing.T) {
	for _, noReturn := range []bool{false, true} {
		inst, err := Counter(4, 25, noReturn, 5)
		if err != nil {
			t.Fatal(err)
		}
		m := testMachine(t, "all-near")
		runInstance(t, m, inst)
	}
	if _, err := Counter(0, 5, false, 0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	// The splash builder's validation is exactly a mutual-exclusion check:
	// critical sections perform non-atomic read-modify-writes.
	inst, err := buildSplash(splashShape{
		locks: 2, iters: 40, compute: 5, privateWords: 8,
		privateTouches: 1, critWords: 2, hotFrac: 0.8,
	}, Params{Threads: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "all-near")
	runInstance(t, m, inst)
}

func TestMutexUnderFarPolicy(t *testing.T) {
	inst, err := buildSplash(splashShape{
		locks: 2, iters: 30, compute: 5, privateWords: 8,
		privateTouches: 1, critWords: 2, hotFrac: 0.9,
	}, Params{Threads: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "unique-near")
	runInstance(t, m, inst)
}

// TestAllWorkloadsRunAndValidate is the central integration test: every
// Table III analog computes a correct result on the simulated machine.
func TestAllWorkloadsRunAndValidate(t *testing.T) {
	for _, name := range TableIIIOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := s.Build(Params{Threads: 4, Seed: 1, Scale: 0.15})
			if err != nil {
				t.Fatal(err)
			}
			if len(inst.Programs) != 4 {
				t.Fatalf("%d programs, want 4", len(inst.Programs))
			}
			if inst.AMOFootprintBytes <= 0 {
				t.Error("no AMO footprint reported")
			}
			m := testMachine(t, "all-near")
			res := runInstance(t, m, inst)
			if res.AMOs == 0 {
				t.Error("workload issued no AMOs")
			}
		})
	}
}

// TestWorkloadsUnderDynamo runs a representative subset under the DynAMO
// predictor to confirm correctness is placement-independent.
func TestWorkloadsUnderDynamo(t *testing.T) {
	for _, name := range []string{"radiosity", "bfs", "histogram", "radixsort", "gmetis", "water"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := s.Build(Params{Threads: 4, Seed: 3, Scale: 0.12})
			if err != nil {
				t.Fatal(err)
			}
			m := testMachine(t, "dynamo-reuse-pn")
			runInstance(t, m, inst)
		})
	}
}

// TestWorkloadDeterminism: same seed, same cycle count.
func TestWorkloadDeterminism(t *testing.T) {
	runOnce := func() uint64 {
		s, _ := Get("radixsort")
		inst, err := s.Build(Params{Threads: 4, Seed: 9, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		m := testMachine(t, "present-near")
		res := runInstance(t, m, inst)
		return uint64(res.Cycles)
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

// TestInputVariantsDiffer: the Fig. 9 inputs must change behaviour.
func TestInputVariantsDiffer(t *testing.T) {
	for _, wl := range []string{"histogram", "spmv"} {
		s, _ := Get(wl)
		if len(s.Inputs) < 2 {
			t.Fatalf("%s has no input variants", wl)
		}
		footprints := map[int64]bool{}
		for _, in := range s.Inputs {
			inst, err := s.Build(Params{Threads: 2, Seed: 1, Scale: 0.1, Input: in})
			if err != nil {
				t.Fatal(err)
			}
			footprints[inst.AMOFootprintBytes] = true
		}
		if len(footprints) < 2 {
			t.Errorf("%s input variants share one footprint", wl)
		}
	}
}
