package workload

import (
	"fmt"

	"dynamo/internal/cpu"
	"dynamo/internal/memory"
)

// Counter builds the Fig. 1 microbenchmark: every thread performs ops
// atomic increments of one shared counter. noReturn selects AtomicStore
// semantics (stadd) instead of AtomicLoad (ldadd); gap is the local work
// between updates in cycles.
func Counter(threads, ops int, noReturn bool, gap int) (*Instance, error) {
	if threads <= 0 || ops <= 0 {
		return nil, fmt.Errorf("workload: counter with %d threads x %d ops", threads, ops)
	}
	alloc := NewAlloc()
	counter := alloc.NamedLines("counter", 1)
	inst := &Instance{AMOFootprintBytes: memory.LineSize, Sites: alloc.Sites()}
	for i := 0; i < threads; i++ {
		inst.Programs = append(inst.Programs, func(t *cpu.Thread) {
			for k := 0; k < ops; k++ {
				if noReturn {
					t.AMOStore(memory.AMOAdd, counter, 1)
				} else {
					t.AMO(memory.AMOAdd, counter, 1)
				}
				t.Compute(gap)
			}
			t.Fence()
		})
	}
	want := uint64(threads * ops)
	inst.Validate = func(data *memory.Store) error {
		if got := data.Load(counter); got != want {
			return fmt.Errorf("counter: %d updates arrived, want %d", got, want)
		}
		return nil
	}
	return inst, nil
}
