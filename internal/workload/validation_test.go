package workload

import (
	"strings"
	"testing"

	"dynamo/internal/memory"
)

// The validators are the safety net for the whole simulator: if the
// protocol ever loses or duplicates an atomic update, a validator must
// fail. These tests inject corruption into otherwise-correct runs and
// assert every validator catches it.

func TestValidatorsCatchCorruption(t *testing.T) {
	// For each workload: run correctly, validate OK, corrupt one result
	// word, validate again and demand failure. Workloads whose outputs
	// are spread over known regions use their own floor offsets.
	cases := []struct {
		workload string
		// probe locates a result word to corrupt; nil uses a generic scan
		// from the middle of the address space.
		probe func(data *memory.Store) (memory.Addr, uint64)
	}{
		{"histogram", nil},
		{"radixsort", nil},
		{"cluster", nil},
		{"spmv", nil},
		{"radiosity", nil},
		{"tc", nil},
	}
	for _, c := range cases {
		c := c
		t.Run(c.workload, func(t *testing.T) {
			t.Parallel()
			s, err := Get(c.workload)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := s.Build(Params{Threads: 4, Seed: 2, Scale: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			m := testMachine(t, "all-near")
			runInstance(t, m, inst)
			// Scan from the top of the allocation downwards so we hit
			// result arrays (allocated last) rather than input data.
			data := m.Sys.Data
			var corrupted bool
			for a := memory.Addr(1<<20) + (4 << 20); a > 1<<20; a -= 8 {
				if v := data.Load(a); v != 0 {
					data.StoreWord(a, v+1)
					if err := inst.Validate(data); err != nil {
						corrupted = true
						break
					}
					data.StoreWord(a, v) // restore and keep looking
				}
			}
			if !corrupted {
				t.Fatal("no corruption detected by the validator")
			}
		})
	}
}

func TestBFSValidatorCatchesWrongDistance(t *testing.T) {
	s, err := Get("bfs")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Build(Params{Threads: 4, Seed: 2, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "all-near")
	runInstance(t, m, inst)
	// Find a finite distance word and shrink it: a BFS level can never be
	// smaller than the true shortest distance.
	data := m.Sys.Data
	found := false
	for a := memory.Addr(1 << 20); a < 1<<23; a += 8 {
		v := data.Load(a)
		if v > 1 && v < 1000 {
			data.StoreWord(a, v-1)
			if err := inst.Validate(data); err != nil {
				if !strings.Contains(err.Error(), "dist") {
					t.Fatalf("unexpected validation error: %v", err)
				}
				found = true
				break
			}
			data.StoreWord(a, v)
		}
	}
	if !found {
		t.Fatal("validator accepted a corrupted distance")
	}
}

func TestSeedsChangeWorkloads(t *testing.T) {
	// Different seeds must produce genuinely different instances (checked
	// through their run lengths), while the same seed reproduces exactly.
	cycles := func(seed int64) uint64 {
		s, _ := Get("gmetis")
		inst, err := s.Build(Params{Threads: 4, Seed: seed, Scale: 0.12})
		if err != nil {
			t.Fatal(err)
		}
		m := testMachine(t, "all-near")
		res := runInstance(t, m, inst)
		return uint64(res.Cycles)
	}
	a1, a2, b := cycles(10), cycles(10), cycles(11)
	if a1 != a2 {
		t.Fatalf("same seed, different cycles: %d vs %d", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds produced identical runs (%d)", a1)
	}
}

func TestScaleShrinksWork(t *testing.T) {
	s, _ := Get("spmv")
	big, err := s.Build(Params{Threads: 2, Seed: 1, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Build(Params{Threads: 2, Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	mBig := testMachine(t, "all-near")
	mSmall := testMachine(t, "all-near")
	rb := runInstance(t, mBig, big)
	rs := runInstance(t, mSmall, small)
	if rs.AMOs >= rb.AMOs {
		t.Fatalf("scale 0.1 ran %d AMOs, >= scale 0.3's %d", rs.AMOs, rb.AMOs)
	}
}
