package hbm

import (
	"testing"
	"testing/quick"

	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

func mem(t testing.TB) *Memory {
	t.Helper()
	m, err := New(Config{Channels: 8, Latency: 100, LineOccupancy: 2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Channels: 0, Latency: 100, LineOccupancy: 2},
		{Channels: 3, Latency: 100, LineOccupancy: 2},
		{Channels: 8, Latency: 0, LineOccupancy: 2},
		{Channels: 8, Latency: 100, LineOccupancy: 0},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestIdleLatency(t *testing.T) {
	m := mem(t)
	if got := m.Read(0, 1000); got != 1100 {
		t.Fatalf("read completed at %d, want 1100", got)
	}
}

func TestChannelInterleave(t *testing.T) {
	m := mem(t)
	seen := map[int]bool{}
	for l := memory.Line(0); l < 8; l++ {
		seen[m.Channel(l)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("8 consecutive lines map to %d channels, want 8", len(seen))
	}
}

func TestSameChannelSerializes(t *testing.T) {
	m := mem(t)
	a := m.Read(0, 0)
	b := m.Read(8, 0) // line 8 maps to the same channel as line 0
	if b != a+2 {
		t.Fatalf("second access completed at %d, want %d", b, a+2)
	}
	if m.Stats().QueueWait == 0 {
		t.Fatal("no queue wait recorded")
	}
}

func TestDifferentChannelsParallel(t *testing.T) {
	m := mem(t)
	a := m.Read(0, 0)
	b := m.Read(1, 0)
	if a != b {
		t.Fatalf("independent channels serialized: %d vs %d", a, b)
	}
}

func TestStats(t *testing.T) {
	m := mem(t)
	m.Read(0, 0)
	m.Write(1, 0)
	m.Write(2, 0)
	s := m.Stats()
	if s.Reads != 1 || s.Writes != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: completion time is always >= issue + latency, and accesses to a
// single channel are spaced by at least the occupancy.
func TestTimingProperty(t *testing.T) {
	f := func(lines []uint8) bool {
		m := mem(t)
		last := map[int]sim.Tick{}
		now := sim.Tick(0)
		for _, lr := range lines {
			l := memory.Line(lr)
			done := m.Read(l, now)
			if done < now+100 {
				return false
			}
			ch := m.Channel(l)
			if prev, ok := last[ch]; ok && done-prev < 2 && done != prev {
				return false
			}
			last[ch] = done
			now++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRead(b *testing.B) {
	m := mem(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Read(memory.Line(i), sim.Tick(i))
	}
}
