// Package hbm models the main-memory backend: an HBM-style stack with
// multiple independent channels, a fixed access latency and per-channel
// bandwidth occupancy. Lines interleave across channels by line address,
// matching the 8-channel HBM3 configuration of Table II.
package hbm

import (
	"fmt"

	"dynamo/internal/memory"
	"dynamo/internal/obs"
	"dynamo/internal/sim"
)

// Config describes the memory system.
type Config struct {
	Channels int
	// Latency is the idle-channel access latency in core cycles.
	Latency sim.Tick
	// LineOccupancy is how long one 64-byte transfer occupies a channel, in
	// cycles; it encodes per-channel bandwidth (e.g. 64 GB/s at a 2 GHz core
	// clock moves 32 B/cycle, so a line occupies 2 cycles).
	LineOccupancy sim.Tick
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("hbm: %d channels", c.Channels)
	}
	if c.Channels&(c.Channels-1) != 0 {
		return fmt.Errorf("hbm: channels %d not a power of two", c.Channels)
	}
	if c.Latency == 0 {
		return fmt.Errorf("hbm: zero latency")
	}
	if c.LineOccupancy == 0 {
		return fmt.Errorf("hbm: zero line occupancy")
	}
	return nil
}

// Stats counts memory traffic.
type Stats struct {
	Reads     uint64
	Writes    uint64
	QueueWait uint64 // cycles requests spent waiting for a busy channel
}

// Memory is the timing model. The functional data lives in memory.Store;
// this type only answers "when is the line available".
type Memory struct {
	cfg      Config
	nextFree []sim.Tick
	stats    Stats
	obs      *obs.Bus
	// jitter, when non-nil, adds chaos delay to each access's completion
	// (see SetJitter).
	jitter func(ch int) sim.Tick
}

// New builds a memory model from cfg.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Memory{cfg: cfg, nextFree: make([]sim.Tick, cfg.Channels)}, nil
}

// AttachObs points the memory at an observability bus; each access then
// publishes a "burst" occupancy span on its channel's track. A nil bus
// disables publication.
func (m *Memory) AttachObs(b *obs.Bus) { m.obs = b }

// SetJitter installs a chaos hook adding extra cycles to each access's
// completion time, skewing per-channel delay without changing channel
// occupancy. The function must be deterministic for a given call sequence;
// nil disables jitter.
func (m *Memory) SetJitter(fn func(ch int) sim.Tick) { m.jitter = fn }

// Channels returns the channel count.
func (m *Memory) Channels() int { return m.cfg.Channels }

// Channel returns the channel that serves the line.
func (m *Memory) Channel(line memory.Line) int {
	return int(uint64(line) & uint64(m.cfg.Channels-1))
}

func (m *Memory) access(line memory.Line, now sim.Tick) sim.Tick {
	ch := m.Channel(line)
	start := now
	if free := m.nextFree[ch]; free > start {
		m.stats.QueueWait += uint64(free - start)
		start = free
	}
	m.nextFree[ch] = start + m.cfg.LineOccupancy
	if m.obs != nil {
		m.obs.Span(obs.Track{Group: obs.TrackHBM, ID: ch}, "burst", start, m.cfg.LineOccupancy)
	}
	done := start + m.cfg.Latency
	if m.jitter != nil {
		done += m.jitter(ch)
	}
	return done
}

// Read returns the completion time of a line read issued at now.
func (m *Memory) Read(line memory.Line, now sim.Tick) sim.Tick {
	m.stats.Reads++
	return m.access(line, now)
}

// Write returns the completion time of a line writeback issued at now.
func (m *Memory) Write(line memory.Line, now sim.Tick) sim.Tick {
	m.stats.Writes++
	return m.access(line, now)
}

// Stats returns a copy of the accumulated counters.
func (m *Memory) Stats() Stats { return m.stats }

// Snapshot is a serializable image of the memory state: traffic counters
// plus each channel's next-idle cycle.
type Snapshot struct {
	Stats    Stats
	NextFree []sim.Tick
}

// Snapshot captures the memory state.
func (m *Memory) Snapshot() Snapshot {
	nf := make([]sim.Tick, len(m.nextFree))
	copy(nf, m.nextFree)
	return Snapshot{Stats: m.stats, NextFree: nf}
}
