// Package check is the runtime protocol-invariant sanitizer for the
// coherence substrate. It defines the structured Violation error every
// invariant failure is reported through (replacing the bare panics the
// protocol used to die with), a bounded Trail of recent protocol events
// that gives a violation its context, and a Checker that tracks
// occupancy maxima and audit counters for the end-of-run report.
//
// The audit walks themselves live in internal/chi (they need access to
// the RN cache arrays and HN directories); this package owns the
// vocabulary — what a violation is, which bounds apply, what the report
// looks like — so the machine, the runner and the public facade can
// consume sanitizer results without importing the protocol internals.
package check

import (
	"errors"
	"fmt"
	"strings"

	"dynamo/internal/memory"
	"dynamo/internal/obs"
	"dynamo/internal/sim"
)

// ErrViolation is the sentinel every Violation unwraps to; match with
// errors.Is to distinguish protocol-invariant failures from timeouts and
// configuration errors.
var ErrViolation = errors.New("protocol invariant violated")

// Kind classifies a violation.
type Kind uint8

const (
	// KindProtocol is an impossible protocol transition — a state the
	// flows can never legally reach (the rerouted panic sites).
	KindProtocol Kind = iota
	// KindSWMR is a broken single-writer/multiple-reader invariant: two
	// unique owners, a unique owner coexisting with other copies, or two
	// SharedDirty owners of one line.
	KindSWMR
	// KindDirectory is a directory/cache disagreement on a line with no
	// transaction in flight.
	KindDirectory
	// KindOccupancy is a structural occupancy bound exceeded (runaway
	// MSHR allocation, unbounded HN transaction-table growth).
	KindOccupancy
	// KindLeak is an end-of-run resource leak: open observability
	// transactions, undrained MSHRs, or lines still blocked at a home
	// node after the event queue emptied.
	KindLeak
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindProtocol:
		return "protocol"
	case KindSWMR:
		return "swmr"
	case KindDirectory:
		return "directory"
	case KindOccupancy:
		return "occupancy"
	case KindLeak:
		return "leak"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Violation is a structured protocol-invariant failure: what broke, where
// (line, core, home-node slice, observed transaction), when, and the
// recent protocol events leading up to it. It is an error and unwraps to
// ErrViolation.
type Violation struct {
	Kind Kind
	// Time is the simulated cycle the violation was detected.
	Time sim.Tick
	// Line is the cache line involved (meaningful when HasLine).
	Line    memory.Line
	HasLine bool
	// Core is the RN index involved, -1 when not applicable.
	Core int
	// HN is the home-node slice index involved, -1 when not applicable.
	HN int
	// Txn is the observed transaction, 0 when untracked.
	Txn obs.TxnID
	// Msg describes the specific failure.
	Msg string
	// Trail holds recent protocol events (oldest first) when a Trail was
	// attached to the run.
	Trail []string
}

// Violatef builds a violation at the given time with a formatted message.
// Location fields default to "not applicable"; callers fill the ones they
// know.
func Violatef(kind Kind, now sim.Tick, format string, args ...any) *Violation {
	return &Violation{Kind: kind, Time: now, Core: -1, HN: -1, Msg: fmt.Sprintf(format, args...)}
}

// AtLine records the cache line involved.
func (v *Violation) AtLine(line memory.Line) *Violation {
	v.Line, v.HasLine = line, true
	return v
}

// AtCore records the RN involved.
func (v *Violation) AtCore(core int) *Violation { v.Core = core; return v }

// AtHN records the home-node slice involved.
func (v *Violation) AtHN(hn int) *Violation { v.HN = hn; return v }

// Error renders the violation: one summary line plus the recent-event
// trail, if one was captured.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s violation at cycle %d", v.Kind, v.Time)
	var loc []string
	if v.HasLine {
		loc = append(loc, fmt.Sprintf("line %#x", uint64(v.Line)))
	}
	if v.Core >= 0 {
		loc = append(loc, fmt.Sprintf("core %d", v.Core))
	}
	if v.HN >= 0 {
		loc = append(loc, fmt.Sprintf("hn %d", v.HN))
	}
	if v.Txn != 0 {
		loc = append(loc, fmt.Sprintf("txn %d", v.Txn))
	}
	if len(loc) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(loc, ", "))
	}
	b.WriteString(": ")
	b.WriteString(v.Msg)
	if len(v.Trail) > 0 {
		b.WriteString("\nrecent protocol events (oldest first):")
		for _, ev := range v.Trail {
			b.WriteString("\n  ")
			b.WriteString(ev)
		}
	}
	return b.String()
}

// Unwrap makes errors.Is(v, ErrViolation) hold.
func (v *Violation) Unwrap() error { return ErrViolation }

// LeakViolation summarizes still-open observability transactions after the
// event queue drained, extending the Bus.Leaks audit into a structured
// violation.
func LeakViolation(now sim.Tick, leaks []obs.Leak) *Violation {
	const show = 8
	var parts []string
	for i, l := range leaks {
		if i == show {
			parts = append(parts, fmt.Sprintf("... %d more", len(leaks)-show))
			break
		}
		parts = append(parts, fmt.Sprintf("txn %d (%s, begun at %d)", l.ID, l.Class, l.Begin))
	}
	return Violatef(KindLeak, now, "%d observability transactions never ended: %s",
		len(leaks), strings.Join(parts, ", "))
}

// Trail is a bounded ring of recent protocol-event descriptions. The
// coherence substrate appends to it (when one is attached) at transaction
// receive, release, fill and writeback points; a violation carries the
// ring's contents as its context. The zero value is not usable; construct
// with NewTrail.
type Trail struct {
	buf  []string
	next int
	full bool
}

// DefaultTrailDepth is how many recent events a trail keeps by default.
const DefaultTrailDepth = 32

// NewTrail returns a trail keeping the last depth events (0 selects
// DefaultTrailDepth).
func NewTrail(depth int) *Trail {
	if depth <= 0 {
		depth = DefaultTrailDepth
	}
	return &Trail{buf: make([]string, depth)}
}

// Addf appends one event, stamped with the simulated time.
func (t *Trail) Addf(now sim.Tick, format string, args ...any) {
	t.buf[t.next] = fmt.Sprintf("t=%-8d %s", now, fmt.Sprintf(format, args...))
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
}

// Recent returns the recorded events, oldest first.
func (t *Trail) Recent() []string {
	if t == nil {
		return nil
	}
	var out []string
	if t.full {
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}

// Config tunes the sanitizer. The zero value selects every default, so
// enabling checking is `cfg.Check = &check.Config{}`.
type Config struct {
	// Interval is the number of engine events between full
	// coherence/directory audits. 0 selects DefaultInterval.
	Interval uint64
	// MaxMSHRs bounds outstanding fill transactions per RN (0 selects
	// DefaultMaxMSHRs). The cpu model bounds genuine outstanding requests
	// far below this; exceeding it means fills are leaking.
	MaxMSHRs int
	// MaxBusyLines bounds concurrently blocked lines per HN slice (0
	// selects DefaultMaxBusyLines).
	MaxBusyLines int
	// TrailDepth is the recent-event context depth (0 selects
	// DefaultTrailDepth).
	TrailDepth int
}

// Sanitizer defaults.
const (
	DefaultInterval     = 250_000
	DefaultMaxMSHRs     = 64
	DefaultMaxBusyLines = 512
)

// fill returns cfg with defaults applied.
func (c Config) fill() Config {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.MaxMSHRs == 0 {
		c.MaxMSHRs = DefaultMaxMSHRs
	}
	if c.MaxBusyLines == 0 {
		c.MaxBusyLines = DefaultMaxBusyLines
	}
	if c.TrailDepth == 0 {
		c.TrailDepth = DefaultTrailDepth
	}
	return c
}

// Report summarizes what the sanitizer did during a clean run. It is
// attached to the run result (and so to -json output) when checking was
// enabled; a violated run returns the Violation as its error instead.
type Report struct {
	// Audits counts full coherence/directory audits (periodic plus the
	// final end-of-run pass).
	Audits uint64 `json:"audits"`
	// ReleaseAudits counts single-line audits run when a home node
	// released a line to idle.
	ReleaseAudits uint64 `json:"release_audits"`
	// MaxMSHRs is the highest outstanding-fill count observed at any RN.
	MaxMSHRs int `json:"max_mshrs"`
	// MaxBusyLines is the highest blocked-line count observed at any HN.
	MaxBusyLines int `json:"max_busy_lines"`
	// MaxLineQueue is the longest per-line transaction queue observed at
	// any HN (CHI TBE blocking depth).
	MaxLineQueue int `json:"max_line_queue"`
	// Clean reports that no invariant was violated (always true on a
	// run that returned a result).
	Clean bool `json:"clean"`
}

// Checker accumulates sanitizer state for one run: configured bounds,
// observed occupancy maxima and audit counters. The coherence substrate
// calls the Observe methods from its hot paths; the machine drives the
// periodic audits. All methods are nil-safe so an unchecked run costs one
// nil comparison per call site.
type Checker struct {
	cfg Config
	rep Report
}

// New builds a checker from cfg with defaults applied.
func New(cfg Config) *Checker {
	return &Checker{cfg: cfg.fill()}
}

// Interval returns the configured audit interval in events, or 0 on a nil
// checker (no periodic audits).
func (c *Checker) Interval() uint64 {
	if c == nil {
		return 0
	}
	return c.cfg.Interval
}

// TrailDepth returns the configured trail depth.
func (c *Checker) TrailDepth() int {
	if c == nil {
		return 0
	}
	return c.cfg.TrailDepth
}

// CountAudit records one full audit pass.
func (c *Checker) CountAudit() {
	if c != nil {
		c.rep.Audits++
	}
}

// CountReleaseAudit records one release-time single-line audit.
func (c *Checker) CountReleaseAudit() {
	if c != nil {
		c.rep.ReleaseAudits++
	}
}

// ObserveMSHRs records an RN's outstanding-fill count and returns a
// violation if it exceeds the configured bound.
func (c *Checker) ObserveMSHRs(now sim.Tick, core, n int) *Violation {
	if c == nil {
		return nil
	}
	if n > c.rep.MaxMSHRs {
		c.rep.MaxMSHRs = n
	}
	if n > c.cfg.MaxMSHRs {
		return Violatef(KindOccupancy, now,
			"%d outstanding fills exceed the %d-entry MSHR bound", n, c.cfg.MaxMSHRs).AtCore(core)
	}
	return nil
}

// ObserveBusy records an HN's blocked-line count and the queue depth of
// the line just blocked, and returns a violation if the line bound is
// exceeded.
func (c *Checker) ObserveBusy(now sim.Tick, hn, lines, queue int) *Violation {
	if c == nil {
		return nil
	}
	if lines > c.rep.MaxBusyLines {
		c.rep.MaxBusyLines = lines
	}
	if queue > c.rep.MaxLineQueue {
		c.rep.MaxLineQueue = queue
	}
	if lines > c.cfg.MaxBusyLines {
		return Violatef(KindOccupancy, now,
			"%d blocked lines exceed the %d-line transaction-table bound", lines, c.cfg.MaxBusyLines).AtHN(hn)
	}
	return nil
}

// Report snapshots the sanitizer's counters. Clean is set: a run that got
// far enough to collect a report had no violation.
func (c *Checker) Report() *Report {
	if c == nil {
		return nil
	}
	r := c.rep
	r.Clean = true
	return &r
}
