package check

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dynamo/internal/obs"
	"dynamo/internal/sim"
)

func TestViolationError(t *testing.T) {
	v := Violatef(KindSWMR, 123, "two unique owners of one line").AtLine(0x40).AtCore(2).AtHN(1)
	v.Txn = 7
	v.Trail = []string{"t=100 req", "t=110 snoop"}
	msg := v.Error()
	for _, want := range []string{
		"swmr violation at cycle 123",
		"line 0x40", "core 2", "hn 1", "txn 7",
		"two unique owners",
		"t=100 req", "t=110 snoop",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() missing %q in:\n%s", want, msg)
		}
	}
	if !errors.Is(v, ErrViolation) {
		t.Error("Violation does not unwrap to ErrViolation")
	}
}

func TestViolationOmitsUnknownLocations(t *testing.T) {
	msg := Violatef(KindProtocol, 5, "boom").Error()
	for _, bad := range []string{"core", "hn", "txn", "line"} {
		if strings.Contains(msg, bad) {
			t.Errorf("Error() mentions unset location %q: %s", bad, msg)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindProtocol:  "protocol",
		KindSWMR:      "swmr",
		KindDirectory: "directory",
		KindOccupancy: "occupancy",
		KindLeak:      "leak",
		Kind(99):      "Kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestTrailRing(t *testing.T) {
	tr := NewTrail(3)
	if got := tr.Recent(); len(got) != 0 {
		t.Fatalf("empty trail Recent() = %v", got)
	}
	for i := 1; i <= 5; i++ {
		tr.Addf(sim.Tick(10*i), "ev%d", i)
	}
	got := tr.Recent()
	if len(got) != 3 {
		t.Fatalf("Recent() len = %d, want 3: %v", len(got), got)
	}
	for i, want := range []string{"ev3", "ev4", "ev5"} {
		if !strings.Contains(got[i], want) {
			t.Errorf("Recent()[%d] = %q, want to contain %q", i, got[i], want)
		}
	}
	var nilTrail *Trail
	if nilTrail.Recent() != nil {
		t.Error("nil trail Recent() not nil")
	}
}

func TestCheckerNilSafe(t *testing.T) {
	var c *Checker
	if c.Interval() != 0 || c.TrailDepth() != 0 {
		t.Error("nil checker reports nonzero config")
	}
	c.CountAudit()
	c.CountReleaseAudit()
	if v := c.ObserveMSHRs(1, 0, 1000); v != nil {
		t.Errorf("nil checker ObserveMSHRs = %v", v)
	}
	if v := c.ObserveBusy(1, 0, 1000, 1000); v != nil {
		t.Errorf("nil checker ObserveBusy = %v", v)
	}
	if c.Report() != nil {
		t.Error("nil checker Report not nil")
	}
}

func TestCheckerDefaultsAndBounds(t *testing.T) {
	c := New(Config{})
	if c.Interval() != DefaultInterval {
		t.Errorf("Interval = %d, want %d", c.Interval(), DefaultInterval)
	}
	if c.TrailDepth() != DefaultTrailDepth {
		t.Errorf("TrailDepth = %d, want %d", c.TrailDepth(), DefaultTrailDepth)
	}
	if v := c.ObserveMSHRs(10, 3, DefaultMaxMSHRs); v != nil {
		t.Errorf("at-bound MSHRs flagged: %v", v)
	}
	v := c.ObserveMSHRs(11, 3, DefaultMaxMSHRs+1)
	if v == nil {
		t.Fatal("over-bound MSHRs not flagged")
	}
	if v.Kind != KindOccupancy || v.Core != 3 {
		t.Errorf("violation = kind %v core %d, want occupancy core 3", v.Kind, v.Core)
	}
	if v2 := c.ObserveBusy(12, 1, DefaultMaxBusyLines+5, 9); v2 == nil || v2.HN != 1 {
		t.Errorf("over-bound busy lines: %v", v2)
	}
	rep := c.Report()
	if rep.MaxMSHRs != DefaultMaxMSHRs+1 || rep.MaxBusyLines != DefaultMaxBusyLines+5 || rep.MaxLineQueue != 9 {
		t.Errorf("report maxima wrong: %+v", rep)
	}
	if !rep.Clean {
		t.Error("report not marked clean")
	}
}

func TestLeakViolation(t *testing.T) {
	var leaks []obs.Leak
	for i := 0; i < 12; i++ {
		leaks = append(leaks, obs.Leak{ID: obs.TxnID(i + 1), Class: obs.ClassAMO, Begin: 100})
	}
	v := LeakViolation(5000, leaks)
	if v.Kind != KindLeak {
		t.Errorf("kind = %v, want leak", v.Kind)
	}
	msg := v.Error()
	if !strings.Contains(msg, "12 observability transactions") {
		t.Errorf("missing count in %q", msg)
	}
	if !strings.Contains(msg, "... 4 more") {
		t.Errorf("missing truncation marker in %q", msg)
	}
	if !strings.Contains(msg, fmt.Sprintf("txn %d", leaks[0].ID)) {
		t.Errorf("missing first leak in %q", msg)
	}
}
