package core

import (
	"fmt"
	"strings"

	"dynamo/internal/chi"
	"dynamo/internal/memory"
)

// Section IV performs a design-space exploration over static policies: a
// policy is one near/far decision per coherence state, giving 2^5 = 32
// combinations, of which only those that keep unique states near are
// practical (a far AMO on a UC/UD line triggers the pathological
// requestor-snoop flow of Section II-B). That leaves 2^3 = 8 candidates
// over the SC/SD/I decisions; the paper evaluates the five most
// representative and reports the remaining three behave like close
// neighbours. This file enumerates the space so the harness can evaluate
// all eight.

// DesignSpaceSize is the full static-policy space (2^5).
const DesignSpaceSize = 32

// EnumerateDesignSpace returns all 32 static policies, one per decision
// combination, named by their decision string (e.g. "NN-FNF" for
// UC,UD-SC,SD,I).
func EnumerateDesignSpace() []*Static {
	policies := make([]*Static, 0, DesignSpaceSize)
	for bits := 0; bits < DesignSpaceSize; bits++ {
		p := make([]chi.Placement, 5)
		for i := range p {
			if bits>>i&1 == 1 {
				p[i] = chi.Far
			}
		}
		policies = append(policies, NewStatic(designSpaceName(p), p[0], p[1], p[2], p[3], p[4]))
	}
	return policies
}

func designSpaceName(p []chi.Placement) string {
	var b strings.Builder
	b.WriteString("dse-")
	for i, pl := range p {
		if i == 2 {
			b.WriteByte('-')
		}
		if pl == chi.Near {
			b.WriteByte('n')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

// Practical reports whether a static policy avoids the pathological cases
// Section IV excludes: far execution on lines already held in unique
// state.
func Practical(p *Static) bool {
	tab := p.Table()
	return tab[0] == chi.Near && tab[1] == chi.Near
}

// PracticalDesignSpace returns the eight practical static policies of
// Section IV in a stable order, from all-near (nnn over SC/SD/I) to
// unique-near (fff).
func PracticalDesignSpace() []*Static {
	var out []*Static
	for _, p := range EnumerateDesignSpace() {
		if Practical(p) {
			out = append(out, p)
		}
	}
	if len(out) != 8 {
		panic(fmt.Sprintf("core: practical design space has %d policies, want 8", len(out)))
	}
	return out
}

// CanonicalName maps a design-space policy to its published name when it
// is one of the five Table I policies, or "" otherwise.
func CanonicalName(p *Static) string {
	tab := p.Table()
	for _, named := range []*Static{AllNear(), UniqueNear(), PresentNear(), DirtyNear(), SharedFar()} {
		if named.Table() == tab {
			return named.Name()
		}
	}
	return ""
}

// DecisionString renders a policy row as Table I does ("N N F F F").
func DecisionString(p *Static) string {
	tab := p.Table()
	parts := make([]string, len(tab))
	for i, pl := range tab {
		if pl == chi.Near {
			parts[i] = "N"
		} else {
			parts[i] = "F"
		}
	}
	return strings.Join(parts, " ")
}

// DecideAll returns the policy's decisions over all five states, for
// exhaustive comparisons in tests.
func DecideAll(p *Static) [5]chi.Placement {
	var out [5]chi.Placement
	for i, st := range memory.States {
		out[i] = p.Decide(0, 0, st)
	}
	return out
}
