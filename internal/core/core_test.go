package core

import (
	"testing"
	"testing/quick"

	"dynamo/internal/chi"
	"dynamo/internal/memory"
)

// TestTableI asserts the five static policies against the published table.
// Columns: UC, UD, SC, SD, I. N=Near, F=Far.
func TestTableI(t *testing.T) {
	n, f := chi.Near, chi.Far
	cases := []struct {
		policy *Static
		want   [5]chi.Placement
	}{
		{AllNear(), [5]chi.Placement{n, n, n, n, n}},
		{UniqueNear(), [5]chi.Placement{n, n, f, f, f}},
		{PresentNear(), [5]chi.Placement{n, n, n, n, f}},
		{DirtyNear(), [5]chi.Placement{n, n, f, n, f}},
		{SharedFar(), [5]chi.Placement{n, n, f, f, n}},
	}
	for _, c := range cases {
		if c.policy.Table() != c.want {
			t.Errorf("%s table = %v, want %v", c.policy.Name(), c.policy.Table(), c.want)
		}
		for i, st := range memory.States {
			if got := c.policy.Decide(0, 0x10, st); got != c.want[i] {
				t.Errorf("%s.Decide(%v) = %v, want %v", c.policy.Name(), st, got, c.want[i])
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	if len(Names()) != 8 {
		t.Fatalf("registry has %d policies, want 8: %v", len(Names()), Names())
	}
	for _, name := range Names() {
		p, err := New(name, 4, DefaultAMTConfig())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := New("bogus", 4, DefaultAMTConfig()); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New("all-near", 0, DefaultAMTConfig()); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New("dynamo-metric", 4, AMTConfig{Entries: 100, Ways: 3, CounterMax: 32}); err == nil {
		t.Error("bad AMT geometry accepted")
	}
	if len(StaticNames())+len(DynamicNames()) != 8 {
		t.Error("name groups incomplete")
	}
}

func TestAMTConfigValidate(t *testing.T) {
	bad := []AMTConfig{
		{Entries: 0, Ways: 4, CounterMax: 32},
		{Entries: 128, Ways: 0, CounterMax: 32},
		{Entries: 127, Ways: 4, CounterMax: 32},
		{Entries: 96, Ways: 4, CounterMax: 32}, // 24 sets: not a power of two
		{Entries: 128, Ways: 4, CounterMax: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if err := DefaultAMTConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// TestAMTCost reproduces the Section VI-G estimate: 55 bits per entry,
// padded to 64, so a 128-entry AMT costs 1 KiB per core.
func TestAMTCost(t *testing.T) {
	c := CostOf(DefaultAMTConfig())
	if c.BitsPerEntry != 55 {
		t.Errorf("BitsPerEntry = %d, want 55", c.BitsPerEntry)
	}
	if c.PaddedBitsPerEntry != 64 {
		t.Errorf("PaddedBitsPerEntry = %d, want 64", c.PaddedBitsPerEntry)
	}
	if c.Bytes != 1024 {
		t.Errorf("Bytes = %d, want 1024", c.Bytes)
	}
}

func TestMetricFirstDecisionIsNear(t *testing.T) {
	m := NewMetric(2, DefaultAMTConfig())
	if got := m.Decide(0, 0x42, memory.Invalid); got != chi.Near {
		t.Fatalf("first decision = %v, want near", got)
	}
	near, inv, ok := m.Entry(0, 0x42)
	if !ok || near != 1 || inv != 0 {
		t.Fatalf("new entry = (%d,%d,%v), want (1,0,true)", near, inv, ok)
	}
}

func TestMetricFlipsToFarUnderContention(t *testing.T) {
	m := NewMetric(1, DefaultAMTConfig())
	line := memory.Line(0x99)
	m.Decide(0, line, memory.Invalid) // allocate: near=1, inv=0
	// The directory keeps invalidating the line without near completions.
	for i := 0; i < 5; i++ {
		m.OnInvalidate(0, line)
	}
	if got := m.Decide(0, line, memory.Invalid); got != chi.Far {
		t.Fatalf("contended line predicted %v, want far", got)
	}
	// Near completions flow back: prediction returns to near.
	for i := 0; i < 10; i++ {
		m.OnNearComplete(0, line)
	}
	if got := m.Decide(0, line, memory.SharedClean); got != chi.Near {
		t.Fatalf("reused line predicted %v, want near", got)
	}
}

func TestMetricUniqueAlwaysNear(t *testing.T) {
	m := NewMetric(1, DefaultAMTConfig())
	line := memory.Line(0x7)
	m.Decide(0, line, memory.Invalid)
	for i := 0; i < 8; i++ {
		m.OnInvalidate(0, line)
	}
	if got := m.Decide(0, line, memory.UniqueDirty); got != chi.Near {
		t.Fatalf("unique state predicted %v, want near", got)
	}
}

func TestMetricCounterAging(t *testing.T) {
	cfg := AMTConfig{Entries: 16, Ways: 4, CounterMax: 8}
	m := NewMetric(1, cfg)
	line := memory.Line(0x5)
	m.Decide(0, line, memory.Invalid)
	for i := 0; i < 100; i++ {
		m.OnNearComplete(0, line)
	}
	near, inv, _ := m.Entry(0, line)
	if near >= uint32(cfg.CounterMax) {
		t.Fatalf("counter %d not aged below max %d", near, cfg.CounterMax)
	}
	_ = inv
}

func TestMetricPerCoreIsolation(t *testing.T) {
	m := NewMetric(2, DefaultAMTConfig())
	line := memory.Line(0x123)
	m.Decide(0, line, memory.Invalid)
	for i := 0; i < 5; i++ {
		m.OnInvalidate(0, line)
	}
	// Core 1 has no history; its first decision must be near.
	if got := m.Decide(1, line, memory.Invalid); got != chi.Near {
		t.Fatalf("core 1 predicted %v, want near", got)
	}
	if got := m.Decide(0, line, memory.Invalid); got != chi.Far {
		t.Fatalf("core 0 predicted %v, want far", got)
	}
}

func TestReuseFirstDecisionOptimistic(t *testing.T) {
	r := NewReuse(1, DefaultAMTConfig(), FallbackPresentNear)
	if got := r.Decide(0, 0x1, memory.Invalid); got != chi.Near {
		t.Fatalf("first decision = %v, want near", got)
	}
	conf, ok := r.Confidence(0, 0x1)
	if !ok || conf != 4 {
		t.Fatalf("new entry confidence = (%d,%v), want (4,true)", conf, ok)
	}
}

// drainConfidence simulates repeated no-reuse AMO lifetimes for a line.
func drainConfidence(r *Reuse, line memory.Line, times int) {
	for i := 0; i < times; i++ {
		r.Decide(0, line, memory.Invalid)
		r.OnFill(0, line, true)
		r.OnEvict(0, line) // no intervening hit: reuse bit clear
	}
}

func TestReuseConfidenceDrainsWithoutReuse(t *testing.T) {
	cfg := AMTConfig{Entries: 128, Ways: 4, CounterMax: 4}
	r := NewReuse(1, cfg, FallbackUniqueNear)
	line := memory.Line(0x10)
	drainConfidence(r, line, 4)
	conf, ok := r.Confidence(0, line)
	if !ok || conf != 0 {
		t.Fatalf("confidence = (%d,%v), want (0,true)", conf, ok)
	}
	// Zero confidence: UN fallback sends SC/SD/I far.
	for _, st := range []memory.State{memory.Invalid, memory.SharedClean, memory.SharedDirty} {
		if got := r.Decide(0, line, st); got != chi.Far {
			t.Errorf("UN fallback for %v = %v, want far", st, got)
		}
	}
	if got := r.Decide(0, line, memory.UniqueDirty); got != chi.Near {
		t.Error("unique state not forced near")
	}
}

func TestReusePNFallbackIsConservative(t *testing.T) {
	cfg := AMTConfig{Entries: 128, Ways: 4, CounterMax: 4}
	r := NewReuse(1, cfg, FallbackPresentNear)
	line := memory.Line(0x20)
	drainConfidence(r, line, 4)
	if got := r.Decide(0, line, memory.Invalid); got != chi.Far {
		t.Errorf("PN fallback for I = %v, want far", got)
	}
	// Present Near keeps shared states near even at zero confidence.
	for _, st := range []memory.State{memory.SharedClean, memory.SharedDirty} {
		if got := r.Decide(0, line, st); got != chi.Near {
			t.Errorf("PN fallback for %v = %v, want near", st, got)
		}
	}
}

func TestReuseHitRestoresConfidence(t *testing.T) {
	cfg := AMTConfig{Entries: 128, Ways: 4, CounterMax: 4}
	r := NewReuse(1, cfg, FallbackUniqueNear)
	line := memory.Line(0x30)
	drainConfidence(r, line, 4)
	// Reused lifetimes rebuild confidence.
	for i := 0; i < 3; i++ {
		r.Decide(0, line, memory.Invalid)
		r.OnFill(0, line, true)
		r.OnHit(0, line)
		r.OnInvalidate(0, line)
	}
	conf, _ := r.Confidence(0, line)
	if conf != 3 {
		t.Fatalf("confidence = %d, want 3", conf)
	}
	if got := r.Decide(0, line, memory.SharedClean); got != chi.Near {
		t.Fatalf("restored line predicted %v, want near", got)
	}
}

func TestReuseGlobalRatioSteersNewEntries(t *testing.T) {
	r := NewReuse(1, DefaultAMTConfig(), FallbackPresentNear)
	// Create a long streaming history: many AMO fills, none reused. Use
	// distinct lines so each is a fresh AMT entry.
	for i := 0; i < 64; i++ {
		line := memory.Line(0x1000 + i)
		r.Decide(0, line, memory.Invalid)
		r.OnFill(0, line, true)
		r.OnEvict(0, line)
	}
	fills, reused := r.GlobalReuse(0)
	if fills != 64 || reused != 0 {
		t.Fatalf("global reuse = (%d,%d)", fills, reused)
	}
	// A brand-new line is now predicted far on first touch.
	if got := r.Decide(0, memory.Line(0x9999), memory.Invalid); got != chi.Far {
		t.Fatalf("streaming-phase first decision = %v, want far", got)
	}
}

func TestReuseGlobalRatioWarmupIsNear(t *testing.T) {
	r := NewReuse(1, DefaultAMTConfig(), FallbackPresentNear)
	// With fewer than 16 observed fills the first decision stays near.
	for i := 0; i < 10; i++ {
		line := memory.Line(0x2000 + i)
		r.Decide(0, line, memory.Invalid)
		r.OnFill(0, line, true)
		r.OnEvict(0, line)
	}
	if got := r.Decide(0, memory.Line(0x8888), memory.Invalid); got != chi.Near {
		t.Fatalf("warmup first decision = %v, want near", got)
	}
}

func TestReuseNonAMOFillsIgnored(t *testing.T) {
	r := NewReuse(1, DefaultAMTConfig(), FallbackPresentNear)
	r.OnFill(0, 0x1, false)
	fills, _ := r.GlobalReuse(0)
	if fills != 0 {
		t.Fatalf("non-AMO fill counted: %d", fills)
	}
}

// Property: confidence always stays within [0, CounterMax] under arbitrary
// event sequences, and unique states always decide near.
func TestReuseBoundsProperty(t *testing.T) {
	f := func(events []uint8) bool {
		cfg := AMTConfig{Entries: 32, Ways: 4, CounterMax: 8}
		r := NewReuse(2, cfg, FallbackUniqueNear)
		for _, ev := range events {
			core := int(ev) & 1
			line := memory.Line((ev >> 1) & 7)
			switch (ev >> 4) % 6 {
			case 0:
				st := memory.States[int(ev>>5)%len(memory.States)]
				got := r.Decide(core, line, st)
				if st.Unique() && got != chi.Near {
					return false
				}
			case 1:
				r.OnFill(core, line, true)
			case 2:
				r.OnHit(core, line)
			case 3:
				r.OnEvict(core, line)
			case 4:
				r.OnInvalidate(core, line)
			case 5:
				r.OnNearComplete(core, line)
			}
			if c, ok := r.Confidence(core, line); ok && (c < 0 || c > cfg.CounterMax) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Metric counters never exceed CounterMax after any event stream.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(events []uint8) bool {
		cfg := AMTConfig{Entries: 32, Ways: 4, CounterMax: 8}
		m := NewMetric(2, cfg)
		for _, ev := range events {
			core := int(ev) & 1
			line := memory.Line((ev >> 1) & 7)
			switch (ev >> 4) % 3 {
			case 0:
				m.Decide(core, line, memory.Invalid)
			case 1:
				m.OnNearComplete(core, line)
			case 2:
				m.OnInvalidate(core, line)
			}
			if n, i, ok := m.Entry(core, line); ok &&
				(n > uint32(cfg.CounterMax) || i > uint32(cfg.CounterMax)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReuseDecide(b *testing.B) {
	r := NewReuse(1, DefaultAMTConfig(), FallbackPresentNear)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Decide(0, memory.Line(i%256), memory.SharedClean)
	}
}
