package core

import "dynamo/internal/memory"

// This file captures serializable snapshots of predictor state for
// checkpointing. Entries are emitted in cache.Range order (set-major,
// MRU-first), which encodes AMT replacement state canonically.

// ReuseEntryState is one AMT entry of the reuse predictor.
type ReuseEntryState struct {
	Line       memory.Line
	Confidence uint8
	ReuseBit   bool
	Tracking   bool
}

// ReuseCoreState is one core's reuse-predictor state.
type ReuseCoreState struct {
	AMT       []ReuseEntryState
	AMOFills  uint64
	AMOReused uint64
}

// CheckpointState returns a serializable image of the predictor, consumed
// by internal/checkpoint via the machine's optional-interface hook.
func (r *Reuse) CheckpointState() any {
	cores := make([]ReuseCoreState, len(r.cores))
	for i := range r.cores {
		c := &r.cores[i]
		cs := ReuseCoreState{AMOFills: c.amoFills, AMOReused: c.amoReused}
		c.amt.Range(func(k uint64, e *reuseEntry) bool {
			cs.AMT = append(cs.AMT, ReuseEntryState{
				Line:       memory.Line(k),
				Confidence: e.confidence,
				ReuseBit:   e.reuseBit,
				Tracking:   e.tracking,
			})
			return true
		})
		cores[i] = cs
	}
	return cores
}

// MetricEntryState is one AMT entry of the metric predictor.
type MetricEntryState struct {
	Line          memory.Line
	NearCompleted uint32
	Invalidations uint32
}

// CheckpointState returns a serializable image of the predictor, consumed
// by internal/checkpoint via the machine's optional-interface hook.
func (m *Metric) CheckpointState() any {
	tables := make([][]MetricEntryState, len(m.tables))
	for i, t := range m.tables {
		var es []MetricEntryState
		t.Range(func(k uint64, e *metricEntry) bool {
			es = append(es, MetricEntryState{
				Line:          memory.Line(k),
				NearCompleted: e.nearCompleted,
				Invalidations: e.invalidations,
			})
			return true
		})
		tables[i] = es
	}
	return tables
}
