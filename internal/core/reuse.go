package core

import (
	"fmt"

	"dynamo/internal/cache"
	"dynamo/internal/chi"
	"dynamo/internal/memory"
	"dynamo/internal/obs"
)

// Fallback selects the static policy a DynAMO-Reuse predictor applies to
// lines whose reuse confidence has drained to zero (Section V-C).
type Fallback uint8

const (
	// FallbackUniqueNear is the aggressive variant (DynAMO-Reuse-UN):
	// zero-confidence lines execute far for I, SC and SD states.
	FallbackUniqueNear Fallback = iota
	// FallbackPresentNear is the conservative variant (DynAMO-Reuse-PN):
	// zero-confidence lines execute far only when invalid.
	FallbackPresentNear
)

// reuseEntry is one AMT entry of the reuse-pattern predictor.
type reuseEntry struct {
	confidence uint8
	reuseBit   bool
	// tracking is set while the line sits in the L1 after a near-AMO fill,
	// i.e. while the reuse bit is live.
	tracking bool
}

// reuseCore is the per-core predictor state: the AMT plus the global
// reuse heuristic that steers first decisions for unseen lines.
type reuseCore struct {
	amt *cache.SetAssoc[reuseEntry]
	// amoFills counts lines brought into the L1 by near AMOs; amoReused
	// counts how many of those were reused before leaving. Their ratio is
	// the global reuse view used for the first decision of new entries.
	amoFills  uint64
	amoReused uint64
}

// Reuse is the second DynAMO design (Section V-C): it learns, per cache
// line, whether lines fetched by near AMOs are reused in the L1D before
// being evicted or invalidated, and steers AMOs on no-reuse lines to the
// home node. The fallback policy distinguishes the UN and PN variants.
type Reuse struct {
	cfg      AMTConfig
	fallback Fallback
	cores    []reuseCore
	un       *Static
	pn       *Static
	obs      *obs.Bus
}

var _ chi.Policy = (*Reuse)(nil)

// NewReuse builds a reuse-pattern predictor for a system with the given
// core count.
func NewReuse(cores int, cfg AMTConfig, fb Fallback) *Reuse {
	r := &Reuse{cfg: cfg, fallback: fb, un: UniqueNear(), pn: PresentNear()}
	for i := 0; i < cores; i++ {
		r.cores = append(r.cores, reuseCore{
			amt: cache.NewSetAssoc[reuseEntry](cfg.Entries/cfg.Ways, cfg.Ways),
		})
	}
	return r
}

// AttachObs points the predictor at an observability bus, which then
// receives AMT telemetry counters (pred.amt.*, pred.near*, pred.far).
func (r *Reuse) AttachObs(b *obs.Bus) { r.obs = b }

// Name implements chi.Policy.
func (r *Reuse) Name() string {
	if r.fallback == FallbackUniqueNear {
		return "dynamo-reuse-un"
	}
	return "dynamo-reuse-pn"
}

// fallbackDecide applies the configured zero-confidence static policy.
func (r *Reuse) fallbackDecide(line memory.Line, st memory.State) chi.Placement {
	if r.fallback == FallbackUniqueNear {
		return r.un.Decide(0, line, st)
	}
	return r.pn.Decide(0, line, st)
}

// Decide implements chi.Policy.
func (r *Reuse) Decide(core int, line memory.Line, st memory.State) chi.Placement {
	if st.Unique() {
		return chi.Near
	}
	c := &r.cores[core]
	if e, ok := c.amt.Lookup(uint64(line)); ok {
		r.obs.Count("pred.amt.hit", 1)
		if e.confidence > 0 {
			r.obs.Count("pred.near", 1)
			return chi.Near
		}
		return r.counted(r.fallbackDecide(line, st))
	}
	r.obs.Count("pred.amt.miss", 1)
	// New entry: the first decision comes from the global reuse ratio,
	// filtering streaming/thrashing patterns that would otherwise pollute
	// the L1. Near-decided entries start with a short probation instead
	// of a saturated counter so per-line no-reuse evidence flips them to
	// far within a few lifetimes; far-decided entries start drained and
	// stay far until the line shows up present (the PN fallback) or the
	// entry ages out of the AMT.
	if c.amoFills >= 16 && c.amoReused*2 < c.amoFills {
		r.insert(c, line, reuseEntry{confidence: 0})
		r.obs.Count("pred.far", 1)
		return chi.Far
	}
	r.insert(c, line, reuseEntry{confidence: r.probation()})
	r.obs.Count("pred.near", 1)
	return chi.Near
}

// counted tallies a fallback decision under the pred.near/pred.far counters.
func (r *Reuse) counted(p chi.Placement) chi.Placement {
	if p == chi.Near {
		r.obs.Count("pred.near", 1)
	} else {
		r.obs.Count("pred.far", 1)
	}
	return p
}

// insert allocates an AMT entry, counting capacity evictions.
func (r *Reuse) insert(c *reuseCore, line memory.Line, e reuseEntry) {
	if _, _, evicted := c.amt.Insert(uint64(line), e); evicted {
		r.obs.Count("pred.amt.evict", 1)
	}
}

// OnFill implements chi.Policy: a near-AMO fill arms the reuse bit.
func (r *Reuse) OnFill(core int, line memory.Line, byAMO bool) {
	if !byAMO {
		return
	}
	c := &r.cores[core]
	c.amoFills++
	if c.amoFills >= 1<<32 {
		// Age the global ratio so early phases don't dominate forever.
		c.amoFills >>= 1
		c.amoReused >>= 1
	}
	e, ok := c.amt.Peek(uint64(line))
	if !ok {
		// The line's entry may have been displaced from the AMT between
		// the decision and the fill; re-allocate so learning continues.
		r.insert(c, line, reuseEntry{confidence: r.probation(), tracking: true})
		return
	}
	e.reuseBit = false
	e.tracking = true
}

// OnHit implements chi.Policy: any other access touching the line while it
// lives in the L1 marks it as reused.
func (r *Reuse) OnHit(core int, line memory.Line) {
	c := &r.cores[core]
	e, ok := c.amt.Peek(uint64(line))
	if !ok || !e.tracking {
		return
	}
	if !e.reuseBit {
		e.reuseBit = true
		c.amoReused++
	}
}

// lineLeft updates confidence when a tracked line leaves the L1.
func (r *Reuse) lineLeft(core int, line memory.Line) {
	c := &r.cores[core]
	e, ok := c.amt.Peek(uint64(line))
	if !ok || !e.tracking {
		return
	}
	e.tracking = false
	if e.reuseBit {
		r.obs.Count("pred.near.reused", 1)
		if e.confidence == 0 {
			// Crossing zero confidence changes the line's placement; the
			// flip counter makes predictor churn visible in interval
			// telemetry (warm-up, phase changes).
			r.obs.Count("pred.flip", 1)
		}
		if int(e.confidence) < r.cfg.CounterMax {
			e.confidence++
		}
	} else {
		r.obs.Count("pred.near.no-reuse", 1)
		if e.confidence == 1 {
			r.obs.Count("pred.flip", 1)
		}
		if e.confidence > 0 {
			e.confidence--
		}
	}
}

// OnEvict implements chi.Policy.
func (r *Reuse) OnEvict(core int, line memory.Line) { r.lineLeft(core, line) }

// OnInvalidate implements chi.Policy.
func (r *Reuse) OnInvalidate(core int, line memory.Line) { r.lineLeft(core, line) }

// probation is the confidence granted to newly allocated near-predicted
// entries: enough lifetimes for genuine reuse to assert itself, few enough
// that streaming lines flip to far quickly.
func (r *Reuse) probation() uint8 {
	if r.cfg.CounterMax < 4 {
		return uint8(r.cfg.CounterMax)
	}
	return 4
}

// OnNearComplete implements chi.Policy. The reuse design learns from fills
// and hits rather than completions.
func (r *Reuse) OnNearComplete(int, memory.Line) {}

// Confidence exposes a line's confidence counter for tests.
func (r *Reuse) Confidence(core int, line memory.Line) (int, bool) {
	e, ok := r.cores[core].amt.Peek(uint64(line))
	if !ok {
		return 0, false
	}
	return int(e.confidence), true
}

// GlobalReuse exposes the per-core global reuse counters for tests.
func (r *Reuse) GlobalReuse(core int) (fills, reused uint64) {
	return r.cores[core].amoFills, r.cores[core].amoReused
}

// String describes the predictor configuration.
func (r *Reuse) String() string {
	return fmt.Sprintf("%s(entries=%d ways=%d counter=%d)", r.Name(), r.cfg.Entries, r.cfg.Ways, r.cfg.CounterMax)
}
