package core

import (
	"dynamo/internal/chi"
	"dynamo/internal/memory"
)

// Static is a placement policy that depends only on the current coherence
// state of the accessed line, exactly as in Table I of the paper. The
// decision table is indexed by [UC, UD, SC, SD, I].
type Static struct {
	name  string
	table [5]chi.Placement
}

var _ chi.Policy = (*Static)(nil)

// NewStatic builds a custom static policy from a Table I-style row. The
// substrate never consults policies for unique states, but the full row is
// kept so tests can assert the published tables.
func NewStatic(name string, uc, ud, sc, sd, i chi.Placement) *Static {
	return &Static{name: name, table: [5]chi.Placement{uc, ud, sc, sd, i}}
}

// AllNear executes every AMO at the L1D. This is the default policy of SoCs
// without far-AMO support and the baseline of every experiment.
func AllNear() *Static {
	return NewStatic("all-near", chi.Near, chi.Near, chi.Near, chi.Near, chi.Near)
}

// UniqueNear (existing, Neoverse) executes far unless the line is already
// unique in the L1D.
func UniqueNear() *Static {
	return NewStatic("unique-near", chi.Near, chi.Near, chi.Far, chi.Far, chi.Far)
}

// PresentNear (proposed) executes near whenever the line is present in any
// state, and far only on invalid lines. The paper finds it is the best
// static policy.
func PresentNear() *Static {
	return NewStatic("present-near", chi.Near, chi.Near, chi.Near, chi.Near, chi.Far)
}

// DirtyNear (proposed) executes near for unique and SharedDirty lines —
// the last writer of a producer-consumer line is likely the next writer.
func DirtyNear() *Static {
	return NewStatic("dirty-near", chi.Near, chi.Near, chi.Far, chi.Near, chi.Far)
}

// SharedFar (proposed) executes far only for shared states, fetching
// invalid lines on the assumption they were merely evicted.
func SharedFar() *Static {
	return NewStatic("shared-far", chi.Near, chi.Near, chi.Far, chi.Far, chi.Near)
}

// Name implements chi.Policy.
func (s *Static) Name() string { return s.name }

// Decide implements chi.Policy by indexing the Table I row.
func (s *Static) Decide(_ int, _ memory.Line, st memory.State) chi.Placement {
	return s.table[stateIndex(st)]
}

// Table returns the policy's decision row in Table I column order
// (UC, UD, SC, SD, I).
func (s *Static) Table() [5]chi.Placement { return s.table }

// Static policies learn nothing from cache events.

func (s *Static) OnNearComplete(int, memory.Line) {}
func (s *Static) OnFill(int, memory.Line, bool)   {}
func (s *Static) OnHit(int, memory.Line)          {}
func (s *Static) OnEvict(int, memory.Line)        {}
func (s *Static) OnInvalidate(int, memory.Line)   {}
