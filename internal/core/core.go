// Package core implements the DynAMO paper's contribution: placement
// policies for atomic memory operations. It provides the five static
// policies of Table I (two existing in Neoverse hardware, three proposed by
// the paper) and the DynAMO dynamic predictors of Section V (metric-based
// and the two reuse-pattern variants), backed by the per-core set-associative
// AMO Metadata Table (AMT).
//
// Every policy implements chi.Policy. The coherence substrate consults the
// policy only when the line is not already held in Unique state — unique
// blocks always execute near, since a far AMO would force the home node to
// snoop the requestor itself (the pathological flow of Section II-B).
package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"dynamo/internal/chi"
	"dynamo/internal/memory"
)

// AMTConfig sizes the AMO Metadata Table of the DynAMO predictors.
type AMTConfig struct {
	// Entries is the total entry count (paper default: 128).
	Entries int
	// Ways is the associativity (paper default: 4).
	Ways int
	// CounterMax is the saturation value of the reuse-confidence counter
	// (paper default: 32, i.e. a 5-bit counter).
	CounterMax int
}

// DefaultAMTConfig is the configuration the paper selects in Section VI-F.
func DefaultAMTConfig() AMTConfig {
	return AMTConfig{Entries: 128, Ways: 4, CounterMax: 32}
}

// Validate reports configuration errors.
func (c AMTConfig) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("core: bad AMT geometry %d entries / %d ways", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("core: AMT sets %d not a power of two", sets)
	}
	if c.CounterMax <= 0 {
		return fmt.Errorf("core: AMT counter max %d", c.CounterMax)
	}
	return nil
}

// AMTCost reports the hardware cost of an AMT per core, reproducing the
// Section VI-G estimate: 49 tag bits plus the reuse-confidence counter and
// the reuse bit per entry, padded to a power-of-two entry size.
type AMTCost struct {
	BitsPerEntry       int
	PaddedBitsPerEntry int
	Bytes              int
}

// CostOf computes the storage cost of cfg.
func CostOf(cfg AMTConfig) AMTCost {
	counterBits := bits.Len(uint(cfg.CounterMax - 1))
	raw := 49 + counterBits + 1 // tag + confidence + reuse bit
	padded := 1
	for padded < raw {
		padded <<= 1
	}
	return AMTCost{
		BitsPerEntry:       raw,
		PaddedBitsPerEntry: padded,
		Bytes:              cfg.Entries * padded / 8,
	}
}

// Builder constructs a policy for a system with the given core count.
type Builder func(cores int, amt AMTConfig) chi.Policy

var registry = map[string]Builder{
	"all-near":        func(int, AMTConfig) chi.Policy { return AllNear() },
	"unique-near":     func(int, AMTConfig) chi.Policy { return UniqueNear() },
	"present-near":    func(int, AMTConfig) chi.Policy { return PresentNear() },
	"dirty-near":      func(int, AMTConfig) chi.Policy { return DirtyNear() },
	"shared-far":      func(int, AMTConfig) chi.Policy { return SharedFar() },
	"dynamo-metric":   func(c int, a AMTConfig) chi.Policy { return NewMetric(c, a) },
	"dynamo-reuse-un": func(c int, a AMTConfig) chi.Policy { return NewReuse(c, a, FallbackUniqueNear) },
	"dynamo-reuse-pn": func(c int, a AMTConfig) chi.Policy { return NewReuse(c, a, FallbackPresentNear) },
}

// Names returns the registered policy names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StaticNames returns the five static policy names in Table I order.
func StaticNames() []string {
	return []string{"all-near", "unique-near", "present-near", "dirty-near", "shared-far"}
}

// DynamicNames returns the DynAMO predictor names in paper order.
func DynamicNames() []string {
	return []string{"dynamo-metric", "dynamo-reuse-un", "dynamo-reuse-pn"}
}

// ErrUnknownPolicy reports a policy name absent from the registry. It is
// re-exported at the package dynamo surface; match with errors.Is.
var ErrUnknownPolicy = errors.New("unknown policy")

// New builds the named policy for a system with cores cores. It returns an
// error for unknown names or invalid AMT configurations.
func New(name string, cores int, amt AMTConfig) (chi.Policy, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: %w %q (have %v)", ErrUnknownPolicy, name, Names())
	}
	if err := amt.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("core: %d cores", cores)
	}
	return b(cores, amt), nil
}

// stateIndex maps a coherence state to its Table I column.
func stateIndex(st memory.State) int {
	switch st {
	case memory.UniqueClean:
		return 0
	case memory.UniqueDirty:
		return 1
	case memory.SharedClean:
		return 2
	case memory.SharedDirty:
		return 3
	case memory.Invalid:
		return 4
	}
	panic(fmt.Sprintf("core: unknown state %v", st))
}
