package core

import (
	"dynamo/internal/cache"
	"dynamo/internal/chi"
	"dynamo/internal/memory"
	"dynamo/internal/obs"
)

// metricEntry holds the per-line statistics of the metric-based predictor:
// how often the line completed a near AMO at this core versus how often the
// directory invalidated it.
type metricEntry struct {
	nearCompleted uint32
	invalidations uint32
}

// Metric is the first DynAMO design (Section V-B): it predicts near when
// the ratio of completed near AMOs to received invalidations is high (low
// contention), far otherwise. Counters are halved when either saturates, a
// cheap aging scheme that keeps predictions responsive across program
// phases and avoids overflow.
type Metric struct {
	cfg    AMTConfig
	tables []*cache.SetAssoc[metricEntry] // one AMT per core
	obs    *obs.Bus
}

var _ chi.Policy = (*Metric)(nil)

// NewMetric builds the metric-based predictor for a system with the given
// core count.
func NewMetric(cores int, cfg AMTConfig) *Metric {
	m := &Metric{cfg: cfg}
	for i := 0; i < cores; i++ {
		m.tables = append(m.tables, cache.NewSetAssoc[metricEntry](cfg.Entries/cfg.Ways, cfg.Ways))
	}
	return m
}

// AttachObs points the predictor at an observability bus, which then
// receives AMT telemetry counters (pred.amt.*, pred.near, pred.far,
// pred.metric.*).
func (m *Metric) AttachObs(b *obs.Bus) { m.obs = b }

// Name implements chi.Policy.
func (m *Metric) Name() string { return "dynamo-metric" }

// Decide implements chi.Policy. A predicted-near line behaves like All
// Near; a predicted-far line behaves like Unique Near (Section V-B).
func (m *Metric) Decide(core int, line memory.Line, st memory.State) chi.Placement {
	if st.Unique() {
		return chi.Near
	}
	t := m.tables[core]
	e, ok := t.Lookup(uint64(line))
	if !ok {
		// First touch: near AMOs perform well in most cases, so the first
		// prediction is always near, recorded optimistically.
		m.obs.Count("pred.amt.miss", 1)
		if _, _, evicted := t.Insert(uint64(line), metricEntry{nearCompleted: 1}); evicted {
			m.obs.Count("pred.amt.evict", 1)
		}
		m.obs.Count("pred.near", 1)
		return chi.Near
	}
	m.obs.Count("pred.amt.hit", 1)
	if e.nearCompleted >= e.invalidations {
		m.obs.Count("pred.near", 1)
		return chi.Near
	}
	m.obs.Count("pred.far", 1)
	return chi.Far
}

// bump increments one counter of an entry, halving both on saturation.
func (m *Metric) bump(core int, line memory.Line, inv bool) {
	e, ok := m.tables[core].Peek(uint64(line))
	if !ok {
		return
	}
	if inv {
		m.obs.Count("pred.metric.invalidation", 1)
		e.invalidations++
	} else {
		m.obs.Count("pred.metric.near-complete", 1)
		e.nearCompleted++
	}
	if e.invalidations >= uint32(m.cfg.CounterMax) || e.nearCompleted >= uint32(m.cfg.CounterMax) {
		e.invalidations >>= 1
		e.nearCompleted >>= 1
	}
}

// Age halves every counter of every core's table — the paper's periodic
// right-shift that keeps predictions responsive across program phases.
// The machine invokes it on a fixed cycle period.
func (m *Metric) Age() {
	for _, t := range m.tables {
		t.Range(func(_ uint64, e *metricEntry) bool {
			e.nearCompleted >>= 1
			e.invalidations >>= 1
			return true
		})
	}
}

// OnNearComplete implements chi.Policy.
func (m *Metric) OnNearComplete(core int, line memory.Line) { m.bump(core, line, false) }

// OnInvalidate implements chi.Policy.
func (m *Metric) OnInvalidate(core int, line memory.Line) { m.bump(core, line, true) }

// The metric design ignores fill, hit and eviction events.

func (m *Metric) OnFill(int, memory.Line, bool) {}
func (m *Metric) OnHit(int, memory.Line)        {}
func (m *Metric) OnEvict(int, memory.Line)      {}

// Entry exposes the counters of a line's AMT entry for tests.
func (m *Metric) Entry(core int, line memory.Line) (near, inv uint32, ok bool) {
	e, found := m.tables[core].Peek(uint64(line))
	if !found {
		return 0, 0, false
	}
	return e.nearCompleted, e.invalidations, true
}
