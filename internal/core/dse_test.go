package core

import (
	"testing"

	"dynamo/internal/chi"
)

func TestDesignSpaceEnumeration(t *testing.T) {
	all := EnumerateDesignSpace()
	if len(all) != 32 {
		t.Fatalf("%d policies, want 32", len(all))
	}
	seen := map[[5]chi.Placement]bool{}
	for _, p := range all {
		tab := p.Table()
		if seen[tab] {
			t.Fatalf("duplicate policy %v", tab)
		}
		seen[tab] = true
		if got := DecideAll(p); got != tab {
			t.Fatalf("Decide disagrees with Table: %v vs %v", got, tab)
		}
	}
}

func TestPracticalDesignSpace(t *testing.T) {
	practical := PracticalDesignSpace()
	if len(practical) != 8 {
		t.Fatalf("%d practical policies, want 8", len(practical))
	}
	for _, p := range practical {
		tab := p.Table()
		if tab[0] != chi.Near || tab[1] != chi.Near {
			t.Fatalf("practical policy %s runs far on unique states", p.Name())
		}
	}
	// The five Table I policies are all inside the practical space.
	names := map[string]bool{}
	for _, p := range practical {
		if n := CanonicalName(p); n != "" {
			names[n] = true
		}
	}
	for _, want := range []string{"all-near", "unique-near", "present-near", "dirty-near", "shared-far"} {
		if !names[want] {
			t.Errorf("practical space missing %s", want)
		}
	}
	// And exactly three unnamed candidates remain, as the paper says.
	if got := 8 - len(names); got != 3 {
		t.Errorf("%d unnamed practical policies, want 3", got)
	}
}

func TestDecisionString(t *testing.T) {
	if got := DecisionString(UniqueNear()); got != "N N F F F" {
		t.Fatalf("DecisionString = %q", got)
	}
}

func TestDesignSpacePoliciesRunnable(t *testing.T) {
	// Every practical policy must satisfy chi.Policy and answer near for
	// unique states through the substrate's contract.
	for _, p := range PracticalDesignSpace() {
		var _ chi.Policy = p
		if p.Name() == "" {
			t.Fatal("unnamed policy")
		}
	}
}
