// Package faultio injects deterministic storage and network faults into
// the control plane's I/O seams, one layer up from internal/chaos (which
// perturbs the simulated protocol): the same seeded-splitmix64 discipline,
// applied to the failure modes a real fleet sees — full disks, torn
// renames, corrupt reads, and flaky HTTP transports.
//
// Two planes are wrapped:
//
//   - Disk: the FS interface is the runner cache's (and the sweep
//     service's) file plane. Injector.WrapFS returns an FS that fails
//     writes with ENOSPC, persists torn (truncated) documents, and
//     truncates reads — every corruption a crash-mid-write or a bad
//     sector produces, compressed into a repeatable seed.
//   - Network: Injector.WrapHandler wraps an http.Handler with delayed,
//     dropped, and duplicated responses. A "dropped" response aborts the
//     connection after the handler may or may not have run, which is
//     exactly the client-visible shape of a server killed mid-request.
//
// Every injection decrements a shared budget (Options.Budget), so a CI
// soak under nonzero rates still converges: once the budget is spent the
// wrapped planes are transparent. Injections are counted per class and
// exported through Register on a telemetry registry as
// dynamo_faultio_injected_total{plane,kind}.
package faultio

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"syscall"
	"time"

	"dynamo/internal/telemetry"
)

// FS is the file plane beneath the persistent caches: everything the
// runner's store and the service's sweep journal do to disk, narrowed to
// the four operations that matter for crash-consistency. The OS
// implementation is the real, fsync-hardened filesystem; Injector.WrapFS
// layers deterministic faults over any implementation.
type FS interface {
	// ReadFile returns the named file's contents.
	ReadFile(path string) ([]byte, error)
	// WriteFileAtomic durably writes data to path via a temp file in dir
	// plus a rename: a crash at any instant leaves either the old file or
	// the complete new one, never a partial or empty rename target.
	WriteFileAtomic(dir, path string, data []byte) error
	// Rename atomically renames a file (quarantine-marker claims).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
}

// OS is the real filesystem. Its WriteFileAtomic closes the
// crash-durability hole of a bare temp-write-rename: the temp file is
// fsynced before the rename (so the rename can never land ahead of the
// data it names) and the directory is fsynced after it (so the rename
// itself survives a crash), which is the ext4/xfs-portable recipe for
// "rename as commit".
type OS struct{}

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// WriteFileAtomic implements FS with full fsync discipline.
func (OS) WriteFileAtomic(dir, path string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	// Flush file data before the rename publishes the name: without this
	// a crash after the rename but before writeback can surface an
	// empty-but-renamed entry.
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// Persist the rename itself (the directory entry). Best-effort: some
	// filesystems reject directory fsync, and the data above is already
	// safe relative to the rename.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Fault classes, as telemetry label values and Counts keys.
const (
	KindENOSPC  = "enospc"  // write fails with syscall.ENOSPC
	KindTorn    = "torn"    // write persists a truncated document
	KindCorrupt = "corrupt" // read returns truncated bytes
	KindDelay   = "delay"   // response delayed up to MaxDelay
	KindDrop    = "drop"    // connection aborted before the handler runs
	KindDup     = "dup"     // handler runs, then the connection aborts —
	// the client retries a request that already took effect
)

// Options configures an Injector. All rates are permille (0-1000) drawn
// per operation from one seeded stream per plane.
type Options struct {
	// Seed selects the deterministic fault schedule; the same seed over
	// the same single-threaded operation sequence injects identically.
	Seed int64
	// Budget bounds total injections across all classes; once spent the
	// injector is transparent. Zero or negative means unlimited.
	Budget int

	// Disk-plane rates.
	ENOSPCPermille  int
	TornPermille    int
	CorruptPermille int

	// Network-plane rates.
	DelayPermille int
	DropPermille  int
	DupPermille   int
	// MaxDelay bounds an injected response delay (default 25ms).
	MaxDelay time.Duration
}

// Level returns a canned fault mix: level 1 is mild (sub-percent rates),
// each further level roughly doubles every rate. The soak gate runs
// level 2 with a bounded budget.
func Level(seed int64, level, budget int) Options {
	if level < 1 {
		level = 1
	}
	mul := 1 << (level - 1)
	clamp := func(p int) int {
		if p > 500 {
			return 500
		}
		return p
	}
	return Options{
		Seed:            seed,
		Budget:          budget,
		ENOSPCPermille:  clamp(8 * mul),
		TornPermille:    clamp(8 * mul),
		CorruptPermille: clamp(8 * mul),
		DelayPermille:   clamp(20 * mul),
		DropPermille:    clamp(10 * mul),
		DupPermille:     clamp(6 * mul),
		MaxDelay:        25 * time.Millisecond,
	}
}

// stream is a splitmix64 generator, one per plane so disk traffic does
// not perturb the network schedule (same construction as internal/chaos).
type stream struct{ state uint64 }

func newStream(seed int64, salt uint64) *stream {
	return &stream{state: uint64(seed)*0x9e3779b97f4a7c15 + salt}
}

func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *stream) below(n uint64) uint64 { return s.next() % n }

// Injector draws per-operation fault decisions from seeded streams and
// tallies what it injected. The zero value is unusable; build with New.
// A nil *Injector is a valid, permanently transparent injector.
type Injector struct {
	opts Options

	mu     sync.Mutex
	disk   *stream
	net    *stream
	budget int // remaining; -1 = unlimited
	counts map[string]uint64

	telemetry map[string]*telemetry.Counter // nil until Register
}

// New builds an injector from opts.
func New(opts Options) *Injector {
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 25 * time.Millisecond
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = -1
	}
	return &Injector{
		opts:   opts,
		disk:   newStream(opts.Seed, 0xd15c),
		net:    newStream(opts.Seed, 0x4e77),
		budget: budget,
		counts: make(map[string]uint64),
	}
}

// Register exports the injector's per-class tallies on reg as
// dynamo_faultio_injected_total{plane,kind}. Counts injected before
// Register are replayed into the new counters.
func (in *Injector) Register(reg *telemetry.Registry) {
	if in == nil || reg == nil {
		return
	}
	const help = "Deterministically injected control-plane faults."
	mk := func(plane, kind string) *telemetry.Counter {
		return reg.Counter("dynamo_faultio_injected_total",
			fmt.Sprintf("plane=%q,kind=%q", plane, kind), help)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.telemetry = map[string]*telemetry.Counter{
		KindENOSPC:  mk("disk", KindENOSPC),
		KindTorn:    mk("disk", KindTorn),
		KindCorrupt: mk("disk", KindCorrupt),
		KindDelay:   mk("net", KindDelay),
		KindDrop:    mk("net", KindDrop),
		KindDup:     mk("net", KindDup),
	}
	for kind, n := range in.counts {
		in.telemetry[kind].Add(n)
	}
}

// Counts returns a snapshot of injections by class.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Injected returns the total number of injections so far.
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, v := range in.counts {
		n += v
	}
	return n
}

// draw decides one fault of the given class: it advances the plane's
// stream (so abstaining still consumes schedule, keeping the sequence
// seed-stable), checks the budget, and tallies a hit.
func (in *Injector) draw(s *stream, permille int, kind string) bool {
	if in == nil || permille <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	hit := s.below(1000) < uint64(permille)
	if !hit || in.budget == 0 {
		return false
	}
	if in.budget > 0 {
		in.budget--
	}
	in.counts[kind]++
	if c := in.telemetry[kind]; c != nil {
		c.Inc()
	}
	return true
}

// delayFor draws a response delay in (0, MaxDelay].
func (in *Injector) delayFor() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return time.Duration(in.net.below(uint64(in.opts.MaxDelay))) + 1
}

// WrapFS layers the injector's disk-plane faults over fs. A nil injector
// returns fs unchanged.
func (in *Injector) WrapFS(fs FS) FS {
	if in == nil {
		return fs
	}
	return faultFS{in: in, fs: fs}
}

type faultFS struct {
	in *Injector
	fs FS
}

func (f faultFS) ReadFile(path string) ([]byte, error) {
	data, err := f.fs.ReadFile(path)
	if err == nil && len(data) > 1 && f.in.draw(f.in.disk, f.in.opts.CorruptPermille, KindCorrupt) {
		// A bad sector / short read: the document is cut mid-way, which a
		// JSON or checkpoint decoder must treat as corrupt, not as data.
		return data[:len(data)/2], nil
	}
	return data, err
}

func (f faultFS) WriteFileAtomic(dir, path string, data []byte) error {
	if f.in.draw(f.in.disk, f.in.opts.ENOSPCPermille, KindENOSPC) {
		return fmt.Errorf("faultio: injected write to %s: %w", path, syscall.ENOSPC)
	}
	if len(data) > 2 && f.in.draw(f.in.disk, f.in.opts.TornPermille, KindTorn) {
		// A torn commit: the rename landed but the data did not — the
		// failure mode the fsync discipline in OS.WriteFileAtomic exists
		// to prevent, kept injectable so readers prove they evict it.
		return f.fs.WriteFileAtomic(dir, path, data[:len(data)/3])
	}
	return f.fs.WriteFileAtomic(dir, path, data)
}

func (f faultFS) Rename(oldpath, newpath string) error { return f.fs.Rename(oldpath, newpath) }

func (f faultFS) Remove(path string) error { return f.fs.Remove(path) }

// WrapTransport layers the injector's network-plane faults over a
// client-side http.RoundTripper — the worker-fleet mirror of WrapHandler.
// A dropped request errors before anything is sent (the request never
// took effect); a duplicated one is performed but its response discarded
// (the request took effect, the caller cannot know) — both surface as
// ECONNRESET so the client's retryable() path engages, and both force the
// lease protocol to prove its idempotence: re-sent commits must be
// acknowledged as byte-identical duplicates, never double-applied. A nil
// injector (or nil rt, meaning the default transport) passes through.
func (in *Injector) WrapTransport(rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	if in == nil {
		return rt
	}
	return faultTransport{in: in, rt: rt}
}

type faultTransport struct {
	in *Injector
	rt http.RoundTripper
}

func (t faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	if in.draw(in.net, in.opts.DelayPermille, KindDelay) {
		time.Sleep(in.delayFor())
	}
	if in.draw(in.net, in.opts.DropPermille, KindDrop) {
		// Lost before reaching the server: the call had no effect.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultio: injected request drop: %w", syscall.ECONNRESET)
	}
	if in.draw(in.net, in.opts.DupPermille, KindDup) {
		// Delivered, but the response is lost on the way back: the call
		// took effect exactly once, yet the caller must retry blind.
		resp, err := t.rt.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, fmt.Errorf("faultio: injected response loss: %w", syscall.ECONNRESET)
	}
	return t.rt.RoundTrip(req)
}

// discardWriter swallows a duplicated response: the handler runs for its
// side effects while the client sees an aborted connection.
type discardWriter struct{ h http.Header }

func (d discardWriter) Header() http.Header         { return d.h }
func (d discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (discardWriter) WriteHeader(int)               {}

// WrapHandler layers the injector's network-plane faults over h. Dropped
// and duplicated responses abort the connection with http.ErrAbortHandler
// (net/http suppresses its stack trace), so the client observes exactly
// what a killed server produces: ECONNRESET / unexpected EOF. Every
// control-plane endpoint is idempotent — submissions dedupe by digest —
// so duplication is safe to retry, which is precisely what the client's
// backoff loop must prove. A nil injector returns h unchanged.
func (in *Injector) WrapHandler(h http.Handler) http.Handler {
	if in == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in.draw(in.net, in.opts.DelayPermille, KindDelay) {
			time.Sleep(in.delayFor())
		}
		if in.draw(in.net, in.opts.DropPermille, KindDrop) {
			panic(http.ErrAbortHandler)
		}
		if in.draw(in.net, in.opts.DupPermille, KindDup) {
			// The request takes effect server-side, but the response is
			// lost; the client's retry delivers it a second time.
			h.ServeHTTP(discardWriter{h: make(http.Header)}, r)
			panic(http.ErrAbortHandler)
		}
		h.ServeHTTP(w, r)
	})
}
