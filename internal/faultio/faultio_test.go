package faultio

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	fs := OS{}
	if err := fs.WriteFileAtomic(dir, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFileAtomic(dir, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("ReadFile = %q, %v; want v2", data, err)
	}
	// No temp litter after success.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(ents))
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() map[string]uint64 {
		in := New(Options{Seed: 42, ENOSPCPermille: 300, TornPermille: 300, CorruptPermille: 300})
		fs := in.WrapFS(OS{})
		dir := t.TempDir()
		for i := 0; i < 200; i++ {
			path := filepath.Join(dir, "f.json")
			fs.WriteFileAtomic(dir, path, []byte(`{"some":"document"}`))
			fs.ReadFile(path)
		}
		return in.Counts()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no faults injected at 30% rates over 400 ops")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("schedule not deterministic: %s = %d vs %d", k, v, b[k])
		}
	}
}

func TestInjectorENOSPCTyped(t *testing.T) {
	in := New(Options{Seed: 1, ENOSPCPermille: 1000})
	fs := in.WrapFS(OS{})
	dir := t.TempDir()
	err := fs.WriteFileAtomic(dir, filepath.Join(dir, "x"), []byte("data"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	in := New(Options{Seed: 1, TornPermille: 1000})
	fs := in.WrapFS(OS{})
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	full := []byte("a complete json document")
	if err := fs.WriteFileAtomic(dir, path, full); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(full) {
		t.Fatalf("torn write persisted %d bytes, want < %d", len(data), len(full))
	}
}

func TestInjectorBudget(t *testing.T) {
	in := New(Options{Seed: 7, Budget: 3, ENOSPCPermille: 1000})
	fs := in.WrapFS(OS{})
	dir := t.TempDir()
	fails := 0
	for i := 0; i < 50; i++ {
		if err := fs.WriteFileAtomic(dir, filepath.Join(dir, "x"), []byte("d")); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("budget 3 produced %d failures", fails)
	}
	if got := in.Injected(); got != 3 {
		t.Fatalf("Injected() = %d, want 3", got)
	}
}

func TestNilInjectorTransparent(t *testing.T) {
	var in *Injector
	fs := in.WrapFS(OS{})
	dir := t.TempDir()
	if err := fs.WriteFileAtomic(dir, filepath.Join(dir, "x"), []byte("d")); err != nil {
		t.Fatal(err)
	}
	h := in.WrapHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("nil injector perturbed the handler: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestWrapHandlerDropAndDup(t *testing.T) {
	var served int
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "ok")
	})
	// Drop: connection aborts, handler never runs.
	in := New(Options{Seed: 3, DropPermille: 1000})
	srv := httptest.NewServer(in.WrapHandler(base))
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("dropped response reached the client")
	}
	srv.Close()
	if served != 0 {
		t.Fatalf("drop ran the handler %d times", served)
	}
	// Dup: handler runs (side effects land), response still lost.
	served = 0
	in = New(Options{Seed: 3, DupPermille: 1000, Budget: 1})
	srv = httptest.NewServer(in.WrapHandler(base))
	defer srv.Close()
	if _, err := http.Get(srv.URL); err == nil {
		t.Fatal("duplicated response reached the client first try")
	}
	// Budget spent: the retry goes through, observing the duplicate.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if served != 2 {
		t.Fatalf("handler ran %d times, want 2 (dup + clean retry)", served)
	}
}

func TestWrapHandlerDelayBounded(t *testing.T) {
	in := New(Options{Seed: 5, DelayPermille: 1000, MaxDelay: 10 * time.Millisecond, Budget: 4})
	srv := httptest.NewServer(in.WrapHandler(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "ok") })))
	defer srv.Close()
	start := time.Now()
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("4 delayed responses took %s", d)
	}
	if in.Counts()[KindDelay] == 0 {
		t.Fatal("no delays recorded")
	}
}
