// Package stats provides the counters and aggregation helpers used by the
// experiment harness: run summaries, speedups, geometric means and simple
// fixed-width table formatting.
package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Geomean returns the geometric mean of xs. It returns 0 for an empty slice
// and panics on non-positive values, which always indicate a bad experiment.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Sum returns the sum of xs (0 for an empty slice).
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Percentile returns the p-quantile (p in [0, 1], clamped) of xs using
// linear interpolation between closest ranks. It does not modify xs and
// returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	p = math.Min(math.Max(p, 0), 1)
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Speedup returns base/measured: >1 means measured is faster than base when
// the inputs are execution times.
func Speedup(baseCycles, cycles uint64) float64 {
	if cycles == 0 {
		panic("stats: zero cycle count")
	}
	return float64(baseCycles) / float64(cycles)
}

// Counter is a named monotonically increasing counter.
type Counter struct {
	Name  string
	Value uint64
}

// Group is an ordered collection of named counters, used for run reports.
type Group struct {
	counters []Counter
	index    map[string]int
}

// NewGroup returns an empty group.
func NewGroup() *Group {
	return &Group{index: make(map[string]int)}
}

// Add increments the named counter by n, creating it if needed.
func (g *Group) Add(name string, n uint64) {
	if i, ok := g.index[name]; ok {
		g.counters[i].Value += n
		return
	}
	g.index[name] = len(g.counters)
	g.counters = append(g.counters, Counter{Name: name, Value: n})
}

// Get returns the value of the named counter (zero if absent).
func (g *Group) Get(name string) uint64 {
	if i, ok := g.index[name]; ok {
		return g.counters[i].Value
	}
	return 0
}

// Names returns the counter names in insertion order.
func (g *Group) Names() []string {
	names := make([]string, len(g.counters))
	for i, c := range g.counters {
		names[i] = c.Name
	}
	return names
}

// String renders the group sorted by name, one counter per line.
func (g *Group) String() string {
	cs := make([]Counter, len(g.counters))
	copy(cs, g.counters)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	var b strings.Builder
	for _, c := range cs {
		fmt.Fprintf(&b, "%-32s %12d\n", c.Name, c.Value)
	}
	return b.String()
}

// MarshalJSON encodes the group as a name-to-value object sorted by name,
// so encodings are byte-stable regardless of insertion order.
func (g *Group) MarshalJSON() ([]byte, error) {
	cs := make([]Counter, len(g.counters))
	copy(cs, g.counters)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	var b bytes.Buffer
	b.WriteByte('{')
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(',')
		}
		name, err := json.Marshal(c.Name)
		if err != nil {
			return nil, err
		}
		b.Write(name)
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(c.Value, 10))
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON decodes the name-to-value object form produced by
// MarshalJSON. Counters are inserted in sorted name order (the encoded
// order), so a decoded group re-encodes byte-identically.
func (g *Group) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	*g = *NewGroup()
	for _, n := range names {
		g.Add(n, m[n])
	}
	return nil
}

// Table formats rows of cells with left-aligned, width-padded columns; the
// experiment runners use it to print figure data as aligned text.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells are simple
// identifiers and numbers, so no quoting is needed).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// F formats a float with 3 decimal places, the standard cell format for
// speedup tables.
func F(x float64) string { return fmt.Sprintf("%.3f", x) }
