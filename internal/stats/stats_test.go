package stats

import (
	"encoding/json"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 4}, 2},
		{[]float64{2, 2, 2}, 2},
		{[]float64{1, 1, 8}, 2},
	}
	for _, c := range cases {
		got := Geomean(c.in)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Geomean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive input")
		}
	}()
	Geomean([]float64{1, 0})
}

// Property: geomean is scale-equivariant and bounded by min/max.
func TestGeomeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		return math.Abs(Geomean(scaled)-3*g) < 1e-6*g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumMean(t *testing.T) {
	if Sum(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty-slice Sum/Mean non-zero")
	}
	if Sum([]float64{7}) != 7 || Mean([]float64{7}) != 7 {
		t.Fatal("single-element Sum/Mean wrong")
	}
	xs := []float64{1, 2, 3, 4}
	if Sum(xs) != 10 {
		t.Fatalf("Sum = %g", Sum(xs))
	}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %g", Mean(xs))
	}
}

func TestPercentile(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty-slice Percentile non-zero")
	}
	if got := Percentile([]float64{42}, 0.99); got != 42 {
		t.Fatalf("single-element p99 = %g", got)
	}
	xs := []float64{4, 1, 3, 2} // unsorted input must not be modified
	if got := Percentile(xs, 0.5); got != 2.5 {
		t.Fatalf("p50 = %g, want 2.5", got)
	}
	if xs[0] != 4 {
		t.Fatal("Percentile modified its input")
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %g, want 1", got)
	}
	if got := Percentile(xs, 1); got != 4 {
		t.Fatalf("p100 = %g, want 4", got)
	}
	// Out-of-range quantiles clamp.
	if Percentile(xs, -1) != 1 || Percentile(xs, 2) != 4 {
		t.Fatal("out-of-range quantile not clamped")
	}
	// Interpolation between ranks: p25 of {1,2,3,4} is 1.75.
	if got := Percentile(xs, 0.25); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("p25 = %g, want 1.75", got)
	}
}

// Property: Percentile is bounded by min/max and monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p1 := float64(a%101) / 100
		p2 := float64(b%101) / 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 >= sorted[0] && v2 <= sorted[len(sorted)-1] && v1 <= v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 2 {
		t.Fatalf("Speedup = %g, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero cycles")
		}
	}()
	Speedup(100, 0)
}

func TestGroup(t *testing.T) {
	g := NewGroup()
	g.Add("l1.hits", 10)
	g.Add("l1.hits", 5)
	g.Add("l1.misses", 1)
	if g.Get("l1.hits") != 15 {
		t.Fatalf("l1.hits = %d", g.Get("l1.hits"))
	}
	if g.Get("absent") != 0 {
		t.Fatal("absent counter non-zero")
	}
	names := g.Names()
	if len(names) != 2 || names[0] != "l1.hits" || names[1] != "l1.misses" {
		t.Fatalf("Names = %v", names)
	}
	if !strings.Contains(g.String(), "l1.hits") {
		t.Fatal("String missing counter")
	}
}

func TestGroupMarshalJSON(t *testing.T) {
	g := NewGroup()
	g.Add("zeta", 2)
	g.Add("alpha", 1)
	out, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by name regardless of insertion order, values as numbers.
	if string(out) != `{"alpha":1,"zeta":2}` {
		t.Fatalf("MarshalJSON = %s", out)
	}
	var decoded map[string]uint64
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["zeta"] != 2 {
		t.Fatalf("decoded = %v", decoded)
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Columns align: every "value" cell starts at the same offset.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") || !strings.HasPrefix(lines[3][idx:], "22") {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestF(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("x", "1")
	tb.AddRow("y", "2")
	want := "a,b\nx,1\ny,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
