package memory

import "fmt"

// AMOOp is the arithmetic performed by an atomic memory operation. The set
// matches the AMBA 5 CHI atomic transaction opcodes (which themselves cover
// the Armv8.1 LSE / RISC-V A-extension operations).
type AMOOp uint8

const (
	AMOAdd AMOOp = iota
	AMOSwap
	AMOCAS
	AMOAnd // atomic AND (CHI: CLR with inverted mask; modeled directly)
	AMOOr
	AMOXor
	AMOMin // signed min
	AMOMax // signed max
	AMOUMin
	AMOUMax
)

// String returns the mnemonic of the operation.
func (op AMOOp) String() string {
	switch op {
	case AMOAdd:
		return "add"
	case AMOSwap:
		return "swap"
	case AMOCAS:
		return "cas"
	case AMOAnd:
		return "and"
	case AMOOr:
		return "or"
	case AMOXor:
		return "xor"
	case AMOMin:
		return "min"
	case AMOMax:
		return "max"
	case AMOUMin:
		return "umin"
	case AMOUMax:
		return "umax"
	}
	return fmt.Sprintf("AMOOp(%d)", uint8(op))
}

// AMOOps lists every opcode, for exhaustive tests.
var AMOOps = []AMOOp{AMOAdd, AMOSwap, AMOCAS, AMOAnd, AMOOr, AMOXor, AMOMin, AMOMax, AMOUMin, AMOUMax}

// ApplyAMO computes an atomic read-modify-write over an old 64-bit value.
// For AMOCAS, operand is the value to store and compare the expected value;
// the store happens only when old == compare. For every other op compare is
// ignored. It returns the new stored value and the value the operation
// returns to the requestor (always the old value, per CHI AtomicLoad/CAS
// semantics).
func ApplyAMO(op AMOOp, old, operand, compare uint64) (stored, returned uint64) {
	returned = old
	switch op {
	case AMOAdd:
		stored = old + operand
	case AMOSwap:
		stored = operand
	case AMOCAS:
		if old == compare {
			stored = operand
		} else {
			stored = old
		}
	case AMOAnd:
		stored = old & operand
	case AMOOr:
		stored = old | operand
	case AMOXor:
		stored = old ^ operand
	case AMOMin:
		if int64(operand) < int64(old) {
			stored = operand
		} else {
			stored = old
		}
	case AMOMax:
		if int64(operand) > int64(old) {
			stored = operand
		} else {
			stored = old
		}
	case AMOUMin:
		if operand < old {
			stored = operand
		} else {
			stored = old
		}
	case AMOUMax:
		if operand > old {
			stored = operand
		} else {
			stored = old
		}
	default:
		panic(fmt.Sprintf("memory: unknown AMO op %d", op))
	}
	return stored, returned
}

// Mutates reports whether applying op with the given values would change the
// stored value. Used by tests and by the HN to skip redundant writebacks.
func Mutates(op AMOOp, old, operand, compare uint64) bool {
	stored, _ := ApplyAMO(op, old, operand, compare)
	return stored != old
}
