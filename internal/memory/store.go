package memory

import "sort"

// Store is the functional backing store for simulated memory. The simulator
// is execution-driven: workloads compute real results (histograms, sorted
// arrays, BFS distances) in this store, which lets integration tests verify
// that no update is ever lost regardless of AMO placement.
//
// Values are 64-bit words at 8-byte-aligned addresses; unaligned accesses
// are rounded down to their containing word. All timing-model serialization
// happens in the protocol layer, so Store itself is a plain map owned by the
// single-threaded simulation engine.
type Store struct {
	words map[Addr]uint64
}

// NewStore returns an empty store; unwritten memory reads as zero.
func NewStore() *Store {
	return &Store{words: make(map[Addr]uint64)}
}

func align(a Addr) Addr { return a &^ 7 }

// Load returns the 64-bit word at a.
func (s *Store) Load(a Addr) uint64 { return s.words[align(a)] }

// StoreWord writes the 64-bit word at a.
func (s *Store) StoreWord(a Addr, v uint64) {
	a = align(a)
	if v == 0 {
		delete(s.words, a) // keep the map sparse for zero-dominated data
		return
	}
	s.words[a] = v
}

// AMO applies an atomic read-modify-write at a and returns the prior value.
func (s *Store) AMO(op AMOOp, a Addr, operand, compare uint64) (old uint64) {
	a = align(a)
	old = s.words[a]
	stored, _ := ApplyAMO(op, old, operand, compare)
	if stored != old {
		s.StoreWord(a, stored)
	}
	return old
}

// Footprint returns the number of distinct non-zero words stored, an
// approximation of the touched memory footprint used by Table III reporting.
func (s *Store) Footprint() int { return len(s.words) }

// Word is one (address, value) pair of the functional image.
type Word struct {
	Addr  Addr
	Value uint64
}

// Words returns every non-zero word sorted by address — the canonical
// functional image, used to digest a run's result for metamorphic
// (perturbation-invariance) testing.
func (s *Store) Words() []Word {
	out := make([]Word, 0, len(s.words))
	for a, v := range s.words {
		out = append(out, Word{Addr: a, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
