// Package memory defines the address arithmetic, cache-line states, atomic
// opcodes and functional backing store shared by the whole simulator.
//
// Cache-line coherence states follow the AMBA 5 CHI naming for the MOESI
// protocol: Invalid (I), SharedClean (SC, ~S), SharedDirty (SD, ~O),
// UniqueClean (UC, ~E) and UniqueDirty (UD, ~M).
package memory

import "fmt"

// LineSize is the cache-line size in bytes. The whole system uses 64-byte
// lines, matching Table II of the paper.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Addr is a physical byte address.
type Addr uint64

// Line identifies a cache line: the address with the offset bits removed.
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// Base returns the first byte address of the line.
func (l Line) Base() Addr { return Addr(l) << LineShift }

// Offset returns the byte offset of a within its cache line.
func Offset(a Addr) uint { return uint(a) & (LineSize - 1) }

// State is a CHI cache-line coherence state.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// SharedClean: present read-only, memory/LLC may be stale elsewhere but
	// this copy is clean.
	SharedClean
	// SharedDirty: present shared, this cache owns the dirty data (CHI SD,
	// classic Owned).
	SharedDirty
	// UniqueClean: exclusive, clean (classic Exclusive).
	UniqueClean
	// UniqueDirty: exclusive, modified (classic Modified).
	UniqueDirty
)

// String returns the CHI short name of the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case SharedClean:
		return "SC"
	case SharedDirty:
		return "SD"
	case UniqueClean:
		return "UC"
	case UniqueDirty:
		return "UD"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Unique reports whether the state grants exclusive write permission.
func (s State) Unique() bool { return s == UniqueClean || s == UniqueDirty }

// Shared reports whether the state is one of the shared states.
func (s State) Shared() bool { return s == SharedClean || s == SharedDirty }

// Present reports whether the line is cached at all.
func (s State) Present() bool { return s != Invalid }

// Dirty reports whether this copy holds modified data that must be written
// back on eviction.
func (s State) Dirty() bool { return s == UniqueDirty || s == SharedDirty }

// States lists all five coherence states in Table I column order.
var States = [5]State{UniqueClean, UniqueDirty, SharedClean, SharedDirty, Invalid}
