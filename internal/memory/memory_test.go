package memory

import (
	"testing"
	"testing/quick"
)

func TestLineMath(t *testing.T) {
	cases := []struct {
		addr Addr
		line Line
		off  uint
	}{
		{0, 0, 0},
		{63, 0, 63},
		{64, 1, 0},
		{65, 1, 1},
		{4096, 64, 0},
		{0xdeadbeef, 0xdeadbeef >> 6, 0xdeadbeef & 63},
	}
	for _, c := range cases {
		if LineOf(c.addr) != c.line {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.addr, LineOf(c.addr), c.line)
		}
		if Offset(c.addr) != c.off {
			t.Errorf("Offset(%#x) = %d, want %d", c.addr, Offset(c.addr), c.off)
		}
	}
}

func TestLineBaseRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		l := LineOf(a)
		base := l.Base()
		return LineOf(base) == l && base <= a && a-base < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatepredicates(t *testing.T) {
	cases := []struct {
		s                              State
		unique, shared, present, dirty bool
		name                           string
	}{
		{Invalid, false, false, false, false, "I"},
		{SharedClean, false, true, true, false, "SC"},
		{SharedDirty, false, true, true, true, "SD"},
		{UniqueClean, true, false, true, false, "UC"},
		{UniqueDirty, true, false, true, true, "UD"},
	}
	for _, c := range cases {
		if c.s.Unique() != c.unique || c.s.Shared() != c.shared ||
			c.s.Present() != c.present || c.s.Dirty() != c.dirty {
			t.Errorf("%v predicates wrong", c.s)
		}
		if c.s.String() != c.name {
			t.Errorf("String(%d) = %q, want %q", c.s, c.s.String(), c.name)
		}
	}
}

func TestApplyAMOSemantics(t *testing.T) {
	cases := []struct {
		op                    AMOOp
		old, operand, compare uint64
		stored, returned      uint64
	}{
		{AMOAdd, 10, 5, 0, 15, 10},
		{AMOAdd, ^uint64(0), 1, 0, 0, ^uint64(0)}, // wraps
		{AMOSwap, 7, 42, 0, 42, 7},
		{AMOCAS, 7, 42, 7, 42, 7}, // success
		{AMOCAS, 8, 42, 7, 8, 8},  // failure keeps old
		{AMOAnd, 0b1100, 0b1010, 0, 0b1000, 0b1100},
		{AMOOr, 0b1100, 0b1010, 0, 0b1110, 0b1100},
		{AMOXor, 0b1100, 0b1010, 0, 0b0110, 0b1100},
		{AMOMin, 5, ^uint64(0) /* -1 */, 0, ^uint64(0), 5},
		{AMOMax, 5, ^uint64(0) /* -1 */, 0, 5, 5},
		{AMOUMin, 5, ^uint64(0), 0, 5, 5},
		{AMOUMax, 5, ^uint64(0), 0, ^uint64(0), 5},
	}
	for _, c := range cases {
		stored, returned := ApplyAMO(c.op, c.old, c.operand, c.compare)
		if stored != c.stored || returned != c.returned {
			t.Errorf("%v(old=%d, operand=%d, cmp=%d) = (%d,%d), want (%d,%d)",
				c.op, c.old, c.operand, c.compare, stored, returned, c.stored, c.returned)
		}
	}
}

// Property: every AMO returns the old value, and the stored value matches an
// independent reference model.
func TestApplyAMOProperty(t *testing.T) {
	ref := func(op AMOOp, old, operand, compare uint64) uint64 {
		switch op {
		case AMOAdd:
			return old + operand
		case AMOSwap:
			return operand
		case AMOCAS:
			if old == compare {
				return operand
			}
			return old
		case AMOAnd:
			return old & operand
		case AMOOr:
			return old | operand
		case AMOXor:
			return old ^ operand
		case AMOMin:
			return uint64(min(int64(old), int64(operand)))
		case AMOMax:
			return uint64(max(int64(old), int64(operand)))
		case AMOUMin:
			return min(old, operand)
		case AMOUMax:
			return max(old, operand)
		}
		panic("unreachable")
	}
	f := func(opSel uint8, old, operand, compare uint64) bool {
		op := AMOOps[int(opSel)%len(AMOOps)]
		stored, returned := ApplyAMO(op, old, operand, compare)
		return returned == old && stored == ref(op, old, operand, compare)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMutates(t *testing.T) {
	if Mutates(AMOAdd, 5, 0, 0) {
		t.Error("add 0 reported as mutating")
	}
	if !Mutates(AMOAdd, 5, 1, 0) {
		t.Error("add 1 reported as non-mutating")
	}
	if Mutates(AMOCAS, 5, 9, 4) {
		t.Error("failed CAS reported as mutating")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if got := s.Load(0x1000); got != 0 {
		t.Fatalf("fresh memory reads %d, want 0", got)
	}
	s.StoreWord(0x1000, 99)
	if got := s.Load(0x1000); got != 99 {
		t.Fatalf("Load = %d, want 99", got)
	}
	// Unaligned access rounds down to the containing word.
	if got := s.Load(0x1003); got != 99 {
		t.Fatalf("unaligned Load = %d, want 99", got)
	}
	s.StoreWord(0x1000, 0)
	if s.Footprint() != 0 {
		t.Fatalf("Footprint after zeroing = %d, want 0", s.Footprint())
	}
}

func TestStoreAMO(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		old := s.AMO(AMOAdd, 0x2000, 1, 0)
		if old != uint64(i) {
			t.Fatalf("AMO add #%d returned %d", i, old)
		}
	}
	if got := s.Load(0x2000); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	old := s.AMO(AMOCAS, 0x2000, 7, 100)
	if old != 100 || s.Load(0x2000) != 7 {
		t.Fatalf("CAS success: old=%d val=%d", old, s.Load(0x2000))
	}
	old = s.AMO(AMOCAS, 0x2000, 11, 100)
	if old != 7 || s.Load(0x2000) != 7 {
		t.Fatalf("CAS failure: old=%d val=%d", old, s.Load(0x2000))
	}
}

// Property: a store followed by a load round-trips for any aligned address.
func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore()
	f := func(a Addr, v uint64) bool {
		s.StoreWord(a, v)
		return s.Load(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStoreAMO(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AMO(AMOAdd, Addr(i%1024)*8, 1, 0)
	}
}
