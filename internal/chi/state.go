package chi

import (
	"sort"

	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

// This file captures serializable snapshots of the protocol state for
// checkpointing. Snapshots are canonical: cache arrays are visited in
// Range order (set-major, MRU-first), which encodes replacement state,
// and map-backed structures are sorted by line. Pending closures (queued
// transaction starters, in-flight Done callbacks) cannot be serialized;
// snapshots record their observable footprint (waiter counts, queue
// depths) and checkpoint verification replays the deterministic event
// stream to reconstruct them.

// LineState is one cached line and its coherence state, in replacement
// order within a snapshot.
type LineState struct {
	Line  memory.Line
	State memory.State
}

// MSHRState is one in-flight fill: the line, whether an AMO initiated it
// and how many requests wait on it.
type MSHRState struct {
	Line    memory.Line
	ByAMO   bool
	Waiters int
}

// RNState is a serializable image of one request node.
type RNState struct {
	Stats        RNStats
	L1           []LineState
	L2           []LineState
	MSHRs        []MSHRState
	LastMissLine memory.Line
	MissStreak   int
}

// Snapshot captures the RN state in canonical order.
func (rn *RN) Snapshot() RNState {
	s := RNState{
		Stats:        rn.Stats,
		LastMissLine: rn.lastMissLine,
		MissStreak:   rn.missStreak,
	}
	rn.l1.Range(func(k uint64, e *l1Entry) bool {
		s.L1 = append(s.L1, LineState{Line: memory.Line(k), State: e.state})
		return true
	})
	rn.l2.Range(func(k uint64, e *l2Entry) bool {
		s.L2 = append(s.L2, LineState{Line: memory.Line(k), State: e.state})
		return true
	})
	for line, m := range rn.mshrs {
		s.MSHRs = append(s.MSHRs, MSHRState{Line: line, ByAMO: m.byAMO, Waiters: len(m.reqs)})
	}
	sort.Slice(s.MSHRs, func(i, j int) bool { return s.MSHRs[i].Line < s.MSHRs[j].Line })
	return s
}

// DirState is one directory entry.
type DirState struct {
	Line    memory.Line
	Owner   int
	Sharers uint64
}

// LLCState is one LLC line, in replacement order.
type LLCState struct {
	Line  memory.Line
	Dirty bool
}

// BusyState is one blocked line and its queued-transaction depth.
type BusyState struct {
	Line   memory.Line
	Queued int
}

// HNState is a serializable image of one home-node slice.
type HNState struct {
	Stats   HNStats
	Dir     []DirState
	LLC     []LLCState
	AMOBuf  []memory.Line
	Busy    []BusyState
	ALUFree sim.Tick
}

// Snapshot captures the HN state in canonical order.
func (hn *HN) Snapshot() HNState {
	s := HNState{Stats: hn.Stats, ALUFree: hn.aluFree}
	for line, e := range hn.dir {
		s.Dir = append(s.Dir, DirState{Line: line, Owner: e.owner, Sharers: e.sharers})
	}
	sort.Slice(s.Dir, func(i, j int) bool { return s.Dir[i].Line < s.Dir[j].Line })
	hn.llc.Range(func(k uint64, e *llcEntry) bool {
		s.LLC = append(s.LLC, LLCState{Line: memory.Line(k), Dirty: e.dirty})
		return true
	})
	hn.amoBuf.Range(func(k uint64, _ *struct{}) bool {
		s.AMOBuf = append(s.AMOBuf, memory.Line(k))
		return true
	})
	for line, q := range hn.busy {
		s.Busy = append(s.Busy, BusyState{Line: line, Queued: len(q)})
	}
	sort.Slice(s.Busy, func(i, j int) bool { return s.Busy[i].Line < s.Busy[j].Line })
	return s
}
