package chi

import (
	"dynamo/internal/check"
	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

// This file hosts the runtime sanitizer hooks: violation reporting, the
// recent-event trail, and the coherence/directory audit walks driven by
// the machine's check loop. The invariant vocabulary (Violation, Checker,
// Report) lives in internal/check; chi contributes the walks because only
// it can see the RN cache arrays and HN directories.

// EnableCheck attaches a sanitizer to the system: occupancy bounds start
// being enforced, release-time and periodic audits become available, and
// violations carry a recent-event trail.
func (s *System) EnableCheck(ck *check.Checker) {
	s.Check = ck
	s.Trail = check.NewTrail(ck.TrailDepth())
}

// Fail records the first protocol violation and halts the engine. Later
// violations are dropped: the protocol state is already corrupt, so only
// the first report is trustworthy. Fail works with or without a checker
// attached — it is how the former panic sites surface as errors.
func (s *System) Fail(v *check.Violation) {
	if v == nil || s.Violation != nil {
		return
	}
	v.Trail = s.Trail.Recent()
	s.Violation = v
	s.Engine.Stop()
}

// tracef appends one event to the recent-event trail, when one is attached.
func (s *System) tracef(format string, args ...any) {
	if s.Trail != nil {
		s.Trail.Addf(s.Engine.Now(), format, args...)
	}
}

// SetSnoopJitter installs a chaos hook adding extra delay to each snoop
// response on its way back to the home node. Reordering snoop responses is
// protocol-legal: the fan-out completion counter is order-insensitive.
func (s *System) SetSnoopJitter(fn func(core int, line memory.Line) sim.Tick) {
	s.snoopJitter = fn
}

// lineHolders collects the private-hierarchy state of one line across all
// RNs.
func (s *System) lineHolders(line memory.Line) (holders []int, states []memory.State) {
	for _, rn := range s.RNs {
		if st := rn.State(line); st != memory.Invalid {
			holders = append(holders, rn.id)
			states = append(states, st)
		}
	}
	return
}

// lineInFlight reports whether any transaction could legally be mutating
// the line's global state: a blocked entry at its home node or an
// outstanding fill at any RN.
func (s *System) lineInFlight(line memory.Line) bool {
	hn := s.HomeOf(line)
	if _, busy := hn.busy[line]; busy {
		return true
	}
	for _, rn := range s.RNs {
		if _, ok := rn.mshrs[line]; ok {
			return true
		}
	}
	return false
}

// auditLine checks one line's SWMR invariant and, when no transaction is in
// flight, its directory agreement. Directory agreement is deliberately
// one-directional: a holder must appear in the sharer mask and a unique
// holder must be the registered owner, but a stale sharer bit or owner is
// legal (a fire-and-forget WriteBack may still be traveling).
func (s *System) auditLine(line memory.Line) *check.Violation {
	now := s.Engine.Now()
	holders, states := s.lineHolders(line)
	uniques, dirtyShared := 0, 0
	uniqueCore := -1
	for i, st := range states {
		if st.Unique() {
			uniques++
			uniqueCore = holders[i]
		}
		if st == memory.SharedDirty {
			dirtyShared++
		}
	}
	switch {
	case uniques > 1:
		return check.Violatef(check.KindSWMR, now,
			"line held unique by %d cores %v (states %v)", uniques, holders, states).AtLine(line)
	case uniques == 1 && len(holders) > 1:
		return check.Violatef(check.KindSWMR, now,
			"line unique at core %d but %d copies exist (cores %v)", uniqueCore, len(holders), holders).AtLine(line)
	case dirtyShared > 1:
		return check.Violatef(check.KindSWMR, now,
			"line has %d SharedDirty owners (cores %v)", dirtyShared, holders).AtLine(line)
	}
	if len(holders) == 0 || s.lineInFlight(line) {
		return nil
	}
	hn := s.HomeOf(line)
	owner, sharers := hn.Directory(line)
	for i, core := range holders {
		if sharers&(1<<uint(core)) == 0 {
			return check.Violatef(check.KindDirectory, now,
				"core %d holds the line %v but its sharer bit is clear (dir owner %d, sharers %#x)",
				core, states[i], owner, sharers).AtLine(line).AtCore(core).AtHN(hn.idx)
		}
		if states[i].Unique() && owner != core {
			return check.Violatef(check.KindDirectory, now,
				"core %d holds the line %v but the directory owner is %d",
				core, states[i], owner).AtLine(line).AtCore(core).AtHN(hn.idx)
		}
	}
	return nil
}

// AuditCoherence walks every line cached by any RN and audits it. It
// reports the first violation found (nil when clean) and counts as one
// full audit pass on the attached checker.
func (s *System) AuditCoherence() *check.Violation {
	s.Check.CountAudit()
	seen := make(map[memory.Line]bool)
	var found *check.Violation
	for _, rn := range s.RNs {
		rn.forEachLine(func(line memory.Line, _ memory.State) {
			if found != nil || seen[line] {
				return
			}
			seen[line] = true
			found = s.auditLine(line)
		})
		if found != nil {
			break
		}
	}
	return found
}

// AuditDrained verifies end-of-run quiescence: no RN has an outstanding
// fill and no HN has a blocked line once the event queue has emptied.
func (s *System) AuditDrained() *check.Violation {
	now := s.Engine.Now()
	for _, rn := range s.RNs {
		if n := len(rn.mshrs); n > 0 {
			var line memory.Line
			for l := range rn.mshrs {
				line = l
				break
			}
			return check.Violatef(check.KindLeak, now,
				"%d fills still outstanding after drain", n).AtCore(rn.id).AtLine(line)
		}
	}
	for _, hn := range s.HNs {
		if n := len(hn.busy); n > 0 {
			var line memory.Line
			for l := range hn.busy {
				line = l
				break
			}
			return check.Violatef(check.KindLeak, now,
				"%d lines still blocked after drain", n).AtHN(hn.idx).AtLine(line)
		}
	}
	return nil
}

// MSHRCount returns the number of outstanding fill transactions at this RN
// (diagnostic reporting).
func (rn *RN) MSHRCount() int { return len(rn.mshrs) }

// BusyLines returns the number of lines with an active transaction at this
// HN slice (diagnostic reporting).
func (hn *HN) BusyLines() int { return len(hn.busy) }

// ForceStateForTest plants a line in this RN's L1 with an arbitrary state,
// bypassing the protocol. Tests use it to fabricate illegal global states
// (e.g. two unique owners) and prove the sanitizer catches them. Not for
// use outside tests.
func (rn *RN) ForceStateForTest(line memory.Line, st memory.State) {
	if e, ok := rn.l1.Peek(uint64(line)); ok {
		e.state = st
		return
	}
	rn.l1.Insert(uint64(line), l1Entry{state: st})
}

// DropMSHRForTest deletes the RN's outstanding-fill entry for a line,
// fabricating the "fill without MSHR" protocol corruption. Tests only.
func (rn *RN) DropMSHRForTest(line memory.Line) {
	delete(rn.mshrs, line)
}

// ReleaseForTest releases a line at this HN as if a transaction finished,
// fabricating the double-release protocol corruption when the line is
// idle. Tests only.
func (hn *HN) ReleaseForTest(line memory.Line) {
	hn.release(line)
}
