package chi

import (
	"errors"
	"testing"

	"dynamo/internal/check"
	"dynamo/internal/memory"
)

// checkedTestSystem builds the test system with a sanitizer attached.
func checkedTestSystem(t testing.TB, cfg check.Config) *System {
	t.Helper()
	s := newTestSystem(t, fixedPolicy{Near})
	s.EnableCheck(check.New(cfg))
	return s
}

func TestReleaseIdleLineIsViolation(t *testing.T) {
	s := checkedTestSystem(t, check.Config{})
	s.HomeOf(0x10).ReleaseForTest(0x10)
	v := s.Violation
	if v == nil {
		t.Fatal("double release not caught")
	}
	if v.Kind != check.KindProtocol {
		t.Errorf("kind = %v, want protocol", v.Kind)
	}
	if !v.HasLine || v.Line != 0x10 {
		t.Errorf("line = %#x (has %v), want 0x10", uint64(v.Line), v.HasLine)
	}
	if !errors.Is(v, check.ErrViolation) {
		t.Error("violation does not match check.ErrViolation")
	}
}

func TestFillWithoutMSHRIsViolation(t *testing.T) {
	s := checkedTestSystem(t, check.Config{})
	rn := s.RNs[0]
	line := memory.LineOf(0x2000)
	s.Engine.Schedule(0, func() { rn.Access(&Request{Kind: Load, Addr: 0x2000}) })
	// Let the miss allocate its MSHR, then corrupt the RN by dropping it
	// while the fill is still in flight.
	if !s.Engine.RunUntil(func() bool { _, ok := rn.mshrs[line]; return ok }, 10_000) {
		t.Fatal("load miss never allocated an MSHR")
	}
	rn.DropMSHRForTest(line)
	s.Engine.RunUntil(func() bool { return s.Violation != nil }, 1_000_000)
	v := s.Violation
	if v == nil {
		t.Fatal("fill without MSHR not caught")
	}
	if v.Kind != check.KindProtocol || v.Core != 0 || v.Line != line {
		t.Errorf("violation = %v, want protocol at core 0 line %#x", v, uint64(line))
	}
	if len(v.Trail) == 0 {
		t.Error("violation carries no recent-event trail")
	}
}

func TestSetL1StateAbsentIsViolation(t *testing.T) {
	s := checkedTestSystem(t, check.Config{})
	s.RNs[2].setL1State(0x40, memory.UniqueDirty)
	v := s.Violation
	if v == nil {
		t.Fatal("setL1State on absent line not caught")
	}
	if v.Kind != check.KindProtocol || v.Core != 2 {
		t.Errorf("violation = %v, want protocol at core 2", v)
	}
}

func TestAuditCatchesDoubleUnique(t *testing.T) {
	s := checkedTestSystem(t, check.Config{})
	s.RNs[0].ForceStateForTest(0x8, memory.UniqueDirty)
	s.RNs[1].ForceStateForTest(0x8, memory.UniqueDirty)
	v := s.AuditCoherence()
	if v == nil {
		t.Fatal("two unique owners not caught")
	}
	if v.Kind != check.KindSWMR || v.Line != 0x8 {
		t.Errorf("violation = %v, want swmr on line 0x8", v)
	}
}

func TestAuditCatchesDirectoryDisagreement(t *testing.T) {
	s := checkedTestSystem(t, check.Config{})
	// A unique copy the directory has never heard of: the sharer bit is
	// clear, which the one-directional agreement audit must flag.
	s.RNs[3].ForceStateForTest(0x8, memory.UniqueClean)
	v := s.AuditCoherence()
	if v == nil {
		t.Fatal("directory disagreement not caught")
	}
	if v.Kind != check.KindDirectory || v.Core != 3 {
		t.Errorf("violation = %v, want directory at core 3", v)
	}
}

func TestMSHRBoundIsViolation(t *testing.T) {
	s := checkedTestSystem(t, check.Config{MaxMSHRs: 1})
	s.Engine.Schedule(0, func() {
		s.RNs[0].Access(&Request{Kind: Load, Addr: 0x1000})
		s.RNs[0].Access(&Request{Kind: Load, Addr: 0x9000})
	})
	s.Engine.RunUntil(func() bool { return s.Violation != nil }, 1_000_000)
	v := s.Violation
	if v == nil {
		t.Fatal("MSHR bound breach not caught")
	}
	if v.Kind != check.KindOccupancy || v.Core != 0 {
		t.Errorf("violation = %v, want occupancy at core 0", v)
	}
}

func TestCheckedRunStaysCleanAndAudits(t *testing.T) {
	s := checkedTestSystem(t, check.Config{})
	s.Data.StoreWord(0x1000, 5)
	run(t, s, 0, &Request{Kind: Load, Addr: 0x1000})
	run(t, s, 1, &Request{Kind: AMO, Addr: 0x1000, Op: memory.AMOAdd, Operand: 3})
	if s.Violation != nil {
		t.Fatalf("clean run violated: %v", s.Violation)
	}
	if v := s.AuditCoherence(); v != nil {
		t.Fatalf("final audit violated: %v", v)
	}
	if v := s.AuditDrained(); v != nil {
		t.Fatalf("drain audit violated: %v", v)
	}
	rep := s.Check.Report()
	if rep.ReleaseAudits == 0 {
		t.Error("no release audits ran")
	}
	if rep.Audits == 0 {
		t.Error("full audit not counted")
	}
	if rep.MaxMSHRs == 0 {
		t.Error("MSHR occupancy never observed")
	}
	if !rep.Clean {
		t.Error("report not clean")
	}
}

func TestAuditDrainedFlagsLeftovers(t *testing.T) {
	s := checkedTestSystem(t, check.Config{})
	rn := s.RNs[1]
	line := memory.LineOf(0x3000)
	s.Engine.Schedule(0, func() { rn.Access(&Request{Kind: Load, Addr: 0x3000}) })
	if !s.Engine.RunUntil(func() bool { _, ok := rn.mshrs[line]; return ok }, 10_000) {
		t.Fatal("load miss never allocated an MSHR")
	}
	v := s.AuditDrained()
	if v == nil {
		t.Fatal("outstanding MSHR after drain not flagged")
	}
	if v.Kind != check.KindLeak || v.Core != 1 {
		t.Errorf("violation = %v, want leak at core 1", v)
	}
}
