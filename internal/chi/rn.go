package chi

import (
	"fmt"

	"dynamo/internal/cache"
	"dynamo/internal/check"
	"dynamo/internal/memory"
	"dynamo/internal/noc"
	"dynamo/internal/obs"
	"dynamo/internal/perf"
	"dynamo/internal/sim"
)

// ReqKind is the class of a memory request issued by a core.
type ReqKind uint8

const (
	// Load reads a 64-bit word and returns it.
	Load ReqKind = iota
	// Store writes a 64-bit word.
	Store
	// AMO performs an atomic read-modify-write.
	AMO
)

// String names the request kind.
func (k ReqKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case AMO:
		return "amo"
	}
	return fmt.Sprintf("ReqKind(%d)", uint8(k))
}

// Request is one memory operation submitted to a request node. Done, if
// non-nil, runs at completion time with the value produced (the loaded word
// for Load, the prior memory value for AMO, 0 for Store).
type Request struct {
	Kind    ReqKind
	Addr    memory.Addr
	Op      memory.AMOOp
	Operand uint64
	Compare uint64
	// NoReturn marks an AMO with store semantics (CHI AtomicStore): the
	// requestor needs only an acknowledgment and the core may commit early.
	NoReturn bool
	Done     func(value uint64)

	issued sim.Tick
	// obs tracks the request on the probe bus (0 when observability is off
	// or the request was generated internally, e.g. by the prefetcher).
	obs obs.TxnID
}

// RNStats counts request-node activity.
type RNStats struct {
	Loads, Stores, AMOs                uint64
	AMOLoadOps, AMOStoreOps            uint64 // return-value vs no-return split
	AMONearLocal, AMONearTxn, AMOFar   uint64
	L1Hits, L1Misses, L2Hits, L2Misses uint64
	SnoopsReceived, Invalidations      uint64
	Downgrades, WriteBacks             uint64
	Prefetches                         uint64
	AMOLatencySum                      uint64
	LoadLatencySum                     uint64
}

type l1Entry struct {
	state memory.State
}

type l2Entry struct {
	state memory.State
}

type mshr struct {
	byAMO bool
	reqs  []*Request
}

// RN is a request node: one core's private L1D and L2 plus the coherence
// machinery that talks to the home nodes. The paper's placement decision
// happens here.
type RN struct {
	sys   *System
	id    int
	node  int
	l1    *cache.SetAssoc[l1Entry]
	l2    *cache.SetAssoc[l2Entry]
	mshrs map[memory.Line]*mshr
	Stats RNStats

	lastMissLine memory.Line
	missStreak   int
}

func newRN(s *System, id, node int) *RN {
	return &RN{
		sys:   s,
		id:    id,
		node:  node,
		l1:    cache.NewSetAssoc[l1Entry](s.Cfg.L1Sets, s.Cfg.L1Ways),
		l2:    cache.NewSetAssoc[l2Entry](s.Cfg.L2Sets, s.Cfg.L2Ways),
		mshrs: make(map[memory.Line]*mshr),
	}
}

// ID returns the core index of this RN.
func (rn *RN) ID() int { return rn.id }

// Node returns the mesh node of this RN.
func (rn *RN) Node() int { return rn.node }

// State returns the line's current state in this RN's private hierarchy
// (L1 or L2), without perturbing LRU order.
func (rn *RN) State(line memory.Line) memory.State {
	if e, ok := rn.l1.Peek(uint64(line)); ok {
		return e.state
	}
	if e, ok := rn.l2.Peek(uint64(line)); ok {
		return e.state
	}
	return memory.Invalid
}

// forEachLine visits every cached line and its state.
func (rn *RN) forEachLine(fn func(memory.Line, memory.State)) {
	rn.l1.Range(func(k uint64, e *l1Entry) bool {
		fn(memory.Line(k), e.state)
		return true
	})
	rn.l2.Range(func(k uint64, e *l2Entry) bool {
		fn(memory.Line(k), e.state)
		return true
	})
}

// Access submits a memory request. It must be called from a simulation
// event; completion is reported through req.Done.
func (rn *RN) Access(req *Request) {
	req.issued = rn.sys.Engine.Now()
	switch req.Kind {
	case Load:
		rn.Stats.Loads++
	case Store:
		rn.Stats.Stores++
	case AMO:
		rn.Stats.AMOs++
		if req.NoReturn {
			rn.Stats.AMOStoreOps++
		} else {
			rn.Stats.AMOLoadOps++
		}
	}
	if rn.sys.Obs != nil {
		class := obs.ClassLoad
		switch req.Kind {
		case Store:
			class = obs.ClassStore
		case AMO:
			// Provisional: reclassified to near/far once placement is known.
			class = obs.ClassAMO
		}
		req.obs = rn.sys.Obs.BeginTxn(req.issued, class, req.Addr, rn.id)
	}
	rn.sys.Engine.ScheduleKind(rn.sys.Cfg.L1Latency, perf.KindRN, func() { rn.lookup(req, true) })
}

// lookup runs after the L1 tag/data access. chargeL2 is false for replayed
// requests, which already paid their lookup latency.
func (rn *RN) lookup(req *Request, chargeL2 bool) {
	line := memory.LineOf(req.Addr)
	if e, ok := rn.l1.Lookup(uint64(line)); ok {
		rn.Stats.L1Hits++
		rn.serve(req, line, e.state, true)
		return
	}
	rn.Stats.L1Misses++
	if m, ok := rn.mshrs[line]; ok {
		// A fill for this line is in flight; merge.
		rn.sys.Obs.Phase(req.obs, rn.sys.Engine.Now(), obs.PhaseMSHRWait)
		m.reqs = append(m.reqs, req)
		return
	}
	if !chargeL2 {
		rn.afterL2(req, line)
		return
	}
	rn.sys.Engine.ScheduleKind(rn.sys.Cfg.L2Latency, perf.KindRN, func() { rn.afterL2(req, line) })
}

// afterL2 runs once the L2 has been probed.
func (rn *RN) afterL2(req *Request, line memory.Line) {
	if m, ok := rn.mshrs[line]; ok {
		rn.sys.Obs.Phase(req.obs, rn.sys.Engine.Now(), obs.PhaseMSHRWait)
		m.reqs = append(m.reqs, req)
		return
	}
	if e, ok := rn.l2.Lookup(uint64(line)); ok {
		rn.Stats.L2Hits++
		st := e.state
		if req.Kind == AMO && !st.Unique() {
			if rn.decide(line, st) == Far {
				// Far AMO leaves the (shared) L2 copy in place; the HN's
				// snoop invalidates it as part of the atomic transaction.
				rn.issueFarAMO(req, line)
				return
			}
			// Near: promote and upgrade, without consulting the policy a
			// second time from serve.
			rn.l2.Remove(uint64(line))
			rn.installL1(line, st, false)
			rn.requestUnique(req, line, st, true)
			return
		}
		// Promote to L1 and serve there.
		rn.l2.Remove(uint64(line))
		rn.installL1(line, st, false)
		rn.serve(req, line, st, true)
		return
	}
	rn.Stats.L2Misses++
	rn.miss(req, line)
}

// serve handles a request whose line is present in the L1 with state st.
// countHit controls whether the access feeds the predictor's reuse bit.
func (rn *RN) serve(req *Request, line memory.Line, st memory.State, countHit bool) {
	switch req.Kind {
	case Load:
		if countHit {
			rn.sys.Policy.OnHit(rn.id, line)
		}
		rn.complete(req, rn.sys.Data.Load(req.Addr))
	case Store:
		if countHit {
			rn.sys.Policy.OnHit(rn.id, line)
		}
		if st.Unique() {
			rn.setL1State(line, memory.UniqueDirty)
			rn.sys.Data.StoreWord(req.Addr, req.Operand)
			rn.complete(req, 0)
			return
		}
		rn.requestUnique(req, line, st, false)
	case AMO:
		if st.Unique() {
			// countHit is false exactly when this AMO initiated the fill
			// that granted uniqueness; it was already counted as a
			// transaction-backed near AMO.
			if countHit {
				rn.sys.Policy.OnHit(rn.id, line)
				rn.Stats.AMONearLocal++
			}
			rn.finishNearAMO(req, line)
			return
		}
		if rn.decide(line, st) == Far {
			rn.issueFarAMO(req, line)
			return
		}
		rn.requestUnique(req, line, st, true)
	}
}

// decide asks the policy for a placement; unique states never reach here.
func (rn *RN) decide(line memory.Line, st memory.State) Placement {
	return rn.sys.Policy.Decide(rn.id, line, st)
}

// finishNearAMO applies an AMO locally on a unique line.
func (rn *RN) finishNearAMO(req *Request, line memory.Line) {
	rn.sys.Obs.Reclass(req.obs, obs.ClassNearAMO)
	rn.sys.Obs.ProfileAMO(line.Base(), false)
	old := rn.sys.Data.AMO(req.Op, req.Addr, req.Operand, req.Compare)
	rn.setL1State(line, memory.UniqueDirty)
	rn.sys.Policy.OnNearComplete(rn.id, line)
	rn.complete(req, old)
}

// miss handles a request whose line is absent from the private hierarchy.
func (rn *RN) miss(req *Request, line memory.Line) {
	switch req.Kind {
	case Load:
		rn.startFill(req, line, false, txnReadShared, memory.Invalid)
		rn.maybePrefetch(line)
	case Store:
		rn.startFill(req, line, false, txnReadUnique, memory.Invalid)
	case AMO:
		if rn.decide(line, memory.Invalid) == Far {
			rn.issueFarAMO(req, line)
			return
		}
		rn.Stats.AMONearTxn++
		rn.sys.Obs.Reclass(req.obs, obs.ClassNearAMO)
		rn.startFill(req, line, true, txnReadUnique, memory.Invalid)
	}
}

// requestUnique upgrades a present, non-unique line to unique state on
// behalf of req (a store or a near AMO). If an upgrade or fill is already
// in flight for the line — e.g. two stores replayed from the same fill —
// the request merges into it instead of issuing a duplicate transaction.
func (rn *RN) requestUnique(req *Request, line memory.Line, st memory.State, byAMO bool) {
	if byAMO {
		rn.sys.Obs.Reclass(req.obs, obs.ClassNearAMO)
	}
	if m, ok := rn.mshrs[line]; ok {
		rn.sys.Obs.Phase(req.obs, rn.sys.Engine.Now(), obs.PhaseMSHRWait)
		m.reqs = append(m.reqs, req)
		return
	}
	if byAMO {
		rn.Stats.AMONearTxn++
	}
	rn.startFill(req, line, byAMO, txnReadUnique, st)
}

// startFill allocates an MSHR and sends a fill transaction to the home
// node. heldState is the current private copy's state (Invalid on a miss).
func (rn *RN) startFill(req *Request, line memory.Line, byAMO bool, kind txnKind, heldState memory.State) {
	rn.mshrs[line] = &mshr{byAMO: byAMO, reqs: []*Request{req}}
	rn.sys.Fail(rn.sys.Check.ObserveMSHRs(rn.sys.Engine.Now(), rn.id, len(rn.mshrs)))
	hn := rn.sys.HomeOf(line)
	rn.sys.Obs.Phase(req.obs, rn.sys.Engine.Now(), obs.PhaseNoCReq)
	msg := &txn{
		kind:      kind,
		line:      line,
		requestor: rn.id,
		hadCopy:   heldState.Present(),
		hadDirty:  heldState.Dirty(),
		obsID:     req.obs,
	}
	rn.sys.send(rn.node, hn.node, noc.ControlFlits, func() { hn.receive(msg) })
}

// maybePrefetch implements the stride-1 L1D prefetcher: two sequential
// demand load misses arm it, and it fetches the next PrefetchDegree lines
// shared (skipping lines already present or in flight).
func (rn *RN) maybePrefetch(line memory.Line) {
	degree := rn.sys.Cfg.PrefetchDegree
	if degree <= 0 {
		return
	}
	switch line {
	case rn.lastMissLine + 1:
		rn.missStreak++
	case rn.lastMissLine:
		// Repeated miss on one line; leave the streak alone.
	default:
		rn.missStreak = 0
	}
	rn.lastMissLine = line
	if rn.missStreak < 2 {
		return
	}
	for d := 1; d <= degree; d++ {
		target := line + memory.Line(d)
		if rn.State(target) != memory.Invalid {
			continue
		}
		if _, busy := rn.mshrs[target]; busy {
			continue
		}
		rn.Stats.Prefetches++
		req := &Request{Kind: Load, Addr: target.Base()}
		rn.startFill(req, target, false, txnReadShared, memory.Invalid)
	}
}

// issueFarAMO ships the AMO to the home node. Far atomics are not tracked
// in the MSHRs: they do not fill the line, and CHI lets them pipeline.
func (rn *RN) issueFarAMO(req *Request, line memory.Line) {
	rn.Stats.AMOFar++
	hn := rn.sys.HomeOf(line)
	rn.sys.Obs.Reclass(req.obs, obs.ClassFarAMO)
	rn.sys.Obs.ProfileAMO(line.Base(), true)
	rn.sys.Obs.Phase(req.obs, rn.sys.Engine.Now(), obs.PhaseNoCReq)
	msg := &txn{
		kind:      txnAtomic,
		line:      line,
		requestor: rn.id,
		amoReq:    req,
		obsID:     req.obs,
	}
	rn.sys.send(rn.node, hn.node, noc.ControlFlits, func() { hn.receive(msg) })
}

// fillArrived installs a granted line and replays the requests that were
// waiting on it.
func (rn *RN) fillArrived(line memory.Line, granted memory.State) {
	m, ok := rn.mshrs[line]
	if !ok {
		rn.sys.Fail(check.Violatef(check.KindProtocol, rn.sys.Engine.Now(),
			"fill granting %v arrived with no outstanding MSHR", granted).AtLine(line).AtCore(rn.id))
		return
	}
	rn.sys.tracef("core %d fill line %#x granted %v (%d waiters)", rn.id, line, granted, len(m.reqs))
	delete(rn.mshrs, line)
	if e, ok := rn.l1.Peek(uint64(line)); ok {
		// Upgrade of a still-present copy.
		e.state = granted
	} else {
		// If the copy was demoted to L2 meanwhile, promote it.
		rn.l2.Remove(uint64(line))
		rn.installL1(line, granted, m.byAMO)
	}
	for i, r := range m.reqs {
		// The initiating request must not set its own reuse bit; replayed
		// requests count as genuine reuse.
		if i == 0 {
			if e, ok := rn.l1.Lookup(uint64(line)); ok {
				rn.serve(r, line, e.state, false)
			} else {
				rn.lookup(r, false) // displaced already (pathological); retry
			}
		} else {
			rn.lookup(r, false)
		}
	}
}

// installL1 inserts a line into the L1, demoting the victim to L2 and
// writing back the L2 victim if one falls out.
func (rn *RN) installL1(line memory.Line, st memory.State, byAMO bool) {
	vk, vv, ev := rn.l1.Insert(uint64(line), l1Entry{state: st})
	rn.sys.Policy.OnFill(rn.id, line, byAMO)
	if ev {
		victim := memory.Line(vk)
		rn.sys.Policy.OnEvict(rn.id, victim)
		rn.installL2(victim, vv.state)
	}
}

// installL2 inserts a line demoted from L1, evicting to the home node if
// the set is full.
func (rn *RN) installL2(line memory.Line, st memory.State) {
	vk, vv, ev := rn.l2.Insert(uint64(line), l2Entry{state: st})
	if ev {
		rn.writeBack(memory.Line(vk), vv.state)
	}
}

// writeBack notifies the home node that this RN dropped its copy (CHI
// WriteBackFull / WriteEvictFull). The RN does not wait for completion.
func (rn *RN) writeBack(line memory.Line, st memory.State) {
	rn.Stats.WriteBacks++
	rn.sys.tracef("core %d writeback line %#x %v", rn.id, line, st)
	hn := rn.sys.HomeOf(line)
	flits := noc.ControlFlits
	if st.Dirty() {
		flits = noc.DataFlits
	}
	var id obs.TxnID
	if rn.sys.Obs != nil {
		now := rn.sys.Engine.Now()
		id = rn.sys.Obs.BeginTxn(now, obs.ClassWriteBack, line.Base(), rn.id)
		rn.sys.Obs.Phase(id, now, obs.PhaseNoCReq)
	}
	msg := &txn{
		kind:      txnWriteBack,
		line:      line,
		requestor: rn.id,
		hadDirty:  st.Dirty(),
		obsID:     id,
	}
	rn.sys.send(rn.node, hn.node, flits, func() { hn.receive(msg) })
}

// setL1State rewrites the state of a line known to be in L1.
func (rn *RN) setL1State(line memory.Line, st memory.State) {
	if e, ok := rn.l1.Peek(uint64(line)); ok {
		e.state = st
		return
	}
	rn.sys.Fail(check.Violatef(check.KindProtocol, rn.sys.Engine.Now(),
		"state rewrite to %v on a line absent from the L1", st).AtLine(line).AtCore(rn.id))
}

// handleSnoop processes a snoop from the home node after an L1 tag lookup
// delay, then responds. invalidate selects SnpUnique semantics; otherwise
// the snoop is a SnpShared downgrade.
func (rn *RN) handleSnoop(line memory.Line, invalidate bool, respond func(hadCopy, dirty bool)) {
	rn.Stats.SnoopsReceived++
	rn.sys.Engine.ScheduleKind(rn.sys.Cfg.L1Latency, perf.KindRN, func() {
		hadCopy := false
		dirty := false
		apply := func(st memory.State) memory.State {
			hadCopy = true
			dirty = st.Dirty()
			if invalidate {
				rn.Stats.Invalidations++
				rn.sys.Policy.OnInvalidate(rn.id, line)
				return memory.Invalid
			}
			rn.Stats.Downgrades++
			switch st {
			case memory.UniqueDirty:
				return memory.SharedDirty
			case memory.UniqueClean:
				return memory.SharedClean
			default:
				return st
			}
		}
		if e, ok := rn.l1.Peek(uint64(line)); ok {
			if next := apply(e.state); next == memory.Invalid {
				rn.l1.Remove(uint64(line))
			} else {
				e.state = next
			}
		} else if e, ok := rn.l2.Peek(uint64(line)); ok {
			if next := apply(e.state); next == memory.Invalid {
				rn.l2.Remove(uint64(line))
			} else {
				e.state = next
			}
		}
		respond(hadCopy, dirty)
	})
}

// complete finishes a request and updates latency accounting.
func (rn *RN) complete(req *Request, value uint64) {
	lat := uint64(rn.sys.Engine.Now() - req.issued)
	switch req.Kind {
	case AMO:
		rn.Stats.AMOLatencySum += lat
	case Load:
		rn.Stats.LoadLatencySum += lat
	}
	rn.sys.Obs.EndTxn(req.obs, rn.sys.Engine.Now())
	if req.Done != nil {
		req.Done(value)
	}
}
