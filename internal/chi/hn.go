package chi

import (
	"fmt"
	"math/bits"

	"dynamo/internal/cache"
	"dynamo/internal/check"
	"dynamo/internal/memory"
	"dynamo/internal/noc"
	"dynamo/internal/obs"
	"dynamo/internal/perf"
	"dynamo/internal/sim"
)

// txnKind classifies home-node transactions.
type txnKind uint8

const (
	txnReadShared txnKind = iota
	txnReadUnique
	txnWriteBack
	txnAtomic
)

func (k txnKind) String() string {
	switch k {
	case txnReadShared:
		return "ReadShared"
	case txnReadUnique:
		return "ReadUnique"
	case txnWriteBack:
		return "WriteBack"
	case txnAtomic:
		return "Atomic"
	}
	return fmt.Sprintf("txnKind(%d)", uint8(k))
}

// txn is a request-node message to a home node.
type txn struct {
	kind      txnKind
	line      memory.Line
	requestor int
	hadCopy   bool // requestor holds a valid copy (upgrade)
	hadDirty  bool // requestor's copy/writeback data is dirty
	amoReq    *Request
	obsID     obs.TxnID
}

// HNStats counts home-node activity.
type HNStats struct {
	ReadShared, ReadUnique, WriteBacks, Atomics uint64
	AtomicLoads, AtomicStores                   uint64
	LLCHits, LLCMisses                          uint64
	AMOBufHits, AMOBufMisses                    uint64
	SnoopsSent                                  uint64
	DirtyForwards                               uint64
}

// dirEntry is the directory's view of one line: which RNs hold copies and
// which one (if any) is responsible for dirty data.
type dirEntry struct {
	owner   int // -1 when no unique/dirty owner
	sharers uint64
}

type llcEntry struct {
	dirty bool
}

// HN is one home-node slice: the point of coherence for the lines it owns,
// holding the directory, an exclusive LLC slice, and the far-AMO ALU with
// its small AMO buffer (Section III-B2 of the paper).
type HN struct {
	sys    *System
	idx    int
	node   int
	dir    map[memory.Line]*dirEntry
	llc    *cache.SetAssoc[llcEntry]
	amoBuf *cache.SetAssoc[struct{}]
	// busy marks lines with an active transaction; the slice holds queued
	// transaction starters (CHI TBE blocking).
	busy    map[memory.Line][]func()
	aluFree sim.Tick
	Stats   HNStats
}

func newHN(s *System, idx, node int) *HN {
	return &HN{
		sys:    s,
		idx:    idx,
		node:   node,
		dir:    make(map[memory.Line]*dirEntry),
		llc:    cache.NewSetAssoc[llcEntry](s.Cfg.LLCSets, s.Cfg.LLCWays),
		amoBuf: cache.NewSetAssoc[struct{}](1, s.Cfg.AMOBufEntries),
		busy:   make(map[memory.Line][]func()),
	}
}

// Node returns the mesh node of this slice.
func (hn *HN) Node() int { return hn.node }

// Directory returns the sharer set and owner for a line (tests only).
func (hn *HN) Directory(line memory.Line) (owner int, sharers uint64) {
	if e, ok := hn.dir[line]; ok {
		return e.owner, e.sharers
	}
	return -1, 0
}

// receive accepts a transaction, serializing per line. The hn-dir phase
// opens at arrival time, so it includes any wait for the line's TBE
// (per-line transaction serialization) on top of the pipeline latency.
func (hn *HN) receive(t *txn) {
	now := hn.sys.Engine.Now()
	hn.sys.Obs.Phase(t.obsID, now, obs.PhaseHNDir)
	hn.sys.tracef("hn%d recv %s line %#x from core %d", hn.idx, t.kind, t.line, t.requestor)
	start := func() { hn.start(t) }
	if _, active := hn.busy[t.line]; active {
		hn.busy[t.line] = append(hn.busy[t.line], start)
		hn.sys.Fail(hn.sys.Check.ObserveBusy(now, hn.idx, len(hn.busy), len(hn.busy[t.line])))
		return
	}
	hn.busy[t.line] = nil
	hn.sys.Fail(hn.sys.Check.ObserveBusy(now, hn.idx, len(hn.busy), 0))
	start()
}

// release finishes the active transaction on a line and starts the next
// queued one, if any. When a sanitizer is attached and the line goes idle,
// the line is audited: with no transaction left in flight the caches and
// directory must agree on it.
func (hn *HN) release(line memory.Line) {
	q, active := hn.busy[line]
	if !active {
		hn.sys.Fail(check.Violatef(check.KindProtocol, hn.sys.Engine.Now(),
			"release of an idle line: no transaction is active").AtLine(line).AtHN(hn.idx))
		return
	}
	if len(q) == 0 {
		delete(hn.busy, line)
		if hn.sys.Check != nil {
			hn.sys.Check.CountReleaseAudit()
			hn.sys.Fail(hn.sys.auditLine(line))
		}
		return
	}
	hn.busy[line] = q[1:]
	q[0]()
}

func (hn *HN) entry(line memory.Line) *dirEntry {
	e, ok := hn.dir[line]
	if !ok {
		e = &dirEntry{owner: -1}
		hn.dir[line] = e
	}
	return e
}

func (hn *HN) dropIfEmpty(line memory.Line) {
	if e, ok := hn.dir[line]; ok && e.sharers == 0 {
		delete(hn.dir, line)
	}
}

// start dispatches a transaction after the directory pipeline latency.
func (hn *HN) start(t *txn) {
	hn.sys.Engine.ScheduleKind(hn.sys.Cfg.DirLatency, perf.KindHN, func() {
		switch t.kind {
		case txnReadShared:
			hn.Stats.ReadShared++
			hn.readShared(t)
		case txnReadUnique:
			hn.Stats.ReadUnique++
			hn.readUnique(t)
		case txnWriteBack:
			hn.Stats.WriteBacks++
			hn.writeBack(t)
		case txnAtomic:
			hn.Stats.Atomics++
			hn.atomic(t)
		}
	})
}

// snoopAll sends parallel snoops to every RN in the targets bitmask and
// calls cont once all responses arrive. anyDirty reports whether any
// snooped copy held dirty data; present is the mask of RNs that actually
// still held the line. parent is the observed transaction the snoops serve
// (its snoop phase covers the full round-trip fan-out); each individual
// snoop is additionally tracked as a ClassSnoop transaction of its own.
func (hn *HN) snoopAll(parent obs.TxnID, targets uint64, line memory.Line, invalidate bool, cont func(anyDirty bool, present uint64)) {
	n := bits.OnesCount64(targets)
	if n == 0 {
		cont(false, 0)
		return
	}
	hn.sys.Obs.Phase(parent, hn.sys.Engine.Now(), obs.PhaseSnoop)
	hn.sys.Obs.ProfileSnoop(line.Base(), n)
	pending := n
	anyDirty := false
	var present uint64
	for t := targets; t != 0; t &= t - 1 {
		core := bits.TrailingZeros64(t)
		rn := hn.sys.RNs[core]
		hn.Stats.SnoopsSent++
		var sid obs.TxnID
		if hn.sys.Obs != nil {
			sid = hn.sys.Obs.BeginTxn(hn.sys.Engine.Now(), obs.ClassSnoop, line.Base(), core)
		}
		hn.sys.send(hn.node, rn.node, noc.ControlFlits, func() {
			rn.handleSnoop(line, invalidate, func(hadCopy, dirty bool) {
				flits := noc.ControlFlits
				if dirty {
					flits = noc.DataFlits
					hn.Stats.DirtyForwards++
					hn.sys.Obs.ProfileSnoopForward(line.Base())
				}
				var jitter sim.Tick
				if hn.sys.snoopJitter != nil {
					jitter = hn.sys.snoopJitter(core, line)
				}
				hn.sys.sendDelayed(rn.node, hn.node, flits, jitter, func() {
					hn.sys.Obs.EndTxn(sid, hn.sys.Engine.Now())
					if hadCopy {
						present |= 1 << uint(core)
					}
					if dirty {
						anyDirty = true
					}
					pending--
					if pending == 0 {
						cont(anyDirty, present)
					}
				})
			})
		})
	}
}

// lineData resolves when the line's data is available at the HN: the AMO
// buffer, the LLC data array, or main memory (installing into the LLC on a
// memory fill). forAtomic selects AMO-buffer participation. obsID is the
// observed transaction waiting on the data: SRAM-served lines enter the
// hn-data phase, memory fills the hbm phase.
func (hn *HN) lineData(obsID obs.TxnID, line memory.Line, forAtomic bool) (ready sim.Tick) {
	now := hn.sys.Engine.Now()
	if forAtomic {
		if _, ok := hn.amoBuf.Lookup(uint64(line)); ok {
			hn.Stats.AMOBufHits++
			hn.sys.Obs.Phase(obsID, now, obs.PhaseHNData)
			return now + hn.sys.Cfg.AMOBufLatency
		}
		hn.Stats.AMOBufMisses++
	}
	if _, ok := hn.llc.Lookup(uint64(line)); ok {
		hn.Stats.LLCHits++
		hn.sys.Obs.Phase(obsID, now, obs.PhaseHNData)
		return now + hn.sys.Cfg.LLCDataLatency
	}
	hn.Stats.LLCMisses++
	hn.sys.Obs.Phase(obsID, now, obs.PhaseHBM)
	done := hn.sys.Mem.Read(line, now)
	hn.llcInsert(line, false)
	return done
}

// llcInsert caches a line in the LLC slice, writing back a dirty victim.
func (hn *HN) llcInsert(line memory.Line, dirty bool) {
	if e, ok := hn.llc.Peek(uint64(line)); ok {
		e.dirty = e.dirty || dirty
		return
	}
	vk, vv, ev := hn.llc.Insert(uint64(line), llcEntry{dirty: dirty})
	if ev && vv.dirty {
		hn.sys.Mem.Write(memory.Line(vk), hn.sys.Engine.Now())
	}
}

// respond sends the completing message of a fill transaction back to the
// requestor. The line stays blocked at the home node until the requestor's
// CompAck arrives after installing the fill — CHI's transaction-completion
// handshake, without which a subsequent transaction's snoop could reach
// the requestor before its fill and split ownership of the line.
func (hn *HN) respond(t *txn, granted memory.State, withData bool) {
	rn := hn.sys.RNs[t.requestor]
	flits := noc.ControlFlits
	if withData {
		flits = noc.DataFlits
	}
	hn.sys.Obs.Phase(t.obsID, hn.sys.Engine.Now(), obs.PhaseNoCResp)
	hn.sys.tracef("hn%d respond line %#x -> core %d %v", hn.idx, t.line, t.requestor, granted)
	hn.sys.send(hn.node, rn.node, flits, func() {
		rn.fillArrived(t.line, granted)
		hn.sys.send(rn.node, hn.node, noc.ControlFlits, func() { hn.release(t.line) })
	})
}

// readShared implements the CHI ReadShared flow: downgrade the owner if one
// exists, otherwise source data from LLC or memory. A sole reader is
// granted UniqueClean (CHI permits UC on ReadShared), enabling silent
// upgrades — this is what makes single-threaded near AMOs cheap.
func (hn *HN) readShared(t *txn) {
	e := hn.entry(t.line)
	rbit := uint64(1) << uint(t.requestor)
	if e.owner >= 0 && e.owner != t.requestor {
		owner := e.owner
		hn.snoopAll(t.obsID, 1<<uint(owner), t.line, false, func(dirty bool, present uint64) {
			if present == 0 {
				// The owner's copy evaporated (writeback in flight); fall
				// back to the memory path.
				e.sharers &^= 1 << uint(owner)
				e.owner = -1
				hn.readSharedFromHome(t, e, rbit)
				return
			}
			if !dirty {
				// UC downgraded to SC: nobody owns dirty data now.
				e.owner = -1
			}
			e.sharers |= rbit
			hn.respond(t, memory.SharedClean, true)
		})
		return
	}
	hn.readSharedFromHome(t, e, rbit)
}

// readSharedFromHome sources data from the LLC or memory when no remote
// owner needs snooping.
func (hn *HN) readSharedFromHome(t *txn, e *dirEntry, rbit uint64) {
	granted := memory.SharedClean
	if e.sharers&^rbit == 0 {
		granted = memory.UniqueClean
	}
	ready := hn.lineData(t.obsID, t.line, false)
	hn.sys.Engine.AtKind(ready, perf.KindHN, func() {
		e.sharers |= rbit
		if granted.Unique() {
			e.owner = t.requestor
			// Exclusive with respect to unique holders.
			hn.llc.Remove(uint64(t.line))
		}
		hn.respond(t, granted, true)
	})
}

// readUnique implements the CHI ReadUnique/CleanUnique flow: invalidate all
// other copies, grant the requestor exclusive ownership.
func (hn *HN) readUnique(t *txn) {
	e := hn.entry(t.line)
	rbit := uint64(1) << uint(t.requestor)
	targets := e.sharers &^ rbit
	hn.snoopAll(t.obsID, targets, t.line, true, func(anyDirty bool, _ uint64) {
		// Whether the requestor still holds its copy decides between an
		// upgrade (dataless response) and a full fill.
		stillHeld := t.hadCopy && e.sharers&rbit != 0
		e.owner = t.requestor
		e.sharers = rbit
		hn.llc.Remove(uint64(t.line))
		switch {
		case stillHeld:
			granted := memory.UniqueClean
			if t.hadDirty {
				granted = memory.UniqueDirty
			}
			hn.respond(t, granted, false)
		case anyDirty:
			// Dirty data migrates from the previous owner.
			hn.respond(t, memory.UniqueDirty, true)
		default:
			ready := hn.lineData(t.obsID, t.line, false)
			hn.sys.Engine.AtKind(ready, perf.KindHN, func() {
				hn.llc.Remove(uint64(t.line))
				hn.respond(t, memory.UniqueClean, true)
			})
		}
	})
}

// writeBack implements WriteBackFull/WriteEvictFull: the RN dropped its
// copy; cache the line at the LLC if no one else holds it.
func (hn *HN) writeBack(t *txn) {
	e := hn.entry(t.line)
	rbit := uint64(1) << uint(t.requestor)
	e.sharers &^= rbit
	if e.owner == t.requestor {
		e.owner = -1
	}
	if e.sharers == 0 {
		hn.llcInsert(t.line, t.hadDirty)
	}
	hn.dropIfEmpty(t.line)
	hn.sys.Obs.EndTxn(t.obsID, hn.sys.Engine.Now())
	hn.release(t.line)
}

// atomic implements the far AMO flow of Fig. 2: invalidate every copy
// (including, pathologically, the requestor's own unique copy), execute the
// operation at the home node's ALU, and answer with data (AtomicLoad) or an
// early acknowledgment (AtomicStore).
func (hn *HN) atomic(t *txn) {
	req := t.amoReq
	if req.NoReturn {
		hn.Stats.AtomicStores++
	} else {
		hn.Stats.AtomicLoads++
	}
	e := hn.entry(t.line)
	hn.snoopAll(t.obsID, e.sharers, t.line, true, func(anyDirty bool, _ uint64) {
		e.owner = -1
		e.sharers = 0
		hn.dropIfEmpty(t.line)
		rn := hn.sys.RNs[t.requestor]

		// The data fetch is off the requestor's critical path for a
		// no-return atomic (the ack below leaves immediately), so only
		// value-returning atomics attribute it as a phase.
		dataID := t.obsID
		if req.NoReturn {
			dataID = 0
		}
		var ready sim.Tick
		if anyDirty {
			ready = hn.sys.Engine.Now() // data arrived with the snoop response
		} else {
			ready = hn.lineData(dataID, t.line, true)
		}

		// AtomicStore completes for the requestor as soon as coherence is
		// resolved, before the ALU executes (Section III-B1). The observed
		// transaction ends at the acknowledgment, so the residual ALU work
		// shows up only in the "far-amo" occupancy span, not as a phase.
		if req.NoReturn {
			hn.sys.Obs.Phase(t.obsID, hn.sys.Engine.Now(), obs.PhaseNoCResp)
			hn.sys.send(hn.node, rn.node, noc.ControlFlits, func() {
				rn.complete(req, 0)
			})
		}
		start := ready
		if hn.aluFree > start {
			start = hn.aluFree
		}
		hn.aluFree = start + hn.sys.Cfg.FarAMOOccupancy
		// ALU queue wait plus occupancy: how long this far AMO held the HN.
		hn.sys.Obs.ProfileHNOccupancy(t.line.Base(), hn.aluFree-ready)
		if !req.NoReturn {
			hn.sys.Obs.Phase(t.obsID, start, obs.PhaseALU)
		}
		hn.sys.Obs.Span(obs.Track{Group: obs.TrackHN, ID: hn.idx}, "far-amo", start, hn.sys.Cfg.FarAMOOccupancy)
		execAt := start + hn.sys.Cfg.ALULatency
		hn.sys.Engine.AtKind(execAt, perf.KindHN, func() {
			old := hn.sys.Data.AMO(req.Op, req.Addr, req.Operand, req.Compare)
			hn.amoBuf.Insert(uint64(t.line), struct{}{})
			hn.llcInsert(t.line, true)
			if !req.NoReturn {
				hn.sys.Obs.Phase(t.obsID, hn.sys.Engine.Now(), obs.PhaseNoCResp)
				hn.sys.send(hn.node, rn.node, noc.ControlFlits, func() {
					rn.complete(req, old)
				})
			}
			hn.release(t.line)
		})
	})
}
