package chi

import (
	"testing"

	"dynamo/internal/memory"
)

// Targeted tests for home-node paths not covered by the scenario tests:
// directory bookkeeping on writebacks with surviving sharers, the
// owner-evaporated fallback, and far AMOs against L2-resident copies.

func TestWriteBackWithSurvivingSharersDrops(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	// Two sharers; force core 0 to evict its copy through set pressure.
	run(t, s, 0, &Request{Kind: Load, Addr: 0x40000})
	run(t, s, 1, &Request{Kind: Load, Addr: 0x40000})
	line := memory.LineOf(0x40000)
	hn := s.HomeOf(line)
	_, sharersBefore := hn.Directory(line)
	if sharersBefore != 0b11 {
		t.Fatalf("sharers = %b, want 0b11", sharersBefore)
	}
	// Evict from core 0: thrash its L1 set 0 and L2 set 0 (the line's
	// sets). 0x40000 is line 0x1000, set 0 in both 16-set L1 and 64-set L2.
	for i := 1; i <= 13; i++ {
		addr := memory.Addr(0x40000) + memory.Addr(i)*64*memory.LineSize*16
		run(t, s, 0, &Request{Kind: Load, Addr: addr})
	}
	if st := s.RNs[0].State(line); st != memory.Invalid {
		t.Fatalf("core 0 still holds %v", st)
	}
	// Core 1's copy and directory entry must survive the writeback.
	if st := s.RNs[1].State(line); st != memory.SharedClean {
		t.Fatalf("core 1 state = %v, want SC", st)
	}
	_, sharersAfter := hn.Directory(line)
	if sharersAfter != 0b10 {
		t.Fatalf("sharers after writeback = %b, want 0b10", sharersAfter)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestFarAMOAgainstL2Copy(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	// Cores 0 and 1 share the line (SC), then core 0 demotes its copy to
	// L2 via L1 set pressure (clean, so no writeback).
	run(t, s, 0, &Request{Kind: Load, Addr: 0x50000})
	run(t, s, 1, &Request{Kind: Load, Addr: 0x50000})
	for i := 1; i <= 4; i++ {
		addr := memory.Addr(0x50000) + memory.Addr(i)*16*memory.LineSize
		run(t, s, 0, &Request{Kind: Load, Addr: addr})
	}
	line := memory.LineOf(0x50000)
	if st := s.RNs[0].State(line); st != memory.SharedClean {
		t.Fatalf("setup: core 0 state = %v, want SC (in L2)", st)
	}
	// A far AMO from core 0 itself on the shared L2 copy: the far policy
	// applies (SC is not unique), and the HN's snoop must clear both
	// cores' copies.
	v, _ := run(t, s, 0, &Request{Kind: AMO, Addr: 0x50000, Op: memory.AMOAdd, Operand: 3})
	if v != 0 {
		t.Fatalf("AMO old = %d, want 0", v)
	}
	if st := s.RNs[0].State(line); st != memory.Invalid {
		t.Fatalf("core 0 L2 copy survived a far AMO: %v", st)
	}
	if st := s.RNs[1].State(line); st != memory.Invalid {
		t.Fatalf("core 1 copy survived a far AMO: %v", st)
	}
	if got := s.Data.Load(0x50000); got != 3 {
		t.Fatalf("value = %d, want 3", got)
	}
	if s.RNs[0].Stats.AMOFar != 1 {
		t.Fatalf("AMOFar = %d, want 1", s.RNs[0].Stats.AMOFar)
	}
}

func TestDirectoryDropsEmptyEntries(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	// A far AMO on an uncached line leaves no sharers; the directory entry
	// must not linger.
	run(t, s, 0, &Request{Kind: AMO, Addr: 0x60000, Op: memory.AMOAdd, Operand: 1, NoReturn: true})
	line := memory.LineOf(0x60000)
	owner, sharers := s.HomeOf(line).Directory(line)
	if owner != -1 || sharers != 0 {
		t.Fatalf("directory entry lingers: owner=%d sharers=%b", owner, sharers)
	}
}

func TestUpgradeAfterCopyEvaporates(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	// Core 0 and 1 share; core 1's store upgrade races core 0's store.
	// Whichever loses its copy mid-flight must still end with correct data
	// (exercises the stale-hadCopy fallback in readUnique).
	run(t, s, 0, &Request{Kind: Load, Addr: 0x70000})
	run(t, s, 1, &Request{Kind: Load, Addr: 0x70000})
	done := 0
	s.Engine.Schedule(0, func() {
		s.RNs[0].Access(&Request{Kind: Store, Addr: 0x70000, Operand: 1, Done: func(uint64) { done++ }})
	})
	s.Engine.Schedule(1, func() {
		s.RNs[1].Access(&Request{Kind: Store, Addr: 0x70000 + 8, Operand: 2, Done: func(uint64) { done++ }})
	})
	if !s.Engine.RunUntil(func() bool { return done == 2 }, 1_000_000) {
		t.Fatal("stores did not complete")
	}
	s.Engine.Run(0)
	if s.Data.Load(0x70000) != 1 || s.Data.Load(0x70000+8) != 2 {
		t.Fatal("a store was lost")
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
