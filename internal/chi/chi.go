// Package chi implements the cache-coherent interconnect substrate: request
// nodes (cores' private L1D+L2 hierarchies), home nodes (directory slice +
// exclusive LLC slice + far-AMO ALU with its AMO buffer) and the AMBA 5
// CHI-style transaction flows between them, including both near and far
// atomic transactions as described in Fig. 2 of the DynAMO paper.
//
// The protocol is intentionally race-reduced compared to a full CHI
// implementation: the home node serializes transactions per cache line
// (modeling CHI's per-line TBE blocking), and each request node keeps at
// most one outstanding *fill* transaction per line (far atomics are
// fire-and-forget and pipeline freely). Functional data lives in a global
// memory.Store updated at the serialization point of each write, so no
// update can ever be lost regardless of message timing.
package chi

import (
	"fmt"

	"dynamo/internal/check"
	"dynamo/internal/hbm"
	"dynamo/internal/memory"
	"dynamo/internal/noc"
	"dynamo/internal/obs"
	"dynamo/internal/perf"
	"dynamo/internal/sim"
)

// Placement says where an AMO executes.
type Placement uint8

const (
	// Near executes the AMO in the requesting core's L1D after acquiring
	// the line in unique state.
	Near Placement = iota
	// Far ships the AMO to the home node's ALU.
	Far
)

// String returns "near" or "far".
func (p Placement) String() string {
	if p == Near {
		return "near"
	}
	return "far"
}

// Policy decides AMO placement and receives the L1D events the DynAMO
// predictor learns from. Implementations live in internal/core. All methods
// are invoked from simulation events, i.e. single-threaded.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide picks a placement for an AMO issued by core to line, whose
	// current state in the core's private hierarchy is st. It is only
	// consulted when st is not Unique (unique blocks always execute near).
	Decide(core int, line memory.Line, st memory.State) Placement
	// OnNearComplete records a near AMO completed by core on line.
	OnNearComplete(core int, line memory.Line)
	// OnFill records a line installed into core's L1D; byAMO is true when a
	// near AMO caused the fill.
	OnFill(core int, line memory.Line, byAMO bool)
	// OnHit records any L1-present access to line other than the access
	// that installed it.
	OnHit(core int, line memory.Line)
	// OnEvict records a capacity eviction of line from core's L1D.
	OnEvict(core int, line memory.Line)
	// OnInvalidate records a snoop invalidation of line at core.
	OnInvalidate(core int, line memory.Line)
}

// Config sizes the coherent system. The zero value is invalid; start from
// the machine package's DefaultConfig.
type Config struct {
	Cores    int
	HNSlices int

	L1Sets, L1Ways   int
	L2Sets, L2Ways   int
	LLCSets, LLCWays int // per slice
	AMOBufEntries    int // fully associative, per slice

	L1Latency      sim.Tick // L1D data array access
	L2Latency      sim.Tick // L2 access
	DirLatency     sim.Tick // HN directory/tag pipeline
	LLCDataLatency sim.Tick // LLC data SRAM access
	ALULatency     sim.Tick // far-AMO ALU operation
	AMOBufLatency  sim.Tick // AMO buffer access (bypasses LLC SRAM)
	// FarAMOOccupancy is the per-operation serialization of the HN atomic
	// pipeline: back-to-back far AMOs to one slice are spaced by this many
	// cycles.
	FarAMOOccupancy sim.Tick
	// PrefetchDegree enables a stride-1 L1D prefetcher (Table II lists a
	// stride prefetcher): after two sequential load misses, the next
	// PrefetchDegree lines are fetched shared. Zero disables prefetching,
	// the default the evaluation is calibrated against.
	PrefetchDegree int

	Mesh noc.Config
	Mem  hbm.Config

	// Obs, when non-nil, receives transaction lifecycle events from every
	// component (see package obs). A nil bus costs one nil check per probe.
	Obs *obs.Bus
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.HNSlices <= 0 {
		return fmt.Errorf("chi: %d cores / %d HN slices", c.Cores, c.HNSlices)
	}
	if c.Cores > 64 {
		return fmt.Errorf("chi: %d cores exceed the 64-bit sharer bitmask", c.Cores)
	}
	if c.HNSlices&(c.HNSlices-1) != 0 {
		return fmt.Errorf("chi: HN slices %d not a power of two", c.HNSlices)
	}
	for _, g := range [][2]int{{c.L1Sets, c.L1Ways}, {c.L2Sets, c.L2Ways}, {c.LLCSets, c.LLCWays}} {
		if g[0] <= 0 || g[1] <= 0 || g[0]&(g[0]-1) != 0 {
			return fmt.Errorf("chi: bad cache geometry %dx%d", g[0], g[1])
		}
	}
	if c.AMOBufEntries <= 0 {
		return fmt.Errorf("chi: AMO buffer needs at least one entry")
	}
	if c.PrefetchDegree < 0 || c.PrefetchDegree > 16 {
		return fmt.Errorf("chi: prefetch degree %d out of range", c.PrefetchDegree)
	}
	if c.L1Latency == 0 || c.L2Latency == 0 || c.LLCDataLatency == 0 {
		return fmt.Errorf("chi: zero cache latency")
	}
	if err := c.Mesh.Validate(); err != nil {
		return err
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	if c.Mesh.Width*c.Mesh.Height < c.Cores+c.HNSlices {
		return fmt.Errorf("chi: mesh %dx%d too small for %d RNs + %d HNs",
			c.Mesh.Width, c.Mesh.Height, c.Cores, c.HNSlices)
	}
	return nil
}

// System is the assembled coherent machine.
type System struct {
	Cfg    Config
	Engine *sim.Engine
	Mesh   *noc.Mesh
	Mem    *hbm.Memory
	Data   *memory.Store
	Policy Policy
	Obs    *obs.Bus
	RNs    []*RN
	HNs    []*HN

	// Check is the attached sanitizer (nil when checking is off); Trail
	// records recent protocol events for violation context; Violation
	// holds the first invariant failure, after which the engine stops.
	// See sanitize.go and package check.
	Check     *check.Checker
	Trail     *check.Trail
	Violation *check.Violation
	// snoopJitter, when non-nil, adds chaos delay to each snoop response
	// (see SetSnoopJitter).
	snoopJitter func(core int, line memory.Line) sim.Tick
}

// NewSystem wires cores, home nodes, interconnect and memory. RNs occupy
// mesh nodes where (x+y) is even in row-major order; HN slices occupy odd
// nodes, mirroring the distributed-slice placement of CMN-style meshes.
func NewSystem(cfg Config, policy Policy) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("chi: nil policy")
	}
	mesh, err := noc.New(cfg.Mesh)
	if err != nil {
		return nil, err
	}
	mem, err := hbm.New(cfg.Mem)
	if err != nil {
		return nil, err
	}
	mesh.AttachObs(cfg.Obs)
	mem.AttachObs(cfg.Obs)
	s := &System{
		Cfg:    cfg,
		Engine: sim.NewEngine(),
		Mesh:   mesh,
		Mem:    mem,
		Data:   memory.NewStore(),
		Policy: policy,
		Obs:    cfg.Obs,
	}
	var even, odd []int
	for id := 0; id < mesh.Nodes(); id++ {
		x, y := mesh.XY(id)
		if (x+y)%2 == 0 {
			even = append(even, id)
		} else {
			odd = append(odd, id)
		}
	}
	if len(even) < cfg.Cores || len(odd) < cfg.HNSlices {
		return nil, fmt.Errorf("chi: checkerboard placement cannot fit %d RNs + %d HNs on %dx%d",
			cfg.Cores, cfg.HNSlices, cfg.Mesh.Width, cfg.Mesh.Height)
	}
	for i := 0; i < cfg.Cores; i++ {
		s.RNs = append(s.RNs, newRN(s, i, even[i]))
	}
	for i := 0; i < cfg.HNSlices; i++ {
		s.HNs = append(s.HNs, newHN(s, i, odd[i]))
	}
	return s, nil
}

// HomeOf returns the HN slice owning a line (address interleaved).
func (s *System) HomeOf(line memory.Line) *HN {
	return s.HNs[int(uint64(line)&uint64(s.Cfg.HNSlices-1))]
}

// send delivers a message of the given flit count between mesh nodes and
// runs fn on arrival.
func (s *System) send(from, to, flits int, fn func()) {
	s.sendDelayed(from, to, flits, 0, fn)
}

// sendDelayed is send with extra delay added after the mesh arrival time;
// the chaos injector uses it to reorder snoop responses without occupying
// mesh links for the extra cycles.
func (s *System) sendDelayed(from, to, flits int, extra sim.Tick, fn func()) {
	arrival := s.Mesh.Send(from, to, flits, s.Engine.Now())
	s.Engine.AtKind(arrival+extra, perf.KindNoC, fn)
}

// CheckCoherence verifies the global single-writer/multi-reader invariant:
// for every line, at most one RN holds it Unique, and a Unique holder
// excludes all other copies. It also cross-checks the directory against the
// RN arrays for lines with no in-flight transactions. Tests call it; it
// returns the first violation found.
func (s *System) CheckCoherence() error {
	type holder struct {
		core int
		st   memory.State
	}
	holders := make(map[memory.Line][]holder)
	for _, rn := range s.RNs {
		rn.forEachLine(func(line memory.Line, st memory.State) {
			holders[line] = append(holders[line], holder{rn.id, st})
		})
	}
	for line, hs := range holders {
		uniques, sds := 0, 0
		for _, h := range hs {
			if h.st.Unique() {
				uniques++
			}
			if h.st == memory.SharedDirty {
				sds++
			}
		}
		if uniques > 1 {
			return fmt.Errorf("chi: line %#x held unique by %d cores", line, uniques)
		}
		if uniques == 1 && len(hs) > 1 {
			return fmt.Errorf("chi: line %#x unique at one core but %d copies exist", line, len(hs))
		}
		if sds > 1 {
			return fmt.Errorf("chi: line %#x has %d SharedDirty owners", line, sds)
		}
	}
	return nil
}
