package chi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynamo/internal/hbm"
	"dynamo/internal/memory"
	"dynamo/internal/noc"
	"dynamo/internal/sim"
)

// fixedPolicy always answers the same placement and ignores every event.
type fixedPolicy struct{ p Placement }

func (f fixedPolicy) Name() string                                    { return "fixed-" + f.p.String() }
func (f fixedPolicy) Decide(int, memory.Line, memory.State) Placement { return f.p }
func (f fixedPolicy) OnNearComplete(int, memory.Line)                 {}
func (f fixedPolicy) OnFill(int, memory.Line, bool)                   {}
func (f fixedPolicy) OnHit(int, memory.Line)                          {}
func (f fixedPolicy) OnEvict(int, memory.Line)                        {}
func (f fixedPolicy) OnInvalidate(int, memory.Line)                   {}

func testConfig() Config {
	return Config{
		Cores:           4,
		HNSlices:        4,
		L1Sets:          16,
		L1Ways:          4,
		L2Sets:          64,
		L2Ways:          8,
		LLCSets:         256,
		LLCWays:         8,
		AMOBufEntries:   16,
		L1Latency:       2,
		L2Latency:       8,
		DirLatency:      2,
		LLCDataLatency:  10,
		ALULatency:      1,
		AMOBufLatency:   1,
		FarAMOOccupancy: 4,
		Mesh:            noc.Config{Width: 4, Height: 4, RouteLatency: 1, LinkLatency: 1},
		Mem:             hbm.Config{Channels: 8, Latency: 100, LineOccupancy: 2},
	}
}

func newTestSystem(t testing.TB, p Policy) *System {
	t.Helper()
	s, err := NewSystem(testConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// run issues a request on core and runs the simulation until it completes,
// returning the value and the completion latency.
func run(t *testing.T, s *System, core int, req *Request) (value uint64, latency sim.Tick) {
	t.Helper()
	done := false
	start := s.Engine.Now()
	prev := req.Done
	req.Done = func(v uint64) {
		value = v
		done = true
		if prev != nil {
			prev(v)
		}
	}
	s.Engine.Schedule(0, func() { s.RNs[core].Access(req) })
	if !s.Engine.RunUntil(func() bool { return done }, 1_000_000) {
		t.Fatalf("request %v to %#x did not complete", req.Kind, req.Addr)
	}
	latency = s.Engine.Now() - start
	s.Engine.Run(0) // drain background work (writebacks etc.)
	return value, latency
}

func TestConfigValidation(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 65 },
		func(c *Config) { c.HNSlices = 3 },
		func(c *Config) { c.L1Sets = 0 },
		func(c *Config) { c.L1Sets = 3 },
		func(c *Config) { c.AMOBufEntries = 0 },
		func(c *Config) { c.L1Latency = 0 },
		func(c *Config) { c.Mesh.Width = 0 },
		func(c *Config) { c.Mesh.Width = 1; c.Mesh.Height = 2 },
		func(c *Config) { c.Mem.Channels = 0 },
	}
	for i, m := range mutations {
		c := testConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewSystem(good, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestPlacementString(t *testing.T) {
	if Near.String() != "near" || Far.String() != "far" {
		t.Fatal("Placement.String wrong")
	}
}

func TestLoadMissFillsUniqueClean(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	s.Data.StoreWord(0x1000, 77)
	v, lat := run(t, s, 0, &Request{Kind: Load, Addr: 0x1000})
	if v != 77 {
		t.Fatalf("loaded %d, want 77", v)
	}
	if st := s.RNs[0].State(memory.LineOf(0x1000)); st != memory.UniqueClean {
		t.Fatalf("state after sole read = %v, want UC", st)
	}
	// A miss must cost at least memory latency.
	if lat < 100 {
		t.Fatalf("cold load latency %d < memory latency", lat)
	}
	owner, sharers := s.HomeOf(memory.LineOf(0x1000)).Directory(memory.LineOf(0x1000))
	if owner != 0 || sharers != 1 {
		t.Fatalf("directory owner=%d sharers=%b", owner, sharers)
	}
}

func TestLoadHitIsFast(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	run(t, s, 0, &Request{Kind: Load, Addr: 0x1000})
	_, lat := run(t, s, 0, &Request{Kind: Load, Addr: 0x1000})
	if lat != s.Cfg.L1Latency {
		t.Fatalf("L1 hit latency = %d, want %d", lat, s.Cfg.L1Latency)
	}
}

func TestSecondReaderDowngradesOwner(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	run(t, s, 0, &Request{Kind: Load, Addr: 0x1000})
	run(t, s, 1, &Request{Kind: Load, Addr: 0x1000})
	line := memory.LineOf(0x1000)
	if st := s.RNs[0].State(line); st != memory.SharedClean {
		t.Fatalf("first reader state = %v, want SC", st)
	}
	if st := s.RNs[1].State(line); st != memory.SharedClean {
		t.Fatalf("second reader state = %v, want SC", st)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	run(t, s, 0, &Request{Kind: Load, Addr: 0x2000})
	run(t, s, 1, &Request{Kind: Load, Addr: 0x2000})
	run(t, s, 2, &Request{Kind: Store, Addr: 0x2000, Operand: 5})
	line := memory.LineOf(0x2000)
	if st := s.RNs[0].State(line); st != memory.Invalid {
		t.Fatalf("sharer 0 state = %v, want I", st)
	}
	if st := s.RNs[1].State(line); st != memory.Invalid {
		t.Fatalf("sharer 1 state = %v, want I", st)
	}
	if st := s.RNs[2].State(line); st != memory.UniqueDirty {
		t.Fatalf("writer state = %v, want UD", st)
	}
	if got := s.Data.Load(0x2000); got != 5 {
		t.Fatalf("memory = %d, want 5", got)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyDataMigratesOnReadUnique(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	run(t, s, 0, &Request{Kind: Store, Addr: 0x3000, Operand: 9})
	run(t, s, 1, &Request{Kind: Store, Addr: 0x3000, Operand: 10})
	line := memory.LineOf(0x3000)
	if st := s.RNs[1].State(line); st != memory.UniqueDirty {
		t.Fatalf("new writer state = %v, want UD", st)
	}
	if st := s.RNs[0].State(line); st != memory.Invalid {
		t.Fatalf("old writer state = %v, want I", st)
	}
	if got := s.Data.Load(0x3000); got != 10 {
		t.Fatalf("memory = %d, want 10", got)
	}
}

func TestReadAfterWriteSharesDirty(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	run(t, s, 0, &Request{Kind: Store, Addr: 0x4000, Operand: 3})
	v, _ := run(t, s, 1, &Request{Kind: Load, Addr: 0x4000})
	if v != 3 {
		t.Fatalf("read %d, want 3", v)
	}
	line := memory.LineOf(0x4000)
	if st := s.RNs[0].State(line); st != memory.SharedDirty {
		t.Fatalf("writer downgraded to %v, want SD", st)
	}
	if st := s.RNs[1].State(line); st != memory.SharedClean {
		t.Fatalf("reader state = %v, want SC", st)
	}
}

func TestNearAMOLocalWhenUnique(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	run(t, s, 0, &Request{Kind: Store, Addr: 0x5000, Operand: 10})
	v, lat := run(t, s, 0, &Request{Kind: AMO, Addr: 0x5000, Op: memory.AMOAdd, Operand: 1})
	if v != 10 {
		t.Fatalf("AMO returned %d, want 10", v)
	}
	if lat != s.Cfg.L1Latency {
		t.Fatalf("unique near AMO latency = %d, want %d", lat, s.Cfg.L1Latency)
	}
	if s.RNs[0].Stats.AMONearLocal != 1 {
		t.Fatalf("AMONearLocal = %d", s.RNs[0].Stats.AMONearLocal)
	}
	if got := s.Data.Load(0x5000); got != 11 {
		t.Fatalf("memory = %d, want 11", got)
	}
}

func TestNearAMOMissFetchesUnique(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	v, _ := run(t, s, 0, &Request{Kind: AMO, Addr: 0x6000, Op: memory.AMOAdd, Operand: 7})
	if v != 0 {
		t.Fatalf("AMO returned %d, want 0", v)
	}
	line := memory.LineOf(0x6000)
	if st := s.RNs[0].State(line); st != memory.UniqueDirty {
		t.Fatalf("state = %v, want UD", st)
	}
	if s.RNs[0].Stats.AMONearTxn != 1 {
		t.Fatalf("AMONearTxn = %d", s.RNs[0].Stats.AMONearTxn)
	}
	if got := s.Data.Load(0x6000); got != 7 {
		t.Fatalf("memory = %d, want 7", got)
	}
}

func TestFarAMOLoadReturnsOldValue(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	s.Data.StoreWord(0x7000, 41)
	v, _ := run(t, s, 0, &Request{Kind: AMO, Addr: 0x7000, Op: memory.AMOAdd, Operand: 1})
	if v != 41 {
		t.Fatalf("AtomicLoad returned %d, want 41", v)
	}
	if got := s.Data.Load(0x7000); got != 42 {
		t.Fatalf("memory = %d, want 42", got)
	}
	// Far AMOs never install the line at the requestor.
	if st := s.RNs[0].State(memory.LineOf(0x7000)); st != memory.Invalid {
		t.Fatalf("requestor state = %v, want I", st)
	}
	hn := s.HomeOf(memory.LineOf(0x7000))
	if hn.Stats.Atomics != 1 || hn.Stats.AtomicLoads != 1 {
		t.Fatalf("HN stats = %+v", hn.Stats)
	}
}

func TestFarAtomicStoreCompletesBeforeALU(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	// Warm the line at the HN so data timing is deterministic.
	run(t, s, 0, &Request{Kind: AMO, Addr: 0x8000, Op: memory.AMOAdd, Operand: 1, NoReturn: true})
	_, latStore := run(t, s, 0, &Request{Kind: AMO, Addr: 0x8000, Op: memory.AMOAdd, Operand: 1, NoReturn: true})
	_, latLoad := run(t, s, 0, &Request{Kind: AMO, Addr: 0x8000, Op: memory.AMOAdd, Operand: 1})
	if latStore >= latLoad {
		t.Fatalf("AtomicStore latency %d >= AtomicLoad latency %d", latStore, latLoad)
	}
	if got := s.Data.Load(0x8000); got != 3 {
		t.Fatalf("memory = %d, want 3", got)
	}
}

func TestFarAMOSnoopsRequestorUniqueCopy(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	// Policy Far is only consulted for non-unique states, so force the
	// pathological case by storing first (UD) and then issuing an AMO from
	// another core, which far-AMOs and must snoop the owner.
	run(t, s, 0, &Request{Kind: Store, Addr: 0x9000, Operand: 50})
	v, _ := run(t, s, 1, &Request{Kind: AMO, Addr: 0x9000, Op: memory.AMOAdd, Operand: 1})
	if v != 50 {
		t.Fatalf("AMO returned %d, want 50", v)
	}
	if st := s.RNs[0].State(memory.LineOf(0x9000)); st != memory.Invalid {
		t.Fatalf("previous owner state = %v, want I", st)
	}
	if s.RNs[0].Stats.Invalidations != 1 {
		t.Fatalf("owner invalidations = %d, want 1", s.RNs[0].Stats.Invalidations)
	}
}

func TestUniqueStateAlwaysNearEvenUnderFarPolicy(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	// First AMO goes far (state I)...
	run(t, s, 0, &Request{Kind: AMO, Addr: 0xa000, Op: memory.AMOAdd, Operand: 1})
	// ...then make the line unique at core 0 via a store.
	run(t, s, 0, &Request{Kind: Store, Addr: 0xa000, Operand: 100})
	_, lat := run(t, s, 0, &Request{Kind: AMO, Addr: 0xa000, Op: memory.AMOAdd, Operand: 1})
	if lat != s.Cfg.L1Latency {
		t.Fatalf("unique-state AMO latency = %d, want local %d", lat, s.Cfg.L1Latency)
	}
	if s.RNs[0].Stats.AMONearLocal != 1 {
		t.Fatalf("AMONearLocal = %d, want 1", s.RNs[0].Stats.AMONearLocal)
	}
}

func TestAMOBufferAccelerates(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	_, cold := run(t, s, 0, &Request{Kind: AMO, Addr: 0xb000, Op: memory.AMOAdd, Operand: 1})
	_, warm := run(t, s, 0, &Request{Kind: AMO, Addr: 0xb000, Op: memory.AMOAdd, Operand: 1})
	if warm >= cold {
		t.Fatalf("AMO buffer did not accelerate: cold %d, warm %d", cold, warm)
	}
	hn := s.HomeOf(memory.LineOf(0xb000))
	if hn.Stats.AMOBufHits != 1 {
		t.Fatalf("AMOBufHits = %d, want 1", hn.Stats.AMOBufHits)
	}
}

func TestL1EvictionDemotesToL2(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	// Fill one L1 set (16 sets, 4 ways): lines mapping to set 0.
	base := memory.Addr(0)
	for i := 0; i < 5; i++ {
		addr := base + memory.Addr(i)*16*memory.LineSize
		run(t, s, 0, &Request{Kind: Store, Addr: addr, Operand: uint64(i)})
	}
	// The first line fell out of L1 into L2 but is still held (UD).
	first := memory.LineOf(base)
	if st := s.RNs[0].State(first); st != memory.UniqueDirty {
		t.Fatalf("demoted line state = %v, want UD", st)
	}
	// Re-access hits L2, not memory.
	_, lat := run(t, s, 0, &Request{Kind: Load, Addr: base})
	if lat >= 100 {
		t.Fatalf("L2 hit took %d cycles (memory-like)", lat)
	}
	if s.RNs[0].Stats.L2Hits == 0 {
		t.Fatal("no L2 hit recorded")
	}
}

func TestWriteBackReachesLLC(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	// Thrash enough distinct lines mapping to one L1 and L2 set to force a
	// full writeback: L1 set 0 has 4 ways, L2 set 0 has 8 ways; 13 lines
	// that alias in both guarantee an eviction to the HN.
	var addrs []memory.Addr
	for i := 0; i < 13; i++ {
		addrs = append(addrs, memory.Addr(i)*64*memory.LineSize*16)
	}
	for i, a := range addrs {
		run(t, s, 0, &Request{Kind: Store, Addr: a, Operand: uint64(i)})
	}
	if s.RNs[0].Stats.WriteBacks == 0 {
		t.Fatal("no writebacks recorded")
	}
	// All values remain visible.
	for i, a := range addrs {
		if v, _ := run(t, s, 1, &Request{Kind: Load, Addr: a}); v != uint64(i) {
			t.Fatalf("lost write: addr %#x = %d, want %d", a, v, i)
		}
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestPingPongFarBeatsNear(t *testing.T) {
	// Access pattern (a) of Fig. 3: two cores alternate AMOs on one line.
	elapse := func(p Policy) sim.Tick {
		s := newTestSystem(t, p)
		for i := 0; i < 50; i++ {
			run(t, s, i%2, &Request{Kind: AMO, Addr: 0xc000, Op: memory.AMOAdd, Operand: 1, NoReturn: true})
		}
		return s.Engine.Now()
	}
	near := elapse(fixedPolicy{Near})
	far := elapse(fixedPolicy{Far})
	if far >= near {
		t.Fatalf("far (%d cycles) not faster than near (%d cycles) under ping-pong", far, near)
	}
}

func TestReuseNearBeatsFar(t *testing.T) {
	// Access pattern (b) of Fig. 3: each core performs 4 AMOs in a row.
	elapse := func(p Policy) sim.Tick {
		s := newTestSystem(t, p)
		for i := 0; i < 100; i++ {
			run(t, s, (i/4)%2, &Request{Kind: AMO, Addr: 0xd000, Op: memory.AMOAdd, Operand: 1})
		}
		return s.Engine.Now()
	}
	near := elapse(fixedPolicy{Near})
	far := elapse(fixedPolicy{Far})
	if near >= far {
		t.Fatalf("near (%d cycles) not faster than far (%d cycles) under reuse", near, far)
	}
}

// The atomicity invariant: concurrent increments are never lost, whatever
// the placement mix.
func TestNoLostUpdates(t *testing.T) {
	for _, p := range []Placement{Near, Far} {
		s := newTestSystem(t, fixedPolicy{p})
		const perCore, cores = 200, 4
		doneCount := 0
		for c := 0; c < cores; c++ {
			c := c
			var issue func(i int)
			issue = func(i int) {
				if i == perCore {
					doneCount++
					return
				}
				s.RNs[c].Access(&Request{
					Kind: AMO, Addr: 0xe000, Op: memory.AMOAdd, Operand: 1,
					Done: func(uint64) { issue(i + 1) },
				})
			}
			s.Engine.Schedule(sim.Tick(c), func() { issue(0) })
		}
		if !s.Engine.RunUntil(func() bool { return doneCount == cores }, 50_000_000) {
			t.Fatalf("policy %v: increments did not finish", p)
		}
		s.Engine.Run(0)
		if got := s.Data.Load(0xe000); got != perCore*cores {
			t.Fatalf("policy %v: counter = %d, want %d", p, got, perCore*cores)
		}
		if err := s.CheckCoherence(); err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
	}
}

// Property: random concurrent mixes of loads, stores and AMOs across cores
// preserve the coherence invariant and AMO-sum conservation.
func TestRandomTrafficCoherenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		placement := Placement(rng.Intn(2))
		s, err := NewSystem(testConfig(), fixedPolicy{placement})
		if err != nil {
			t.Fatal(err)
		}
		const ops = 300
		lines := []memory.Addr{0x0, 0x1000, 0x2040, 0x3080, 0x40c0}
		adds := uint64(0)
		pending := 0
		for i := 0; i < ops; i++ {
			core := rng.Intn(s.Cfg.Cores)
			addr := lines[rng.Intn(len(lines))]
			var req *Request
			switch rng.Intn(3) {
			case 0:
				req = &Request{Kind: Load, Addr: addr}
			case 1:
				// Stores write to a disjoint word of the line so they don't
				// clobber the AMO counter at offset 0.
				req = &Request{Kind: Store, Addr: addr + 8, Operand: uint64(i)}
			case 2:
				req = &Request{Kind: AMO, Addr: addr, Op: memory.AMOAdd, Operand: 1, NoReturn: rng.Intn(2) == 0}
				adds++
			}
			pending++
			req.Done = func(uint64) { pending-- }
			delay := sim.Tick(rng.Intn(50))
			s.Engine.Schedule(delay, func() { s.RNs[core].Access(req) })
		}
		if !s.Engine.RunUntil(func() bool { return pending == 0 }, 10_000_000) {
			return false
		}
		s.Engine.Run(0)
		if err := s.CheckCoherence(); err != nil {
			t.Logf("coherence: %v", err)
			return false
		}
		var sum uint64
		for _, a := range lines {
			sum += s.Data.Load(a)
		}
		return sum == adds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: identical runs produce identical end times and stats.
func TestDeterminism(t *testing.T) {
	runOnce := func() (sim.Tick, uint64) {
		s := newTestSystem(t, fixedPolicy{Near})
		done := 0
		for c := 0; c < 4; c++ {
			c := c
			for i := 0; i < 50; i++ {
				i := i
				s.Engine.Schedule(sim.Tick(i), func() {
					s.RNs[c].Access(&Request{
						Kind: AMO, Addr: memory.Addr(0xf000 + (i%3)*64), Op: memory.AMOAdd, Operand: 1,
						NoReturn: true, Done: func(uint64) { done++ },
					})
				})
			}
		}
		s.Engine.Run(0)
		return s.Engine.Now(), s.Mesh.Stats().Flits
	}
	t1, f1 := runOnce()
	t2, f2 := runOnce()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", t1, f1, t2, f2)
	}
}
