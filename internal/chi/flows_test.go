package chi

import (
	"testing"

	"dynamo/internal/memory"
	"dynamo/internal/noc"
)

// The tests in this file pin the message flows of the paper's Fig. 2: the
// exact number of NoC messages and flits each transaction generates. They
// are golden tests — a protocol change that adds or removes a hop shows up
// here first.

// deltaStats runs fn and returns the NoC traffic it generated.
func deltaStats(s *System, fn func()) noc.Stats {
	before := s.Mesh.Stats()
	fn()
	after := s.Mesh.Stats()
	return noc.Stats{
		Messages: after.Messages - before.Messages,
		Flits:    after.Flits - before.Flits,
	}
}

func TestFlowNearAMOWithRemoteSharer(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	// RN-1 holds the line (UD, via a store), as in Fig. 2 top.
	run(t, s, 1, &Request{Kind: Store, Addr: 0x30000, Operand: 9})
	d := deltaStats(s, func() {
		run(t, s, 0, &Request{Kind: AMO, Addr: 0x30000, Op: memory.AMOAdd, Operand: 1})
	})
	// ReadUnique(ctrl) + Snoop(ctrl) + SnoopResp(data: dirty) +
	// CompData(data) + CompAck(ctrl) = 5 messages.
	if d.Messages != 5 {
		t.Fatalf("near AMO flow used %d messages, want 5", d.Messages)
	}
	want := uint64(3*noc.ControlFlits + 2*noc.DataFlits)
	if d.Flits != want {
		t.Fatalf("near AMO flow used %d flits, want %d", d.Flits, want)
	}
}

func TestFlowNearAMOCleanMiss(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	// Warm the LLC so no memory access is involved: fill and write back.
	// Simplest deterministic variant: nobody holds the line; data comes
	// from memory. ReadUnique(ctrl) + CompData(data) + CompAck(ctrl).
	d := deltaStats(s, func() {
		run(t, s, 0, &Request{Kind: AMO, Addr: 0x31000, Op: memory.AMOAdd, Operand: 1})
	})
	if d.Messages != 3 {
		t.Fatalf("near AMO cold flow used %d messages, want 3", d.Messages)
	}
	want := uint64(2*noc.ControlFlits + noc.DataFlits)
	if d.Flits != want {
		t.Fatalf("near AMO cold flow used %d flits, want %d", d.Flits, want)
	}
}

func TestFlowFarAtomicStoreWithRemoteSharer(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	run(t, s, 1, &Request{Kind: Store, Addr: 0x32000, Operand: 9})
	d := deltaStats(s, func() {
		run(t, s, 0, &Request{Kind: AMO, Addr: 0x32000, Op: memory.AMOAdd,
			Operand: 1, NoReturn: true})
	})
	// Atomic(ctrl) + Snoop(ctrl) + SnoopResp(data) + CompAck-to-RN(ctrl)
	// = 4 messages; no data ever travels to the requestor.
	if d.Messages != 4 {
		t.Fatalf("far AtomicStore flow used %d messages, want 4", d.Messages)
	}
	want := uint64(3*noc.ControlFlits + noc.DataFlits)
	if d.Flits != want {
		t.Fatalf("far AtomicStore flow used %d flits, want %d", d.Flits, want)
	}
}

func TestFlowFarAtomicLoadNoCopies(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	// Warm: a prior far AMO leaves the line at the HN with no RN copies.
	run(t, s, 0, &Request{Kind: AMO, Addr: 0x33000, Op: memory.AMOAdd, Operand: 1})
	d := deltaStats(s, func() {
		run(t, s, 0, &Request{Kind: AMO, Addr: 0x33000, Op: memory.AMOAdd, Operand: 1})
	})
	// Atomic(ctrl) + DataResp(ctrl: 8-byte payload) = 2 messages.
	if d.Messages != 2 {
		t.Fatalf("far AtomicLoad warm flow used %d messages, want 2", d.Messages)
	}
	if d.Flits != uint64(2*noc.ControlFlits) {
		t.Fatalf("far AtomicLoad warm flow used %d flits, want %d", d.Flits, 2*noc.ControlFlits)
	}
}

// TestFarTrafficAdvantage pins the paper's data-movement claim: under
// contention, far AMOs move far fewer flits than near AMOs.
func TestFarTrafficAdvantage(t *testing.T) {
	traffic := func(p Policy) uint64 {
		s := newTestSystem(t, p)
		for i := 0; i < 60; i++ {
			run(t, s, i%4, &Request{Kind: AMO, Addr: 0x34000, Op: memory.AMOAdd,
				Operand: 1, NoReturn: true})
		}
		return s.Mesh.Stats().Flits
	}
	near := traffic(fixedPolicy{Near})
	far := traffic(fixedPolicy{Far})
	if far*2 > near {
		t.Fatalf("far traffic %d flits not well below near %d", far, near)
	}
}

// recordingPolicy captures the event stream the substrate feeds a policy.
type recordingPolicy struct {
	events *[]string
}

func (r recordingPolicy) Name() string { return "recording" }
func (r recordingPolicy) Decide(int, memory.Line, memory.State) Placement {
	*r.events = append(*r.events, "decide")
	return Near
}
func (r recordingPolicy) OnNearComplete(int, memory.Line) {
	*r.events = append(*r.events, "complete")
}
func (r recordingPolicy) OnFill(_ int, _ memory.Line, byAMO bool) {
	if byAMO {
		*r.events = append(*r.events, "fill-amo")
	} else {
		*r.events = append(*r.events, "fill")
	}
}
func (r recordingPolicy) OnHit(int, memory.Line)        { *r.events = append(*r.events, "hit") }
func (r recordingPolicy) OnEvict(int, memory.Line)      { *r.events = append(*r.events, "evict") }
func (r recordingPolicy) OnInvalidate(int, memory.Line) { *r.events = append(*r.events, "inval") }

// TestPolicyEventSequence pins the exact event order a predictor observes
// for the canonical miss-AMO / reuse / invalidate lifetime of Section V-C.
func TestPolicyEventSequence(t *testing.T) {
	var events []string
	s := newTestSystem(t, recordingPolicy{&events})
	// AMO miss: decide -> fill(byAMO) -> near completion.
	run(t, s, 0, &Request{Kind: AMO, Addr: 0x35000, Op: memory.AMOAdd, Operand: 1})
	// Reuse: a load hit.
	run(t, s, 0, &Request{Kind: Load, Addr: 0x35000})
	// Invalidation: another core writes.
	run(t, s, 1, &Request{Kind: Store, Addr: 0x35000, Operand: 2})
	want := []string{"decide", "fill-amo", "complete", "hit", "inval"}
	got := events
	// The second core's store also generates a fill event at core 1;
	// filter to the first five events, which belong to core 0's lifetime.
	if len(got) < len(want) {
		t.Fatalf("events = %v", got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("event[%d] = %q, want %q (full: %v)", i, got[i], w, got)
		}
	}
}
