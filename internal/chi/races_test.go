package chi

import (
	"math/rand"
	"testing"

	"dynamo/internal/memory"
	"dynamo/internal/sim"
)

// TestFarAMORacesFill issues a far AMO while a fill for the same line is
// still in flight at the same core: the HN must serialize the two without
// losing either update or deadlocking.
func TestFarAMORacesFill(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	done := 0
	// Core 0 loads the line (fill in flight) while core 0 also posts a far
	// AMO right behind it.
	s.Engine.Schedule(0, func() {
		s.RNs[0].Access(&Request{Kind: Load, Addr: 0x11000, Done: func(uint64) { done++ }})
		s.RNs[0].Access(&Request{Kind: AMO, Addr: 0x11000, Op: memory.AMOAdd, Operand: 5,
			NoReturn: true, Done: func(uint64) { done++ }})
	})
	if !s.Engine.RunUntil(func() bool { return done == 2 }, 1_000_000) {
		t.Fatal("race did not resolve")
	}
	s.Engine.Run(0)
	if got := s.Data.Load(0x11000); got != 5 {
		t.Fatalf("value = %d, want 5", got)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackRacesSnoop forces an eviction whose WriteBack is in flight
// when another core's request snoops the evictor.
func TestWritebackRacesSnoop(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	// Fill L1 set 0 and L2 set 0 of core 0 with dirty lines until one is
	// written back, then immediately have core 1 fetch the victim.
	var addrs []memory.Addr
	for i := 0; i < 13; i++ {
		addrs = append(addrs, memory.Addr(i)*64*memory.LineSize*16)
	}
	done := 0
	s.Engine.Schedule(0, func() {
		var next func(i int)
		next = func(i int) {
			if i == len(addrs) {
				// Victim (addrs[0]) may have a WriteBack in flight; fetch
				// it from core 1 right away.
				s.RNs[1].Access(&Request{Kind: Load, Addr: addrs[0], Done: func(v uint64) {
					if v != 100 {
						t.Errorf("read %d, want 100", v)
					}
					done++
				}})
				return
			}
			s.RNs[0].Access(&Request{Kind: Store, Addr: addrs[i], Operand: uint64(100 + i),
				Done: func(uint64) { next(i + 1) }})
		}
		next(0)
	})
	if !s.Engine.RunUntil(func() bool { return done == 1 }, 5_000_000) {
		t.Fatal("did not resolve")
	}
	s.Engine.Run(0)
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedPlacement drives near and far AMOs from different
// cores to one line simultaneously; serialization at the HN must keep the
// count exact.
func TestConcurrentMixedPlacement(t *testing.T) {
	// Cores 0,1 run near policy semantics by holding unique lines; cores
	// 2,3 far. We emulate by alternating placements through the policy:
	// use a per-core policy shim.
	s := newTestSystem(t, perCorePolicy{})
	const per = 150
	done := 0
	for c := 0; c < 4; c++ {
		c := c
		var issue func(i int)
		issue = func(i int) {
			if i == per {
				done++
				return
			}
			s.RNs[c].Access(&Request{Kind: AMO, Addr: 0x12000, Op: memory.AMOAdd, Operand: 1,
				Done: func(uint64) { issue(i + 1) }})
		}
		s.Engine.Schedule(sim.Tick(c*3), func() { issue(0) })
	}
	if !s.Engine.RunUntil(func() bool { return done == 4 }, 50_000_000) {
		t.Fatal("did not finish")
	}
	s.Engine.Run(0)
	if got := s.Data.Load(0x12000); got != 4*per {
		t.Fatalf("count = %d, want %d", got, 4*per)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// perCorePolicy sends even cores near and odd cores far.
type perCorePolicy struct{}

func (perCorePolicy) Name() string { return "per-core" }
func (perCorePolicy) Decide(core int, _ memory.Line, _ memory.State) Placement {
	if core%2 == 0 {
		return Near
	}
	return Far
}
func (perCorePolicy) OnNearComplete(int, memory.Line) {}
func (perCorePolicy) OnFill(int, memory.Line, bool)   {}
func (perCorePolicy) OnHit(int, memory.Line)          {}
func (perCorePolicy) OnEvict(int, memory.Line)        {}
func (perCorePolicy) OnInvalidate(int, memory.Line)   {}

// TestLLCDirtyEvictionWritesMemory overflows one LLC set with dirty lines
// from far AMOs and checks that memory writes happen.
func TestLLCDirtyEvictionWritesMemory(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	// LLC slice: 256 sets x 8 ways; lines mapping to slice 0, set 0 are
	// spaced 4*256 lines apart (4 slices x 256 sets).
	done := 0
	const n = 12
	s.Engine.Schedule(0, func() {
		for i := 0; i < n; i++ {
			addr := memory.Addr(i) * 4 * 256 * memory.LineSize
			s.RNs[0].Access(&Request{Kind: AMO, Addr: addr, Op: memory.AMOAdd, Operand: 1,
				NoReturn: true, Done: func(uint64) { done++ }})
		}
	})
	if !s.Engine.RunUntil(func() bool { return done == n }, 5_000_000) {
		t.Fatal("did not finish")
	}
	s.Engine.Run(0)
	if s.Mem.Stats().Writes == 0 {
		t.Fatal("no dirty LLC evictions reached memory")
	}
	for i := 0; i < n; i++ {
		addr := memory.Addr(i) * 4 * 256 * memory.LineSize
		if got := s.Data.Load(addr); got != 1 {
			t.Fatalf("line %d value = %d", i, got)
		}
	}
}

// TestSharedDirtyForward covers the MOESI O-state: a dirty owner downgraded
// by a reader keeps forwarding data; a later atomic collects the dirty copy.
func TestSharedDirtyForward(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Far})
	run(t, s, 0, &Request{Kind: Store, Addr: 0x13000, Operand: 77})
	run(t, s, 1, &Request{Kind: Load, Addr: 0x13000}) // owner 0 -> SD
	line := memory.LineOf(0x13000)
	if st := s.RNs[0].State(line); st != memory.SharedDirty {
		t.Fatalf("owner state = %v, want SD", st)
	}
	// Far AMO must pull the dirty data from the SD owner.
	v, _ := run(t, s, 2, &Request{Kind: AMO, Addr: 0x13000, Op: memory.AMOAdd, Operand: 1})
	if v != 77 {
		t.Fatalf("AMO old = %d, want 77", v)
	}
	if st := s.RNs[0].State(line); st != memory.Invalid {
		t.Fatalf("owner not invalidated: %v", st)
	}
	hn := s.HomeOf(line)
	if hn.Stats.DirtyForwards == 0 {
		t.Fatal("no dirty forward recorded")
	}
}

// TestUpgradeRace has a sharer request an upgrade while another core's
// store invalidates it first: the upgrade must degrade into a full fill.
func TestUpgradeRace(t *testing.T) {
	s := newTestSystem(t, fixedPolicy{Near})
	// Both cores read the line (SC everywhere).
	run(t, s, 0, &Request{Kind: Load, Addr: 0x14000})
	run(t, s, 1, &Request{Kind: Load, Addr: 0x14000})
	// Both cores now try to write "simultaneously".
	done := 0
	s.Engine.Schedule(0, func() {
		s.RNs[0].Access(&Request{Kind: Store, Addr: 0x14000, Operand: 1, Done: func(uint64) { done++ }})
		s.RNs[1].Access(&Request{Kind: Store, Addr: 0x14000 + 8, Operand: 2, Done: func(uint64) { done++ }})
	})
	if !s.Engine.RunUntil(func() bool { return done == 2 }, 1_000_000) {
		t.Fatal("upgrade race did not resolve")
	}
	s.Engine.Run(0)
	if s.Data.Load(0x14000) != 1 || s.Data.Load(0x14000+8) != 2 {
		t.Fatal("a store was lost in the upgrade race")
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestHeavyRandomMixedOps is a longer randomized soak across placements,
// kinds and lines with full invariant checking.
func TestHeavyRandomMixedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := newTestSystem(t, perCorePolicy{})
	const ops = 2000
	adds := uint64(0)
	pending := 0
	lines := make([]memory.Addr, 16)
	for i := range lines {
		lines[i] = memory.Addr(0x20000 + i*memory.LineSize)
	}
	for i := 0; i < ops; i++ {
		core := rng.Intn(s.Cfg.Cores)
		addr := lines[rng.Intn(len(lines))]
		var req *Request
		switch rng.Intn(4) {
		case 0:
			req = &Request{Kind: Load, Addr: addr + 16}
		case 1:
			req = &Request{Kind: Store, Addr: addr + 8, Operand: uint64(i)}
		case 2:
			req = &Request{Kind: AMO, Addr: addr, Op: memory.AMOAdd, Operand: 1}
			adds++
		case 3:
			req = &Request{Kind: AMO, Addr: addr, Op: memory.AMOAdd, Operand: 1, NoReturn: true}
			adds++
		}
		pending++
		req.Done = func(uint64) { pending-- }
		delay := sim.Tick(rng.Intn(200))
		s.Engine.Schedule(delay, func() { s.RNs[core].Access(req) })
	}
	if !s.Engine.RunUntil(func() bool { return pending == 0 }, 50_000_000) {
		t.Fatal("soak did not drain")
	}
	s.Engine.Run(0)
	var sum uint64
	for _, a := range lines {
		sum += s.Data.Load(a)
	}
	if sum != adds {
		t.Fatalf("atomic sum = %d, want %d", sum, adds)
	}
	if err := s.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
