// Package sim provides a deterministic discrete-event simulation kernel.
//
// All timing in the simulator is expressed in core clock cycles. Components
// schedule closures to run at future cycles on a single Engine; the engine
// executes them in (time, insertion-order) order, which makes every
// simulation run fully deterministic for a given seed and configuration.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"dynamo/internal/perf"
)

// Tick is a point in simulated time, measured in clock cycles.
type Tick uint64

// Event is a closure scheduled to run at a fixed simulated time.
type event struct {
	when Tick
	seq  uint64 // insertion order; breaks ties deterministically
	// kind attributes the event to the subsystem that scheduled it for
	// the host-performance self-profiler; it never affects ordering.
	kind perf.Kind
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Tick
	seq     uint64
	queue   eventHeap
	stopped bool
	// executed counts events run so far; used by watchdogs and stats.
	executed uint64
	// prof, when non-nil, observes every executed event (counts always,
	// wall-clock on sample strides). The disabled path is one nil check.
	prof *perf.Profiler
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// AttachPerf points the engine at a host-performance self-profiler; every
// subsequently executed event is then attributed to its scheduling kind.
// A nil profiler (the default) costs one nil check per event.
func (e *Engine) AttachPerf(p *perf.Profiler) { e.prof = p }

// Schedule runs fn after delay cycles. A delay of zero runs fn later in the
// current cycle, after all previously scheduled work for this cycle.
func (e *Engine) Schedule(delay Tick, fn func()) {
	e.ScheduleKind(delay, perf.KindOther, fn)
}

// ScheduleKind is Schedule with a subsystem attribution kind for the
// self-profiler. The kind is purely observational: ordering, determinism
// and snapshots are unaffected.
func (e *Engine) ScheduleKind(delay Tick, kind perf.Kind, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil fn")
	}
	ev := &event{when: e.now + delay, seq: e.seq, kind: kind, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Tick, fn func()) {
	e.AtKind(t, perf.KindOther, fn)
}

// AtKind is At with a subsystem attribution kind for the self-profiler.
func (e *Engine) AtKind(t Tick, kind perf.Kind, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) is in the past (now=%d)", t, e.now))
	}
	e.ScheduleKind(t-e.now, kind, fn)
}

// Stop makes Run or RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called since the last Run/RunUntil
// began.
func (e *Engine) Stopped() bool { return e.stopped }

// Head returns the time of the next pending event. ok is false when the
// queue is empty.
func (e *Engine) Head() (t Tick, ok bool) {
	if e.queue.Len() == 0 {
		return 0, false
	}
	return e.queue[0].when, true
}

// Step executes the single next event, advancing time to it. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.when
	e.executed++
	if e.prof == nil {
		ev.fn()
	} else {
		e.prof.Exec(ev.kind, len(e.queue), ev.fn)
	}
	return true
}

// Run executes events until the queue drains, Stop is called, or limit
// cycles of simulated time elapse (limit==0 means no time limit). It returns
// the number of events executed by this call.
func (e *Engine) Run(limit Tick) uint64 {
	e.stopped = false
	start := e.executed
	var deadline Tick
	if limit > 0 {
		deadline = e.now + limit
	}
	for !e.stopped && e.queue.Len() > 0 {
		if limit > 0 && e.queue[0].when > deadline {
			break
		}
		e.Step()
	}
	return e.executed - start
}

// Snapshot is a serializable image of the engine's externally visible
// state. Event closures cannot be serialized, so a snapshot records only
// the clock, the insertion counter, the executed-event count and the
// (sorted) due times of pending events; checkpoint verification replays
// the deterministic event stream and compares snapshots bit-exactly.
type Snapshot struct {
	Now      Tick
	Seq      uint64
	Executed uint64
	Pending  []Tick
}

// Snapshot captures the engine state in canonical order.
func (e *Engine) Snapshot() Snapshot {
	pending := make([]Tick, len(e.queue))
	for i, ev := range e.queue {
		pending[i] = ev.when
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	return Snapshot{Now: e.now, Seq: e.seq, Executed: e.executed, Pending: pending}
}

// RunUntil executes events while cond returns false, the queue is non-empty,
// Stop has not been called and the event budget (0 = unlimited) is not
// exhausted. It reports whether cond became true.
func (e *Engine) RunUntil(cond func() bool, maxEvents uint64) bool {
	e.stopped = false
	var n uint64
	for !cond() {
		if e.stopped {
			return false
		}
		if maxEvents > 0 && n >= maxEvents {
			return false
		}
		if !e.Step() {
			return false
		}
		n++
	}
	return true
}
