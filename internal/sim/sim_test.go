package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, func() { got = append(got, 2) })
	e.Schedule(5, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 3) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", e.Now())
	}
}

func TestTieBreakInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick events executed out of insertion order at %d: %v", i, v)
		}
	}
}

func TestZeroDelayRunsSameCycle(t *testing.T) {
	e := NewEngine()
	var at Tick
	e.Schedule(3, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 3 {
		t.Fatalf("zero-delay event ran at %d, want 3", at)
	}
}

func TestAt(t *testing.T) {
	e := NewEngine()
	var at Tick
	e.At(42, func() { at = e.Now() })
	e.Run(0)
	if at != 42 {
		t.Fatalf("At event ran at %d, want 42", at)
	}
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Tick(i), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run(0)
	if n != 3 {
		t.Fatalf("executed %d events after Stop, want 3", n)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", e.Pending())
	}
}

func TestRunTimeLimit(t *testing.T) {
	e := NewEngine()
	var ran []Tick
	for i := 1; i <= 10; i++ {
		d := Tick(i * 10)
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.Run(35) // events at 10,20,30 fit; 40 is past the deadline
	if len(ran) != 3 {
		t.Fatalf("ran %d events within limit, want 3 (%v)", len(ran), ran)
	}
	// Run again with no limit; remaining events execute.
	e.Run(0)
	if len(ran) != 10 {
		t.Fatalf("ran %d events total, want 10", len(ran))
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 100; i++ {
		e.Schedule(Tick(i), func() { n++ })
	}
	ok := e.RunUntil(func() bool { return n >= 10 }, 0)
	if !ok || n != 10 {
		t.Fatalf("RunUntil stopped at n=%d ok=%v, want 10/true", n, ok)
	}
	ok = e.RunUntil(func() bool { return n >= 1000 }, 0)
	if ok {
		t.Fatal("RunUntil reported success on an unreachable condition")
	}
	if n != 100 {
		t.Fatalf("n = %d after drain, want 100", n)
	}
}

func TestRunUntilEventBudget(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 100; i++ {
		e.Schedule(Tick(i), func() { n++ })
	}
	if e.RunUntil(func() bool { return false }, 5) {
		t.Fatal("RunUntil with false cond reported success")
	}
	if n != 5 {
		t.Fatalf("event budget executed %d events, want 5", n)
	}
}

func TestRecursiveScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 1000 {
			e.Schedule(1, step)
		}
	}
	e.Schedule(0, step)
	e.Run(0)
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if e.Now() != 999 {
		t.Fatalf("Now() = %d, want 999", e.Now())
	}
}

// Property: events always execute in non-decreasing time order regardless of
// the insertion order of delays.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []Tick
		for _, d := range delays {
			e.Schedule(Tick(d), func() { times = append(times, e.Now()) })
		}
		e.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving random scheduling from within events still executes
// every event exactly once and never travels backwards in time.
func TestNestedSchedulingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		executed := 0
		scheduled := 0
		var spawn func(budget int)
		spawn = func(budget int) {
			executed++
			if budget <= 0 {
				return
			}
			kids := rng.Intn(3)
			for i := 0; i < kids; i++ {
				scheduled++
				b := budget - 1
				e.Schedule(Tick(rng.Intn(50)), func() { spawn(b) })
			}
		}
		for i := 0; i < 10; i++ {
			scheduled++
			e.Schedule(Tick(rng.Intn(50)), func() { spawn(6) })
		}
		last := Tick(0)
		for e.Step() {
			if e.Now() < last {
				return false
			}
			last = e.Now()
		}
		return executed == scheduled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Tick(i%64), func() {})
		if i%64 == 63 {
			e.Run(0)
		}
	}
	e.Run(0)
}
