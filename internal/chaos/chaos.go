// Package chaos is the deterministic fault injector: it perturbs the
// simulator's timing — never its functional behavior — so tests can assert
// that every workload computes the same answer under adversarial event
// orderings and that the protocol sanitizer stays clean while they do.
//
// All perturbations are protocol-legal by construction:
//
//   - NoC link-latency jitter delays a message's delivery after its link
//     reservations are made, reordering arrivals without forging messages.
//   - HBM channel skew adds a per-channel static offset plus per-access
//     jitter to completion times, never reordering within a channel's
//     occupancy bookkeeping.
//   - Snoop-response reordering delays individual snoop responses on the
//     way back to the home node; the fan-out pending counter is
//     order-insensitive, so any arrival order is legal.
//   - AMT eviction pressure ages the predictor's table faster than the
//     machine's own aging tick, forcing evictions and placement flips —
//     placement is a performance decision, so any choice is correct.
//
// Every delay is drawn from a splitmix64 stream derived from the
// perturbation seed, so a (config, workload seed, chaos seed) triple
// replays exactly.
package chaos

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"dynamo/internal/machine"
	"dynamo/internal/memory"
	"dynamo/internal/perf"
	"dynamo/internal/sim"
)

// MaxLevel is the strongest perturbation intensity.
const MaxLevel = 3

// Injector perturbs one machine. Build with New, wire with Attach before
// the run starts. An Injector is single-use, like the machine it attaches
// to: its random streams advance as the run consumes them.
type Injector struct {
	seed  int64
	level int

	mesh  stream
	mem   stream
	snoop stream
	skew  []sim.Tick // lazily built per-channel HBM offsets
}

// New builds an injector. level ranges 0 (inert) to MaxLevel; seed selects
// the perturbation schedule.
func New(seed int64, level int) (*Injector, error) {
	if level < 0 || level > MaxLevel {
		return nil, fmt.Errorf("chaos: level %d out of range 0..%d", level, MaxLevel)
	}
	return &Injector{
		seed:  seed,
		level: level,
		mesh:  newStream(seed, 0x6d657368), // "mesh"
		mem:   newStream(seed, 0x6d656d00), // "mem"
		snoop: newStream(seed, 0x736e6f6f), // "snoo"
	}, nil
}

// Seed returns the perturbation seed.
func (in *Injector) Seed() int64 { return in.seed }

// Level returns the perturbation intensity.
func (in *Injector) Level() int { return in.level }

// amtPressurePeriod is the base interval between forced predictor aging
// ticks; level divides it.
const amtPressurePeriod = 40_000

// Attach wires the injector's perturbation hooks into a built machine.
// Call between machine.New and Run. A nil or level-0 injector attaches
// nothing, so the unperturbed run stays byte-for-byte identical to one
// that never imported this package.
func (in *Injector) Attach(m *machine.Machine) {
	if in == nil || in.level == 0 {
		return
	}
	lvl := sim.Tick(in.level)
	m.Sys.Mesh.SetJitter(func(src, dst, flits int) sim.Tick {
		return sim.Tick(in.mesh.below(uint64(3*lvl) + 1))
	})
	channels := m.Sys.Mem.Channels()
	in.skew = make([]sim.Tick, channels)
	skewStream := newStream(in.seed, 0x736b6577) // "skew"
	for ch := range in.skew {
		in.skew[ch] = sim.Tick(skewStream.below(uint64(8*lvl) + 1))
	}
	m.Sys.Mem.SetJitter(func(ch int) sim.Tick {
		return in.skew[ch] + sim.Tick(in.mem.below(uint64(2*lvl)+1))
	})
	m.Sys.SetSnoopJitter(func(core int, line memory.Line) sim.Tick {
		return sim.Tick(in.snoop.below(uint64(4*lvl) + 1))
	})
	if a, ok := m.Policy.(interface{ Age() }); ok {
		period := sim.Tick(amtPressurePeriod / in.level)
		eng := m.Sys.Engine
		var tick func()
		tick = func() {
			if eng.Pending() == 0 {
				// The run has drained; let the queue empty so the machine's
				// end-of-run accounting sees a quiescent engine.
				return
			}
			a.Age()
			eng.ScheduleKind(period, perf.KindTick, tick)
		}
		eng.ScheduleKind(period, perf.KindTick, tick)
	}
	// The injector's stream positions are part of the machine state: a
	// checkpoint of a chaotic run must pin every stream so a restore (which
	// rebuilds an identically seeded injector and replays) can verify it
	// reproduced the same perturbation schedule.
	m.RegisterCkptState("chaos", func() any { return in.snapshot() })
}

// snapshot is the serializable injector state: configuration plus the
// position of every perturbation stream.
type snapshot struct {
	Seed  int64      `json:"seed"`
	Level int        `json:"level"`
	Mesh  uint64     `json:"mesh"`
	Mem   uint64     `json:"mem"`
	Snoop uint64     `json:"snoop"`
	Skew  []sim.Tick `json:"skew,omitempty"`
}

func (in *Injector) snapshot() snapshot {
	return snapshot{
		Seed:  in.seed,
		Level: in.level,
		Mesh:  in.mesh.x,
		Mem:   in.mem.x,
		Snoop: in.snoop.x,
		Skew:  in.skew,
	}
}

// stream is a splitmix64 pseudo-random stream: tiny, seedable, and with no
// global state, so each perturbation point consumes its own independent
// sequence.
type stream struct {
	x uint64
}

func newStream(seed int64, salt uint64) stream {
	return stream{x: uint64(seed)*0x9e3779b97f4a7c15 ^ salt}
}

func (s *stream) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// below returns a value in [0, n). n must be positive; the modulo bias is
// irrelevant for jitter draws.
func (s *stream) below(n uint64) uint64 {
	return s.next() % n
}

// Digest canonically hashes a run's functional result: every non-zero
// word of the store, sorted by address. Two runs computed the same answer
// iff their digests match — the metamorphic invariant chaos testing
// asserts across perturbation seeds.
func Digest(data *memory.Store) string {
	h := sha256.New()
	var buf [16]byte
	for _, w := range data.Words() {
		binary.LittleEndian.PutUint64(buf[:8], uint64(w.Addr))
		binary.LittleEndian.PutUint64(buf[8:], w.Value)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
