package chaos

import (
	"errors"
	"sync"
	"testing"

	"dynamo/internal/check"
	"dynamo/internal/machine"
	"dynamo/internal/memory"
	"dynamo/internal/workload"
)

// smallCfg shrinks the default system so chaos tests stay fast.
func smallCfg(policy string) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Policy = policy
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 16
	cfg.Chi.L2Sets = 64
	cfg.Chi.LLCSets = 256
	return cfg
}

// runInstance executes one workload instance under an optional injector
// and sanitizer, validates its functional result, and returns the result
// digest plus the machine result.
func runInstance(t testing.TB, policy string, inst *workload.Instance, chaosSeed int64, level int, checked bool) (string, *machine.Result) {
	t.Helper()
	cfg := smallCfg(policy)
	if checked {
		cfg.Check = &check.Config{}
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := New(chaosSeed, level)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(m)
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	res, err := m.Run(inst.Programs)
	if err != nil {
		t.Fatalf("run (chaos seed %d level %d): %v", chaosSeed, level, err)
	}
	if inst.Validate != nil {
		if err := inst.Validate(m.Sys.Data); err != nil {
			t.Fatalf("validate (chaos seed %d level %d): %v", chaosSeed, level, err)
		}
	}
	return Digest(m.Sys.Data), res
}

func counterInstance(t testing.TB, ops int) *workload.Instance {
	t.Helper()
	inst, err := workload.Counter(4, ops, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewRejectsBadLevel(t *testing.T) {
	for _, lvl := range []int{-1, MaxLevel + 1} {
		if _, err := New(1, lvl); err == nil {
			t.Errorf("level %d accepted", lvl)
		}
	}
	in, err := New(42, 2)
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 42 || in.Level() != 2 {
		t.Errorf("injector = seed %d level %d, want 42/2", in.Seed(), in.Level())
	}
}

// TestChaosDeterminism is the replay property: one (config, workload,
// chaos seed) triple produces byte-identical functional results and
// identical timing/traffic statistics on every run.
func TestChaosDeterminism(t *testing.T) {
	d1, r1 := runInstance(t, "dynamo-reuse-pn", counterInstance(t, 200), 7, 2, true)
	d2, r2 := runInstance(t, "dynamo-reuse-pn", counterInstance(t, 200), 7, 2, true)
	if d1 != d2 {
		t.Errorf("functional digests differ: %s vs %s", d1, d2)
	}
	if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions {
		t.Errorf("timing differs: %d/%d cycles, %d/%d instructions",
			r1.Cycles, r2.Cycles, r1.Instructions, r2.Instructions)
	}
	if r1.NoC != r2.NoC {
		t.Errorf("NoC stats differ: %+v vs %+v", r1.NoC, r2.NoC)
	}
	if r1.Mem != r2.Mem {
		t.Errorf("HBM stats differ: %+v vs %+v", r1.Mem, r2.Mem)
	}
}

// TestChaosPerturbsTiming confirms the injector is not inert: a level-3
// perturbation must move the makespan of a contended run (functional
// results stay identical — that is the metamorphic test).
func TestChaosPerturbsTiming(t *testing.T) {
	dBase, rBase := runInstance(t, "all-near", counterInstance(t, 200), 0, 0, true)
	dChaos, rChaos := runInstance(t, "all-near", counterInstance(t, 200), 99, 3, true)
	if dBase != dChaos {
		t.Errorf("functional digests differ under legal perturbation: %s vs %s", dBase, dChaos)
	}
	if rBase.Cycles == rChaos.Cycles {
		t.Errorf("level-3 chaos left the makespan unchanged at %d cycles", rBase.Cycles)
	}
}

// scheduleSensitive marks workloads whose stores legitimately depend on
// thread interleaving: frontier-driven graph algorithms where whichever
// thread wins a race picks the parent/label/queue order. Their Validate
// checks the algorithmic invariant (distances, components), so under
// chaos they must stay valid and replay-deterministic per seed, but need
// not match the unperturbed schedule byte-for-byte. Everything else
// (commutative reductions, disjoint partitions) must digest identically
// under any legal perturbation.
var scheduleSensitive = map[string]bool{
	"bc": true, "bfs": true, "cc": true, "gmetis": true, "spt": true, "sssp": true,
}

// TestCheckedSuiteMetamorphic is the acceptance gate: every Table III
// workload, with the sanitizer enabled, stays functionally correct and
// audit-clean under the unperturbed schedule and under three chaos
// seeds. Schedule-insensitive workloads must additionally produce a
// byte-identical functional image across all four schedules;
// schedule-sensitive ones must replay each perturbed schedule exactly.
func TestCheckedSuiteMetamorphic(t *testing.T) {
	seeds := []int64{11, 22, 33}
	for _, name := range workload.TableIIIOrder() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			build := func() *workload.Instance {
				inst, err := spec.Build(workload.Params{Threads: 4, Seed: 1, Scale: 0.1})
				if err != nil {
					t.Fatal(err)
				}
				return inst
			}
			base, res := runInstance(t, "dynamo-reuse-pn", build(), 0, 0, true)
			if res.Check == nil || !res.Check.Clean {
				t.Fatalf("base run not clean: %+v", res.Check)
			}
			for _, seed := range seeds {
				got, res := runInstance(t, "dynamo-reuse-pn", build(), seed, 2, true)
				if res.Check == nil || !res.Check.Clean {
					t.Errorf("seed %d: run not clean: %+v", seed, res.Check)
				}
				if scheduleSensitive[name] {
					if again, _ := runInstance(t, "dynamo-reuse-pn", build(), seed, 2, true); again != got {
						t.Errorf("seed %d: perturbed schedule does not replay", seed)
					}
				} else if got != base {
					t.Errorf("seed %d: functional result diverged", seed)
				}
			}
		})
	}
}

// TestIllegalPerturbationCaught fabricates a perturbation no legal
// injector can produce — a second unique owner materializing out of thin
// air mid-run — and asserts the sanitizer converts it into a structured
// violation instead of silent corruption.
func TestIllegalPerturbationCaught(t *testing.T) {
	cfg := smallCfg("all-near")
	cfg.Check = &check.Config{Interval: 1000}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst := counterInstance(t, 100)
	// The illegal injection: duplicate unique ownership of a line the
	// counter never touches, planted while the run is in flight.
	m.Sys.Engine.Schedule(50, func() {
		m.Sys.RNs[2].ForceStateForTest(memory.LineOf(0xdead00), memory.UniqueDirty)
		m.Sys.RNs[3].ForceStateForTest(memory.LineOf(0xdead00), memory.UniqueDirty)
	})
	_, err = m.Run(inst.Programs)
	if err == nil {
		t.Fatal("illegal perturbation not caught")
	}
	if !errors.Is(err, check.ErrViolation) {
		t.Fatalf("err = %v, want a check violation", err)
	}
	var v *check.Violation
	if !errors.As(err, &v) || v.Kind != check.KindSWMR {
		t.Fatalf("violation = %v, want swmr", err)
	}
}

// fuzzBase caches the unperturbed counter digest shared by fuzz iterations.
var fuzzBase struct {
	once   sync.Once
	digest string
}

// FuzzCounterChaos fuzzes the metamorphic property over perturbation
// seeds: any seed at any level must leave the counter workload's
// functional result identical to the unperturbed run, sanitizer clean.
func FuzzCounterChaos(f *testing.F) {
	f.Add(int64(1), 1)
	f.Add(int64(42), 2)
	f.Add(int64(-7), 3)
	f.Fuzz(func(t *testing.T, seed int64, level int) {
		if level < 1 || level > MaxLevel {
			l := level % MaxLevel
			if l < 0 {
				l += MaxLevel
			}
			level = l + 1
		}
		fuzzBase.once.Do(func() {
			fuzzBase.digest, _ = runInstance(t, "dynamo-reuse-pn", counterInstance(t, 60), 0, 0, true)
		})
		got, res := runInstance(t, "dynamo-reuse-pn", counterInstance(t, 60), seed, level, true)
		if got != fuzzBase.digest {
			t.Errorf("seed %d level %d: functional result diverged", seed, level)
		}
		if res.Check == nil || !res.Check.Clean {
			t.Errorf("seed %d level %d: run not clean", seed, level)
		}
	})
}
