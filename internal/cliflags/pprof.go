package cliflags

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// CPUProfile registers -cpuprofile: write a pprof CPU profile of the
// whole command to the given file.
func CPUProfile(fs *flag.FlagSet) *string {
	return fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
}

// MemProfile registers -memprofile: write a pprof allocation profile at
// command exit to the given file.
func MemProfile(fs *flag.FlagSet) *string {
	return fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
}

// StartProfiles begins the pprof captures selected by the -cpuprofile and
// -memprofile values (empty paths are skipped) and returns a stop function
// the command must run before exiting — typically:
//
//	stop, err := cliflags.StartProfiles(*cpuprofile, *memprofile)
//	...
//	defer stop()
//
// The stop function flushes the CPU profile and writes the heap profile
// (after a forced GC, so the numbers reflect live allocations). Stop
// errors are reported on stderr: profile loss must not fail the command.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
