package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Verbosity registers the shared -v and -quiet flags: -v adds per-run
// debug detail, -quiet drops informational chatter. Errors always print.
func Verbosity(fs *flag.FlagSet) (verbose, quiet *bool) {
	verbose = fs.Bool("v", false, "verbose: log every simulation run")
	quiet = fs.Bool("quiet", false, "suppress informational stderr output (errors still print)")
	return verbose, quiet
}

// Logger is the leveled stderr logger shared by every dynamo command, so
// -v and -quiet mean the same thing everywhere. Three levels:
//
//	Debugf — per-run detail, only with -v
//	Infof  — progress, timing, summaries, unless -quiet
//	Errorf — always
//
// Every method appends a newline. Tables and results go to stdout and are
// never routed through the logger.
type Logger struct {
	out     io.Writer
	verbose bool
	quiet   bool
}

// NewLogger builds a stderr logger; -v wins over -quiet when both are set.
func NewLogger(verbose, quiet bool) *Logger {
	return &Logger{out: os.Stderr, verbose: verbose, quiet: quiet && !verbose}
}

// Verbose reports whether -v detail is enabled.
func (l *Logger) Verbose() bool { return l.verbose }

// Debugf logs per-run detail, only with -v.
func (l *Logger) Debugf(format string, args ...any) {
	if !l.verbose {
		return
	}
	fmt.Fprintf(l.out, format+"\n", args...)
}

// Infof logs progress and summaries, unless -quiet.
func (l *Logger) Infof(format string, args ...any) {
	if l.quiet {
		return
	}
	fmt.Fprintf(l.out, format+"\n", args...)
}

// Errorf logs unconditionally.
func (l *Logger) Errorf(format string, args ...any) {
	fmt.Fprintf(l.out, format+"\n", args...)
}

// Fatal logs v unconditionally and exits 1.
func (l *Logger) Fatal(v any) {
	fmt.Fprintln(l.out, v)
	os.Exit(1)
}

// Fatalf logs unconditionally and exits 1.
func (l *Logger) Fatalf(format string, args ...any) {
	l.Errorf(format, args...)
	os.Exit(1)
}

// DebugWriter returns the raw stderr stream when -v is set and nil
// otherwise — the shape runner.Options.Log and experiments.Options.Log
// expect for their per-job progress lines.
func (l *Logger) DebugWriter() io.Writer {
	if l.verbose {
		return l.out
	}
	return nil
}

// InfoWriter returns the stream Infof writes to (io.Discard under
// -quiet), for multi-write messages built up with fmt.Fprintf.
func (l *Logger) InfoWriter() io.Writer {
	if l.quiet {
		return io.Discard
	}
	return l.out
}

// Serve registers -serve: the telemetry HTTP listen address.
func Serve(fs *flag.FlagSet) *string {
	return fs.String("serve", "", `serve sweep telemetry over HTTP on host:port (":0" picks a free port): /metrics, /progress, /jobs`)
}
