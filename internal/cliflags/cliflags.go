// Package cliflags defines the flag spellings shared by every dynamo
// command, so -workload, -policy, -threads, -seed, -scale, -input,
// -json, -jobs and -cache-dir mean exactly the same thing in dynamosim,
// dynamo-experiments, dynamo-stats and dynamo-trace.
package cliflags

import "flag"

// DefaultCacheDir is where commands persist simulation results unless
// told otherwise. It is listed in .gitignore.
const DefaultCacheDir = "results/cache"

// Workload registers -workload: the workload name.
func Workload(fs *flag.FlagSet) *string {
	return fs.String("workload", "", "workload name (see -list)")
}

// Policy registers -policy: the AMO placement policy, defaulting to the
// paper's baseline.
func Policy(fs *flag.FlagSet) *string {
	return fs.String("policy", "all-near", "placement policy (see -list)")
}

// Threads registers -threads with the given default (commands differ:
// simulators default to the paper's 32 cores, trace recording to 8).
func Threads(fs *flag.FlagSet, def int) *int {
	return fs.Int("threads", def, "worker threads per simulation")
}

// Seed registers -seed: the workload generation seed.
func Seed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 1, "workload generation seed")
}

// Scale registers -scale with the given default workload-size multiplier.
func Scale(fs *flag.FlagSet, def float64) *float64 {
	return fs.Float64("scale", def, "workload size multiplier")
}

// Input registers -input: the workload input variant.
func Input(fs *flag.FlagSet) *string {
	return fs.String("input", "", "workload input variant")
}

// JSON registers -json: machine-readable output instead of text.
func JSON(fs *flag.FlagSet) *bool {
	return fs.Bool("json", false, "emit JSON instead of text")
}

// Jobs registers -jobs: the concurrent-simulation bound of the sweep
// runner (0 = GOMAXPROCS).
func Jobs(fs *flag.FlagSet) *int {
	return fs.Int("jobs", 0, "concurrent simulations (0 = host cores)")
}

// CacheDir registers -cache-dir: the persistent result cache directory.
// An empty value disables persistence.
func CacheDir(fs *flag.FlagSet, def string) *string {
	return fs.String("cache-dir", def, "persistent result cache directory (empty = no persistence)")
}

// Check registers -check: attach the runtime protocol invariant sanitizer
// (SWMR and directory audits, occupancy bounds, end-of-run leak checks).
func Check(fs *flag.FlagSet) *bool {
	return fs.Bool("check", false, "attach the protocol invariant sanitizer")
}

// ChaosSeed registers -chaos-seed: the deterministic fault-injection seed.
func ChaosSeed(fs *flag.FlagSet) *int64 {
	return fs.Int64("chaos-seed", 0, "deterministic fault-injection seed (0 with -chaos-level set selects seed 1)")
}

// ChaosLevel registers -chaos-level: the fault-injection intensity.
func ChaosLevel(fs *flag.FlagSet) *int {
	return fs.Int("chaos-level", 0, "fault-injection intensity 0..3 (0 with -chaos-seed set selects level 1)")
}

// CkptEvery registers -ckpt-every: the periodic checkpoint interval in
// simulation events. Zero disables periodic checkpoints.
func CkptEvery(fs *flag.FlagSet) *uint64 {
	return fs.Uint64("ckpt-every", 0, "checkpoint every N simulation events (0 = off)")
}

// Resume registers -resume: restore interrupted work from persisted
// checkpoints.
func Resume(fs *flag.FlagSet) *bool {
	return fs.Bool("resume", false, "resume interrupted runs from their checkpoints")
}

// Retries registers -retries: bounded re-execution of transiently failed
// sweep jobs before quarantine.
func Retries(fs *flag.FlagSet) *int {
	return fs.Int("retries", 0, "retry transiently failed jobs up to N times before quarantine")
}
