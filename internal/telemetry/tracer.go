package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dynamo/internal/obs"
)

// Outcome is a job's terminal state.
type Outcome string

const (
	// OutcomeCached marks a job answered by the persistent store.
	OutcomeCached Outcome = "cached"
	// OutcomeOK marks a job that simulated and persisted its result.
	OutcomeOK Outcome = "ok"
	// OutcomeFailed marks a job that exhausted its retries and was
	// quarantined.
	OutcomeFailed Outcome = "failed"
	// OutcomeInterrupted marks a job cancelled by the sweep interrupt; its
	// checkpoint (when one was captured) makes it resumable, not failed.
	OutcomeInterrupted Outcome = "interrupted"
	// OutcomePreempted marks a job that cooperatively yielded at a
	// checkpoint boundary; a later submission resumes it.
	OutcomePreempted Outcome = "preempted"
)

// AttemptSpan is one execution attempt inside a job span. A retried job
// carries one attempt per execution; times are microseconds since the
// tracer started.
type AttemptSpan struct {
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
	Error   string `json:"error,omitempty"`
}

// JobSpan is the structured trace of one runner job, from submission to
// its terminal state: queued → cache-check → run (attempt sub-spans) →
// persist, quarantine or interrupt. One JSONL journal line per span.
type JobSpan struct {
	// Digest is the request's canonical content digest; Request its
	// human-readable rendering.
	Digest  string `json:"digest"`
	Request string `json:"request"`
	// QueuedUS is the submission time, StartUS the dequeue/cache-check
	// time, EndUS the terminal time — all microseconds since tracer start.
	QueuedUS int64 `json:"queued_us"`
	StartUS  int64 `json:"start_us"`
	EndUS    int64 `json:"end_us"`
	// Outcome is the terminal state; CacheHit marks a persistent-store
	// answer, Resumed a run restored from a checkpoint.
	Outcome  Outcome `json:"outcome"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Resumed  bool    `json:"resumed,omitempty"`
	// SimEvents is the kernel event count the job simulated (zero for
	// cache hits); Error the terminal error, when there was one.
	SimEvents uint64        `json:"sim_events,omitempty"`
	Error     string        `json:"error,omitempty"`
	Attempts  []AttemptSpan `json:"attempts,omitempty"`
}

// DefaultJobTail bounds the in-memory span tail when no capacity is given.
const DefaultJobTail = 256

// Tracer records completed job spans: each one is appended to the JSONL
// journal (when one is configured) and kept in a bounded in-memory tail
// for the /jobs endpoint. Safe for concurrent use.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	journal io.WriteCloser // nil: no journal
	tail    []JobSpan      // ring of the most recent spans
	cap     int
	total   uint64
}

// NewTracer builds a tracer keeping the most recent tailCap spans
// (DefaultJobTail if <= 0) and journaling to journal (nil disables).
func NewTracer(journal io.WriteCloser, tailCap int) *Tracer {
	if tailCap <= 0 {
		tailCap = DefaultJobTail
	}
	return &Tracer{start: time.Now(), journal: journal, cap: tailCap}
}

// now returns microseconds since the tracer started.
func (t *Tracer) now() int64 { return time.Since(t.start).Microseconds() }

// StartJob opens a span for a newly submitted job. A nil tracer returns a
// nil job, whose methods all no-op.
func (t *Tracer) StartJob(digest, request string) *Job {
	if t == nil {
		return nil
	}
	return &Job{t: t, span: JobSpan{Digest: digest, Request: request, QueuedUS: t.now()}}
}

// record closes a span into the tail and the journal. Journal write
// failures degrade the journal (dropped line), never the sweep.
func (t *Tracer) record(span JobSpan) {
	line, err := json.Marshal(span)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.tail) == t.cap {
		copy(t.tail, t.tail[1:])
		t.tail = t.tail[:t.cap-1]
	}
	t.tail = append(t.tail, span)
	if t.journal != nil && err == nil {
		t.journal.Write(append(line, '\n'))
	}
}

// Tail returns up to n of the most recent completed spans in completion
// order (n <= 0 returns the whole retained tail).
func (t *Tracer) Tail(n int) []JobSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.tail) {
		n = len(t.tail)
	}
	out := make([]JobSpan, n)
	copy(out, t.tail[len(t.tail)-n:])
	return out
}

// Find returns the most recent completed span for digest, when one is
// still in the retained tail (a digest that completed more than once —
// retried across sweeps, say — reports its latest completion). The sweep
// service's /v1/jobs/{digest}/span endpoint reads through it.
func (t *Tracer) Find(digest string) (JobSpan, bool) {
	if t == nil {
		return JobSpan{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.tail) - 1; i >= 0; i-- {
		if t.tail[i].Digest == digest {
			return t.tail[i], true
		}
	}
	return JobSpan{}, false
}

// Total returns how many spans completed over the tracer's lifetime
// (including any evicted from the tail).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Close closes the journal, if one is configured.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.journal == nil {
		return nil
	}
	err := t.journal.Close()
	t.journal = nil
	return err
}

// Job is one in-flight span handle. Methods are called from the job's own
// goroutine (plus StartJob from the submitter, which happens-before the
// run); all are safe on a nil receiver.
type Job struct {
	t    *Tracer
	span JobSpan
}

// Begin marks the dequeue/cache-check time.
func (j *Job) Begin() {
	if j == nil {
		return
	}
	j.span.StartUS = j.t.now()
}

// MarkResumed records that the run restored from a persisted checkpoint.
func (j *Job) MarkResumed() {
	if j == nil {
		return
	}
	j.span.Resumed = true
}

// AttemptStart opens an execution attempt sub-span.
func (j *Job) AttemptStart() {
	if j == nil {
		return
	}
	j.span.Attempts = append(j.span.Attempts, AttemptSpan{StartUS: j.t.now()})
}

// AttemptEnd closes the current attempt, recording its error if any.
func (j *Job) AttemptEnd(err error) {
	if j == nil || len(j.span.Attempts) == 0 {
		return
	}
	a := &j.span.Attempts[len(j.span.Attempts)-1]
	a.EndUS = j.t.now()
	if err != nil {
		a.Error = err.Error()
	}
}

// Done closes the span with its terminal state and records it. A span
// that never ran (cache hit, interrupted in queue) gets its StartUS
// backfilled so the rendered queue phase stays well-formed.
func (j *Job) Done(outcome Outcome, simEvents uint64, err error) {
	if j == nil {
		return
	}
	j.span.EndUS = j.t.now()
	if j.span.StartUS == 0 {
		j.span.StartUS = j.span.EndUS
	}
	j.span.Outcome = outcome
	j.span.CacheHit = outcome == OutcomeCached
	j.span.SimEvents = simEvents
	if err != nil {
		j.span.Error = err.Error()
	}
	j.t.record(j.span)
}

// ReadJournal parses an append-only JSONL job journal back into spans.
// Lines that fail to parse abort with their line number, so a truncated
// tail (a crashed sweep) is reported, not silently dropped.
func ReadJournal(r io.Reader) ([]JobSpan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var spans []JobSpan
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s JobSpan
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return spans, fmt.Errorf("telemetry: journal line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return spans, fmt.Errorf("telemetry: reading journal: %w", err)
	}
	return spans, nil
}

// ExportTraceEvents renders a job journal as a Chrome trace-event
// document, so a whole sweep opens in ui.perfetto.dev alongside the
// simulation timelines of obs.WriteTimeline. Jobs are packed onto lanes
// (greedy first-fit by span overlap); each job renders as a slice from
// submission to completion with a nested "queued" phase and one nested
// slice per execution attempt. Timestamps are journal microseconds, so
// 1 ms of sweep wall-clock renders as 1 ms.
func ExportTraceEvents(journal io.Reader, w io.Writer) error {
	spans, err := ReadJournal(journal)
	if err != nil {
		return err
	}
	te := obs.NewTraceEvents(w)
	const pid = 1
	te.Emit(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"sweep jobs"}}`, pid)
	var laneEnd []int64
	lanes := make([]int, len(spans))
	for i, s := range spans {
		lane := -1
		for l, end := range laneEnd {
			if end <= s.QueuedUS {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
			te.Emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"lane %d"}}`,
				pid, lane, lane)
		}
		laneEnd[lane] = s.EndUS
		lanes[i] = lane
	}
	for i, s := range spans {
		tid := lanes[i]
		te.Emit(`{"ph":"X","cat":"job","name":%q,"pid":%d,"tid":%d,"ts":%d,"dur":%d,`+
			`"args":{"digest":%q,"outcome":%q,"cache_hit":%t,"resumed":%t,"sim_events":%d,"error":%q}}`,
			s.Request, pid, tid, s.QueuedUS, s.EndUS-s.QueuedUS,
			s.Digest, s.Outcome, s.CacheHit, s.Resumed, s.SimEvents, s.Error)
		if s.StartUS > s.QueuedUS {
			te.Emit(`{"ph":"X","cat":"phase","name":"queued","pid":%d,"tid":%d,"ts":%d,"dur":%d}`,
				pid, tid, s.QueuedUS, s.StartUS-s.QueuedUS)
		}
		for n, a := range s.Attempts {
			te.Emit(`{"ph":"X","cat":"phase","name":"attempt %d","pid":%d,"tid":%d,"ts":%d,"dur":%d,"args":{"error":%q}}`,
				n+1, pid, tid, a.StartUS, a.EndUS-a.StartUS, a.Error)
		}
	}
	return te.Close()
}

// OpenJournal opens (appending, creating if needed) a JSONL journal file
// for NewSweep.
func OpenJournal(path string) (io.WriteCloser, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening journal: %w", err)
	}
	return f, nil
}
