package telemetry

import (
	"io"
	"time"
)

// jobDurationBounds are the job-duration histogram's bucket upper bounds
// in seconds: sweep jobs span quick cache re-checks to multi-minute
// full-scale simulations.
var jobDurationBounds = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// SweepOptions configures a Sweep.
type SweepOptions struct {
	// Journal, when non-nil, receives one JSONL line per completed job
	// (see OpenJournal for the file-backed case). Closed by Sweep.Close.
	Journal io.WriteCloser
	// JobTail bounds the in-memory span tail served by /jobs
	// (DefaultJobTail if <= 0).
	JobTail int
}

// Sweep is the runner's telemetry surface: a metrics registry updated by
// the runner's submit, cache, run, retry and quarantine paths, plus the
// per-job tracer. A nil *Sweep is a valid, permanently disabled surface —
// every method short-circuits with zero allocations, so the runner
// publishes unconditionally.
type Sweep struct {
	reg    *Registry
	tracer *Tracer
	start  time.Time

	requests    *Counter
	deduped     *Counter
	submitted   *Counter
	done        *Counter
	failed      *Counter
	interrupted *Counter

	memHits   *Counter
	diskHits  *Counter
	misses    *Counter
	evictions *Counter

	retries *Counter
	panics  *Counter
	resumed *Counter

	preempted  *Counter
	overloaded *Counter
	expired    *Counter

	leaseGranted   *Counter
	leaseExpired   *Counter
	leaseReleased  *Counter
	leaseRevoked   *Counter
	leaseCommitted *Counter
	commitOK       *Counter
	commitDup      *Counter
	commitFenced   *Counter
	commitFailed   *Counter
	ckptShipped    *Counter
	leases         *Gauge
	fleetWorkers   *Gauge

	queued   *Gauge
	running  *Gauge
	workers  *Gauge
	util     *FloatGauge
	eventSec *FloatGauge

	simEvents    *Counter
	simSeconds   *FloatCounter
	savedSeconds *FloatCounter
	jobDur       *Histogram
}

// NewSweep builds an enabled telemetry surface.
func NewSweep(o SweepOptions) *Sweep {
	reg := NewRegistry()
	s := &Sweep{
		reg:    reg,
		tracer: NewTracer(o.Journal, o.JobTail),
		start:  time.Now(),

		requests:    reg.Counter("dynamo_sweep_requests_total", "", "Submit calls, before dedupe."),
		deduped:     reg.Counter("dynamo_sweep_jobs_total", `state="deduped"`, "Jobs by state."),
		submitted:   reg.Counter("dynamo_sweep_jobs_total", `state="submitted"`, "Jobs by state."),
		done:        reg.Counter("dynamo_sweep_jobs_total", `state="done"`, "Jobs by state."),
		failed:      reg.Counter("dynamo_sweep_jobs_total", `state="failed"`, "Jobs by state."),
		interrupted: reg.Counter("dynamo_sweep_jobs_total", `state="interrupted"`, "Jobs by state."),

		memHits:   reg.Counter("dynamo_sweep_cache_total", `event="memory_hit"`, "Result cache activity."),
		diskHits:  reg.Counter("dynamo_sweep_cache_total", `event="disk_hit"`, "Result cache activity."),
		misses:    reg.Counter("dynamo_sweep_cache_total", `event="miss"`, "Result cache activity."),
		evictions: reg.Counter("dynamo_sweep_cache_total", `event="eviction"`, "Result cache activity."),

		retries: reg.Counter("dynamo_sweep_retries_total", "", "Re-executions of transiently failed jobs."),
		panics:  reg.Counter("dynamo_sweep_panics_total", "", "Jobs whose simulation panicked (recovered)."),
		resumed: reg.Counter("dynamo_sweep_resumed_total", "", "Jobs restored from a persisted checkpoint."),

		preempted:  reg.Counter("dynamo_runner_preemptions_total", "", "Jobs that yielded at a checkpoint boundary to make room for another sweep."),
		overloaded: reg.Counter("dynamo_service_overloaded_total", "", "Sweep submissions rejected by the bounded admission queue."),
		expired:    reg.Counter("dynamo_service_deadline_expired_total", "", "Jobs abandoned because their sweep's deadline passed."),

		leaseGranted:   reg.Counter("dynamo_work_leases_total", `event="granted"`, "Work-lease lifecycle events."),
		leaseExpired:   reg.Counter("dynamo_work_leases_total", `event="expired"`, "Work-lease lifecycle events."),
		leaseReleased:  reg.Counter("dynamo_work_leases_total", `event="released"`, "Work-lease lifecycle events."),
		leaseRevoked:   reg.Counter("dynamo_work_leases_total", `event="revoked"`, "Work-lease lifecycle events."),
		leaseCommitted: reg.Counter("dynamo_work_leases_total", `event="committed"`, "Work-lease lifecycle events."),
		commitOK:       reg.Counter("dynamo_work_commits_total", `outcome="ok"`, "Worker result commits by outcome."),
		commitDup:      reg.Counter("dynamo_work_commits_total", `outcome="duplicate"`, "Worker result commits by outcome."),
		commitFenced:   reg.Counter("dynamo_work_commits_total", `outcome="fenced"`, "Worker result commits by outcome."),
		commitFailed:   reg.Counter("dynamo_work_commits_total", `outcome="failed"`, "Worker result commits by outcome."),
		ckptShipped:    reg.Counter("dynamo_work_checkpoints_total", "", "Checkpoints shipped by workers over heartbeats."),
		leases:         reg.Gauge("dynamo_work_leases", "", "Work leases currently held by workers."),
		fleetWorkers:   reg.Gauge("dynamo_work_workers", "", "Distinct workers currently holding at least one lease."),

		queued:   reg.Gauge("dynamo_sweep_jobs_queued", "", "Jobs submitted but not yet running or finished."),
		running:  reg.Gauge("dynamo_sweep_jobs_running", "", "Jobs currently executing on the worker pool."),
		workers:  reg.Gauge("dynamo_sweep_workers", "", "Worker-pool size."),
		util:     reg.FloatGauge("dynamo_sweep_worker_utilization", "", "Running jobs over pool size (at scrape)."),
		eventSec: reg.FloatGauge("dynamo_sweep_events_per_second", "", "Aggregate simulated events per second of simulation wall-clock."),

		simEvents:    reg.Counter("dynamo_sweep_sim_events_total", "", "Kernel events executed by simulated (non-cached) jobs."),
		simSeconds:   reg.FloatCounter("dynamo_sweep_sim_seconds_total", "", "Wall-clock spent simulating jobs."),
		savedSeconds: reg.FloatCounter("dynamo_sweep_saved_seconds_total", "", "Recorded simulation time served from the persistent store."),
		jobDur:       reg.Histogram("dynamo_sweep_job_duration_seconds", "Executed-job wall-clock, cache hits excluded.", jobDurationBounds),
	}
	return s
}

// Enabled reports whether telemetry collects anything; the runner guards
// span construction (digest and request rendering) behind it.
func (s *Sweep) Enabled() bool { return s != nil }

// Registry exposes the underlying registry, for callers registering
// additional instruments on the same scrape.
func (s *Sweep) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer exposes the job tracer.
func (s *Sweep) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// StartJob opens a job span (nil on a disabled surface).
func (s *Sweep) StartJob(digest, request string) *Job {
	if s == nil {
		return nil
	}
	return s.tracer.StartJob(digest, request)
}

// Close closes the tracer's journal.
func (s *Sweep) Close() error {
	if s == nil {
		return nil
	}
	return s.tracer.Close()
}

// SetWorkers records the worker-pool size.
func (s *Sweep) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.workers.Set(int64(n))
}

// Submitted counts one Submit call (pre-dedupe).
func (s *Sweep) Submitted() {
	if s == nil {
		return
	}
	s.requests.Inc()
}

// JobDeduped counts a submission answered by the in-memory cache.
func (s *Sweep) JobDeduped() {
	if s == nil {
		return
	}
	s.deduped.Inc()
	s.memHits.Inc()
}

// JobQueued counts a new distinct job entering the queue.
func (s *Sweep) JobQueued() {
	if s == nil {
		return
	}
	s.submitted.Inc()
	s.queued.Add(1)
}

// JobCached counts a job answered by the persistent store; saved is the
// recorded wall-clock of the original simulation.
func (s *Sweep) JobCached(saved time.Duration) {
	if s == nil {
		return
	}
	s.queued.Add(-1)
	s.diskHits.Inc()
	s.done.Inc()
	s.savedSeconds.Add(saved.Seconds())
}

// Eviction counts an unusable persisted entry or checkpoint dropped.
func (s *Sweep) Eviction() {
	if s == nil {
		return
	}
	s.evictions.Inc()
}

// JobResumed counts a job restored from a persisted checkpoint.
func (s *Sweep) JobResumed() {
	if s == nil {
		return
	}
	s.resumed.Inc()
}

// JobRunning moves a job from the queue onto the worker pool.
func (s *Sweep) JobRunning() {
	if s == nil {
		return
	}
	s.queued.Add(-1)
	s.running.Add(1)
}

// JobRunDone releases the job's worker-pool slot.
func (s *Sweep) JobRunDone() {
	if s == nil {
		return
	}
	s.running.Add(-1)
}

// Retry counts one re-execution of a transiently failed job.
func (s *Sweep) Retry() {
	if s == nil {
		return
	}
	s.retries.Inc()
}

// JobSucceeded counts a simulated job's success: the run's wall-clock
// enters the duration histogram, its kernel events the throughput
// counters.
func (s *Sweep) JobSucceeded(elapsed time.Duration, simEvents uint64) {
	if s == nil {
		return
	}
	s.done.Inc()
	s.misses.Inc()
	s.simEvents.Add(simEvents)
	s.simSeconds.Add(elapsed.Seconds())
	s.jobDur.Observe(elapsed.Seconds())
}

// JobFailed counts a quarantined job.
func (s *Sweep) JobFailed(panicked bool, elapsed time.Duration) {
	if s == nil {
		return
	}
	s.failed.Inc()
	if panicked {
		s.panics.Inc()
	}
	s.jobDur.Observe(elapsed.Seconds())
}

// JobInterrupted counts a cancelled job. fromQueue marks a job cancelled
// before it ever reached the worker pool (its queued-gauge slot is
// released here; a job cancelled mid-run released it at JobRunning).
func (s *Sweep) JobInterrupted(fromQueue bool) {
	if s == nil {
		return
	}
	if fromQueue {
		s.queued.Add(-1)
	}
	s.interrupted.Inc()
}

// JobPreempted counts a running job that cooperatively yielded at a
// checkpoint boundary. Its running-gauge slot was already released by
// JobRunDone; the re-queued job re-enters through JobQueued, so the
// queued/running gauges stay balanced across a preempt-resume cycle.
func (s *Sweep) JobPreempted() {
	if s == nil {
		return
	}
	s.preempted.Inc()
}

// Overloaded counts a sweep submission the bounded admission queue
// rejected. Rejected jobs never touch the queued/running gauges — they
// were refused before admission, not abandoned after it.
func (s *Sweep) Overloaded() {
	if s == nil {
		return
	}
	s.overloaded.Inc()
}

// DeadlineExpired counts n jobs abandoned because their sweep's deadline
// passed (still-queued jobs expire in bulk; each in-flight job expires as
// its interrupt lands).
func (s *Sweep) DeadlineExpired(n uint64) {
	if s == nil {
		return
	}
	s.expired.Add(n)
}

// LeaseGranted counts a work lease handed to a worker and takes its slot
// on the lease gauge. The gauge drains through exactly one of
// LeaseExpired, LeaseReleased, LeaseRevoked or LeaseCommitted.
func (s *Sweep) LeaseGranted() {
	if s == nil {
		return
	}
	s.leaseGranted.Inc()
	s.leases.Add(1)
}

// LeaseExpired counts a lease revoked by the expiry scanner after its
// holder missed a heartbeat (worker death, hang or partition).
func (s *Sweep) LeaseExpired() {
	if s == nil {
		return
	}
	s.leaseExpired.Inc()
	s.leases.Add(-1)
}

// LeaseReleased counts a lease its holder gave back voluntarily (a
// draining worker checkpointed and released).
func (s *Sweep) LeaseReleased() {
	if s == nil {
		return
	}
	s.leaseReleased.Inc()
	s.leases.Add(-1)
}

// LeaseRevoked counts a lease the server itself withdrew (job cancelled,
// sweep expired, or the lease table shut down).
func (s *Sweep) LeaseRevoked() {
	if s == nil {
		return
	}
	s.leaseRevoked.Inc()
	s.leases.Add(-1)
}

// LeaseCommitted counts a lease ended by its holder's accepted commit.
func (s *Sweep) LeaseCommitted() {
	if s == nil {
		return
	}
	s.leaseCommitted.Inc()
	s.leases.Add(-1)
}

// WorkCommitOK counts an accepted worker result commit.
func (s *Sweep) WorkCommitOK() {
	if s == nil {
		return
	}
	s.commitOK.Inc()
}

// WorkCommitDuplicate counts a byte-identical duplicate commit accepted
// idempotently (a retried send whose first copy already landed).
func (s *Sweep) WorkCommitDuplicate() {
	if s == nil {
		return
	}
	s.commitDup.Inc()
}

// WorkCommitFenced counts a commit rejected because its fencing token was
// stale — the at-most-once guarantee turning a zombie worker's late result
// away.
func (s *Sweep) WorkCommitFenced() {
	if s == nil {
		return
	}
	s.commitFenced.Inc()
}

// WorkCommitFailed counts a commit that reported a job failure from the
// worker rather than a result.
func (s *Sweep) WorkCommitFailed() {
	if s == nil {
		return
	}
	s.commitFailed.Inc()
}

// WorkCheckpointShipped counts a checkpoint a worker shipped over a
// heartbeat.
func (s *Sweep) WorkCheckpointShipped() {
	if s == nil {
		return
	}
	s.ckptShipped.Inc()
}

// SetFleetWorkers records how many distinct workers currently hold at
// least one lease.
func (s *Sweep) SetFleetWorkers(n int64) {
	if s == nil {
		return
	}
	s.fleetWorkers.Set(n)
}

// Progress is the point-in-time sweep snapshot served by /progress and
// rendered by the live progress line.
type Progress struct {
	Workers int64 `json:"workers"`
	// TotalJobs counts distinct jobs submitted so far (post-dedupe);
	// DoneJobs those finished successfully (simulated or cached).
	TotalJobs       uint64 `json:"total_jobs"`
	DoneJobs        uint64 `json:"done_jobs"`
	FailedJobs      uint64 `json:"failed_jobs"`
	InterruptedJobs uint64 `json:"interrupted_jobs"`
	Running         int64  `json:"running"`
	Queued          int64  `json:"queued"`
	// Cache traffic: in-memory dedupe hits, persistent-store hits, misses
	// (simulations executed) and evictions.
	MemoryHits uint64 `json:"memory_hits"`
	DiskHits   uint64 `json:"disk_hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Retries    uint64 `json:"retries"`
	Panics     uint64 `json:"panics"`
	Resumed    uint64 `json:"resumed"`
	// Fault-domain traffic: cooperative preemptions, admission rejections
	// and deadline expiries (zero unless the service enables them).
	Preempted  uint64 `json:"preempted,omitempty"`
	Overloaded uint64 `json:"overloaded,omitempty"`
	Expired    uint64 `json:"expired,omitempty"`
	// SimEvents and EventsPerSec aggregate simulated-job throughput.
	SimEvents    uint64  `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// ElapsedSeconds is the sweep's age; ETASeconds extrapolates the
	// remaining jobs at the observed completion rate (0 when unknown).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ETASeconds     float64 `json:"eta_seconds"`
}

// Finished counts jobs in any terminal state.
func (p Progress) Finished() uint64 { return p.DoneJobs + p.FailedJobs + p.InterruptedJobs }

// Progress snapshots the registry into a derived view.
func (s *Sweep) Progress() Progress {
	if s == nil {
		return Progress{}
	}
	p := Progress{
		Workers:         s.workers.Value(),
		TotalJobs:       s.submitted.Value(),
		DoneJobs:        s.done.Value(),
		FailedJobs:      s.failed.Value(),
		InterruptedJobs: s.interrupted.Value(),
		Running:         s.running.Value(),
		Queued:          s.queued.Value(),
		MemoryHits:      s.memHits.Value(),
		DiskHits:        s.diskHits.Value(),
		Misses:          s.misses.Value(),
		Evictions:       s.evictions.Value(),
		Retries:         s.retries.Value(),
		Panics:          s.panics.Value(),
		Resumed:         s.resumed.Value(),
		Preempted:       s.preempted.Value(),
		Overloaded:      s.overloaded.Value(),
		Expired:         s.expired.Value(),
		SimEvents:       s.simEvents.Value(),
		ElapsedSeconds:  time.Since(s.start).Seconds(),
	}
	if sec := s.simSeconds.Value(); sec > 0 {
		p.EventsPerSec = float64(p.SimEvents) / sec
	}
	if fin := p.Finished(); fin > 0 && p.TotalJobs > fin && p.ElapsedSeconds > 0 {
		p.ETASeconds = p.ElapsedSeconds / float64(fin) * float64(p.TotalJobs-fin)
	}
	return p
}

// WriteMetrics refreshes the derived gauges and renders the registry in
// Prometheus text format. Writing nothing on a disabled surface.
func (s *Sweep) WriteMetrics(w io.Writer) error {
	if s == nil {
		return nil
	}
	if workers := s.workers.Value(); workers > 0 {
		s.util.Set(float64(s.running.Value()) / float64(workers))
	}
	if sec := s.simSeconds.Value(); sec > 0 {
		s.eventSec.Set(float64(s.simEvents.Value()) / sec)
	}
	return s.reg.WritePrometheus(w)
}
