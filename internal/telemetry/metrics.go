// Package telemetry is the sweep control plane's observability layer: a
// lock-cheap metrics registry rendered in Prometheus text format, a
// structured per-job tracer journaled as append-only JSONL and exportable
// to the Chrome trace-event format, and an HTTP server exposing both as
// /metrics, /progress and /jobs while a sweep runs.
//
// Like the probe bus (package obs) and the host self-profiler (package
// perf), the whole layer is designed to cost nothing when off: the runner
// holds a plain *Sweep (nil by default), every hook method is safe on a
// nil receiver, and the disabled job hot path allocates zero bytes
// (asserted in tests). Telemetry only observes the sweep — it never
// touches simulated state, so results, cache digests and experiment
// tables are byte-identical with it on or off.
package telemetry

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments and renders them in Prometheus text
// exposition format. Instruments are registered once (typically at
// construction, single-threaded) and updated concurrently with pure
// atomics; registration and scraping take a mutex, updates never do.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family groups the series sharing one metric name under a single
// HELP/TYPE header.
type family struct {
	name, typ, help string
	series          []series
}

// series is one labeled instrument inside a family.
type series interface {
	labels() string
	write(w *bufio.Writer, name, labels string)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register adds a series to its family, creating the family on first use.
// Registering one name under two types is a programming error and panics.
func (r *Registry) register(name, typ, help string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, typ: typ, help: help}
		r.fams[name] = f
	} else if f.typ != typ {
		panic("telemetry: metric " + name + " registered as both " + f.typ + " and " + typ)
	}
	f.series = append(f.series, s)
}

// Counter registers a monotonically increasing uint64 series. labels is a
// literal Prometheus label body such as `state="done"` ("" for none).
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{lbl: labels}
	r.register(name, "counter", help, c)
	return c
}

// FloatCounter registers a monotonically increasing float series
// (accumulated seconds, for instance).
func (r *Registry) FloatCounter(name, labels, help string) *FloatCounter {
	c := &FloatCounter{lbl: labels}
	r.register(name, "counter", help, c)
	return c
}

// Gauge registers an int64 series that can move both ways.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	g := &Gauge{lbl: labels}
	r.register(name, "gauge", help, g)
	return g
}

// FloatGauge registers a float series set point-in-time (derived rates,
// utilizations — typically refreshed at scrape).
func (r *Registry) FloatGauge(name, labels, help string) *FloatGauge {
	g := &FloatGauge{lbl: labels}
	r.register(name, "gauge", help, g)
	return g
}

// Histogram registers a cumulative histogram over the given upper bounds
// (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(h.bounds)+1)
	r.register(name, "histogram", help, h)
	return h
}

// WritePrometheus renders every family in text exposition format, sorted
// by name so the output is deterministic for a given counter state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		for _, s := range f.series {
			s.write(bw, f.name, s.labels())
		}
	}
	return bw.Flush()
}

// writeSample renders one `name{labels} value` line.
func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteString("{" + labels + "}")
	}
	w.WriteString(" " + value + "\n")
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Counter is a monotonically increasing uint64. All methods are nil-safe.
type Counter struct {
	v   atomic.Uint64
	lbl string
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) labels() string { return c.lbl }
func (c *Counter) write(w *bufio.Writer, name, labels string) {
	writeSample(w, name, labels, strconv.FormatUint(c.v.Load(), 10))
}

// FloatCounter is a monotonically increasing float64, updated with a CAS
// loop so concurrent Adds never lose increments.
type FloatCounter struct {
	bits atomic.Uint64
	lbl  string
}

// Add accumulates v.
func (c *FloatCounter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *FloatCounter) labels() string { return c.lbl }
func (c *FloatCounter) write(w *bufio.Writer, name, labels string) {
	writeSample(w, name, labels, formatFloat(c.Value()))
}

// Gauge is an int64 level: queue depth, running workers.
type Gauge struct {
	v   atomic.Int64
	lbl string
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) labels() string { return g.lbl }
func (g *Gauge) write(w *bufio.Writer, name, labels string) {
	writeSample(w, name, labels, strconv.FormatInt(g.v.Load(), 10))
}

// FloatGauge is a float64 level, set whole (no read-modify-write).
type FloatGauge struct {
	bits atomic.Uint64
	lbl  string
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current level.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *FloatGauge) labels() string { return g.lbl }
func (g *FloatGauge) write(w *bufio.Writer, name, labels string) {
	writeSample(w, name, labels, formatFloat(g.Value()))
}

// Histogram is a cumulative histogram: per-bucket counts plus sum and
// count, rendered as name_bucket{le=...}/name_sum/name_count.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    FloatCounter
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) labels() string { return "" }
func (h *Histogram) write(w *bufio.Writer, name, _ string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", `le="`+formatFloat(b)+`"`, strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", `le="+Inf"`, strconv.FormatUint(cum, 10))
	writeSample(w, name+"_sum", "", formatFloat(h.sum.Value()))
	writeSample(w, name+"_count", "", strconv.FormatUint(h.count.Load(), 10))
}
