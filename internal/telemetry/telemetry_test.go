package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- metrics registry ---

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	done := r.Counter("jobs_total", `state="done"`, "Jobs by state.")
	failed := r.Counter("jobs_total", `state="failed"`, "Jobs by state.")
	depth := r.Gauge("queue_depth", "", "Jobs waiting.")
	secs := r.FloatCounter("sim_seconds_total", "", "Seconds simulated.")
	util := r.FloatGauge("utilization", "", "Busy fraction.")

	done.Add(3)
	failed.Inc()
	depth.Set(7)
	depth.Add(-2)
	secs.Add(1.5)
	secs.Add(0.25)
	util.Set(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP jobs_total Jobs by state.
# TYPE jobs_total counter
jobs_total{state="done"} 3
jobs_total{state="failed"} 1
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 5
# HELP sim_seconds_total Seconds simulated.
# TYPE sim_seconds_total counter
sim_seconds_total 1.75
# HELP utilization Busy fraction.
# TYPE utilization gauge
utilization 0.5
`
	if got := buf.String(); got != want {
		t.Errorf("rendered metrics mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_seconds", "Durations.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP dur_seconds Durations.
# TYPE dur_seconds histogram
dur_seconds_bucket{le="0.1"} 2
dur_seconds_bucket{le="1"} 3
dur_seconds_bucket{le="10"} 4
dur_seconds_bucket{le="+Inf"} 5
dur_seconds_sum 102.65
dur_seconds_count 5
`
	if got := buf.String(); got != want {
		t.Errorf("rendered histogram mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", "")
	defer func() {
		if recover() == nil {
			t.Errorf("registering x_total as gauge after counter did not panic")
		}
	}()
	r.Gauge("x_total", "", "")
}

// TestRegistryConcurrent exercises every instrument from many goroutines
// while scraping; run under -race this verifies the lock-cheap update
// paths are clean.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "")
	fc := r.FloatCounter("fc_total", "", "")
	g := r.Gauge("g", "", "")
	h := r.Histogram("h", "", []float64{1, 2})

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				fc.Add(0.5)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 3))
			}
		}()
	}
	for i := 0; i < 10; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Fatalf("concurrent WritePrometheus: %v", err)
		}
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := fc.Value(); got != workers*iters*0.5 {
		t.Errorf("float counter = %g, want %g", got, workers*iters*0.5)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var fc *FloatCounter
	var g *Gauge
	var fg *FloatGauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	fc.Add(1)
	g.Set(1)
	g.Add(1)
	fg.Set(1)
	h.Observe(1)
	if c.Value() != 0 || fc.Value() != 0 || g.Value() != 0 || fg.Value() != 0 || h.Count() != 0 {
		t.Errorf("nil instruments returned non-zero values")
	}
}

// --- tracer and journal ---

type closeBuffer struct {
	bytes.Buffer
	closed bool
}

func (b *closeBuffer) Close() error { b.closed = true; return nil }

func TestTracerJournalRoundTrip(t *testing.T) {
	var buf closeBuffer
	tr := NewTracer(&buf, 8)

	j := tr.StartJob("d1", "fig7/mcs/64c")
	j.Begin()
	j.AttemptStart()
	j.AttemptEnd(errors.New("transient"))
	j.AttemptStart()
	j.AttemptEnd(nil)
	j.Done(OutcomeOK, 1234, nil)

	k := tr.StartJob("d2", "fig7/mcs/128c")
	k.Done(OutcomeCached, 0, nil)

	f := tr.StartJob("d3", "fig7/cna/64c")
	f.Begin()
	f.AttemptStart()
	f.AttemptEnd(errors.New("boom"))
	f.Done(OutcomeFailed, 0, errors.New("boom"))

	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !buf.closed {
		t.Errorf("Close did not close the journal writer")
	}
	if tr.Total() != 3 {
		t.Errorf("Total = %d, want 3", tr.Total())
	}

	spans, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if len(spans) != 3 {
		t.Fatalf("ReadJournal returned %d spans, want 3", len(spans))
	}
	s := spans[0]
	if s.Digest != "d1" || s.Request != "fig7/mcs/64c" || s.Outcome != OutcomeOK {
		t.Errorf("span 0 = %+v", s)
	}
	if len(s.Attempts) != 2 || s.Attempts[0].Error != "transient" || s.Attempts[1].Error != "" {
		t.Errorf("span 0 attempts = %+v", s.Attempts)
	}
	if s.SimEvents != 1234 || s.CacheHit {
		t.Errorf("span 0 events/cache = %d/%t", s.SimEvents, s.CacheHit)
	}
	if !spans[1].CacheHit || spans[1].Outcome != OutcomeCached {
		t.Errorf("span 1 should be a cache hit: %+v", spans[1])
	}
	if spans[1].StartUS < spans[1].QueuedUS || spans[1].EndUS < spans[1].StartUS {
		t.Errorf("span 1 times not monotone: %+v", spans[1])
	}
	if spans[2].Outcome != OutcomeFailed || spans[2].Error != "boom" {
		t.Errorf("span 2 = %+v", spans[2])
	}

	// The in-memory tail matches the journal.
	tail := tr.Tail(0)
	if len(tail) != 3 || tail[2].Digest != "d3" {
		t.Errorf("Tail = %+v", tail)
	}
	if got := tr.Tail(1); len(got) != 1 || got[0].Digest != "d3" {
		t.Errorf("Tail(1) = %+v", got)
	}
}

func TestTracerTailEviction(t *testing.T) {
	tr := NewTracer(nil, 2)
	for i := 0; i < 5; i++ {
		tr.StartJob(fmt.Sprintf("d%d", i), "r").Done(OutcomeOK, 0, nil)
	}
	if tr.Total() != 5 {
		t.Errorf("Total = %d, want 5", tr.Total())
	}
	tail := tr.Tail(0)
	if len(tail) != 2 || tail[0].Digest != "d3" || tail[1].Digest != "d4" {
		t.Errorf("Tail after eviction = %+v", tail)
	}
}

func TestReadJournalBadLine(t *testing.T) {
	in := "{\"digest\":\"a\",\"request\":\"r\",\"queued_us\":0,\"start_us\":0,\"end_us\":1,\"outcome\":\"ok\"}\nnot json\n"
	spans, err := ReadJournal(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ReadJournal error = %v, want line-2 parse error", err)
	}
	if len(spans) != 1 {
		t.Errorf("ReadJournal kept %d spans before the bad line, want 1", len(spans))
	}
}

func TestExportTraceEvents(t *testing.T) {
	var buf closeBuffer
	tr := NewTracer(&buf, 8)
	j := tr.StartJob("d1", "fig7/mcs/64c")
	j.Begin()
	j.AttemptStart()
	j.AttemptEnd(nil)
	j.Done(OutcomeOK, 10, nil)
	tr.StartJob("d2", `req "quoted"`).Done(OutcomeCached, 0, nil)
	tr.Close()

	var out bytes.Buffer
	if err := ExportTraceEvents(bytes.NewReader(buf.Bytes()), &out); err != nil {
		t.Fatalf("ExportTraceEvents: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var jobs, attempts int
	var sawQuoted bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Cat == "job":
			jobs++
			if ev.Name == `req "quoted"` {
				sawQuoted = true
			}
		case ev.Cat == "phase" && strings.HasPrefix(ev.Name, "attempt"):
			attempts++
		}
	}
	if jobs != 2 || attempts != 1 {
		t.Errorf("export has %d job slices and %d attempts, want 2 and 1", jobs, attempts)
	}
	if !sawQuoted {
		t.Errorf("quoted request name did not survive the export")
	}
}

// --- sweep surface ---

func TestNilSweepIsSafe(t *testing.T) {
	var s *Sweep
	if s.Enabled() {
		t.Fatalf("nil sweep reports enabled")
	}
	s.Submitted()
	s.JobDeduped()
	s.JobQueued()
	s.JobCached(time.Second)
	s.Eviction()
	s.JobResumed()
	s.JobRunning()
	s.JobRunDone()
	s.Retry()
	s.JobSucceeded(time.Second, 10)
	s.JobFailed(true, time.Second)
	s.JobInterrupted(true)
	s.SetWorkers(4)
	if j := s.StartJob("d", "r"); j != nil {
		t.Errorf("nil sweep returned a non-nil job")
	}
	var j *Job
	j.Begin()
	j.MarkResumed()
	j.AttemptStart()
	j.AttemptEnd(nil)
	j.Done(OutcomeOK, 0, nil)
	if p := s.Progress(); p != (Progress{}) {
		t.Errorf("nil sweep progress = %+v", p)
	}
	if err := s.WriteMetrics(io.Discard); err != nil {
		t.Errorf("nil WriteMetrics: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// TestDisabledPathAllocates0 asserts the zero-cost contract: the full
// per-job hook sequence on a disabled (nil) surface allocates nothing.
func TestDisabledPathAllocates0(t *testing.T) {
	var s *Sweep
	allocs := testing.AllocsPerRun(100, func() {
		s.Submitted()
		s.JobQueued()
		if s.Enabled() {
			t.Fatalf("nil sweep enabled")
		}
		var j *Job
		j.Begin()
		s.JobRunning()
		j.AttemptStart()
		j.AttemptEnd(nil)
		s.JobRunDone()
		s.JobSucceeded(time.Millisecond, 42)
		j.Done(OutcomeOK, 42, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled job path allocates %.1f bytes/op, want 0", allocs)
	}
}

func TestSweepProgress(t *testing.T) {
	s := NewSweep(SweepOptions{})
	s.SetWorkers(4)
	for i := 0; i < 10; i++ {
		s.Submitted()
		s.JobQueued()
	}
	s.Submitted()
	s.JobDeduped() // 11th submit hits the in-memory cache

	s.JobCached(3 * time.Second) // disk hit
	for i := 0; i < 4; i++ {     // four simulated successes
		s.JobRunning()
		s.JobRunDone()
		s.JobSucceeded(500*time.Millisecond, 1000)
	}
	s.JobRunning() // one failure, with one retry and a panic
	s.Retry()
	s.JobRunDone()
	s.JobFailed(true, time.Second)
	s.JobInterrupted(true) // one cancelled in queue

	p := s.Progress()
	if p.TotalJobs != 10 || p.DoneJobs != 5 || p.FailedJobs != 1 || p.InterruptedJobs != 1 {
		t.Errorf("progress jobs = %d/%d done, %d failed, %d interrupted",
			p.DoneJobs, p.TotalJobs, p.FailedJobs, p.InterruptedJobs)
	}
	if p.Finished() != 7 {
		t.Errorf("Finished = %d, want 7", p.Finished())
	}
	if p.MemoryHits != 1 || p.DiskHits != 1 || p.Misses != 4 || p.Retries != 1 || p.Panics != 1 {
		t.Errorf("progress cache = %+v", p)
	}
	if p.Queued != 3 || p.Running != 0 {
		t.Errorf("progress queue = %d queued, %d running; want 3, 0", p.Queued, p.Running)
	}
	if p.SimEvents != 4000 {
		t.Errorf("progress sim events = %d, want 4000", p.SimEvents)
	}
	if p.EventsPerSec != 2000 {
		t.Errorf("events/sec = %g, want 2000", p.EventsPerSec)
	}
	if p.ETASeconds <= 0 {
		t.Errorf("ETA = %g, want > 0 with 3 jobs outstanding", p.ETASeconds)
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	for _, want := range []string{
		`dynamo_sweep_jobs_total{state="done"} 5`,
		`dynamo_sweep_jobs_total{state="submitted"} 10`,
		`dynamo_sweep_cache_total{event="disk_hit"} 1`,
		`dynamo_sweep_retries_total 1`,
		`dynamo_sweep_panics_total 1`,
		`dynamo_sweep_workers 4`,
		`dynamo_sweep_sim_events_total 4000`,
		`dynamo_sweep_job_duration_seconds_count 5`,
		`dynamo_sweep_events_per_second 2000`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics output missing %q:\n%s", want, buf.String())
		}
	}
}

// --- HTTP server ---

func TestServerEndpoints(t *testing.T) {
	s := NewSweep(SweepOptions{})
	s.SetWorkers(2)
	s.Submitted()
	s.JobQueued()
	s.StartJob("d1", "fig7/mcs/64c").Done(OutcomeOK, 5, nil)
	s.JobRunning()
	s.JobRunDone()
	s.JobSucceeded(10*time.Millisecond, 5)

	srv, err := Serve("127.0.0.1:0", s)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, `dynamo_sweep_jobs_total{state="done"} 1`) {
		t.Errorf("/metrics: code %d, body:\n%s", code, body)
	}

	code, body := get("/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress: code %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/progress is not Progress JSON: %v\n%s", err, body)
	}
	if p.DoneJobs != 1 || p.TotalJobs != 1 || p.Workers != 2 {
		t.Errorf("/progress = %+v", p)
	}

	code, body = get("/jobs")
	if code != http.StatusOK {
		t.Fatalf("/jobs: code %d", code)
	}
	var jobs struct {
		Total uint64    `json:"total"`
		Jobs  []JobSpan `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &jobs); err != nil {
		t.Fatalf("/jobs is not JSON: %v\n%s", err, body)
	}
	if jobs.Total != 1 || len(jobs.Jobs) != 1 || jobs.Jobs[0].Digest != "d1" {
		t.Errorf("/jobs = %+v", jobs)
	}

	if code, _ := get("/jobs?n=bad"); code != http.StatusBadRequest {
		t.Errorf("/jobs?n=bad: code %d, want 400", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code %d, want 404", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code %d, body %q", code, body)
	}
}

// BenchmarkDisabledJobPath measures the nil-surface hook sequence; the
// 0-alloc assertion lives in TestDisabledPathAllocates0.
func BenchmarkDisabledJobPath(b *testing.B) {
	var s *Sweep
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Submitted()
		s.JobQueued()
		var j *Job
		j.Begin()
		s.JobRunning()
		j.AttemptStart()
		j.AttemptEnd(nil)
		s.JobRunDone()
		s.JobSucceeded(time.Millisecond, 42)
		j.Done(OutcomeOK, 42, nil)
	}
}
