package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Server exposes a running sweep over HTTP:
//
//	/metrics  — Prometheus text exposition (scrape target)
//	/progress — JSON Progress snapshot (done/total, cache traffic, ETA)
//	/jobs     — JSON tail of completed job spans (?n= bounds the tail)
//
// The server only reads the telemetry surface; it never blocks the sweep.
type Server struct {
	handlers
	ln   net.Listener
	http *http.Server
}

// Mount registers the telemetry endpoints (/metrics, /progress, /jobs) on
// an existing mux, so a host server — the sweep control plane — shares one
// listener between its API and the telemetry surface. Serve uses it for
// the standalone server.
func Mount(mux *http.ServeMux, s *Sweep) {
	h := handlers{s: s}
	mux.HandleFunc("/metrics", h.metrics)
	mux.HandleFunc("/progress", h.progress)
	mux.HandleFunc("/jobs", h.jobs)
}

// Serve binds addr (host:port; ":0" picks a free port) and serves s until
// Close. Listen errors surface here; request-serving errors are absorbed.
func Serve(addr string, s *Sweep) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	srv := &Server{handlers: handlers{s: s}, ln: ln}
	mux := http.NewServeMux()
	Mount(mux, s)
	mux.HandleFunc("/", srv.index)
	srv.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.http.Serve(ln)
	return srv, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and waits briefly for in-flight requests.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// handlers are the mountable telemetry endpoints over one Sweep surface.
type handlers struct {
	s *Sweep
}

func (s handlers) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.s.WriteMetrics(w)
}

func (s handlers) progress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.s.Progress())
}

func (s handlers) jobs(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "telemetry: ?n= must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	spans := s.s.Tracer().Tail(n)
	if spans == nil {
		spans = []JobSpan{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Total uint64    `json:"total"`
		Jobs  []JobSpan `json:"jobs"`
	}{s.s.Tracer().Total(), spans})
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "dynamo sweep telemetry\n\n/metrics  Prometheus text format\n/progress JSON progress snapshot\n/jobs     JSON job-span tail (?n=N)\n")
}
