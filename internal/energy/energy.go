// Package energy estimates dynamic energy from simulation event counts,
// standing in for the McPAT flow the paper uses (Section VI-A). The model
// charges a fixed per-event energy to each structure; absolute joules are
// not meaningful, but ratios between policies are, which is all the paper's
// Section VI-E energy claims rely on.
package energy

import "fmt"

// Model holds per-event energies in picojoules. The defaults are
// plausibility-ordered for a 22nm-class node: SRAM data arrays dominate
// over small buffers, DRAM dominates everything, and NoC energy scales
// with flit-hops.
type Model struct {
	L1AccessPJ     float64
	L2AccessPJ     float64
	LLCAccessPJ    float64
	DirLookupPJ    float64
	AMOBufAccessPJ float64
	ALUOpPJ        float64
	FlitHopPJ      float64
	MemAccessPJ    float64
}

// DefaultModel returns the standard constants.
func DefaultModel() Model {
	return Model{
		L1AccessPJ:     10,
		L2AccessPJ:     25,
		LLCAccessPJ:    60,
		DirLookupPJ:    5,
		AMOBufAccessPJ: 3,
		ALUOpPJ:        2,
		FlitHopPJ:      4,
		MemAccessPJ:    220,
	}
}

// Validate rejects non-positive constants.
func (m Model) Validate() error {
	for _, v := range []float64{m.L1AccessPJ, m.L2AccessPJ, m.LLCAccessPJ, m.DirLookupPJ,
		m.AMOBufAccessPJ, m.ALUOpPJ, m.FlitHopPJ, m.MemAccessPJ} {
		if v <= 0 {
			return fmt.Errorf("energy: non-positive per-event energy %g", v)
		}
	}
	return nil
}

// Events are the activity counts a run produced.
type Events struct {
	L1Accesses     uint64
	L2Accesses     uint64
	LLCAccesses    uint64
	DirLookups     uint64
	AMOBufAccesses uint64
	ALUOps         uint64
	FlitHops       uint64
	MemAccesses    uint64
}

// Add accumulates other into e.
func (e *Events) Add(other Events) {
	e.L1Accesses += other.L1Accesses
	e.L2Accesses += other.L2Accesses
	e.LLCAccesses += other.LLCAccesses
	e.DirLookups += other.DirLookups
	e.AMOBufAccesses += other.AMOBufAccesses
	e.ALUOps += other.ALUOps
	e.FlitHops += other.FlitHops
	e.MemAccesses += other.MemAccesses
}

// Breakdown is dynamic energy per component, in picojoules.
type Breakdown struct {
	Caches float64 // L1 + L2 + LLC + AMO buffer
	NoC    float64 // routers and links (flit-hops) + directory
	Memory float64 // HBM accesses
	ALU    float64 // far-AMO operations
}

// Total returns the summed energy in picojoules.
func (b Breakdown) Total() float64 { return b.Caches + b.NoC + b.Memory + b.ALU }

// Compute converts event counts into an energy breakdown.
func (m Model) Compute(e Events) Breakdown {
	return Breakdown{
		Caches: float64(e.L1Accesses)*m.L1AccessPJ +
			float64(e.L2Accesses)*m.L2AccessPJ +
			float64(e.LLCAccesses)*m.LLCAccessPJ +
			float64(e.AMOBufAccesses)*m.AMOBufAccessPJ,
		NoC: float64(e.FlitHops)*m.FlitHopPJ +
			float64(e.DirLookups)*m.DirLookupPJ,
		Memory: float64(e.MemAccesses) * m.MemAccessPJ,
		ALU:    float64(e.ALUOps) * m.ALUOpPJ,
	}
}
