package energy

import (
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultModel()
	bad.FlitHopPJ = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero constant accepted")
	}
}

func TestComputeBreakdown(t *testing.T) {
	m := Model{
		L1AccessPJ: 1, L2AccessPJ: 2, LLCAccessPJ: 3, DirLookupPJ: 4,
		AMOBufAccessPJ: 5, ALUOpPJ: 6, FlitHopPJ: 7, MemAccessPJ: 8,
	}
	b := m.Compute(Events{
		L1Accesses: 1, L2Accesses: 1, LLCAccesses: 1, DirLookups: 1,
		AMOBufAccesses: 1, ALUOps: 1, FlitHops: 1, MemAccesses: 1,
	})
	if b.Caches != 1+2+3+5 {
		t.Errorf("Caches = %g", b.Caches)
	}
	if b.NoC != 7+4 {
		t.Errorf("NoC = %g", b.NoC)
	}
	if b.Memory != 8 {
		t.Errorf("Memory = %g", b.Memory)
	}
	if b.ALU != 6 {
		t.Errorf("ALU = %g", b.ALU)
	}
	if b.Total() != 36 {
		t.Errorf("Total = %g, want 36", b.Total())
	}
}

func TestEventsAdd(t *testing.T) {
	a := Events{L1Accesses: 1, FlitHops: 2, MemAccesses: 3}
	a.Add(Events{L1Accesses: 10, FlitHops: 20, MemAccesses: 30, ALUOps: 5})
	if a.L1Accesses != 11 || a.FlitHops != 22 || a.MemAccesses != 33 || a.ALUOps != 5 {
		t.Fatalf("Add result = %+v", a)
	}
}

// Property: energy is monotone and additive in events.
func TestEnergyLinearityProperty(t *testing.T) {
	m := DefaultModel()
	mk := func(raw [8]uint32) Events {
		return Events{
			L1Accesses: uint64(raw[0]), L2Accesses: uint64(raw[1]),
			LLCAccesses: uint64(raw[2]), DirLookups: uint64(raw[3]),
			AMOBufAccesses: uint64(raw[4]), ALUOps: uint64(raw[5]),
			FlitHops: uint64(raw[6]), MemAccesses: uint64(raw[7]),
		}
	}
	f := func(rawA, rawB [8]uint32) bool {
		a, b := mk(rawA), mk(rawB)
		ta := m.Compute(a).Total()
		tb := m.Compute(b).Total()
		sum := a
		sum.Add(b)
		tsum := m.Compute(sum).Total()
		eps := 1e-9*(ta+tb) + 1e-6
		return tsum >= ta-eps && tsum >= tb-eps && (tsum-(ta+tb)) < eps && (ta+tb-tsum) < eps
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
