package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynamo/internal/core"
	"dynamo/internal/machine"
	"dynamo/internal/runner"
	"dynamo/internal/workload"
)

// counterReq builds a fast, distinct simulation request: the Fig. 1
// counter microbenchmark keyed by seed so each seed is its own digest.
func counterReq(seed int64) runner.Request {
	return runner.Request{
		Counter: &runner.CounterSpec{Ops: 20, Cells: 1},
		Threads: 2,
		Seed:    seed,
	}
}

// startService builds a Service plus its HTTP front end on a loopback
// port and returns both with a ready client.
func startService(t *testing.T, o Options) (*Service, *Server, *Client) {
	t.Helper()
	svc, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		svc.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv, Dial(srv.Addr())
}

// resultJSON decodes a cache document and renders only the simulation
// result — the part that must be identical across transports (the raw
// entry also records wall-clock elapsed time, which never is).
func resultJSON(t *testing.T, entry []byte) []byte {
	t.Helper()
	out, _, err := runner.DecodeEntry(entry)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestServiceEndToEnd(t *testing.T) {
	cache := t.TempDir()
	svc, srv, c := startService(t, Options{CacheDir: cache, Jobs: 2})

	// Two distinct jobs plus one duplicate: the duplicate collapses into
	// the same digest but still counts as a submitted entry.
	st, err := c.Submit(counterReq(1), counterReq(2), counterReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || len(st.Jobs) != 3 {
		t.Fatalf("submit status = %+v", st)
	}
	if st.Jobs[0].Digest != st.Jobs[2].Digest || st.Jobs[0].Digest == st.Jobs[1].Digest {
		t.Fatalf("digest collapse wrong: %+v", st.Jobs)
	}
	if st, err = c.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != SweepDone || st.Done != 3 {
		t.Fatalf("final status = %+v", st)
	}

	// The served result document is byte-for-byte the server's cache file.
	digest := st.Jobs[0].Digest
	remote, err := c.ResultBytes(digest)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile(filepath.Join(cache, digest+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, disk) {
		t.Error("served bytes differ from the on-disk cache document")
	}

	// And the simulation result inside it is byte-identical to a local
	// runner executing the same request against its own cache.
	local := runner.New(runner.Options{Jobs: 1, CacheDir: t.TempDir()})
	defer local.Close()
	out, err := local.Run(counterReq(1))
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(out.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, remote), localJSON) {
		t.Error("remote and local simulation results differ")
	}

	// A second submission of the same sweep is answered from the runner's
	// in-memory dedupe — nothing re-simulates — and serves the same bytes.
	misses := svc.Runner().Stats().Misses
	st2, err := c.Submit(counterReq(1), counterReq(2))
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = c.Wait(st2.ID); err != nil {
		t.Fatal(err)
	}
	if st2.Done != 2 {
		t.Fatalf("warm resubmit status = %+v", st2)
	}
	if again := svc.Runner().Stats().Misses; again != misses {
		t.Errorf("warm resubmit re-simulated: %d -> %d misses", misses, again)
	}
	remote2, err := c.ResultBytes(digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, remote2) {
		t.Error("warm-cache result bytes changed")
	}

	// The job's trace span is served while the tracer retains it.
	span, err := c.Span(digest)
	if err != nil {
		t.Fatal(err)
	}
	if span.Digest != digest || span.Outcome == "" {
		t.Errorf("span = %+v", span)
	}

	// The telemetry endpoints ride on the same listener.
	resp, err := http.Get("http://" + srv.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/progress = %d", resp.StatusCode)
	}
}

func TestExecuteHookMatchesLocal(t *testing.T) {
	_, _, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 2})

	// A local runner with the remote Execute hook: dedupe, stats and
	// result identity stay local, simulation happens on the server.
	remote := runner.New(runner.Options{Jobs: 2, Execute: c.Execute})
	defer remote.Close()
	local := runner.New(runner.Options{Jobs: 2})
	defer local.Close()

	req := counterReq(7)
	ro, err := remote.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := local.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	rj, _ := json.Marshal(ro.Result)
	lj, _ := json.Marshal(lo.Result)
	if !bytes.Equal(rj, lj) {
		t.Errorf("remote-executed result differs from local:\n%s\n%s", rj, lj)
	}
}

func TestSubmitValidationErrors(t *testing.T) {
	_, srv, c := startService(t, Options{CacheDir: t.TempDir()})

	if _, err := c.Submit(runner.Request{Workload: "nope"}); !errors.Is(err, workload.ErrUnknown) {
		t.Errorf("unknown workload err = %v", err)
	}
	if _, err := c.Submit(runner.Request{Workload: "tc", Policy: "nope"}); !errors.Is(err, core.ErrUnknownPolicy) {
		t.Errorf("unknown policy err = %v", err)
	}
	if _, err := c.Submit(runner.Request{Schema: 99, Workload: "tc"}); !errors.Is(err, runner.ErrWireSchema) {
		t.Errorf("bad schema err = %v", err)
	}
	if _, err := c.Submit(runner.Request{Workload: "tc", Threads: -1}); !errors.Is(err, runner.ErrBadField) {
		t.Errorf("bad field err = %v", err)
	}
	if _, err := c.Submit(); err == nil || !strings.Contains(err.Error(), "at least one request") {
		t.Errorf("empty sweep err = %v", err)
	}

	// Malformed JSON → structured 400 with the error envelope.
	resp, err := http.Post("http://"+srv.Addr()+"/v1/sweeps", "application/json",
		strings.NewReader(`{"requests": [`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Message == "" || eb.Error.Kind != "bad-request" {
		t.Errorf("malformed JSON envelope = %+v", eb)
	}

	// A validation failure on the wire carries the offending field.
	body, _ := json.Marshal(SubmitRequest{Requests: []runner.Request{{Workload: "nope"}}})
	resp2, err := http.Post("http://"+srv.Addr()+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var eb2 ErrorBody
	if err := json.NewDecoder(resp2.Body).Decode(&eb2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusBadRequest || eb2.Error.Kind != "unknown-workload" || eb2.Error.Field != "workload" || eb2.Error.Value != "nope" {
		t.Errorf("typed 400 = %d %+v", resp2.StatusCode, eb2)
	}
}

func TestNotFoundAndCancelSemantics(t *testing.T) {
	_, _, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1})

	if _, err := c.Status("s999999-deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown sweep status err = %v", err)
	}
	if _, err := c.Cancel("s999999-deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown sweep cancel err = %v", err)
	}
	if _, err := c.ResultBytes(strings.Repeat("ab", 32)); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown digest err = %v", err)
	}
	if _, err := c.ResultBytes("../../../etc/passwd"); !errors.Is(err, ErrNotFound) {
		t.Errorf("traversal digest err = %v", err)
	}
	if _, err := c.Span(strings.Repeat("ab", 32)); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown span err = %v", err)
	}

	st, err := c.Submit(counterReq(11), counterReq(12), counterReq(13))
	if err != nil {
		t.Fatal(err)
	}
	st1, err := c.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != SweepCancelled {
		t.Fatalf("cancelled status = %+v", st1)
	}
	// Cancel is idempotent: a second cancel reports, never errors.
	st2, err := c.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != SweepCancelled {
		t.Fatalf("double-cancel status = %+v", st2)
	}

	// A cancelled digest is not poisoned: a fresh sweep re-running the
	// same request completes.
	st3, err := c.Submit(counterReq(11))
	if err != nil {
		t.Fatal(err)
	}
	if st3, err = c.Wait(st3.ID); err != nil {
		t.Fatal(err)
	}
	if st3.State != SweepDone || st3.Done != 1 {
		t.Fatalf("resubmit after cancel = %+v", st3)
	}
}

func TestClientRetriesRefusedConnections(t *testing.T) {
	// Reserve a port, release it, and dial before anything listens: the
	// first attempts are refused, then the server comes up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	svc, err := New(Options{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	done := make(chan *Server, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		srv, err := Serve(addr, svc)
		if err != nil {
			done <- nil
			return
		}
		done <- srv
	}()
	defer func() {
		if srv := <-done; srv != nil {
			srv.Close()
		}
	}()

	c := Dial(addr)
	c.Backoff = 50 * time.Millisecond
	c.Retries = 8
	// The call must ride out the refused connections and then complete a
	// real round-trip (a 404 proves the HTTP exchange happened).
	if _, err := c.Status("s000000-00000000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("status through restart = %v", err)
	}

	// A non-refused transport error is not retried.
	c2 := Dial("127.0.0.1:1")
	c2.Retries = 0
	if _, err := c2.Status("x"); err == nil {
		t.Fatal("dead endpoint succeeded")
	}
}

// slowReq is a longer counter run (~tens of ms) so scheduling tests can
// observe a sweep mid-flight.
func slowReq(seed int64) runner.Request {
	return runner.Request{
		Counter: &runner.CounterSpec{Ops: 20000, Cells: 1},
		Threads: 2,
		Seed:    seed,
	}
}

func TestFairSchedulingAcrossSweeps(t *testing.T) {
	svc, _, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1})

	// Sweep A floods the (single-worker) pool; sweep B arrives while A's
	// first job runs with the rest still queued. Round-robin admission
	// must interleave B before A's tail rather than running A to
	// completion first.
	a, err := c.Submit(slowReq(21), slowReq(22), slowReq(23))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	caught := false
	for time.Now().Before(deadline) {
		st, err := c.Status(a.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Running > 0 && st.Done == 0 && st.Queued >= 2 {
			caught = true
			break
		}
		if st.Terminal() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !caught {
		t.Skip("sweep A finished before it could be observed mid-flight")
	}
	b, err := c.Submit(slowReq(24))
	if err != nil {
		t.Fatal(err)
	}
	// Re-validate after B is admitted: a sweep's queued count only
	// decreases, so if A still has two jobs queued now it had two at B's
	// admission, and round-robin (which may grant A at most one more
	// dispatch before B's turn) must run B before A's last job. On a
	// loaded host A can drain between the observation above and the
	// submit — that is a slow test run, not starvation.
	st, err := c.Status(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queued < 2 {
		t.Skip("sweep A drained before sweep B was admitted")
	}
	if _, err := c.Wait(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(b.ID); err != nil {
		t.Fatal(err)
	}

	// Completion order on a one-worker pool is admission order: B's job
	// must not be the last span recorded.
	spans := svc.Telemetry().Tracer().Tail(0)
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	bDigest := slowReq(24).Digest()
	if spans[len(spans)-1].Digest == bDigest {
		t.Errorf("sweep B ran last: a later one-job sweep was starved by an earlier flood")
	}
}

func TestDrainPersistsAndResumeCompletes(t *testing.T) {
	cache := t.TempDir()

	svc, srv, c := startService(t, Options{CacheDir: cache, Jobs: 1, CkptEvery: 5000})
	st, err := c.Submit(counterReq(31), counterReq(32), counterReq(33))
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID
	// Drain immediately: whatever is in flight checkpoints and stops,
	// the rest stays queued in the persisted sweep document.
	svc.Drain()
	if _, err := c.Submit(counterReq(34)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining err = %v", err)
	}
	srv.Close()
	svc.Close()

	if _, err := os.Stat(filepath.Join(cache, "sweeps", id+".json")); err != nil {
		t.Fatalf("sweep document not persisted: %v", err)
	}

	// Restart over the same cache with Resume: the sweep re-admits under
	// its original id and completes.
	_, _, c2 := startService(t, Options{CacheDir: cache, Jobs: 2, Resume: true})
	final, err := c2.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != SweepDone || final.Done != 3 {
		t.Fatalf("resumed sweep = %+v", final)
	}
	// Every result is on disk and decodes to the same simulation result a
	// fresh local run produces.
	local := runner.New(runner.Options{Jobs: 1})
	defer local.Close()
	for _, j := range final.Jobs {
		remote, err := c2.ResultBytes(j.Digest)
		if err != nil {
			t.Fatal(err)
		}
		out, err := local.Run(j.Request)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(out.Result)
		if !bytes.Equal(resultJSON(t, remote), want) {
			t.Errorf("job %s: resumed result differs from a fresh run", j.Digest)
		}
	}
}

func TestCancelledSweepStaysCancelledAcrossRestart(t *testing.T) {
	cache := t.TempDir()
	svc, srv, c := startService(t, Options{CacheDir: cache, Jobs: 1})
	st, err := c.Submit(counterReq(41), counterReq(42))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	svc.Drain()
	srv.Close()
	svc.Close()

	_, _, c2 := startService(t, Options{CacheDir: cache, Jobs: 1, Resume: true})
	got, err := c2.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != SweepCancelled {
		t.Fatalf("restarted cancelled sweep = %+v", got)
	}
}

func TestServiceRequiresCacheDir(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("service without a cache dir built")
	}
}

func TestIndexAndUnknownRoutes(t *testing.T) {
	_, srv, _ := startService(t, Options{CacheDir: t.TempDir()})
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("index = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route = %d", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Kind != "not-found" {
		t.Errorf("unknown route envelope = %+v", eb)
	}
}

// TestInterruptedJobsAreReplayable drives the runner-level guarantee the
// service depends on: a task finished with ErrInterrupted is replaced on
// resubmission instead of memoized forever.
func TestInterruptedJobsAreReplayable(t *testing.T) {
	r := runner.New(runner.Options{Jobs: 1})
	defer r.Close()
	req := counterReq(51)
	ch := make(chan struct{})
	close(ch) // interrupted before it ever runs
	task := r.SubmitInterruptible(req, ch)
	if _, err := task.Wait(); !errors.Is(err, machine.ErrInterrupted) {
		t.Fatalf("pre-closed interrupt err = %v", err)
	}
	out, err := r.Run(req)
	if err != nil {
		t.Fatalf("resubmit after interrupt: %v", err)
	}
	if out.Result == nil {
		t.Fatal("resubmit returned no result")
	}
}

// TestStatusETA exercises the ETA derivation: after at least one finished
// job, a sweep with remaining work reports a positive ETA.
func TestStatusETA(t *testing.T) {
	svc, _, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1})
	st, err := c.Submit(counterReq(61), counterReq(62), counterReq(63), counterReq(64))
	if err != nil {
		t.Fatal(err)
	}
	sawETA := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		cur, err := c.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Terminal() {
			break
		}
		if cur.Done > 0 && cur.Queued+cur.Running > 0 && cur.ETASeconds > 0 {
			sawETA = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawETA {
		// The sweep may simply have finished too fast to observe an
		// intermediate state; only fail when an intermediate state WAS
		// observable and carried no ETA. Recheck via a direct snapshot.
		t.Logf("no intermediate ETA observed (fast machine); final = %+v", mustStatus(t, svc, st.ID))
	}
}

func mustStatus(t *testing.T, svc *Service, id string) *SweepStatus {
	t.Helper()
	st, err := svc.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSweepIDStability locks the id shape: monotone sequence plus a
// content prefix over the job digests.
func TestSweepIDStability(t *testing.T) {
	_, _, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1})
	st, err := c.Submit(counterReq(71))
	if err != nil {
		t.Fatal(err)
	}
	var seq int
	var hexpart string
	if n, err := fmt.Sscanf(st.ID, "s%06d-%8s", &seq, &hexpart); n != 2 || err != nil {
		t.Fatalf("sweep id %q does not match s%%06d-%%8x", st.ID)
	}
	if seq != 1 {
		t.Errorf("first sweep seq = %d", seq)
	}
}
