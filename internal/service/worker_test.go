package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"dynamo/internal/checkpoint"
	"dynamo/internal/faultio"
	"dynamo/internal/machine"
	"dynamo/internal/runner"
)

// startWorker runs a fleet worker against srv and registers its drain.
func startWorker(t *testing.T, srv *Server, o WorkerOptions) *Worker {
	t.Helper()
	o.Addr = srv.Addr()
	if o.Poll <= 0 {
		o.Poll = 10 * time.Millisecond
	}
	w := NewWorker(o)
	w.Start()
	t.Cleanup(w.Drain)
	return w
}

// TestFleetEndToEnd: a Workers-mode service with two real worker
// processes completes a sweep; every result is byte-identical to a local
// run, every commit is accounted for, and the lease gauges drain to zero.
func TestFleetEndToEnd(t *testing.T) {
	_, srv, c := startService(t, Options{
		CacheDir: t.TempDir(), Jobs: 4, Workers: true, LeaseTTL: 2 * time.Second,
	})
	w1 := startWorker(t, srv, WorkerOptions{ID: "w1", Slots: 2})
	w2 := startWorker(t, srv, WorkerOptions{ID: "w2", Slots: 2})

	st, err := c.Submit(counterReq(401), counterReq(402), counterReq(403), counterReq(404))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != SweepDone || st.Done != 4 {
		t.Fatalf("fleet sweep = %+v", st)
	}

	local := runner.New(runner.Options{Jobs: 1})
	defer local.Close()
	for _, j := range st.Jobs {
		remote, err := c.ResultBytes(j.Digest)
		if err != nil {
			t.Fatal(err)
		}
		out, err := local.Run(j.Request)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(out.Result)
		if !bytes.Equal(resultJSON(t, remote), want) {
			t.Errorf("job %s: fleet result differs from local", j.Digest)
		}
	}

	// The sweep turns done when the server accepts the last commit — a
	// beat before the worker's HTTP call returns and its counter bumps.
	waitFor(t, "fleet commit accounting", func() bool {
		return w1.Stats().Committed+w2.Stats().Committed == 4
	})
	s1, s2 := w1.Stats(), w2.Stats()
	if s1.Abandoned+s2.Abandoned != 0 || s1.Failed+s2.Failed != 0 {
		t.Errorf("unexpected failures: w1 %+v, w2 %+v", s1, s2)
	}
	if held := scrapeMetric(t, srv.Addr(), "dynamo_work_leases", ""); held != "0" {
		t.Errorf("dynamo_work_leases = %q after sweep, want 0", held)
	}
	if fleet := scrapeMetric(t, srv.Addr(), "dynamo_work_workers", ""); fleet != "0" {
		t.Errorf("dynamo_work_workers = %q after sweep, want 0", fleet)
	}
}

// TestWorkerDrainHandsJobBack: SIGTERM semantics. Worker A holds a job
// mid-run; Drain interrupts it, ships the final checkpoint, and releases
// the lease. Worker B then resumes from that checkpoint and commits a
// result byte-identical to an uninterrupted local run.
func TestWorkerDrainHandsJobBack(t *testing.T) {
	req := slowReq(411)
	ck, localOut := captureCkpt(t, req, 5000)
	wantJSON, err := json.Marshal(localOut.Result)
	if err != nil {
		t.Fatal(err)
	}
	resume, err := checkpoint.Read(bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}

	_, srv, c := startService(t, Options{
		CacheDir: t.TempDir(), Jobs: 1, Workers: true,
		LeaseTTL: 2 * time.Second, CkptEvery: 5000,
	})
	st, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Worker A's execution seam parks mid-job (having "reached" a real
	// checkpoint) until interrupted — a long job caught by a drain.
	running := make(chan struct{})
	wA := startWorker(t, srv, WorkerOptions{
		ID: "wA", Heartbeat: 20 * time.Millisecond,
		Execute: func(q runner.Request, x runner.ExecOptions) (*runner.Outcome, error) {
			if x.Sink != nil {
				x.Sink(resume)
			}
			close(running)
			<-x.Interrupt
			return nil, fmt.Errorf("worker draining: %w", machine.ErrInterrupted)
		},
	})
	<-running
	wA.Drain()
	sA := wA.Stats()
	if sA.Released != 1 || sA.Abandoned != 0 {
		t.Fatalf("worker A after drain = %+v, want 1 released", sA)
	}

	// Worker B picks the job up with the shipped checkpoint and finishes.
	wB := startWorker(t, srv, WorkerOptions{ID: "wB"})
	if st, err = c.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != SweepDone || st.Done != 1 {
		t.Fatalf("sweep after handoff = %+v", st)
	}
	waitFor(t, "worker B commit accounting", func() bool {
		sB := wB.Stats()
		return sB.Resumed == 1 && sB.Committed == 1
	})
	remote, err := c.ResultBytes(st.Jobs[0].Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, remote), wantJSON) {
		t.Error("handed-back result differs from an uninterrupted local run")
	}
}

// TestWorkerRidesOutTransportFaults: with the deterministic fault
// injector dropping and duplicating the worker's HTTP calls, the sweep
// still completes exactly — retries plus idempotent commits absorb the
// loss, and any response lost after a commit landed is absorbed as a
// byte-identical duplicate rather than a violation.
func TestWorkerRidesOutTransportFaults(t *testing.T) {
	_, srv, c := startService(t, Options{
		CacheDir: t.TempDir(), Jobs: 2, Workers: true, LeaseTTL: 2 * time.Second,
	})
	inj := faultio.New(faultio.Level(7, 3, -1))
	w := startWorker(t, srv, WorkerOptions{
		ID: "flaky", Slots: 2,
		Transport: inj.WrapTransport(nil),
		Retries:   10, Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
	})

	st, err := c.Submit(counterReq(421), counterReq(422), counterReq(423))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != SweepDone || st.Done != 3 {
		t.Fatalf("sweep under faults = %+v", st)
	}

	local := runner.New(runner.Options{Jobs: 1})
	defer local.Close()
	for _, j := range st.Jobs {
		remote, err := c.ResultBytes(j.Digest)
		if err != nil {
			t.Fatal(err)
		}
		out, err := local.Run(j.Request)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(out.Result)
		if !bytes.Equal(resultJSON(t, remote), want) {
			t.Errorf("job %s: result under faults differs from local", j.Digest)
		}
	}
	waitFor(t, "flaky-worker commit accounting", func() bool {
		return w.Stats().Committed >= 3
	})
}

// TestWorkerPanicReportsTransient: a panicking job does not kill the
// slot — it commits as a transient "panicked" failure, the server's
// retry policy re-grants it, and the retry (panic-free) completes.
func TestWorkerPanicReportsTransient(t *testing.T) {
	_, srv, c := startService(t, Options{
		CacheDir: t.TempDir(), Jobs: 1, Retries: 2, Workers: true, LeaseTTL: 2 * time.Second,
	})
	var calls int
	w := startWorker(t, srv, WorkerOptions{
		ID: "shaky",
		Execute: func(q runner.Request, x runner.ExecOptions) (*runner.Outcome, error) {
			calls++
			if calls == 1 {
				panic("simulated corruption")
			}
			return localExec(q, x)
		},
	})

	st, err := c.Submit(counterReq(431))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != SweepDone || st.Done != 1 {
		t.Fatalf("sweep after panic retry = %+v", st)
	}
	waitFor(t, "shaky-worker commit accounting", func() bool {
		s := w.Stats()
		return s.Failed == 1 && s.Committed == 1
	})
}
