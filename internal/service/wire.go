// Package service is the sweep control plane: a long-running HTTP/JSON
// front end over the runner that accepts whole sweeps, schedules them
// fairly against each other on one shared worker pool, serves results out
// of the content-addressed cache, and survives restarts.
//
// The wire API is deliberately thin. A request on the wire is exactly
// runner.Request — the same struct, the same stable lowercase JSON field
// names the canonical digest is computed over — so a served sweep, a CLI
// sweep and a warm cache are byte-identical and dedupe globally. The
// document is versioned by runner.WireSchema; the canonical digest is
// versioned separately by runner.ConfigSchema.
//
// Routes (all under /v1):
//
//	POST   /v1/sweeps             submit a batch of requests → sweep id + per-job digests
//	GET    /v1/sweeps/{id}        sweep status: per-job states, counts, ETA
//	DELETE /v1/sweeps/{id}        cancel the sweep (idempotent)
//	GET    /v1/jobs/{digest}      the raw cache document for a finished job
//	GET    /v1/jobs/{digest}/span the job's trace span, while retained
//
// With Options.Workers, jobs execute on external worker processes instead
// of in-process, pulled through the work-distribution routes:
//
//	POST /v1/work/lease             pull one job under a TTL lease + fencing token
//	POST /v1/work/{digest}/heartbeat  extend the lease, ship a checkpoint, or release
//	POST /v1/work/{digest}/result     commit the outcome (fenced, at-most-once)
//
// The telemetry endpoints (/metrics, /progress, /jobs) mount on the same
// listener via telemetry.Mount.
package service

import (
	"encoding/json"

	"dynamo/internal/runner"
	"dynamo/internal/telemetry"
)

// APIVersion prefixes every control-plane route.
const APIVersion = "v1"

// Job states, as reported in JobStatus.State. "queued" and "running" are
// transient; the rest are terminal.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
	JobExpired   = "expired"
)

// Sweep states, as reported in SweepStatus.State.
const (
	SweepQueued    = "queued"
	SweepRunning   = "running"
	SweepDone      = "done"
	SweepFailed    = "failed"
	SweepCancelled = "cancelled"
	SweepExpired   = "expired"
)

// SubmitRequest is the POST /v1/sweeps body: one sweep as a batch of wire
// requests. Schema is runner.WireSchema (zero is accepted and means "the
// current one"); each request may additionally carry its own schema field.
type SubmitRequest struct {
	Schema   int              `json:"schema,omitempty"`
	Requests []runner.Request `json:"requests"`
	// DeadlineSeconds, when positive, bounds the sweep's wall-clock: once
	// it elapses, still-queued jobs expire and in-flight ones are
	// interrupted at their next checkpoint boundary. Zero means no
	// deadline; negative or non-finite values are rejected ("bad-field").
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
}

// JobStatus is one job's standing inside a sweep. Digest is the request's
// canonical content digest — the key for GET /v1/jobs/{digest} once the
// job is done.
type JobStatus struct {
	Digest  string         `json:"digest"`
	Request runner.Request `json:"request"`
	State   string         `json:"state"`
	// Cached marks a job answered by the persistent store rather than
	// simulated for this sweep.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// SweepStatus is a point-in-time snapshot of one sweep: the response body
// of POST /v1/sweeps, GET /v1/sweeps/{id} and DELETE /v1/sweeps/{id}.
type SweepStatus struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	State  string `json:"state"`
	// Per-job counts over Jobs. Requests that collapsed to one digest
	// count once per submitted entry.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Expired   int `json:"expired,omitempty"`
	// Retries counts transient-failure re-executions across the whole
	// service (the worker pool is shared, so retries are too).
	Retries uint64 `json:"retries,omitempty"`
	// ETASeconds extrapolates this sweep's remaining jobs from the
	// service-wide per-job completion rate (zero when idle or unknown).
	ETASeconds float64     `json:"eta_seconds,omitempty"`
	Jobs       []JobStatus `json:"jobs"`
}

// Terminal reports whether the sweep reached a terminal state. A
// just-cancelled (or just-expired) sweep is terminal even while its
// in-flight jobs wind down to their checkpoints.
func (s *SweepStatus) Terminal() bool {
	switch s.State {
	case SweepDone, SweepFailed, SweepCancelled, SweepExpired:
		return true
	}
	return false
}

// LeaseRequest is the POST /v1/work/lease body: a worker asking to pull
// one queued job under a TTL lease.
type LeaseRequest struct {
	Schema int `json:"schema,omitempty"`
	// Worker identifies the leaseholder (host:pid by convention); it keys
	// the fleet-size gauge and appears in lease telemetry.
	Worker string `json:"worker"`
	// TTLSeconds, when positive, requests a specific lease TTL; the server
	// clamps it to its configured bounds. Zero means the server default.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// LeaseGrant is the POST /v1/work/lease response when work is available
// (204 No Content otherwise): one job, its fencing token, and — when a
// prior leaseholder shipped one — the checkpoint to resume from.
type LeaseGrant struct {
	Schema  int            `json:"schema"`
	Digest  string         `json:"digest"`
	Request runner.Request `json:"request"`
	// Fence is the monotone fencing token for this grant. Every heartbeat
	// and commit must carry it; a smaller (stale) token is rejected.
	Fence uint64 `json:"fence"`
	// Attempt counts grants of this job, 1-based: attempt 2 means a prior
	// lease was lost (expired or released) and this grant is a re-issue.
	Attempt         int   `json:"attempt"`
	ExpiresUnixNano int64 `json:"expires_unix_nano"`
	// CkptEvery is the server's checkpoint cadence (simulation events
	// between captures); zero asks the worker not to checkpoint.
	CkptEvery uint64 `json:"ckpt_every,omitempty"`
	// Checkpoint, when present, is the job's latest shipped checkpoint
	// document; the worker resumes from it instead of event zero.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// HeartbeatRequest is the POST /v1/work/{digest}/heartbeat body: extend
// the lease, optionally shipping the job's latest checkpoint bytes, or —
// with Release — hand the job back (graceful drain).
type HeartbeatRequest struct {
	Schema int    `json:"schema,omitempty"`
	Worker string `json:"worker"`
	Fence  uint64 `json:"fence"`
	// Checkpoint, when present, is the job's latest checkpoint document;
	// the server keeps the newest shipped copy for re-grants.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	// Release hands the job back to the queue without committing: the
	// lease ends, the shipped checkpoint (if any) seeds the next grant.
	Release bool `json:"release,omitempty"`
}

// HeartbeatReply acknowledges a heartbeat.
type HeartbeatReply struct {
	Schema          int   `json:"schema"`
	ExpiresUnixNano int64 `json:"expires_unix_nano,omitempty"`
	// Yield tells the worker to stop executing this job and release it
	// (the job was cancelled or preempted server-side): checkpoint, then
	// heartbeat once more with Release.
	Yield bool `json:"yield,omitempty"`
	// Released confirms a Release heartbeat: the lease is over.
	Released bool `json:"released,omitempty"`
}

// CommitRequest is the POST /v1/work/{digest}/result body: the job's
// outcome under the lease's fencing token. Exactly one of Entry or Error
// is set. Entry is the canonical cache document (runner.EncodeEntry
// bytes), persisted verbatim so a remotely executed result is
// byte-identical to a local one.
type CommitRequest struct {
	Schema int             `json:"schema,omitempty"`
	Worker string          `json:"worker"`
	Fence  uint64          `json:"fence"`
	Entry  json.RawMessage `json:"entry,omitempty"`
	// Error reports a failed execution; ErrorKind distinguishes transient
	// causes the server's retry policy understands ("panicked", "stalled")
	// from permanent ones (empty).
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
}

// CommitReply acknowledges a commit. Duplicate marks a byte-identical
// re-commit of an already-committed result (accepted idempotently).
type CommitReply struct {
	Schema    int  `json:"schema"`
	Committed bool `json:"committed"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// WireError is the structured error every non-2xx response carries, under
// an {"error": ...} envelope. Kind is a stable machine-matchable cause:
// "schema", "unknown-workload", "unknown-policy", "bad-field",
// "not-found", "draining", "overloaded" or "bad-request"; Field and
// Value identify the offending request field on a validation failure.
type WireError struct {
	Message string `json:"message"`
	Kind    string `json:"kind,omitempty"`
	Field   string `json:"field,omitempty"`
	Value   string `json:"value,omitempty"`
}

// ErrorBody is the non-2xx response envelope.
type ErrorBody struct {
	Error WireError `json:"error"`
}

// Span aliases the telemetry job span served by /v1/jobs/{digest}/span.
type Span = telemetry.JobSpan
