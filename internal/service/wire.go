// Package service is the sweep control plane: a long-running HTTP/JSON
// front end over the runner that accepts whole sweeps, schedules them
// fairly against each other on one shared worker pool, serves results out
// of the content-addressed cache, and survives restarts.
//
// The wire API is deliberately thin. A request on the wire is exactly
// runner.Request — the same struct, the same stable lowercase JSON field
// names the canonical digest is computed over — so a served sweep, a CLI
// sweep and a warm cache are byte-identical and dedupe globally. The
// document is versioned by runner.WireSchema; the canonical digest is
// versioned separately by runner.ConfigSchema.
//
// Routes (all under /v1):
//
//	POST   /v1/sweeps             submit a batch of requests → sweep id + per-job digests
//	GET    /v1/sweeps/{id}        sweep status: per-job states, counts, ETA
//	DELETE /v1/sweeps/{id}        cancel the sweep (idempotent)
//	GET    /v1/jobs/{digest}      the raw cache document for a finished job
//	GET    /v1/jobs/{digest}/span the job's trace span, while retained
//
// The telemetry endpoints (/metrics, /progress, /jobs) mount on the same
// listener via telemetry.Mount.
package service

import (
	"dynamo/internal/runner"
	"dynamo/internal/telemetry"
)

// APIVersion prefixes every control-plane route.
const APIVersion = "v1"

// Job states, as reported in JobStatus.State. "queued" and "running" are
// transient; the rest are terminal.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
	JobExpired   = "expired"
)

// Sweep states, as reported in SweepStatus.State.
const (
	SweepQueued    = "queued"
	SweepRunning   = "running"
	SweepDone      = "done"
	SweepFailed    = "failed"
	SweepCancelled = "cancelled"
	SweepExpired   = "expired"
)

// SubmitRequest is the POST /v1/sweeps body: one sweep as a batch of wire
// requests. Schema is runner.WireSchema (zero is accepted and means "the
// current one"); each request may additionally carry its own schema field.
type SubmitRequest struct {
	Schema   int              `json:"schema,omitempty"`
	Requests []runner.Request `json:"requests"`
	// DeadlineSeconds, when positive, bounds the sweep's wall-clock: once
	// it elapses, still-queued jobs expire and in-flight ones are
	// interrupted at their next checkpoint boundary. Zero means no
	// deadline; negative or non-finite values are rejected ("bad-field").
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
}

// JobStatus is one job's standing inside a sweep. Digest is the request's
// canonical content digest — the key for GET /v1/jobs/{digest} once the
// job is done.
type JobStatus struct {
	Digest  string         `json:"digest"`
	Request runner.Request `json:"request"`
	State   string         `json:"state"`
	// Cached marks a job answered by the persistent store rather than
	// simulated for this sweep.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// SweepStatus is a point-in-time snapshot of one sweep: the response body
// of POST /v1/sweeps, GET /v1/sweeps/{id} and DELETE /v1/sweeps/{id}.
type SweepStatus struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	State  string `json:"state"`
	// Per-job counts over Jobs. Requests that collapsed to one digest
	// count once per submitted entry.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Expired   int `json:"expired,omitempty"`
	// Retries counts transient-failure re-executions across the whole
	// service (the worker pool is shared, so retries are too).
	Retries uint64 `json:"retries,omitempty"`
	// ETASeconds extrapolates this sweep's remaining jobs from the
	// service-wide per-job completion rate (zero when idle or unknown).
	ETASeconds float64     `json:"eta_seconds,omitempty"`
	Jobs       []JobStatus `json:"jobs"`
}

// Terminal reports whether the sweep reached a terminal state. A
// just-cancelled (or just-expired) sweep is terminal even while its
// in-flight jobs wind down to their checkpoints.
func (s *SweepStatus) Terminal() bool {
	switch s.State {
	case SweepDone, SweepFailed, SweepCancelled, SweepExpired:
		return true
	}
	return false
}

// WireError is the structured error every non-2xx response carries, under
// an {"error": ...} envelope. Kind is a stable machine-matchable cause:
// "schema", "unknown-workload", "unknown-policy", "bad-field",
// "not-found", "draining", "overloaded" or "bad-request"; Field and
// Value identify the offending request field on a validation failure.
type WireError struct {
	Message string `json:"message"`
	Kind    string `json:"kind,omitempty"`
	Field   string `json:"field,omitempty"`
	Value   string `json:"value,omitempty"`
}

// ErrorBody is the non-2xx response envelope.
type ErrorBody struct {
	Error WireError `json:"error"`
}

// Span aliases the telemetry job span served by /v1/jobs/{digest}/span.
type Span = telemetry.JobSpan
