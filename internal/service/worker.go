package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"dynamo/internal/checkpoint"
	"dynamo/internal/machine"
	"dynamo/internal/runner"
)

// WorkerOptions configures a fleet Worker.
type WorkerOptions struct {
	// Addr is the sweep server ("host:port", scheme optional). Required.
	Addr string
	// ID names this worker in leases and telemetry (default "host:pid").
	ID string
	// Slots bounds jobs executing concurrently in this process (default 1).
	Slots int
	// TTL is the lease TTL to request; zero takes the server default.
	TTL time.Duration
	// Heartbeat is the lease-renewal cadence; zero derives a third of the
	// granted TTL, so two beats can be lost before the lease expires.
	Heartbeat time.Duration
	// Poll is the idle backoff between lease attempts when the queue is
	// empty (default 250ms, jittered so a fleet does not poll in phase).
	Poll time.Duration
	// Retries, Backoff, MaxBackoff tune the client's jittered exponential
	// backoff (see Client); zero keeps Dial's defaults.
	Retries    int
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Execute replaces local simulation — the test seam for slow, failing
	// or zombie jobs. The default runs runner.ExecuteLocal with panics
	// recovered into ErrJobPanicked.
	Execute func(runner.Request, runner.ExecOptions) (*runner.Outcome, error)
	// Transport, when non-nil, replaces the HTTP transport — the seam
	// faultio.WrapTransport plugs into so lease/heartbeat/commit loss is
	// injectable.
	Transport http.RoundTripper
	// Log, when non-nil, receives one line per lease/commit/release event.
	Log io.Writer
}

// WorkerStats counts what a worker did.
type WorkerStats struct {
	// Leases counts grants received; Resumed of those, grants carrying a
	// checkpoint the execution restored from.
	Leases  uint64
	Resumed uint64
	// Executed counts executions run to a natural end (success or
	// failure); Committed of those, commits the server accepted, with
	// Duplicates the byte-identical re-sends acknowledged idempotently.
	Executed   uint64
	Committed  uint64
	Duplicates uint64
	// Failed counts error commits (the job itself failed); Fenced counts
	// commits the server rejected as stale; Abandoned counts jobs dropped
	// because the lease was lost mid-run; Released counts jobs handed
	// back gracefully (drain or server-requested yield).
	Failed    uint64
	Fenced    uint64
	Abandoned uint64
	Released  uint64
}

// Worker is one fleet process: it pulls jobs from a sweep server under
// TTL leases, executes them locally, heartbeats (shipping checkpoints)
// while they run, and commits results under the lease's fencing token.
// SIGTERM-style drain is cooperative: Drain interrupts in-flight jobs at
// their next checkpoint boundary, ships the final checkpoint, releases
// the leases, and returns — finish-or-checkpoint, never abandon-silently.
type Worker struct {
	opts WorkerOptions
	c    *Client
	id   string

	stop     chan struct{} // closed by Drain: stop leasing, wind down jobs
	stopOnce sync.Once
	cancel   context.CancelFunc // aborts idle lease polls on Drain
	leaseCtx context.Context
	wg       sync.WaitGroup

	mu      sync.Mutex
	started bool
	stats   WorkerStats
}

// NewWorker builds a worker (not yet running — call Start).
func NewWorker(o WorkerOptions) *Worker {
	if o.Slots <= 0 {
		o.Slots = 1
	}
	if o.Poll <= 0 {
		o.Poll = 250 * time.Millisecond
	}
	if o.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		o.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	c := Dial(o.Addr)
	if o.Retries > 0 {
		c.Retries = o.Retries
	}
	if o.Backoff > 0 {
		c.Backoff = o.Backoff
	}
	if o.MaxBackoff > 0 {
		c.MaxBackoff = o.MaxBackoff
	}
	if o.Transport != nil {
		c.HTTP = &http.Client{Transport: o.Transport}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{opts: o, c: c, id: o.ID, stop: make(chan struct{}), leaseCtx: ctx, cancel: cancel}
}

// ID returns the worker's lease identity.
func (w *Worker) ID() string { return w.id }

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Start launches the worker's slot loops. Idempotent.
func (w *Worker) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return
	}
	w.started = true
	for i := 0; i < w.opts.Slots; i++ {
		w.wg.Add(1)
		go w.slot()
	}
}

// Drain stops leasing new work, interrupts in-flight jobs at their next
// checkpoint boundary (shipping the final checkpoint and releasing each
// lease), and waits for every slot to wind down. Idempotent.
func (w *Worker) Drain() {
	w.stopOnce.Do(func() {
		close(w.stop)
		w.cancel()
	})
	w.wg.Wait()
}

// slot is one lease→execute→commit loop.
func (w *Worker) slot() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		g, err := w.c.Lease(w.leaseCtx, w.id, w.opts.TTL)
		if err != nil {
			if w.leaseCtx.Err() != nil {
				return
			}
			// Server restarting, draining, or not in workers mode yet:
			// keep polling — the fleet outlives server incarnations.
			w.logf("lease: %v", err)
			if !w.sleep(w.idleDelay()) {
				return
			}
			continue
		}
		if g == nil {
			if !w.sleep(w.idleDelay()) {
				return
			}
			continue
		}
		w.count(func(s *WorkerStats) { s.Leases++ })
		w.work(g)
	}
}

// idleDelay jitters the idle poll into [Poll/2, Poll] so a fleet of idle
// workers does not hit the server in phase.
func (w *Worker) idleDelay() time.Duration {
	p := w.opts.Poll
	return p/2 + time.Duration(rand.Int63n(int64(p/2)+1))
}

// sleep pauses for d, returning false early when the worker is draining.
func (w *Worker) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.stop:
		return false
	}
}

// callCtx bounds a wind-down call (commit, release) that must still work
// while the worker drains.
func callCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 15*time.Second)
}

// work executes one granted job under its lease.
func (w *Worker) work(g *LeaseGrant) {
	digest := g.Digest
	w.logf("leased %s (fence %d, attempt %d)", short(digest), g.Fence, g.Attempt)

	// The grant's checkpoint resumes the job where the last leaseholder
	// left it; an unusable document just restarts from event zero.
	var resume *checkpoint.Checkpoint
	if len(g.Checkpoint) > 0 {
		if ck, err := checkpoint.Read(bytes.NewReader(g.Checkpoint)); err == nil && ck.Compatible(digest) == nil {
			resume = ck
			w.count(func(s *WorkerStats) { s.Resumed++ })
			w.logf("resuming %s from event %d", short(digest), ck.Event)
		}
	}

	// latest is the newest unshipped checkpoint; the heartbeat loop ships
	// it. yielded/lost record why the job was abandoned, set before the
	// abandon channel closes.
	var (
		jmu    sync.Mutex
		latest []byte
		lost   bool
	)
	abandon := make(chan struct{})
	var abandonOnce sync.Once
	giveUp := func(why func()) {
		abandonOnce.Do(func() {
			jmu.Lock()
			why()
			jmu.Unlock()
			close(abandon)
		})
	}

	// intr interrupts the local execution when the worker drains or the
	// lease is lost/yielded; the goroutine exits quietly when the job
	// finishes first.
	jobDone := make(chan struct{})
	intr := make(chan struct{})
	go func() {
		select {
		case <-w.stop:
		case <-abandon:
		case <-jobDone:
			return
		}
		close(intr)
	}()

	// Heartbeat loop: renew the lease and ship checkpoints until the job
	// winds down. Losing the lease (410/409) abandons the job; a Yield
	// reply winds it down gracefully (checkpoint, then release below).
	interval := w.opts.Heartbeat
	if interval <= 0 {
		interval = time.Until(time.Unix(0, g.ExpiresUnixNano)) / 3
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
			}
			jmu.Lock()
			ck := latest
			latest = nil
			jmu.Unlock()
			ctx, cancel := callCtx()
			hb, err := w.c.Heartbeat(ctx, digest, w.id, g.Fence, ck, false)
			cancel()
			if err != nil {
				if errors.Is(err, ErrLeaseExpired) || errors.Is(err, ErrStaleCommit) {
					w.logf("lease on %s lost: %v", short(digest), err)
					giveUp(func() { lost = true })
					return
				}
				// Transport flake: requeue the unshipped checkpoint (unless
				// a newer one landed meanwhile) and keep beating.
				jmu.Lock()
				if latest == nil {
					latest = ck
				}
				jmu.Unlock()
				continue
			}
			if hb.Yield {
				// Cancelled or preempted server-side: wind down — the
				// execution interrupts, then the final checkpoint ships
				// with a Release heartbeat below.
				w.logf("server asked %s to yield", short(digest))
				giveUp(func() {})
				return
			}
		}
	}()

	// Execute locally. Checkpoints flow into latest for the heartbeat
	// loop; CkptEvery comes from the grant so the server's cadence policy
	// holds fleet-wide.
	x := runner.ExecOptions{Resume: resume, Interrupt: intr}
	if g.CkptEvery > 0 {
		x.CkptEvery = g.CkptEvery
		x.Sink = func(ck *checkpoint.Checkpoint) {
			data, err := json.Marshal(ck)
			if err != nil {
				return
			}
			jmu.Lock()
			latest = append(data, '\n')
			jmu.Unlock()
		}
	}
	exec := w.opts.Execute
	if exec == nil {
		exec = localExec
	}
	start := time.Now()
	out, err := runSafe(exec, g.Request, x)
	elapsed := time.Since(start)
	close(jobDone)
	close(hbStop)
	<-hbDone

	switch {
	case err == nil:
		w.count(func(s *WorkerStats) { s.Executed++ })
		w.commit(g, out, elapsed)
	case errors.Is(err, machine.ErrInterrupted):
		jmu.Lock()
		wasLost, ck := lost, latest
		latest = nil
		jmu.Unlock()
		if wasLost {
			// Someone else owns the job now; nothing to hand back.
			w.count(func(s *WorkerStats) { s.Abandoned++ })
			return
		}
		// Drain or server-requested yield: ship the final checkpoint and
		// release, so the next leaseholder resumes instead of restarting.
		ctx, cancel := callCtx()
		_, rerr := w.c.Heartbeat(ctx, digest, w.id, g.Fence, ck, true)
		cancel()
		if rerr != nil {
			w.logf("release of %s failed: %v", short(digest), rerr)
			w.count(func(s *WorkerStats) { s.Abandoned++ })
			return
		}
		w.count(func(s *WorkerStats) { s.Released++ })
		w.logf("released %s", short(digest))
	default:
		// The job itself failed: commit the error (with its transient
		// kind) so the server's retry/quarantine policy applies.
		w.count(func(s *WorkerStats) { s.Executed++; s.Failed++ })
		ctx, cancel := callCtx()
		_, cerr := w.c.Commit(ctx, digest, w.id, g.Fence, nil, err.Error(), errorKind(err))
		cancel()
		if cerr != nil {
			w.logf("error commit for %s rejected: %v", short(digest), cerr)
			if errors.Is(cerr, ErrStaleCommit) || errors.Is(cerr, ErrLeaseExpired) {
				w.count(func(s *WorkerStats) { s.Fenced++ })
			}
		}
		w.logf("failed %s: %v", short(digest), err)
	}
}

// commit encodes and commits a successful outcome under the lease's
// fencing token.
func (w *Worker) commit(g *LeaseGrant, out *runner.Outcome, elapsed time.Duration) {
	digest := g.Digest
	entry, err := runner.EncodeEntry(g.Request, out, elapsed)
	if err != nil {
		ctx, cancel := callCtx()
		w.c.Commit(ctx, digest, w.id, g.Fence, nil, err.Error(), "")
		cancel()
		w.count(func(s *WorkerStats) { s.Failed++ })
		return
	}
	ctx, cancel := callCtx()
	cr, cerr := w.c.Commit(ctx, digest, w.id, g.Fence, entry, "", "")
	cancel()
	switch {
	case cerr == nil:
		w.count(func(s *WorkerStats) {
			s.Committed++
			if cr.Duplicate {
				s.Duplicates++
			}
		})
		w.logf("committed %s (%s)", short(digest), elapsed.Round(time.Millisecond))
	case errors.Is(cerr, ErrStaleCommit), errors.Is(cerr, ErrLeaseExpired):
		// The lease moved on while we executed: the result is fenced —
		// at-most-once means the new leaseholder's commit wins, and
		// determinism means nothing of value was lost.
		w.count(func(s *WorkerStats) { s.Fenced++ })
		w.logf("commit of %s fenced: %v", short(digest), cerr)
	default:
		w.count(func(s *WorkerStats) { s.Abandoned++ })
		w.logf("commit of %s failed: %v", short(digest), cerr)
	}
}

func (w *Worker) count(f func(*WorkerStats)) {
	w.mu.Lock()
	f(&w.stats)
	w.mu.Unlock()
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Log == nil {
		return
	}
	fmt.Fprintf(w.opts.Log, "  [%s] "+format+"\n", append([]any{w.id}, args...)...)
}

// localExec is the default execution seam: plain local simulation.
func localExec(q runner.Request, x runner.ExecOptions) (*runner.Outcome, error) {
	return runner.ExecuteLocal(q, x)
}

// runSafe guards the execution seam (local or injected), mirroring the
// runner's safeExecute: a panic anywhere in the job commits as a
// transient ErrJobPanicked failure — the server retries or quarantines —
// instead of killing the worker slot.
func runSafe(exec func(runner.Request, runner.ExecOptions) (*runner.Outcome, error), q runner.Request, x runner.ExecOptions) (out *runner.Outcome, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			out, err = nil, fmt.Errorf("%w: %v", runner.ErrJobPanicked, rec)
		}
	}()
	return exec(q, x)
}
