package service

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"dynamo/internal/checkpoint"
	"dynamo/internal/faultio"
	"dynamo/internal/machine"
	"dynamo/internal/runner"
	"dynamo/internal/telemetry"
)

// ErrLeaseExpired rejects a work call whose lease no longer exists: the
// TTL lapsed (the expiry scanner revoked it), the job was withdrawn, or
// the digest was never leased to begin with. HTTP 410 on the wire, kind
// "lease-expired". The worker's move is to abandon the job — a new
// leaseholder owns it now.
var ErrLeaseExpired = errors.New("service: lease expired")

// ErrStaleCommit rejects a commit bearing a fencing token that is not the
// job's live lease: the result arrived after the lease was revoked and
// the job re-granted (or already committed by someone else). HTTP 409 on
// the wire, kind "stale-commit". Byte-identical duplicates of the
// committed entry are the one exception — those are acknowledged
// idempotently, never fenced.
var ErrStaleCommit = errors.New("service: stale commit fenced")

// ErrNoWorkers rejects work-API calls on a service running without
// Options.Workers: there is no lease table to talk to.
var ErrNoWorkers = errors.New("service: worker dispatch disabled")

// workItem states.
const (
	workPending = iota // queued, waiting for a worker to lease it
	workLeased         // held by a worker under a live TTL lease
	workDone           // finished (committed, failed, or withdrawn)
)

// workItem is one job flowing through the lease table. Exactly one live
// item exists per digest (the runner dedupes submissions); a finished
// item stays registered so late duplicate commits can be told apart from
// divergent ones.
type workItem struct {
	digest string
	req    runner.Request
	state  int
	// fence is the monotone fencing token of the item's latest grant.
	// Heartbeats and commits must present it; after a revocation the next
	// grant draws a strictly larger token, fencing the old holder out.
	fence   uint64
	worker  string
	ttl     time.Duration
	expires time.Time
	attempt int
	// withdrawn marks an item whose dispatcher gave up on it (sweep
	// cancelled, job preempted, service draining): a leased holder learns
	// via the Yield bit on its next heartbeat and releases.
	withdrawn bool
	// ckpt is the latest shipped checkpoint document; it seeds the next
	// grant so a revoked job resumes instead of restarting.
	ckpt []byte
	// committed + entryHash identify the accepted result's exact bytes,
	// the basis of idempotent duplicate detection.
	committed bool
	entryHash [sha256.Size]byte

	out  *runner.Outcome
	err  error
	done chan struct{}
}

// leaseTableOptions configures a leaseTable.
type leaseTableOptions struct {
	Dir       string // the service's cache directory (entries, checkpoints)
	FS        faultio.FS
	Telemetry *telemetry.Sweep
	Log       io.Writer
	TTL       time.Duration // default lease TTL
	CkptEvery uint64        // checkpoint cadence advertised to workers
}

// leaseTable is the work-distribution core behind the /v1/work routes:
// jobs the runner's pool would have executed in-process park here instead,
// workers pull them under TTL leases, and the expiry scanner treats a
// missed heartbeat as worker death — the lease is revoked, the job
// requeued to resume from its last shipped checkpoint, and any later
// commit bearing the stale fencing token rejected. Commits are
// at-most-once per digest: idempotent for byte-identical duplicates, a
// structured ErrStaleCommit otherwise.
type leaseTable struct {
	opts leaseTableOptions
	fs   faultio.FS
	tel  *telemetry.Sweep

	mu      sync.Mutex
	items   map[string]*workItem
	queue   []string // pending digests, FIFO; revoked jobs requeue at the front
	fence   uint64   // global monotone fencing-token source
	workers map[string]int
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// scanTick is the expiry scanner's cadence: a revoked lease is detected
// at most one tick after its TTL lapses.
const scanTick = 25 * time.Millisecond

func newLeaseTable(o leaseTableOptions) *leaseTable {
	if o.TTL <= 0 {
		o.TTL = 10 * time.Second
	}
	fs := o.FS
	if fs == nil {
		fs = faultio.OS{}
	}
	t := &leaseTable{
		opts:    o,
		fs:      fs,
		tel:     o.Telemetry,
		items:   make(map[string]*workItem),
		workers: make(map[string]int),
		stop:    make(chan struct{}),
	}
	t.wg.Add(1)
	go t.scan()
	return t
}

// execute is the runner.Options.ExecuteInterruptible seam: it parks one
// deduped job in the lease table and blocks until a worker commits it (or
// the job is withdrawn). The runner keeps its pool, retry, telemetry and
// stats semantics — only the simulation itself moves off-process.
func (t *leaseTable) execute(q runner.Request, interrupt <-chan struct{}) (*runner.Outcome, error) {
	digest := q.Digest()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("service: worker dispatch stopped: %w", machine.ErrInterrupted)
	}
	it := &workItem{digest: digest, req: q, state: workPending, done: make(chan struct{})}
	// A checkpoint persisted by an earlier leaseholder (or before a server
	// restart) seeds the first grant, so the job resumes instead of
	// restarting from event zero.
	it.ckpt = t.loadCkptLocked(digest)
	t.items[digest] = it
	t.queue = append(t.queue, digest)
	t.mu.Unlock()

	select {
	case <-it.done:
	case <-interrupt:
		// Cancelled or preempted. A pending item is withdrawn outright; a
		// leased one winds down through its holder — told to yield on its
		// next heartbeat, finish-or-checkpoint, then release — or through
		// lease expiry if the holder is already dead. A commit that races
		// the withdrawal wins: a finished result is never thrown away.
		t.withdraw(it)
		<-it.done
	}
	t.mu.Lock()
	out, err := it.out, it.err
	t.mu.Unlock()
	return out, err
}

// withdraw takes an item back from the fleet (see execute).
func (t *leaseTable) withdraw(it *workItem) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch it.state {
	case workPending:
		t.unqueueLocked(it.digest)
		t.finishLocked(it, nil, fmt.Errorf("service: job withdrawn: %w", machine.ErrInterrupted))
	case workLeased:
		it.withdrawn = true
	}
}

// lease grants the oldest pending job to worker under a TTL lease,
// returning nil when the queue is empty (204 on the wire).
func (t *leaseTable) lease(worker string, ttl time.Duration) (*LeaseGrant, error) {
	if worker == "" {
		return nil, &runner.FieldError{
			Field: "worker",
			Err:   fmt.Errorf("%w: a worker id is required", runner.ErrBadField),
		}
	}
	switch {
	case ttl <= 0:
		ttl = t.opts.TTL
	case ttl < 2*scanTick:
		ttl = 2 * scanTick
	case ttl > 10*time.Minute:
		ttl = 10 * time.Minute
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrDraining
	}
	now := time.Now()
	for len(t.queue) > 0 {
		digest := t.queue[0]
		t.queue = t.queue[1:]
		it := t.items[digest]
		if it == nil || it.state != workPending {
			continue
		}
		t.fence++
		it.state = workLeased
		it.fence = t.fence
		it.worker = worker
		it.ttl = ttl
		it.expires = now.Add(ttl)
		it.attempt++
		t.workers[worker]++
		t.tel.SetFleetWorkers(int64(len(t.workers)))
		t.tel.LeaseGranted()
		t.logf("leased %s to %s (fence %d, attempt %d)", short(digest), worker, it.fence, it.attempt)
		g := &LeaseGrant{
			Schema:          runner.WireSchema,
			Digest:          digest,
			Request:         it.req,
			Fence:           it.fence,
			Attempt:         it.attempt,
			ExpiresUnixNano: it.expires.UnixNano(),
			CkptEvery:       t.opts.CkptEvery,
		}
		if len(it.ckpt) > 0 {
			g.Checkpoint = append([]byte(nil), it.ckpt...)
		}
		return g, nil
	}
	return nil, nil
}

// heartbeat extends a live lease, stores (and persists) a shipped
// checkpoint, and — with release — hands the job back to the queue.
func (t *leaseTable) heartbeat(digest, worker string, fence uint64, ckpt []byte, release bool) (*HeartbeatReply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	it := t.items[digest]
	if it == nil || it.state != workLeased || it.fence != fence || it.worker != worker {
		return nil, fmt.Errorf("%w: no live lease on %s under fence %d for %s",
			ErrLeaseExpired, short(digest), fence, worker)
	}
	if len(ckpt) > 0 {
		ck, err := checkpoint.Read(bytes.NewReader(ckpt))
		if err == nil {
			err = ck.Compatible(digest)
		}
		if err != nil {
			return nil, &runner.FieldError{
				Field: "checkpoint",
				Err:   fmt.Errorf("%w: %v", runner.ErrBadField, err),
			}
		}
		it.ckpt = append([]byte(nil), ckpt...)
		t.persistCkptLocked(digest, it.ckpt)
		t.tel.WorkCheckpointShipped()
	}
	if release {
		t.endLeaseLocked(it)
		t.tel.LeaseReleased()
		if it.withdrawn {
			t.finishLocked(it, nil, fmt.Errorf("service: job withdrawn: %w", machine.ErrInterrupted))
		} else {
			// Back to the front of the queue: the next grant resumes from
			// the shipped checkpoint before fresh work starts cold.
			it.state = workPending
			it.worker = ""
			t.queue = append([]string{digest}, t.queue...)
			t.logf("released %s (fence %d)", short(digest), fence)
		}
		return &HeartbeatReply{Schema: runner.WireSchema, Released: true}, nil
	}
	it.expires = time.Now().Add(it.ttl)
	return &HeartbeatReply{
		Schema:          runner.WireSchema,
		ExpiresUnixNano: it.expires.UnixNano(),
		Yield:           it.withdrawn,
	}, nil
}

// commit settles one job under its fencing token — at-most-once per
// digest. A byte-identical duplicate of the committed entry is
// acknowledged idempotently; any other stale commit is fenced with
// ErrStaleCommit and counted.
func (t *leaseTable) commit(digest, worker string, fence uint64, entry []byte, errMsg, errKind string) (*CommitReply, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	it := t.items[digest]
	if it == nil {
		return nil, fmt.Errorf("%w: no work item for %s", ErrLeaseExpired, short(digest))
	}
	if it.state == workDone {
		if it.committed && len(entry) > 0 && sha256.Sum256(entry) == it.entryHash {
			t.tel.WorkCommitDuplicate()
			return &CommitReply{Schema: runner.WireSchema, Committed: true, Duplicate: true}, nil
		}
		t.tel.WorkCommitFenced()
		return nil, fmt.Errorf("%w: job %s already settled (fence %d)", ErrStaleCommit, short(digest), it.fence)
	}
	if it.state != workLeased || it.fence != fence {
		t.tel.WorkCommitFenced()
		return nil, fmt.Errorf("%w: fence %d is not the live lease on %s", ErrStaleCommit, fence, short(digest))
	}
	if errMsg != "" {
		t.endLeaseLocked(it)
		t.tel.LeaseCommitted()
		t.tel.WorkCommitFailed()
		t.finishLocked(it, nil, commitError(errMsg, errKind))
		t.logf("job %s failed on %s: %s", short(digest), worker, errMsg)
		return &CommitReply{Schema: runner.WireSchema, Committed: true}, nil
	}
	out, _, derr := runner.DecodeEntry(entry)
	if derr != nil {
		// A malformed entry is the caller's bug, not a fencing event: the
		// lease stays live so a corrected commit can still land.
		return nil, &runner.FieldError{
			Field: "entry",
			Err:   fmt.Errorf("%w: %v", runner.ErrBadField, derr),
		}
	}
	// The entry persists verbatim — the same bytes a local sweep would
	// have written — so remote and local caches stay interchangeable.
	out.Cached = false
	t.persistEntryLocked(digest, entry)
	it.committed = true
	it.entryHash = sha256.Sum256(entry)
	it.ckpt = nil
	t.endLeaseLocked(it)
	t.tel.LeaseCommitted()
	t.tel.WorkCommitOK()
	t.finishLocked(it, out, nil)
	t.logf("committed %s from %s (fence %d)", short(digest), worker, fence)
	return &CommitReply{Schema: runner.WireSchema, Committed: true}, nil
}

// expireLeases revokes every lease whose TTL lapsed: the holder is
// presumed dead, the job requeues (front) to resume from its last shipped
// checkpoint, and the old fence can never commit again.
func (t *leaseTable) expireLeases(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	for digest, it := range t.items {
		if it.state != workLeased || now.Before(it.expires) {
			continue
		}
		t.endLeaseLocked(it)
		t.tel.LeaseExpired()
		t.logf("lease on %s expired (worker %s, fence %d)", short(digest), it.worker, it.fence)
		if it.withdrawn {
			t.finishLocked(it, nil, fmt.Errorf("service: job withdrawn: %w", machine.ErrInterrupted))
			continue
		}
		it.state = workPending
		it.worker = ""
		t.queue = append([]string{digest}, t.queue...)
	}
}

// scan is the expiry scanner goroutine.
func (t *leaseTable) scan() {
	defer t.wg.Done()
	ticker := time.NewTicker(scanTick)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case now := <-ticker.C:
			t.expireLeases(now)
		}
	}
}

// close stops dispatch: every unfinished item — pending or leased —
// finishes with machine.ErrInterrupted so blocked execute calls return,
// and the gauges drain to zero. Late worker calls get ErrLeaseExpired.
func (t *leaseTable) close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.wg.Wait()
		return
	}
	t.closed = true
	close(t.stop)
	for _, it := range t.items {
		switch it.state {
		case workLeased:
			t.endLeaseLocked(it)
			t.tel.LeaseRevoked()
			t.finishLocked(it, nil, fmt.Errorf("service: dispatch stopped: %w", machine.ErrInterrupted))
		case workPending:
			t.finishLocked(it, nil, fmt.Errorf("service: dispatch stopped: %w", machine.ErrInterrupted))
		}
	}
	t.queue = nil
	t.workers = make(map[string]int)
	t.tel.SetFleetWorkers(0)
	t.mu.Unlock()
	t.wg.Wait()
}

// finishLocked settles an item and wakes its execute call (mu held).
func (t *leaseTable) finishLocked(it *workItem, out *runner.Outcome, err error) {
	it.state = workDone
	it.out, it.err = out, err
	close(it.done)
}

// endLeaseLocked retires a lease's worker accounting (mu held). Exactly
// one lease-end event (expired/released/revoked/committed) follows each
// grant, keeping the dynamo_work_leases gauge balanced.
func (t *leaseTable) endLeaseLocked(it *workItem) {
	if n := t.workers[it.worker]; n > 1 {
		t.workers[it.worker] = n - 1
	} else {
		delete(t.workers, it.worker)
	}
	t.tel.SetFleetWorkers(int64(len(t.workers)))
}

// unqueueLocked drops a digest from the pending queue (mu held).
func (t *leaseTable) unqueueLocked(digest string) {
	for i, d := range t.queue {
		if d == digest {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			return
		}
	}
}

// commitError rebuilds a worker-reported failure, preserving the error
// kinds the runner's transient-retry policy matches on: a panicked or
// stalled remote run retries (then quarantines) exactly like a local one.
func commitError(msg, kind string) error {
	switch kind {
	case "panicked":
		return fmt.Errorf("%w: %s", runner.ErrJobPanicked, msg)
	case "stalled":
		return fmt.Errorf("%w: %s", machine.ErrStalled, msg)
	}
	return errors.New(msg)
}

// errorKind renders a job failure's transient cause for the wire — the
// inverse of commitError.
func errorKind(err error) string {
	switch {
	case errors.Is(err, runner.ErrJobPanicked):
		return "panicked"
	case errors.Is(err, machine.ErrStalled):
		return "stalled"
	}
	return ""
}

// ckptPath is the same path convention the runner's local checkpointing
// uses, so fleet-shipped and locally captured checkpoints are
// interchangeable across restarts and mode switches.
func (t *leaseTable) ckptPath(digest string) string {
	return filepath.Join(t.opts.Dir, digest+".ckpt.json")
}

// persistCkptLocked best-effort persists a shipped checkpoint (mu held):
// a write failure degrades resume granularity, never the job.
func (t *leaseTable) persistCkptLocked(digest string, data []byte) {
	if err := t.fs.WriteFileAtomic(t.opts.Dir, t.ckptPath(digest), data); err != nil {
		t.logf("checkpoint for %s not persisted: %v", short(digest), err)
	}
}

// loadCkptLocked returns a persisted checkpoint's raw document when it
// verifies for this digest; unusable files are evicted (mu held).
func (t *leaseTable) loadCkptLocked(digest string) []byte {
	data, err := t.fs.ReadFile(t.ckptPath(digest))
	if err != nil {
		return nil
	}
	ck, err := checkpoint.Read(bytes.NewReader(data))
	if err == nil {
		err = ck.Compatible(digest)
	}
	if err != nil {
		t.fs.Remove(t.ckptPath(digest))
		return nil
	}
	return data
}

// persistEntryLocked writes a committed entry verbatim and clears the
// job's checkpoint and any quarantine marker (mu held). A write failure
// degrades the cache, not the commit: the in-memory outcome still
// completes the job, and the runner's own save heals the file.
func (t *leaseTable) persistEntryLocked(digest string, entry []byte) {
	if err := t.fs.WriteFileAtomic(t.opts.Dir, filepath.Join(t.opts.Dir, digest+".json"), entry); err != nil {
		t.logf("result for %s not persisted: %v", short(digest), err)
	}
	t.fs.Remove(t.ckptPath(digest))
	t.fs.Remove(filepath.Join(t.opts.Dir, digest+".failed.json"))
}

func (t *leaseTable) logf(format string, args ...any) {
	if t.opts.Log == nil {
		return
	}
	fmt.Fprintf(t.opts.Log, "  "+format+"\n", args...)
}

// short abbreviates a digest for log lines.
func short(digest string) string {
	if len(digest) > 12 {
		return digest[:12]
	}
	return digest
}
