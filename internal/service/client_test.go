package service

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dynamo/internal/machine"
)

// TestClientBackoffSchedule pins Client.delay's contract: the base delay
// doubles per retry from Backoff, caps at MaxBackoff, and each draw lands
// in [base/2, base]. The jitter seam makes the schedule reproducible —
// the same seed yields the same delays.
func TestClientBackoffSchedule(t *testing.T) {
	c := Dial("127.0.0.1:1")
	c.Backoff = 100 * time.Millisecond
	c.MaxBackoff = 2 * time.Second
	c.jitter = rand.New(rand.NewSource(42)).Int63n

	bases := []time.Duration{
		100 * time.Millisecond, // attempt 0
		200 * time.Millisecond, // doubled
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped at MaxBackoff
		2 * time.Second, // and stays capped
	}
	var first []time.Duration
	for attempt, base := range bases {
		d := c.delay(attempt)
		if d < base/2 || d > base {
			t.Errorf("delay(%d) = %v, want within [%v, %v]", attempt, d, base/2, base)
		}
		first = append(first, d)
	}

	// Same seed, same schedule: the randomness is the seam's, not the
	// wall clock's.
	c.jitter = rand.New(rand.NewSource(42)).Int63n
	for attempt := range bases {
		if d := c.delay(attempt); d != first[attempt] {
			t.Errorf("reseeded delay(%d) = %v, want %v", attempt, d, first[attempt])
		}
	}

	// Zero-value clients fall back to the documented defaults.
	var z Client
	if d := z.delay(0); d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("zero-value delay(0) = %v, want within [50ms, 100ms]", d)
	}
	if d := z.delay(20); d < time.Second || d > 2*time.Second {
		t.Errorf("zero-value delay(20) = %v, want within [1s, 2s] (capped)", d)
	}
}

// TestExecuteContextCancellation: cancelling the context aborts the
// remote wait promptly — mid-poll, not at the job's natural end — and an
// already-dead context never starts the call at all.
func TestExecuteContextCancellation(t *testing.T) {
	_, _, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.ExecuteContext(ctx, longReq()) // far longer than 30ms locally
	if err == nil {
		t.Fatal("cancelled ExecuteContext succeeded")
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("cancelled ExecuteContext returned after %v, want prompt", waited)
	}

	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.ExecuteContext(dead, counterReq(441)); err == nil {
		t.Fatal("pre-cancelled ExecuteContext succeeded")
	}
}

// TestExecuteInterruptible: the runner-facing seam reports an interrupt
// as an error wrapping machine.ErrInterrupted — what the runner's
// cancellation and preemption classification keys on — both when the
// interrupt fires mid-wait and when it was already closed.
func TestExecuteInterruptible(t *testing.T) {
	_, _, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1})

	interrupt := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(interrupt)
	}()
	if _, err := c.ExecuteInterruptible(longReq(), interrupt); !errors.Is(err, machine.ErrInterrupted) {
		t.Errorf("interrupted execute err = %v, want ErrInterrupted", err)
	}

	closed := make(chan struct{})
	close(closed)
	if _, err := c.ExecuteInterruptible(counterReq(442), closed); !errors.Is(err, machine.ErrInterrupted) {
		t.Errorf("pre-interrupted execute err = %v, want ErrInterrupted", err)
	}

	// A nil interrupt channel degrades to plain Execute.
	out, err := c.ExecuteInterruptible(counterReq(443), nil)
	if err != nil || out == nil || out.Result == nil {
		t.Errorf("nil-interrupt execute = %v, %v", out, err)
	}
}

// TestWaitContextCancelled: WaitContext stops polling as soon as its
// context dies, reporting the typed ErrWaitTimeout.
func TestWaitContextCancelled(t *testing.T) {
	_, _, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1})
	st, err := c.Submit(longReq())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.WaitContext(ctx, st.ID); !errors.Is(err, ErrWaitTimeout) {
		t.Errorf("cancelled WaitContext err = %v, want ErrWaitTimeout", err)
	}
}
