package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dynamo/internal/checkpoint"
	"dynamo/internal/runner"
)

// leaseFor polls the work queue until a grant arrives (submissions park
// asynchronously, so the first lease attempts can race the dispatcher).
func leaseFor(t *testing.T, c *Client, worker string, ttl time.Duration) *LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		g, err := c.Lease(context.Background(), worker, ttl)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if g != nil {
			return g
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timed out waiting for a lease grant")
	return nil
}

// scrapeMetric fetches /metrics and returns the sample line for one
// series (name plus exact label string, e.g. `{outcome="fenced"}`).
func scrapeMetric(t *testing.T, addr, name, labels string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	prefix := name + labels + " "
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(line, prefix))
		}
	}
	return ""
}

// captureCkpt runs req locally and returns its first emitted checkpoint
// document (the wire form a worker ships) plus the full result.
func captureCkpt(t *testing.T, req runner.Request, every uint64) ([]byte, *runner.Outcome) {
	t.Helper()
	var ck []byte
	out, err := runner.ExecuteLocal(req, runner.ExecOptions{
		CkptEvery: every,
		Sink: func(c *checkpoint.Checkpoint) {
			if ck != nil {
				return
			}
			data, err := json.Marshal(c)
			if err != nil {
				t.Fatal(err)
			}
			ck = append(data, '\n')
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no checkpoint emitted; raise the job size or lower every")
	}
	return ck, out
}

// TestLeaseHeartbeatAfterExpiry: a worker that misses its heartbeats is
// presumed dead — the lease is revoked by the expiry scanner, a late
// heartbeat gets a typed ErrLeaseExpired (410 on the wire), and the job
// is already back in the queue for the next worker.
func TestLeaseHeartbeatAfterExpiry(t *testing.T) {
	_, srv, c := startService(t, Options{
		CacheDir: t.TempDir(), Jobs: 1, Workers: true, LeaseTTL: 100 * time.Millisecond,
	})
	if _, err := c.Submit(counterReq(301)); err != nil {
		t.Fatal(err)
	}
	g := leaseFor(t, c, "silent-worker", 0)

	// Miss every heartbeat: sleeping a full TTL plus scanner slack between
	// attempts guarantees the lease expires even if an attempt lands just
	// before the scanner tick and renews it once.
	deadline := time.Now().Add(5 * time.Second)
	var hbErr error
	for time.Now().Before(deadline) {
		time.Sleep(150 * time.Millisecond)
		_, hbErr = c.Heartbeat(context.Background(), g.Digest, "silent-worker", g.Fence, nil, false)
		if hbErr != nil {
			break
		}
	}
	if !errors.Is(hbErr, ErrLeaseExpired) {
		t.Fatalf("heartbeat after expiry err = %v, want ErrLeaseExpired", hbErr)
	}

	// The wire form is HTTP 410 Gone with the lease-expired kind.
	body, _ := json.Marshal(HeartbeatRequest{Schema: runner.WireSchema, Worker: "silent-worker", Fence: g.Fence})
	resp, err := http.Post("http://"+srv.Addr()+"/v1/work/"+g.Digest+"/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone || eb.Error.Kind != "lease-expired" {
		t.Errorf("expired heartbeat on the wire = %d %+v", resp.StatusCode, eb)
	}

	// The job requeued: the next worker gets it under a larger fence.
	g2 := leaseFor(t, c, "healthy-worker", 0)
	if g2.Digest != g.Digest || g2.Fence <= g.Fence || g2.Attempt != g.Attempt+1 {
		t.Errorf("re-grant = %+v after %+v", g2, g)
	}
	if expired := scrapeMetric(t, srv.Addr(), "dynamo_work_leases_total", `{event="expired"}`); expired != "1" {
		t.Errorf(`dynamo_work_leases_total{event="expired"} = %q, want "1"`, expired)
	}
}

// TestCommitIdempotenceAndFencing: commits are at-most-once per digest —
// a byte-identical duplicate is acknowledged idempotently, a divergent
// commit under any fence is rejected with ErrStaleCommit (409) and
// counted as fenced.
func TestCommitIdempotenceAndFencing(t *testing.T) {
	req := counterReq(311)
	_, srv, c := startService(t, Options{
		CacheDir: t.TempDir(), Jobs: 1, Workers: true, LeaseTTL: time.Minute,
	})
	st, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	g := leaseFor(t, c, "w1", 0)

	out, err := runner.ExecuteLocal(g.Request, runner.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := runner.EncodeEntry(g.Request, out, 42*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cr, err := c.Commit(ctx, g.Digest, "w1", g.Fence, entry, "", "")
	if err != nil || !cr.Committed || cr.Duplicate {
		t.Fatalf("first commit = %+v, %v", cr, err)
	}

	// The same bytes again — a retry after a lost response — are
	// acknowledged, flagged as the duplicate they are, and change nothing.
	cr2, err := c.Commit(ctx, g.Digest, "w1", g.Fence, entry, "", "")
	if err != nil || !cr2.Committed || !cr2.Duplicate {
		t.Fatalf("duplicate commit = %+v, %v", cr2, err)
	}

	// Divergent bytes for the same job — a different elapsed is enough —
	// are a correctness violation, not a retry: typed 409, counted.
	other, err := runner.EncodeEntry(g.Request, out, 43*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(ctx, g.Digest, "w1", g.Fence, other, "", ""); !errors.Is(err, ErrStaleCommit) {
		t.Fatalf("divergent commit err = %v, want ErrStaleCommit", err)
	}
	if fenced := scrapeMetric(t, srv.Addr(), "dynamo_work_commits_total", `{outcome="fenced"}`); fenced != "1" {
		t.Errorf(`dynamo_work_commits_total{outcome="fenced"} = %q, want "1"`, fenced)
	}
	if dup := scrapeMetric(t, srv.Addr(), "dynamo_work_commits_total", `{outcome="duplicate"}`); dup != "1" {
		t.Errorf(`dynamo_work_commits_total{outcome="duplicate"} = %q, want "1"`, dup)
	}

	// The committed sweep completes with the committed result's bytes.
	if st, err = c.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != SweepDone || st.Done != 1 {
		t.Fatalf("sweep after commit = %+v", st)
	}

	// On the wire a stale commit is 409 Conflict with the typed kind.
	body, _ := json.Marshal(CommitRequest{Schema: runner.WireSchema, Worker: "w2", Fence: g.Fence + 7, Entry: other})
	resp, err := http.Post("http://"+srv.Addr()+"/v1/work/"+g.Digest+"/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict || eb.Error.Kind != "stale-commit" {
		t.Errorf("stale commit on the wire = %d %+v", resp.StatusCode, eb)
	}
}

// TestZombieLeaseExpiryResumesFromCheckpoint is the SIGKILL drill at the
// protocol level: a worker leases a job, ships one checkpoint, then goes
// silent. The lease expires, the re-grant carries the shipped checkpoint,
// a healthy worker resumes from it and commits — and the zombie's late
// commit is fenced. The final result is byte-identical to a fresh
// uninterrupted local run.
func TestZombieLeaseExpiryResumesFromCheckpoint(t *testing.T) {
	req := slowReq(321)
	ck, localOut := captureCkpt(t, req, 5000)
	wantJSON, err := json.Marshal(localOut.Result)
	if err != nil {
		t.Fatal(err)
	}

	cache := t.TempDir()
	_, srv, c := startService(t, Options{
		CacheDir: cache, Jobs: 1, Workers: true,
		LeaseTTL: 100 * time.Millisecond, CkptEvery: 5000,
	})
	st, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The zombie takes the lease, ships one checkpoint, then goes silent.
	gz := leaseFor(t, c, "zombie", 0)
	if gz.CkptEvery != 5000 {
		t.Errorf("grant ckpt cadence = %d, want 5000", gz.CkptEvery)
	}
	if _, err := c.Heartbeat(ctx, gz.Digest, "zombie", gz.Fence, ck, false); err != nil {
		t.Fatal(err)
	}

	// Lease expiry re-grants the job with the shipped checkpoint attached,
	// so the healthy worker resumes instead of restarting from event zero.
	// The healthy worker asks for a TTL long enough to run without
	// heartbeating (this test drives the protocol by hand).
	gh := leaseFor(t, c, "healthy", time.Minute)
	if gh.Fence <= gz.Fence {
		t.Fatalf("re-grant fence %d not past zombie fence %d", gh.Fence, gz.Fence)
	}
	// JSON framing may re-encode the document in flight; what must survive
	// is the checkpoint itself — same identity, same event position.
	shipped, err := checkpoint.Read(bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	resume, err := checkpoint.Read(bytes.NewReader(gh.Checkpoint))
	if err != nil {
		t.Fatalf("re-grant checkpoint unreadable: %v", err)
	}
	if err := resume.Compatible(gh.Digest); err != nil {
		t.Fatalf("re-grant checkpoint incompatible: %v", err)
	}
	if resume.Event != shipped.Event {
		t.Fatalf("re-grant checkpoint at event %d, shipped event %d", resume.Event, shipped.Event)
	}
	out, err := runner.ExecuteLocal(gh.Request, runner.ExecOptions{Resume: resume})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := runner.EncodeEntry(gh.Request, out, 17*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cr, err := c.Commit(ctx, gh.Digest, "healthy", gh.Fence, entry, "", ""); err != nil || !cr.Committed {
		t.Fatalf("healthy commit = %+v, %v", cr, err)
	}

	// The zombie wakes up and tries to commit its own full run under the
	// revoked fence: fenced, not accepted, not a duplicate.
	zout, err := runner.ExecuteLocal(gz.Request, runner.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	zentry, err := runner.EncodeEntry(gz.Request, zout, 99*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(ctx, gz.Digest, "zombie", gz.Fence, zentry, "", ""); !errors.Is(err, ErrStaleCommit) {
		t.Fatalf("zombie commit err = %v, want ErrStaleCommit", err)
	}

	// The sweep completes and the resumed result is byte-identical to the
	// uninterrupted local run.
	if st, err = c.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != SweepDone || st.Done != 1 {
		t.Fatalf("sweep = %+v", st)
	}
	remote, err := c.ResultBytes(gh.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, remote), wantJSON) {
		t.Error("resumed fleet result differs from an uninterrupted local run")
	}
	if expired := scrapeMetric(t, srv.Addr(), "dynamo_work_leases_total", `{event="expired"}`); expired != "1" {
		t.Errorf(`dynamo_work_leases_total{event="expired"} = %q, want "1"`, expired)
	}
	if shipped := scrapeMetric(t, srv.Addr(), "dynamo_work_checkpoints_total", ""); shipped != "1" {
		t.Errorf(`dynamo_work_checkpoints_total = %q, want "1"`, shipped)
	}
	// Every grant drained through exactly one lease-end event.
	if held := scrapeMetric(t, srv.Addr(), "dynamo_work_leases", ""); held != "0" {
		t.Errorf("dynamo_work_leases = %q after settling, want 0", held)
	}
	if fleet := scrapeMetric(t, srv.Addr(), "dynamo_work_workers", ""); fleet != "0" {
		t.Errorf("dynamo_work_workers = %q after settling, want 0", fleet)
	}
}

// TestWorkValidation covers the work API's rejection edges: no lease
// table, missing worker id, unknown digests, malformed checkpoints, and
// malformed entries (which must NOT burn the lease).
func TestWorkValidation(t *testing.T) {
	ctx := context.Background()

	// Without Options.Workers there is no lease table: typed 404s.
	_, _, c := startService(t, Options{CacheDir: t.TempDir()})
	if _, err := c.Lease(ctx, "w", 0); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("lease without workers err = %v, want ErrNoWorkers", err)
	}
	if _, err := c.Heartbeat(ctx, strings.Repeat("ab", 32), "w", 1, nil, false); !errors.Is(err, ErrNoWorkers) {
		t.Errorf("heartbeat without workers err = %v, want ErrNoWorkers", err)
	}

	_, _, cw := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1, Workers: true})
	if _, err := cw.Lease(ctx, "", 0); !errors.Is(err, runner.ErrBadField) {
		t.Errorf("anonymous lease err = %v, want ErrBadField", err)
	}
	// An empty queue is not an error: nil grant, nil error (204).
	if g, err := cw.Lease(ctx, "w", 0); g != nil || err != nil {
		t.Errorf("empty-queue lease = %+v, %v", g, err)
	}
	// Unknown digests never held a lease.
	bogus := strings.Repeat("cd", 32)
	if _, err := cw.Heartbeat(ctx, bogus, "w", 1, nil, false); !errors.Is(err, ErrLeaseExpired) {
		t.Errorf("unknown-digest heartbeat err = %v, want ErrLeaseExpired", err)
	}
	if _, err := cw.Commit(ctx, bogus, "w", 1, nil, "boom", ""); !errors.Is(err, ErrLeaseExpired) {
		t.Errorf("unknown-digest commit err = %v, want ErrLeaseExpired", err)
	}

	// A live lease survives malformed payloads: garbage checkpoints and
	// garbage entries are the caller's bug (400), not a fencing event.
	if _, err := cw.Submit(counterReq(331)); err != nil {
		t.Fatal(err)
	}
	g := leaseFor(t, cw, "w", 0)
	if _, err := cw.Heartbeat(ctx, g.Digest, "w", g.Fence, []byte(`{"not":"a checkpoint"}`), false); !errors.Is(err, runner.ErrBadField) {
		t.Errorf("garbage checkpoint err = %v, want ErrBadField", err)
	}
	if _, err := cw.Commit(ctx, g.Digest, "w", g.Fence, []byte(`{"not":"an entry"}`), "", ""); !errors.Is(err, runner.ErrBadField) {
		t.Errorf("garbage entry err = %v, want ErrBadField", err)
	}
	out, err := runner.ExecuteLocal(g.Request, runner.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := runner.EncodeEntry(g.Request, out, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cr, err := cw.Commit(ctx, g.Digest, "w", g.Fence, entry, "", ""); err != nil || !cr.Committed {
		t.Fatalf("commit after rejected payloads = %+v, %v (the lease should have stayed live)", cr, err)
	}
}

// TestErrorCommitFeedsRetryPolicy: a worker-reported transient failure
// flows through the server's existing retry machinery — the job requeues
// and a later clean commit completes the sweep.
func TestErrorCommitFeedsRetryPolicy(t *testing.T) {
	_, _, c := startService(t, Options{
		CacheDir: t.TempDir(), Jobs: 1, Retries: 2, Workers: true, LeaseTTL: time.Minute,
	})
	st, err := c.Submit(counterReq(341))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// First attempt reports a stall — a transient kind the retry policy
	// re-enqueues rather than quarantines.
	g1 := leaseFor(t, c, "flaky", 0)
	if cr, err := c.Commit(ctx, g1.Digest, "flaky", g1.Fence, nil, "machine stalled at event 7", "stalled"); err != nil || !cr.Committed {
		t.Fatalf("error commit = %+v, %v", cr, err)
	}

	// The retry comes back through the queue under a fresh fence.
	g2 := leaseFor(t, c, "steady", 0)
	if g2.Digest != g1.Digest || g2.Fence <= g1.Fence {
		t.Fatalf("retry grant = %+v after %+v", g2, g1)
	}
	out, err := runner.ExecuteLocal(g2.Request, runner.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	entry, err := runner.EncodeEntry(g2.Request, out, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cr, err := c.Commit(ctx, g2.Digest, "steady", g2.Fence, entry, "", ""); err != nil || !cr.Committed {
		t.Fatalf("retry commit = %+v, %v", cr, err)
	}
	if st, err = c.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if st.State != SweepDone || st.Done != 1 {
		t.Fatalf("sweep after retry = %+v", st)
	}
}
