package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"dynamo/internal/faultio"
	"dynamo/internal/runner"
	"dynamo/internal/telemetry"
)

// longReq is big enough (~277k simulated events) to cross several of the
// machine's interrupt-poll strides, so preemption and deadline interrupts
// land mid-run instead of after completion.
func longReq() runner.Request {
	return runner.Request{Workload: "tc", Policy: "all-near", Threads: 2, Scale: 1.0}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPreemptionTimeSlicesAcrossSweeps: with one worker and preemption
// on, a long job from sweep A yields its slice when sweep B arrives
// starved, B runs to completion, and A resumes from its checkpoint to a
// result byte-identical to an uninterrupted local run.
func TestPreemptionTimeSlicesAcrossSweeps(t *testing.T) {
	cache := t.TempDir()
	svc, err := New(Options{
		CacheDir: cache, Jobs: 1, CkptEvery: 20000,
		Preempt: true, PreemptSlice: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	stA, err := svc.Submit([]runner.Request{longReq()})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sweep A to start running", func() bool {
		st, err := svc.Status(stA.ID)
		return err == nil && st.Running == 1
	})
	stB, err := svc.Submit([]runner.Request{counterReq(91)})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "starved sweep B to finish", func() bool {
		st, err := svc.Status(stB.ID)
		return err == nil && st.State == SweepDone
	})
	waitFor(t, "preempted sweep A to finish", func() bool {
		st, err := svc.Status(stA.ID)
		return err == nil && st.State == SweepDone
	})

	rst := svc.Runner().Stats()
	if rst.Preempted < 1 || rst.Resumed < 1 {
		t.Fatalf("runner stats = %+v, want at least one preemption and one resume", rst)
	}

	// The preempted-and-resumed job's result is byte-identical to an
	// uninterrupted run of the same request.
	local := runner.New(runner.Options{Jobs: 1, CacheDir: t.TempDir()})
	defer local.Close()
	out, err := local.Run(longReq())
	if err != nil {
		t.Fatal(err)
	}
	localJSON, _ := json.Marshal(out.Result)
	stA, _ = svc.Status(stA.ID)
	remote, err := svc.Result(stA.Jobs[0].Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, remote), localJSON) {
		t.Fatal("preempted-and-resumed result differs from the uninterrupted run")
	}

	// Gauge balance: nothing queued or running once both sweeps are done.
	p := svc.Telemetry().Progress()
	if p.Queued != 0 || p.Running != 0 {
		t.Fatalf("gauges not drained: %d queued, %d running", p.Queued, p.Running)
	}
	if p.Preempted < 1 {
		t.Fatalf("telemetry preempted = %d, want >= 1", p.Preempted)
	}
}

// TestDeadlineExpiresSweep: a sweep past its wall-clock deadline turns
// terminal ("expired") — queued jobs expire in place, the in-flight one
// is interrupted at its next checkpoint boundary — and the gauges drain.
func TestDeadlineExpiresSweep(t *testing.T) {
	tel := telemetry.NewSweep(telemetry.SweepOptions{})
	defer tel.Close()
	svc, err := New(Options{CacheDir: t.TempDir(), Jobs: 1, CkptEvery: 20000, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if _, err := svc.SubmitDeadline([]runner.Request{counterReq(1)}, -time.Second); !errors.Is(err, runner.ErrBadField) {
		t.Fatalf("negative deadline err = %v, want ErrBadField", err)
	}

	st, err := svc.SubmitDeadline([]runner.Request{longReq(), {Workload: "spmv", Policy: "all-near", Threads: 2, Scale: 1.0}}, 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "sweep to expire", func() bool {
		cur, err := svc.Status(st.ID)
		return err == nil && cur.Terminal()
	})
	cur, err := svc.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.State != SweepExpired {
		t.Fatalf("state = %q, want %q", cur.State, SweepExpired)
	}
	svc.Wait() // the interrupted in-flight job winds down
	cur, _ = svc.Status(st.ID)
	if cur.Expired != 2 || cur.Queued != 0 || cur.Running != 0 {
		t.Fatalf("final status = %+v, want both jobs expired", cur)
	}
	waitFor(t, "gauges to drain", func() bool {
		p := tel.Progress()
		return p.Queued == 0 && p.Running == 0
	})
	if p := tel.Progress(); p.Expired != 2 {
		t.Fatalf("telemetry expired = %d, want 2", p.Expired)
	}
}

// TestOverloadBackpressure: the bounded admission queue rejects a batch
// that would overflow it with a typed ErrOverloaded — HTTP 429 on the
// wire — and a client with backoff enabled rides it out and lands the
// sweep once capacity frees up.
func TestOverloadBackpressure(t *testing.T) {
	tel := telemetry.NewSweep(telemetry.SweepOptions{})
	defer tel.Close()
	svc, srv, _ := startService(t, Options{
		CacheDir: t.TempDir(), Jobs: 1, MaxQueued: 2, Telemetry: tel,
	})

	// Occupy the pool: one long job pending.
	stA, err := svc.Submit([]runner.Request{longReq()})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "long job to start", func() bool {
		st, err := svc.Status(stA.ID)
		return err == nil && st.Running == 1
	})

	// Direct: 1 pending + 2 submitted > 2 → all-or-nothing rejection.
	if _, err := svc.Submit([]runner.Request{counterReq(1), counterReq(2)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow submit err = %v, want ErrOverloaded", err)
	}
	if p := tel.Progress(); p.Overloaded < 1 {
		t.Fatalf("telemetry overloaded = %d, want >= 1", p.Overloaded)
	}

	// Wire, no retries: the 429 maps back to the typed sentinel.
	c0 := Dial(srv.Addr())
	c0.Retries = 0
	if _, err := c0.Submit(counterReq(3), counterReq(4)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("wire overflow err = %v, want ErrOverloaded", err)
	}

	// Wire, with backoff: the long job finishes well inside the retry
	// budget, capacity frees, and the same batch is admitted.
	c1 := Dial(srv.Addr())
	c1.Retries = 10
	c1.Backoff = 25 * time.Millisecond
	c1.MaxBackoff = 200 * time.Millisecond
	st, err := c1.Submit(counterReq(3), counterReq(4))
	if err != nil {
		t.Fatalf("backoff submit did not recover: %v", err)
	}
	if st, err = c1.Wait(st.ID); err != nil || st.State != SweepDone {
		t.Fatalf("recovered sweep = %+v, %v", st, err)
	}
}

// TestClientWaitTimeout: a Wait bounded by the client deadline returns
// the typed ErrWaitTimeout while the sweep keeps running server-side.
func TestClientWaitTimeout(t *testing.T) {
	svc, srv, c := startService(t, Options{CacheDir: t.TempDir(), Jobs: 1, CkptEvery: 20000})
	st, err := c.Submit(longReq())
	if err != nil {
		t.Fatal(err)
	}
	w := Dial(srv.Addr())
	w.Deadline = 40 * time.Millisecond
	if _, err := w.Wait(st.ID); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("bounded wait err = %v, want ErrWaitTimeout", err)
	}
	// Only the caller stopped watching: the sweep still completes.
	if st, err = c.Wait(st.ID); err != nil || st.State != SweepDone {
		t.Fatalf("sweep after abandoned wait = %+v, %v", st, err)
	}
	_ = svc
}

// TestExecuteHealsUnderFaults is the in-process soak: a service whose
// storage plane and HTTP transport both run behind the deterministic
// fault injector still serves every Execute correctly — torn writes and
// lost documents heal, dropped and duplicated responses retry — and the
// results stay byte-identical to clean local runs.
func TestExecuteHealsUnderFaults(t *testing.T) {
	inj := faultio.New(faultio.Level(1234, 3, 40))
	tel := telemetry.NewSweep(telemetry.SweepOptions{})
	defer tel.Close()
	inj.Register(tel.Registry())

	svc, err := New(Options{
		CacheDir: t.TempDir(), Jobs: 2, CkptEvery: 20000,
		Telemetry: tel, FS: inj.WrapFS(faultio.OS{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := Serve("127.0.0.1:0", svc, inj.WrapHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := Dial(srv.Addr())
	c.Backoff = 5 * time.Millisecond
	c.Poll = 5 * time.Millisecond
	c.Retries = 10

	local := runner.New(runner.Options{Jobs: 2, CacheDir: t.TempDir()})
	defer local.Close()

	for seed := int64(0); seed < 8; seed++ {
		q := counterReq(seed)
		out, err := c.Execute(q)
		if err != nil {
			t.Fatalf("Execute(seed %d) under faults: %v", seed, err)
		}
		want, err := local.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(out.Result)
		ref, _ := json.Marshal(want.Result)
		if !bytes.Equal(got, ref) {
			t.Fatalf("seed %d: faulted remote result differs from clean local run", seed)
		}
	}
	if inj.Injected() == 0 {
		t.Fatal("the injector never fired — the soak exercised nothing")
	}
	t.Logf("injected faults: %v", inj.Counts())
}
