package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"time"

	"dynamo/internal/core"
	"dynamo/internal/runner"
	"dynamo/internal/telemetry"
	"dynamo/internal/workload"
)

// maxBody bounds a submission body; a sweep of tens of thousands of
// requests still fits comfortably.
const maxBody = 16 << 20

// Server is the HTTP front end over one Service: the /v1 control plane
// plus the telemetry endpoints, on one listener.
type Server struct {
	svc  *Service
	ln   net.Listener
	http *http.Server
}

// Serve binds addr (host:port; ":0" picks a free port) and serves svc
// until Close. Listen errors surface here. Optional middleware wraps the
// whole mux, outermost first — the fault injector's WrapHandler plugs in
// here to perturb the served transport without touching the routes.
func Serve(addr string, svc *Service, middleware ...func(http.Handler) http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: listening on %s: %w", addr, err)
	}
	srv := &Server{svc: svc, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", srv.postSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", srv.getSweep)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", srv.deleteSweep)
	mux.HandleFunc("GET /v1/jobs/{digest}", srv.getJob)
	mux.HandleFunc("GET /v1/jobs/{digest}/span", srv.getJobSpan)
	mux.HandleFunc("POST /v1/work/lease", srv.postLease)
	mux.HandleFunc("POST /v1/work/{digest}/heartbeat", srv.postHeartbeat)
	mux.HandleFunc("POST /v1/work/{digest}/result", srv.postCommit)
	telemetry.Mount(mux, svc.Telemetry())
	mux.HandleFunc("/", srv.index)
	var h http.Handler = mux
	for i := len(middleware) - 1; i >= 0; i-- {
		h = middleware[i](h)
	}
	srv.http = &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.http.Serve(ln)
	return srv, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops accepting requests and waits briefly for in-flight ones.
// It does not drain the service — call Service.Drain (or Close) for that.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

// kindOf classifies an error into the stable WireError.Kind vocabulary.
func kindOf(err error) string {
	switch {
	case errors.Is(err, workload.ErrUnknown):
		return "unknown-workload"
	case errors.Is(err, core.ErrUnknownPolicy):
		return "unknown-policy"
	case errors.Is(err, runner.ErrWireSchema):
		return "schema"
	case errors.Is(err, runner.ErrBadField):
		return "bad-field"
	case errors.Is(err, ErrNotFound):
		return "not-found"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrLeaseExpired):
		return "lease-expired"
	case errors.Is(err, ErrStaleCommit):
		return "stale-commit"
	case errors.Is(err, ErrNoWorkers):
		return "no-workers"
	default:
		return "bad-request"
	}
}

// statusOf maps an error kind to its HTTP status.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrLeaseExpired):
		return http.StatusGone
	case errors.Is(err, ErrStaleCommit):
		return http.StatusConflict
	case errors.Is(err, ErrNoWorkers):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// writeError renders err as the structured {"error": ...} envelope.
func writeError(w http.ResponseWriter, err error) {
	we := WireError{Message: err.Error(), Kind: kindOf(err)}
	var fe *runner.FieldError
	if errors.As(err, &fe) {
		we.Field, we.Value = fe.Field, fe.Value
	}
	writeJSON(w, statusOf(err), ErrorBody{Error: we})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) postSweeps(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("service: decoding sweep body: %w", err))
		return
	}
	if req.Schema != 0 && req.Schema != runner.WireSchema {
		writeError(w, &runner.FieldError{
			Field: "schema", Value: fmt.Sprint(req.Schema),
			Err: fmt.Errorf("%w: this build speaks schema %d", runner.ErrWireSchema, runner.WireSchema),
		})
		return
	}
	if d := req.DeadlineSeconds; d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		writeError(w, &runner.FieldError{
			Field: "deadline_seconds", Value: fmt.Sprint(d),
			Err: fmt.Errorf("%w: deadline must be a non-negative finite number of seconds", runner.ErrBadField),
		})
		return
	}
	if err := r.Context().Err(); err != nil {
		// The client went away while the body was read; admitting the
		// sweep anyway would run work nobody will collect.
		writeError(w, fmt.Errorf("service: request abandoned: %w", err))
		return
	}
	st, err := s.svc.SubmitDeadline(req.Requests, time.Duration(req.DeadlineSeconds*float64(time.Second)))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) getSweep(w http.ResponseWriter, r *http.Request) {
	st, err := s.svc.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) deleteSweep(w http.ResponseWriter, r *http.Request) {
	st, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	data, err := s.svc.Result(r.PathValue("digest"))
	if err != nil {
		writeError(w, err)
		return
	}
	// The raw cache document, byte-for-byte: remote results are the same
	// bytes a local sweep would have on disk.
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) getJobSpan(w http.ResponseWriter, r *http.Request) {
	span, err := s.svc.SpanOf(r.PathValue("digest"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, span)
}

// checkWorkSchema rejects a work-API body from a different wire schema.
func checkWorkSchema(schema int) error {
	if schema != 0 && schema != runner.WireSchema {
		return &runner.FieldError{
			Field: "schema", Value: fmt.Sprint(schema),
			Err: fmt.Errorf("%w: this build speaks schema %d", runner.ErrWireSchema, runner.WireSchema),
		}
	}
	return nil
}

func (s *Server) postLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("service: decoding lease body: %w", err))
		return
	}
	if err := checkWorkSchema(req.Schema); err != nil {
		writeError(w, err)
		return
	}
	if d := req.TTLSeconds; d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		writeError(w, &runner.FieldError{
			Field: "ttl_seconds", Value: fmt.Sprint(d),
			Err: fmt.Errorf("%w: ttl must be a non-negative finite number of seconds", runner.ErrBadField),
		})
		return
	}
	g, err := s.svc.Lease(req.Worker, time.Duration(req.TTLSeconds*float64(time.Second)))
	if err != nil {
		writeError(w, err)
		return
	}
	if g == nil {
		// No work pending: 204, the worker's cue to idle-poll.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, g)
}

func (s *Server) postHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("service: decoding heartbeat body: %w", err))
		return
	}
	if err := checkWorkSchema(req.Schema); err != nil {
		writeError(w, err)
		return
	}
	hb, err := s.svc.WorkHeartbeat(r.PathValue("digest"), req.Worker, req.Fence, req.Checkpoint, req.Release)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, hb)
}

func (s *Server) postCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("service: decoding commit body: %w", err))
		return
	}
	if err := checkWorkSchema(req.Schema); err != nil {
		writeError(w, err)
		return
	}
	cr, err := s.svc.WorkCommit(r.PathValue("digest"), req.Worker, req.Fence, req.Entry, req.Error, req.ErrorKind)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cr)
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, fmt.Errorf("%w: %s", ErrNotFound, r.URL.Path))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `dynamo sweep service

POST   /v1/sweeps               submit a sweep (JSON batch of requests)
GET    /v1/sweeps/{id}          sweep status
DELETE /v1/sweeps/{id}          cancel a sweep
GET    /v1/jobs/{digest}        cached result document
GET    /v1/jobs/{digest}/span   job trace span
POST   /v1/work/lease                 pull a job under a TTL lease (workers mode)
POST   /v1/work/{digest}/heartbeat    extend a lease / ship a checkpoint / release
POST   /v1/work/{digest}/result       commit a job's outcome (fenced)
GET    /metrics /progress /jobs telemetry
`)
}
