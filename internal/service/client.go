package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"time"

	"dynamo/internal/core"
	"dynamo/internal/machine"
	"dynamo/internal/runner"
	"dynamo/internal/workload"
)

// Client talks to a sweep service. The zero-value fields of Dial's result
// are tuned for a local server; all are exported for overriding.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Retries bounds transport-error retries per call — a server
	// mid-restart is retried (refused, reset or dropped connections),
	// any other failure is not. Backoff is the first retry's delay,
	// doubling per retry.
	Retries int
	Backoff time.Duration
	// Poll is the status-poll interval for Wait and Execute.
	Poll time.Duration
}

// Dial builds a client for addr ("host:port", scheme optional).
func Dial(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		Base:    strings.TrimRight(addr, "/"),
		Retries: 5,
		Backoff: 100 * time.Millisecond,
		Poll:    25 * time.Millisecond,
	}
}

// retryable reports whether a transport error is worth retrying: the
// signatures of a server that is still binding, restarting, or shutting
// down under the caller (refused, reset, or a keep-alive connection the
// server closed as the request was written). Every endpoint is
// idempotent — submissions dedupe by content digest — so re-sending a
// request whose fate is unknown is safe.
func retryable(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// kindErr maps a WireError.Kind back to its sentinel, so client-side
// errors.Is works across the wire: a rejected workload name matches
// workload.ErrUnknown whether validation ran locally or remotely.
func kindErr(kind string) error {
	switch kind {
	case "unknown-workload":
		return workload.ErrUnknown
	case "unknown-policy":
		return core.ErrUnknownPolicy
	case "schema":
		return runner.ErrWireSchema
	case "bad-field":
		return runner.ErrBadField
	case "not-found":
		return ErrNotFound
	case "draining":
		return ErrDraining
	}
	return nil
}

// do performs one call. When out is a *[]byte the raw body is returned;
// otherwise the body is decoded into out (nil discards it).
func (c *Client) do(method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("service: encoding %s %s: %w", method, path, err)
		}
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, c.Base+path, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("service: %s %s: %w", method, path, err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err = hc.Do(req)
		if err == nil {
			break
		}
		if attempt >= c.Retries || !retryable(err) {
			return fmt.Errorf("service: %s %s: %w", method, path, err)
		}
		time.Sleep(c.Backoff << attempt)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("service: reading %s %s: %w", method, path, err)
	}
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Message != "" {
			if base := kindErr(eb.Error.Kind); base != nil {
				return fmt.Errorf("service: http %d: %s: %w", resp.StatusCode, eb.Error.Message, base)
			}
			return fmt.Errorf("service: http %d: %s", resp.StatusCode, eb.Error.Message)
		}
		return fmt.Errorf("service: %s %s: http %d", method, path, resp.StatusCode)
	}
	switch out := out.(type) {
	case nil:
		return nil
	case *[]byte:
		*out = data
		return nil
	default:
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("service: decoding %s %s: %w", method, path, err)
		}
		return nil
	}
}

// Submit sends one sweep and returns its initial status.
func (c *Client) Submit(reqs ...runner.Request) (*SweepStatus, error) {
	var st SweepStatus
	err := c.do(http.MethodPost, "/v1/sweeps",
		SubmitRequest{Schema: runner.WireSchema, Requests: reqs}, &st)
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a sweep's current standing.
func (c *Client) Status(id string) (*SweepStatus, error) {
	var st SweepStatus
	if err := c.do(http.MethodGet, "/v1/sweeps/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel cancels a sweep (idempotent) and returns its status.
func (c *Client) Cancel(id string) (*SweepStatus, error) {
	var st SweepStatus
	if err := c.do(http.MethodDelete, "/v1/sweeps/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls a sweep until it reaches a terminal state.
func (c *Client) Wait(id string) (*SweepStatus, error) {
	for {
		st, err := c.Status(id)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		poll := c.Poll
		if poll <= 0 {
			poll = 25 * time.Millisecond
		}
		time.Sleep(poll)
	}
}

// ResultBytes fetches a finished job's raw cache document — the exact
// bytes of the server-side <cacheDir>/<digest>.json.
func (c *Client) ResultBytes(digest string) ([]byte, error) {
	var data []byte
	if err := c.do(http.MethodGet, "/v1/jobs/"+digest, nil, &data); err != nil {
		return nil, err
	}
	return data, nil
}

// Span fetches a finished job's trace span.
func (c *Client) Span(digest string) (*Span, error) {
	var sp Span
	if err := c.do(http.MethodGet, "/v1/jobs/"+digest+"/span", nil, &sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Execute runs one request remotely and blocks for its outcome. It is
// shaped to plug into runner.Options.Execute, so a local runner keeps
// its pool, dedupe, stats and telemetry semantics while every actual
// simulation happens on the server.
func (c *Client) Execute(q runner.Request) (*runner.Outcome, error) {
	st, err := c.Submit(q)
	if err != nil {
		return nil, err
	}
	if st, err = c.Wait(st.ID); err != nil {
		return nil, err
	}
	if len(st.Jobs) != 1 {
		return nil, fmt.Errorf("service: sweep %s: expected 1 job, got %d", st.ID, len(st.Jobs))
	}
	j := st.Jobs[0]
	switch j.State {
	case JobDone:
		data, err := c.ResultBytes(j.Digest)
		if err != nil {
			return nil, err
		}
		out, _, err := runner.DecodeEntry(data)
		return out, err
	case JobFailed:
		return nil, fmt.Errorf("service: remote job %s failed: %s", j.Digest, j.Error)
	case JobCancelled:
		return nil, fmt.Errorf("service: remote job %s: %w", j.Digest, machine.ErrInterrupted)
	}
	return nil, fmt.Errorf("service: job %s ended in state %q", j.Digest, j.State)
}
