package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"syscall"
	"time"

	"dynamo/internal/core"
	"dynamo/internal/machine"
	"dynamo/internal/runner"
	"dynamo/internal/workload"
)

// ErrWaitTimeout marks a Wait (or Execute) that ran out of its deadline
// before the sweep turned terminal. The sweep keeps running server-side;
// only the caller stopped watching.
var ErrWaitTimeout = errors.New("service: wait deadline exceeded")

// Client talks to a sweep service. The zero-value fields of Dial's result
// are tuned for a local server; all are exported for overriding.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Retries bounds per-call retries: transport errors from a server
	// mid-restart (refused, reset or dropped connections), 429-overloaded
	// and 503-draining responses. Any other failure is not retried.
	// Every endpoint is idempotent — submissions dedupe by content digest
	// — so re-sending a request whose fate is unknown is safe.
	Retries int
	// Backoff is the first retry's delay; each further retry doubles it,
	// jittered into [d/2, d] so a fleet of rejected clients does not
	// re-stampede in phase, and capped at MaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Poll is the status-poll interval for Wait and Execute.
	Poll time.Duration
	// Deadline, when positive, bounds every Wait and Execute call
	// (ErrWaitTimeout past it) and is stamped on submitted sweeps as the
	// wire deadline_seconds, so the server abandons work the caller will
	// never collect.
	Deadline time.Duration
	// Resubmits bounds Execute's self-healing resubmissions when a
	// result document was lost to a crash or storage fault (default 3).
	Resubmits int

	// jitter draws the random half of a backoff delay: jitter(n) returns
	// a value in [0, n). It defaults to the process-global rand.Int63n; a
	// test swaps in a seeded source so backoff schedules are reproducible
	// without depending on wall-clock randomness.
	jitter func(n int64) int64
}

// Dial builds a client for addr ("host:port", scheme optional).
func Dial(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		Base:       strings.TrimRight(addr, "/"),
		Retries:    5,
		Backoff:    100 * time.Millisecond,
		MaxBackoff: 2 * time.Second,
		Poll:       25 * time.Millisecond,
		Resubmits:  3,
	}
}

// retryable reports whether a transport error is worth retrying: the
// signatures of a server that is still binding, restarting, or shutting
// down under the caller (refused, reset, or a keep-alive connection the
// server closed as the request was written).
func retryable(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// retryStatus reports whether an HTTP status says "come back later"
// rather than "you are wrong": 429 is the bounded admission queue
// pushing back, 503 a draining server about to restart.
func retryStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// kindErr maps a WireError.Kind back to its sentinel, so client-side
// errors.Is works across the wire: a rejected workload name matches
// workload.ErrUnknown whether validation ran locally or remotely.
func kindErr(kind string) error {
	switch kind {
	case "unknown-workload":
		return workload.ErrUnknown
	case "unknown-policy":
		return core.ErrUnknownPolicy
	case "schema":
		return runner.ErrWireSchema
	case "bad-field":
		return runner.ErrBadField
	case "not-found":
		return ErrNotFound
	case "draining":
		return ErrDraining
	case "overloaded":
		return ErrOverloaded
	case "lease-expired":
		return ErrLeaseExpired
	case "stale-commit":
		return ErrStaleCommit
	case "no-workers":
		return ErrNoWorkers
	}
	return nil
}

// delay returns the jittered backoff before retry number attempt
// (0-based): Backoff doubled per retry, capped at MaxBackoff, then drawn
// uniformly from [d/2, d].
func (c *Client) delay(attempt int) time.Duration {
	base := c.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << attempt
	if d <= 0 || d > max {
		d = max
	}
	draw := c.jitter
	if draw == nil {
		draw = rand.Int63n
	}
	return d/2 + time.Duration(draw(int64(d/2)+1))
}

// sleepCtx pauses for d, returning false early when ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// do performs one call under ctx. When out is a *[]byte the raw body is
// returned; otherwise the body is decoded into out (nil discards it).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("service: encoding %s %s: %w", method, path, err)
		}
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	var resp *http.Response
	var data []byte
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("service: %s %s: %w", method, path, err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err = hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("service: %s %s: %w", method, path, ctx.Err())
			}
			if attempt >= c.Retries || !retryable(err) {
				return fmt.Errorf("service: %s %s: %w", method, path, err)
			}
			if !sleepCtx(ctx, c.delay(attempt)) {
				return fmt.Errorf("service: %s %s: %w", method, path, ctx.Err())
			}
			continue
		}
		data, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("service: reading %s %s: %w", method, path, ctx.Err())
			}
			if attempt >= c.Retries || !retryable(err) {
				return fmt.Errorf("service: reading %s %s: %w", method, path, err)
			}
			if !sleepCtx(ctx, c.delay(attempt)) {
				return fmt.Errorf("service: %s %s: %w", method, path, ctx.Err())
			}
			continue
		}
		if retryStatus(resp.StatusCode) && attempt < c.Retries {
			if !sleepCtx(ctx, c.delay(attempt)) {
				return fmt.Errorf("service: %s %s: %w", method, path, ctx.Err())
			}
			continue
		}
		break
	}
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Message != "" {
			if base := kindErr(eb.Error.Kind); base != nil {
				return fmt.Errorf("service: http %d: %s: %w", resp.StatusCode, eb.Error.Message, base)
			}
			return fmt.Errorf("service: http %d: %s", resp.StatusCode, eb.Error.Message)
		}
		return fmt.Errorf("service: %s %s: http %d", method, path, resp.StatusCode)
	}
	switch out := out.(type) {
	case nil:
		return nil
	case *[]byte:
		*out = data
		return nil
	default:
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("service: decoding %s %s: %w", method, path, err)
		}
		return nil
	}
}

// Submit sends one sweep and returns its initial status. The client's
// Deadline, when set, rides along as the sweep's wire deadline.
func (c *Client) Submit(reqs ...runner.Request) (*SweepStatus, error) {
	return c.SubmitContext(context.Background(), reqs...)
}

// SubmitContext is Submit bounded by ctx.
func (c *Client) SubmitContext(ctx context.Context, reqs ...runner.Request) (*SweepStatus, error) {
	body := SubmitRequest{Schema: runner.WireSchema, Requests: reqs}
	if c.Deadline > 0 {
		body.DeadlineSeconds = c.Deadline.Seconds()
	}
	var st SweepStatus
	if err := c.do(ctx, http.MethodPost, "/v1/sweeps", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a sweep's current standing.
func (c *Client) Status(id string) (*SweepStatus, error) {
	return c.StatusContext(context.Background(), id)
}

// StatusContext is Status bounded by ctx.
func (c *Client) StatusContext(ctx context.Context, id string) (*SweepStatus, error) {
	var st SweepStatus
	if err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel cancels a sweep (idempotent) and returns its status.
func (c *Client) Cancel(id string) (*SweepStatus, error) {
	return c.CancelContext(context.Background(), id)
}

// CancelContext is Cancel bounded by ctx.
func (c *Client) CancelContext(ctx context.Context, id string) (*SweepStatus, error) {
	var st SweepStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls a sweep until it reaches a terminal state, bounded by the
// client's Deadline when one is set: past it, Wait returns a typed
// ErrWaitTimeout instead of polling a stalled service forever.
func (c *Client) Wait(id string) (*SweepStatus, error) {
	ctx := context.Background()
	if c.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Deadline)
		defer cancel()
	}
	return c.WaitContext(ctx, id)
}

// WaitContext polls a sweep until it turns terminal or ctx ends
// (ErrWaitTimeout).
func (c *Client) WaitContext(ctx context.Context, id string) (*SweepStatus, error) {
	for {
		st, err := c.StatusContext(ctx, id)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("%w: sweep %s: %v", ErrWaitTimeout, id, ctx.Err())
			}
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		poll := c.Poll
		if poll <= 0 {
			poll = 25 * time.Millisecond
		}
		if !sleepCtx(ctx, poll) {
			return nil, fmt.Errorf("%w: sweep %s: %v", ErrWaitTimeout, id, ctx.Err())
		}
	}
}

// ResultBytes fetches a finished job's raw cache document — the exact
// bytes of the server-side <cacheDir>/<digest>.json.
func (c *Client) ResultBytes(digest string) ([]byte, error) {
	return c.ResultBytesContext(context.Background(), digest)
}

// ResultBytesContext is ResultBytes bounded by ctx.
func (c *Client) ResultBytesContext(ctx context.Context, digest string) ([]byte, error) {
	var data []byte
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+digest, nil, &data); err != nil {
		return nil, err
	}
	return data, nil
}

// Span fetches a finished job's trace span.
func (c *Client) Span(digest string) (*Span, error) {
	var sp Span
	if err := c.do(context.Background(), http.MethodGet, "/v1/jobs/"+digest+"/span", nil, &sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Execute runs one request remotely and blocks for its outcome. It is
// shaped to plug into runner.Options.Execute, so a local runner keeps
// its pool, dedupe, stats and telemetry semantics while every actual
// simulation happens on the server.
//
// Execute self-heals across whole-sweep loss: when the server crashed
// between admitting the sweep and persisting its result — the sweep id
// vanished, or the job finished but its result document was lost or
// corrupted — the request is resubmitted (bounded by Resubmits).
// Submissions dedupe by content digest, so a resubmission is free when
// the result actually survived.
func (c *Client) Execute(q runner.Request) (*runner.Outcome, error) {
	return c.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute bounded by ctx: cancellation aborts the
// remote wait promptly (between poll sleeps, not after one) and
// best-effort cancels the sweep server-side so the fleet stops burning
// cycles on work nobody will collect.
func (c *Client) ExecuteContext(ctx context.Context, q runner.Request) (*runner.Outcome, error) {
	resubmits := c.Resubmits
	if resubmits < 0 {
		resubmits = 0
	}
	var lastErr error
	for attempt := 0; attempt <= resubmits; attempt++ {
		out, retryAgain, err := c.executeOnce(ctx, q)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryAgain {
			break
		}
	}
	return nil, lastErr
}

// ExecuteInterruptible is ExecuteContext shaped for
// runner.Options.ExecuteInterruptible: the interrupt channel closing
// cancels the remote wait, and the interruption reports as an error
// wrapping machine.ErrInterrupted — what the runner's cancellation and
// preemption classification expects.
func (c *Client) ExecuteInterruptible(q runner.Request, interrupt <-chan struct{}) (*runner.Outcome, error) {
	if interrupt == nil {
		return c.ExecuteContext(context.Background(), q)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-interrupt:
			cancel()
		case <-done:
		}
	}()
	out, err := c.ExecuteContext(ctx, q)
	if err != nil {
		select {
		case <-interrupt:
			return nil, fmt.Errorf("service: remote job abandoned: %w", machine.ErrInterrupted)
		default:
		}
	}
	return out, err
}

// executeOnce submits, waits, and fetches one request's result. The
// middle return reports whether a resubmission could heal the failure.
func (c *Client) executeOnce(ctx context.Context, q runner.Request) (*runner.Outcome, bool, error) {
	st, err := c.SubmitContext(ctx, q)
	if err != nil {
		return nil, false, err
	}
	id := st.ID
	wctx := ctx
	if c.Deadline > 0 {
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(ctx, c.Deadline)
		defer cancel()
	}
	if st, err = c.WaitContext(wctx, id); err != nil {
		if ctx.Err() != nil {
			// The caller abandoned the job mid-wait: tell the server so the
			// work cancels instead of running to completion unobserved.
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			c.CancelContext(cctx, id)
			cancel()
			return nil, false, err
		}
		// A sweep id the server no longer knows means it restarted before
		// persisting the sweep document; resubmitting recreates the work.
		return nil, errors.Is(err, ErrNotFound), err
	}
	if len(st.Jobs) != 1 {
		return nil, false, fmt.Errorf("service: sweep %s: expected 1 job, got %d", st.ID, len(st.Jobs))
	}
	j := st.Jobs[0]
	switch j.State {
	case JobDone:
		data, err := c.ResultBytesContext(ctx, j.Digest)
		if err != nil {
			// Done without a readable document: the result file was lost
			// to a crash or storage fault. A resubmission re-runs it.
			return nil, errors.Is(err, ErrNotFound), err
		}
		out, _, derr := runner.DecodeEntry(data)
		if derr != nil {
			return nil, true, derr
		}
		return out, false, nil
	case JobFailed:
		return nil, false, fmt.Errorf("service: remote job %s failed: %s", j.Digest, j.Error)
	case JobCancelled:
		return nil, false, fmt.Errorf("service: remote job %s: %w", j.Digest, machine.ErrInterrupted)
	case JobExpired:
		return nil, false, fmt.Errorf("service: remote job %s: %w (sweep deadline passed)", j.Digest, ErrWaitTimeout)
	}
	return nil, false, fmt.Errorf("service: job %s ended in state %q", j.Digest, j.State)
}

// Lease pulls one job from the server's work queue under a TTL lease
// (the server default when ttl is zero). A nil grant with a nil error
// means no work is pending right now — the worker's cue to idle-poll.
func (c *Client) Lease(ctx context.Context, worker string, ttl time.Duration) (*LeaseGrant, error) {
	body := LeaseRequest{Schema: runner.WireSchema, Worker: worker}
	if ttl > 0 {
		body.TTLSeconds = ttl.Seconds()
	}
	var data []byte
	if err := c.do(ctx, http.MethodPost, "/v1/work/lease", body, &data); err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, nil // 204: nothing to do
	}
	var g LeaseGrant
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("service: decoding lease grant: %w", err)
	}
	return &g, nil
}

// Heartbeat extends a lease, optionally shipping the job's latest
// checkpoint document, or — with release — hands the job back.
func (c *Client) Heartbeat(ctx context.Context, digest, worker string, fence uint64, ckpt []byte, release bool) (*HeartbeatReply, error) {
	body := HeartbeatRequest{
		Schema: runner.WireSchema, Worker: worker, Fence: fence,
		Checkpoint: ckpt, Release: release,
	}
	var hb HeartbeatReply
	if err := c.do(ctx, http.MethodPost, "/v1/work/"+digest+"/heartbeat", body, &hb); err != nil {
		return nil, err
	}
	return &hb, nil
}

// Commit settles a leased job: entry is the canonical cache document
// (runner.EncodeEntry bytes) on success, errMsg (plus a transient
// errKind, "panicked" or "stalled") on failure. Safe to re-send on an
// unknown transport fate — the server acknowledges byte-identical
// duplicates idempotently.
func (c *Client) Commit(ctx context.Context, digest, worker string, fence uint64, entry []byte, errMsg, errKind string) (*CommitReply, error) {
	body := CommitRequest{
		Schema: runner.WireSchema, Worker: worker, Fence: fence,
		Entry: entry, Error: errMsg, ErrorKind: errKind,
	}
	var cr CommitReply
	if err := c.do(ctx, http.MethodPost, "/v1/work/"+digest+"/result", body, &cr); err != nil {
		return nil, err
	}
	return &cr, nil
}
