package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynamo/internal/faultio"
	"dynamo/internal/machine"
	"dynamo/internal/runner"
	"dynamo/internal/telemetry"
)

// ErrNotFound marks a sweep id or job digest the service does not know.
var ErrNotFound = errors.New("service: not found")

// ErrDraining rejects submissions while the service is shutting down.
var ErrDraining = errors.New("service: draining, not accepting sweeps")

// ErrEmptySweep rejects a submission with no requests.
var ErrEmptySweep = errors.New("service: a sweep needs at least one request")

// ErrOverloaded rejects a submission the bounded admission queue cannot
// hold (HTTP 429 on the wire, kind "overloaded"). Backpressure, not
// failure: the client's jittered backoff retries it.
var ErrOverloaded = errors.New("service: overloaded, admission queue full")

// Options configures a Service.
type Options struct {
	// CacheDir is the content-addressed result store the service serves
	// from and persists sweeps under (required: a service without a cache
	// has nothing durable to serve).
	CacheDir string
	// Jobs bounds concurrently executing simulations (default GOMAXPROCS).
	Jobs int
	// Retries, CkptEvery: see runner.Options.
	Retries   int
	CkptEvery uint64
	// Resume reloads persisted sweeps from CacheDir/sweeps and restores
	// interrupted jobs from their checkpoints.
	Resume bool
	// Telemetry, when non-nil, is the caller's surface; otherwise the
	// service creates (and closes) a journal-less one.
	Telemetry *telemetry.Sweep
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// MaxQueued bounds admitted-but-unfinished jobs across live sweeps —
	// the admission queue. A submission that would push past it is
	// rejected with ErrOverloaded before any of its jobs are admitted
	// (all-or-nothing, like validation). Zero means unbounded.
	MaxQueued int
	// Preempt enables checkpoint-based time-slicing: when the pool is
	// full and some live sweep is starved (queued work, nothing running),
	// one running job from the best-fed sweep is asked to yield at its
	// next checkpoint boundary, re-queues, and later resumes from its
	// persisted checkpoint. Requires CkptEvery > 0 to preserve progress;
	// without it a preempted job restarts from event zero.
	Preempt bool
	// PreemptSlice is the minimum time a job runs before it may be
	// preempted (default 500ms). A floor, not a quantum: preemption only
	// triggers on starvation, and the floor keeps rapid re-preemption
	// from eating a resumed job's replay time.
	PreemptSlice time.Duration
	// FS replaces the file plane beneath the sweep documents and the
	// runner's cache (fault injection); nil selects the real filesystem.
	FS faultio.FS
	// Workers switches execution from in-process to the worker fleet:
	// jobs park in a lease table and external dynamo-worker processes
	// pull them through the /v1/work routes under TTL leases. Scheduling,
	// dedupe, retries, cancellation and preemption are unchanged — only
	// the simulation itself moves off-process.
	Workers bool
	// LeaseTTL bounds how long a worker may go without heartbeating
	// before its lease is revoked and the job requeued (default 10s).
	// Only meaningful with Workers.
	LeaseTTL time.Duration
}

// job is one distinct request inside a sweep. Requests in a batch that
// normalize to the same digest share one job.
type job struct {
	req    runner.Request
	digest string
	idx    int // position in sweepState.jobs, for cursor rewind
	state  string
	cached bool
	errMsg string
	// task is the in-flight runner task while state is JobRunning;
	// preempting marks a yield request already sent; startedAt is when
	// the job was admitted (the preemption floor measures from here).
	task       *runner.Task
	preempting bool
	startedAt  time.Time
}

// sweepState is one submitted sweep: its distinct jobs in admission
// order, plus one entry per submitted request (aliasing into jobs).
type sweepState struct {
	id        string
	jobs      []*job
	entries   []*job
	next      int // admission cursor into jobs
	cancelled bool
	// deadline, when nonzero, is the absolute instant the sweep expires;
	// timer fires expire() then, and expired latches the result.
	deadline time.Time
	timer    *time.Timer
	expired  bool
}

// jobCtl is the per-digest cancellation control for in-flight jobs:
// every sweep currently running this digest holds an owner reference,
// and the interrupt channel closes only when the last owner cancels (or
// the service drains). The runner dedupes concurrent submissions of one
// digest into one task, so sharing the channel per digest matches what
// actually executes.
type jobCtl struct {
	ch     chan struct{}
	owners map[string]int
	closed bool
}

// Service is the sweep control plane over one runner. See the package
// comment for the wire API; Serve attaches the HTTP front end.
type Service struct {
	opts   Options
	r      *runner.Runner
	fs     faultio.FS
	tel    *telemetry.Sweep
	ownTel bool
	lt     *leaseTable // nil unless Options.Workers

	mu       sync.Mutex
	cond     *sync.Cond
	sweeps   map[string]*sweepState
	order    []string // sweep ids in submission order (round-robin ring)
	rr       int      // round-robin cursor into order
	ctl      map[string]*jobCtl
	inflight int
	draining bool
	seq      int
	// preemptKick marks a scheduled dispatcher wake-up for a starved
	// sweep whose victim was still inside its preemption floor.
	preemptKick bool
	wg          sync.WaitGroup
}

// New builds a service, reloading persisted sweeps when Options.Resume is
// set, and starts its admission dispatcher.
func New(o Options) (*Service, error) {
	if o.CacheDir == "" {
		return nil, errors.New("service: a cache directory is required")
	}
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	tel := o.Telemetry
	ownTel := false
	if tel == nil {
		tel = telemetry.NewSweep(telemetry.SweepOptions{})
		ownTel = true
	}
	if o.PreemptSlice <= 0 {
		o.PreemptSlice = 500 * time.Millisecond
	}
	fs := o.FS
	if fs == nil {
		fs = faultio.OS{}
	}
	s := &Service{
		opts:   o,
		fs:     fs,
		tel:    tel,
		ownTel: ownTel,
		sweeps: make(map[string]*sweepState),
		ctl:    make(map[string]*jobCtl),
	}
	s.cond = sync.NewCond(&s.mu)
	ro := runner.Options{
		Jobs:      o.Jobs,
		CacheDir:  o.CacheDir,
		Log:       o.Log,
		Retries:   o.Retries,
		CkptEvery: o.CkptEvery,
		Resume:    o.Resume,
		Telemetry: tel,
		FS:        o.FS,
	}
	if o.Workers {
		s.lt = newLeaseTable(leaseTableOptions{
			Dir:       o.CacheDir,
			FS:        fs,
			Telemetry: tel,
			Log:       o.Log,
			TTL:       o.LeaseTTL,
			CkptEvery: o.CkptEvery,
		})
		ro.ExecuteInterruptible = s.lt.execute
	}
	s.r = runner.New(ro)
	if o.Resume {
		if err := s.reload(); err != nil {
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Runner exposes the underlying sweep engine (for stats).
func (s *Service) Runner() *runner.Runner { return s.r }

// Telemetry exposes the service's telemetry surface.
func (s *Service) Telemetry() *telemetry.Sweep { return s.tel }

// sweepDoc is one persisted sweep: <cacheDir>/sweeps/<id>.json. It holds
// the submitted requests verbatim — job states are never persisted,
// because the content-addressed cache already knows which jobs finished:
// on resume every job re-admits, finished ones land as instant disk hits,
// and interrupted ones restore from their checkpoints.
type sweepDoc struct {
	Schema    int    `json:"schema"`
	ID        string `json:"id"`
	Cancelled bool   `json:"cancelled,omitempty"`
	Expired   bool   `json:"expired,omitempty"`
	// DeadlineUnixNano is the sweep's absolute deadline, persisted so a
	// restart honors (or immediately fires) it rather than forgetting it.
	DeadlineUnixNano int64            `json:"deadline_unix_nano,omitempty"`
	Requests         []runner.Request `json:"requests"`
}

// sweepDocSchema versions the persisted sweep file format.
const sweepDocSchema = 1

func (s *Service) sweepDir() string { return filepath.Join(s.opts.CacheDir, "sweeps") }

// persistLocked writes a sweep's document atomically (mu held). A write
// failure degrades durability — the sweep still runs — and is logged.
func (s *Service) persistLocked(sw *sweepState) {
	reqs := make([]runner.Request, len(sw.entries))
	for i, j := range sw.entries {
		reqs[i] = j.req
	}
	doc := sweepDoc{Schema: sweepDocSchema, ID: sw.id, Cancelled: sw.cancelled, Expired: sw.expired, Requests: reqs}
	if !sw.deadline.IsZero() {
		doc.DeadlineUnixNano = sw.deadline.UnixNano()
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err == nil {
		// The service's file plane (faultio.FS): fsync-hardened atomic
		// writes by default, injectable faults under test.
		err = s.fs.WriteFileAtomic(s.sweepDir(), filepath.Join(s.sweepDir(), sw.id+".json"), append(data, '\n'))
	}
	if err != nil && s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, "  sweep %s not persisted: %v\n", sw.id, err)
	}
}

// reload restores persisted sweeps (oldest id first). Every non-cancelled
// job re-enters the admission queue: the runner turns already-finished
// ones into instant disk hits and resumes interrupted ones from their
// checkpoints, so nothing re-simulates that does not have to.
func (s *Service) reload() error {
	ents, err := os.ReadDir(s.sweepDir())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("service: reloading sweeps: %w", err)
	}
	for _, de := range ents {
		name := de.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := s.fs.ReadFile(filepath.Join(s.sweepDir(), name))
		if err != nil {
			continue
		}
		var doc sweepDoc
		if json.Unmarshal(data, &doc) != nil || doc.Schema != sweepDocSchema || doc.ID == "" {
			if s.opts.Log != nil {
				fmt.Fprintf(s.opts.Log, "  sweep file %s unusable, skipped\n", name)
			}
			continue
		}
		sw := buildSweep(doc.ID, doc.Requests)
		sw.cancelled = doc.Cancelled
		sw.expired = doc.Expired
		if doc.DeadlineUnixNano != 0 {
			sw.deadline = time.Unix(0, doc.DeadlineUnixNano)
		}
		switch {
		case sw.cancelled:
			for _, j := range sw.jobs {
				j.state = JobCancelled
			}
		case sw.expired:
			for _, j := range sw.jobs {
				j.state = JobExpired
			}
		case !sw.deadline.IsZero():
			// The deadline survived the restart: re-arm it, or fire it now
			// if it lapsed while the service was down.
			if until := time.Until(sw.deadline); until > 0 {
				id := sw.id
				sw.timer = time.AfterFunc(until, func() { s.expire(id) })
			} else {
				sw.expired = true
				for _, j := range sw.jobs {
					j.state = JobExpired
				}
				s.tel.DeadlineExpired(uint64(len(sw.jobs)))
			}
		}
		s.sweeps[sw.id] = sw
		s.order = append(s.order, sw.id)
		if n := idSeq(doc.ID); n > s.seq {
			s.seq = n
		}
	}
	return nil
}

// idSeq extracts the numeric sequence from a sweep id ("s000012-ab34cd56").
func idSeq(id string) int {
	rest, ok := strings.CutPrefix(id, "s")
	if !ok {
		return 0
	}
	num, _, _ := strings.Cut(rest, "-")
	n, _ := strconv.Atoi(num)
	return n
}

// sweepID names a sweep: a monotone sequence number plus a content prefix
// over its job digests, so ids are stable across a persist/reload cycle
// and readable in logs.
func sweepID(seq int, jobs []*job) string {
	h := sha256.New()
	for _, j := range jobs {
		io.WriteString(h, j.digest)
		io.WriteString(h, "\n")
	}
	return fmt.Sprintf("s%06d-%s", seq, hex.EncodeToString(h.Sum(nil))[:8])
}

// buildSweep expands a request batch into a sweep: requests that
// normalize to the same digest collapse into one job (the runner would
// dedupe them anyway; collapsing here keeps the status counts honest).
func buildSweep(id string, reqs []runner.Request) *sweepState {
	sw := &sweepState{id: id}
	seen := make(map[string]*job)
	for _, q := range reqs {
		d := q.Digest()
		j, ok := seen[d]
		if !ok {
			j = &job{req: q, digest: d, idx: len(sw.jobs), state: JobQueued}
			seen[d] = j
			sw.jobs = append(sw.jobs, j)
		}
		sw.entries = append(sw.entries, j)
	}
	return sw
}

// Submit validates and admits one sweep with no deadline, returning its
// initial status (every job queued). Validation is all-or-nothing: one
// bad request rejects the batch, identified by its index.
func (s *Service) Submit(reqs []runner.Request) (*SweepStatus, error) {
	return s.SubmitDeadline(reqs, 0)
}

// SubmitDeadline is Submit with a wall-clock bound: once deadline (when
// positive) elapses, the sweep's still-queued jobs expire and in-flight
// ones are interrupted at their next checkpoint boundary. The admission
// queue is also enforced here: a batch that would push the pending-job
// count past Options.MaxQueued is rejected whole with ErrOverloaded.
func (s *Service) SubmitDeadline(reqs []runner.Request, deadline time.Duration) (*SweepStatus, error) {
	if len(reqs) == 0 {
		return nil, ErrEmptySweep
	}
	if deadline < 0 {
		return nil, &runner.FieldError{
			Field: "deadline_seconds", Value: deadline.String(),
			Err: fmt.Errorf("%w: deadline must not be negative", runner.ErrBadField),
		}
	}
	for i, q := range reqs {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("service: request %d: %w", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	sw := buildSweep("", reqs)
	if max := s.opts.MaxQueued; max > 0 {
		if pending := s.pendingLocked(); pending+len(sw.jobs) > max {
			s.tel.Overloaded()
			return nil, fmt.Errorf("%w: %d jobs pending + %d submitted > limit %d",
				ErrOverloaded, pending, len(sw.jobs), max)
		}
	}
	s.seq++
	sw.id = sweepID(s.seq, sw.jobs)
	if deadline > 0 {
		sw.deadline = time.Now().Add(deadline)
		id := sw.id
		sw.timer = time.AfterFunc(deadline, func() { s.expire(id) })
	}
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	s.persistLocked(sw)
	s.cond.Broadcast()
	return s.statusLocked(sw), nil
}

// pendingLocked counts admitted-but-unfinished jobs across live sweeps —
// the admission queue's occupancy (mu held).
func (s *Service) pendingLocked() int {
	n := 0
	for _, sw := range s.sweeps {
		if sw.cancelled || sw.expired {
			continue
		}
		for _, j := range sw.jobs {
			if j.state == JobQueued || j.state == JobRunning {
				n++
			}
		}
	}
	return n
}

// expire marks a sweep past its deadline: still-queued jobs expire in
// place, in-flight jobs are interrupted at their next checkpoint boundary
// (classified as expired when they land), and the sweep's status turns
// terminal. Idempotent; a no-op for cancelled sweeps.
func (s *Service) expire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.sweeps[id]
	if sw == nil || sw.cancelled || sw.expired {
		return
	}
	sw.expired = true
	n := uint64(0)
	for _, j := range sw.jobs {
		if j.state == JobQueued {
			j.state = JobExpired
			n++
		}
	}
	s.tel.DeadlineExpired(n)
	s.releaseOwnersLocked(id)
	s.persistLocked(sw)
	s.cond.Broadcast()
}

// releaseOwnersLocked drops a sweep's ownership of every in-flight job
// control, closing interrupt channels whose last owner it was (mu held).
func (s *Service) releaseOwnersLocked(id string) {
	for _, ctl := range s.ctl {
		if _, ok := ctl.owners[id]; !ok {
			continue
		}
		delete(ctl.owners, id)
		if len(ctl.owners) == 0 && !ctl.closed {
			ctl.closed = true
			close(ctl.ch)
		}
	}
}

// Status reports a sweep's current standing.
func (s *Service) Status(id string) (*SweepStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.sweeps[id]
	if sw == nil {
		return nil, fmt.Errorf("%w: sweep %s", ErrNotFound, id)
	}
	return s.statusLocked(sw), nil
}

// Cancel cancels a sweep: queued jobs never run, in-flight jobs are
// interrupted (capturing a final checkpoint when checkpointing is on) —
// unless another live sweep also owns them, in which case they keep
// running for that sweep. Cancelling an already-cancelled sweep is a
// no-op that reports the current status.
func (s *Service) Cancel(id string) (*SweepStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := s.sweeps[id]
	if sw == nil {
		return nil, fmt.Errorf("%w: sweep %s", ErrNotFound, id)
	}
	if !sw.cancelled {
		sw.cancelled = true
		if sw.timer != nil {
			sw.timer.Stop()
		}
		for _, j := range sw.jobs {
			if j.state == JobQueued {
				j.state = JobCancelled
			}
		}
		s.releaseOwnersLocked(id)
		s.persistLocked(sw)
		s.cond.Broadcast()
	}
	return s.statusLocked(sw), nil
}

// digestRe is the shape of a canonical content digest (hex sha256); a
// path parameter that does not match names nothing and is also never
// allowed near the filesystem.
var digestRe = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Result returns the raw persisted cache document for a finished job —
// the same bytes a local sweep writes to <cacheDir>/<digest>.json, so
// remote and local results are byte-identical. The document is validated
// before serving: a torn or corrupted file (a crash, a full disk, an
// injected fault) is evicted and the result re-materialized from the
// runner's in-memory outcome when it has one — so a storage fault
// degrades to a re-run, never to serving garbage.
func (s *Service) Result(digest string) ([]byte, error) {
	if !digestRe.MatchString(digest) {
		return nil, fmt.Errorf("%w: job %q", ErrNotFound, digest)
	}
	path := filepath.Join(s.opts.CacheDir, digest+".json")
	if data, err := os.ReadFile(path); err == nil {
		if _, _, derr := runner.DecodeEntry(data); derr == nil {
			return data, nil
		}
		// Unusable on disk; drop it so nothing downstream trusts it.
		os.Remove(path)
	}
	if data, err := s.r.EntryBytes(digest); err == nil {
		return data, nil
	}
	return nil, fmt.Errorf("%w: job %s", ErrNotFound, digest)
}

// SpanOf returns a finished job's trace span while the tracer still
// retains it.
func (s *Service) SpanOf(digest string) (Span, error) {
	if sp, ok := s.tel.Tracer().Find(digest); ok {
		return sp, nil
	}
	return Span{}, fmt.Errorf("%w: span for job %s", ErrNotFound, digest)
}

// Lease grants the oldest pending job to a worker under a TTL lease (the
// server default when ttl is zero, clamped otherwise), returning (nil,
// nil) when no work is pending. ErrNoWorkers without Options.Workers.
func (s *Service) Lease(worker string, ttl time.Duration) (*LeaseGrant, error) {
	if s.lt == nil {
		return nil, ErrNoWorkers
	}
	return s.lt.lease(worker, ttl)
}

// WorkHeartbeat extends a live lease, optionally storing a shipped
// checkpoint, or — with release — hands the job back to the queue.
func (s *Service) WorkHeartbeat(digest, worker string, fence uint64, ckpt []byte, release bool) (*HeartbeatReply, error) {
	if s.lt == nil {
		return nil, ErrNoWorkers
	}
	return s.lt.heartbeat(digest, worker, fence, ckpt, release)
}

// WorkCommit settles a leased job under its fencing token: entry bytes on
// success (persisted verbatim), an error message (plus transient kind) on
// failure. At-most-once per digest; see leaseTable.commit.
func (s *Service) WorkCommit(digest, worker string, fence uint64, entry []byte, errMsg, errKind string) (*CommitReply, error) {
	if s.lt == nil {
		return nil, ErrNoWorkers
	}
	return s.lt.commit(digest, worker, fence, entry, errMsg, errKind)
}

// statusLocked snapshots one sweep (mu held).
func (s *Service) statusLocked(sw *sweepState) *SweepStatus {
	st := &SweepStatus{Schema: runner.WireSchema, ID: sw.id, Retries: s.r.Stats().Retries}
	for _, j := range sw.entries {
		st.Jobs = append(st.Jobs, JobStatus{
			Digest: j.digest, Request: j.req, State: j.state,
			Cached: j.cached, Error: j.errMsg,
		})
		switch j.state {
		case JobQueued:
			st.Queued++
		case JobRunning:
			st.Running++
		case JobDone:
			st.Done++
		case JobFailed:
			st.Failed++
		case JobCancelled:
			st.Cancelled++
		case JobExpired:
			st.Expired++
		}
	}
	switch {
	case sw.cancelled:
		st.State = SweepCancelled
	case sw.expired:
		st.State = SweepExpired
	case st.Queued+st.Running > 0:
		if st.Running+st.Done+st.Failed > 0 {
			st.State = SweepRunning
		} else {
			st.State = SweepQueued
		}
	case st.Failed > 0:
		st.State = SweepFailed
	case st.Cancelled > 0:
		st.State = SweepCancelled
	default:
		st.State = SweepDone
	}
	if remaining := st.Queued + st.Running; remaining > 0 {
		p := s.tel.Progress()
		if fin := p.Finished(); fin > 0 && p.ElapsedSeconds > 0 {
			workers := p.Workers
			if workers < 1 {
				workers = 1
			}
			st.ETASeconds = p.ElapsedSeconds / float64(fin) * float64(remaining) / float64(workers)
		}
	}
	return st
}

// dispatch is the admission loop: it fills the worker pool round-robin
// across sweeps — one job from each sweep with work, in submission order
// — so a thousand-job sweep cannot starve a one-job sweep submitted
// after it. It exits when the service drains.
func (s *Service) dispatch() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.draining {
			s.mu.Unlock()
			return
		}
		j, sw := s.nextLocked()
		if j == nil {
			if s.opts.Preempt {
				s.maybePreemptLocked()
			}
			s.cond.Wait()
			continue
		}
		j.state = JobRunning
		j.startedAt = time.Now()
		s.inflight++
		ctl := s.ctl[j.digest]
		if ctl == nil || ctl.closed {
			ctl = &jobCtl{ch: make(chan struct{}), owners: make(map[string]int)}
			s.ctl[j.digest] = ctl
		}
		ctl.owners[sw.id]++
		s.mu.Unlock()
		t := s.r.SubmitInterruptible(j.req, ctl.ch)
		s.wg.Add(1)
		go s.await(t, j, sw.id, ctl)
		s.mu.Lock()
		if j.state == JobRunning {
			j.task = t
		}
	}
}

// maybePreemptLocked asks one running job to yield when the pool is full
// and some live sweep is starved — queued work, nothing of its own
// running — while another sweep holds workers (mu held). The victim is a
// running job from the sweep with the most in flight, and at most one
// preemption is pending at a time, so time-slicing converges instead of
// thrashing. A victim younger than Options.PreemptSlice is left to run;
// a timer re-kicks the dispatcher when the floor passes.
func (s *Service) maybePreemptLocked() {
	if s.inflight < s.opts.Jobs {
		return
	}
	starved := false
	for _, sw := range s.sweeps {
		if sw.cancelled || sw.expired {
			continue
		}
		queued, running := 0, 0
		for _, j := range sw.jobs {
			switch j.state {
			case JobQueued:
				queued++
			case JobRunning:
				running++
			}
			if j.preempting {
				// One yield already in flight; wait for it to land.
				return
			}
		}
		if queued > 0 && running == 0 {
			starved = true
		}
	}
	if !starved {
		return
	}
	var victim *job
	best, youngest := 0, false
	for _, id := range s.order {
		sw := s.sweeps[id]
		if sw.cancelled || sw.expired {
			continue
		}
		running := 0
		for _, j := range sw.jobs {
			if j.state == JobRunning {
				running++
			}
		}
		if running <= best {
			continue
		}
		for _, j := range sw.jobs {
			if j.state != JobRunning || j.task == nil {
				continue
			}
			if time.Since(j.startedAt) < s.opts.PreemptSlice {
				youngest = true
				continue
			}
			best, victim = running, j
			break
		}
	}
	if victim == nil {
		if youngest && !s.preemptKick {
			// Every candidate is inside its preemption floor: check back
			// once the floor can have passed.
			s.preemptKick = true
			time.AfterFunc(s.opts.PreemptSlice/2+time.Millisecond, func() {
				s.mu.Lock()
				s.preemptKick = false
				s.cond.Broadcast()
				s.mu.Unlock()
			})
		}
		return
	}
	victim.preempting = true
	victim.task.Preempt()
}

// nextLocked picks the next job to admit (mu held): round-robin over
// sweeps, skipping cancelled and exhausted ones, bounded by the pool.
func (s *Service) nextLocked() (*job, *sweepState) {
	if s.inflight >= s.opts.Jobs {
		return nil, nil
	}
	n := len(s.order)
	for k := 0; k < n; k++ {
		sw := s.sweeps[s.order[(s.rr+k)%n]]
		if sw.cancelled || sw.expired {
			continue
		}
		for sw.next < len(sw.jobs) && sw.jobs[sw.next].state != JobQueued {
			sw.next++
		}
		if sw.next >= len(sw.jobs) {
			continue
		}
		j := sw.jobs[sw.next]
		sw.next++
		s.rr = (s.rr + k + 1) % n
		return j, sw
	}
	return nil, nil
}

// await collects one admitted job's outcome.
func (s *Service) await(t *runner.Task, j *job, owner string, ctl *jobCtl) {
	defer s.wg.Done()
	out, err := t.Wait()
	s.mu.Lock()
	s.inflight--
	sw := s.sweeps[owner]
	j.task = nil
	j.preempting = false
	switch {
	case err == nil:
		j.state = JobDone
		j.cached = out.Cached
	case errors.Is(err, runner.ErrPreempted):
		switch {
		case sw != nil && sw.cancelled:
			j.state = JobCancelled
		case sw != nil && sw.expired:
			j.state = JobExpired
			s.tel.DeadlineExpired(1)
		default:
			// The job yielded its slice: back to the queue, and the
			// admission cursor rewinds so round-robin revisits it. Its
			// persisted checkpoint resumes it on re-admission.
			j.state = JobQueued
			if sw != nil && j.idx < sw.next {
				sw.next = j.idx
			}
		}
	case errors.Is(err, machine.ErrInterrupted):
		if sw != nil && sw.expired {
			j.state = JobExpired
			s.tel.DeadlineExpired(1)
		} else {
			j.state = JobCancelled
		}
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
	}
	if n := ctl.owners[owner]; n > 1 {
		ctl.owners[owner] = n - 1
	} else {
		delete(ctl.owners, owner)
	}
	if len(ctl.owners) == 0 && s.ctl[j.digest] == ctl {
		delete(s.ctl, j.digest)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Wait blocks until every admitted sweep is quiescent: nothing queued in
// a live sweep, nothing in flight. Mostly for tests and one-shot hosts.
func (s *Service) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.idleLocked() {
		s.cond.Wait()
	}
}

func (s *Service) idleLocked() bool {
	if s.inflight > 0 {
		return false
	}
	for _, sw := range s.sweeps {
		if sw.cancelled || sw.expired {
			continue
		}
		for _, j := range sw.jobs {
			if j.state == JobQueued || j.state == JobRunning {
				return false
			}
		}
	}
	return true
}

// Drain stops admission and interrupts every in-flight job so it
// checkpoints, then waits for the pool to empty. Queued jobs stay in
// their persisted sweep documents; a restart with Options.Resume picks
// them back up. Drain is idempotent.
func (s *Service) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, sw := range s.sweeps {
			if sw.timer != nil {
				sw.timer.Stop()
			}
		}
		for _, ctl := range s.ctl {
			if !ctl.closed {
				ctl.closed = true
				close(ctl.ch)
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.lt != nil {
		// Stop fleet dispatch after the interrupt channels closed: every
		// parked job finishes with machine.ErrInterrupted, so the await
		// goroutines below can drain. Queued jobs stay in their persisted
		// sweep documents; shipped checkpoints stay on disk for resume.
		s.lt.close()
	}
	s.wg.Wait()
}

// Close drains the service and releases the runner's and (when owned)
// the telemetry surface's resources.
func (s *Service) Close() error {
	s.Drain()
	err := s.r.Close()
	if s.ownTel {
		if e := s.tel.Close(); err == nil {
			err = e
		}
	}
	return err
}
