package perf

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNilProfilerIsFree asserts the disabled path's contract: a nil
// profiler's Exec adds zero allocations (and the other methods are
// nil-safe no-ops).
func TestNilProfilerIsFree(t *testing.T) {
	var p *Profiler
	fn := func() {}
	if allocs := testing.AllocsPerRun(1000, func() {
		p.Exec(KindCPU, 3, fn)
	}); allocs != 0 {
		t.Fatalf("nil profiler Exec allocates %v per run, want 0", allocs)
	}
	p.Start()
	if got := p.Events(); got != 0 {
		t.Fatalf("nil profiler Events() = %d, want 0", got)
	}
	if r := p.Report(); r != nil {
		t.Fatalf("nil profiler Report() = %+v, want nil", r)
	}
	if s := (*Report)(nil).Summary(); s != "" {
		t.Fatalf("nil report Summary() = %q, want empty", s)
	}
}

// TestEnabledProfilerExecIsAllocFree asserts the hot path allocates
// nothing either: all state is fixed-size arrays updated in place.
func TestEnabledProfilerExecIsAllocFree(t *testing.T) {
	p := New(4)
	p.Start()
	fn := func() {}
	if allocs := testing.AllocsPerRun(1000, func() {
		p.Exec(KindRN, 5, fn)
	}); allocs != 0 {
		t.Fatalf("enabled profiler Exec allocates %v per run, want 0", allocs)
	}
}

func TestCountsAndSampling(t *testing.T) {
	p := New(8)
	p.Start()
	ran := 0
	fn := func() { ran++ }
	for i := 0; i < 100; i++ {
		p.Exec(KindCPU, i%10, fn)
	}
	for i := 0; i < 60; i++ {
		p.Exec(KindHN, 2, fn)
	}
	if ran != 160 {
		t.Fatalf("fn ran %d times, want 160", ran)
	}
	if p.Events() != 160 {
		t.Fatalf("Events() = %d, want 160", p.Events())
	}
	r := p.Report()
	if r.Events != 160 || r.SampleStride != 8 {
		t.Fatalf("Report events=%d stride=%d, want 160/8", r.Events, r.SampleStride)
	}
	byKind := map[string]KindStat{}
	var sampledTotal uint64
	for _, k := range r.Kinds {
		byKind[k.Kind] = k
		sampledTotal += k.SampledEvents
	}
	if byKind["cpu"].Events != 100 || byKind["hn"].Events != 60 {
		t.Fatalf("per-kind counts cpu=%d hn=%d, want 100/60", byKind["cpu"].Events, byKind["hn"].Events)
	}
	// Sampling fires on every stride-th event overall: 160/8 = 20 samples,
	// split across kinds by arrival order.
	if sampledTotal != 20 {
		t.Fatalf("sampled %d events total, want 160/8 = 20", sampledTotal)
	}
	if r.QueueDepthMax != 9 {
		t.Fatalf("QueueDepthMax = %d, want 9", r.QueueDepthMax)
	}
	if r.QueueDepthAvg < 0 || r.QueueDepthAvg > 9 {
		t.Fatalf("QueueDepthAvg = %v out of range", r.QueueDepthAvg)
	}
}

func TestReportSharesNormalize(t *testing.T) {
	p := New(1) // sample every event so every kind gets timing data
	p.Start()
	work := func() {
		s := 0
		for i := 0; i < 1000; i++ {
			s += i
		}
		_ = s
	}
	for i := 0; i < 50; i++ {
		p.Exec(KindCPU, 1, work)
		p.Exec(KindNoC, 1, work)
	}
	r := p.Report()
	var total float64
	for _, k := range r.Kinds {
		if k.SampledEvents != k.Events {
			t.Fatalf("stride 1 must sample every event: %s sampled %d of %d", k.Kind, k.SampledEvents, k.Events)
		}
		total += k.EstShare
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("EstShare sums to %v, want 1", total)
	}
	if r.EventsPerSec <= 0 || r.NSPerEvent <= 0 {
		t.Fatalf("derived rates not positive: %v events/s, %v ns/event", r.EventsPerSec, r.NSPerEvent)
	}
}

func TestDefaultStride(t *testing.T) {
	p := New(0)
	if p.stride != DefaultSampleStride {
		t.Fatalf("New(0) stride = %d, want %d", p.stride, DefaultSampleStride)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindOther: "other", KindCPU: "cpu", KindRN: "rn",
		KindHN: "hn", KindNoC: "noc", KindTick: "tick",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestSummaryAndJSON(t *testing.T) {
	p := New(2)
	p.Start()
	for i := 0; i < 10; i++ {
		p.Exec(KindTick, 0, func() {})
	}
	r := p.Report()
	s := r.Summary()
	for _, frag := range []string{"host perf", "events/s", "event queue", "host heap"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("Summary missing %q:\n%s", frag, s)
		}
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Events != r.Events || back.SampleStride != r.SampleStride {
		t.Fatalf("JSON round-trip mutated report: %+v vs %+v", back, r)
	}
}
