// Package perf is the simulator's host-performance self-profiler: it
// attributes the simulator's own wall-clock time and event counts to the
// subsystems that scheduled each kernel event, tracks events/sec,
// allocation pressure (via runtime/metrics) and event-queue depth, and
// renders a machine-readable Report.
//
// Like the probe bus (package obs), the profiler is designed to cost
// nothing when off: the engine holds a plain *Profiler (nil by default)
// and the disabled path is a single nil check with zero allocations.
// When enabled, every event is counted per Kind (two array increments),
// but wall-clock attribution is *sampled* — only every SampleStride-th
// event is timed with the monotonic clock — so the profiler's own
// overhead stays small enough to leave the measured numbers meaningful.
//
// The profiler only observes: it never schedules events, never perturbs
// ordering, and its sampling decisions depend only on the deterministic
// event counter. Simulated results (cycles, stats, digests) are therefore
// bit-identical with profiling on or off; only host-side measurements —
// which live outside every deterministic digest — differ run to run.
package perf

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sort"
	"strings"
	"time"
)

// Kind labels the subsystem that scheduled a kernel event. Scheduling
// sites pass their kind through Engine.ScheduleKind/AtKind; untagged
// events fall into KindOther.
type Kind uint8

const (
	// KindOther is the default for untagged events.
	KindOther Kind = iota
	// KindCPU covers core timing-model events (instruction advance,
	// store-buffer drain, fences).
	KindCPU
	// KindRN covers request-node events: L1/L2 pipeline stages and snoop
	// handling at the cores' private hierarchies.
	KindRN
	// KindHN covers home-node events: directory pipeline, LLC/HBM data
	// ready, far-AMO ALU execution.
	KindHN
	// KindNoC covers mesh message deliveries.
	KindNoC
	// KindTick covers periodic machinery: predictor aging, interval
	// telemetry sampling, chaos pressure ticks.
	KindTick

	// NumKinds is the number of defined kinds.
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindRN:
		return "rn"
	case KindHN:
		return "hn"
	case KindNoC:
		return "noc"
	case KindTick:
		return "tick"
	}
	return "other"
}

// DefaultSampleStride times one event in every 64. At typical event costs
// (hundreds of ns) this keeps the two clock reads well under 1% of run
// time while still collecting thousands of samples per second per kind.
const DefaultSampleStride = 64

// heapMetrics are the runtime/metrics samples the profiler reads at Start
// and Report to compute allocation and GC deltas.
var heapMetrics = [...]string{
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
	"/gc/cycles/total:gc-cycles",
}

// heapStat is one reading of the heap metrics.
type heapStat struct {
	allocBytes   uint64
	allocObjects uint64
	gcCycles     uint64
}

func readHeap() heapStat {
	s := make([]metrics.Sample, len(heapMetrics))
	for i, name := range heapMetrics {
		s[i].Name = name
	}
	metrics.Read(s)
	return heapStat{
		allocBytes:   s[0].Value.Uint64(),
		allocObjects: s[1].Value.Uint64(),
		gcCycles:     s[2].Value.Uint64(),
	}
}

// Profiler collects host-performance data for one run. Construct with
// New, attach to the engine (sim.Engine.AttachPerf), call Start when the
// run begins and Report when it completes. All methods are safe on a nil
// receiver and then do nothing, so a disabled profiler is a nil check.
//
// A Profiler is single-run and not goroutine-safe: the engine invokes it
// from the single simulation thread. Heap deltas read process-global
// counters, so runs profiled concurrently (a parallel sweep) attribute
// each other's allocations; the bench harness runs profiled cells
// serially for this reason.
type Profiler struct {
	stride uint64

	events  uint64
	counts  [NumKinds]uint64
	sampled [NumKinds]uint64 // events timed per kind
	nanos   [NumKinds]uint64 // sampled wall-clock per kind

	depthMax     int
	depthSum     uint64
	depthSamples uint64

	started   time.Time
	startHeap heapStat
}

// New builds a profiler timing one event in every stride (0 selects
// DefaultSampleStride).
func New(stride uint64) *Profiler {
	if stride == 0 {
		stride = DefaultSampleStride
	}
	return &Profiler{stride: stride}
}

// Start marks the beginning of the measured run: the wall clock and heap
// counters read here anchor every delta in the Report.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.startHeap = readHeap()
	p.started = time.Now()
}

// Exec runs one kernel event fn of the given kind with the event queue at
// depth, counting it and — on sample strides — timing it. A nil profiler
// just runs fn.
func (p *Profiler) Exec(kind Kind, depth int, fn func()) {
	if p == nil {
		fn()
		return
	}
	p.events++
	p.counts[kind]++
	if depth > p.depthMax {
		p.depthMax = depth
	}
	if p.events%p.stride != 0 {
		fn()
		return
	}
	p.depthSum += uint64(depth)
	p.depthSamples++
	t0 := time.Now()
	fn()
	p.nanos[kind] += uint64(time.Since(t0))
	p.sampled[kind]++
}

// Events returns the number of events observed so far.
func (p *Profiler) Events() uint64 {
	if p == nil {
		return 0
	}
	return p.events
}

// KindStat is one subsystem's share of the run.
type KindStat struct {
	// Kind names the subsystem ("cpu", "rn", "hn", "noc", "tick", "other").
	Kind string `json:"kind"`
	// Events is the exact number of events of this kind executed.
	Events uint64 `json:"events"`
	// SampledEvents and SampledNS are the timed subset: SampledNS is the
	// summed wall-clock of SampledEvents individually timed events.
	SampledEvents uint64 `json:"sampled_events"`
	SampledNS     uint64 `json:"sampled_ns"`
	// EstNS extrapolates the sampled mean cost over all Events of this
	// kind; EstShare normalizes EstNS over every kind.
	EstNS    float64 `json:"est_ns"`
	EstShare float64 `json:"est_share"`
}

// Report is the host-performance digest of one run. Wall-clock metrics
// are host-dependent and non-deterministic by nature, so the report is
// deliberately excluded from result snapshots, cache entries and
// checkpoint digests (Result.HostPerf carries it with `json:"-"`).
type Report struct {
	// WallNS is the run's wall-clock from Start to Report; Events the
	// kernel events executed in it.
	WallNS uint64 `json:"wall_ns"`
	Events uint64 `json:"events"`
	// EventsPerSec and NSPerEvent are derived from WallNS/Events.
	EventsPerSec float64 `json:"events_per_sec"`
	NSPerEvent   float64 `json:"ns_per_event"`
	// SampleStride is the attribution sampling period (1 timed event per
	// stride); Kinds the per-subsystem breakdown, largest share first.
	SampleStride uint64     `json:"sample_stride"`
	Kinds        []KindStat `json:"kinds"`
	// QueueDepthMax is the deepest the event queue got (exact);
	// QueueDepthAvg averages the sampled depths.
	QueueDepthMax int     `json:"queue_depth_max"`
	QueueDepthAvg float64 `json:"queue_depth_avg"`
	// Heap deltas over the run, from runtime/metrics (process-global).
	HeapAllocBytes   uint64  `json:"heap_alloc_bytes"`
	HeapAllocObjects uint64  `json:"heap_alloc_objects"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	GCCycles         uint64  `json:"gc_cycles"`
	// GOMAXPROCS records the host parallelism the run executed under.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Report closes the measurement window and renders the digest. A nil
// profiler reports nil.
func (p *Profiler) Report() *Report {
	if p == nil {
		return nil
	}
	wall := time.Since(p.started)
	heap := readHeap()
	r := &Report{
		WallNS:           uint64(wall),
		Events:           p.events,
		SampleStride:     p.stride,
		QueueDepthMax:    p.depthMax,
		HeapAllocBytes:   heap.allocBytes - p.startHeap.allocBytes,
		HeapAllocObjects: heap.allocObjects - p.startHeap.allocObjects,
		GCCycles:         heap.gcCycles - p.startHeap.gcCycles,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
	}
	if p.events > 0 && wall > 0 {
		r.EventsPerSec = float64(p.events) / wall.Seconds()
		r.NSPerEvent = float64(wall.Nanoseconds()) / float64(p.events)
		r.AllocsPerEvent = float64(r.HeapAllocObjects) / float64(p.events)
	}
	if p.depthSamples > 0 {
		r.QueueDepthAvg = float64(p.depthSum) / float64(p.depthSamples)
	}
	var totalEst float64
	for k := Kind(0); k < NumKinds; k++ {
		if p.counts[k] == 0 {
			continue
		}
		ks := KindStat{
			Kind:          k.String(),
			Events:        p.counts[k],
			SampledEvents: p.sampled[k],
			SampledNS:     p.nanos[k],
		}
		if p.sampled[k] > 0 {
			ks.EstNS = float64(p.nanos[k]) / float64(p.sampled[k]) * float64(p.counts[k])
		}
		totalEst += ks.EstNS
		r.Kinds = append(r.Kinds, ks)
	}
	if totalEst > 0 {
		for i := range r.Kinds {
			r.Kinds[i].EstShare = r.Kinds[i].EstNS / totalEst
		}
	}
	sort.Slice(r.Kinds, func(i, j int) bool {
		if r.Kinds[i].EstNS != r.Kinds[j].EstNS {
			return r.Kinds[i].EstNS > r.Kinds[j].EstNS
		}
		return r.Kinds[i].Kind < r.Kinds[j].Kind
	})
	return r
}

// Summary renders the report as the human-readable block the dynamosim
// CLI prints.
func (r *Report) Summary() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "host perf       %.2f M events/s (%.0f ns/event, %.1f allocs/event) — %d events in %.3fs\n",
		r.EventsPerSec/1e6, r.NSPerEvent, r.AllocsPerEvent,
		r.Events, float64(r.WallNS)/1e9)
	if len(r.Kinds) > 0 {
		fmt.Fprintf(&b, "attribution    ")
		for _, k := range r.Kinds {
			fmt.Fprintf(&b, " %s %.1f%%", k.Kind, 100*k.EstShare)
		}
		fmt.Fprintf(&b, " (sampled 1/%d)\n", r.SampleStride)
	}
	fmt.Fprintf(&b, "event queue     avg depth %.1f, max %d\n", r.QueueDepthAvg, r.QueueDepthMax)
	fmt.Fprintf(&b, "host heap       %.1f MB allocated, %d objects, %d GC cycles (GOMAXPROCS %d)\n",
		float64(r.HeapAllocBytes)/(1<<20), r.HeapAllocObjects, r.GCCycles, r.GOMAXPROCS)
	return b.String()
}
