// Package noc models the on-chip interconnect: a 2D mesh with dimension-order
// (XY) routing, per-hop router and link latencies, and per-link serialization
// so that bursts of messages over the same links queue up (first-order
// contention, the effect that makes far-AMO centralization pay off under
// contention and hurts when it generates extra traffic).
package noc

import (
	"fmt"

	"dynamo/internal/obs"
	"dynamo/internal/sim"
)

// Flit sizes per message class, assuming 16-byte links: a control message is
// a single flit; a data message carries a 64-byte line plus header.
const (
	ControlFlits = 1
	DataFlits    = 5
)

// Config describes the mesh geometry and timing.
type Config struct {
	Width, Height int
	// RouteLatency is the per-hop router traversal cost in cycles.
	RouteLatency sim.Tick
	// LinkLatency is the per-hop link traversal cost in cycles.
	LinkLatency sim.Tick
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Width, c.Height)
	}
	if c.RouteLatency == 0 && c.LinkLatency == 0 {
		return fmt.Errorf("noc: zero hop latency")
	}
	return nil
}

// Stats aggregates traffic counters for the energy model and reports.
type Stats struct {
	Messages  uint64
	Flits     uint64
	FlitHops  uint64 // flits x hops traversed; the NoC dynamic-energy proxy
	Hops      uint64
	QueueWait uint64 // cycles spent waiting for busy links
}

// Mesh is the interconnect. Node IDs are y*Width+x. The mesh keeps one
// outgoing-link reservation table per node per direction to model
// serialization: a link accepts one flit per cycle.
type Mesh struct {
	cfg   Config
	stats Stats
	obs   *obs.Bus
	// nextFree[node][dir] is the first cycle the link is idle.
	nextFree [][4]sim.Tick
	// jitter, when non-nil, adds chaos delay to each delivery (see
	// SetJitter).
	jitter func(src, dst, flits int) sim.Tick
}

// Directions for outgoing links.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// New builds a mesh from cfg.
func New(cfg Config) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Mesh{
		cfg:      cfg,
		nextFree: make([][4]sim.Tick, cfg.Width*cfg.Height),
	}, nil
}

// AttachObs points the mesh at an observability bus; each link traversal
// then publishes a "xfer" occupancy span on the link's track (node*4+dir,
// the encoding obs track names decode). A nil bus disables publication.
func (m *Mesh) AttachObs(b *obs.Bus) { m.obs = b }

// SetJitter installs a chaos hook adding extra cycles to each message's
// delivery time, after link reservations are made — perturbing arrival
// order without changing link occupancy. The function must be
// deterministic for a given call sequence; nil disables jitter.
func (m *Mesh) SetJitter(fn func(src, dst, flits int) sim.Tick) { m.jitter = fn }

// Nodes returns the number of mesh nodes.
func (m *Mesh) Nodes() int { return m.cfg.Width * m.cfg.Height }

// Links returns the number of unidirectional links in the mesh: interior
// edges, counted once per direction. Interval telemetry normalises flit-hop
// deltas by this to report link utilisation.
func (m *Mesh) Links() int {
	w, h := m.cfg.Width, m.cfg.Height
	return 2 * ((w-1)*h + (h-1)*w)
}

// XY returns the coordinates of node id.
func (m *Mesh) XY(id int) (x, y int) { return id % m.cfg.Width, id / m.cfg.Width }

// NodeAt returns the node id at (x, y).
func (m *Mesh) NodeAt(x, y int) int { return y*m.cfg.Width + x }

// Hops returns the minimal (Manhattan) hop count between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.XY(src)
	dx, dy := m.XY(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// LinkHop is one link traversal on a route: the node whose outgoing link in
// direction Dir is crossed.
type LinkHop struct {
	Node, Dir int
}

// Route returns the XY route from src to dst as a sequence of link
// traversals.
func (m *Mesh) Route(src, dst int) []LinkHop {
	var route []LinkHop
	x, y := m.XY(src)
	dx, dy := m.XY(dst)
	for x != dx {
		if x < dx {
			route = append(route, LinkHop{m.NodeAt(x, y), dirEast})
			x++
		} else {
			route = append(route, LinkHop{m.NodeAt(x, y), dirWest})
			x--
		}
	}
	for y != dy {
		if y < dy {
			route = append(route, LinkHop{m.NodeAt(x, y), dirSouth})
			y++
		} else {
			route = append(route, LinkHop{m.NodeAt(x, y), dirNorth})
			y--
		}
	}
	return route
}

// Send models injecting a message of the given flit count at src at time now
// and returns the delivery time at dst. Each traversed link is reserved for
// flits cycles, so concurrent messages sharing links serialize. Send is
// called from simulation events, so it executes in deterministic order.
func (m *Mesh) Send(src, dst int, flits int, now sim.Tick) sim.Tick {
	if flits <= 0 {
		panic(fmt.Sprintf("noc: message with %d flits", flits))
	}
	m.stats.Messages++
	m.stats.Flits += uint64(flits)
	var extra sim.Tick
	if m.jitter != nil {
		extra = m.jitter(src, dst, flits)
	}
	if src == dst {
		// Local delivery still pays one router traversal.
		return now + m.cfg.RouteLatency + extra
	}
	t := now
	hops := 0
	x, y := m.XY(src)
	dx, dy := m.XY(dst)
	step := func(dir int) {
		node := m.NodeAt(x, y)
		free := m.nextFree[node][dir]
		depart := t
		if free > depart {
			m.stats.QueueWait += uint64(free - depart)
			depart = free
		}
		m.nextFree[node][dir] = depart + sim.Tick(flits)
		if m.obs != nil && m.obs.TimelineEnabled() {
			m.obs.Span(obs.Track{Group: obs.TrackNoC, ID: node*4 + dir}, "xfer", depart, sim.Tick(flits))
		}
		t = depart + m.cfg.RouteLatency + m.cfg.LinkLatency
		hops++
	}
	for x != dx {
		if x < dx {
			step(dirEast)
			x++
		} else {
			step(dirWest)
			x--
		}
	}
	for y != dy {
		if y < dy {
			step(dirSouth)
			y++
		} else {
			step(dirNorth)
			y--
		}
	}
	m.stats.Hops += uint64(hops)
	m.stats.FlitHops += uint64(hops) * uint64(flits)
	return t + extra
}

// Stats returns a copy of the accumulated traffic counters.
func (m *Mesh) Stats() Stats { return m.stats }

// Snapshot is a serializable image of the mesh state: traffic counters
// plus every outgoing link's next-idle cycle (the in-flight reservation
// table that encodes queued flits).
type Snapshot struct {
	Stats    Stats
	NextFree [][4]sim.Tick
}

// Snapshot captures the mesh state.
func (m *Mesh) Snapshot() Snapshot {
	nf := make([][4]sim.Tick, len(m.nextFree))
	copy(nf, m.nextFree)
	return Snapshot{Stats: m.stats, NextFree: nf}
}
