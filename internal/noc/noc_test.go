package noc

import (
	"testing"
	"testing/quick"

	"dynamo/internal/sim"
)

func mesh8(t testing.TB) *Mesh {
	t.Helper()
	m, err := New(Config{Width: 8, Height: 8, RouteLatency: 1, LinkLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 8, RouteLatency: 1},
		{Width: 8, Height: -1, RouteLatency: 1},
		{Width: 8, Height: 8},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestCoordinates(t *testing.T) {
	m := mesh8(t)
	for id := 0; id < m.Nodes(); id++ {
		x, y := m.XY(id)
		if m.NodeAt(x, y) != id {
			t.Fatalf("NodeAt(XY(%d)) = %d", id, m.NodeAt(x, y))
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	m := mesh8(t)
	if h := m.Hops(m.NodeAt(0, 0), m.NodeAt(7, 7)); h != 14 {
		t.Fatalf("corner-to-corner hops = %d, want 14", h)
	}
	if h := m.Hops(3, 3); h != 0 {
		t.Fatalf("self hops = %d, want 0", h)
	}
}

func TestUncontendedLatency(t *testing.T) {
	m := mesh8(t)
	src, dst := m.NodeAt(0, 0), m.NodeAt(3, 2)
	arrival := m.Send(src, dst, ControlFlits, 100)
	// 5 hops x (1 route + 1 link) = 10 cycles.
	if arrival != 110 {
		t.Fatalf("arrival = %d, want 110", arrival)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := mesh8(t)
	if got := m.Send(5, 5, DataFlits, 50); got != 51 {
		t.Fatalf("local delivery at %d, want 51", got)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	m := mesh8(t)
	src, dst := m.NodeAt(0, 0), m.NodeAt(1, 0)
	a := m.Send(src, dst, DataFlits, 0)
	b := m.Send(src, dst, DataFlits, 0)
	if b <= a {
		t.Fatalf("second message arrived at %d, first at %d; expected serialization", b, a)
	}
	if b-a != DataFlits {
		t.Fatalf("serialization gap = %d, want %d", b-a, DataFlits)
	}
	if m.Stats().QueueWait == 0 {
		t.Fatal("no queue wait recorded under contention")
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	m := mesh8(t)
	a := m.Send(m.NodeAt(0, 0), m.NodeAt(1, 0), DataFlits, 0)
	b := m.Send(m.NodeAt(0, 1), m.NodeAt(1, 1), DataFlits, 0)
	if a != b {
		t.Fatalf("disjoint paths interfered: %d vs %d", a, b)
	}
	if m.Stats().QueueWait != 0 {
		t.Fatal("queue wait on disjoint paths")
	}
}

func TestRouteIsXY(t *testing.T) {
	m := mesh8(t)
	route := m.Route(m.NodeAt(1, 1), m.NodeAt(4, 6))
	if len(route) != 8 {
		t.Fatalf("route length = %d, want 8", len(route))
	}
	// X first: the first 3 hops go east.
	for i := 0; i < 3; i++ {
		if route[i].Dir != dirEast {
			t.Fatalf("hop %d dir = %d, want east", i, route[i].Dir)
		}
	}
	for i := 3; i < 8; i++ {
		if route[i].Dir != dirSouth {
			t.Fatalf("hop %d dir = %d, want south", i, route[i].Dir)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := mesh8(t)
	m.Send(0, 1, ControlFlits, 0)
	m.Send(0, 2, DataFlits, 0)
	s := m.Stats()
	if s.Messages != 2 {
		t.Fatalf("Messages = %d", s.Messages)
	}
	if s.Flits != ControlFlits+DataFlits {
		t.Fatalf("Flits = %d", s.Flits)
	}
	if s.Hops != 3 {
		t.Fatalf("Hops = %d, want 3", s.Hops)
	}
	if s.FlitHops != 1*ControlFlits+2*DataFlits {
		t.Fatalf("FlitHops = %d", s.FlitHops)
	}
}

func TestZeroFlitsPanics(t *testing.T) {
	m := mesh8(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Send with 0 flits did not panic")
		}
	}()
	m.Send(0, 1, 0, 0)
}

// Property: route length equals Manhattan distance (minimal routing) and the
// uncontended delivery latency is hops*(route+link).
func TestMinimalRoutingProperty(t *testing.T) {
	f := func(srcRaw, dstRaw uint8) bool {
		m := mesh8(t)
		src := int(srcRaw) % m.Nodes()
		dst := int(dstRaw) % m.Nodes()
		hops := m.Hops(src, dst)
		if len(m.Route(src, dst)) != hops {
			return false
		}
		if src == dst {
			return true
		}
		arrival := m.Send(src, dst, ControlFlits, 1000)
		return arrival == sim.Tick(1000+2*hops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: arrival times never precede injection plus minimal latency, even
// under heavy random contention.
func TestContentionNeverBeatsMinLatencyProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		m := mesh8(t)
		now := sim.Tick(0)
		for _, s := range seeds {
			src := int(s) % m.Nodes()
			dst := int(s>>8) % m.Nodes()
			if src == dst {
				continue
			}
			arrival := m.Send(src, dst, DataFlits, now)
			minArrival := now + sim.Tick(2*m.Hops(src, dst))
			if arrival < minArrival {
				return false
			}
			now += sim.Tick(s % 3)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSend(b *testing.B) {
	m := mesh8(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Send(i%64, (i*7)%64, DataFlits, sim.Tick(i))
	}
}
