package machine

import (
	"errors"
	"testing"

	"dynamo/internal/cpu"
	"dynamo/internal/memory"
)

// smallConfig shrinks the default system so unit tests stay fast.
func smallConfig(policy string) Config {
	cfg := DefaultConfig()
	cfg.Policy = policy
	cfg.Chi.Cores = 4
	cfg.Chi.HNSlices = 4
	cfg.Chi.Mesh.Width = 4
	cfg.Chi.Mesh.Height = 4
	cfg.Chi.L1Sets = 16
	cfg.Chi.L2Sets = 64
	cfg.Chi.LLCSets = 256
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Policy = "nope"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Chi.Cores != 32 {
		t.Errorf("cores = %d, want 32", cfg.Chi.Cores)
	}
	if got := cfg.Chi.L1Sets * cfg.Chi.L1Ways * memory.LineSize; got != 64<<10 {
		t.Errorf("L1D size = %d, want 64 KiB", got)
	}
	if got := cfg.Chi.L2Sets * cfg.Chi.L2Ways * memory.LineSize; got != 512<<10 {
		t.Errorf("L2 size = %d, want 512 KiB", got)
	}
	if got := cfg.Chi.LLCSets * cfg.Chi.LLCWays * memory.LineSize; got != 1<<20 {
		t.Errorf("LLC slice size = %d, want 1 MiB", got)
	}
	if cfg.Chi.Mesh.Width != 8 || cfg.Chi.Mesh.Height != 8 {
		t.Errorf("mesh = %dx%d, want 8x8", cfg.Chi.Mesh.Width, cfg.Chi.Mesh.Height)
	}
	if cfg.Chi.Mem.Channels != 8 {
		t.Errorf("memory channels = %d, want 8", cfg.Chi.Mem.Channels)
	}
	if cfg.AMT.Entries != 128 || cfg.AMT.Ways != 4 || cfg.AMT.CounterMax != 32 {
		t.Errorf("AMT = %+v, want 128/4/32", cfg.AMT)
	}
}

func TestRunSimpleProgram(t *testing.T) {
	m, err := New(smallConfig("all-near"))
	if err != nil {
		t.Fatal(err)
	}
	progs := []cpu.Program{
		func(th *cpu.Thread) {
			for i := 0; i < 10; i++ {
				th.AMOStore(memory.AMOAdd, 0x1000, 1)
			}
			th.Fence()
		},
		func(th *cpu.Thread) {
			for i := 0; i < 10; i++ {
				th.AMOStore(memory.AMOAdd, 0x1000, 1)
			}
			th.Fence()
		},
	}
	res, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Sys.Data.Load(0x1000); got != 20 {
		t.Fatalf("counter = %d, want 20", got)
	}
	if res.AMOs != 20 || res.AMOStores != 20 || res.AMOLoads != 0 {
		t.Fatalf("AMO counts: %+v", res)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.APKI <= 0 {
		t.Fatalf("APKI = %g", res.APKI)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if res.NearLocal+res.NearTxn+res.Far != 20 {
		t.Fatalf("placement split %d+%d+%d != 20", res.NearLocal, res.NearTxn, res.Far)
	}
}

func TestRunRejectsBadProgramCounts(t *testing.T) {
	m, err := New(smallConfig("all-near"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil); err == nil {
		t.Error("empty program list accepted")
	}
	progs := make([]cpu.Program, 5) // cores=4
	for i := range progs {
		progs[i] = func(th *cpu.Thread) {}
	}
	if _, err := m.Run(progs); err == nil {
		t.Error("too many programs accepted")
	}
}

func TestRunTimeout(t *testing.T) {
	cfg := smallConfig("all-near")
	cfg.MaxEvents = 1000
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run([]cpu.Program{func(th *cpu.Thread) {
		for { // never terminates
			th.Load(0x1)
			th.Compute(1)
		}
	}})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestFarPolicyRunsFar(t *testing.T) {
	m, err := New(smallConfig("unique-near"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run([]cpu.Program{func(th *cpu.Thread) {
		for i := 0; i < 16; i++ {
			// Distinct cold lines: state I, unique-near sends them far.
			th.AMOStore(memory.AMOAdd, memory.Addr(0x4000+i*64), 1)
		}
		th.Fence()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Far != 16 {
		t.Fatalf("Far = %d, want 16", res.Far)
	}
	if res.NearLocal+res.NearTxn != 0 {
		t.Fatalf("near AMOs under unique-near on cold lines: %+v", res)
	}
}

func TestDynamoPolicyRuns(t *testing.T) {
	for _, p := range []string{"dynamo-metric", "dynamo-reuse-un", "dynamo-reuse-pn"} {
		m, err := New(smallConfig(p))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run([]cpu.Program{func(th *cpu.Thread) {
			for i := 0; i < 50; i++ {
				th.AMOStore(memory.AMOAdd, memory.Addr(0x8000+(i%4)*64), 1)
			}
			th.Fence()
		}})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.AMOs != 50 {
			t.Fatalf("%s: AMOs = %d", p, res.AMOs)
		}
		if got := m.Sys.Data.Load(0x8000); got == 0 {
			t.Fatalf("%s: no updates landed", p)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	runOnce := func() uint64 {
		m, err := New(smallConfig("dynamo-reuse-pn"))
		if err != nil {
			t.Fatal(err)
		}
		progs := make([]cpu.Program, 4)
		for i := range progs {
			progs[i] = func(th *cpu.Thread) {
				for j := 0; j < 40; j++ {
					th.AMOStore(memory.AMOAdd, memory.Addr(0x9000+(j%3)*64), 1)
					th.Compute(3)
				}
				th.Fence()
			}
		}
		res, err := m.Run(progs)
		if err != nil {
			t.Fatal(err)
		}
		return uint64(res.Cycles)*1_000_003 + res.NoC.Flits
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("non-deterministic runs: %d vs %d", a, b)
	}
}

func TestMetricAgingRuns(t *testing.T) {
	// A long-running program under dynamo-metric must trigger periodic
	// aging without wedging the run or leaving the engine spinning.
	m, err := New(smallConfig("dynamo-metric"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run([]cpu.Program{func(th *cpu.Thread) {
		for i := 0; i < 200; i++ {
			th.AMOStore(memory.AMOAdd, memory.Addr(0x5000+(i%2)*64), 1)
			th.Compute(600) // cross several aging periods
		}
		th.Fence()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < agingPeriod {
		t.Fatalf("run too short (%d cycles) to exercise aging", res.Cycles)
	}
	// The engine must be fully drained (no immortal aging tick).
	if m.Sys.Engine.Pending() != 0 {
		t.Fatalf("%d events still pending after run", m.Sys.Engine.Pending())
	}
}
