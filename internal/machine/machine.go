// Package machine assembles the full simulated system — cores, request
// nodes, home nodes, mesh and memory — from a single configuration
// mirroring Table II of the paper, runs workload programs on it to
// completion, and collects the statistics the experiment harness consumes.
package machine

import (
	"encoding/json"
	"fmt"
	"io"

	"dynamo/internal/check"
	"dynamo/internal/checkpoint"
	"dynamo/internal/chi"
	"dynamo/internal/core"
	"dynamo/internal/cpu"
	"dynamo/internal/energy"
	"dynamo/internal/hbm"
	"dynamo/internal/memory"
	"dynamo/internal/noc"
	"dynamo/internal/obs"
	"dynamo/internal/obs/profile"
	"dynamo/internal/perf"
	"dynamo/internal/sim"
	"dynamo/internal/stats"
)

// Config selects the system, the AMO placement policy, and run limits.
type Config struct {
	Chi    chi.Config
	CPU    cpu.Config
	AMT    core.AMTConfig
	Policy string
	// MaxEvents bounds a run; exceeding it returns ErrTimeout. Zero means
	// the package default (500M events).
	MaxEvents uint64
	// Energy customizes the energy model; zero value selects the default.
	Energy energy.Model
	// Obs, when non-nil, collects transaction-level observability data
	// (latency histograms, optional timeline) from every component. The
	// run's digest lands in Result.Obs.
	Obs *obs.Bus
	// Perf, when non-nil, attaches the host-performance self-profiler to
	// the engine: every kernel event is attributed to its scheduling
	// subsystem (wall-clock sampled), and the run's host digest lands in
	// Result.HostPerf. Purely observational — simulated results are
	// bit-identical with profiling on or off.
	Perf *perf.Profiler
	// Interval, when non-nil, receives a cumulative counter sample every
	// Recorder period during the run plus one final sample at drain time,
	// yielding the interval time-series (instructions, per-class latency,
	// link utilisation, HBM bandwidth, AMT hit-rate). Class latency and
	// counter deltas additionally require Obs.
	Interval *profile.Recorder
	// Check, when non-nil, attaches the runtime protocol sanitizer: SWMR
	// and directory audits on release and at Check.Interval events,
	// MSHR/transaction-table occupancy bounds, and end-of-run quiescence
	// and leak audits. A violation aborts the run with a *check.Violation;
	// a clean run reports its audit counters in Result.Check. The zero
	// Config selects every default.
	Check *check.Config
	// WatchdogEvents is the forward-progress window: if no core commits an
	// instruction for this many engine events, the run is abandoned with
	// ErrStalled and a machine diagnostic. Zero selects the package
	// default (20M events); the watchdog is always on because a livelocked
	// run otherwise burns the full MaxEvents budget before reporting.
	WatchdogEvents uint64
	// CkptEvery, when nonzero with CkptSink set, captures a checkpoint
	// every CkptEvery executed events.
	CkptEvery uint64
	// CkptSink receives periodic checkpoints (see CkptEvery) plus the
	// final checkpoint of an interrupted run. Capture is read-only, so a
	// sink never perturbs the simulation.
	CkptSink func(*checkpoint.Checkpoint)
	// CkptIdentity names the run in captured checkpoints (the runner uses
	// the request digest); RunFrom rejects a checkpoint whose identity
	// differs.
	CkptIdentity string
	// Interrupt, when non-nil, is polled during the run: once it is
	// signaled or closed, the run captures a final checkpoint to CkptSink
	// and aborts with ErrInterrupted.
	Interrupt <-chan struct{}
}

// DefaultConfig reproduces Table II scaled to cycle-level first-order
// models: 32 Neoverse-like cores on an 8x8 mesh with 32 HN slices,
// 64 KiB/4-way L1D (2-cycle), 512 KiB/8-way private L2 (8-cycle),
// 32x1 MiB/8-way exclusive LLC (10-cycle data arrays), a 128-entry 4-way
// AMT, and 8-channel HBM3-class memory.
func DefaultConfig() Config {
	return Config{
		Chi: chi.Config{
			Cores:           32,
			HNSlices:        32,
			L1Sets:          256, // 64 KiB / 64 B / 4 ways
			L1Ways:          4,
			L2Sets:          1024, // 512 KiB / 64 B / 8 ways
			L2Ways:          8,
			LLCSets:         2048, // 1 MiB / 64 B / 8 ways per slice
			LLCWays:         8,
			AMOBufEntries:   16,
			L1Latency:       2,
			L2Latency:       8,
			DirLatency:      2,
			LLCDataLatency:  10,
			ALULatency:      1,
			AMOBufLatency:   1,
			FarAMOOccupancy: 8,
			Mesh:            noc.Config{Width: 8, Height: 8, RouteLatency: 1, LinkLatency: 1},
			Mem:             hbm.Config{Channels: 8, Latency: 100, LineOccupancy: 2},
		},
		CPU:    cpu.DefaultConfig(),
		AMT:    core.DefaultAMTConfig(),
		Policy: "all-near",
	}
}

const (
	defaultMaxEvents = 500_000_000
	// defaultWatchdogEvents is the no-commit window before a run is
	// declared stalled. The largest legal quiet stretches (a full HBM
	// queue drain, a cold AMT warmup) are orders of magnitude shorter.
	defaultWatchdogEvents = 20_000_000
	// progressStride is how often (in events) the run loop re-checks
	// forward progress and audit deadlines; a power of two keeps the
	// per-event condition cheap.
	progressStride = 1 << 16
)

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Chi.Validate(); err != nil {
		return err
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.AMT.Validate(); err != nil {
		return err
	}
	if _, err := core.New(c.Policy, c.Chi.Cores, c.AMT); err != nil {
		return err
	}
	return nil
}

// ErrTimeout reports a run that exceeded its event budget.
var ErrTimeout = fmt.Errorf("machine: run exceeded its event budget")

// ErrInterrupted reports a run aborted by Config.Interrupt. It is
// returned bare (no RunError diagnostic): the machine state is healthy,
// and a final checkpoint was offered to Config.CkptSink before the abort.
var ErrInterrupted = fmt.Errorf("machine: run interrupted")

// Result summarizes one completed run.
type Result struct {
	Policy string
	// Cycles is the makespan: the cycle the last program finished.
	Cycles sim.Tick
	// Instructions is the total committed across all cores.
	Instructions uint64
	AMOs         uint64
	AMOLoads     uint64 // value-returning AMOs
	AMOStores    uint64 // no-return AMOs
	NearLocal    uint64 // AMOs completed on an already-unique L1 line
	NearTxn      uint64 // AMOs that fetched the line via ReadUnique
	Far          uint64 // AMOs executed at the home node
	// APKI is AMOs per kilo-instruction (Fig. 6's metric).
	APKI float64
	// AvgAMOLatency is the mean issue-to-complete AMO latency in cycles.
	AvgAMOLatency float64
	// SimEvents is the total number of kernel events the run executed,
	// including the post-completion drain — the coordinate space of
	// checkpoint split points and bisection windows.
	SimEvents uint64
	Events    energy.Events
	Energy    energy.Breakdown
	NoC       noc.Stats
	Mem       hbm.Stats
	// Obs digests the run's observability data (latency histograms per
	// transaction class and phase, occupancy spans, predictor counters).
	// Nil unless the machine was built with Config.Obs.
	Obs *obs.Report
	// Check summarizes the protocol sanitizer's audits and occupancy
	// maxima. Nil unless the machine was built with Config.Check; always
	// Clean when present (a violated run errors instead).
	Check *check.Report
	// HostPerf is the host-performance self-profile (events/sec,
	// wall-clock attribution, heap deltas). Nil unless the machine was
	// built with Config.Perf. Host wall-clock is non-deterministic, so
	// the report is excluded from JSON serialization — and therefore from
	// result snapshots, cache entries and every deterministic digest.
	HostPerf *perf.Report `json:"-"`
	// Detail carries every raw counter for reports and debugging.
	Detail *stats.Group
}

// Machine is a built system ready to run one set of programs.
type Machine struct {
	Cfg    Config
	Sys    *chi.System
	Policy chi.Policy
	model  energy.Model
	// extra holds registered checkpoint-state providers (RegisterCkptState)
	// in registration order.
	extra []extraState
	// rs is the state of the in-progress run; nil before begin.
	rs *runState
}

// extraState is one registered component-state provider for checkpoints.
type extraState struct {
	name string
	fn   func() any
}

// RegisterCkptState adds a named component-state provider to the
// machine's checkpoints — used by components outside the machine's own
// wiring (e.g. the chaos injector) whose state must round-trip. fn must
// return a JSON-serializable, canonically ordered value and must not
// mutate simulation state. Registration order is irrelevant: checkpoint
// state is keyed by name in a sorted map.
func (m *Machine) RegisterCkptState(name string, fn func() any) {
	m.extra = append(m.extra, extraState{name: name, fn: fn})
}

// runState carries one run's loop state across drive calls, so a run can
// pause at an event index (checkpoint capture), resume, and still make
// exactly the same per-event decisions as an uninterrupted run.
type runState struct {
	programs []cpu.Program
	cores    []*cpu.Core
	finished int
	// ended stops the aging and sampling ticks once the run leaves the
	// main loop (so the drain does not keep rescheduling them).
	ended bool

	budget   uint64
	watchdog uint64

	auditEvery   uint64
	nextAudit    uint64
	lastInstr    uint64
	lastProgress uint64
	nextCheck    uint64
	nextCkpt     uint64

	// pauseAt, when nonzero, makes the run loop pause (cond true, paused
	// set) at the first event index >= pauseAt.
	pauseAt uint64
	// replaying suppresses checkpoint sinking while RunFrom replays the
	// prefix of a restored run.
	replaying bool

	stalled     bool
	paused      bool
	interrupted bool
}

// New builds a machine from cfg, constructing the policy from its
// registered name.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	policy, err := core.New(cfg.Policy, cfg.Chi.Cores, cfg.AMT)
	if err != nil {
		return nil, err
	}
	return NewWithPolicy(cfg, policy)
}

// NewWithPolicy builds a machine around an explicit policy object,
// bypassing the name registry — used by the design-space exploration,
// which evaluates unregistered Section IV candidates.
func NewWithPolicy(cfg Config, policy chi.Policy) (*Machine, error) {
	if policy == nil {
		return nil, fmt.Errorf("machine: nil policy")
	}
	cfg.Policy = policy.Name()
	cfg.Chi.Obs = cfg.Obs
	cfg.CPU.Obs = cfg.Obs
	if cfg.Obs != nil {
		if ao, ok := policy.(interface{ AttachObs(*obs.Bus) }); ok {
			ao.AttachObs(cfg.Obs)
		}
	}
	sys, err := chi.NewSystem(cfg.Chi, policy)
	if err != nil {
		return nil, err
	}
	if cfg.Perf != nil {
		sys.Engine.AttachPerf(cfg.Perf)
	}
	if cfg.Check != nil {
		sys.EnableCheck(check.New(*cfg.Check))
	}
	model := cfg.Energy
	if model == (energy.Model{}) {
		model = energy.DefaultModel()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Machine{Cfg: cfg, Sys: sys, Policy: policy, model: model}, nil
}

// agingPeriod is how often (in cycles) aging-capable predictors halve
// their counters, per Section V-B's phase-adaptivity argument.
const agingPeriod = 50_000

// ager is implemented by predictors with periodic counter decay.
type ager interface{ Age() }

// Run executes one program per core (len(programs) <= cores) until all
// finish, and returns the collected result. A Machine is single-use: build
// a fresh one per run.
func (m *Machine) Run(programs []cpu.Program) (*Result, error) {
	if err := m.begin(programs); err != nil {
		return nil, err
	}
	return m.Resume()
}

// RunTo executes programs until the kernel has run at least event events,
// pausing there. It returns (nil, nil) when paused — call Checkpoint to
// capture the state and Resume to continue — or the final result if the
// programs completed before reaching event (Paused reports which).
func (m *Machine) RunTo(programs []cpu.Program, event uint64) (*Result, error) {
	if err := m.begin(programs); err != nil {
		return nil, err
	}
	m.rs.pauseAt = event
	return m.drive()
}

// Paused reports whether the run is paused at an event index (RunTo
// reached its target, the programs still running).
func (m *Machine) Paused() bool { return m.rs != nil && m.rs.paused }

// Resume continues a paused run to completion.
func (m *Machine) Resume() (*Result, error) {
	if m.rs == nil {
		return nil, fmt.Errorf("machine: Resume without a begun run")
	}
	m.rs.pauseAt = 0
	m.rs.paused = false
	res, err := m.drive()
	if err != nil {
		return nil, err
	}
	if res == nil {
		// A pause target was re-armed mid-resume; callers of Resume always
		// drive to completion, so this indicates misuse.
		return nil, fmt.Errorf("machine: run paused during Resume")
	}
	return res, nil
}

// RunFrom restores a checkpoint: it rebuilds the run from its programs,
// replays the deterministic event stream to the checkpoint's event index,
// cross-validates the reconstructed state against the stored digest
// bit-exactly, and continues to completion. The machine must have been
// built with the same configuration (and chaos wiring) as the run that
// captured the checkpoint; a reconstruction mismatch returns
// checkpoint.ErrDiverged, an identity mismatch checkpoint.ErrIncompatible.
func (m *Machine) RunFrom(programs []cpu.Program, ck *checkpoint.Checkpoint) (*Result, error) {
	if ck == nil {
		return nil, fmt.Errorf("machine: RunFrom with nil checkpoint")
	}
	if err := ck.Compatible(m.Cfg.CkptIdentity); err != nil {
		return nil, err
	}
	if err := m.begin(programs); err != nil {
		return nil, err
	}
	m.rs.pauseAt = ck.Event
	m.rs.replaying = true
	res, err := m.drive()
	if err != nil {
		return nil, err
	}
	if res != nil {
		// The original run had not completed at ck.Event (it captured a
		// checkpoint there), so completing earlier is a divergence.
		m.abortCores()
		return nil, fmt.Errorf("%w: replay completed at event %d, before the checkpoint's event %d",
			checkpoint.ErrDiverged, m.Sys.Engine.Executed(), ck.Event)
	}
	st, err := m.captureState()
	if err != nil {
		m.abortCores()
		return nil, err
	}
	digest, err := checkpoint.DigestState(&st)
	if err != nil {
		m.abortCores()
		return nil, err
	}
	if digest != ck.StateDigest {
		m.abortCores()
		return nil, fmt.Errorf("%w: state digest %s at event %d, checkpoint has %s",
			checkpoint.ErrDiverged, digest[:12], ck.Event, ck.StateDigest[:12])
	}
	m.rs.replaying = false
	if m.Cfg.CkptEvery > 0 {
		m.rs.nextCkpt = ck.Event + m.Cfg.CkptEvery
	}
	return m.Resume()
}

// Checkpoint captures the paused run's complete state and serializes it
// to w. Only a paused run (RunTo) has a well-defined event index to
// checkpoint at; periodic and interrupt checkpoints go through
// Config.CkptSink instead.
func (m *Machine) Checkpoint(w io.Writer) error {
	ck, err := m.captureCheckpoint()
	if err != nil {
		return err
	}
	return checkpoint.Write(w, ck)
}

// Restore parses and structurally validates a serialized checkpoint; pass
// the result to RunFrom. Schema drift returns checkpoint.ErrIncompatible,
// parse and digest failures checkpoint.ErrCorrupt.
func Restore(r io.Reader) (*checkpoint.Checkpoint, error) {
	return checkpoint.Read(r)
}

// begin builds the run state: cores, aging and sampling ticks, watchdog
// and audit bookkeeping. It is the shared front half of Run/RunTo/RunFrom.
func (m *Machine) begin(programs []cpu.Program) error {
	if len(programs) == 0 || len(programs) > m.Cfg.Chi.Cores {
		return fmt.Errorf("machine: %d programs for %d cores", len(programs), m.Cfg.Chi.Cores)
	}
	if m.rs != nil {
		return fmt.Errorf("machine: already ran — a Machine is single-use")
	}
	eng := m.Sys.Engine
	rs := &runState{programs: programs, cores: make([]*cpu.Core, len(programs))}
	m.rs = rs
	// Anchor the host-perf measurement window at the run's start, so the
	// report excludes machine construction (nil-safe when profiling is off).
	m.Cfg.Perf.Start()
	if a, ok := m.Policy.(ager); ok {
		var tick func()
		tick = func() {
			if rs.ended {
				return // let the queue drain after the run completes
			}
			a.Age()
			eng.ScheduleKind(agingPeriod, perf.KindTick, tick)
		}
		eng.ScheduleKind(agingPeriod, perf.KindTick, tick)
	}
	if rec := m.Cfg.Interval; rec != nil && rec.Period() > 0 {
		var tick func()
		tick = func() {
			if rs.ended {
				return
			}
			m.sample(rec, rs.cores)
			eng.ScheduleKind(rec.Period(), perf.KindTick, tick)
		}
		eng.ScheduleKind(rec.Period(), perf.KindTick, tick)
	}
	for i, p := range programs {
		c, err := cpu.New(m.Cfg.CPU, eng, m.Sys.RNs[i], p, func() { rs.finished++ })
		if err != nil {
			m.abortCores()
			return err
		}
		rs.cores[i] = c
		c.Start(0)
	}
	rs.budget = m.Cfg.MaxEvents
	if rs.budget == 0 {
		rs.budget = defaultMaxEvents
	}
	rs.watchdog = m.Cfg.WatchdogEvents
	if rs.watchdog == 0 {
		rs.watchdog = defaultWatchdogEvents
	}
	rs.auditEvery = m.Sys.Check.Interval()
	rs.nextAudit = eng.Executed() + rs.auditEvery
	rs.lastInstr = m.instrTotal()
	rs.lastProgress = eng.Executed()
	rs.nextCheck = eng.Executed() + progressStride
	if m.Cfg.CkptEvery > 0 {
		rs.nextCkpt = eng.Executed() + m.Cfg.CkptEvery
	}
	return nil
}

// instrTotal sums committed instructions across the run's cores.
func (m *Machine) instrTotal() uint64 {
	var n uint64
	for _, c := range m.rs.cores {
		if c != nil {
			n += c.Instructions
		}
	}
	return n
}

// abortCores terminates every program goroutine of an abandoned run.
func (m *Machine) abortCores() {
	for _, c := range m.rs.cores {
		if c != nil {
			c.Abort()
		}
	}
}

// drive runs the kernel until the programs complete, the pause target is
// reached, or the run fails. It is the shared back half of
// Run/RunTo/RunFrom/Resume; all loop state lives in m.rs, so a
// pause/resume sequence makes exactly the same per-event decisions — and
// therefore produces bit-identical state — as an uninterrupted run.
func (m *Machine) drive() (*Result, error) {
	rs := m.rs
	eng := m.Sys.Engine

	// The run condition doubles as the forward-progress watchdog, the
	// periodic-audit driver, the auto-checkpoint trigger and the interrupt
	// poll; every progressStride events it re-reads the
	// committed-instruction total and walks its periodic duties. The
	// pause check runs every event (pause targets are not
	// stride-quantized) and precedes the strided block, so a paused-and-
	// resumed run executes the block exactly once per stride boundary,
	// like an uninterrupted run.
	cond := func() bool {
		if rs.finished == len(rs.programs) {
			return true
		}
		x := eng.Executed()
		if rs.pauseAt > 0 && x >= rs.pauseAt {
			rs.paused = true
			return true
		}
		// Auto-checkpoints fire at event granularity, not stride
		// granularity, so short runs still checkpoint. Capture is
		// read-only, so it cannot perturb the replayed event stream.
		if m.Cfg.CkptEvery > 0 && m.Cfg.CkptSink != nil && !rs.replaying && x >= rs.nextCkpt {
			rs.nextCkpt = x + m.Cfg.CkptEvery
			if ck, err := m.captureCheckpoint(); err == nil {
				m.Cfg.CkptSink(ck)
			}
		}
		if x < rs.nextCheck {
			return false
		}
		rs.nextCheck = x + progressStride
		if n := m.instrTotal(); n != rs.lastInstr {
			rs.lastInstr = n
			rs.lastProgress = x
		} else if x-rs.lastProgress >= rs.watchdog {
			rs.stalled = true
			return true
		}
		if rs.auditEvery > 0 && x >= rs.nextAudit {
			rs.nextAudit = x + rs.auditEvery
			m.Sys.Fail(m.Sys.AuditCoherence())
		}
		if m.Cfg.Interrupt != nil && !rs.interrupted {
			select {
			case <-m.Cfg.Interrupt:
				rs.interrupted = true
				return true
			default:
			}
		}
		return false
	}
	// The event budget is cumulative across pauses: each drive gets what
	// the previous ones left. RunUntil treats 0 as unlimited, so an
	// exhausted budget short-circuits to the timeout path instead.
	var ok bool
	if remaining := rs.budget - eng.Executed(); rs.budget > eng.Executed() {
		ok = eng.RunUntil(cond, remaining)
	}
	fail := func(cause error) (*Result, error) {
		rs.ended = true
		m.abortCores()
		if v, isViolation := cause.(*check.Violation); isViolation {
			// A violation is its own diagnostic: it carries the protocol
			// trail, and the machine state after it is not trustworthy.
			return nil, v
		}
		return nil, &RunError{Cause: cause, Diag: m.diagnose(rs.finished, len(rs.programs), rs.cores)}
	}
	if v := m.Sys.Violation; v != nil {
		return fail(v)
	}
	if rs.stalled {
		return fail(ErrStalled)
	}
	if rs.interrupted {
		// Capture the final checkpoint before aborting: Abort mutates core
		// state, so it must come second. Interrupted runs return the bare
		// sentinel — the state is healthy and resumable, not diagnostic.
		// Not while replaying, though: a checkpoint captured mid-replay
		// sits at an earlier event than the one being replayed toward, and
		// sinking it would regress the persisted checkpoint — under rapid
		// preemption, far enough to livelock the job.
		if m.Cfg.CkptSink != nil && !rs.replaying {
			if ck, err := m.captureCheckpoint(); err == nil {
				m.Cfg.CkptSink(ck)
			}
		}
		rs.ended = true
		m.abortCores()
		return nil, ErrInterrupted
	}
	if rs.paused {
		return nil, nil
	}
	if !ok {
		if rs.finished < len(rs.programs) && eng.Pending() == 0 {
			return fail(fmt.Errorf("machine: deadlock — %d/%d programs finished and no events pending",
				rs.finished, len(rs.programs)))
		}
		return fail(ErrTimeout)
	}
	rs.ended = true
	eng.Run(0) // drain writebacks and in-flight background work
	if v := m.Sys.Violation; v != nil {
		// Release-time audits keep running while the queue drains.
		return fail(v)
	}
	if m.Sys.Check != nil {
		if v := m.Sys.AuditCoherence(); v != nil {
			return fail(v)
		}
		if v := m.Sys.AuditDrained(); v != nil {
			return fail(v)
		}
		if leaks := m.Sys.Obs.Leaks(); len(leaks) > 0 {
			return fail(check.LeakViolation(eng.Now(), leaks))
		}
	}
	if rec := m.Cfg.Interval; rec != nil {
		// Close the partial tail interval so the series covers the full run.
		m.sample(rec, rs.cores)
	}
	return m.collect(rs.cores), nil
}

// captureState assembles the complete serializable machine image. Every
// read is side-effect free (cache Range/Peek, stats copies, pure
// reports), so capture never perturbs the simulation.
func (m *Machine) captureState() (checkpoint.State, error) {
	st := checkpoint.State{
		Engine: m.Sys.Engine.Snapshot(),
		NoC:    m.Sys.Mesh.Snapshot(),
		Mem:    m.Sys.Mem.Snapshot(),
		Data:   m.Sys.Data.Words(),
		Check:  m.Sys.Check.Report(),
		Obs:    m.Sys.Obs.Report(),
	}
	for _, c := range m.rs.cores {
		st.Cores = append(st.Cores, c.Snapshot())
	}
	for _, rn := range m.Sys.RNs {
		st.RNs = append(st.RNs, rn.Snapshot())
	}
	for _, hn := range m.Sys.HNs {
		st.HNs = append(st.HNs, hn.Snapshot())
	}
	if p, ok := m.Policy.(interface{ CheckpointState() any }); ok {
		raw, err := json.Marshal(p.CheckpointState())
		if err != nil {
			return checkpoint.State{}, fmt.Errorf("machine: encode policy state: %w", err)
		}
		st.Policy = raw
	}
	for _, ex := range m.extra {
		raw, err := json.Marshal(ex.fn())
		if err != nil {
			return checkpoint.State{}, fmt.Errorf("machine: encode %s state: %w", ex.name, err)
		}
		if st.Extra == nil {
			st.Extra = make(map[string]json.RawMessage)
		}
		st.Extra[ex.name] = raw
	}
	return st, nil
}

// captureCheckpoint captures the current state as a digested checkpoint.
func (m *Machine) captureCheckpoint() (*checkpoint.Checkpoint, error) {
	if m.rs == nil {
		return nil, fmt.Errorf("machine: checkpoint requires a begun run")
	}
	st, err := m.captureState()
	if err != nil {
		return nil, err
	}
	return checkpoint.New(m.Cfg.CkptIdentity, m.Sys.Engine.Executed(), st)
}

// sample feeds one cumulative counter reading to the interval recorder.
func (m *Machine) sample(rec *profile.Recorder, cores []*cpu.Core) {
	s := profile.Sample{
		Links:     m.Sys.Mesh.Links(),
		LineBytes: memory.LineSize,
	}
	for _, c := range cores {
		if c != nil {
			s.Instructions += c.Instructions
		}
	}
	s.FlitHops = m.Sys.Mesh.Stats().FlitHops
	mem := m.Sys.Mem.Stats()
	s.HBMReads, s.HBMWrites = mem.Reads, mem.Writes
	rec.Observe(m.Sys.Engine.Now(), s, m.Sys.Obs.Histograms())
}

// collect aggregates statistics into a Result.
func (m *Machine) collect(cores []*cpu.Core) *Result {
	r := &Result{Policy: m.Cfg.Policy, Detail: stats.NewGroup()}
	r.SimEvents = m.Sys.Engine.Executed()
	var amoLatencySum, latencySamples uint64
	for _, c := range cores {
		r.Instructions += c.Instructions
		if c.FinishedAt > r.Cycles {
			r.Cycles = c.FinishedAt
		}
	}
	var ev energy.Events
	for _, rn := range m.Sys.RNs {
		s := rn.Stats
		r.AMOs += s.AMOs
		r.AMOLoads += s.AMOLoadOps
		r.AMOStores += s.AMOStoreOps
		r.NearLocal += s.AMONearLocal
		r.NearTxn += s.AMONearTxn
		r.Far += s.AMOFar
		amoLatencySum += s.AMOLatencySum
		latencySamples += s.AMOs
		ev.L1Accesses += s.L1Hits + s.L1Misses + s.SnoopsReceived
		ev.L2Accesses += s.L2Hits + s.L2Misses
		r.Detail.Add("rn.loads", s.Loads)
		r.Detail.Add("rn.stores", s.Stores)
		r.Detail.Add("rn.amos", s.AMOs)
		r.Detail.Add("rn.l1.hits", s.L1Hits)
		r.Detail.Add("rn.l1.misses", s.L1Misses)
		r.Detail.Add("rn.l2.hits", s.L2Hits)
		r.Detail.Add("rn.l2.misses", s.L2Misses)
		r.Detail.Add("rn.snoops", s.SnoopsReceived)
		r.Detail.Add("rn.invalidations", s.Invalidations)
		r.Detail.Add("rn.writebacks", s.WriteBacks)
	}
	for _, hn := range m.Sys.HNs {
		s := hn.Stats
		ev.LLCAccesses += s.LLCHits + s.LLCMisses
		ev.DirLookups += s.ReadShared + s.ReadUnique + s.WriteBacks + s.Atomics
		ev.AMOBufAccesses += s.AMOBufHits + s.AMOBufMisses
		ev.ALUOps += s.Atomics
		r.Detail.Add("hn.readshared", s.ReadShared)
		r.Detail.Add("hn.readunique", s.ReadUnique)
		r.Detail.Add("hn.writebacks", s.WriteBacks)
		r.Detail.Add("hn.atomics", s.Atomics)
		r.Detail.Add("hn.llc.hits", s.LLCHits)
		r.Detail.Add("hn.llc.misses", s.LLCMisses)
		r.Detail.Add("hn.amobuf.hits", s.AMOBufHits)
		r.Detail.Add("hn.snoops.sent", s.SnoopsSent)
	}
	r.NoC = m.Sys.Mesh.Stats()
	r.Mem = m.Sys.Mem.Stats()
	ev.FlitHops = r.NoC.FlitHops
	ev.MemAccesses = r.Mem.Reads + r.Mem.Writes
	r.Events = ev
	r.Energy = m.model.Compute(ev)
	if r.Instructions > 0 {
		r.APKI = float64(r.AMOs) / float64(r.Instructions) * 1000
	}
	if latencySamples > 0 {
		r.AvgAMOLatency = float64(amoLatencySum) / float64(latencySamples)
	}
	r.Detail.Add("noc.messages", r.NoC.Messages)
	r.Detail.Add("noc.flits", r.NoC.Flits)
	r.Detail.Add("noc.flithops", r.NoC.FlitHops)
	r.Detail.Add("mem.reads", r.Mem.Reads)
	r.Detail.Add("mem.writes", r.Mem.Writes)
	if m.Sys.Obs != nil {
		r.Obs = m.Sys.Obs.Report()
	}
	r.Check = m.Sys.Check.Report()
	r.HostPerf = m.Cfg.Perf.Report()
	return r
}
