// Package machine assembles the full simulated system — cores, request
// nodes, home nodes, mesh and memory — from a single configuration
// mirroring Table II of the paper, runs workload programs on it to
// completion, and collects the statistics the experiment harness consumes.
package machine

import (
	"fmt"

	"dynamo/internal/check"
	"dynamo/internal/chi"
	"dynamo/internal/core"
	"dynamo/internal/cpu"
	"dynamo/internal/energy"
	"dynamo/internal/hbm"
	"dynamo/internal/memory"
	"dynamo/internal/noc"
	"dynamo/internal/obs"
	"dynamo/internal/obs/profile"
	"dynamo/internal/sim"
	"dynamo/internal/stats"
)

// Config selects the system, the AMO placement policy, and run limits.
type Config struct {
	Chi    chi.Config
	CPU    cpu.Config
	AMT    core.AMTConfig
	Policy string
	// MaxEvents bounds a run; exceeding it returns ErrTimeout. Zero means
	// the package default (500M events).
	MaxEvents uint64
	// Energy customizes the energy model; zero value selects the default.
	Energy energy.Model
	// Obs, when non-nil, collects transaction-level observability data
	// (latency histograms, optional timeline) from every component. The
	// run's digest lands in Result.Obs.
	Obs *obs.Bus
	// Interval, when non-nil, receives a cumulative counter sample every
	// Recorder period during the run plus one final sample at drain time,
	// yielding the interval time-series (instructions, per-class latency,
	// link utilisation, HBM bandwidth, AMT hit-rate). Class latency and
	// counter deltas additionally require Obs.
	Interval *profile.Recorder
	// Check, when non-nil, attaches the runtime protocol sanitizer: SWMR
	// and directory audits on release and at Check.Interval events,
	// MSHR/transaction-table occupancy bounds, and end-of-run quiescence
	// and leak audits. A violation aborts the run with a *check.Violation;
	// a clean run reports its audit counters in Result.Check. The zero
	// Config selects every default.
	Check *check.Config
	// WatchdogEvents is the forward-progress window: if no core commits an
	// instruction for this many engine events, the run is abandoned with
	// ErrStalled and a machine diagnostic. Zero selects the package
	// default (20M events); the watchdog is always on because a livelocked
	// run otherwise burns the full MaxEvents budget before reporting.
	WatchdogEvents uint64
}

// DefaultConfig reproduces Table II scaled to cycle-level first-order
// models: 32 Neoverse-like cores on an 8x8 mesh with 32 HN slices,
// 64 KiB/4-way L1D (2-cycle), 512 KiB/8-way private L2 (8-cycle),
// 32x1 MiB/8-way exclusive LLC (10-cycle data arrays), a 128-entry 4-way
// AMT, and 8-channel HBM3-class memory.
func DefaultConfig() Config {
	return Config{
		Chi: chi.Config{
			Cores:           32,
			HNSlices:        32,
			L1Sets:          256, // 64 KiB / 64 B / 4 ways
			L1Ways:          4,
			L2Sets:          1024, // 512 KiB / 64 B / 8 ways
			L2Ways:          8,
			LLCSets:         2048, // 1 MiB / 64 B / 8 ways per slice
			LLCWays:         8,
			AMOBufEntries:   16,
			L1Latency:       2,
			L2Latency:       8,
			DirLatency:      2,
			LLCDataLatency:  10,
			ALULatency:      1,
			AMOBufLatency:   1,
			FarAMOOccupancy: 8,
			Mesh:            noc.Config{Width: 8, Height: 8, RouteLatency: 1, LinkLatency: 1},
			Mem:             hbm.Config{Channels: 8, Latency: 100, LineOccupancy: 2},
		},
		CPU:    cpu.DefaultConfig(),
		AMT:    core.DefaultAMTConfig(),
		Policy: "all-near",
	}
}

const (
	defaultMaxEvents = 500_000_000
	// defaultWatchdogEvents is the no-commit window before a run is
	// declared stalled. The largest legal quiet stretches (a full HBM
	// queue drain, a cold AMT warmup) are orders of magnitude shorter.
	defaultWatchdogEvents = 20_000_000
	// progressStride is how often (in events) the run loop re-checks
	// forward progress and audit deadlines; a power of two keeps the
	// per-event condition cheap.
	progressStride = 1 << 16
)

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Chi.Validate(); err != nil {
		return err
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.AMT.Validate(); err != nil {
		return err
	}
	if _, err := core.New(c.Policy, c.Chi.Cores, c.AMT); err != nil {
		return err
	}
	return nil
}

// ErrTimeout reports a run that exceeded its event budget.
var ErrTimeout = fmt.Errorf("machine: run exceeded its event budget")

// Result summarizes one completed run.
type Result struct {
	Policy string
	// Cycles is the makespan: the cycle the last program finished.
	Cycles sim.Tick
	// Instructions is the total committed across all cores.
	Instructions uint64
	AMOs         uint64
	AMOLoads     uint64 // value-returning AMOs
	AMOStores    uint64 // no-return AMOs
	NearLocal    uint64 // AMOs completed on an already-unique L1 line
	NearTxn      uint64 // AMOs that fetched the line via ReadUnique
	Far          uint64 // AMOs executed at the home node
	// APKI is AMOs per kilo-instruction (Fig. 6's metric).
	APKI float64
	// AvgAMOLatency is the mean issue-to-complete AMO latency in cycles.
	AvgAMOLatency float64
	Events        energy.Events
	Energy        energy.Breakdown
	NoC           noc.Stats
	Mem           hbm.Stats
	// Obs digests the run's observability data (latency histograms per
	// transaction class and phase, occupancy spans, predictor counters).
	// Nil unless the machine was built with Config.Obs.
	Obs *obs.Report
	// Check summarizes the protocol sanitizer's audits and occupancy
	// maxima. Nil unless the machine was built with Config.Check; always
	// Clean when present (a violated run errors instead).
	Check *check.Report
	// Detail carries every raw counter for reports and debugging.
	Detail *stats.Group
}

// Machine is a built system ready to run one set of programs.
type Machine struct {
	Cfg    Config
	Sys    *chi.System
	Policy chi.Policy
	model  energy.Model
}

// New builds a machine from cfg, constructing the policy from its
// registered name.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	policy, err := core.New(cfg.Policy, cfg.Chi.Cores, cfg.AMT)
	if err != nil {
		return nil, err
	}
	return NewWithPolicy(cfg, policy)
}

// NewWithPolicy builds a machine around an explicit policy object,
// bypassing the name registry — used by the design-space exploration,
// which evaluates unregistered Section IV candidates.
func NewWithPolicy(cfg Config, policy chi.Policy) (*Machine, error) {
	if policy == nil {
		return nil, fmt.Errorf("machine: nil policy")
	}
	cfg.Policy = policy.Name()
	cfg.Chi.Obs = cfg.Obs
	cfg.CPU.Obs = cfg.Obs
	if cfg.Obs != nil {
		if ao, ok := policy.(interface{ AttachObs(*obs.Bus) }); ok {
			ao.AttachObs(cfg.Obs)
		}
	}
	sys, err := chi.NewSystem(cfg.Chi, policy)
	if err != nil {
		return nil, err
	}
	if cfg.Check != nil {
		sys.EnableCheck(check.New(*cfg.Check))
	}
	model := cfg.Energy
	if model == (energy.Model{}) {
		model = energy.DefaultModel()
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Machine{Cfg: cfg, Sys: sys, Policy: policy, model: model}, nil
}

// agingPeriod is how often (in cycles) aging-capable predictors halve
// their counters, per Section V-B's phase-adaptivity argument.
const agingPeriod = 50_000

// ager is implemented by predictors with periodic counter decay.
type ager interface{ Age() }

// Run executes one program per core (len(programs) <= cores) until all
// finish, and returns the collected result. A Machine is single-use: build
// a fresh one per run.
func (m *Machine) Run(programs []cpu.Program) (*Result, error) {
	if len(programs) == 0 || len(programs) > m.Cfg.Chi.Cores {
		return nil, fmt.Errorf("machine: %d programs for %d cores", len(programs), m.Cfg.Chi.Cores)
	}
	stopAging := false
	if a, ok := m.Policy.(ager); ok {
		var tick func()
		tick = func() {
			if stopAging {
				return // let the queue drain after the run completes
			}
			a.Age()
			m.Sys.Engine.Schedule(agingPeriod, tick)
		}
		m.Sys.Engine.Schedule(agingPeriod, tick)
	}
	finished := 0
	cores := make([]*cpu.Core, len(programs))
	stopSampling := false
	if rec := m.Cfg.Interval; rec != nil && rec.Period() > 0 {
		var tick func()
		tick = func() {
			if stopSampling {
				return
			}
			m.sample(rec, cores)
			m.Sys.Engine.Schedule(rec.Period(), tick)
		}
		m.Sys.Engine.Schedule(rec.Period(), tick)
	}
	for i, p := range programs {
		c, err := cpu.New(m.Cfg.CPU, m.Sys.Engine, m.Sys.RNs[i], p, func() { finished++ })
		if err != nil {
			for _, c := range cores {
				if c != nil {
					c.Abort()
				}
			}
			return nil, err
		}
		cores[i] = c
		c.Start(0)
	}
	budget := m.Cfg.MaxEvents
	if budget == 0 {
		budget = defaultMaxEvents
	}
	eng := m.Sys.Engine

	// The run condition doubles as the forward-progress watchdog and the
	// periodic-audit driver; every progressStride events it re-reads the
	// committed-instruction total and, with a sanitizer attached, walks
	// the coherence audit at its configured interval.
	watchdog := m.Cfg.WatchdogEvents
	if watchdog == 0 {
		watchdog = defaultWatchdogEvents
	}
	instrTotal := func() uint64 {
		var n uint64
		for _, c := range cores {
			if c != nil {
				n += c.Instructions
			}
		}
		return n
	}
	auditEvery := m.Sys.Check.Interval()
	nextAudit := eng.Executed() + auditEvery
	stalled := false
	lastInstr := instrTotal()
	lastProgress := eng.Executed()
	nextCheck := eng.Executed() + progressStride
	cond := func() bool {
		if finished == len(programs) {
			return true
		}
		x := eng.Executed()
		if x < nextCheck {
			return false
		}
		nextCheck = x + progressStride
		if n := instrTotal(); n != lastInstr {
			lastInstr = n
			lastProgress = x
		} else if x-lastProgress >= watchdog {
			stalled = true
			return true
		}
		if auditEvery > 0 && x >= nextAudit {
			nextAudit = x + auditEvery
			m.Sys.Fail(m.Sys.AuditCoherence())
		}
		return false
	}
	ok := eng.RunUntil(cond, budget)
	stopAging = true
	stopSampling = true
	fail := func(cause error) (*Result, error) {
		for _, c := range cores {
			if c != nil {
				c.Abort()
			}
		}
		if v, isViolation := cause.(*check.Violation); isViolation {
			// A violation is its own diagnostic: it carries the protocol
			// trail, and the machine state after it is not trustworthy.
			return nil, v
		}
		return nil, &RunError{Cause: cause, Diag: m.diagnose(finished, len(programs), cores)}
	}
	if v := m.Sys.Violation; v != nil {
		return fail(v)
	}
	if stalled {
		return fail(ErrStalled)
	}
	if !ok {
		if finished < len(programs) && eng.Pending() == 0 {
			return fail(fmt.Errorf("machine: deadlock — %d/%d programs finished and no events pending",
				finished, len(programs)))
		}
		return fail(ErrTimeout)
	}
	eng.Run(0) // drain writebacks and in-flight background work
	if v := m.Sys.Violation; v != nil {
		// Release-time audits keep running while the queue drains.
		return fail(v)
	}
	if m.Sys.Check != nil {
		if v := m.Sys.AuditCoherence(); v != nil {
			return fail(v)
		}
		if v := m.Sys.AuditDrained(); v != nil {
			return fail(v)
		}
		if leaks := m.Sys.Obs.Leaks(); len(leaks) > 0 {
			return fail(check.LeakViolation(eng.Now(), leaks))
		}
	}
	if rec := m.Cfg.Interval; rec != nil {
		// Close the partial tail interval so the series covers the full run.
		m.sample(rec, cores)
	}
	return m.collect(cores), nil
}

// sample feeds one cumulative counter reading to the interval recorder.
func (m *Machine) sample(rec *profile.Recorder, cores []*cpu.Core) {
	s := profile.Sample{
		Links:     m.Sys.Mesh.Links(),
		LineBytes: memory.LineSize,
	}
	for _, c := range cores {
		if c != nil {
			s.Instructions += c.Instructions
		}
	}
	s.FlitHops = m.Sys.Mesh.Stats().FlitHops
	mem := m.Sys.Mem.Stats()
	s.HBMReads, s.HBMWrites = mem.Reads, mem.Writes
	rec.Observe(m.Sys.Engine.Now(), s, m.Sys.Obs.Histograms())
}

// collect aggregates statistics into a Result.
func (m *Machine) collect(cores []*cpu.Core) *Result {
	r := &Result{Policy: m.Cfg.Policy, Detail: stats.NewGroup()}
	var amoLatencySum, latencySamples uint64
	for _, c := range cores {
		r.Instructions += c.Instructions
		if c.FinishedAt > r.Cycles {
			r.Cycles = c.FinishedAt
		}
	}
	var ev energy.Events
	for _, rn := range m.Sys.RNs {
		s := rn.Stats
		r.AMOs += s.AMOs
		r.AMOLoads += s.AMOLoadOps
		r.AMOStores += s.AMOStoreOps
		r.NearLocal += s.AMONearLocal
		r.NearTxn += s.AMONearTxn
		r.Far += s.AMOFar
		amoLatencySum += s.AMOLatencySum
		latencySamples += s.AMOs
		ev.L1Accesses += s.L1Hits + s.L1Misses + s.SnoopsReceived
		ev.L2Accesses += s.L2Hits + s.L2Misses
		r.Detail.Add("rn.loads", s.Loads)
		r.Detail.Add("rn.stores", s.Stores)
		r.Detail.Add("rn.amos", s.AMOs)
		r.Detail.Add("rn.l1.hits", s.L1Hits)
		r.Detail.Add("rn.l1.misses", s.L1Misses)
		r.Detail.Add("rn.l2.hits", s.L2Hits)
		r.Detail.Add("rn.l2.misses", s.L2Misses)
		r.Detail.Add("rn.snoops", s.SnoopsReceived)
		r.Detail.Add("rn.invalidations", s.Invalidations)
		r.Detail.Add("rn.writebacks", s.WriteBacks)
	}
	for _, hn := range m.Sys.HNs {
		s := hn.Stats
		ev.LLCAccesses += s.LLCHits + s.LLCMisses
		ev.DirLookups += s.ReadShared + s.ReadUnique + s.WriteBacks + s.Atomics
		ev.AMOBufAccesses += s.AMOBufHits + s.AMOBufMisses
		ev.ALUOps += s.Atomics
		r.Detail.Add("hn.readshared", s.ReadShared)
		r.Detail.Add("hn.readunique", s.ReadUnique)
		r.Detail.Add("hn.writebacks", s.WriteBacks)
		r.Detail.Add("hn.atomics", s.Atomics)
		r.Detail.Add("hn.llc.hits", s.LLCHits)
		r.Detail.Add("hn.llc.misses", s.LLCMisses)
		r.Detail.Add("hn.amobuf.hits", s.AMOBufHits)
		r.Detail.Add("hn.snoops.sent", s.SnoopsSent)
	}
	r.NoC = m.Sys.Mesh.Stats()
	r.Mem = m.Sys.Mem.Stats()
	ev.FlitHops = r.NoC.FlitHops
	ev.MemAccesses = r.Mem.Reads + r.Mem.Writes
	r.Events = ev
	r.Energy = m.model.Compute(ev)
	if r.Instructions > 0 {
		r.APKI = float64(r.AMOs) / float64(r.Instructions) * 1000
	}
	if latencySamples > 0 {
		r.AvgAMOLatency = float64(amoLatencySum) / float64(latencySamples)
	}
	r.Detail.Add("noc.messages", r.NoC.Messages)
	r.Detail.Add("noc.flits", r.NoC.Flits)
	r.Detail.Add("noc.flithops", r.NoC.FlitHops)
	r.Detail.Add("mem.reads", r.Mem.Reads)
	r.Detail.Add("mem.writes", r.Mem.Writes)
	if m.Sys.Obs != nil {
		r.Obs = m.Sys.Obs.Report()
	}
	r.Check = m.Sys.Check.Report()
	return r
}
