package machine

import (
	"fmt"
	"strings"

	"dynamo/internal/cpu"
	"dynamo/internal/obs/profile"
	"dynamo/internal/sim"
)

// ErrStalled reports a run the forward-progress watchdog gave up on: the
// engine kept executing events but no core committed an instruction for
// the configured window. Match with errors.Is; the returned error is a
// *RunError whose Diag explains where the machine was stuck.
var ErrStalled = fmt.Errorf("machine: no forward progress")

// RunError is a failed run with an attached machine diagnostic: what the
// event queue, cores, MSHRs, home nodes and hottest lines looked like at
// the moment the run was abandoned. It unwraps to its cause, so
// errors.Is(err, ErrTimeout) and errors.Is(err, ErrStalled) keep working.
type RunError struct {
	Cause error
	Diag  *Diag
}

// Error renders the cause followed by the diagnostic report.
func (e *RunError) Error() string {
	return e.Cause.Error() + "\n" + e.Diag.String()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Cause }

// Diag is a point-in-time snapshot of a wedged machine.
type Diag struct {
	// Cycle and Events locate the snapshot in simulated time and engine
	// work.
	Cycle  sim.Tick `json:"cycle"`
	Events uint64   `json:"events"`
	// Finished / Programs count completed workload programs.
	Finished int `json:"finished"`
	Programs int `json:"programs"`
	// Instructions is the total committed across all cores.
	Instructions uint64 `json:"instructions"`
	// PendingEvents is the event-queue depth; NextEventAt is the head
	// event's time (equal to Cycle when the queue is empty).
	PendingEvents int      `json:"pending_events"`
	NextEventAt   sim.Tick `json:"next_event_at"`
	// MSHRs is the outstanding-fill count per RN; HNBusy the blocked-line
	// count per HN slice.
	MSHRs  []int `json:"mshrs"`
	HNBusy []int `json:"hn_busy"`
	// HotLines is the contention profiler's table of the hottest AMO
	// lines, when a profiler was attached to the run.
	HotLines string `json:"hot_lines,omitempty"`
}

// String renders the diagnostic as an indented multi-line report.
func (d *Diag) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  at cycle %d after %d events: %d/%d programs finished, %d instructions committed\n",
		d.Cycle, d.Events, d.Finished, d.Programs, d.Instructions)
	if d.PendingEvents == 0 {
		b.WriteString("  event queue: empty\n")
	} else {
		fmt.Fprintf(&b, "  event queue: %d pending, head at cycle %d (+%d)\n",
			d.PendingEvents, d.NextEventAt, d.NextEventAt-d.Cycle)
	}
	fmt.Fprintf(&b, "  outstanding fills per core: %s\n", countList(d.MSHRs))
	fmt.Fprintf(&b, "  blocked lines per HN slice: %s", countList(d.HNBusy))
	if d.HotLines != "" {
		b.WriteString("\n  hottest contended lines:\n")
		for _, line := range strings.Split(strings.TrimRight(d.HotLines, "\n"), "\n") {
			b.WriteString("    " + line + "\n")
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// countList renders per-node counts compactly, eliding nodes at zero when
// everything is quiet.
func countList(counts []int) string {
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return "all idle"
	}
	var parts []string
	for i, n := range counts {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d:%d", i, n))
		}
	}
	return strings.Join(parts, " ")
}

// diagnose snapshots the machine for a failed-run report.
func (m *Machine) diagnose(finished, programs int, cores []*cpu.Core) *Diag {
	eng := m.Sys.Engine
	d := &Diag{
		Cycle:         eng.Now(),
		Events:        eng.Executed(),
		Finished:      finished,
		Programs:      programs,
		PendingEvents: eng.Pending(),
		NextEventAt:   eng.Now(),
	}
	if t, ok := eng.Head(); ok {
		d.NextEventAt = t
	}
	for _, c := range cores {
		if c != nil {
			d.Instructions += c.Instructions
		}
	}
	for _, rn := range m.Sys.RNs {
		d.MSHRs = append(d.MSHRs, rn.MSHRCount())
	}
	for _, hn := range m.Sys.HNs {
		d.HNBusy = append(d.HNBusy, hn.BusyLines())
	}
	if bus := m.Sys.Obs; bus != nil {
		if p, ok := bus.Contention().(*profile.Profiler); ok {
			d.HotLines = p.Report(bus.SiteOf).Table().String()
		}
	}
	return d
}
