package machine

import (
	"errors"
	"strings"
	"testing"

	"dynamo/internal/check"
	"dynamo/internal/cpu"
	"dynamo/internal/memory"
)

func TestWatchdogCatchesStall(t *testing.T) {
	cfg := smallConfig("all-near")
	cfg.WatchdogEvents = 70_000
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run([]cpu.Program{func(th *cpu.Thread) {
		for { // generates events forever but never commits an instruction
			th.Pause(10)
		}
	}})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Error("stall also matches ErrTimeout")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err %T is not a *RunError", err)
	}
	d := re.Diag
	if d == nil {
		t.Fatal("no diagnostic attached")
	}
	if d.Finished != 0 || d.Programs != 1 {
		t.Errorf("diag programs = %d/%d, want 0/1", d.Finished, d.Programs)
	}
	if len(d.MSHRs) != cfg.Chi.Cores || len(d.HNBusy) != cfg.Chi.HNSlices {
		t.Errorf("diag sized %d RNs / %d HNs, want %d/%d",
			len(d.MSHRs), len(d.HNBusy), cfg.Chi.Cores, cfg.Chi.HNSlices)
	}
	msg := err.Error()
	for _, want := range []string{"no forward progress", "programs finished", "event queue", "blocked lines"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error text missing %q:\n%s", want, msg)
		}
	}
}

func TestTimeoutCarriesDiagnostic(t *testing.T) {
	cfg := smallConfig("all-near")
	cfg.MaxEvents = 1000
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run([]cpu.Program{func(th *cpu.Thread) {
		for {
			th.Load(0x1)
			th.Compute(1)
		}
	}})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Diag == nil {
		t.Fatalf("timeout carries no diagnostic: %v", err)
	}
	if re.Diag.Instructions == 0 {
		t.Error("diag shows zero committed instructions for a computing loop")
	}
}

func TestCheckedRunReportsClean(t *testing.T) {
	cfg := smallConfig("all-near")
	cfg.Check = &check.Config{}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := func(th *cpu.Thread) {
		for i := 0; i < 50; i++ {
			th.AMOStore(memory.AMOAdd, 0x1000, 1)
			th.Load(memory.Addr(0x2000 + 64*i))
		}
		th.Fence()
	}
	res, err := m.Run([]cpu.Program{prog, prog})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Sys.Data.Load(0x1000); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
	rep := res.Check
	if rep == nil {
		t.Fatal("no check report on a checked run")
	}
	if !rep.Clean {
		t.Error("report not clean")
	}
	if rep.Audits == 0 {
		t.Error("no full audits (final pass should always count)")
	}
	if rep.ReleaseAudits == 0 {
		t.Error("no release audits")
	}
	if rep.MaxMSHRs == 0 {
		t.Error("MSHR occupancy never observed")
	}
}

func TestUncheckedRunHasNoReport(t *testing.T) {
	m, err := New(smallConfig("all-near"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run([]cpu.Program{func(th *cpu.Thread) { th.Compute(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Check != nil {
		t.Fatalf("unchecked run produced a check report: %+v", res.Check)
	}
}

func TestCheckedRunCatchesPlantedCorruption(t *testing.T) {
	cfg := smallConfig("all-near")
	cfg.Check = &check.Config{Interval: 1000}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two unique owners of a line the program never touches: only the
	// sanitizer's audit walk can see it.
	m.Sys.RNs[0].ForceStateForTest(0x7000>>6, memory.UniqueDirty)
	m.Sys.RNs[1].ForceStateForTest(0x7000>>6, memory.UniqueDirty)
	_, err = m.Run([]cpu.Program{func(th *cpu.Thread) {
		for i := 0; i < 100; i++ {
			th.AMOStore(memory.AMOAdd, 0x1000, 1)
		}
	}})
	if err == nil {
		t.Fatal("planted double-unique not caught")
	}
	if !errors.Is(err, check.ErrViolation) {
		t.Fatalf("err = %v, want a check violation", err)
	}
	var v *check.Violation
	if !errors.As(err, &v) || v.Kind != check.KindSWMR {
		t.Fatalf("violation = %v, want swmr", err)
	}
}
