package cpu

import (
	"testing"

	"dynamo/internal/chi"
	"dynamo/internal/hbm"
	"dynamo/internal/memory"
	"dynamo/internal/noc"
	"dynamo/internal/sim"
)

type nearPolicy struct{}

func (nearPolicy) Name() string                                        { return "near" }
func (nearPolicy) Decide(int, memory.Line, memory.State) chi.Placement { return chi.Near }
func (nearPolicy) OnNearComplete(int, memory.Line)                     {}
func (nearPolicy) OnFill(int, memory.Line, bool)                       {}
func (nearPolicy) OnHit(int, memory.Line)                              {}
func (nearPolicy) OnEvict(int, memory.Line)                            {}
func (nearPolicy) OnInvalidate(int, memory.Line)                       {}

func testSystem(t testing.TB) *chi.System {
	t.Helper()
	cfg := chi.Config{
		Cores: 4, HNSlices: 4,
		L1Sets: 16, L1Ways: 4, L2Sets: 64, L2Ways: 8, LLCSets: 256, LLCWays: 8,
		AMOBufEntries: 16,
		L1Latency:     2, L2Latency: 8, DirLatency: 2, LLCDataLatency: 10,
		ALULatency: 1, AMOBufLatency: 1, FarAMOOccupancy: 4,
		Mesh: noc.Config{Width: 4, Height: 4, RouteLatency: 1, LinkLatency: 1},
		Mem:  hbm.Config{Channels: 8, Latency: 100, LineOccupancy: 2},
	}
	s, err := chi.NewSystem(cfg, nearPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runProgram executes programs on consecutive cores until all finish.
func runProgram(t *testing.T, s *chi.System, progs ...Program) []*Core {
	t.Helper()
	var cores []*Core
	finished := 0
	for i, p := range progs {
		c, err := New(DefaultConfig(), s.Engine, s.RNs[i], p, func() { finished++ })
		if err != nil {
			t.Fatal(err)
		}
		cores = append(cores, c)
		c.Start(0)
	}
	if !s.Engine.RunUntil(func() bool { return finished == len(progs) }, 50_000_000) {
		t.Fatal("programs did not finish")
	}
	s.Engine.Run(0)
	return cores
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{StoreBuffer: 0, MaxAtomics: 2, IssueCost: 1}).Validate(); err == nil {
		t.Error("zero store buffer accepted")
	}
	if err := (Config{StoreBuffer: 4, MaxAtomics: 2, IssueCost: 0}).Validate(); err == nil {
		t.Error("zero issue cost accepted")
	}
}

func TestNilProgramRejected(t *testing.T) {
	s := testSystem(t)
	if _, err := New(DefaultConfig(), s.Engine, s.RNs[0], nil, nil); err == nil {
		t.Fatal("nil program accepted")
	}
}

func TestSequentialExecution(t *testing.T) {
	s := testSystem(t)
	var loaded uint64
	cores := runProgram(t, s, func(th *Thread) {
		th.Store(0x100, 7)
		th.Compute(10)
		loaded = th.Load(0x100)
	})
	if loaded != 7 {
		t.Fatalf("loaded %d, want 7", loaded)
	}
	// 1 store + 10 compute + 1 load = 12 instructions.
	if cores[0].Instructions != 12 {
		t.Fatalf("Instructions = %d, want 12", cores[0].Instructions)
	}
	if cores[0].FinishedAt == 0 {
		t.Fatal("FinishedAt not recorded")
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	s := testSystem(t)
	runProgram(t, s, func(th *Thread) { th.Compute(1000) })
	if s.Engine.Now() < 1000 {
		t.Fatalf("engine at %d after Compute(1000)", s.Engine.Now())
	}
}

func TestComputeZeroIsFree(t *testing.T) {
	s := testSystem(t)
	runProgram(t, s, func(th *Thread) {
		th.Compute(0)
		th.Compute(-3)
	})
	if s.Engine.Now() != 0 {
		t.Fatalf("engine advanced to %d for no-op computes", s.Engine.Now())
	}
}

func TestAMOReturnsOldValue(t *testing.T) {
	s := testSystem(t)
	var old1, old2 uint64
	runProgram(t, s, func(th *Thread) {
		old1 = th.AMO(memory.AMOAdd, 0x200, 5)
		old2 = th.AMO(memory.AMOAdd, 0x200, 5)
	})
	if old1 != 0 || old2 != 5 {
		t.Fatalf("AMO olds = %d,%d, want 0,5", old1, old2)
	}
	if got := s.Data.Load(0x200); got != 10 {
		t.Fatalf("memory = %d, want 10", got)
	}
}

func TestCAS(t *testing.T) {
	s := testSystem(t)
	var won, lost uint64
	runProgram(t, s, func(th *Thread) {
		won = th.CAS(0x300, 0, 1)  // expect success: old 0
		lost = th.CAS(0x300, 0, 2) // expect failure: old 1
	})
	if won != 0 || lost != 1 {
		t.Fatalf("CAS results = %d,%d, want 0,1", won, lost)
	}
	if got := s.Data.Load(0x300); got != 1 {
		t.Fatalf("memory = %d, want 1", got)
	}
}

func TestPostedStoresOverlap(t *testing.T) {
	// Posted stores to distinct lines should overlap: total time must be
	// far below the sum of individual miss latencies.
	s := testSystem(t)
	const n = 8
	runProgram(t, s, func(th *Thread) {
		for i := 0; i < n; i++ {
			th.Store(memory.Addr(0x1000+i*64), uint64(i))
		}
	})
	// A single cold store costs >100 cycles; 8 posted ones must not take
	// 8x that.
	if s.Engine.Now() > 400 {
		t.Fatalf("posted stores took %d cycles; expected overlap", s.Engine.Now())
	}
	for i := 0; i < n; i++ {
		if got := s.Data.Load(memory.Addr(0x1000 + i*64)); got != uint64(i) {
			t.Fatalf("store %d lost: %d", i, got)
		}
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	s := testSystem(t)
	cfg := Config{StoreBuffer: 2, MaxAtomics: 2, IssueCost: 1}
	finished := false
	c, err := New(cfg, s.Engine, s.RNs[0], func(th *Thread) {
		for i := 0; i < 20; i++ {
			th.Store(memory.Addr(0x2000+i*64*16), uint64(i)) // all conflict-free misses
		}
	}, func() { finished = true })
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	if !s.Engine.RunUntil(func() bool { return finished }, 10_000_000) {
		t.Fatal("did not finish")
	}
	s.Engine.Run(0)
	// With 2 outstanding max and ~100-cycle misses, 20 stores must take at
	// least ~(20/2)*100 cycles.
	if s.Engine.Now() < 800 {
		t.Fatalf("store buffer of 2 finished in %d cycles; backpressure missing", s.Engine.Now())
	}
}

func TestAMOStoreCommitsEarly(t *testing.T) {
	s := testSystem(t)
	// Warm up the counter line far away from core 0... keep near policy:
	// AtomicStore with near placement still posts. Measure that the
	// program's issue side is much faster than blocking AMOs.
	elapsedPosted := func() sim.Tick {
		s := testSystem(t)
		runProgram(t, s, func(th *Thread) {
			for i := 0; i < 50; i++ {
				th.AMOStore(memory.AMOAdd, 0x400, 1)
			}
		})
		return s.Engine.Now()
	}()
	elapsedBlocking := func() sim.Tick {
		s := testSystem(t)
		runProgram(t, s, func(th *Thread) {
			for i := 0; i < 50; i++ {
				th.AMO(memory.AMOAdd, 0x400, 1)
			}
		})
		return s.Engine.Now()
	}()
	_ = s
	if elapsedPosted >= elapsedBlocking {
		t.Fatalf("AtomicStore (%d) not faster than AtomicLoad (%d)", elapsedPosted, elapsedBlocking)
	}
}

func TestTwoThreadsCommunicate(t *testing.T) {
	s := testSystem(t)
	const flag, data = 0x500, 0x540
	var got uint64
	runProgram(t, s,
		func(th *Thread) {
			th.Store(data, 99)
			th.AMOStoreRelease(memory.AMOAdd, flag, 1)
		},
		func(th *Thread) {
			for th.Load(flag) == 0 {
				th.Compute(20)
			}
			got = th.Load(data)
		},
	)
	if got != 99 {
		t.Fatalf("consumer read %d, want 99", got)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	s := testSystem(t)
	const lock, counter = 0x600, 0x640
	const iters = 30
	worker := func(th *Thread) {
		for i := 0; i < iters; i++ {
			for th.CAS(lock, 0, 1) != 0 {
				th.Compute(10)
			}
			// Critical section: non-atomic read-modify-write is only safe
			// under mutual exclusion.
			v := th.Load(counter)
			th.Compute(5)
			th.Store(counter, v+1)
			th.AMOStoreRelease(memory.AMOSwap, lock, 0)
		}
	}
	runProgram(t, s, worker, worker, worker, worker)
	if got := s.Data.Load(counter); got != 4*iters {
		t.Fatalf("counter = %d, want %d (lock failed to exclude)", got, 4*iters)
	}
}

func TestFenceDrainsStoreBuffer(t *testing.T) {
	s := testSystem(t)
	var after sim.Tick
	runProgram(t, s, func(th *Thread) {
		for i := 0; i < 8; i++ {
			th.Store(memory.Addr(0x3000+i*64*16), 1)
		}
		th.Fence()
		after = sim.Tick(0) // marker: reached only after the fence
	})
	// The fence must wait for the cold misses (>100 cycles each, posted).
	if s.Engine.Now() < 100 {
		t.Fatalf("fence returned at %d, before stores could complete", s.Engine.Now())
	}
	_ = after
}

func TestStoreReleaseOrdersData(t *testing.T) {
	s := testSystem(t)
	const flag, data = 0x800, 0x880
	var got uint64
	runProgram(t, s,
		func(th *Thread) {
			th.Store(data, 42)
			th.StoreRelease(flag, 1)
		},
		func(th *Thread) {
			for th.Load(flag) == 0 {
				th.Compute(15)
			}
			got = th.Load(data)
		},
	)
	if got != 42 {
		t.Fatalf("consumer read %d, want 42", got)
	}
}

func TestThreadID(t *testing.T) {
	s := testSystem(t)
	ids := make([]int, 2)
	runProgram(t, s,
		func(th *Thread) { ids[0] = th.ID() },
		func(th *Thread) { ids[1] = th.ID() },
	)
	if ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("thread IDs = %v", ids)
	}
}

func TestAbortUnblocksProgram(t *testing.T) {
	s := testSystem(t)
	c, err := New(DefaultConfig(), s.Engine, s.RNs[0], func(th *Thread) {
		for {
			th.Load(0x700) // spins forever
			th.Compute(10)
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(0)
	s.Engine.RunUntil(func() bool { return false }, 1000)
	c.Abort()
	if !c.Finished() {
		t.Fatal("aborted core not finished")
	}
	// Double abort is safe.
	c.Abort()
}

func TestAbortNeverStarted(t *testing.T) {
	s := testSystem(t)
	c, err := New(DefaultConfig(), s.Engine, s.RNs[0], func(th *Thread) {
		th.Load(0x700)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Abort()
	if !c.Finished() {
		t.Fatal("aborted core not finished")
	}
}
