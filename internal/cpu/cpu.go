// Package cpu provides the core timing model that drives the coherent
// memory system, and the Thread API that workload programs run against.
//
// The model captures the consistency effects Section III-B1 of the paper
// identifies as decisive for AMO placement: value-returning operations
// (loads, AtomicLoads, CAS) block the issuing thread until they complete,
// while stores and AtomicStores are posted through a finite store buffer
// and commit early. Everything else about the core is abstracted to an
// IPC-1 compute model — the studied effects live in the memory system.
//
// Programs execute on their own goroutines and interact with the simulated
// core through blocking Thread methods. The handoff between the simulation
// thread and program goroutines is strictly sequential (an unbuffered
// channel rendezvous), so simulations remain fully deterministic.
package cpu

import (
	"fmt"
	"sort"

	"dynamo/internal/chi"
	"dynamo/internal/memory"
	"dynamo/internal/obs"
	"dynamo/internal/perf"
	"dynamo/internal/sim"
)

// Program is the code a simulated thread runs.
type Program func(t *Thread)

// opKind classifies thread operations.
type opKind uint8

const (
	opCompute opKind = iota
	opLoad
	opStore
	opAMO      // value-returning (AtomicLoad/CAS)
	opAMOStore // no-return (AtomicStore)
	opFence
	opPause
)

type op struct {
	kind    opKind
	cycles  sim.Tick
	addr    memory.Addr
	amo     memory.AMOOp
	operand uint64
	compare uint64
}

// abortSignal terminates program goroutines when a run is abandoned.
type abortSignal struct{}

// Thread is the interface a Program uses to execute simulated operations.
// All methods block (in program-goroutine time) until the simulated core
// accepts or completes the operation.
type Thread struct {
	id  int
	ops chan op
	res chan uint64
}

// ID returns the thread's index, which equals its core index.
func (t *Thread) ID() int { return t.id }

func (t *Thread) exchange(o op) uint64 {
	t.ops <- o
	v, ok := <-t.res
	if !ok {
		panic(abortSignal{})
	}
	return v
}

// Compute advances simulated time by n cycles of local work, committing n
// instructions.
func (t *Thread) Compute(n int) {
	if n <= 0 {
		return
	}
	t.exchange(op{kind: opCompute, cycles: sim.Tick(n)})
}

// Pause advances simulated time by n cycles without committing
// instructions, modeling a WFE/monitor-gated or futex-backed wait. Spin
// loops in synchronization primitives use it so APKI reflects useful
// instructions, matching how the paper's benchmarks (futex-based POSIX
// primitives) behave.
func (t *Thread) Pause(n int) {
	if n <= 0 {
		return
	}
	t.exchange(op{kind: opPause, cycles: sim.Tick(n)})
}

// Load reads the 64-bit word at a, blocking until the value returns.
func (t *Thread) Load(a memory.Addr) uint64 {
	return t.exchange(op{kind: opLoad, addr: a})
}

// Store writes v at a. The store is posted: the call returns once the
// store buffer accepts it.
func (t *Thread) Store(a memory.Addr, v uint64) {
	t.exchange(op{kind: opStore, addr: a, operand: v})
}

// AMO performs a value-returning atomic (CHI AtomicLoad/CAS semantics) and
// blocks until the prior value arrives.
func (t *Thread) AMO(amo memory.AMOOp, a memory.Addr, operand uint64) uint64 {
	return t.exchange(op{kind: opAMO, addr: a, amo: amo, operand: operand})
}

// CAS atomically compares the word at a with expect and stores v on a
// match, returning the prior value.
func (t *Thread) CAS(a memory.Addr, expect, v uint64) uint64 {
	return t.exchange(op{kind: opAMO, addr: a, amo: memory.AMOCAS, operand: v, compare: expect})
}

// AMOStore performs a no-return atomic (CHI AtomicStore semantics): the
// call returns once the store buffer accepts it, letting the core commit
// past it (Section III-B1).
func (t *Thread) AMOStore(amo memory.AMOOp, a memory.Addr, operand uint64) {
	t.exchange(op{kind: opAMOStore, addr: a, amo: amo, operand: operand})
}

// Fence blocks until every posted store and AtomicStore has completed —
// release semantics (Armv8 stlr / dmb), required before publishing a lock
// release or a producer flag.
func (t *Thread) Fence() {
	t.exchange(op{kind: opFence})
}

// StoreRelease writes v at a with release ordering: it fences and then
// performs a posted store.
func (t *Thread) StoreRelease(a memory.Addr, v uint64) {
	t.Fence()
	t.Store(a, v)
}

// AMOStoreRelease performs a no-return atomic with release ordering.
func (t *Thread) AMOStoreRelease(amo memory.AMOOp, a memory.Addr, operand uint64) {
	t.Fence()
	t.AMOStore(amo, a, operand)
}

// ObservedOp describes one executed thread operation for tracing.
type ObservedOp struct {
	Core     int
	Load     bool
	Store    bool
	AMO      bool
	NoReturn bool
	Compute  bool
	Cycles   sim.Tick
	Op       memory.AMOOp
	Addr     memory.Addr
	Operand  uint64
}

// Config sizes the core model.
type Config struct {
	// StoreBuffer bounds posted (non-blocking) operations in flight.
	StoreBuffer int
	// MaxAtomics bounds posted AtomicStores in flight: atomics drain from
	// the store queue nearly in order, so only a couple overlap (this is
	// what lets a slow, contended atomic backpressure the core).
	MaxAtomics int
	// IssueCost is the cycle cost of issuing a posted operation.
	IssueCost sim.Tick
	// Observe, when non-nil, receives every executed operation (tracing).
	Observe func(ObservedOp)
	// Obs, when non-nil, receives stall spans (named "stall:<reason>") on
	// the core's track whenever the program blocks on a structural hazard.
	Obs *obs.Bus
}

// DefaultConfig mirrors a Neoverse-class store queue scaled to the posted
// operations the model tracks.
func DefaultConfig() Config { return Config{StoreBuffer: 16, MaxAtomics: 2, IssueCost: 1} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.StoreBuffer <= 0 {
		return fmt.Errorf("cpu: store buffer %d", c.StoreBuffer)
	}
	if c.MaxAtomics <= 0 {
		return fmt.Errorf("cpu: max atomics %d", c.MaxAtomics)
	}
	if c.IssueCost == 0 {
		return fmt.Errorf("cpu: zero issue cost")
	}
	return nil
}

// Core binds one program to one request node.
type Core struct {
	cfg    Config
	engine *sim.Engine
	rn     *chi.RN
	thread *Thread

	started        bool
	finished       bool
	aborted        bool
	outstanding    int
	outstandingAMO int
	// pendingWords counts in-flight posted operations per 8-byte word, to
	// preserve program order: a load (or value-returning AMO) to a word
	// with a pending posted write must not complete with a stale value.
	pendingWords map[memory.Addr]int
	// resume/ready hold the single blocked continuation (the program
	// thread can only wait on one condition at a time).
	resume   func()
	ready    func() bool
	onFinish func()
	// stallName/stallStart describe the pending blocked continuation for
	// the observability bus; stallName is empty when no stall is recorded.
	stallName  string
	stallStart sim.Tick

	// Instructions counts committed instructions (compute cycles count one
	// each), the denominator of APKI.
	Instructions uint64
	// FinishedAt is the cycle the program completed.
	FinishedAt sim.Tick
}

// New creates a core running prog against rn. Call Start to schedule its
// first fetch; onFinish runs when the program returns.
func New(cfg Config, engine *sim.Engine, rn *chi.RN, prog Program, onFinish func()) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prog == nil {
		return nil, fmt.Errorf("cpu: nil program")
	}
	c := &Core{
		cfg:          cfg,
		engine:       engine,
		rn:           rn,
		onFinish:     onFinish,
		pendingWords: make(map[memory.Addr]int),
		thread: &Thread{
			id:  rn.ID(),
			ops: make(chan op),
			res: make(chan uint64),
		},
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok {
					panic(r)
				}
			}
			close(c.thread.ops)
		}()
		prog(c.thread)
	}()
	return c, nil
}

// Start schedules the core's first instruction after delay cycles.
func (c *Core) Start(delay sim.Tick) {
	c.engine.ScheduleKind(delay, perf.KindCPU, func() { c.advance(0) })
}

// Finished reports whether the program has returned.
func (c *Core) Finished() bool { return c.finished }

// Abort terminates the program goroutine of an abandoned run. The core
// must not be advanced afterwards.
func (c *Core) Abort() {
	if c.finished || c.aborted {
		return
	}
	c.aborted = true
	close(c.thread.res)
	// Drain remaining operations so a goroutine blocked on an op send can
	// reach its failing result receive and unwind.
	for range c.thread.ops {
	}
	c.finished = true
}

// advance hands result to the program and executes its next operation.
// It runs on the simulation thread.
func (c *Core) advance(result uint64) {
	if c.aborted {
		return
	}
	if c.started {
		c.thread.res <- result
	} else {
		c.started = true
	}
	o, ok := <-c.thread.ops
	if !ok {
		c.finished = true
		c.FinishedAt = c.engine.Now()
		if c.onFinish != nil {
			c.onFinish()
		}
		return
	}
	c.execute(o)
}

func (c *Core) execute(o op) {
	if c.cfg.Observe != nil {
		c.cfg.Observe(ObservedOp{
			Core:     c.rn.ID(),
			Load:     o.kind == opLoad,
			Store:    o.kind == opStore,
			AMO:      o.kind == opAMO || o.kind == opAMOStore,
			NoReturn: o.kind == opAMOStore,
			Compute:  o.kind == opCompute,
			Cycles:   o.cycles,
			Op:       o.amo,
			Addr:     o.addr,
			Operand:  o.operand,
		})
	}
	switch o.kind {
	case opCompute:
		c.Instructions += uint64(o.cycles)
		c.engine.ScheduleKind(o.cycles, perf.KindCPU, func() { c.advance(0) })
	case opPause:
		c.engine.ScheduleKind(o.cycles, perf.KindCPU, func() { c.advance(0) })
	case opFence:
		c.Instructions++
		c.when("stall:fence", func() bool { return c.outstanding == 0 }, func() {
			c.engine.ScheduleKind(0, perf.KindCPU, func() { c.advance(0) })
		})
	case opLoad:
		c.Instructions++
		c.when("stall:load-order", c.wordClear(o.addr), func() {
			c.rn.Access(&chi.Request{
				Kind: chi.Load,
				Addr: o.addr,
				Done: func(v uint64) { c.advance(v) },
			})
		})
	case opAMO:
		c.Instructions++
		c.when("stall:atomic-order", c.wordClear(o.addr), func() {
			c.rn.Access(&chi.Request{
				Kind:    chi.AMO,
				Addr:    o.addr,
				Op:      o.amo,
				Operand: o.operand,
				Compare: o.compare,
				Done:    func(v uint64) { c.advance(v) },
			})
		})
	case opStore, opAMOStore:
		c.Instructions++
		isAMO := o.kind == opAMOStore
		issue := func() {
			c.outstanding++
			if isAMO {
				c.outstandingAMO++
			}
			w := wordOf(o.addr)
			c.pendingWords[w]++
			req := &chi.Request{
				Addr:    o.addr,
				Operand: o.operand,
				Done: func(uint64) {
					if c.pendingWords[w]--; c.pendingWords[w] == 0 {
						delete(c.pendingWords, w)
					}
					if isAMO {
						c.outstandingAMO--
					}
					c.posted()
				},
			}
			if o.kind == opStore {
				req.Kind = chi.Store
			} else {
				req.Kind = chi.AMO
				req.Op = o.amo
				req.NoReturn = true
			}
			c.rn.Access(req)
			c.engine.ScheduleKind(c.cfg.IssueCost, perf.KindCPU, func() { c.advance(0) })
		}
		stall := "stall:store-buffer"
		if isAMO && c.outstanding < c.cfg.StoreBuffer {
			stall = "stall:atomic-queue"
		}
		c.when(stall, func() bool {
			if c.outstanding >= c.cfg.StoreBuffer {
				return false
			}
			return !isAMO || c.outstandingAMO < c.cfg.MaxAtomics
		}, issue)
	}
}

// PendingWord is one (word, in-flight posted writes) pair of a snapshot.
type PendingWord struct {
	Addr  memory.Addr
	Count int
}

// Snapshot is a serializable image of the core's externally visible state.
// The blocked continuation itself cannot be serialized; Blocked records
// only whether one is pending — checkpoint verification replays the
// deterministic event stream, which reconstructs the continuation.
type Snapshot struct {
	Started        bool
	Finished       bool
	Blocked        bool
	Outstanding    int
	OutstandingAMO int
	Instructions   uint64
	FinishedAt     sim.Tick
	PendingWords   []PendingWord
}

// Snapshot captures the core state in canonical (address-sorted) order.
func (c *Core) Snapshot() Snapshot {
	words := make([]PendingWord, 0, len(c.pendingWords))
	for a, n := range c.pendingWords {
		words = append(words, PendingWord{Addr: a, Count: n})
	}
	sort.Slice(words, func(i, j int) bool { return words[i].Addr < words[j].Addr })
	return Snapshot{
		Started:        c.started,
		Finished:       c.finished,
		Blocked:        c.resume != nil,
		Outstanding:    c.outstanding,
		OutstandingAMO: c.outstandingAMO,
		Instructions:   c.Instructions,
		FinishedAt:     c.FinishedAt,
		PendingWords:   words,
	}
}

func wordOf(a memory.Addr) memory.Addr { return a &^ 7 }

// wordClear is the program-order condition for value-returning accesses: no
// posted write to the same word may still be in flight, otherwise the
// access could observe a pre-write value (the model has no store-to-load
// forwarding, so it conservatively stalls instead).
func (c *Core) wordClear(a memory.Addr) func() bool {
	w := wordOf(a)
	return func() bool { return c.pendingWords[w] == 0 }
}

// when runs fn once cond holds, blocking the program until then. At most
// one continuation can be pending because the program thread is blocked
// while it waits. stall names the hazard for the observability bus.
func (c *Core) when(stall string, cond func() bool, fn func()) {
	if cond() {
		fn()
		return
	}
	if c.resume != nil {
		panic("cpu: second blocked continuation")
	}
	if c.cfg.Obs != nil {
		c.stallName, c.stallStart = stall, c.engine.Now()
	}
	c.ready = cond
	c.resume = fn
}

// posted retires one posted operation, unblocking the waiting continuation
// (a stalled issue, a draining fence, or an ordering-stalled access) if
// its condition now holds.
func (c *Core) posted() {
	c.outstanding--
	if c.resume != nil && c.ready() {
		f := c.resume
		c.resume, c.ready = nil, nil
		if c.stallName != "" {
			now := c.engine.Now()
			c.cfg.Obs.Span(obs.Track{Group: obs.TrackCore, ID: c.rn.ID()}, c.stallName, c.stallStart, now-c.stallStart)
			// Cumulative stall cycles across cores: interval telemetry
			// differences this to show where a phase loses throughput.
			c.cfg.Obs.Count("cpu.stall-cycles", uint64(now-c.stallStart))
			c.stallName = ""
		}
		f()
	}
}
