package experiments

import (
	"strings"
	"testing"
)

// determinismIDs cover every runner code path the suite uses: the Fig. 1
// counter microbenchmark, registry workloads with input variants, observed
// runs and profiled runs.
var determinismIDs = []string{"fig1", "fig9", "latency", "profile"}

// renderAll runs the determinism experiment set and concatenates the
// rendered tables, exactly as dynamo-experiments prints them to stdout.
func renderAll(t *testing.T, s *Suite) string {
	t.Helper()
	var b strings.Builder
	for _, id := range determinismIDs {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b.WriteString("== " + id + "\n" + tab.String() + "\n")
	}
	return b.String()
}

// TestParallelSerialDeterminism is the acceptance gate for the sweep
// runner: the rendered tables must be byte-identical whether simulations
// run serially or eight at a time, and whether they were simulated in
// this process or recalled from a warm persistent cache — and a warm
// cache must execute zero simulations.
func TestParallelSerialDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	base := Options{Threads: 2, Scale: 0.05, Seed: 1}

	serialOpts := base
	serialOpts.Workers = 1
	serial := renderAll(t, NewSuite(serialOpts))

	dir := t.TempDir()
	coldOpts := base
	coldOpts.Workers = 8
	coldOpts.CacheDir = dir
	coldSuite := NewSuite(coldOpts)
	cold := renderAll(t, coldSuite)
	if cold != serial {
		t.Fatal("jobs=8 output differs from jobs=1 output")
	}
	if st := coldSuite.Runner().Stats(); st.Simulated() == 0 {
		t.Fatalf("cold run simulated nothing: %+v", st)
	}

	warmSuite := NewSuite(coldOpts)
	warm := renderAll(t, warmSuite)
	if warm != serial {
		t.Fatal("warm-cache output differs from cold output")
	}
	st := warmSuite.Runner().Stats()
	if st.Simulated() != 0 {
		t.Fatalf("warm cache executed %d simulations: %+v", st.Simulated(), st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("warm cache hit nothing: %+v", st)
	}
}
