package experiments

import (
	"fmt"

	"dynamo/internal/core"
	"dynamo/internal/runner"
	"dynamo/internal/stats"
	"dynamo/internal/workload"
)

// Figure1 reproduces the shared-counter throughput comparison: Atomic-Near
// (all-near policy), AtomicLoad-Far and AtomicStore-Far (unique-near
// policy, which sends every non-unique AMO to the home node) across thread
// counts. Throughput is updates per kilo-cycle.
func (s *Suite) Figure1() (*stats.Table, error) {
	threadCounts := []int{1, 2, 4, 8, 16, 32}
	ops := 400
	if s.opts.Scale < 1 {
		ops = int(float64(ops)*s.opts.Scale) + 1
	}
	type variant struct {
		name     string
		policy   string
		noReturn bool
	}
	variants := []variant{
		// The same stadd instruction everywhere; only the placement and
		// the far transaction type (return value or not) differ.
		{"Atomic-Near", "all-near", true},
		{"AtomicLoad-Far", "unique-near", false},
		{"AtomicStore-Far", "unique-near", true},
	}
	var reqs []runner.Request
	for _, v := range variants {
		for _, tc := range threadCounts {
			reqs = append(reqs, s.counterRequest(v.policy, tc, ops, v.noReturn))
		}
	}
	if err := s.submit(reqs); err != nil {
		return nil, err
	}
	results := make(map[string]map[int]float64)
	for _, v := range variants {
		results[v.name] = make(map[int]float64)
		for _, tc := range threadCounts {
			out, err := s.r.Run(s.counterRequest(v.policy, tc, ops, v.noReturn))
			if err != nil {
				return nil, err
			}
			results[v.name][tc] = float64(tc*ops) / float64(out.Result.Cycles) * 1000
		}
	}
	t := &stats.Table{Header: []string{"threads", "Atomic-Near", "AtomicLoad-Far", "AtomicStore-Far"}}
	for _, tc := range threadCounts {
		t.AddRow(fmt.Sprint(tc),
			stats.F(results["Atomic-Near"][tc]),
			stats.F(results["AtomicLoad-Far"][tc]),
			stats.F(results["AtomicStore-Far"][tc]))
	}
	return t, nil
}

// counterRequest builds the Fig. 1 microbenchmark request (parameterized
// by thread count, so it lives outside the workload registry).
func (s *Suite) counterRequest(policy string, threads, ops int, noReturn bool) runner.Request {
	return runner.Request{
		Policy:  policy,
		Threads: threads,
		Seed:    s.opts.Seed,
		Scale:   s.opts.Scale,
		Counter: &runner.CounterSpec{Ops: ops, NoReturn: noReturn, Cells: 8},
	}
}

// Figure6 reproduces the APKI characterization: AMOs per kilo-instruction
// per workload, split into AtomicLoads and AtomicStores, with the L/M/H
// class each workload lands in.
func (s *Suite) Figure6() (*stats.Table, error) {
	var keys []runKey
	for _, spec := range workload.All() {
		keys = append(keys, runKey{workload: spec.Name, policy: "all-near", threads: s.opts.Threads})
	}
	if err := s.prefetch(keys); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"workload", "code", "APKI", "ldAPKI", "stAPKI", "class"}}
	for _, spec := range workload.All() {
		res, err := s.run(runKey{workload: spec.Name, policy: "all-near", threads: s.opts.Threads})
		if err != nil {
			return nil, err
		}
		ld := float64(res.AMOLoads) / float64(res.Instructions) * 1000
		st := float64(res.AMOStores) / float64(res.Instructions) * 1000
		t.AddRow(spec.Name, spec.Code, stats.F(res.APKI), stats.F(ld), stats.F(st), spec.Class.String())
	}
	return t, nil
}

// speedups computes per-workload speedups of a policy versus the all-near
// baseline from cached runs.
func (s *Suite) speedups(policy, variant string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, spec := range workload.All() {
		base, err := s.run(runKey{workload: spec.Name, policy: "all-near", threads: s.opts.Threads})
		if err != nil {
			return nil, err
		}
		res, err := s.run(runKey{workload: spec.Name, policy: policy, threads: s.opts.Threads, sysVariant: variant})
		if err != nil {
			return nil, err
		}
		out[spec.Name] = stats.Speedup(uint64(base.Cycles), uint64(res.Cycles))
	}
	return out, nil
}

// prefetchPolicies warms the cache for a set of policies over all
// workloads.
func (s *Suite) prefetchPolicies(policies []string, variant string) error {
	var keys []runKey
	for _, spec := range workload.All() {
		keys = append(keys, runKey{workload: spec.Name, policy: "all-near", threads: s.opts.Threads})
		for _, p := range policies {
			keys = append(keys, runKey{workload: spec.Name, policy: p, threads: s.opts.Threads, sysVariant: variant})
		}
	}
	return s.prefetch(keys)
}

// staticPolicyList is Fig. 7's policy order.
var staticPolicyList = []string{"unique-near", "present-near", "dirty-near", "shared-far"}

// Figure7 reproduces the static-policy comparison: speedups of each static
// policy and the per-workload Best Static versus All Near, with LMH/MH/H
// geomeans.
func (s *Suite) Figure7() (*stats.Table, error) {
	if err := s.prefetchPolicies(staticPolicyList, ""); err != nil {
		return nil, err
	}
	per := make(map[string]map[string]float64)
	for _, p := range staticPolicyList {
		sp, err := s.speedups(p, "")
		if err != nil {
			return nil, err
		}
		per[p] = sp
	}
	best := make(map[string]float64)
	for _, spec := range workload.All() {
		b := 1.0 // all-near itself
		for _, p := range staticPolicyList {
			if v := per[p][spec.Name]; v > b {
				b = v
			}
		}
		best[spec.Name] = b
	}
	t := &stats.Table{Header: []string{"workload", "class", "unique-near", "present-near", "dirty-near", "shared-far", "best-static"}}
	for _, spec := range workload.All() {
		t.AddRow(spec.Name, spec.Class.String(),
			stats.F(per["unique-near"][spec.Name]),
			stats.F(per["present-near"][spec.Name]),
			stats.F(per["dirty-near"][spec.Name]),
			stats.F(per["shared-far"][spec.Name]),
			stats.F(best[spec.Name]))
	}
	lmh, mh, h := classSets()
	for _, set := range []struct {
		name  string
		names []string
	}{{"geomean-LMH", lmh}, {"geomean-MH", mh}, {"geomean-H", h}} {
		t.AddRow(set.name, "",
			stats.F(s.geomeanOver(set.names, per["unique-near"])),
			stats.F(s.geomeanOver(set.names, per["present-near"])),
			stats.F(s.geomeanOver(set.names, per["dirty-near"])),
			stats.F(s.geomeanOver(set.names, per["shared-far"])),
			stats.F(s.geomeanOver(set.names, best)))
	}
	return t, nil
}

// dynamoPolicyList is Fig. 8's policy order.
var dynamoPolicyList = []string{"dynamo-metric", "dynamo-reuse-un", "dynamo-reuse-pn"}

// Figure8 reproduces the DynAMO comparison: speedups of the three
// predictors and Best Static versus All Near.
func (s *Suite) Figure8() (*stats.Table, error) {
	if err := s.prefetchPolicies(append(append([]string{}, staticPolicyList...), dynamoPolicyList...), ""); err != nil {
		return nil, err
	}
	per := make(map[string]map[string]float64)
	for _, p := range append(append([]string{}, staticPolicyList...), dynamoPolicyList...) {
		sp, err := s.speedups(p, "")
		if err != nil {
			return nil, err
		}
		per[p] = sp
	}
	best := make(map[string]float64)
	for _, spec := range workload.All() {
		b := 1.0
		for _, p := range staticPolicyList {
			if v := per[p][spec.Name]; v > b {
				b = v
			}
		}
		best[spec.Name] = b
	}
	t := &stats.Table{Header: []string{"workload", "class", "dynamo-metric", "dynamo-reuse-un", "dynamo-reuse-pn", "best-static"}}
	for _, spec := range workload.All() {
		t.AddRow(spec.Name, spec.Class.String(),
			stats.F(per["dynamo-metric"][spec.Name]),
			stats.F(per["dynamo-reuse-un"][spec.Name]),
			stats.F(per["dynamo-reuse-pn"][spec.Name]),
			stats.F(best[spec.Name]))
	}
	lmh, mh, h := classSets()
	for _, set := range []struct {
		name  string
		names []string
	}{{"geomean-LMH", lmh}, {"geomean-MH", mh}, {"geomean-H", h}} {
		t.AddRow(set.name, "",
			stats.F(s.geomeanOver(set.names, per["dynamo-metric"])),
			stats.F(s.geomeanOver(set.names, per["dynamo-reuse-un"])),
			stats.F(s.geomeanOver(set.names, per["dynamo-reuse-pn"])),
			stats.F(s.geomeanOver(set.names, best)))
	}
	return t, nil
}

// Figure9 reproduces the input-sensitivity study: SPMV with JP vs rma10
// and HIST with NASA vs BMP24, under the best static policy for the
// default input (unique-near) and DynAMO-Reuse-PN, versus All Near.
func (s *Suite) Figure9() (*stats.Table, error) {
	cases := []struct {
		wl    string
		input string
	}{
		{"spmv", "JP"}, {"spmv", "rma10"},
		{"histogram", "NASA"}, {"histogram", "BMP24"},
	}
	policies := []string{"all-near", "unique-near", "dynamo-reuse-pn"}
	var keys []runKey
	for _, c := range cases {
		for _, p := range policies {
			keys = append(keys, runKey{workload: c.wl, policy: p, input: c.input, threads: s.opts.Threads})
		}
	}
	if err := s.prefetch(keys); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"workload", "input", "unique-near", "dynamo-reuse-pn"}}
	for _, c := range cases {
		base, err := s.run(runKey{workload: c.wl, policy: "all-near", input: c.input, threads: s.opts.Threads})
		if err != nil {
			return nil, err
		}
		row := []string{c.wl, c.input}
		for _, p := range policies[1:] {
			res, err := s.run(runKey{workload: c.wl, policy: p, input: c.input, threads: s.opts.Threads})
			if err != nil {
				return nil, err
			}
			row = append(row, stats.F(stats.Speedup(uint64(base.Cycles), uint64(res.Cycles))))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure10 reproduces the AMT sizing study on the AMO-intensive (High)
// workloads: entry count, associativity and counter-size sweeps of
// DynAMO-Reuse-PN, as geomean speedup over All Near.
func (s *Suite) Figure10() (*stats.Table, error) {
	_, _, high := classSets()
	type cfg struct {
		label   string
		variant string
	}
	var cfgs []cfg
	for _, e := range []int{32, 64, 128, 256, 512} {
		cfgs = append(cfgs, cfg{fmt.Sprintf("entries=%d", e), fmt.Sprintf("amt-e%d-w4-c32", e)})
	}
	for _, w := range []int{1, 2, 4, 8, 16} {
		cfgs = append(cfgs, cfg{fmt.Sprintf("ways=%d", w), fmt.Sprintf("amt-e128-w%d-c32", w)})
	}
	for _, c := range []int{8, 16, 32, 64, 128} {
		cfgs = append(cfgs, cfg{fmt.Sprintf("counter=%d", c), fmt.Sprintf("amt-e128-w4-c%d", c)})
	}
	var keys []runKey
	for _, wl := range high {
		keys = append(keys, runKey{workload: wl, policy: "all-near", threads: s.opts.Threads})
		for _, c := range cfgs {
			keys = append(keys, runKey{workload: wl, policy: "dynamo-reuse-pn", threads: s.opts.Threads, sysVariant: c.variant})
		}
	}
	if err := s.prefetch(keys); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"config", "geomean-H-speedup"}}
	for _, c := range cfgs {
		var xs []float64
		for _, wl := range high {
			base, err := s.run(runKey{workload: wl, policy: "all-near", threads: s.opts.Threads})
			if err != nil {
				return nil, err
			}
			res, err := s.run(runKey{workload: wl, policy: "dynamo-reuse-pn", threads: s.opts.Threads, sysVariant: c.variant})
			if err != nil {
				return nil, err
			}
			xs = append(xs, stats.Speedup(uint64(base.Cycles), uint64(res.Cycles)))
		}
		t.AddRow(c.label, stats.F(stats.Geomean(xs)))
	}
	return t, nil
}

// Figure11 reproduces the system design-space exploration: the geomean
// speedup of DynAMO-Reuse-PN over All Near per APKI set, on the base
// system, 1- and 3-cycle NoC hops, and halved/doubled memory latency.
func (s *Suite) Figure11() (*stats.Table, error) {
	variants := []string{"base", "noc-1c", "noc-3c", "half-lat", "double-lat"}
	var keys []runKey
	for _, spec := range workload.All() {
		for _, v := range variants {
			keys = append(keys,
				runKey{workload: spec.Name, policy: "all-near", threads: s.opts.Threads, sysVariant: v},
				runKey{workload: spec.Name, policy: "dynamo-reuse-pn", threads: s.opts.Threads, sysVariant: v})
		}
	}
	if err := s.prefetch(keys); err != nil {
		return nil, err
	}
	lmh, mh, h := classSets()
	t := &stats.Table{Header: []string{"system", "geomean-LMH", "geomean-MH", "geomean-H"}}
	for _, v := range variants {
		sp := make(map[string]float64)
		for _, spec := range workload.All() {
			base, err := s.run(runKey{workload: spec.Name, policy: "all-near", threads: s.opts.Threads, sysVariant: v})
			if err != nil {
				return nil, err
			}
			res, err := s.run(runKey{workload: spec.Name, policy: "dynamo-reuse-pn", threads: s.opts.Threads, sysVariant: v})
			if err != nil {
				return nil, err
			}
			sp[spec.Name] = stats.Speedup(uint64(base.Cycles), uint64(res.Cycles))
		}
		t.AddRow(v,
			stats.F(s.geomeanOver(lmh, sp)),
			stats.F(s.geomeanOver(mh, sp)),
			stats.F(s.geomeanOver(h, sp)))
	}
	return t, nil
}

// Ablations quantifies the design choices DESIGN.md calls out, each on the
// workload most sensitive to it: the home node's AMO buffer (Section
// III-B2), the core's bounded atomic queue, the far-AMO pipeline occupancy
// and the optional stride prefetcher. Each row reports the speedup of the
// configured system over the ablated one.
func (s *Suite) Ablations() (*stats.Table, error) {
	type row struct {
		name     string
		workload string
		policy   string
		baseline string // ablated variant
		variant  string // configured variant ("" = default system)
	}
	rows := []row{
		{"AMO buffer (16 vs 1 entries)", "radixsort", "unique-near", "amobuf-1", ""},
		{"atomic queue (2 vs 16 outstanding)", "histogram", "all-near", "maxatomics-16", ""},
		{"HN atomic pipeline (8 vs 32 cycles)", "histogram", "unique-near", "occupancy-32", ""},
		{"stride prefetcher (8 vs off)", "histogram", "all-near", "", "prefetch-8"},
	}
	var keys []runKey
	for _, r := range rows {
		keys = append(keys,
			runKey{workload: r.workload, policy: r.policy, threads: s.opts.Threads, sysVariant: r.baseline},
			runKey{workload: r.workload, policy: r.policy, threads: s.opts.Threads, sysVariant: r.variant})
	}
	if err := s.prefetch(keys); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"design choice", "workload", "policy", "speedup"}}
	for _, r := range rows {
		ablated, err := s.run(runKey{workload: r.workload, policy: r.policy, threads: s.opts.Threads, sysVariant: r.baseline})
		if err != nil {
			return nil, err
		}
		configured, err := s.run(runKey{workload: r.workload, policy: r.policy, threads: s.opts.Threads, sysVariant: r.variant})
		if err != nil {
			return nil, err
		}
		t.AddRow(r.name, r.workload, r.policy,
			stats.F(stats.Speedup(uint64(ablated.Cycles), uint64(configured.Cycles))))
	}
	return t, nil
}

// dseWorkloads is the representative subset Section IV's exploration is
// evaluated on: one per behaviour group (mutex-bound, contended queue,
// graph traversal, streaming scatter, mixed kernel).
var dseWorkloads = []string{"barnes", "radiosity", "bfs", "histogram", "radixsort", "spmv"}

// DesignSpace evaluates all eight practical static policies of Section IV
// (the 2^3 SC/SD/I decision combinations; far-on-unique candidates are
// pathological and excluded) and reports their geomean speedups over All
// Near on a representative workload subset, demonstrating why the paper
// keeps only five: the three unnamed candidates track their named
// neighbours.
func (s *Suite) DesignSpace() (*stats.Table, error) {
	policies := core.PracticalDesignSpace()
	var reqs []runner.Request
	for _, p := range policies {
		for _, wl := range dseWorkloads {
			reqs = append(reqs, s.dseRequest(p, wl))
		}
	}
	if err := s.submit(reqs); err != nil {
		return nil, err
	}
	results := make(map[string]map[string]uint64)
	for _, p := range policies {
		results[p.Name()] = make(map[string]uint64)
		for _, wl := range dseWorkloads {
			out, err := s.r.Run(s.dseRequest(p, wl))
			if err != nil {
				return nil, err
			}
			results[p.Name()][wl] = uint64(out.Result.Cycles)
		}
	}
	// All Near is the dse policy with the all-near row.
	var baseName string
	for _, p := range policies {
		if core.CanonicalName(p) == "all-near" {
			baseName = p.Name()
		}
	}
	t := &stats.Table{Header: []string{"decisions (UC UD SC SD I)", "published name", "geomean-speedup"}}
	for _, p := range policies {
		var xs []float64
		for _, wl := range dseWorkloads {
			base := results[baseName][wl]
			mine := results[p.Name()][wl]
			xs = append(xs, stats.Speedup(base, mine))
		}
		name := core.CanonicalName(p)
		if name == "" {
			name = "(unnamed)"
		}
		t.AddRow(core.DecisionString(p), name, stats.F(stats.Geomean(xs)))
	}
	return t, nil
}

// dseRequest builds the request for one workload under an unregistered
// Section IV candidate, addressed by its decision string so the runner
// can reconstruct (and cache) it deterministically.
func (s *Suite) dseRequest(p *core.Static, wl string) runner.Request {
	return runner.Request{
		Workload: wl,
		DSE:      core.DecisionString(p),
		Threads:  s.opts.Threads,
		Seed:     s.opts.Seed,
		Scale:    s.opts.Scale,
	}
}
