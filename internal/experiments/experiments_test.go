package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dynamo/internal/machine"
	"dynamo/internal/workload"
)

// quickSuite runs experiments at a scale where unit tests stay fast.
func quickSuite() *Suite {
	return NewSuite(Options{Threads: 4, Scale: 0.08, Seed: 1})
}

func TestOptionsFill(t *testing.T) {
	o := Options{}.fill()
	if o.Threads != 32 || o.Seed != 1 || o.Scale != 1 || o.Workers < 1 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := []string{"fig1", "table1", "table2", "table3", "fig6", "fig7",
		"fig8", "fig9", "energy", "fig10", "hwcost", "fig11", "table4", "ablation", "dse",
		"latency", "profile"}
	if len(All()) != len(ids) {
		t.Fatalf("All() has %d experiments, want %d", len(All()), len(ids))
	}
	for _, id := range ids {
		if _, err := Find(id); err != nil {
			t.Errorf("Find(%q): %v", id, err)
		}
	}
	if _, err := Find("bogus"); err == nil {
		t.Error("unknown experiment found")
	}
}

func TestComputedTables(t *testing.T) {
	s := quickSuite()
	for _, id := range []string{"table1", "table2", "table4", "hwcost"} {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	s := quickSuite()
	tab, err := s.TableI()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"N", "N", "N", "N", "N"},
		{"N", "N", "F", "F", "F"},
		{"N", "N", "N", "N", "F"},
		{"N", "N", "F", "N", "F"},
		{"N", "N", "F", "F", "N"},
	}
	for i, row := range tab.Rows {
		for j, cell := range row[1:] {
			if cell != want[i][j] {
				t.Fatalf("Table I row %d: %v", i, row)
			}
		}
	}
}

func TestTableIIIListsAllWorkloads(t *testing.T) {
	s := quickSuite()
	tab, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 21 {
		t.Fatalf("Table III has %d rows", len(tab.Rows))
	}
}

func TestSysVariants(t *testing.T) {
	base := machine.DefaultConfig()
	cases := []struct {
		name  string
		check func(machine.Config) bool
	}{
		{"", func(c machine.Config) bool { return c.Chi.Mesh.RouteLatency == base.Chi.Mesh.RouteLatency }},
		{"noc-1c", func(c machine.Config) bool { return c.Chi.Mesh.RouteLatency == 0 }},
		{"noc-3c", func(c machine.Config) bool { return c.Chi.Mesh.RouteLatency == 2 }},
		{"half-lat", func(c machine.Config) bool { return c.Chi.Mem.Latency == base.Chi.Mem.Latency/2 }},
		{"double-lat", func(c machine.Config) bool { return c.Chi.Mem.Latency == base.Chi.Mem.Latency*2 }},
		{"amt-e64-w2-c16", func(c machine.Config) bool {
			return c.AMT.Entries == 64 && c.AMT.Ways == 2 && c.AMT.CounterMax == 16
		}},
	}
	for _, c := range cases {
		cfg := machine.DefaultConfig()
		if err := sysVariant(c.name, &cfg); err != nil {
			t.Fatalf("%q: %v", c.name, err)
		}
		if !c.check(cfg) {
			t.Errorf("%q not applied", c.name)
		}
	}
	cfg := machine.DefaultConfig()
	if err := sysVariant("nonsense", &cfg); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestRunCachesResults(t *testing.T) {
	s := quickSuite()
	key := runKey{workload: "tc", policy: "all-near", threads: 2}
	r1, err := s.run(key)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.run(key)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second run not served from cache")
	}
	// The base alias shares the cache entry.
	key.sysVariant = "base"
	r3, err := s.run(key)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatal("base variant not aliased to the default system")
	}
}

func TestRunValidatesWorkloads(t *testing.T) {
	s := quickSuite()
	if _, err := s.run(runKey{workload: "missing", policy: "all-near", threads: 2}); err == nil {
		t.Fatal("unknown workload ran")
	}
	if _, err := s.run(runKey{workload: "tc", policy: "missing", threads: 2}); err == nil {
		t.Fatal("unknown policy ran")
	}
}

func TestClassSets(t *testing.T) {
	lmh, mh, h := classSets()
	if len(lmh) != 21 {
		t.Fatalf("LMH has %d workloads", len(lmh))
	}
	if len(mh) >= len(lmh) || len(h) >= len(mh) {
		t.Fatalf("set sizes not strictly nested: %d/%d/%d", len(lmh), len(mh), len(h))
	}
	for _, n := range h {
		spec, err := workload.Get(n)
		if err != nil || spec.Class != workload.High {
			t.Fatalf("H set contains %s", n)
		}
	}
}

func TestFigure1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := NewSuite(Options{Threads: 4, Scale: 0.05})
	tab, err := s.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Figure 1 has %d rows", len(tab.Rows))
	}
}

func TestFigure6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := quickSuite()
	tab, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 21 {
		t.Fatalf("Figure 6 has %d rows", len(tab.Rows))
	}
	// Every workload must report a positive APKI.
	for _, row := range tab.Rows {
		if row[2] == "0.000" {
			t.Errorf("%s reports zero APKI", row[0])
		}
	}
}

func TestFigure9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := quickSuite()
	tab, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Figure 9 has %d rows", len(tab.Rows))
	}
}

func TestLatencyBreakdownQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := quickSuite()
	tab, err := s.LatencyBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("latency breakdown produced no rows")
	}
	// Every latency policy must contribute class rows and phase sub-rows.
	seen := map[string]bool{}
	phases := 0
	for _, row := range tab.Rows {
		seen[row[0]] = true
		if strings.HasPrefix(row[1], "  ") {
			phases++
		}
	}
	for _, p := range latencyPolicies {
		if !seen[p] {
			t.Errorf("no rows for policy %s", p)
		}
	}
	if phases == 0 {
		t.Fatal("no per-phase rows")
	}
}

func TestLogging(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(Options{Threads: 2, Scale: 0.05, Log: &buf})
	if _, err := s.run(runKey{workload: "tc", policy: "all-near", threads: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tc") {
		t.Fatalf("log missing run line: %q", buf.String())
	}
}
