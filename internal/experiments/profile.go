package experiments

import (
	"fmt"

	"dynamo/internal/machine"
	"dynamo/internal/obs"
	"dynamo/internal/obs/profile"
	"dynamo/internal/stats"
	"dynamo/internal/workload"
)

// profiledRun executes one workload under one policy with the contention
// profiler attached and returns the hot-line report. Like observedRun it
// bypasses the suite cache: the profiler mutates per-run state.
func (s *Suite) profiledRun(wl, policy string, k int) (*profile.HotReport, error) {
	cfg := machine.DefaultConfig()
	cfg.Policy = policy
	bus := obs.New(obs.Options{})
	cfg.Obs = bus
	prof := profile.NewProfiler(k)
	bus.AttachContention(prof)
	spec, err := workload.Get(wl)
	if err != nil {
		return nil, err
	}
	inst, err := spec.Build(workload.Params{
		Threads: s.opts.Threads,
		Seed:    s.opts.Seed,
		Scale:   s.opts.Scale,
	})
	if err != nil {
		return nil, err
	}
	for _, site := range inst.Sites {
		bus.RegisterSite(site)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	if inst.Setup != nil {
		inst.Setup(m.Sys.Data)
	}
	res, err := m.Run(inst.Programs)
	if err != nil {
		return nil, err
	}
	if err := inst.Validate(m.Sys.Data); err != nil {
		return nil, fmt.Errorf("validation: %w", err)
	}
	s.logf("  profiled %-12s %-16s %10d cycles", wl, policy, res.Cycles)
	return prof.Report(bus.SiteOf), nil
}

// profileCases contrasts the paper's two contention archetypes: radiosity's
// single hot queue lock (Section VI-B, where far AMOs win) and histogram's
// scattered bucket updates, each under the baseline and the headline
// predictor.
var profileCases = []struct{ workload, policy string }{
	{"radiosity", "all-near"},
	{"radiosity", "dynamo-reuse-pn"},
	{"histogram", "all-near"},
	{"histogram", "dynamo-reuse-pn"},
}

// ContentionProfile renders the hottest AMO cache lines per workload and
// policy, attributed to workload sites: which structures are contended, how
// the policy places their AMOs, and what coherence traffic they attract.
func (s *Suite) ContentionProfile() (*stats.Table, error) {
	const topK = 8
	t := &stats.Table{Header: []string{
		"workload", "policy", "site", "amos", "near", "far", "snoops", "sharers", "fwd", "hn-ticks"}}
	for _, c := range profileCases {
		rep, err := s.profiledRun(c.workload, c.policy, topK)
		if err != nil {
			return nil, err
		}
		for _, l := range rep.Lines {
			site := fmt.Sprintf("%#x", uint64(l.Line))
			if l.Site != "" {
				site = fmt.Sprintf("%s+%d", l.Site, l.Offset)
			}
			t.AddRow(c.workload, c.policy, site,
				fmt.Sprint(l.AMOs), fmt.Sprint(l.Near), fmt.Sprint(l.Far),
				fmt.Sprint(l.Snoops), stats.F(l.MeanSharers),
				fmt.Sprint(l.Forwards), stats.F(l.MeanHNTicks))
		}
	}
	return t, nil
}
